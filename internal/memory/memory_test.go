package memory

import (
	"fmt"
	"testing"
	"testing/quick"

	"weakestfd/internal/sim"
)

func TestRegisterReadWrite(t *testing.T) {
	reg := NewRegister[int]("r")
	body := func(p *sim.Proc) (sim.Value, bool) {
		if got := reg.Read(p); got != 0 {
			t.Errorf("initial read = %d", got)
		}
		reg.Write(p, 7)
		return sim.Value(reg.Read(p)), true
	}
	rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(1), Schedule: sim.RoundRobin()},
		[]sim.Body{body})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decided[0] != 7 {
		t.Errorf("read back %v", rep.Decided[0])
	}
	if rep.Steps != 3 {
		t.Errorf("3 register ops cost %d steps", rep.Steps)
	}
	if reg.Inspect() != 7 {
		t.Errorf("Inspect = %d", reg.Inspect())
	}
}

func TestRegisterOpt(t *testing.T) {
	if Some(3) != (Opt[int]{V: 3, OK: true}) {
		t.Errorf("Some wrong")
	}
	if None[int]() != (Opt[int]{}) {
		t.Errorf("None wrong")
	}
}

func TestArrayCollect(t *testing.T) {
	arr := NewArray[int]("a", 3)
	body := func(p *sim.Proc) (sim.Value, bool) {
		arr.Write(p, p.ID(), int(p.ID())+10)
		vals := arr.Collect(p)
		sum := 0
		for _, v := range vals {
			sum += v
		}
		return sim.Value(sum), true
	}
	rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(3), Schedule: sim.RoundRobin()},
		[]sim.Body{body, body, body})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin: all three write before anyone collects, so each collect
	// sees 10+11+12.
	for p, v := range rep.Decided {
		if v != 33 {
			t.Errorf("%v collected sum %d, want 33", p, v)
		}
	}
	if got := arr.Inspect(); got[0] != 10 || got[1] != 11 || got[2] != 12 {
		t.Errorf("Inspect = %v", got)
	}
	if arr.N() != 3 {
		t.Errorf("N = %d", arr.N())
	}
	if arr.At(1).Inspect() != 11 {
		t.Errorf("At(1) = %d", arr.At(1).Inspect())
	}
}

// snapshotFactories enumerates the two implementations under test.
func snapshotFactories() map[string]SnapshotFactory[sim.Value] {
	return map[string]SnapshotFactory[sim.Value]{
		"atomic": NewAtomicSnapshot[sim.Value],
		"afek":   NewAfekSnapshot[sim.Value],
	}
}

func TestSnapshotUpdateScan(t *testing.T) {
	for name, factory := range snapshotFactories() {
		t.Run(name, func(t *testing.T) {
			snap := factory("s", 2)
			body := func(p *sim.Proc) (sim.Value, bool) {
				snap.Update(p, p.ID(), sim.Value(p.ID())+100)
				scan := snap.Scan(p)
				own := scan[p.ID()]
				if !own.OK || own.V != sim.Value(p.ID())+100 {
					t.Errorf("%v: own update not visible in own scan: %v", p.ID(), scan)
				}
				return sim.Value(CountSome(scan)), true
			}
			rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(2), Schedule: sim.NewRandom(3)},
				[]sim.Body{body, body})
			if err != nil {
				t.Fatal(err)
			}
			for p, v := range rep.Decided {
				if v < 1 || v > 2 {
					t.Errorf("%v saw %d entries", p, v)
				}
			}
		})
	}
}

// TestSnapshotContainment drives many interleaved update/scan workloads and
// verifies the defining property of atomic snapshots: all scans are related
// by containment on sequence numbers (a scan that sees process j's k-th
// update is ≥, positionwise, any scan that doesn't).
func TestSnapshotContainment(t *testing.T) {
	for name, factory := range snapshotFactories() {
		for seed := int64(0); seed < 20; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				n := 4
				snap := factory("s", n)
				type scanRec struct {
					vals []Opt[sim.Value]
				}
				var scans []scanRec
				bodies := make([]sim.Body, n)
				for i := range bodies {
					me := sim.PID(i)
					bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
						for k := 0; k < 6; k++ {
							// Values encode (pid, iteration) so containment is
							// checkable: later values are strictly larger.
							snap.Update(p, me, sim.Value(int(me)*1000+k))
							scans = append(scans, scanRec{vals: snap.Scan(p)})
						}
						return 0, true
					}
				}
				if _, err := sim.Run(sim.Config{Pattern: sim.FailFree(n), Schedule: sim.NewRandom(seed)}, bodies); err != nil {
					t.Fatal(err)
				}
				// Pairwise containment: for each pair of scans, one must
				// dominate the other positionwise.
				dominates := func(a, b []Opt[sim.Value]) bool {
					for j := range a {
						if b[j].OK && (!a[j].OK || a[j].V < b[j].V) {
							return false
						}
					}
					return true
				}
				for x := range scans {
					for y := range scans {
						if !dominates(scans[x].vals, scans[y].vals) && !dominates(scans[y].vals, scans[x].vals) {
							t.Fatalf("scans %d and %d incomparable:\n%v\n%v",
								x, y, ScanString(scans[x].vals), ScanString(scans[y].vals))
						}
					}
				}
			})
		}
	}
}

// TestSnapshotRegularity: a scan must reflect every update that completed
// before it started (no lost updates), for both implementations.
func TestSnapshotRegularity(t *testing.T) {
	for name, factory := range snapshotFactories() {
		t.Run(name, func(t *testing.T) {
			n := 3
			snap := factory("s", n)
			writer := func(p *sim.Proc) (sim.Value, bool) {
				snap.Update(p, p.ID(), 9)
				return 0, true
			}
			reader := func(p *sim.Proc) (sim.Value, bool) {
				// Priority schedule runs writers to completion first.
				scan := snap.Scan(p)
				return sim.Value(CountSome(scan)), true
			}
			rep, err := sim.Run(sim.Config{
				Pattern:  sim.FailFree(n),
				Schedule: sim.Priority(0, 1, 2),
			}, []sim.Body{writer, writer, reader})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Decided[2] != 2 {
				t.Errorf("scan after 2 completed updates saw %d entries", rep.Decided[2])
			}
		})
	}
}

// TestAfekScanBorrowsView exercises the helping path: a scanner is
// interleaved with a writer that keeps moving, forcing the double-collect to
// fail until the scanner borrows an embedded view.
func TestAfekScanBorrowsView(t *testing.T) {
	n := 2
	snap := NewAfekSnapshot[sim.Value]("s", n)
	var scanned []Opt[sim.Value]
	scanner := func(p *sim.Proc) (sim.Value, bool) {
		scanned = snap.Scan(p)
		return 0, true
	}
	writer := func(p *sim.Proc) (sim.Value, bool) {
		for k := 0; k < 100; k++ {
			snap.Update(p, p.ID(), sim.Value(k))
		}
		return 0, true
	}
	// Give the writer 8 steps per scanner step: an Afek update costs ~6
	// steps (embedded scan + read + write), so the writer completes at
	// least one update between any two scanner reads, defeating the double
	// collect until the scanner borrows an embedded view.
	weighted := sim.Func(func(t sim.Time, enabled sim.Set) sim.PID {
		if t%9 == 0 && enabled.Has(0) {
			return 0
		}
		if enabled.Has(1) {
			return 1
		}
		return 0
	})
	_, err := sim.Run(sim.Config{
		Pattern:  sim.FailFree(n),
		Schedule: weighted,
		Budget:   1 << 16,
	}, []sim.Body{scanner, writer})
	if err != nil {
		t.Fatal(err)
	}
	if scanned == nil {
		t.Fatal("scan did not complete")
	}
	if !scanned[1].OK {
		t.Errorf("borrowed view misses the writer: %v", ScanString(scanned))
	}
}

func TestCountSome(t *testing.T) {
	scan := []Opt[int]{Some(1), None[int](), Some(3)}
	if CountSome(scan) != 2 {
		t.Errorf("CountSome = %d", CountSome(scan))
	}
}

func TestScanString(t *testing.T) {
	scan := []Opt[int]{Some(1), None[int]()}
	if got := ScanString(scan); got != "[1 ⊥]" {
		t.Errorf("ScanString = %q", got)
	}
}

// TestSnapshotQuickContainment is a property test: random small schedules
// over random op counts preserve pairwise scan comparability.
func TestSnapshotQuickContainment(t *testing.T) {
	prop := func(seed int64, opsRaw uint8) bool {
		n := 3
		ops := int(opsRaw%5) + 1
		snap := NewAfekSnapshot[sim.Value]("s", n)
		var scans [][]Opt[sim.Value]
		bodies := make([]sim.Body, n)
		for i := range bodies {
			me := sim.PID(i)
			bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
				for k := 0; k < ops; k++ {
					snap.Update(p, me, sim.Value(int(me)*100+k))
					scans = append(scans, snap.Scan(p))
				}
				return 0, true
			}
		}
		if _, err := sim.Run(sim.Config{Pattern: sim.FailFree(n), Schedule: sim.NewRandom(seed)}, bodies); err != nil {
			return false
		}
		dominates := func(a, b []Opt[sim.Value]) bool {
			for j := range a {
				if b[j].OK && (!a[j].OK || a[j].V < b[j].V) {
					return false
				}
			}
			return true
		}
		for x := range scans {
			for y := range scans {
				if !dominates(scans[x], scans[y]) && !dominates(scans[y], scans[x]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
