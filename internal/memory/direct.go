package memory

import "weakestfd/internal/sim"

// Direct (step-free) shared-object access for the machine runner.
//
// The goroutine runner charges every shared-object operation one atomic step
// by routing it through sim.Proc. The machine runner (sim.RunMachines) is
// single-threaded and accounts the step itself: exactly one StepMachine.Step
// call runs at a time, and that call performs exactly one operation. Machines
// therefore access objects through the Direct* methods below, which touch the
// object state without a Proc. The atomicity guarantee is unchanged — it now
// comes from the runner's single-threadedness instead of the step gate.
//
// Algorithm *bodies* must never call Direct* methods: doing so would perform
// shared-memory communication without consuming a schedule step, breaking the
// model. They exist only for StepMachine implementations (and, like Inspect,
// for post-run checks).

// DirectRead returns the register's value without taking a step.
func (r *Register[T]) DirectRead() T { return r.v }

// DirectWrite sets the register's value without taking a step.
func (r *Register[T]) DirectWrite(v T) { r.v = v }

// DirectRead reads register i without taking a step.
func (a *Array[T]) DirectRead(i sim.PID) T { return a.regs[i].v }

// DirectWrite writes register i without taking a step.
func (a *Array[T]) DirectWrite(i sim.PID, v T) { a.regs[i].v = v }

// DirectSnapshot is the step-free face of a snapshot object. Only
// implementations whose Update and Scan are single atomic steps can offer it;
// the one-step atomic snapshot does, the Afek et al. registers-only
// construction (whose operations span many steps) does not. Machine
// constructors assert for this interface and reject snapshot implementations
// that lack it.
type DirectSnapshot[T any] interface {
	Snapshot[T]
	// DirectUpdate writes v into position i without taking a step.
	DirectUpdate(i sim.PID, v T)
	// DirectScan appends the contents of all n positions to dst and returns
	// the extended slice; pass scratch[:0] to reuse a scan buffer.
	DirectScan(dst []Opt[T]) []Opt[T]
}

// DirectUpdate implements DirectSnapshot.
func (s *atomicSnapshot[T]) DirectUpdate(i sim.PID, v T) { s.cells[i] = Some(v) }

// DirectScan implements DirectSnapshot.
func (s *atomicSnapshot[T]) DirectScan(dst []Opt[T]) []Opt[T] {
	return append(dst, s.cells...)
}

// AsDirect asserts that snap supports step-free access, returning false for
// multi-step implementations (the Afek construction).
func AsDirect[T any](snap Snapshot[T]) (DirectSnapshot[T], bool) {
	d, ok := snap.(DirectSnapshot[T])
	return d, ok
}

// DirectPropose is the step-free variant of ConsensusObject.Propose for the
// machine runner: first value wins, every call returns the decision, and the
// m-process access limit is enforced exactly as in Propose.
func (c *ConsensusObject) DirectPropose(me sim.PID, v sim.Value) sim.Value {
	if !c.accessors.Has(me) {
		c.accessors = c.accessors.Add(me)
		if c.accessors.Len() > c.limit {
			panic(c.name + ": consensus object accessor limit exceeded")
		}
	}
	if !c.decided.OK {
		c.decided = Some(v)
	}
	return c.decided.V
}
