package memory

import (
	"fmt"

	"weakestfd/internal/sim"
)

// Direct (step-free) shared-object access for the machine runner.
//
// The goroutine runner charges every shared-object operation one atomic step
// by routing it through sim.Proc. The machine runner (sim.RunMachines) is
// single-threaded and accounts the step itself: exactly one StepMachine.Step
// call runs at a time, and that call performs exactly one operation. Machines
// therefore access objects through the Direct* methods below, which touch the
// object state without a Proc. The atomicity guarantee is unchanged — it now
// comes from the runner's single-threadedness instead of the step gate.
//
// Every Direct* accessor takes the run's *sim.AccessLog (the one the runner
// hands machines through sim.MachineContext.Log) and reports its
// (object, read|write) accesses to it, making each step's footprint on
// shared memory observable — the seam the DPOR explorer's dependency
// analysis is built on. A nil log is the no-op default: recording is guarded
// by one nil check and the disabled path allocates nothing (asserted by
// TestDirectAccessNilLogZeroAlloc).
//
// Algorithm *bodies* must never call Direct* methods: doing so would perform
// shared-memory communication without consuming a schedule step, breaking the
// model. They exist only for StepMachine implementations (and, like Inspect,
// for post-run checks).

// logID returns the register's identity in log l, interning the name on the
// first access recorded into l. The cache is keyed by log pointer: an object
// recorded into a different log re-interns, so sharing an object between
// logs is safe (if wasteful).
func (r *Register[T]) logID(l *sim.AccessLog) sim.ObjID {
	if r.logRef != l {
		r.oid = l.Intern(r.name)
		r.logRef = l
	}
	return r.oid
}

// DirectRead returns the register's value without taking a step.
func (r *Register[T]) DirectRead(l *sim.AccessLog) T {
	if l != nil {
		l.Record(r.logID(l), sim.AccessRead)
	}
	return r.v
}

// DirectWrite sets the register's value without taking a step. On a
// digest-enabled log the write carries the new value's fingerprint, keeping
// the log's state digest (sim.AccessLog.StateDigest) in sync with shared
// memory without ever re-walking the registers.
func (r *Register[T]) DirectWrite(l *sim.AccessLog, v T) {
	if l != nil {
		if id := r.logID(l); l.DigestOn() {
			l.RecordValued(id, sim.AccessWrite, sim.StateFP(v))
		} else {
			l.Record(id, sim.AccessWrite)
		}
	}
	r.v = v
}

// DirectRead reads register i without taking a step.
func (a *Array[T]) DirectRead(l *sim.AccessLog, i sim.PID) T {
	return a.regs[i].DirectRead(l)
}

// DirectWrite writes register i without taking a step.
func (a *Array[T]) DirectWrite(l *sim.AccessLog, i sim.PID, v T) {
	a.regs[i].DirectWrite(l, v)
}

// DirectSnapshot is the step-free face of a snapshot object. Only
// implementations whose Update and Scan are single atomic steps can offer it;
// the one-step atomic snapshot does, the Afek et al. registers-only
// construction (whose operations span many steps) does not. Machine
// constructors assert for this interface and reject snapshot implementations
// that lack it.
type DirectSnapshot[T any] interface {
	Snapshot[T]
	// DirectUpdate writes v into position i without taking a step.
	DirectUpdate(l *sim.AccessLog, i sim.PID, v T)
	// DirectScan appends the contents of all n positions to dst and returns
	// the extended slice; pass scratch[:0] to reuse a scan buffer.
	DirectScan(l *sim.AccessLog, dst []Opt[T]) []Opt[T]
}

// cellID returns position i's identity in log l. Snapshot accesses are
// recorded per position ("name[i]"), not per object: updates write only
// their own position, so updates by different processes commute, while a
// scan reads every position and conflicts with each of them — exactly the
// dependency structure the containment argument of [1] induces.
func (s *atomicSnapshot[T]) cellID(l *sim.AccessLog, i int) sim.ObjID {
	if s.logRef != l {
		if s.cellIDs == nil {
			s.cellIDs = make([]sim.ObjID, len(s.cells))
		}
		for j := range s.cellIDs {
			s.cellIDs[j] = l.Intern(fmt.Sprintf("%s[%d]", s.name, j))
		}
		s.logRef = l
	}
	return s.cellIDs[i]
}

// DirectUpdate implements DirectSnapshot.
func (s *atomicSnapshot[T]) DirectUpdate(l *sim.AccessLog, i sim.PID, v T) {
	if l != nil {
		if id := s.cellID(l, int(i)); l.DigestOn() {
			l.RecordValued(id, sim.AccessWrite, Some(v).StateFP())
		} else {
			l.Record(id, sim.AccessWrite)
		}
	}
	s.cells[i] = Some(v)
}

// DirectScan implements DirectSnapshot.
func (s *atomicSnapshot[T]) DirectScan(l *sim.AccessLog, dst []Opt[T]) []Opt[T] {
	if l != nil {
		for j := range s.cells {
			l.Record(s.cellID(l, j), sim.AccessRead)
		}
	}
	return append(dst, s.cells...)
}

// AsDirect asserts that snap supports step-free access, returning false for
// multi-step implementations (the Afek construction).
func AsDirect[T any](snap Snapshot[T]) (DirectSnapshot[T], bool) {
	d, ok := snap.(DirectSnapshot[T])
	return d, ok
}

// DirectPropose is the step-free variant of ConsensusObject.Propose for the
// machine runner: first value wins, every call returns the decision, and the
// m-process access limit is enforced exactly as in Propose. A propose both
// reads and conditionally writes the object; it is recorded as a single
// write, which conflicts with everything a read-plus-write would.
func (c *ConsensusObject) DirectPropose(l *sim.AccessLog, me sim.PID, v sim.Value) sim.Value {
	if !c.accessors.Has(me) {
		c.accessors = c.accessors.Add(me)
		if c.accessors.Len() > c.limit {
			panic(c.name + ": consensus object accessor limit exceeded")
		}
	}
	if !c.decided.OK {
		c.decided = Some(v)
	}
	if l != nil {
		if c.logRef != l {
			c.oid = l.Intern(c.name)
			c.logRef = l
		}
		// The recorded fingerprint is the object's post-propose state — the
		// first proposal wins, so a losing propose re-installs the winner's
		// fingerprint, which is exactly its write-like effect on the state.
		if l.DigestOn() {
			l.RecordValued(c.oid, sim.AccessWrite, c.decided.StateFP())
		} else {
			l.Record(c.oid, sim.AccessWrite)
		}
	}
	return c.decided.V
}
