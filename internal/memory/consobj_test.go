package memory

import (
	"testing"

	"weakestfd/internal/sim"
)

func TestConsensusObjectFirstWins(t *testing.T) {
	obj := NewConsensusObject("c", 3)
	results := make([]sim.Value, 3)
	bodies := make([]sim.Body, 3)
	for i := range bodies {
		me := sim.PID(i)
		bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
			results[me] = obj.Propose(p, sim.Value(me)+100)
			return results[me], true
		}
	}
	// Priority: p2 proposes first.
	if _, err := sim.Run(sim.Config{Pattern: sim.FailFree(3), Schedule: sim.Priority(1, 0, 2)},
		bodies); err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != 101 {
			t.Fatalf("p%d got %d, want first proposal 101", i+1, v)
		}
	}
	if d := obj.Decision(); !d.OK || d.V != 101 {
		t.Fatalf("decision %+v", d)
	}
	if obj.Limit() != 3 {
		t.Fatalf("limit %d", obj.Limit())
	}
}

func TestConsensusObjectRepeatAccessor(t *testing.T) {
	// The same process proposing repeatedly counts once against the limit.
	obj := NewConsensusObject("c", 1)
	body := func(p *sim.Proc) (sim.Value, bool) {
		a := obj.Propose(p, 5)
		b := obj.Propose(p, 9)
		if a != 5 || b != 5 {
			t.Errorf("got %d/%d", a, b)
		}
		return a, true
	}
	if _, err := sim.Run(sim.Config{Pattern: sim.FailFree(1), Schedule: sim.RoundRobin()},
		[]sim.Body{body}); err != nil {
		t.Fatal(err)
	}
	if obj.Accessors() != sim.SetOf(0) {
		t.Fatalf("accessors %v", obj.Accessors())
	}
}

func TestConsensusObjectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for limit 0")
		}
	}()
	NewConsensusObject("c", 0)
}

func TestConsFamilyWithinLimitEmpty(t *testing.T) {
	fam := NewConsFamily("c", 2)
	if err := fam.AllAccessorsWithinLimit(); err != nil {
		t.Fatal(err)
	}
}
