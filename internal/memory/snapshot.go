package memory

import (
	"fmt"

	"weakestfd/internal/sim"
)

// Snapshot is an atomic snapshot object with n positions (paper Section 5.3):
// Update(i, v) writes v into position i and Scan returns the contents of all
// positions, such that all scans are related by containment (each position of
// one scan is the same or a more recent write than the other's).
//
// Two implementations are provided: AtomicSnapshot performs each operation in
// one simulator step (justified by the implementability result of Afek et
// al., the paper's [1]), and AfekSnapshot is that very construction from
// single-writer registers, so that the "registers only" claim of the paper's
// algorithms can be exercised end to end.
type Snapshot[T any] interface {
	// Update writes v into position i. Processes only update their own
	// position in the paper's protocols, but the object does not require it.
	Update(p *sim.Proc, i sim.PID, v T)
	// Scan returns the contents of all n positions; absent positions (never
	// updated) are None.
	Scan(p *sim.Proc) []Opt[T]
	// N returns the number of positions.
	N() int
}

// SnapshotFactory builds snapshot objects; protocols that need families of
// snapshot objects (one per round/sub-round) take a factory so experiments
// can switch implementations.
type SnapshotFactory[T any] func(name string, n int) Snapshot[T]

// NewAtomicSnapshot returns a snapshot object whose Update and Scan each
// take one atomic step.
func NewAtomicSnapshot[T any](name string, n int) Snapshot[T] {
	return &atomicSnapshot[T]{name: name, cells: make([]Opt[T], n)}
}

var _ SnapshotFactory[int] = NewAtomicSnapshot[int]

type atomicSnapshot[T any] struct {
	name  string
	cells []Opt[T]

	// cellIDs caches the per-position interned identities in logRef; see
	// atomicSnapshot.cellID in direct.go.
	cellIDs []sim.ObjID
	logRef  *sim.AccessLog
}

func (s *atomicSnapshot[T]) N() int { return len(s.cells) }

func (s *atomicSnapshot[T]) Update(p *sim.Proc, i sim.PID, v T) {
	p.Step("update "+s.name, func() { s.cells[i] = Some(v) })
}

func (s *atomicSnapshot[T]) Scan(p *sim.Proc) []Opt[T] {
	out := make([]Opt[T], len(s.cells))
	p.Step("scan "+s.name, func() { copy(out, s.cells) })
	return out
}

// afekCell is the content of one single-writer register in the Afek et al.
// construction: the value, an unbounded sequence number, and the embedded
// scan the writer performed just before this write (used for helping).
type afekCell[T any] struct {
	val  Opt[T]
	seq  int64
	view []Opt[T] // embedded scan; nil until first update
}

// NewAfekSnapshot returns a wait-free atomic snapshot implemented from
// single-writer multi-reader registers (Afek et al., J. ACM 40(4), 1993,
// unbounded-register version):
//
//   - Update(i, v): perform an embedded scan, then write (v, seq+1, scan) to
//     register i.
//   - Scan: repeatedly collect all registers. If two successive collects are
//     identical (no sequence number changed), the double collect is a valid
//     snapshot. Otherwise, a writer moved; once some writer has been observed
//     to move twice since the scan began, its embedded view was taken
//     entirely within this scan's interval and is returned (helping).
//
// Each collect costs n register-read steps, and an update costs a scan plus
// one write, so operations cost O(n²) steps — the price of registers-only.
func NewAfekSnapshot[T any](name string, n int) Snapshot[T] {
	return &afekSnapshot[T]{name: name, regs: NewArray[afekCell[T]](name, n)}
}

var _ SnapshotFactory[int] = NewAfekSnapshot[int]

type afekSnapshot[T any] struct {
	name string
	regs *Array[afekCell[T]]
}

func (s *afekSnapshot[T]) N() int { return s.regs.N() }

func (s *afekSnapshot[T]) Update(p *sim.Proc, i sim.PID, v T) {
	view := s.Scan(p)
	cur := s.regs.Read(p, i)
	s.regs.Write(p, i, afekCell[T]{val: Some(v), seq: cur.seq + 1, view: view})
}

func (s *afekSnapshot[T]) Scan(p *sim.Proc) []Opt[T] {
	n := s.regs.N()
	moved := make([]int, n)
	prev := s.regs.Collect(p)
	for {
		cur := s.regs.Collect(p)
		same := true
		for j := 0; j < n; j++ {
			if cur[j].seq != prev[j].seq {
				same = false
				break
			}
		}
		if same {
			return values(cur)
		}
		for j := 0; j < n; j++ {
			if cur[j].seq == prev[j].seq {
				continue
			}
			moved[j]++
			if moved[j] >= 2 {
				// j's latest update embeds a scan that started after our
				// scan began; borrow it.
				view := make([]Opt[T], n)
				copy(view, cur[j].view)
				return view
			}
		}
		prev = cur
	}
}

func values[T any](cells []afekCell[T]) []Opt[T] {
	out := make([]Opt[T], len(cells))
	for i, c := range cells {
		out[i] = c.val
	}
	return out
}

// CountSome returns the number of present entries in a scan result — the
// paper's "snapshot with at least n+1−f non-⊥ values" test.
func CountSome[T any](scan []Opt[T]) int {
	n := 0
	for _, c := range scan {
		if c.OK {
			n++
		}
	}
	return n
}

// ScanString renders a scan result for traces and examples.
func ScanString[T any](scan []Opt[T]) string {
	out := "["
	for i, c := range scan {
		if i > 0 {
			out += " "
		}
		if c.OK {
			out += fmt.Sprint(c.V)
		} else {
			out += "⊥"
		}
	}
	return out + "]"
}
