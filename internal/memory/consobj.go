package memory

import (
	"fmt"
	"sort"
	"sync"

	"weakestfd/internal/sim"
)

// ConsensusObject is an m-process consensus object: Propose is a one-step
// atomic operation; the first proposed value wins and every Propose returns
// it. Its consensus number is m — at most m *distinct* processes may ever
// access one instance, and the object enforces that limit by panicking,
// which turns any algorithmic misuse (the subtle bug the Ωn-boosting
// literature is careful about) into an immediate test failure rather than a
// silent power upgrade.
//
// These objects are the paper's Corollary 4 comparators: solving
// (n+1)-process consensus from n-process consensus objects and registers
// requires Ωn (Guerraoui–Kuznetsov, the paper's [13]), strictly more
// failure information than the Υ that set agreement needs.
type ConsensusObject struct {
	name      string
	limit     int
	decided   Opt[sim.Value]
	accessors sim.Set

	// oid caches the object's interned identity in logRef; see
	// DirectPropose in direct.go.
	oid    sim.ObjID
	logRef *sim.AccessLog
}

// NewConsensusObject returns an m-process consensus object.
func NewConsensusObject(name string, m int) *ConsensusObject {
	if m < 1 {
		panic(fmt.Sprintf("memory: consensus object limit %d", m))
	}
	return &ConsensusObject{name: name, limit: m}
}

// Limit returns m, the object's consensus number.
func (c *ConsensusObject) Limit() int { return c.limit }

// Propose submits v and returns the object's decision (the first value ever
// proposed); one atomic step. It panics if more than m distinct processes
// access the object.
func (c *ConsensusObject) Propose(p *sim.Proc, v sim.Value) sim.Value {
	var out sim.Value
	p.Step("propose "+c.name, func() {
		if !c.accessors.Has(p.ID()) {
			c.accessors = c.accessors.Add(p.ID())
			if c.accessors.Len() > c.limit {
				panic(fmt.Sprintf("memory: %s is a %d-process consensus object; accessors %v exceed it",
					c.name, c.limit, c.accessors))
			}
		}
		if !c.decided.OK {
			c.decided = Some(v)
		}
		out = c.decided.V
	})
	return out
}

// Accessors returns the set of processes that have accessed the object; for
// post-run inspection only.
func (c *ConsensusObject) Accessors() sim.Set { return c.accessors }

// Decision returns the object's decision, if any; for inspection only.
func (c *ConsensusObject) Decision() Opt[sim.Value] { return c.decided }

// ConsFamily hands out consensus objects keyed by (round, accessor set), so
// that processes with divergent detector views use distinct objects — each
// within its own m-process access budget. Keying by the accessor set is the
// standard trick of the Ωn-boosting algorithms: |L| = m guarantees the
// object named by L is touched only by members of L.
type ConsFamily struct {
	name  string
	limit int
	mu    sync.Mutex
	m     map[consKey]*ConsensusObject
}

type consKey struct {
	r int
	l sim.Set
}

// NewConsFamily builds a family of m-process consensus objects.
func NewConsFamily(name string, m int) *ConsFamily {
	return &ConsFamily{name: name, limit: m, m: make(map[consKey]*ConsensusObject)}
}

// At returns the object for round r and accessor set l (|l| must not exceed
// the family's limit), creating it on first use; no simulation steps.
func (f *ConsFamily) At(r int, l sim.Set) *ConsensusObject {
	if l.Len() > f.limit {
		panic(fmt.Sprintf("memory: accessor set %v exceeds %d-process consensus objects", l, f.limit))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := consKey{r: r, l: l}
	obj, ok := f.m[key]
	if !ok {
		obj = NewConsensusObject(fmt.Sprintf("%s[%d]%v", f.name, r, l), f.limit)
		f.m[key] = obj
	}
	return obj
}

// AllAccessorsWithinLimit verifies, post-run, that no object of the family
// was over-subscribed (defence in depth next to the per-object panic).
func (f *ConsFamily) AllAccessorsWithinLimit() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]consKey, 0, len(f.m))
	for k := range f.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].r != keys[j].r {
			return keys[i].r < keys[j].r
		}
		return keys[i].l < keys[j].l
	})
	for _, k := range keys {
		obj := f.m[k]
		if obj.Accessors().Len() > obj.Limit() {
			return fmt.Errorf("memory: %s over-subscribed: %v", obj.name, obj.Accessors())
		}
		if !obj.Accessors().SubsetOf(k.l) {
			return fmt.Errorf("memory: %s accessed by %v outside its key set %v", obj.name, obj.Accessors(), k.l)
		}
	}
	return nil
}
