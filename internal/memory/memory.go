// Package memory implements the shared objects of the paper's model:
// atomic read/write registers (the only object type its algorithms need) and
// atomic-snapshot objects, both as a one-step atomic object and as the
// classic wait-free construction from single-writer registers of Afek,
// Attiya, Dolev, Gafni, Merritt and Shavit (J. ACM 1993) — the paper's
// reference [1].
//
// Every operation costs exactly one simulator step per register access; the
// one-step snapshot costs one step per operation and is justified by [1]'s
// implementability result.
package memory

import (
	"fmt"

	"weakestfd/internal/sim"
)

// Opt is an optional value: registers start ⊥ and the paper's protocols
// repeatedly test registers against ⊥.
type Opt[T any] struct {
	V  T
	OK bool
}

// Some returns a present optional.
func Some[T any](v T) Opt[T] { return Opt[T]{V: v, OK: true} }

// None returns the absent optional (⊥).
func None[T any]() Opt[T] { return Opt[T]{} }

// StateFP implements sim.Fingerprinter: ⊥ is distinct from every present
// value, and present values fingerprint by their content.
func (o Opt[T]) StateFP() uint64 {
	if !o.OK {
		return 0x9d6e1c2b0b07a55a
	}
	return sim.StateFP(o.V)
}

// Register is an atomic multi-reader multi-writer register holding a value
// of type T. The zero value... is not usable; construct with NewRegister so
// the register carries a name for traces.
type Register[T any] struct {
	name string
	v    T

	// oid caches the register's interned identity in logRef, so recorded
	// runs pay the name-interning map lookup once per (object, log) pair
	// instead of once per access. Valid only while logRef matches the log
	// in use; see Register.logID.
	oid    sim.ObjID
	logRef *sim.AccessLog
}

// NewRegister returns a register initialized to T's zero value.
func NewRegister[T any](name string) *Register[T] {
	return &Register[T]{name: name}
}

// Read returns the register's current value; one atomic step.
func (r *Register[T]) Read(p *sim.Proc) T {
	var out T
	p.Step("read "+r.name, func() { out = r.v })
	return out
}

// Write sets the register's value; one atomic step.
func (r *Register[T]) Write(p *sim.Proc, v T) {
	p.Step("write "+r.name, func() { r.v = v })
}

// Inspect returns the register's value without taking a step. It exists for
// the benefit of schedules, stop predicates and post-run checks, all of
// which run while no process is executing; algorithm bodies must not use it.
func (r *Register[T]) Inspect() T { return r.v }

// Array is a per-process array of atomic registers, R[0..n-1]: the shared
// structure used by all announcement/heartbeat patterns in the paper.
type Array[T any] struct {
	name string
	regs []*Register[T]
}

// NewArray returns an array of n registers, each holding T's zero value.
func NewArray[T any](name string, n int) *Array[T] {
	regs := make([]*Register[T], n)
	for i := range regs {
		regs[i] = NewRegister[T](fmt.Sprintf("%s[%d]", name, i))
	}
	return &Array[T]{name: name, regs: regs}
}

// N returns the array length.
func (a *Array[T]) N() int { return len(a.regs) }

// At returns the i-th register.
func (a *Array[T]) At(i sim.PID) *Register[T] { return a.regs[i] }

// Read reads register i; one atomic step.
func (a *Array[T]) Read(p *sim.Proc, i sim.PID) T { return a.regs[i].Read(p) }

// Write writes register i; one atomic step.
func (a *Array[T]) Write(p *sim.Proc, i sim.PID, v T) { a.regs[i].Write(p, v) }

// Collect reads all n registers one step at a time (a non-atomic collect).
func (a *Array[T]) Collect(p *sim.Proc) []T {
	out := make([]T, len(a.regs))
	for i := range a.regs {
		out[i] = a.regs[i].Read(p)
	}
	return out
}

// Inspect returns a copy of the array contents without taking steps; for
// schedules and post-run checks only.
func (a *Array[T]) Inspect() []T {
	out := make([]T, len(a.regs))
	for i, r := range a.regs {
		out[i] = r.Inspect()
	}
	return out
}
