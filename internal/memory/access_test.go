package memory

import (
	"reflect"
	"testing"

	"weakestfd/internal/sim"
)

// events renders a log's current recorded accesses (ignoring step spans) as
// "R(name)"/"W(name)" strings, via a synthetic single step.
func events(l *sim.AccessLog) []string {
	l.EndStep(0)
	_, accs := l.Step(l.Steps() - 1)
	var out []string
	for _, a := range accs {
		out = append(out, a.Kind.String()+"("+l.ObjName(a.Obj)+")")
	}
	return out
}

// TestAccessClassification pins the exact (object, read|write) event
// sequence each Direct* accessor reports — the ground truth the DPOR
// explorer's independence relation is built on.
func TestAccessClassification(t *testing.T) {
	cases := []struct {
		name string
		ops  func(l *sim.AccessLog)
		want []string
	}{
		{
			name: "register read",
			ops: func(l *sim.AccessLog) {
				r := NewRegister[int]("r")
				r.DirectRead(l)
			},
			want: []string{"R(r)"},
		},
		{
			name: "register write",
			ops: func(l *sim.AccessLog) {
				r := NewRegister[int]("r")
				r.DirectWrite(l, 7)
			},
			want: []string{"W(r)"},
		},
		{
			name: "register write then read",
			ops: func(l *sim.AccessLog) {
				r := NewRegister[int]("r")
				r.DirectWrite(l, 7)
				if r.DirectRead(l) != 7 {
					t.Error("lost write")
				}
			},
			want: []string{"W(r)", "R(r)"},
		},
		{
			name: "array accesses are per-register",
			ops: func(l *sim.AccessLog) {
				a := NewArray[int]("a", 3)
				a.DirectWrite(l, 2, 9)
				a.DirectRead(l, 0)
				a.DirectRead(l, 2)
			},
			want: []string{"W(a[2])", "R(a[0])", "R(a[2])"},
		},
		{
			name: "snapshot update writes one cell",
			ops: func(l *sim.AccessLog) {
				s, _ := AsDirect(NewAtomicSnapshot[int]("s", 3))
				s.DirectUpdate(l, 1, 5)
			},
			want: []string{"W(s[1])"},
		},
		{
			name: "snapshot scan reads every cell in order",
			ops: func(l *sim.AccessLog) {
				s, _ := AsDirect(NewAtomicSnapshot[int]("s", 3))
				s.DirectScan(l, nil)
			},
			want: []string{"R(s[0])", "R(s[1])", "R(s[2])"},
		},
		{
			name: "snapshot update+scan",
			ops: func(l *sim.AccessLog) {
				s, _ := AsDirect(NewAtomicSnapshot[int]("s", 2))
				s.DirectUpdate(l, 0, 1)
				s.DirectScan(l, nil)
			},
			want: []string{"W(s[0])", "R(s[0])", "R(s[1])"},
		},
		{
			name: "consensus propose is a write",
			ops: func(l *sim.AccessLog) {
				c := NewConsensusObject("c", 2)
				c.DirectPropose(l, 0, 4)
				c.DirectPropose(l, 1, 8)
			},
			want: []string{"W(c)", "W(c)"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := sim.NewAccessLog()
			l.BeginStep()
			tc.ops(l)
			if got := events(l); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("recorded %v, want %v", got, tc.want)
			}
		})
	}
}

// stepperMachine performs one scripted shared-memory op per step; its final
// step reads decideFrom and decides that value — the minimal StepMachine
// for commutativity experiments.
type stepperMachine struct {
	ops        []func(l *sim.AccessLog)
	decideFrom *Register[int]
	log        *sim.AccessLog
	pc         int
	decision   sim.Value
}

func (m *stepperMachine) Init(ctx sim.MachineContext) { m.log = ctx.Log }

func (m *stepperMachine) Step(sim.Time) sim.MachineStatus {
	if m.pc < len(m.ops) {
		m.ops[m.pc](m.log)
		m.pc++
		return sim.MachineRunning
	}
	m.decision = sim.Value(m.decideFrom.DirectRead(m.log))
	return sim.MachineDecided
}

func (m *stepperMachine) Decision() sim.Value { return m.decision }

// TestCommutativityOracle is the semantic justification of the DPOR
// independence relation: two adjacent steps whose recorded access sets are
// disjoint produce DeepEqual-identical reports (and shared state) when
// swapped — each machine takes a later, deciding step, so the swap is
// mid-run, exactly the reordering DPOR prunes. The control shows a
// conflicting pair distinguishing the orders.
func TestCommutativityOracle(t *testing.T) {
	type fixture struct {
		regs []*Register[int]
		mk   func() []sim.StepMachine
	}
	build := func(shared bool) fixture {
		a, b := NewRegister[int]("a"), NewRegister[int]("b")
		f := fixture{regs: []*Register[int]{a, b}}
		f.mk = func() []sim.StepMachine {
			p0 := &stepperMachine{decideFrom: a, ops: []func(l *sim.AccessLog){
				func(l *sim.AccessLog) { a.DirectWrite(l, 1) },
			}}
			target := b
			if shared {
				target = a
			}
			p1 := &stepperMachine{decideFrom: target, ops: []func(l *sim.AccessLog){
				func(l *sim.AccessLog) { target.DirectWrite(l, 2) },
			}}
			return []sim.StepMachine{p0, p1}
		}
		return f
	}

	runOrder := func(f fixture, order []sim.PID) (*sim.Report, []int, []sim.Access) {
		// Fresh register contents per run: rebuild the fixture's registers
		// by zeroing them (machines write absolute values).
		for _, r := range f.regs {
			r.DirectWrite(nil, 0)
		}
		log := sim.NewAccessLog()
		rep, err := sim.RunMachines(sim.Config{
			Pattern:   sim.FailFree(2),
			Schedule:  sim.NewFixedSchedule(order),
			AccessLog: log,
		}, f.mk())
		if err != nil {
			t.Fatal(err)
		}
		state := make([]int, len(f.regs))
		for i, r := range f.regs {
			state[i] = r.Inspect()
		}
		var all []sim.Access
		for i := 0; i < log.Steps(); i++ {
			_, accs := log.Step(i)
			all = append(all, accs...)
		}
		return rep, state, all
	}

	t.Run("disjoint accesses commute", func(t *testing.T) {
		f := build(false)
		rep1, st1, accs := runOrder(f, []sim.PID{0, 1})
		if sim.AccessesConflict(accs[:1], accs[1:2]) {
			t.Fatalf("disjoint fixture reported a conflict: %v", accs)
		}
		rep2, st2, _ := runOrder(f, []sim.PID{1, 0})
		rep1.Accesses, rep2.Accesses = nil, nil // compare outcomes, not logs
		if !reflect.DeepEqual(rep1, rep2) {
			t.Fatalf("reports differ under reordering:\n%+v\n%+v", rep1, rep2)
		}
		if !reflect.DeepEqual(st1, st2) {
			t.Fatalf("shared state differs under reordering: %v vs %v", st1, st2)
		}
	})

	t.Run("conflicting accesses need not commute", func(t *testing.T) {
		f := build(true)
		_, st1, accs := runOrder(f, []sim.PID{0, 1})
		if !sim.AccessesConflict(accs[:1], accs[1:2]) {
			t.Fatalf("shared fixture reported no conflict: %v", accs)
		}
		_, st2, _ := runOrder(f, []sim.PID{1, 0})
		if reflect.DeepEqual(st1, st2) {
			t.Fatal("write-write conflict produced identical state under both orders; control is vacuous")
		}
	})
}

// TestDirectAccessNilLogZeroAlloc is the benchgate-side promise: with
// instrumentation compiled in but disabled (nil log), the Direct* hot paths
// allocate nothing.
func TestDirectAccessNilLogZeroAlloc(t *testing.T) {
	r := NewRegister[int64]("r")
	arr := NewArray[int64]("a", 4)
	snap, _ := AsDirect(NewAtomicSnapshot[int64]("s", 4))
	cons := NewConsensusObject("c", 4)
	scratch := make([]Opt[int64], 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		r.DirectWrite(nil, 1)
		_ = r.DirectRead(nil)
		arr.DirectWrite(nil, 2, 5)
		_ = arr.DirectRead(nil, 2)
		snap.DirectUpdate(nil, 1, 9)
		scratch = snap.DirectScan(nil, scratch[:0])
		_ = cons.DirectPropose(nil, 0, 3)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f objects per op batch; want 0", allocs)
	}
}
