package converge

import (
	"fmt"

	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// Machine resumes one Converge call one atomic step at a time, for use
// inside sim.StepMachine protocol automata. Where Converge(p, v) blocks the
// calling goroutine across its four snapshot operations, a Machine performs
// exactly one of them per StepOp call and parks its control state in between,
// producing the same picked value and commit flag as Converge for the same
// interleaving.
//
// One Machine is embedded per process automaton and reused across converge
// instances (Start rebinds it); its scan buffers are reused so the only
// allocation per converge call is the value set that escapes into the shared
// round-2 snapshot — the same allocation the goroutine path performs.
type Machine struct {
	me   sim.PID
	log  *sim.AccessLog
	inst *Instance
	a    memory.DirectSnapshot[sim.Value]
	b    memory.DirectSnapshot[proposal]
	in   sim.Value
	vs   ValueSet
	pc   uint8

	scanA []memory.Opt[sim.Value]
	scanB []memory.Opt[proposal]

	// Picked and Committed hold the call's results once StepOp returned true
	// (or Start returned true for a 0-converge).
	Picked    sim.Value
	Committed bool

	// Adopt, when non-nil, replaces the round-2 adopt rule — what a
	// non-committing process picks when some scan entry proposes commit. The
	// correct rule (minimum of the smallest committing set) is what makes
	// C-Agreement hold; the hook exists solely for mutation testing: the
	// schedule-space explorer (internal/explore) proves it catches the broken
	// protocol variant built on a wrong adopt rule. Protocols never set it.
	Adopt func(in sim.Value, smallest ValueSet) sim.Value
}

// Bind fixes the machine's process identity and the run's instrumentation
// (the access log; nil when the run is not recorded) from the enclosing
// automaton's context; call once from StepMachine.Init.
func (m *Machine) Bind(ctx sim.MachineContext) { m.me, m.log = ctx.ID, ctx.Log }

// Start prepares one Converge(inst, v) call. It returns true when the call
// completed without any atomic step — the 0-converge case, which by
// definition returns (v, false) immediately; otherwise the caller must drive
// StepOp until it returns true, spending one simulation step per call.
func (m *Machine) Start(inst *Instance, v sim.Value) (done bool) {
	if inst.k == 0 {
		m.Picked, m.Committed = v, false
		return true
	}
	a, ok := memory.AsDirect(inst.a)
	if !ok {
		panic(fmt.Sprintf("converge: instance %T does not support step-free access (use the goroutine runner for the Afek construction)", inst.a))
	}
	b, _ := memory.AsDirect(inst.b)
	m.inst = inst
	m.a, m.b = a, b
	m.in = v
	m.pc = 0
	return false
}

// StepOp performs the call's next atomic operation, returning true when the
// call has completed and Picked/Committed are valid. The operation sequence
// and the pick/commit logic mirror Instance.Converge exactly.
func (m *Machine) StepOp() (done bool) {
	switch m.pc {
	case 0: // round 1 update
		m.a.DirectUpdate(m.log, m.me, m.in)
		m.pc = 1
	case 1: // round 1 scan
		m.scanA = m.a.DirectScan(m.log, m.scanA[:0])
		m.vs = NewValueSet(m.scanA)
		m.pc = 2
	case 2: // round 2 update
		m.b.DirectUpdate(m.log, m.me, proposal{set: m.vs, commit: len(m.vs) <= m.inst.k})
		m.pc = 3
	case 3: // round 2 scan + result
		m.scanB = m.b.DirectScan(m.log, m.scanB[:0])
		allCommit := true
		var smallest ValueSet
		for _, e := range m.scanB {
			if !e.OK {
				continue
			}
			if !e.V.commit {
				allCommit = false
				continue
			}
			if smallest == nil || len(e.V.set) < len(smallest) {
				smallest = e.V.set
			}
		}
		switch {
		case allCommit:
			m.Picked, m.Committed = m.vs.Min(), true
		case smallest != nil:
			if m.Adopt != nil {
				m.Picked, m.Committed = m.Adopt(m.in, smallest), false
			} else {
				m.Picked, m.Committed = smallest.Min(), false
			}
		default:
			m.Picked, m.Committed = m.in, false
		}
		return true
	default:
		panic("converge: StepOp after completion")
	}
	return false
}
