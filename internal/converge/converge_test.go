package converge

import (
	"fmt"
	"testing"
	"testing/quick"

	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

func impls() []Impl { return []Impl{UseAtomic, UseAfek} }

// runConverge drives n processes through a single k-converge instance with
// the given inputs, schedule and pattern, returning picks and commits.
func runConverge(t *testing.T, n, k int, impl Impl, inputs []sim.Value, sched sim.Schedule, pattern sim.Pattern) (picks map[sim.PID]sim.Value, commits map[sim.PID]bool) {
	t.Helper()
	inst := NewInstance("c", n, k, impl)
	picks = make(map[sim.PID]sim.Value)
	commits = make(map[sim.PID]bool)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		me := sim.PID(i)
		in := inputs[i]
		bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
			v, c := inst.Converge(p, in)
			picks[me] = v
			commits[me] = c
			return v, true
		}
	}
	if _, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sched, Budget: 1 << 18}, bodies); err != nil {
		t.Fatalf("converge run: %v", err)
	}
	return picks, commits
}

func TestZeroConverge(t *testing.T) {
	inst := NewInstance("c", 2, 0, UseAtomic)
	body := func(p *sim.Proc) (sim.Value, bool) {
		v, c := inst.Converge(p, 41)
		if v != 41 || c {
			t.Errorf("0-converge = (%v, %v), want (41, false)", v, c)
		}
		return v, true
	}
	rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(2), Schedule: sim.RoundRobin()},
		[]sim.Body{body, body})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 0 {
		t.Errorf("0-converge must take no steps, took %d", rep.Steps)
	}
}

func TestConvergenceProperty(t *testing.T) {
	// If at most k distinct values are input, every process commits.
	for _, impl := range impls() {
		for _, tc := range []struct {
			n, k     int
			inputs   []sim.Value
			distinct int
		}{
			{3, 1, []sim.Value{7, 7, 7}, 1},
			{3, 2, []sim.Value{7, 8, 7}, 2},
			{4, 3, []sim.Value{1, 2, 3, 1}, 3},
			{5, 4, []sim.Value{1, 2, 3, 4, 4}, 4},
		} {
			name := fmt.Sprintf("%v/n%d-k%d", impl, tc.n, tc.k)
			t.Run(name, func(t *testing.T) {
				for seed := int64(0); seed < 10; seed++ {
					picks, commits := runConverge(t, tc.n, tc.k, impl, tc.inputs,
						sim.NewRandom(seed), sim.FailFree(tc.n))
					for p, c := range commits {
						if !c {
							t.Fatalf("seed %d: %v did not commit with %d ≤ k=%d values",
								seed, p, tc.distinct, tc.k)
						}
					}
					assertAgreement(t, picks, commits, tc.k, tc.inputs)
				}
			})
		}
	}
}

func TestCAgreementProperty(t *testing.T) {
	// Even with more than k distinct inputs, if anyone commits, at most k
	// values are picked in total — across many random schedules.
	for _, impl := range impls() {
		t.Run(impl.String(), func(t *testing.T) {
			n := 5
			inputs := []sim.Value{10, 20, 30, 40, 50}
			for k := 1; k < n; k++ {
				for seed := int64(0); seed < 25; seed++ {
					picks, commits := runConverge(t, n, k, impl, inputs,
						sim.NewRandom(seed+int64(k)*1000), sim.FailFree(n))
					assertAgreement(t, picks, commits, k, inputs)
				}
			}
		})
	}
}

func TestCValidityUnderCrash(t *testing.T) {
	for _, impl := range impls() {
		t.Run(impl.String(), func(t *testing.T) {
			n := 4
			inputs := []sim.Value{1, 2, 3, 4}
			pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{0: 3, 2: 9})
			for seed := int64(0); seed < 15; seed++ {
				picks, commits := runConverge(t, n, 2, impl, inputs,
					sim.NewRandom(seed), pattern)
				assertAgreement(t, picks, commits, 2, inputs)
				for _, p := range pattern.Correct().Members() {
					if _, ok := picks[p]; !ok {
						t.Fatalf("C-Termination: %v did not pick (seed %d)", p, seed)
					}
				}
			}
		})
	}
}

func TestNoCommitUnderLockstep(t *testing.T) {
	// Round-robin lockstep with n distinct values: every scan sees all n
	// values, so nobody may commit for k < n.
	n := 4
	inputs := []sim.Value{1, 2, 3, 4}
	picks, commits := runConverge(t, n, n-1, UseAtomic, inputs,
		sim.RoundRobin(), sim.FailFree(n))
	for p, c := range commits {
		if c {
			t.Errorf("%v committed under lockstep with n distinct values", p)
		}
	}
	assertAgreement(t, picks, commits, n-1, inputs)
}

func TestSoloCommits(t *testing.T) {
	// A process running alone sees only its own value: it must commit for
	// any k ≥ 1 (Convergence with 1 input).
	for _, impl := range impls() {
		t.Run(impl.String(), func(t *testing.T) {
			n := 3
			inst := NewInstance("c", n, 1, impl)
			var committed bool
			solo := func(p *sim.Proc) (sim.Value, bool) {
				v, c := inst.Converge(p, 5)
				committed = c
				return v, true
			}
			spin := func(p *sim.Proc) (sim.Value, bool) {
				for {
					p.Yield()
				}
			}
			pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{1: 1, 2: 1})
			if _, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.Priority(0)},
				[]sim.Body{solo, spin, spin}); err != nil {
				t.Fatal(err)
			}
			if !committed {
				t.Error("solo process did not commit")
			}
		})
	}
}

// assertAgreement checks C-Agreement and C-Validity on one outcome.
func assertAgreement(t *testing.T, picks map[sim.PID]sim.Value, commits map[sim.PID]bool, k int, inputs []sim.Value) {
	t.Helper()
	anyCommit := false
	for _, c := range commits {
		anyCommit = anyCommit || c
	}
	distinct := make(map[sim.Value]bool)
	for _, v := range picks {
		distinct[v] = true
	}
	if anyCommit && len(distinct) > k {
		t.Fatalf("C-Agreement: %d > k=%d values picked with a commit: %v", len(distinct), k, picks)
	}
	valid := make(map[sim.Value]bool, len(inputs))
	for _, v := range inputs {
		valid[v] = true
	}
	for p, v := range picks {
		if !valid[v] {
			t.Fatalf("C-Validity: %v picked unproposed %d", p, v)
		}
	}
}

// TestQuickConvergeProperties drives randomized configurations through the
// atomic implementation and checks all four properties.
func TestQuickConvergeProperties(t *testing.T) {
	prop := func(seed int64, kRaw, spread uint8) bool {
		n := 5
		k := int(kRaw)%(n-1) + 1
		// spread controls how many distinct inputs occur.
		numDistinct := int(spread)%n + 1
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = sim.Value(i%numDistinct + 1)
		}
		inst := NewInstance("c", n, k, UseAtomic)
		picks := make(map[sim.PID]sim.Value)
		commits := make(map[sim.PID]bool)
		bodies := make([]sim.Body, n)
		for i := range bodies {
			me := sim.PID(i)
			in := inputs[i]
			bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
				v, c := inst.Converge(p, in)
				picks[me] = v
				commits[me] = c
				return v, true
			}
		}
		if _, err := sim.Run(sim.Config{Pattern: sim.FailFree(n), Schedule: sim.NewRandom(seed)}, bodies); err != nil {
			return false
		}
		anyCommit := false
		for _, c := range commits {
			anyCommit = anyCommit || c
		}
		distinct := make(map[sim.Value]bool)
		for _, v := range picks {
			distinct[v] = true
		}
		if anyCommit && len(distinct) > k {
			return false
		}
		if numDistinct <= k {
			for _, c := range commits {
				if !c {
					return false
				}
			}
		}
		valid := make(map[sim.Value]bool)
		for _, v := range inputs {
			valid[v] = true
		}
		for _, v := range picks {
			if !valid[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestValueSet(t *testing.T) {
	vs := ValueSet{}
	vs = vs.add(5)
	vs = vs.add(2)
	vs = vs.add(9)
	vs = vs.add(5) // dup
	if len(vs) != 3 || vs[0] != 2 || vs[1] != 5 || vs[2] != 9 {
		t.Fatalf("ValueSet = %v", vs)
	}
	if vs.Min() != 2 {
		t.Errorf("Min = %v", vs.Min())
	}
}

func TestNewValueSetFromScan(t *testing.T) {
	scan := []memory.Opt[sim.Value]{
		memory.Some[sim.Value](3),
		memory.None[sim.Value](),
		memory.Some[sim.Value](1),
		memory.Some[sim.Value](3),
	}
	vs := NewValueSet(scan)
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 3 {
		t.Fatalf("NewValueSet = %v", vs)
	}
}

func TestValueSetMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ValueSet{}.Min()
}

func TestSeriesIdentity(t *testing.T) {
	s := NewSeries("x", 3, UseAtomic)
	a := s.At(1, 2, 2)
	b := s.At(1, 2, 2)
	c := s.At(1, 2, 1)
	d := s.At(2, 2, 2)
	if a != b {
		t.Error("same indices should give the same instance")
	}
	if a == c || a == d {
		t.Error("different indices/params must give distinct instances")
	}
	if c.K() != 1 || a.K() != 2 {
		t.Error("K mismatch")
	}
}

func TestNegativeKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInstance("c", 2, -1, UseAtomic)
}

func TestImplString(t *testing.T) {
	if UseAtomic.String() != "atomic-snapshot" || UseAfek.String() != "afek-snapshot" {
		t.Error("Impl strings wrong")
	}
}

func TestAfekCostHigherThanAtomic(t *testing.T) {
	// The registers-only implementation must cost strictly more steps.
	count := func(impl Impl) int64 {
		inst := NewInstance("c", 3, 1, impl)
		bodies := make([]sim.Body, 3)
		for i := range bodies {
			bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
				v, _ := inst.Converge(p, 1)
				return v, true
			}
		}
		rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(3), Schedule: sim.RoundRobin(), Budget: 1 << 18}, bodies)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Steps
	}
	atomic, afek := count(UseAtomic), count(UseAfek)
	if afek <= atomic {
		t.Errorf("afek steps %d ≤ atomic steps %d", afek, atomic)
	}
}
