// Package converge implements the k-converge routine the paper borrows from
// Yang, Neiger and Gafni ("Structured derivations of consensus algorithms
// for failure detectors", PODC 1998 — the paper's [21]).
//
// A process calls k-converge with an input value and gets back a picked
// value and a commit flag, with the properties (paper Section 5.1):
//
//	C-Termination: every correct process picks some value.
//	C-Validity:    a picked value is some process's input.
//	C-Agreement:   if some process commits, at most k values are picked.
//	Convergence:   if at most k distinct values are input, every process
//	               that picks also commits.
//
// By definition 0-converge(v) always returns (v, false).
//
// The implementation uses two atomic-snapshot rounds. Round 1: write the
// input, scan, and let V be the distinct values seen; propose commit iff
// |V| ≤ k. Round 2: write (V, commit), scan; if every entry proposes commit,
// return (min V, committed); if some entry proposes commit, adopt the
// minimum of the smallest committing set; otherwise keep the input. Because
// snapshot scans are related by containment, the V-sets form a chain: all
// values picked when anyone commits lie in the largest committing set, which
// has at most k elements.
package converge

import (
	"fmt"
	"sync"

	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// ValueSet is a sorted set of distinct values.
type ValueSet []sim.Value

// NewValueSet collects the distinct present values of a snapshot scan.
func NewValueSet(scan []memory.Opt[sim.Value]) ValueSet {
	var vs ValueSet
	for _, c := range scan {
		if c.OK {
			vs = vs.add(c.V)
		}
	}
	return vs
}

func (vs ValueSet) add(v sim.Value) ValueSet {
	lo, hi := 0, len(vs)
	for lo < hi {
		mid := (lo + hi) / 2
		if vs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(vs) && vs[lo] == v {
		return vs
	}
	out := make(ValueSet, 0, len(vs)+1)
	out = append(out, vs[:lo]...)
	out = append(out, v)
	out = append(out, vs[lo:]...)
	return out
}

// Min returns the smallest value; it panics on an empty set.
func (vs ValueSet) Min() sim.Value {
	if len(vs) == 0 {
		panic("converge: Min of empty ValueSet")
	}
	return vs[0]
}

// proposal is a round-2 entry: the proposer's round-1 value set and whether
// it proposes to commit.
type proposal struct {
	set    ValueSet
	commit bool
}

// StateFP implements sim.Fingerprinter for the explorer's state digests:
// proposals live in shared snapshot cells, so their fingerprint must be a
// function of their content alone.
func (p proposal) StateFP() uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, v := range p.set {
		h = (h ^ uint64(v)) * 0x100000001b3
	}
	if p.commit {
		h ^= 0x8000000000000001
	}
	return h
}

// Impl selects the snapshot implementation backing converge instances.
type Impl int

const (
	// UseAtomic backs instances with one-step atomic snapshot objects.
	UseAtomic Impl = iota
	// UseAfek backs instances with the registers-only Afek et al. snapshot,
	// exercising the paper's "registers suffice" claim at O(n²) step cost.
	UseAfek
)

// String implements fmt.Stringer.
func (i Impl) String() string {
	switch i {
	case UseAtomic:
		return "atomic-snapshot"
	case UseAfek:
		return "afek-snapshot"
	default:
		return fmt.Sprintf("Impl(%d)", int(i))
	}
}

// Instance is one k-converge object shared by the n processes.
type Instance struct {
	k int
	a memory.Snapshot[sim.Value]
	b memory.Snapshot[proposal]
}

// NewInstance creates a k-converge object for n processes.
func NewInstance(name string, n, k int, impl Impl) *Instance {
	if k < 0 {
		panic(fmt.Sprintf("converge: negative k=%d", k))
	}
	inst := &Instance{k: k}
	switch impl {
	case UseAtomic:
		inst.a = memory.NewAtomicSnapshot[sim.Value](name+".A", n)
		inst.b = memory.NewAtomicSnapshot[proposal](name+".B", n)
	case UseAfek:
		inst.a = memory.NewAfekSnapshot[sim.Value](name+".A", n)
		inst.b = memory.NewAfekSnapshot[proposal](name+".B", n)
	default:
		panic(fmt.Sprintf("converge: unknown Impl %d", int(impl)))
	}
	return inst
}

// K returns the instance's convergence parameter.
func (c *Instance) K() int { return c.k }

// Converge runs the routine for process p with input v, returning the picked
// value and whether p commits to it.
func (c *Instance) Converge(p *sim.Proc, v sim.Value) (sim.Value, bool) {
	if c.k == 0 {
		return v, false // 0-converge, by definition
	}
	c.a.Update(p, p.ID(), v)
	vs := NewValueSet(c.a.Scan(p))
	mine := proposal{set: vs, commit: len(vs) <= c.k}
	c.b.Update(p, p.ID(), mine)
	scan := c.b.Scan(p)

	allCommit := true
	var smallest ValueSet
	for _, e := range scan {
		if !e.OK {
			continue
		}
		if !e.V.commit {
			allCommit = false
			continue
		}
		if smallest == nil || len(e.V.set) < len(smallest) {
			smallest = e.V.set
		}
	}
	switch {
	case allCommit:
		// Own entry is in the scan, so mine.commit is true and vs is a
		// committing set.
		return vs.Min(), true
	case smallest != nil:
		return smallest.Min(), false
	default:
		return v, false
	}
}

// Series is a lazily-allocated family of converge instances, indexed the way
// the paper indexes them: converge[r] and converge[r][k], with the instance's
// convergence parameter part of the identity (so that processes with
// divergent failure detector views, and hence divergent parameters, use
// distinct objects).
type Series struct {
	mu   sync.Mutex
	name string
	n    int
	impl Impl
	m    map[seriesKey]*Instance
}

type seriesKey struct {
	r, k, param int
}

// NewSeries creates a converge-instance family for n processes.
func NewSeries(name string, n int, impl Impl) *Series {
	return &Series{name: name, n: n, impl: impl, m: make(map[seriesKey]*Instance)}
}

// At returns the param-converge instance with indices [r][k], creating it on
// first use. The accessor takes no simulation steps; object creation is
// bookkeeping, not shared-memory communication.
func (s *Series) At(r, k, param int) *Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := seriesKey{r: r, k: k, param: param}
	inst, ok := s.m[key]
	if !ok {
		inst = NewInstance(fmt.Sprintf("%s[%d][%d]/%d", s.name, r, k, param), s.n, param, s.impl)
		s.m[key] = inst
	}
	return inst
}
