package sim

import (
	"reflect"
	"testing"
)

// countdownMachine yields for steps-1 steps, then decides (or halts) on its
// last step. Its Body twin below must produce identical reports.
type countdownMachine struct {
	steps   int
	val     Value
	decides bool
	taken   int
}

func (m *countdownMachine) Init(MachineContext) {}
func (m *countdownMachine) Decision() Value     { return m.val }
func (m *countdownMachine) Step(Time) MachineStatus {
	m.taken++
	if m.taken < m.steps {
		return MachineRunning
	}
	if m.decides {
		return MachineDecided
	}
	return MachineHalted
}

func countdownBody(steps int, val Value, decides bool) Body {
	return func(p *Proc) (Value, bool) {
		for i := 0; i < steps; i++ {
			p.Yield()
		}
		return val, decides
	}
}

// spinMachine never returns; its twin body yields forever.
type spinMachine struct{}

func (spinMachine) Init(MachineContext)     {}
func (spinMachine) Decision() Value         { return 0 }
func (spinMachine) Step(Time) MachineStatus { return MachineRunning }

func spinBody(p *Proc) (Value, bool) {
	for {
		p.Yield()
	}
}

func TestRunMachinesMatchesRunToyWorkloads(t *testing.T) {
	type tc struct {
		name     string
		pattern  Pattern
		budget   int64
		stopAt   Time
		machines func() []StepMachine
		bodies   func() []Body
	}
	cases := []tc{
		{
			name:    "all-decide",
			pattern: FailFree(3),
			machines: func() []StepMachine {
				return []StepMachine{
					&countdownMachine{steps: 3, val: 10, decides: true},
					&countdownMachine{steps: 1, val: 20, decides: true},
					&countdownMachine{steps: 5, val: 30, decides: true},
				}
			},
			bodies: func() []Body {
				return []Body{
					countdownBody(3, 10, true),
					countdownBody(1, 20, true),
					countdownBody(5, 30, true),
				}
			},
		},
		{
			name:    "halt-without-deciding",
			pattern: FailFree(2),
			machines: func() []StepMachine {
				return []StepMachine{
					&countdownMachine{steps: 2, val: 0, decides: false},
					&countdownMachine{steps: 4, val: 7, decides: true},
				}
			},
			bodies: func() []Body {
				return []Body{countdownBody(2, 0, false), countdownBody(4, 7, true)}
			},
		},
		{
			name:    "crash-mid-run",
			pattern: CrashPattern(3, map[PID]Time{1: 4}),
			machines: func() []StepMachine {
				return []StepMachine{
					&countdownMachine{steps: 6, val: 1, decides: true},
					&countdownMachine{steps: 50, val: 2, decides: true},
					&countdownMachine{steps: 6, val: 3, decides: true},
				}
			},
			bodies: func() []Body {
				return []Body{
					countdownBody(6, 1, true),
					countdownBody(50, 2, true),
					countdownBody(6, 3, true),
				}
			},
		},
		{
			name:    "crash-before-first-step",
			pattern: CrashPattern(2, map[PID]Time{0: 0}),
			machines: func() []StepMachine {
				return []StepMachine{
					&countdownMachine{steps: 9, val: 1, decides: true},
					&countdownMachine{steps: 2, val: 2, decides: true},
				}
			},
			bodies: func() []Body {
				return []Body{countdownBody(9, 1, true), countdownBody(2, 2, true)}
			},
		},
		{
			name:    "budget-exhausted",
			pattern: FailFree(2),
			budget:  25,
			machines: func() []StepMachine {
				return []StepMachine{spinMachine{}, spinMachine{}}
			},
			bodies: func() []Body { return []Body{spinBody, spinBody} },
		},
		{
			name:    "stop-when",
			pattern: FailFree(2),
			stopAt:  13,
			machines: func() []StepMachine {
				return []StepMachine{spinMachine{}, &countdownMachine{steps: 3, val: 5, decides: true}}
			},
			bodies: func() []Body { return []Body{spinBody, countdownBody(3, 5, true)} },
		},
	}
	for _, c := range cases {
		for _, sched := range []string{"roundrobin", "random"} {
			t.Run(c.name+"/"+sched, func(t *testing.T) {
				mk := func() Schedule {
					if sched == "random" {
						return NewRandom(42)
					}
					return RoundRobin()
				}
				mkCfg := func() Config {
					cfg := Config{Pattern: c.pattern, Schedule: mk(), Budget: c.budget}
					if c.stopAt > 0 {
						stop := c.stopAt
						cfg.StopWhen = func(t Time) bool { return t >= stop }
					}
					return cfg
				}
				gRep, gErr := Run(mkCfg(), c.bodies())
				mRep, mErr := RunMachines(mkCfg(), c.machines())
				if (gErr == nil) != (mErr == nil) {
					t.Fatalf("error mismatch: goroutine=%v machine=%v", gErr, mErr)
				}
				if !reflect.DeepEqual(gRep, mRep) {
					t.Fatalf("report mismatch:\n goroutine: %+v\n machine:   %+v", gRep, mRep)
				}
			})
		}
	}
}

// TestRunTaskMachinesRotation pins the fair local task rotation against
// RunTasks: two spin tasks plus one decider per process, under both
// schedules.
func TestRunTaskMachinesRotation(t *testing.T) {
	pattern := CrashPattern(3, map[PID]Time{2: 9})
	mkMachines := func() []MachineTaskSet {
		out := make([]MachineTaskSet, 3)
		for i := range out {
			out[i] = MachineTaskSet{
				spinMachine{},
				&countdownMachine{steps: 4 + i, val: Value(100 + i), decides: true},
			}
		}
		return out
	}
	mkBodies := func() []TaskSet {
		out := make([]TaskSet, 3)
		for i := range out {
			out[i] = TaskSet{spinBody, countdownBody(4+i, Value(100+i), true)}
		}
		return out
	}
	for _, sched := range []string{"roundrobin", "random"} {
		t.Run(sched, func(t *testing.T) {
			mk := func() Schedule {
				if sched == "random" {
					return NewRandom(7)
				}
				return RoundRobin()
			}
			gRep, gErr := RunTasks(Config{Pattern: pattern, Schedule: mk(), Budget: 50_000}, mkBodies())
			mRep, mErr := RunTaskMachines(Config{Pattern: pattern, Schedule: mk(), Budget: 50_000}, mkMachines())
			if (gErr == nil) != (mErr == nil) {
				t.Fatalf("error mismatch: goroutine=%v machine=%v", gErr, mErr)
			}
			if !reflect.DeepEqual(gRep, mRep) {
				t.Fatalf("report mismatch:\n goroutine: %+v\n machine:   %+v", gRep, mRep)
			}
		})
	}
}

// TestRunMachinesZeroAllocSteps guards the machine runner's core promise:
// once a run is warmed up, granting steps allocates nothing.
func TestRunMachinesZeroAllocSteps(t *testing.T) {
	allocs := testing.AllocsPerRun(20, func() {
		_, err := RunMachines(Config{
			Pattern:  FailFree(4),
			Schedule: RoundRobin(),
			Budget:   40_000,
		}, []StepMachine{
			&countdownMachine{steps: 9000, val: 1, decides: true},
			&countdownMachine{steps: 9000, val: 2, decides: true},
			&countdownMachine{steps: 9000, val: 3, decides: true},
			&countdownMachine{steps: 9000, val: 4, decides: true},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	// ~36k steps per run; the only allocations allowed are the per-run report
	// structures (maps, StepsBy, machine slice bookkeeping).
	if allocs > 20 {
		t.Fatalf("RunMachines allocated %.0f objects per 36k-step run; want fixed per-run overhead only", allocs)
	}
}
