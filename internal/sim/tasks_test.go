package sim

import "testing"

func TestRunTasksBasics(t *testing.T) {
	// One deciding task and one spinning task per process: the run ends as
	// soon as every correct process has decided, with the spinners poisoned.
	decide := func(p *Proc) (Value, bool) {
		for i := 0; i < 3; i++ {
			p.Yield()
		}
		return Value(p.ID()) + 10, true
	}
	spin := func(p *Proc) (Value, bool) {
		for {
			p.Yield()
		}
	}
	rep, err := RunTasks(Config{Pattern: FailFree(2), Schedule: RoundRobin()},
		[]TaskSet{{decide, spin}, {decide, spin}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decided[0] != 10 || rep.Decided[1] != 11 {
		t.Fatalf("decisions %v", rep.Decided)
	}
}

func TestRunTasksFairRotation(t *testing.T) {
	// With two spinning tasks per process, both must get steps.
	counts := make([]int64, 4) // (pid, task) flattened
	mk := func(slot int) Body {
		return func(p *Proc) (Value, bool) {
			for {
				p.Yield()
				counts[slot]++
			}
		}
	}
	_, err := RunTasks(Config{Pattern: FailFree(2), Schedule: RoundRobin(), Budget: 400},
		[]TaskSet{{mk(0), mk(1)}, {mk(2), mk(3)}})
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	for i, c := range counts {
		if c < 80 {
			t.Errorf("task %d starved: %d steps", i, c)
		}
	}
}

func TestRunTasksCrashKillsAllTasks(t *testing.T) {
	spin := func(p *Proc) (Value, bool) {
		for {
			p.Yield()
		}
	}
	decide := func(p *Proc) (Value, bool) {
		p.Yield()
		return 7, true
	}
	pattern := CrashPattern(2, map[PID]Time{1: 5})
	rep, err := RunTasks(Config{Pattern: pattern, Schedule: RoundRobin(), Budget: 1000},
		[]TaskSet{{decide, spin}, {spin, spin}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Crashed.Has(1) {
		t.Fatal("p2 should crash")
	}
	if rep.StepsBy[1] > 4 {
		t.Fatalf("crashed process took %d steps after crash time", rep.StepsBy[1])
	}
}

func TestRunTasksStopWhen(t *testing.T) {
	spin := func(p *Proc) (Value, bool) {
		for {
			p.Yield()
		}
	}
	rep, err := RunTasks(Config{
		Pattern:  FailFree(1),
		Schedule: RoundRobin(),
		StopWhen: func(t Time) bool { return t >= 5 },
	}, []TaskSet{{spin, spin}})
	if err == nil {
		t.Fatal("stopped run without decisions must error")
	}
	if !rep.Stopped || rep.Steps != 5 {
		t.Fatalf("stopped=%v steps=%d", rep.Stopped, rep.Steps)
	}
}

func TestRunTasksHaltedTask(t *testing.T) {
	halt := func(p *Proc) (Value, bool) {
		p.Yield()
		return 0, false
	}
	decide := func(p *Proc) (Value, bool) {
		for i := 0; i < 4; i++ {
			p.Yield() // slower than the halting task, which must finish first
		}
		return 3, true
	}
	rep, err := RunTasks(Config{Pattern: FailFree(1), Schedule: RoundRobin()},
		[]TaskSet{{halt, decide}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Halted.Has(0) {
		t.Error("halted task not recorded")
	}
	if rep.Decided[0] != 3 {
		t.Errorf("decision %v", rep.Decided)
	}
}

func TestRunTasksFirstDecisionWins(t *testing.T) {
	// Two deciding tasks in one process: the first decision is recorded.
	fast := func(p *Proc) (Value, bool) {
		p.Yield()
		return 1, true
	}
	slow := func(p *Proc) (Value, bool) {
		for i := 0; i < 10; i++ {
			p.Yield()
		}
		return 2, true
	}
	rep, err := RunTasks(Config{Pattern: FailFree(1), Schedule: RoundRobin()},
		[]TaskSet{{slow, fast}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decided[0] != 1 {
		t.Fatalf("decision %v, want the fast task's 1", rep.Decided[0])
	}
}

func TestRunTasksBudget(t *testing.T) {
	spin := func(p *Proc) (Value, bool) {
		for {
			p.Yield()
		}
	}
	rep, err := RunTasks(Config{Pattern: FailFree(2), Schedule: NewRandom(1), Budget: 64},
		[]TaskSet{{spin}, {spin, spin}})
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	if !rep.BudgetExhausted || rep.Steps != 64 {
		t.Fatalf("exhausted=%v steps=%d", rep.BudgetExhausted, rep.Steps)
	}
}

func TestEventuallySynchronousValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bound 0")
		}
	}()
	EventuallySynchronous(10, 0, 1)
}

func TestStarveVictimOnlyWhenAlone(t *testing.T) {
	// If the victim is the only enabled process, Starve must still grant it
	// (the schedule contract requires a member of enabled).
	body := func(p *Proc) (Value, bool) {
		p.Yield()
		return 1, true
	}
	rep, err := Run(Config{Pattern: FailFree(1), Schedule: Starve(0, nil)},
		[]Body{body})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decided[0] != 1 {
		t.Fatal("victim never ran")
	}
}
