package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	tests := []struct {
		name string
		s    Set
		want []PID
	}{
		{"empty", EmptySet, nil},
		{"single", SetOf(3), []PID{3}},
		{"multi", SetOf(0, 2, 5), []PID{0, 2, 5}},
		{"dup", SetOf(1, 1, 1), []PID{1}},
		{"full4", FullSet(4), []PID{0, 1, 2, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.s.Members()
			if len(got) != len(tt.want) {
				t.Fatalf("Members() = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Members() = %v, want %v", got, tt.want)
				}
			}
			if tt.s.Len() != len(tt.want) {
				t.Errorf("Len() = %d, want %d", tt.s.Len(), len(tt.want))
			}
		})
	}
}

func TestSetAlgebra(t *testing.T) {
	a := SetOf(0, 1, 2)
	b := SetOf(2, 3)
	if got := a.Union(b); got != SetOf(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != SetOf(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != SetOf(0, 1) {
		t.Errorf("Minus = %v", got)
	}
	if !SetOf(1).SubsetOf(a) || b.SubsetOf(a) {
		t.Errorf("SubsetOf wrong")
	}
	if got := a.Complement(5); got != SetOf(3, 4) {
		t.Errorf("Complement = %v", got)
	}
	if a.Min() != 0 || b.Min() != 2 {
		t.Errorf("Min wrong")
	}
	if got := a.Remove(1); got != SetOf(0, 2) {
		t.Errorf("Remove = %v", got)
	}
	if a.Has(3) || !a.Has(1) {
		t.Errorf("Has wrong")
	}
}

func TestSetString(t *testing.T) {
	if got := SetOf(0, 2).String(); got != "{p1,p3}" {
		t.Errorf("String = %q", got)
	}
	if got := EmptySet.String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

func TestSetProperties(t *testing.T) {
	// Property: complement of complement is identity within FullSet(n).
	f := func(raw uint64) bool {
		n := 8
		s := Set(raw) & FullSet(n)
		return s.Complement(n).Complement(n) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Property: |A ∪ B| + |A ∩ B| = |A| + |B|.
	g := func(ra, rb uint64) bool {
		a, b := Set(ra)&FullSet(16), Set(rb)&FullSet(16)
		return a.Union(b).Len()+a.Intersect(b).Len() == a.Len()+b.Len()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	// Property: Minus is intersection with complement.
	h := func(ra, rb uint64) bool {
		a, b := Set(ra)&FullSet(16), Set(rb)&FullSet(16)
		return a.Minus(b) == a.Intersect(b.Complement(16))
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

func TestPIDString(t *testing.T) {
	if got := PID(0).String(); got != "p1" {
		t.Errorf("PID(0) = %q, want p1 (the paper's 1-based names)", got)
	}
}

func TestPatternBasics(t *testing.T) {
	p := FailFree(4)
	if p.N() != 4 || !p.Faulty().IsEmpty() || p.Correct() != FullSet(4) {
		t.Fatalf("FailFree wrong: %+v", p)
	}
	if p.NumFaulty() != 0 || !p.InEnvironment(0) {
		t.Errorf("fail-free environment wrong")
	}

	q := CrashPattern(4, map[PID]Time{1: 100, 3: 5})
	if q.Faulty() != SetOf(1, 3) {
		t.Errorf("Faulty = %v", q.Faulty())
	}
	if q.Correct() != SetOf(0, 2) {
		t.Errorf("Correct = %v", q.Correct())
	}
	if !q.CrashedBy(3, 5) || q.CrashedBy(3, 4) || q.CrashedBy(0, 1<<40) {
		t.Errorf("CrashedBy wrong")
	}
	if q.InEnvironment(1) || !q.InEnvironment(2) || !q.InEnvironment(3) {
		t.Errorf("InEnvironment wrong")
	}
}

func TestPatternAllCrashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for no-correct-process pattern")
		}
	}()
	CrashPattern(2, map[PID]Time{0: 1, 1: 1})
}

func TestPatternNoCrashEntryIgnored(t *testing.T) {
	p := CrashPattern(3, map[PID]Time{0: NoCrash})
	if !p.Faulty().IsEmpty() {
		t.Errorf("NoCrash entry should leave the process correct")
	}
}

// countBody returns after taking exactly k steps.
func countBody(k int) Body {
	return func(p *Proc) (Value, bool) {
		for i := 0; i < k; i++ {
			p.Yield()
		}
		return Value(p.ID()), true
	}
}

func TestRunAllDecide(t *testing.T) {
	pattern := FailFree(3)
	rep, err := Run(Config{Pattern: pattern, Schedule: RoundRobin()},
		[]Body{countBody(5), countBody(3), countBody(7)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 15 {
		t.Errorf("Steps = %d, want 15", rep.Steps)
	}
	for i := 0; i < 3; i++ {
		if rep.Decided[PID(i)] != Value(i) {
			t.Errorf("Decided[%d] = %v", i, rep.Decided[PID(i)])
		}
		want := int64([]int{5, 3, 7}[i])
		if rep.StepsBy[i] != want {
			t.Errorf("StepsBy[%d] = %d, want %d", i, rep.StepsBy[i], want)
		}
	}
	if len(rep.DecidedValues()) != 3 {
		t.Errorf("DecidedValues = %v", rep.DecidedValues())
	}
}

func TestRunDeterminism(t *testing.T) {
	mk := func() []Body {
		shared := new(int64)
		bodies := make([]Body, 4)
		for i := range bodies {
			bodies[i] = func(p *Proc) (Value, bool) {
				var acc Value
				for k := 0; k < 50; k++ {
					p.Step("acc", func() {
						*shared += int64(p.ID()) + 1
						acc = Value(*shared)
					})
				}
				return acc, true
			}
		}
		return bodies
	}
	run := func() map[PID]Value {
		rep, err := Run(Config{Pattern: FailFree(4), Schedule: NewRandom(42)}, mk())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Decided
	}
	a, b := run(), run()
	for p, v := range a {
		if b[p] != v {
			t.Fatalf("non-deterministic: %v: %v vs %v", p, v, b[p])
		}
	}
}

func TestRunCrash(t *testing.T) {
	// p1 crashes at time 4: it takes at most 3 steps under round-robin.
	pattern := CrashPattern(2, map[PID]Time{1: 4})
	rep, err := Run(Config{Pattern: pattern, Schedule: RoundRobin()},
		[]Body{countBody(10), countBody(1000)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Crashed.Has(1) {
		t.Errorf("p2 should have crashed")
	}
	if _, ok := rep.Decided[1]; ok {
		t.Errorf("crashed process decided")
	}
	if rep.Decided[0] != 0 {
		t.Errorf("p1 should decide")
	}
	if rep.StepsBy[1] > 3 {
		t.Errorf("crashed process took %d steps, crash time 4 allows ≤ 3", rep.StepsBy[1])
	}
}

func TestRunCrashAtZeroTakesNoSteps(t *testing.T) {
	pattern := CrashPattern(2, map[PID]Time{1: 0})
	rep, err := Run(Config{Pattern: pattern, Schedule: RoundRobin()},
		[]Body{countBody(2), countBody(100)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StepsBy[1] != 0 {
		t.Errorf("process crashed at 0 took %d steps", rep.StepsBy[1])
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	spin := func(p *Proc) (Value, bool) {
		for {
			p.Yield()
		}
	}
	rep, err := Run(Config{Pattern: FailFree(2), Schedule: RoundRobin(), Budget: 100},
		[]Body{spin, spin})
	if err == nil {
		t.Fatal("expected budget exhaustion error")
	}
	if !rep.BudgetExhausted {
		t.Errorf("BudgetExhausted not set")
	}
	if rep.Steps != 100 {
		t.Errorf("Steps = %d, want 100", rep.Steps)
	}
}

func TestRunHaltWithoutDeciding(t *testing.T) {
	halt := func(p *Proc) (Value, bool) {
		p.Yield()
		return 0, false
	}
	rep, err := Run(Config{Pattern: FailFree(2), Schedule: RoundRobin()},
		[]Body{halt, countBody(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Halted.Has(0) {
		t.Errorf("p1 should be halted")
	}
	if _, ok := rep.Decided[0]; ok {
		t.Errorf("halted process should not appear in Decided")
	}
}

func TestRunStopWhen(t *testing.T) {
	spin := func(p *Proc) (Value, bool) {
		for {
			p.Yield()
		}
	}
	rep, err := Run(Config{
		Pattern:  FailFree(2),
		Schedule: RoundRobin(),
		StopWhen: func(t Time) bool { return t >= 10 },
	}, []Body{spin, spin})
	if err == nil {
		t.Fatal("stopped run with live correct processes should report an error")
	}
	if !rep.Stopped {
		t.Errorf("Stopped not set")
	}
	if rep.BudgetExhausted {
		t.Errorf("BudgetExhausted should not be set for StopWhen")
	}
	if rep.Steps != 10 {
		t.Errorf("Steps = %d, want 10", rep.Steps)
	}
}

func TestRunTracer(t *testing.T) {
	var events []Event
	_, err := Run(Config{
		Pattern:  FailFree(2),
		Schedule: RoundRobin(),
		Tracer:   func(e Event) { events = append(events, e) },
	}, []Body{countBody(2), countBody(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	for i, e := range events {
		if e.T != Time(i+1) {
			t.Errorf("event %d at time %d, want %d", i, e.T, i+1)
		}
		if e.Label != "yield" {
			t.Errorf("event label %q", e.Label)
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("body panic should propagate out of Run")
		}
	}()
	boom := func(p *Proc) (Value, bool) {
		p.Yield()
		panic("kaboom")
	}
	_, _ = Run(Config{Pattern: FailFree(1), Schedule: RoundRobin()}, []Body{boom})
}

func TestRoundRobinFairness(t *testing.T) {
	rep, err := Run(Config{Pattern: FailFree(3), Schedule: RoundRobin(), Budget: 99},
		[]Body{countBody(1000), countBody(1000), countBody(1000)})
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	for i := 0; i < 3; i++ {
		if rep.StepsBy[i] != 33 {
			t.Errorf("StepsBy[%d] = %d, want 33", i, rep.StepsBy[i])
		}
	}
}

func TestRandomScheduleFairness(t *testing.T) {
	rep, err := Run(Config{Pattern: FailFree(4), Schedule: NewRandom(7), Budget: 4000},
		[]Body{countBody(1 << 30), countBody(1 << 30), countBody(1 << 30), countBody(1 << 30)})
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	for i := 0; i < 4; i++ {
		if rep.StepsBy[i] < 800 || rep.StepsBy[i] > 1200 {
			t.Errorf("StepsBy[%d] = %d, not near 1000", i, rep.StepsBy[i])
		}
	}
}

func TestPrioritySchedule(t *testing.T) {
	// p3 runs alone until it returns; then p1; then p2.
	rep, err := Run(Config{Pattern: FailFree(3), Schedule: Priority(2, 0, 1)},
		[]Body{countBody(5), countBody(5), countBody(5)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecidedAt[2] >= rep.DecidedAt[0] || rep.DecidedAt[0] >= rep.DecidedAt[1] {
		t.Errorf("priority order violated: %v", rep.DecidedAt)
	}
}

func TestPriorityDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Priority(1, 1)
}

func TestScriptSoloAndEachOnce(t *testing.T) {
	var order []PID
	sched := NewScript(RoundRobin(),
		Solo(2, 3),
		EachOnce(),
		Solo(0, 2),
	)
	_, err := Run(Config{
		Pattern:  FailFree(3),
		Schedule: sched,
		Budget:   8,
		Tracer:   func(e Event) { order = append(order, e.P) },
	}, []Body{countBody(100), countBody(100), countBody(100)})
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	want := []PID{2, 2, 2, 0, 1, 2, 0, 0}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestScriptAppendMidRun(t *testing.T) {
	sched := NewScript(RoundRobin(), Solo(1, 2))
	appended := false
	var order []PID
	_, err := Run(Config{
		Pattern:  FailFree(2),
		Schedule: sched,
		Budget:   6,
		Tracer:   func(e Event) { order = append(order, e.P) },
		StopWhen: func(t Time) bool {
			if t == 2 && !appended {
				appended = true
				sched.Append(Solo(0, 3))
			}
			return false
		},
	}, []Body{countBody(100), countBody(100)})
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	want := []PID{1, 1, 0, 0, 0, 0}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestAlternateSchedule(t *testing.T) {
	var order []PID
	_, err := Run(Config{
		Pattern:  FailFree(2),
		Schedule: Alternate(Priority(0), Priority(1)),
		Budget:   6,
		Tracer:   func(e Event) { order = append(order, e.P) },
	}, []Body{countBody(100), countBody(100)})
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	// Times start at 1 (odd): priority(1) first.
	want := []PID{1, 0, 1, 0, 1, 0}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestFullSetBounds(t *testing.T) {
	if FullSet(0) != EmptySet {
		t.Errorf("FullSet(0) = %v", FullSet(0))
	}
	if FullSet(MaxProcs).Len() != MaxProcs {
		t.Errorf("FullSet(64) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for FullSet(65)")
		}
	}()
	FullSet(MaxProcs + 1)
}

func TestQueryIsAStep(t *testing.T) {
	oracle := constOracle{v: 42}
	body := func(p *Proc) (Value, bool) {
		a := p.Query(oracle).(int)
		return Value(a), true
	}
	rep, err := Run(Config{Pattern: FailFree(1), Schedule: RoundRobin()}, []Body{body})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 1 {
		t.Errorf("query cost %d steps, want 1", rep.Steps)
	}
	if rep.Decided[0] != 42 {
		t.Errorf("query value lost")
	}
}

type constOracle struct{ v int }

func (c constOracle) Value(PID, Time) any { return c.v }

func TestProcTimeAdvances(t *testing.T) {
	var times []Time
	body := func(p *Proc) (Value, bool) {
		for i := 0; i < 3; i++ {
			p.Yield()
			times = append(times, p.Time())
		}
		return 0, true
	}
	if _, err := Run(Config{Pattern: FailFree(1), Schedule: RoundRobin()}, []Body{body}); err != nil {
		t.Fatal(err)
	}
	for i, ts := range times {
		if ts != Time(i+1) {
			t.Errorf("time %d after step %d", ts, i+1)
		}
	}
}
