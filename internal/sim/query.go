package sim

// Detector-query observability: the seam that makes failure detector queries
// first-class shared-object accesses. A detector history is global state the
// adversary controls — morally a shared register every process can read and
// only the environment writes. Before this seam existed, queries were
// out-of-band function calls invisible to the access log, which forced the
// explorer (internal/explore) to pin every history to a value that is stable
// from time 0: an output switch ("flip") at time T makes step behaviour
// depend on a step's global time, and commuting two independent adjacent
// steps shifts both their times by one, so dynamic partial-order reduction
// would silently merge schedules that straddle a flip and disagree on what a
// query returned.
//
// The seam closes that hole by modelling each history as a virtual object in
// the run's AccessLog:
//
//   - every query is recorded as a read of the history object,
//   - every flip at time T is recorded as a write of the history object,
//     charged to whichever step executes at time T (the runner calls OnStep
//     inside the step's access span), and
//   - the step at time T−1 — the flip's boundary guard — records a read of
//     the object.
//
// The boundary guard is what keeps DPOR's independence relation sound. A
// flip belongs to a global time, not to a process: commuting two adjacent
// independent steps shifts both across one time unit, so the only dangerous
// swap is the one across a flip boundary — it would move the time-T step
// (which observes the post-flip value if it queries) to T−1, where it would
// observe the pre-flip value. With the guard read at T−1 conflicting with
// the flip write at T, that boundary pair is never treated as independent,
// and since every schedule equivalent under DPOR's relation is reachable by
// adjacent swaps of independent steps, no equivalence class ever straddles a
// boundary: all members agree on every query's result. Swaps strictly inside
// one phase remain free — non-querying steps commute as before, and a
// history with no flips (stable from time 0) induces only inert query
// reads, so the search degenerates to exactly the stable-history
// exploration. Reorderings that move a *query* to the other side of a flip
// are ordered directly by the query's read against the flip's write, and
// are explored as the genuinely different runs they are.
//
// A nil *QuerySeam is the no-op default: queries go straight to the oracle,
// nothing is recorded, and the hot paths pay one nil check (the lab and
// benchmark workloads run with a nil seam at zero allocation cost).

// FlipOracle is an Oracle whose output changes at finitely many known global
// times and is constant in between (and uniform across processes) — the
// flip-aware history contract the query seam needs to record output switches
// as writes. Histories explored under DPOR with pre-stabilization output
// must implement it; fd.Unstable is the canonical implementation.
type FlipOracle interface {
	Oracle
	// FlipTimes returns the times at which the output changes, in strictly
	// increasing order. A query at a flip time observes the post-flip value.
	FlipTimes() []Time
}

// histSlot is one registered history: the oracle, its interned virtual
// object, and its flip schedule.
type histSlot struct {
	h     Oracle
	id    ObjID
	flips []Time
}

// QuerySeam routes detector queries of one run and records them (and the
// registered histories' flips) into the run's access log. Build one per
// recorded run with NewQuerySeam, Register every history the machines query,
// and hand it to the runner through Config.Queries; the runner forwards it
// to machines via MachineContext.Queries and calls OnStep inside every step's
// access span.
type QuerySeam struct {
	log   *AccessLog
	hists []histSlot
}

// NewQuerySeam returns a seam recording into log (which may be nil, making
// the seam a pure pass-through).
func NewQuerySeam(log *AccessLog) *QuerySeam {
	return &QuerySeam{log: log}
}

// Register adds a history under the given virtual-object name. If h
// implements FlipOracle its output switches are recorded as writes of the
// object; other oracles are assumed stable for the whole run (their queries
// record inert reads). Registering the same oracle twice is a no-op.
func (q *QuerySeam) Register(name string, h Oracle) {
	if q == nil || q.log == nil || h == nil {
		return
	}
	for _, s := range q.hists {
		if s.h == h {
			return
		}
	}
	slot := histSlot{h: h, id: q.log.Intern(name)}
	if fo, ok := h.(FlipOracle); ok {
		slot.flips = fo.FlipTimes()
	}
	q.hists = append(q.hists, slot)
}

// OnStep records the environment's history-object accesses of the step at
// time t: a write per registered history flipping at t, and a boundary-guard
// read per history flipping at t+1. The runner calls it between
// AccessLog.BeginStep and the machine step, so the accesses land in the
// step's span. Nil-safe no-op.
func (q *QuerySeam) OnStep(t Time) {
	if q == nil || q.log == nil {
		return
	}
	for i := range q.hists {
		s := &q.hists[i]
		for _, ft := range s.flips {
			if ft == t {
				if q.log.DigestOn() {
					// Fingerprint the post-flip output (uniform across
					// processes by the FlipOracle contract), so the history
					// object participates in state digests like any other
					// shared object: a query after the flip reads the new
					// fingerprint, and prefixes on opposite sides of a flip
					// can never be joined on a stale one.
					//lint:fdlint seamcheck -- the seam fingerprinting its own history object's post-flip output; this evaluation IS the instrumentation, not an unrecorded read
					q.log.RecordValued(s.id, AccessWrite, StateFP(s.h.Value(0, t)))
				} else {
					q.log.Record(s.id, AccessWrite)
				}
			} else if ft == t+1 {
				q.log.Record(s.id, AccessRead)
			}
		}
	}
	// The accesses above are the environment's, charged to whichever step
	// happens to run at the flip's absolute time: seal them out of the
	// stepping process's observation hash so state digests do not depend on
	// which bystander was standing next to a flip.
	q.log.SealEnv()
}

// FlipsRemaining counts, over every registered history, the output switches
// still ahead of time t. The explorer's state-hash join used to fold this
// count into its keys; OutputsDigest — which additionally pins *what* each
// pending flip switches to and what is observable now — subsumes it there,
// and the count remains as the cheap summary for reporting and tests.
// Nil-safe (0).
func (q *QuerySeam) FlipsRemaining(t Time) int {
	if q == nil {
		return 0
	}
	n := 0
	for i := range q.hists {
		for _, ft := range q.hists[i].flips {
			if ft > t {
				n++
			}
		}
	}
	return n
}

// FlipCrossed reports whether object id is a registered history with an
// output switch at any absolute time ft with lo < ft <= hi. This is the
// flip-anchoring relation the source engine's wakeup-sequence construction
// depends on: a step that queries the history at time hi observes the value
// after every flip <= hi, so moving the step leftward to time lo preserves
// its observation exactly when no flip lies in (lo, hi]. Objects that are
// not registered histories never cross (false). Nil-safe (false).
func (q *QuerySeam) FlipCrossed(id ObjID, lo, hi Time) bool {
	if q == nil || lo >= hi {
		return false
	}
	for i := range q.hists {
		s := &q.hists[i]
		if s.id != id {
			continue
		}
		for _, ft := range s.flips {
			if ft > lo && ft <= hi {
				return true
			}
		}
	}
	return false
}

// OutputsDigest fingerprints the live detector environment at time t: for
// every registered history, the output a query at t would observe, plus the
// full schedule of still-pending flips — each remaining flip time with the
// output it switches to. The explorer's state-hash join folds it into its
// keys, so two prefixes are identified only when every history they can
// query agrees on its current observable output *and* on everything the
// environment will still do to it. Allocation-free for the fingerprintable
// output types detector ranges use (sets, ints). Nil-safe (0).
func (q *QuerySeam) OutputsDigest(t Time) uint64 {
	if q == nil {
		return 0
	}
	var h uint64
	for i := range q.hists {
		s := &q.hists[i]
		//lint:fdlint seamcheck -- the seam fingerprinting its own history objects' outputs for the join key; this evaluation is the instrumentation, not an unrecorded detector read
		h = fpMix(h, fpMix(uint64(s.id), StateFP(s.h.Value(0, t))))
		for _, ft := range s.flips {
			if ft > t {
				//lint:fdlint seamcheck -- pending-flip outputs folded into the same environment fingerprint
				h = fpMix(h, fpMix(uint64(ft), StateFP(s.h.Value(0, ft))))
			}
		}
	}
	return h
}

// Query evaluates oracle h at (p, t), recording the query as a read of h's
// history object when h is registered. It is nil-safe: a nil seam (or an
// unregistered oracle, e.g. an emulated process-local module) evaluates the
// oracle directly.
func (q *QuerySeam) Query(h Oracle, p PID, t Time) any {
	if q != nil && q.log != nil {
		for _, s := range q.hists {
			if s.h == h {
				q.log.Record(s.id, AccessRead)
				break
			}
		}
	}
	//lint:fdlint seamcheck -- the seam's single sanctioned evaluation site: the read of the history object was recorded above
	return h.Value(p, t)
}
