package sim

import (
	"fmt"
)

// Multi-task processes. The paper's Figure 3 algorithm explicitly runs "two
// parallel tasks" inside each process; composing a reduction with an
// algorithm that consumes the emulated detector likewise puts two automata
// inside one process. RunTasks executes several task bodies per logical
// process: all tasks of process i share the identity PID i (they see the
// same ID and the same failure fate), every atomic step still belongs to
// exactly one task, and the schedule keeps deciding which *process* steps —
// the runner rotates fairly among that process's runnable tasks, modelling
// a fair local task scheduler.
//
// A process decides when any of its tasks returns a decision; its other
// tasks may keep running (reductions never return). The run ends
// successfully as soon as every correct process has decided; otherwise it
// ends on budget exhaustion or StopWhen.

// TaskSet holds the bodies of one logical process's parallel tasks.
type TaskSet []Body

// RunTasks is Run generalized to multi-task processes. bodies[i] holds the
// task bodies of process i; every process must have at least one task.
// Report fields are per logical process (StepsBy sums a process's tasks).
func RunTasks(cfg Config, bodies []TaskSet) (*Report, error) {
	n := cfg.Pattern.N()
	if len(bodies) != n {
		panic(fmt.Sprintf("sim: %d task sets for %d processes", len(bodies), n))
	}
	if cfg.Schedule == nil {
		panic("sim: nil Schedule")
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = DefaultBudget
	}

	type slot struct {
		pid   PID
		proc  *Proc
		state procState
	}
	msgs := make(chan procMsg)
	var slots []*slot
	taskIdx := make([][]int, n) // taskIdx[pid] lists slot indices
	for i := 0; i < n; i++ {
		if len(bodies[i]) == 0 {
			panic(fmt.Sprintf("sim: process %d has no tasks", i))
		}
		taskIdx[i] = make([]int, len(bodies[i]))
		for t := range bodies[i] {
			p := &Proc{
				id:     PID(i),
				n:      n,
				msgs:   msgs,
				grants: make(chan grant, 1),
				tracer: cfg.Tracer,
			}
			idx := len(slots)
			taskIdx[i][t] = idx
			p.slot = idx
			slots = append(slots, &slot{pid: PID(i), proc: p, state: stateAwaited})
			//lint:fdlint determinism -- goroutine-engine mechanism: task bodies run on goroutines but every step is serialized by the grant channel, so the schedule alone decides interleaving
			go runBody(p, bodies[i][t])
		}
	}

	rep := &Report{
		Decided:   make(map[PID]Value),
		DecidedAt: make(map[PID]Time),
		StepsBy:   make([]int64, n),
	}
	outstanding := len(slots)
	var t Time
	rotate := make([]int, n) // last-granted task index per process

	recvOne := func() {
		m := <-msgs
		outstanding--
		s := slots[m.slot]
		switch m.kind {
		case msgRequest:
			s.state = statePending
		case msgReturned:
			s.state = stateReturned
			if m.decided {
				if _, dup := rep.Decided[s.pid]; !dup {
					rep.Decided[s.pid] = m.val
					rep.DecidedAt[s.pid] = s.proc.now
				}
			} else if !rep.Halted.Has(s.pid) {
				rep.Halted = rep.Halted.Add(s.pid)
			}
		case msgDied:
			s.state = stateDead
			rep.Crashed = rep.Crashed.Add(s.pid)
		case msgPanicked:
			panic(fmt.Sprintf("sim: process %v task panicked: %v\n%s", s.pid, m.pval, m.stack))
		}
	}
	poisonSlot := func(i int) {
		slots[i].proc.grants <- grant{poison: true}
		outstanding++
	}
	poisonAllPending := func() {
		for i, s := range slots {
			if s.state == statePending {
				poisonSlot(i)
			}
		}
		for outstanding > 0 {
			recvOne()
		}
	}
	allCorrectDecided := func() bool {
		for _, pid := range cfg.Pattern.Correct().Members() {
			if _, ok := rep.Decided[pid]; !ok {
				return false
			}
		}
		return true
	}

	for {
		for outstanding > 0 {
			recvOne()
		}
		if allCorrectDecided() {
			poisonAllPending()
			break
		}
		next := t + 1
		for i, s := range slots {
			if s.state == statePending && cfg.Pattern.CrashAt(s.pid) <= next {
				poisonSlot(i)
			}
		}
		if outstanding > 0 {
			continue
		}

		var enabled Set
		for _, s := range slots {
			if s.state == statePending {
				enabled = enabled.Add(s.pid)
			}
		}
		if enabled.IsEmpty() {
			break
		}
		if rep.Steps >= budget {
			rep.BudgetExhausted = true
			poisonAllPending()
			break
		}

		pid := cfg.Schedule.Next(next, enabled)
		if !enabled.Has(pid) {
			panic(fmt.Sprintf("sim: schedule chose %v not in enabled %v", pid, enabled))
		}
		tasks := taskIdx[pid]
		chosen := -1
		for k := 1; k <= len(tasks); k++ {
			cand := (rotate[pid] + k) % len(tasks)
			if slots[tasks[cand]].state == statePending {
				chosen = cand
				break
			}
		}
		if chosen < 0 {
			panic("sim: enabled process has no pending task")
		}
		rotate[pid] = chosen
		s := slots[tasks[chosen]]
		t = next
		s.state = stateAwaited
		s.proc.grants <- grant{t: t}
		outstanding++
		rep.Steps++
		rep.StepsBy[pid]++

		if cfg.StopWhen != nil {
			for outstanding > 0 {
				recvOne()
			}
			if cfg.StopWhen(t) {
				rep.Stopped = true
				poisonAllPending()
				break
			}
		}
	}

	if !allCorrectDecided() {
		return rep, fmt.Errorf("%w (pattern %v, %d steps)", ErrBudgetExhausted, cfg.Pattern, rep.Steps)
	}
	return rep, nil
}
