package sim

import "testing"

func TestFixedScheduleReplaysPrefix(t *testing.T) {
	prefix := []PID{2, 0, 2, 1}
	s := NewFixedSchedule(prefix)
	var grants []PID
	s.OnGrant = func(idx int, _ Time, _ Set, chosen PID) {
		if idx != len(grants) {
			t.Fatalf("OnGrant idx %d, want %d", idx, len(grants))
		}
		grants = append(grants, chosen)
	}
	enabled := SetOf(0, 1, 2)
	for i := 0; i < len(prefix); i++ {
		if got := s.Next(Time(i+1), enabled); got != prefix[i] {
			t.Fatalf("step %d: got %v, want %v", i, got, prefix[i])
		}
	}
	if s.Diverged() {
		t.Fatal("fully-enabled prefix reported divergence")
	}
	// Past the prefix: round-robin fallback (fresh, starts at p1).
	if got := s.Next(5, enabled); got != 0 {
		t.Fatalf("fallback step: got %v, want p1 (fresh round-robin)", got)
	}
	if s.Granted() != 5 {
		t.Fatalf("granted %d, want 5", s.Granted())
	}
}

func TestFixedScheduleDivergesOnDisabledEntry(t *testing.T) {
	s := NewFixedSchedule([]PID{1, 0})
	// p2 is not enabled: the schedule must fall through, not fault.
	got := s.Next(1, SetOf(0, 2))
	if got == 1 {
		t.Fatal("granted a disabled process")
	}
	if !s.Diverged() {
		t.Fatal("skipped prefix entry not reported as divergence")
	}
	// The next prefix entry still applies.
	if got := s.Next(2, SetOf(0, 2)); got != 0 {
		t.Fatalf("second step: got %v, want p1", got)
	}
}
