package sim

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// PID identifies a process. The paper writes p1..p_{n+1}; we use 0-based IDs
// 0..N-1. PIDs must be < MaxProcs.
type PID int

// MaxProcs bounds the system size so that process sets fit in a Set bitmask.
const MaxProcs = 64

// Time is the logical time of the run: the index of an atomic step. The
// first granted step happens at Time 1.
type Time int64

// NoCrash is the crash time of a correct process (it never crashes).
const NoCrash Time = math.MaxInt64

// Value is an application input/output value (a proposal or decision in
// agreement problems). The protocols in this module only compare values and
// take minima, so a totally ordered integer domain loses no generality.
type Value int64

// String implements fmt.Stringer.
func (p PID) String() string { return fmt.Sprintf("p%d", int(p)+1) }

// Set is a set of processes, represented as a bitmask. It is a value type:
// all operations return new sets.
type Set uint64

// EmptySet is the set with no members.
const EmptySet Set = 0

// SetOf builds a set from the given members.
func SetOf(pids ...PID) Set {
	var s Set
	for _, p := range pids {
		s = s.Add(p)
	}
	return s
}

// FullSet returns the set {0, …, n-1} of all n processes.
func FullSet(n int) Set {
	if n < 0 || n > MaxProcs {
		panic(fmt.Sprintf("sim: FullSet(%d) out of range", n))
	}
	if n == MaxProcs {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Add returns s ∪ {p}.
func (s Set) Add(p PID) Set {
	checkPID(p)
	return s | 1<<uint(p)
}

// Remove returns s − {p}.
func (s Set) Remove(p PID) Set {
	checkPID(p)
	return s &^ (1 << uint(p))
}

// Has reports whether p ∈ s.
func (s Set) Has(p PID) bool {
	checkPID(p)
	return s&(1<<uint(p)) != 0
}

// Len returns |s|.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether s = ∅.
func (s Set) IsEmpty() bool { return s == 0 }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s − t.
func (s Set) Minus(t Set) Set { return s &^ t }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Complement returns Π − s where Π = {0, …, n-1}.
func (s Set) Complement(n int) Set { return FullSet(n) &^ s }

// Members returns the members of s in increasing PID order.
func (s Set) Members() []PID {
	return s.MembersAppend(make([]PID, 0, s.Len()))
}

// MembersAppend appends the members of s to dst in increasing PID order and
// returns the extended slice. It is the non-allocating variant of Members
// for hot loops: pass a scratch slice truncated to dst[:0] to reuse its
// backing array.
func (s Set) MembersAppend(dst []PID) []PID {
	for t := s; t != 0; t &= t - 1 {
		dst = append(dst, lowest(t))
	}
	return dst
}

// Nth returns the i-th smallest member of s (0-based). It panics if
// i >= s.Len(). Schedules use it to pick a member by index without
// materializing the member slice.
func (s Set) Nth(i int) PID {
	t := s
	for ; i > 0; i-- {
		t &= t - 1
	}
	if t == 0 {
		panic("sim: Set.Nth out of range")
	}
	return lowest(t)
}

// Min returns the smallest PID in s. It panics on the empty set.
func (s Set) Min() PID {
	if s == 0 {
		panic("sim: Min of empty Set")
	}
	return lowest(s)
}

// String renders the set in the paper's notation, e.g. {p1,p3}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

func lowest(s Set) PID {
	if s == 0 {
		panic("sim: lowest of empty Set")
	}
	return PID(bits.TrailingZeros64(uint64(s)))
}

func checkPID(p PID) {
	if p < 0 || p >= MaxProcs {
		panic(fmt.Sprintf("sim: PID %d out of range", int(p)))
	}
}
