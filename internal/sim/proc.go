package sim

import "fmt"

// Oracle is a failure detector history H: Value(p, t) is the output of the
// failure detector module of process p at time t (paper Section 3.2).
// Implementations must be pure functions of (p, t) or otherwise safe to call
// from the single runnable process goroutine.
type Oracle interface {
	Value(p PID, t Time) any
}

// crashToken is panicked by the step gate of a crashed process and recovered
// by the process wrapper; it must never escape the sim package.
type crashTokenType struct{}

var crashToken = crashTokenType{}

// Proc is a process's handle on the simulation: every shared-object
// operation and failure detector query must go through one of its step
// methods, each of which costs exactly one atomic step. Code between steps
// must only touch process-local state.
//
// A Proc is only valid inside the body function it was passed to.
type Proc struct {
	id     PID
	slot   int // runner-internal task slot; equals int(id) in single-task runs
	n      int
	msgs   chan<- procMsg
	grants chan grant
	now    Time
	steps  int64
	tracer func(Event)
	seam   *QuerySeam
}

// Event is a trace record of one atomic step.
type Event struct {
	T     Time
	P     PID
	Label string
}

type msgKind uint8

const (
	msgRequest msgKind = iota
	msgReturned
	msgDied
	msgPanicked
)

type procMsg struct {
	kind    msgKind
	pid     PID
	slot    int // task slot of the sender (== int(pid) in single-task runs)
	val     Value
	decided bool
	pval    any // panic value for msgPanicked
	stack   []byte
}

type grant struct {
	t      Time
	poison bool
}

// ID returns the process identifier.
func (p *Proc) ID() PID { return p.id }

// N returns the total number of processes in the system (the paper's n+1).
func (p *Proc) N() int { return p.n }

// Time returns the time of the process's most recent step. Processes may use
// it as a local ever-increasing timestamp; it carries no synchrony
// information beyond step ordering.
func (p *Proc) Time() Time { return p.now }

// Step performs op as one atomic step. The label appears in traces.
func (p *Proc) Step(label string, op func()) {
	t := p.gate()
	if p.tracer != nil {
		p.tracer(Event{T: t, P: p.id, Label: label})
	}
	if op != nil {
		op()
	}
}

// Query performs a query step on the given failure detector history and
// returns the module's output at the current time. The query routes through
// the run's query seam (Config.Queries) so that, on recorded runs, it is a
// first-class read of the history's virtual object.
func (p *Proc) Query(h Oracle) any {
	var out any
	p.Step("query", func() {
		out = p.seam.Query(h, p.id, p.now)
	})
	return out
}

// Yield takes a no-op step. Busy-waiting loops should Yield so that waiting
// consumes schedule steps like any other activity.
func (p *Proc) Yield() {
	p.Step("yield", nil)
}

// gate blocks until the scheduler grants the next step, or panics with
// crashToken if the process has crashed.
func (p *Proc) gate() Time {
	p.msgs <- procMsg{kind: msgRequest, pid: p.id, slot: p.slot}
	g := <-p.grants
	if g.poison {
		panic(crashToken)
	}
	p.now = g.t
	p.steps++
	return g.t
}

func (p *Proc) String() string { return fmt.Sprintf("Proc(%v)", p.id) }
