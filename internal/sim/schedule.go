package sim

import (
	"fmt"
	"math/rand"
)

// Schedule decides, at each time step, which of the enabled processes takes
// the next atomic step. enabled is never empty and the returned PID must be
// a member of it. Schedules model the asynchronous adversary: any fair
// schedule yields a legal run; unfair schedules model runs in which the
// starved processes are (or are indistinguishable from) faulty.
type Schedule interface {
	Next(t Time, enabled Set) PID
}

// Func adapts a function to the Schedule interface.
type Func func(t Time, enabled Set) PID

// Next implements Schedule.
func (f Func) Next(t Time, enabled Set) PID { return f(t, enabled) }

var _ Schedule = Func(nil)

// RoundRobin returns a fair schedule that cycles through the enabled
// processes in PID order.
func RoundRobin() Schedule {
	last := PID(-1)
	return Func(func(_ Time, enabled Set) PID {
		for i := 1; i <= MaxProcs; i++ {
			p := PID((int(last) + i) % MaxProcs)
			if enabled.Has(p) {
				last = p
				return p
			}
		}
		panic("sim: RoundRobin with empty enabled set")
	})
}

// NewRandom returns a schedule that picks uniformly at random among enabled
// processes, deterministically from the seed. Random schedules are fair with
// probability 1 over any finite budget.
func NewRandom(seed int64) Schedule {
	//lint:fdlint determinism -- instance-local rng seeded by the caller: the schedule is a pure function of (seed, query sequence); replacing it with fd.Mix would invalidate every recorded schedule baseline
	rng := rand.New(rand.NewSource(seed))
	return Func(func(_ Time, enabled Set) PID {
		//lint:fdlint determinism -- draws from the seed-determined instance rng above
		return enabled.Nth(rng.Intn(enabled.Len()))
	})
}

// Priority returns a schedule that always grants the first enabled process
// in the given order; processes not listed are ranked after the listed ones
// in PID order. Priority schedules are the building block of the paper's
// solo-run adversary constructions (e.g. "p_{n+1} is the only process that
// takes steps").
func Priority(order ...PID) Schedule {
	rank := make(map[PID]int, len(order))
	for i, p := range order {
		if _, dup := rank[p]; dup {
			panic(fmt.Sprintf("sim: duplicate PID %v in Priority order", p))
		}
		rank[p] = i
	}
	return Func(func(_ Time, enabled Set) PID {
		best := PID(-1)
		bestRank := int(^uint(0) >> 1)
		for t := enabled; t != 0; t &= t - 1 {
			p := lowest(t)
			r, ok := rank[p]
			if !ok {
				r = len(order) + int(p)
			}
			if r < bestRank {
				best, bestRank = p, r
			}
		}
		return best
	})
}

// Alternate returns a schedule that interleaves two schedules: the first for
// steps at even times, the second at odd times. Useful for mixing a targeted
// adversary with background fairness.
func Alternate(even, odd Schedule) Schedule {
	return Func(func(t Time, enabled Set) PID {
		if t%2 == 0 {
			return even.Next(t, enabled)
		}
		return odd.Next(t, enabled)
	})
}

// EventuallySynchronous models partial synchrony (Dwork–Lynch–Stockmeyer,
// the paper's [10]): before the global stabilization time gst the schedule
// is arbitrary (seeded random, possibly starving processes for long
// stretches); from gst on, every enabled process takes a step at least once
// every bound steps — the scheduler always grants the process that has
// waited longest once its wait reaches the bound. Timing-based failure
// detector implementations are exactly the algorithms that exploit such a
// schedule (paper Section 1).
func EventuallySynchronous(gst Time, bound int64, seed int64) Schedule {
	if bound < 1 {
		panic(fmt.Sprintf("sim: EventuallySynchronous bound %d", bound))
	}
	//lint:fdlint determinism -- instance-local rng seeded by the caller: the schedule is a pure function of (seed, query sequence); replacing it with fd.Mix would invalidate every recorded schedule baseline
	rng := rand.New(rand.NewSource(seed))
	lastRun := make(map[PID]Time)
	return Func(func(t Time, enabled Set) PID {
		var pick PID
		if t < gst {
			//lint:fdlint determinism -- draws from the seed-determined instance rng above
			pick = enabled.Nth(rng.Intn(enabled.Len()))
		} else {
			// Grant the longest-waiting enabled process when its wait hits
			// the bound; otherwise choose randomly (bounded nondeterminism).
			pick = PID(-1)
			var worst Time
			for s := enabled; s != 0; s &= s - 1 {
				p := lowest(s)
				waited := t - lastRun[p]
				if int64(waited) >= bound && (pick == -1 || lastRun[p] < worst) {
					pick, worst = p, lastRun[p]
				}
			}
			if pick == -1 {
				//lint:fdlint determinism -- draws from the seed-determined instance rng above
				pick = enabled.Nth(rng.Intn(enabled.Len()))
			}
		}
		lastRun[pick] = t
		return pick
	})
}

// Starve returns a schedule that never grants victim a step while any other
// process is enabled — an asynchronous run indistinguishable, to the
// others, from one where victim crashed. It defeats timing-based failure
// detector implementations, which is exactly why non-trivial detectors are
// oracles rather than algorithms.
func Starve(victim PID, fallback Schedule) Schedule {
	if fallback == nil {
		fallback = RoundRobin()
	}
	return Func(func(t Time, enabled Set) PID {
		rest := enabled.Remove(victim)
		if rest.IsEmpty() {
			return victim
		}
		return fallback.Next(t, rest)
	})
}

// Phase is one directive of a scripted schedule.
type Phase struct {
	// Pick chooses the process to run while the phase is active; nil means
	// round-robin over enabled.
	Pick func(t Time, enabled Set) PID
	// Done reports that the phase is over and the script should advance
	// (checked before each step). A nil Done with Steps == 0 never ends.
	Done func(t Time) bool
	// Steps, if positive, bounds the phase length in steps.
	Steps int64
}

// Solo returns a phase that runs only p (when enabled) for the given number
// of steps. If p is not enabled the phase falls back to the lowest enabled
// PID, which only happens if p crashed or returned.
func Solo(p PID, steps int64) Phase {
	return Phase{
		Pick: func(_ Time, enabled Set) PID {
			if enabled.Has(p) {
				return p
			}
			return enabled.Min()
		},
		Steps: steps,
	}
}

// EachOnce returns a phase in which every process present at its start takes
// exactly one step (in PID order), mirroring the proofs' "every process
// takes exactly one step" interludes.
func EachOnce() Phase {
	var pending Set
	started := false
	return Phase{
		Pick: func(_ Time, enabled Set) PID {
			if !started {
				pending = enabled
				started = true
			}
			togo := pending.Intersect(enabled)
			if togo.IsEmpty() {
				return enabled.Min()
			}
			p := togo.Min()
			pending = pending.Remove(p)
			return p
		},
		Done: func(_ Time) bool {
			return started && pending.IsEmpty()
		},
	}
}

// Script runs a sequence of phases, then behaves as fallback (round-robin if
// nil). Scripts drive the Theorem 1 / Theorem 5 adversary constructions.
type Script struct {
	phases   []Phase
	idx      int
	taken    int64
	fallback Schedule
}

// NewScript builds a scripted schedule.
func NewScript(fallback Schedule, phases ...Phase) *Script {
	if fallback == nil {
		fallback = RoundRobin()
	}
	return &Script{phases: phases, fallback: fallback}
}

// Append adds phases to the end of the script; legal even mid-run, which
// lets adversaries extend the script based on what the algorithm did.
func (s *Script) Append(phases ...Phase) { s.phases = append(s.phases, phases...) }

// PhaseIndex returns the index of the current phase (== number of finished
// phases; len(phases) when the script is exhausted).
func (s *Script) PhaseIndex() int { return s.idx }

// Next implements Schedule.
func (s *Script) Next(t Time, enabled Set) PID {
	for s.idx < len(s.phases) {
		ph := &s.phases[s.idx]
		if (ph.Steps > 0 && s.taken >= ph.Steps) || (ph.Done != nil && ph.Done(t)) {
			s.idx++
			s.taken = 0
			continue
		}
		s.taken++
		if ph.Pick == nil {
			return s.fallback.Next(t, enabled)
		}
		return ph.Pick(t, enabled)
	}
	return s.fallback.Next(t, enabled)
}

var _ Schedule = (*Script)(nil)
