package sim

import "fmt"

// Pattern is a failure pattern F: it fixes, for each process, the time at
// which it crashes (NoCrash for correct processes). F(t), the set of
// processes crashed by time t, is {p : CrashAt(p) ≤ t}; a process may take a
// step at time t only if t < CrashAt(p), matching the paper's requirement
// that a step of p at T[k] implies p ∉ F(T[k]).
type Pattern struct {
	crashAt []Time
}

// FailFree returns the failure pattern over n processes in which every
// process is correct.
func FailFree(n int) Pattern {
	if n <= 0 || n > MaxProcs {
		panic(fmt.Sprintf("sim: FailFree(%d) out of range", n))
	}
	crash := make([]Time, n)
	for i := range crash {
		crash[i] = NoCrash
	}
	return Pattern{crashAt: crash}
}

// CrashPattern returns the pattern over n processes in which each process in
// crashes fails at the associated time and all others are correct. At least
// one process must remain correct (the paper's default environment).
func CrashPattern(n int, crashes map[PID]Time) Pattern {
	p := FailFree(n)
	//lint:fdlint determinism -- map-to-array reconstruction: the resulting pattern is independent of iteration order
	for pid, t := range crashes {
		if int(pid) < 0 || int(pid) >= n {
			panic(fmt.Sprintf("sim: crash PID %v out of range for n=%d", pid, n))
		}
		if t == NoCrash {
			continue
		}
		if t < 0 {
			panic(fmt.Sprintf("sim: negative crash time %d", t))
		}
		p.crashAt[pid] = t
	}
	if p.Correct().IsEmpty() {
		panic("sim: failure pattern with no correct process")
	}
	return p
}

// N returns the number of processes in the system.
func (p Pattern) N() int { return len(p.crashAt) }

// CrashAt returns the crash time of pid (NoCrash if correct).
func (p Pattern) CrashAt(pid PID) Time { return p.crashAt[pid] }

// CrashedBy reports whether pid ∈ F(t).
func (p Pattern) CrashedBy(pid PID, t Time) bool { return p.crashAt[pid] <= t }

// Correct returns correct(F), the set of processes that never crash.
func (p Pattern) Correct() Set {
	var s Set
	for i, t := range p.crashAt {
		if t == NoCrash {
			s = s.Add(PID(i))
		}
	}
	return s
}

// Faulty returns faulty(F) = Π − correct(F).
func (p Pattern) Faulty() Set { return p.Correct().Complement(p.N()) }

// NumFaulty returns |faulty(F)|.
func (p Pattern) NumFaulty() int { return p.Faulty().Len() }

// InEnvironment reports whether the pattern belongs to E_f, the environment
// where at most f processes crash.
func (p Pattern) InEnvironment(f int) bool { return p.NumFaulty() <= f }

// String summarizes the pattern.
func (p Pattern) String() string {
	if p.Faulty().IsEmpty() {
		return fmt.Sprintf("failure-free(n=%d)", p.N())
	}
	return fmt.Sprintf("crash%v(n=%d)", p.Faulty(), p.N())
}
