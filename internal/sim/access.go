package sim

import "strings"

// Shared-object access observability: the seam the DPOR explorer
// (internal/explore) is built on. The step-machine engine performs exactly
// one shared-object operation per granted step; an AccessLog, when attached
// to a run through Config.AccessLog, records which objects that operation
// read and wrote. Two steps of different processes commute exactly when
// their access sets do not conflict (no common object with at least one
// write), which is the independence relation dynamic partial-order
// reduction prunes by.
//
// The log is strictly optional: a nil *AccessLog is the no-op default, every
// method is nil-safe, and the accessors in internal/memory guard their
// recording behind a single nil check — the lab/benchmark hot paths run with
// instrumentation compiled in but disabled at zero allocation cost
// (asserted by the zero-alloc tests in internal/sim and internal/memory).

// AccessKind distinguishes reads from writes of a shared object.
type AccessKind uint8

const (
	// AccessRead is a read of a shared object.
	AccessRead AccessKind = iota
	// AccessWrite is a write (or an atomic read-modify-write, which
	// conflicts like a write) of a shared object.
	AccessWrite
)

// String implements fmt.Stringer ("R"/"W").
func (k AccessKind) String() string {
	if k == AccessWrite {
		return "W"
	}
	return "R"
}

// ObjID is a log-local shared-object identity, interned from the object's
// name. IDs are assigned from 1; 0 is "never interned". Because interning is
// by name and a log's intern table survives Reset, the same object name maps
// to the same ID across every run recorded into one log.
type ObjID int32

// Access is one shared-object access: which object, read or write.
type Access struct {
	Obj  ObjID
	Kind AccessKind
}

// stepSpan delimits one step's accesses inside the log buffer.
type stepSpan struct {
	p          PID
	start, end int32
}

// AccessLog records, per granted step, the shared-object accesses that step
// performed. The runner brackets every machine step with BeginStep/EndStep;
// the instrumented accessors in internal/memory call Record in between.
// Reset clears the recorded steps but keeps the name→ID intern table, so a
// log reused across the runs of one exploration assigns stable IDs.
type AccessLog struct {
	ids   map[string]ObjID
	names []string // names[id-1] is the interned name of id
	buf   []Access
	spans []stepSpan
	start int32
}

// NewAccessLog returns an empty log.
func NewAccessLog() *AccessLog {
	return &AccessLog{ids: make(map[string]ObjID)}
}

// Intern returns the stable ID for an object name, assigning one on first
// use. Callers must not invoke Intern on a nil log (the accessors check
// for nil before interning).
func (l *AccessLog) Intern(name string) ObjID {
	if id, ok := l.ids[name]; ok {
		return id
	}
	l.names = append(l.names, name)
	id := ObjID(len(l.names))
	l.ids[name] = id
	return id
}

// ObjName returns the interned name of id ("?" for unknown IDs).
func (l *AccessLog) ObjName(id ObjID) string {
	if l == nil || id < 1 || int(id) > len(l.names) {
		return "?"
	}
	return l.names[id-1]
}

// Record appends one access to the current step. Nil-safe no-op.
func (l *AccessLog) Record(obj ObjID, kind AccessKind) {
	if l == nil {
		return
	}
	l.buf = append(l.buf, Access{Obj: obj, Kind: kind})
}

// BeginStep opens a new step span; the runner calls it immediately before
// granting a machine step. Nil-safe no-op.
func (l *AccessLog) BeginStep() {
	if l == nil {
		return
	}
	l.start = int32(len(l.buf))
}

// EndStep closes the current step span, attributing its accesses to p; the
// runner calls it immediately after the machine step returns. Nil-safe
// no-op.
func (l *AccessLog) EndStep(p PID) {
	if l == nil {
		return
	}
	l.spans = append(l.spans, stepSpan{p: p, start: l.start, end: int32(len(l.buf))})
}

// Reset clears the recorded steps, keeping the intern table (and hence ID
// stability) for the next run. Nil-safe no-op.
func (l *AccessLog) Reset() {
	if l == nil {
		return
	}
	l.buf = l.buf[:0]
	l.spans = l.spans[:0]
	l.start = 0
}

// Steps returns the number of recorded steps (0 on a nil log).
func (l *AccessLog) Steps() int {
	if l == nil {
		return 0
	}
	return len(l.spans)
}

// Step returns the recorded process and access set of step i (0-based). The
// returned slice aliases the log's buffer: copy it before the next Reset if
// it must outlive the run.
func (l *AccessLog) Step(i int) (PID, []Access) {
	s := l.spans[i]
	return s.p, l.buf[s.start:s.end]
}

// AccessString renders an access set for traces, e.g. "R(D) W(A[1])".
func (l *AccessLog) AccessString(as []Access) string {
	if len(as) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, a := range as {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Kind.String())
		b.WriteByte('(')
		b.WriteString(l.ObjName(a.Obj))
		b.WriteByte(')')
	}
	return b.String()
}

// AccessesConflict reports whether two access sets conflict: some object
// appears in both with at least one write. Steps of different processes
// with non-conflicting access sets commute — executing them in either order
// yields the same shared state and the same local results.
func AccessesConflict(a, b []Access) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Obj == y.Obj && (x.Kind == AccessWrite || y.Kind == AccessWrite) {
				return true
			}
		}
	}
	return false
}
