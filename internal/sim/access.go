package sim

import "strings"

// Shared-object access observability: the seam the DPOR explorer
// (internal/explore) is built on. The step-machine engine performs exactly
// one shared-object operation per granted step; an AccessLog, when attached
// to a run through Config.AccessLog, records which objects that operation
// read and wrote. Two steps of different processes commute exactly when
// their access sets do not conflict (no common object with at least one
// write), which is the independence relation dynamic partial-order
// reduction prunes by.
//
// The log is strictly optional: a nil *AccessLog is the no-op default, every
// method is nil-safe, and the accessors in internal/memory guard their
// recording behind a single nil check — the lab/benchmark hot paths run with
// instrumentation compiled in but disabled at zero allocation cost
// (asserted by the zero-alloc tests in internal/sim and internal/memory).

// AccessKind distinguishes reads from writes of a shared object.
type AccessKind uint8

const (
	// AccessRead is a read of a shared object.
	AccessRead AccessKind = iota
	// AccessWrite is a write (or an atomic read-modify-write, which
	// conflicts like a write) of a shared object.
	AccessWrite
)

// String implements fmt.Stringer ("R"/"W").
func (k AccessKind) String() string {
	if k == AccessWrite {
		return "W"
	}
	return "R"
}

// ObjID is a log-local shared-object identity, interned from the object's
// name. IDs are assigned from 1; 0 is "never interned". Because interning is
// by name and a log's intern table survives Reset, the same object name maps
// to the same ID across every run recorded into one log.
type ObjID int32

// Access is one shared-object access: which object, read or write.
type Access struct {
	Obj  ObjID
	Kind AccessKind
}

// stepSpan delimits one step's accesses inside the log buffer.
type stepSpan struct {
	p          PID
	start, end int32
}

// AccessLog records, per granted step, the shared-object accesses that step
// performed. The runner brackets every machine step with BeginStep/EndStep;
// the instrumented accessors in internal/memory call Record in between.
// Reset clears the recorded steps but keeps the name→ID intern table, so a
// log reused across the runs of one exploration assigns stable IDs.
type AccessLog struct {
	ids   map[string]ObjID
	names []string // names[id-1] is the interned name of id
	buf   []Access
	spans []stepSpan
	start int32
	// envEnd marks the end of the current step's environment-access prefix
	// (see SealEnv): accesses in [start, envEnd) were recorded by the
	// environment — detector flip writes and boundary-guard reads the query
	// seam charges to whichever step runs at the flip's absolute time. They
	// participate in the step's span (and hence in conflict detection) but
	// are excluded from the per-process observation hash: the machine never
	// sees them, so two runs whose schedules merely charge the same flip to
	// different bystander steps must still digest equally.
	envEnd int32

	// State-digest support (EnableDigest): the incremental machinery behind
	// StateDigest, maintained only when digestOn — the plain recording path
	// stays zero-allocation. objFP[id] fingerprints object id's *current*
	// value (0 = still holding its initial value); fps parallels buf with
	// the value fingerprint each access observed or installed; procH[p] is
	// process p's rolling observation hash, folded once per step by EndStep.
	digestOn bool
	objFP    []uint64
	fps      []uint64
	procH    []uint64
	// unkWrites salts writes recorded without a value fingerprint (plain
	// Record with AccessWrite): each gets a unique fingerprint, so digests
	// involving such objects simply never match — conservative, never
	// unsound.
	unkWrites uint64
}

// NewAccessLog returns an empty log.
func NewAccessLog() *AccessLog {
	return &AccessLog{ids: make(map[string]ObjID)}
}

// Intern returns the stable ID for an object name, assigning one on first
// use. Callers must not invoke Intern on a nil log (the accessors check
// for nil before interning).
func (l *AccessLog) Intern(name string) ObjID {
	if id, ok := l.ids[name]; ok {
		return id
	}
	l.names = append(l.names, name)
	id := ObjID(len(l.names))
	l.ids[name] = id
	return id
}

// ObjName returns the interned name of id ("?" for unknown IDs).
func (l *AccessLog) ObjName(id ObjID) string {
	if l == nil || id < 1 || int(id) > len(l.names) {
		return "?"
	}
	return l.names[id-1]
}

// Record appends one access to the current step. Nil-safe no-op.
func (l *AccessLog) Record(obj ObjID, kind AccessKind) {
	if l == nil {
		return
	}
	l.buf = append(l.buf, Access{Obj: obj, Kind: kind})
	if l.digestOn {
		fp := l.objFPAt(obj)
		if kind == AccessWrite {
			// A write without a value fingerprint: install a unique one so
			// equal digests never silently merge states behind it.
			l.unkWrites++
			fp = fpMix(l.unkWrites, uint64(obj))
			l.objFP[obj] = fp
		}
		l.fps = append(l.fps, fp)
	}
}

// RecordValued appends one access carrying the fingerprint of the value the
// access installed (writes) — the digest-aware recording path the
// instrumented accessors in internal/memory use when DigestOn. For reads
// the value observed is, by definition, the object's current fingerprint,
// so readers call plain Record. Nil-safe no-op; falls back to Record when
// the digest is off.
func (l *AccessLog) RecordValued(obj ObjID, kind AccessKind, fp uint64) {
	if l == nil {
		return
	}
	l.buf = append(l.buf, Access{Obj: obj, Kind: kind})
	if l.digestOn {
		if kind == AccessWrite {
			l.objFPAt(obj)
			l.objFP[obj] = fpMix(11, fp)
		}
		l.fps = append(l.fps, fpMix(11, fp))
	}
}

// objFPAt returns object id's current value fingerprint, growing the table
// on first sight (0 = initial value, a fingerprint no RecordValued write can
// install because fpMix never returns its own seed class by construction —
// and even a collision there would only make the digest more conservative).
func (l *AccessLog) objFPAt(obj ObjID) uint64 {
	for int(obj) >= len(l.objFP) {
		l.objFP = append(l.objFP, 0)
	}
	return l.objFP[obj]
}

// EnableDigest switches on incremental state-digest maintenance for every
// subsequent run recorded into the log (Reset keeps it on). The recording
// hot path pays fingerprint folds only while enabled.
func (l *AccessLog) EnableDigest() {
	if l == nil {
		return
	}
	l.digestOn = true
}

// DigestOn reports whether the log maintains state digests; the
// instrumented write accessors consult it to decide between Record and
// RecordValued.
func (l *AccessLog) DigestOn() bool { return l != nil && l.digestOn }

// StateDigest returns the canonical hash of the simulation state reached by
// the steps recorded so far: every object's current-value fingerprint plus
// every process's rolling observation hash. Two recorded prefixes of the
// same configuration with equal digests reached (up to 64-bit hash
// collisions) identical shared state *and* identical per-process local
// states — a machine's local state is a deterministic function of its
// observation sequence, which procH hashes access by access, value by
// value, with a per-step marker so even yield steps advance it (the
// "per-process PC"). See internal/explore/hash.go for the join argument
// built on top.
func (l *AccessLog) StateDigest() uint64 {
	h := fpSeed
	for id, fp := range l.objFP {
		if fp != 0 {
			h = fpMix(h, fpMix(uint64(id), fp))
		}
	}
	for p, ph := range l.procH {
		if ph != 0 {
			h = fpMix(h, fpMix(uint64(p), ph))
		}
	}
	return h
}

// AppendStep injects a step span that was not executed in this run — the
// explorer's state-hash join replays the cached tail of an equivalent
// earlier run into the log so the post-run race analysis sees a complete
// trace. Digest state is deliberately not advanced: joins happen at the
// branch horizon, after which no digest is taken. Nil-safe no-op.
func (l *AccessLog) AppendStep(p PID, accs []Access) {
	if l == nil {
		return
	}
	start := int32(len(l.buf))
	l.buf = append(l.buf, accs...)
	if l.digestOn {
		for range accs {
			l.fps = append(l.fps, 0)
		}
	}
	l.spans = append(l.spans, stepSpan{p: p, start: start, end: int32(len(l.buf))})
}

// BeginStep opens a new step span; the runner calls it immediately before
// granting a machine step. Nil-safe no-op.
func (l *AccessLog) BeginStep() {
	if l == nil {
		return
	}
	l.start = int32(len(l.buf))
	l.envEnd = l.start
}

// SealEnv marks every access recorded since BeginStep as an environment
// access — charged to the step's span for conflict purposes, but not part of
// the stepping process's own observation sequence. The query seam calls it
// after recording a step's flip writes and boundary-guard reads, immediately
// before the machine step runs; EndStep then folds only the machine's own
// accesses into the process observation hash. Nil-safe no-op.
func (l *AccessLog) SealEnv() {
	if l == nil {
		return
	}
	l.envEnd = int32(len(l.buf))
}

// EndStep closes the current step span, attributing its accesses to p; the
// runner calls it immediately after the machine step returns. Nil-safe
// no-op.
func (l *AccessLog) EndStep(p PID) {
	if l == nil {
		return
	}
	l.spans = append(l.spans, stepSpan{p: p, start: l.start, end: int32(len(l.buf))})
	if l.digestOn {
		for int(p) >= len(l.procH) {
			l.procH = append(l.procH, 0)
		}
		h := l.procH[p]
		// Skip the environment-access prefix (SealEnv): flip writes and guard
		// reads are charged to the span but are not p's observations.
		for i := l.envEnd; i < int32(len(l.buf)); i++ {
			a := l.buf[i]
			h = fpMix(h, fpMix(uint64(a.Obj)<<1|uint64(a.Kind), l.fps[i]))
		}
		// Step marker: even an access-free (yield) step advances the
		// process's observation hash — the per-process program counter.
		l.procH[p] = fpMix(h, 10)
	}
}

// Reset clears the recorded steps, keeping the intern table (and hence ID
// stability) for the next run. Nil-safe no-op.
func (l *AccessLog) Reset() {
	if l == nil {
		return
	}
	l.buf = l.buf[:0]
	l.spans = l.spans[:0]
	l.start = 0
	l.envEnd = 0
	if l.digestOn {
		for i := range l.objFP {
			l.objFP[i] = 0
		}
		for i := range l.procH {
			l.procH[i] = 0
		}
		l.fps = l.fps[:0]
		l.unkWrites = 0
	}
}

// Steps returns the number of recorded steps (0 on a nil log).
func (l *AccessLog) Steps() int {
	if l == nil {
		return 0
	}
	return len(l.spans)
}

// Step returns the recorded process and access set of step i (0-based). The
// returned slice aliases the log's buffer: copy it before the next Reset if
// it must outlive the run.
func (l *AccessLog) Step(i int) (PID, []Access) {
	s := l.spans[i]
	return s.p, l.buf[s.start:s.end]
}

// AccessString renders an access set for traces, e.g. "R(D) W(A[1])".
func (l *AccessLog) AccessString(as []Access) string {
	if len(as) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, a := range as {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Kind.String())
		b.WriteByte('(')
		b.WriteString(l.ObjName(a.Obj))
		b.WriteByte(')')
	}
	return b.String()
}

// AccessesConflict reports whether two access sets conflict: some object
// appears in both with at least one write. Steps of different processes
// with non-conflicting access sets commute — executing them in either order
// yields the same shared state and the same local results.
func AccessesConflict(a, b []Access) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Obj == y.Obj && (x.Kind == AccessWrite || y.Kind == AccessWrite) {
				return true
			}
		}
	}
	return false
}
