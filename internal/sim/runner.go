package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrBudgetExhausted is reported when the step budget ran out before every
// correct process returned. In this simulator it is the observable face of
// non-termination; impossibility experiments assert it, liveness experiments
// assert its absence.
var ErrBudgetExhausted = errors.New("sim: step budget exhausted before all correct processes returned")

// Body is the algorithm automaton run by one process. It returns the
// process's decision value and true, or (0, false) if the process halts
// without deciding (e.g. a non-participant). Bodies that emulate failure
// detectors typically never return and are stopped by the budget or a
// StopWhen predicate.
//
// All interaction with shared state must go through the Proc step methods;
// code between steps must only touch process-local state.
type Body func(p *Proc) (Value, bool)

// Config describes one run of an algorithm.
type Config struct {
	// Pattern is the failure pattern F of the run.
	Pattern Pattern
	// Schedule decides which enabled process takes each step.
	Schedule Schedule
	// Budget caps the total number of atomic steps (0 means DefaultBudget).
	Budget int64
	// Tracer, if non-nil, receives every step event.
	Tracer func(Event)
	// StopWhen, if non-nil, is consulted after every step; returning true
	// ends the run early. The run is not marked budget-exhausted in that
	// case. Used by adversary experiments that stop once they have forced
	// enough behaviour.
	StopWhen func(t Time) bool
	// AccessLog, if non-nil, records the shared-object accesses of every
	// granted step. Only the step-machine runners (RunMachines,
	// RunTaskMachines) record: their machines route every operation through
	// the instrumented Direct* accessors. The goroutine runner ignores it.
	AccessLog *AccessLog
	// Queries, if non-nil, is the run's detector-query seam: every failure
	// detector query (Proc.Query on the goroutine runner, fd.QueryAt in
	// step machines) routes through it, recording the query as a read of the
	// history's virtual object and each registered history flip as a write
	// (see QuerySeam). Nil is the pass-through default.
	Queries *QuerySeam
}

// DefaultBudget is the step budget used when Config.Budget is zero.
const DefaultBudget int64 = 1 << 20

// Report is the outcome of a run.
type Report struct {
	// Decided maps each process that decided to its decision value.
	Decided map[PID]Value
	// DecidedAt maps each deciding process to the time of its last step.
	DecidedAt map[PID]Time
	// Halted is the set of processes that returned without deciding.
	Halted Set
	// Crashed is the set of processes that crashed during the run.
	Crashed Set
	// Steps is the total number of atomic steps granted.
	Steps int64
	// StepsBy counts the steps taken by each process.
	StepsBy []int64
	// Stopped reports that StopWhen ended the run.
	Stopped bool
	// BudgetExhausted reports that the budget ran out with live processes.
	BudgetExhausted bool
	// Accesses is the run's access log when Config.AccessLog was set (nil
	// otherwise): per-step shared-object access sets, aligned with the grant
	// order. It is the same log the caller passed in, surfaced here so
	// consumers that only see the Report (replay tracing, dependency
	// analysis) can reach it.
	Accesses *AccessLog
}

// DecidedValues returns the set of distinct decision values in the report,
// in ascending order.
func (r *Report) DecidedValues() []Value {
	return r.DecidedValuesAppend(nil)
}

// DecidedValuesAppend appends the distinct decision values to dst in
// ascending order and returns the extended slice. It is the non-allocating
// variant of DecidedValues for hot summary loops: dedup and ordering are
// done by insertion into the slice itself, with no map.
func (r *Report) DecidedValuesAppend(dst []Value) []Value {
	base := len(dst)
	//lint:fdlint determinism -- sorted-insertion dedup: the resulting slice is independent of iteration order
	for _, v := range r.Decided {
		lo, hi := base, len(dst)
		for lo < hi {
			mid := (lo + hi) / 2
			if dst[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(dst) && dst[lo] == v {
			continue
		}
		dst = append(dst, 0)
		copy(dst[lo+1:], dst[lo:])
		dst[lo] = v
	}
	return dst
}

type procState uint8

const (
	stateAwaited  procState = iota // we owe a receive: the proc will send a message
	statePending                   // proc is blocked waiting for a grant
	stateReturned                  // body returned
	stateDead                      // crashed (poison acknowledged)
)

// Run executes one body per process under the given configuration and
// returns the run report. It returns ErrBudgetExhausted (wrapped) if the
// budget ran out before every correct process returned.
//
// Run panics if a body panics (with the original value and stack), since a
// panicking body is a bug in the algorithm, not a property of the run.
func Run(cfg Config, bodies []Body) (*Report, error) {
	n := cfg.Pattern.N()
	if len(bodies) != n {
		panic(fmt.Sprintf("sim: %d bodies for %d processes", len(bodies), n))
	}
	if cfg.Schedule == nil {
		panic("sim: nil Schedule")
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = DefaultBudget
	}

	msgs := make(chan procMsg)
	procs := make([]*Proc, n)
	states := make([]procState, n)
	rep := &Report{
		Decided:   make(map[PID]Value),
		DecidedAt: make(map[PID]Time),
		StepsBy:   make([]int64, n),
	}

	for i := 0; i < n; i++ {
		p := &Proc{
			id:     PID(i),
			slot:   i,
			n:      n,
			msgs:   msgs,
			grants: make(chan grant, 1),
			tracer: cfg.Tracer,
			seam:   cfg.Queries,
		}
		procs[i] = p
		states[i] = stateAwaited
		//lint:fdlint determinism -- goroutine-engine mechanism: bodies run on goroutines but every step is serialized by the grant channel, so the schedule alone decides interleaving
		go runBody(p, bodies[i])
	}

	outstanding := n // messages we still owe a receive for
	var t Time
	recvOne := func() procMsg {
		m := <-msgs
		outstanding--
		switch m.kind {
		case msgRequest:
			states[m.pid] = statePending
		case msgReturned:
			states[m.pid] = stateReturned
			if m.decided {
				rep.Decided[m.pid] = m.val
				rep.DecidedAt[m.pid] = procs[m.pid].now
			} else {
				rep.Halted = rep.Halted.Add(m.pid)
			}
		case msgDied:
			states[m.pid] = stateDead
			rep.Crashed = rep.Crashed.Add(m.pid)
		case msgPanicked:
			// Drain remaining goroutines best-effort, then surface the bug.
			panic(fmt.Sprintf("sim: process %v panicked: %v\n%s", m.pid, m.pval, m.stack))
		}
		return m
	}
	poison := func(pid PID) {
		procs[pid].grants <- grant{poison: true}
		outstanding++
	}
	poisonAllPending := func() {
		for i := range states {
			if states[i] == statePending {
				poison(PID(i))
			}
		}
		for outstanding > 0 {
			recvOne()
		}
	}

	for {
		for outstanding > 0 {
			recvOne()
		}

		// Poison processes whose crash time has arrived.
		next := t + 1
		for i := range states {
			if states[i] == statePending && cfg.Pattern.CrashAt(PID(i)) <= next {
				poison(PID(i))
			}
		}
		if outstanding > 0 {
			continue
		}

		var enabled Set
		for i := range states {
			if states[i] == statePending {
				enabled = enabled.Add(PID(i))
			}
		}
		if enabled.IsEmpty() {
			break // every process returned or crashed
		}
		if rep.Steps >= budget {
			rep.BudgetExhausted = true
			poisonAllPending()
			break
		}

		pid := cfg.Schedule.Next(next, enabled)
		if !enabled.Has(pid) {
			panic(fmt.Sprintf("sim: schedule chose %v not in enabled %v", pid, enabled))
		}
		t = next
		states[pid] = stateAwaited
		procs[pid].grants <- grant{t: t}
		outstanding++
		rep.Steps++
		rep.StepsBy[pid]++

		if cfg.StopWhen != nil {
			// Settle the granted step before consulting the predicate so it
			// observes a quiescent shared state.
			for outstanding > 0 {
				recvOne()
			}
			if cfg.StopWhen(t) {
				rep.Stopped = true
				poisonAllPending()
				break
			}
		}
	}

	// A run terminates successfully when every correct process has returned.
	for _, pid := range cfg.Pattern.Correct().Members() {
		if states[pid] != stateReturned {
			return rep, fmt.Errorf("%w (pattern %v, %d steps)", ErrBudgetExhausted, cfg.Pattern, rep.Steps)
		}
	}
	return rep, nil
}

func runBody(p *Proc, body Body) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashTokenType); ok {
				p.msgs <- procMsg{kind: msgDied, pid: p.id, slot: p.slot}
				return
			}
			p.msgs <- procMsg{kind: msgPanicked, pid: p.id, slot: p.slot, pval: r, stack: debug.Stack()}
		}
	}()
	v, decided := body(p)
	p.msgs <- procMsg{kind: msgReturned, pid: p.id, slot: p.slot, val: v, decided: decided}
}
