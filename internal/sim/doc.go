// Package sim implements the paper's model of computation (Section 3): a
// system of N = n+1 crash-prone processes taking atomic steps on shared
// objects and failure detector modules, driven by an explicit schedule.
//
// The runner serializes all process execution — exactly one process
// goroutine is runnable at any instant, and the scheduler decides which.
// Runs are therefore deterministic functions of (schedule, failure pattern,
// oracle histories) and are data-race-free by construction.
//
// Logical time is the global step counter: step k happens at time k,
// matching the paper's non-decreasing time lists T with at most one step
// per process per instant.
//
// How the code's names map to the paper's definitions (Section 3):
//
//   - Pattern is a failure pattern F: it fixes each process's crash time,
//     so F(t) = {p : CrashAt(p) ≤ t} is the set of processes crashed by
//     time t, correct(F) the processes that never crash. Pattern.
//     InEnvironment(f) is membership in the environment E_f (at most f
//     crashes).
//   - Schedule is the asynchronous adversary: it chooses, at every step,
//     which enabled process moves. RoundRobin and NewRandom are the fair
//     schedules; Priority, Starve, Script and EventuallySynchronous build
//     the proofs' constructed runs (solo executions, starvation
//     indistinguishable from crashes, partial synchrony after a GST).
//   - Oracle is a failure detector history H: a function from (process,
//     time) to the detector's output range, sampled by a process's step
//     (the paper's "query the failure detector module").
//   - Body is one process's algorithm A(p): a function run step-by-step
//     against shared memory; Proc is the per-process handle carrying its
//     PID, current time, and oracle access.
//   - Run / RunTasks execute a configuration ⟨A, H, F, schedule⟩ and
//     produce a Report (decisions, steps, crashes) — one run R of the
//     paper, cut off at a step budget since impossibility arguments reason
//     about infinite runs the simulator cannot finish.
//   - StepMachine is a Body with its control state made explicit, and
//     RunMachines / RunTaskMachines the coroutine-free engine driving such
//     machines in a single goroutine — zero channels, near-zero allocations
//     per step, byte-identical Reports to Run / RunTasks (see machine.go).
//
// Set is the bitset of PIDs used for detector outputs (the range 2^Π of Υ)
// and correct/faulty sets throughout.
package sim
