package sim

// FixedSchedule replays an explicit grant sequence: step i of the run goes to
// Prefix[i], and once the prefix is exhausted the schedule defers to Fallback
// (round-robin when nil). It is the replay hook of the schedule-space
// explorer (internal/explore): a counterexample artifact carries the granted
// PID sequence of a violating run, and re-executing it through a
// FixedSchedule reproduces that run step for step.
//
// A prefix entry that is not enabled at its turn (possible when a shrinker
// mutates the sequence, or when the program under replay changed) does not
// fault the run: the schedule falls through to Fallback for that step and
// records the divergence. Every schedule is a legal adversary, so a diverged
// replay is still a valid run — it just no longer retraces the original one.
type FixedSchedule struct {
	// Prefix is the grant sequence to replay, one PID per step.
	Prefix []PID
	// Fallback takes over after the prefix (and for non-enabled prefix
	// entries); nil means round-robin.
	Fallback Schedule
	// OnGrant, when non-nil, observes every scheduling decision: the 0-based
	// step index, the time, the enabled set and the granted PID. The explorer
	// uses it to learn branch points; replay uses it for step traces.
	OnGrant func(idx int, t Time, enabled Set, chosen PID)

	pos      int
	diverged bool
}

// NewFixedSchedule returns a FixedSchedule over the given prefix with a
// round-robin fallback.
func NewFixedSchedule(prefix []PID) *FixedSchedule {
	return &FixedSchedule{Prefix: prefix}
}

// Next implements Schedule.
func (s *FixedSchedule) Next(t Time, enabled Set) PID {
	idx := s.pos
	s.pos++
	var pick PID
	switch {
	case idx < len(s.Prefix) && enabled.Has(s.Prefix[idx]):
		pick = s.Prefix[idx]
	default:
		if idx < len(s.Prefix) {
			s.diverged = true
		}
		if s.Fallback == nil {
			s.Fallback = RoundRobin()
		}
		pick = s.Fallback.Next(t, enabled)
	}
	if s.OnGrant != nil {
		s.OnGrant(idx, t, enabled, pick)
	}
	return pick
}

// Granted returns how many steps the schedule has granted so far.
func (s *FixedSchedule) Granted() int { return s.pos }

// Diverged reports whether some prefix entry was skipped because its process
// was not enabled at its turn.
func (s *FixedSchedule) Diverged() bool { return s.diverged }

var _ Schedule = (*FixedSchedule)(nil)
