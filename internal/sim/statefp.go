package sim

import "fmt"

// State fingerprints: 64-bit hashes of shared-object values, the raw
// material of the explorer's state-hash join cache (internal/explore). A
// digest-enabled AccessLog folds, per object, the fingerprint of its current
// value and, per process, the fingerprint sequence of everything the process
// observed — together a canonical hash of the reachable simulation state
// (see AccessLog.StateDigest). Fingerprints only need to be *injective up to
// hash collisions*: equal values must produce equal fingerprints, distinct
// values should produce distinct ones with 64-bit probability.

// fpSeed is the fingerprint fold seed (the splitmix64 increment).
const fpSeed uint64 = 0x9e3779b97f4a7c15

// fpMix folds x into h with a splitmix64-style finalizer: full avalanche per
// fold, so field order matters and prefix collisions do not propagate.
func fpMix(h, x uint64) uint64 {
	h ^= x + fpSeed + (h << 6) + (h >> 2)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Fingerprinter lets composite shared-object value types (optionals, structs
// stored in registers and snapshots) supply their own state fingerprint.
// StateFP dispatches to it before falling back to reflection-style
// formatting.
type Fingerprinter interface {
	StateFP() uint64
}

// StateFP returns the 64-bit state fingerprint of a shared-object value.
// The type switch covers every value type the protocols store in shared
// objects (see internal/memory, internal/core, internal/converge); types
// outside it either implement Fingerprinter or fall back to hashing their
// fmt representation — slower, but still sound (equal values format
// equally).
func StateFP(v any) uint64 {
	switch x := v.(type) {
	case nil:
		return fpMix(1, 0)
	case bool:
		if x {
			return fpMix(2, 1)
		}
		return fpMix(2, 0)
	case int:
		return fpMix(3, uint64(x))
	case int64:
		return fpMix(3, uint64(x))
	case uint64:
		return fpMix(3, x)
	case Value:
		return fpMix(4, uint64(x))
	case Time:
		return fpMix(5, uint64(x))
	case PID:
		return fpMix(6, uint64(x))
	case Set:
		return fpMix(7, uint64(x))
	case string:
		h := fpSeed
		for i := 0; i < len(x); i++ {
			h = fpMix(h, uint64(x[i]))
		}
		return fpMix(8, h)
	case Fingerprinter:
		return x.StateFP()
	default:
		return stateFPSlow(v)
	}
}

// stateFPSlow is the formatting fallback for value types the switch does not
// know, kept out of line so the common cases stay allocation-light.
//
//go:noinline
func stateFPSlow(v any) uint64 {
	s := fmt.Sprintf("%T:%v", v, v)
	h := fpSeed
	for i := 0; i < len(s); i++ {
		h = fpMix(h, uint64(s[i]))
	}
	return fpMix(9, h)
}
