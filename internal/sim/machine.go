package sim

import "fmt"

// This file is the simulator's second execution engine: a coroutine-free
// step-machine runner. The goroutine runner (Run/RunTasks) executes each
// process body on its own goroutine and synchronizes every atomic step with
// two channel handshakes; that is the most convenient way to *write*
// protocol code, but it makes a logically single-threaded simulation pay
// Go-scheduler overhead on every step. The machine runner instead drives
// processes as resumable state machines — Aspnes-style explicit step
// schedules over process automata — in a single goroutine with zero channels
// and near-zero allocations per step.
//
// Both engines implement the same model and must produce byte-identical
// Reports for the same (Config, algorithm) pair; the equivalence suite in
// machine_equiv_test.go and the repository-level runner tests enforce this.

// MachineStatus is the outcome of one StepMachine step.
type MachineStatus uint8

const (
	// MachineRunning means the machine has more steps to take.
	MachineRunning MachineStatus = iota
	// MachineDecided means the machine returned a decision during this step;
	// the value is available from Decision.
	MachineDecided
	// MachineHalted means the machine returned without deciding (a
	// non-participant), mirroring a Body returning (0, false).
	MachineHalted
)

// MachineContext carries the per-process identity the runner assigns before
// the first step — the machine-world analogue of Proc.ID/Proc.N.
type MachineContext struct {
	// ID is the process identity (slot index in the machines slice).
	ID PID
	// N is the total number of processes in the system.
	N int
	// Log is the run's access log (nil when the run is not recorded). A
	// machine must hand it to every Direct* accessor it calls, so the
	// step's shared-object access set is observable; with a nil log the
	// accessors are no-ops and cost one branch.
	Log *AccessLog
	// Queries is the run's detector-query seam (nil when queries are not
	// recorded). A machine must route every failure detector query through
	// it (fd.QueryAt, or QuerySeam.Query directly), so the query is
	// observable as a read of the history's virtual object; a nil seam
	// evaluates oracles directly and costs one branch.
	Queries *QuerySeam
}

// StepMachine is a process automaton in resumable form: where a Body blocks
// inside Proc.Step for each grant, a StepMachine *returns* between steps and
// stores its control state explicitly. Each Step call must perform exactly
// one atomic operation (one shared-object access, failure detector query or
// yield) and may follow it with any amount of process-local computation; this
// is exactly the atomicity granularity Proc.Step gives a Body.
//
// Because the runner is single-threaded, machines access shared objects
// directly (memory.Register.DirectRead, memory.DirectSnapshot, …) instead of
// going through Proc: with one machine stepping at a time, every access is
// trivially atomic.
type StepMachine interface {
	// Init is called exactly once, before the machine's first step.
	Init(ctx MachineContext)
	// Step performs the machine's next atomic step at time t.
	Step(t Time) MachineStatus
	// Decision returns the decision value; valid only after Step returned
	// MachineDecided.
	Decision() Value
}

// machState mirrors the goroutine runner's procState for machines. Machines
// have no "awaited" state: they are always either runnable, returned or dead.
type machState uint8

const (
	machLive machState = iota
	machReturned
	machDead
)

// RunMachines executes one StepMachine per process under the given
// configuration and returns the run report. It is the coroutine-free
// counterpart of Run and follows the same scheduling rules step for step, so
// that an algorithm ported faithfully from Body to StepMachine produces an
// identical Report under an identical Config.
//
// Differences from Run: Config.Tracer receives events with the generic label
// "step" (machines do not carry human-readable step labels), and a machine
// cannot return before its first step (no ported protocol does).
func RunMachines(cfg Config, machines []StepMachine) (*Report, error) {
	n := cfg.Pattern.N()
	if len(machines) != n {
		panic(fmt.Sprintf("sim: %d machines for %d processes", len(machines), n))
	}
	if cfg.Schedule == nil {
		panic("sim: nil Schedule")
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = DefaultBudget
	}

	states := make([]machState, n)
	rep := &Report{
		Decided:   make(map[PID]Value),
		DecidedAt: make(map[PID]Time),
		StepsBy:   make([]int64, n),
		Accesses:  cfg.AccessLog,
	}
	for i := range machines {
		machines[i].Init(MachineContext{ID: PID(i), N: n, Log: cfg.AccessLog, Queries: cfg.Queries})
	}

	// crashLive marks every still-live machine crashed — the machine-world
	// equivalent of the goroutine runner's poisonAllPending, which the report
	// observes as membership in Crashed.
	crashLive := func() {
		for i := range states {
			if states[i] == machLive {
				states[i] = machDead
				rep.Crashed = rep.Crashed.Add(PID(i))
			}
		}
	}

	var t Time
	for {
		next := t + 1
		for i := range states {
			if states[i] == machLive && cfg.Pattern.CrashAt(PID(i)) <= next {
				states[i] = machDead
				rep.Crashed = rep.Crashed.Add(PID(i))
			}
		}
		var enabled Set
		for i := range states {
			if states[i] == machLive {
				enabled = enabled.Add(PID(i))
			}
		}
		if enabled.IsEmpty() {
			break // every process returned or crashed
		}
		if rep.Steps >= budget {
			rep.BudgetExhausted = true
			crashLive()
			break
		}

		pid := cfg.Schedule.Next(next, enabled)
		if !enabled.Has(pid) {
			panic(fmt.Sprintf("sim: schedule chose %v not in enabled %v", pid, enabled))
		}
		t = next
		cfg.AccessLog.BeginStep()
		cfg.Queries.OnStep(t)
		status := machines[pid].Step(t)
		cfg.AccessLog.EndStep(pid)
		rep.Steps++
		rep.StepsBy[pid]++
		if cfg.Tracer != nil {
			cfg.Tracer(Event{T: t, P: pid, Label: "step"})
		}
		switch status {
		case MachineDecided:
			states[pid] = machReturned
			rep.Decided[pid] = machines[pid].Decision()
			rep.DecidedAt[pid] = t
		case MachineHalted:
			states[pid] = machReturned
			rep.Halted = rep.Halted.Add(pid)
		}

		if cfg.StopWhen != nil && cfg.StopWhen(t) {
			rep.Stopped = true
			crashLive()
			break
		}
	}

	for _, pid := range cfg.Pattern.Correct().Members() {
		if states[pid] != machReturned {
			return rep, fmt.Errorf("%w (pattern %v, %d steps)", ErrBudgetExhausted, cfg.Pattern, rep.Steps)
		}
	}
	return rep, nil
}

// MachineTaskSet holds one logical process's parallel task machines, the
// machine-world TaskSet.
type MachineTaskSet []StepMachine

// RunTaskMachines is RunMachines generalized to multi-task processes,
// mirroring RunTasks: all tasks of process i share identity PID i, every
// atomic step belongs to exactly one task, the schedule decides which
// *process* steps and the runner rotates among that process's live tasks. A
// process decides when any of its tasks does; the run ends successfully as
// soon as every correct process has decided.
func RunTaskMachines(cfg Config, tasks []MachineTaskSet) (*Report, error) {
	n := cfg.Pattern.N()
	if len(tasks) != n {
		panic(fmt.Sprintf("sim: %d task sets for %d processes", len(tasks), n))
	}
	if cfg.Schedule == nil {
		panic("sim: nil Schedule")
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = DefaultBudget
	}

	type slot struct {
		pid   PID
		m     StepMachine
		state machState
	}
	var slots []slot
	taskIdx := make([][]int, n) // taskIdx[pid] lists slot indices
	for i := 0; i < n; i++ {
		if len(tasks[i]) == 0 {
			panic(fmt.Sprintf("sim: process %d has no tasks", i))
		}
		taskIdx[i] = make([]int, len(tasks[i]))
		for k, m := range tasks[i] {
			m.Init(MachineContext{ID: PID(i), N: n, Log: cfg.AccessLog, Queries: cfg.Queries})
			taskIdx[i][k] = len(slots)
			slots = append(slots, slot{pid: PID(i), m: m, state: machLive})
		}
	}

	rep := &Report{
		Decided:   make(map[PID]Value),
		DecidedAt: make(map[PID]Time),
		StepsBy:   make([]int64, n),
		Accesses:  cfg.AccessLog,
	}
	rotate := make([]int, n) // last-granted task index per process

	crashLive := func() {
		for i := range slots {
			if slots[i].state == machLive {
				slots[i].state = machDead
				rep.Crashed = rep.Crashed.Add(slots[i].pid)
			}
		}
	}
	correct := cfg.Pattern.Correct()
	allCorrectDecided := func() bool {
		// Checked once per step: iterate the bitset directly, no allocation.
		for s := correct; s != 0; s &= s - 1 {
			if _, ok := rep.Decided[s.Min()]; !ok {
				return false
			}
		}
		return true
	}

	var t Time
	for {
		if allCorrectDecided() {
			crashLive()
			break
		}
		next := t + 1
		for i := range slots {
			if slots[i].state == machLive && cfg.Pattern.CrashAt(slots[i].pid) <= next {
				slots[i].state = machDead
				rep.Crashed = rep.Crashed.Add(slots[i].pid)
			}
		}
		var enabled Set
		for i := range slots {
			if slots[i].state == machLive {
				enabled = enabled.Add(slots[i].pid)
			}
		}
		if enabled.IsEmpty() {
			break
		}
		if rep.Steps >= budget {
			rep.BudgetExhausted = true
			crashLive()
			break
		}

		pid := cfg.Schedule.Next(next, enabled)
		if !enabled.Has(pid) {
			panic(fmt.Sprintf("sim: schedule chose %v not in enabled %v", pid, enabled))
		}
		procTasks := taskIdx[pid]
		chosen := -1
		for k := 1; k <= len(procTasks); k++ {
			cand := (rotate[pid] + k) % len(procTasks)
			if slots[procTasks[cand]].state == machLive {
				chosen = cand
				break
			}
		}
		if chosen < 0 {
			panic("sim: enabled process has no live task")
		}
		rotate[pid] = chosen
		s := &slots[procTasks[chosen]]
		t = next
		cfg.AccessLog.BeginStep()
		cfg.Queries.OnStep(t)
		status := s.m.Step(t)
		cfg.AccessLog.EndStep(pid)
		rep.Steps++
		rep.StepsBy[pid]++
		if cfg.Tracer != nil {
			cfg.Tracer(Event{T: t, P: pid, Label: "step"})
		}
		switch status {
		case MachineDecided:
			s.state = machReturned
			if _, dup := rep.Decided[pid]; !dup {
				rep.Decided[pid] = s.m.Decision()
				rep.DecidedAt[pid] = t
			}
		case MachineHalted:
			s.state = machReturned
			if !rep.Halted.Has(pid) {
				rep.Halted = rep.Halted.Add(pid)
			}
		}

		if cfg.StopWhen != nil && cfg.StopWhen(t) {
			rep.Stopped = true
			crashLive()
			break
		}
	}

	if !allCorrectDecided() {
		return rep, fmt.Errorf("%w (pattern %v, %d steps)", ErrBudgetExhausted, cfg.Pattern, rep.Steps)
	}
	return rep, nil
}
