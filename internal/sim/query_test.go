package sim

import (
	"reflect"
	"testing"
)

// seamOracle is a minimal stable oracle for seam tests.
type seamOracle struct{ v any }

func (c seamOracle) Value(PID, Time) any { return c.v }

// flipOracle is a minimal FlipOracle: out[i] while t < flips[i], stable
// afterwards.
type flipOracle struct {
	flips  []Time
	out    []any
	stable any
}

func (f *flipOracle) Value(_ PID, t Time) any {
	for i, ft := range f.flips {
		if t < ft {
			return f.out[i]
		}
	}
	return f.stable
}

func (f *flipOracle) FlipTimes() []Time { return f.flips }

// queryMachine queries its oracle on the scripted steps (1-based own-step
// indices) and yields otherwise; it decides its last query result after
// `steps` steps.
type queryMachine struct {
	h       Oracle
	queryOn map[int]bool
	steps   int

	ctx  MachineContext
	n    int
	last Value
}

func (m *queryMachine) Init(ctx MachineContext) { m.ctx = ctx }

func (m *queryMachine) Step(t Time) MachineStatus {
	m.n++
	if m.queryOn[m.n] {
		if v, ok := m.ctx.Queries.Query(m.h, m.ctx.ID, t).(int); ok {
			m.last = Value(v)
		}
	}
	if m.n >= m.steps {
		return MachineDecided
	}
	return MachineRunning
}

func (m *queryMachine) Decision() Value { return m.last }

// stepAccesses renders the log's per-step access strings.
func stepAccesses(l *AccessLog) []string {
	var out []string
	for i := 0; i < l.Steps(); i++ {
		_, accs := l.Step(i)
		out = append(out, l.AccessString(accs))
	}
	return out
}

// TestQuerySeamRecording pins the seam's access model: a query is a read of
// the history object, the step at a flip time carries a write, and the step
// one before a flip carries the boundary-guard read. Stable histories induce
// only reads.
func TestQuerySeamRecording(t *testing.T) {
	h := &flipOracle{flips: []Time{3}, out: []any{1}, stable: 2}
	log := NewAccessLog()
	seam := NewQuerySeam(log)
	seam.Register("H", h)

	m := &queryMachine{h: h, queryOn: map[int]bool{2: true, 4: true}, steps: 5}
	rep, err := RunMachines(Config{
		Pattern:   FailFree(1),
		Schedule:  RoundRobin(),
		AccessLog: log,
		Queries:   seam,
	}, []StepMachine{m})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decided[0] != 2 {
		t.Fatalf("post-flip query returned %d, want the stable value 2", rep.Decided[0])
	}
	want := []string{
		"-",         // t=1: nothing
		"R(H) R(H)", // t=2: boundary guard (flip at 3) + the query's own read
		"W(H)",      // t=3: the flip
		"R(H)",      // t=4: the query
		"-",         // t=5
	}
	if got := stepAccesses(log); !reflect.DeepEqual(got, want) {
		t.Fatalf("recorded %v, want %v", got, want)
	}
}

// TestQuerySeamStableHistoryInert: a stable (flip-free) history induces only
// query reads — never a write — so it can never make two steps conflict and
// the DPOR search at SwitchBudget=0 is unchanged by the seam.
func TestQuerySeamStableHistoryInert(t *testing.T) {
	h := seamOracle{v: 7}
	log := NewAccessLog()
	seam := NewQuerySeam(log)
	seam.Register("H", h)

	m := &queryMachine{h: h, queryOn: map[int]bool{1: true, 3: true}, steps: 3}
	if _, err := RunMachines(Config{
		Pattern:   FailFree(1),
		Schedule:  RoundRobin(),
		AccessLog: log,
		Queries:   seam,
	}, []StepMachine{m}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < log.Steps(); i++ {
		_, accs := log.Step(i)
		for _, a := range accs {
			if a.Kind == AccessWrite {
				t.Fatalf("stable history recorded a write at step %d: %v", i, stepAccesses(log))
			}
		}
	}
}

// TestQuerySeamConflictSemantics is the commutativity-oracle case for the
// refined independence relation: a detector-query step and a flip-carrying
// step must be reported conflicting (the reversed order gives the query a
// different result), as must the boundary-guard pair — while two query steps
// of a stable history commute.
func TestQuerySeamConflictSemantics(t *testing.T) {
	h := &flipOracle{flips: []Time{3}, out: []any{1}, stable: 2}
	log := NewAccessLog()
	seam := NewQuerySeam(log)
	seam.Register("H", h)

	// Two processes: p0 queries on its 2nd step, p1 never queries. Under
	// round-robin, p0 steps at t=1,3 and p1 at t=2,4 — so p0's query at t=3
	// is the flip-carrying step and p1's step at t=2 carries the guard.
	p0 := &queryMachine{h: h, queryOn: map[int]bool{2: true}, steps: 2}
	p1 := &queryMachine{h: h, steps: 2}
	rep, err := RunMachines(Config{
		Pattern:   FailFree(2),
		Schedule:  RoundRobin(),
		AccessLog: log,
		Queries:   seam,
	}, []StepMachine{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decided[0] != 2 {
		t.Fatalf("query at the flip time returned %d, want post-flip 2", rep.Decided[0])
	}
	_, guard := log.Step(1) // p1 at t=2: boundary guard R(H)
	_, flip := log.Step(2)  // p0 at t=3: W(H) flip + R(H) query
	if !AccessesConflict(guard, flip) {
		t.Errorf("boundary guard %v and flip step %v reported independent; commuting them would move the query across the flip",
			log.AccessString(guard), log.AccessString(flip))
	}

	// Control: two queries of a stable history commute (read-read).
	log2 := NewAccessLog()
	seam2 := NewQuerySeam(log2)
	stable := seamOracle{v: 5}
	seam2.Register("H", stable)
	q0 := &queryMachine{h: stable, queryOn: map[int]bool{1: true}, steps: 1}
	q1 := &queryMachine{h: stable, queryOn: map[int]bool{1: true}, steps: 1}
	if _, err := RunMachines(Config{
		Pattern:   FailFree(2),
		Schedule:  RoundRobin(),
		AccessLog: log2,
		Queries:   seam2,
	}, []StepMachine{q0, q1}); err != nil {
		t.Fatal(err)
	}
	_, a := log2.Step(0)
	_, b := log2.Step(1)
	if AccessesConflict(a, b) {
		t.Errorf("two stable-history queries %v / %v reported conflicting", log2.AccessString(a), log2.AccessString(b))
	}
}

// TestQuerySeamNilAndUnregistered: a nil seam and an unregistered oracle
// evaluate directly and record nothing.
func TestQuerySeamNilAndUnregistered(t *testing.T) {
	var nilSeam *QuerySeam
	if v := nilSeam.Query(seamOracle{v: 9}, 0, 1); v.(int) != 9 {
		t.Fatalf("nil seam query returned %v", v)
	}
	nilSeam.OnStep(1) // must not panic

	log := NewAccessLog()
	seam := NewQuerySeam(log)
	seam.Register("H", seamOracle{v: 1})
	log.BeginStep()
	if v := seam.Query(seamOracle{v: 2}, 0, 1); v.(int) != 2 {
		t.Fatalf("unregistered query returned %v", v)
	}
	log.EndStep(0)
	if _, accs := log.Step(0); len(accs) != 0 {
		t.Fatalf("unregistered oracle recorded accesses: %v", log.AccessString(accs))
	}
}

// TestRunMachinesNilSeamZeroAlloc extends the zero-alloc promise to the
// query seam: the nil-seam default adds no allocations to the machine
// runner's step loop.
func TestRunMachinesNilSeamZeroAlloc(t *testing.T) {
	var h Oracle = seamOracle{v: 3} // box once, outside the measured loop
	allocs := testing.AllocsPerRun(20, func() {
		var q *QuerySeam
		for t := Time(1); t <= 64; t++ {
			q.OnStep(t)
			_ = q.Query(h, 0, t)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil seam allocated %.1f objects per 64-step batch; want 0", allocs)
	}
}

// TestQuerySeamDigestZeroAlloc pins the allocation behavior of the seam
// methods the source engine calls on its per-run hot path — the join probe's
// environment digest and the race analysis's flip-crossing test. Both must
// stay allocation-free for the detector ranges the sweeps use (small sets and
// ints fingerprint without boxing allocations).
func TestQuerySeamDigestZeroAlloc(t *testing.T) {
	log := NewAccessLog()
	seam := NewQuerySeam(log)
	seam.Register("H", &flipOracle{flips: []Time{3, 9}, out: []any{Set(1), Set(3)}, stable: Set(2)})
	seam.Register("G", seamOracle{v: 5})
	id := log.Intern("H")
	allocs := testing.AllocsPerRun(20, func() {
		for t := Time(1); t <= 16; t++ {
			_ = seam.OutputsDigest(t)
			_ = seam.FlipCrossed(id, t, t+4)
			_ = seam.FlipsRemaining(t)
		}
	})
	if allocs != 0 {
		t.Fatalf("seam digest methods allocated %.1f objects per 16-step batch; want 0", allocs)
	}
}
