package sim

import "testing"

// stepCounter is a minimal StepMachine that decides after k steps, for
// machine-runner pattern tests.
type stepCounter struct {
	k    int
	id   PID
	seen int
}

func (m *stepCounter) Init(ctx MachineContext) { m.id = ctx.ID }
func (m *stepCounter) Decision() Value         { return Value(m.id) }
func (m *stepCounter) Step(Time) MachineStatus {
	m.seen++
	if m.seen >= m.k {
		return MachineDecided
	}
	return MachineRunning
}

// TestPatternCrashAtZeroNeverSteps: a crash time of 0 means the process is
// in F(t) for every step time t ≥ 1, so it must be granted no step at all —
// on both engines.
func TestPatternCrashAtZeroNeverSteps(t *testing.T) {
	pattern := CrashPattern(3, map[PID]Time{1: 0})
	if pattern.CrashedBy(1, 0) != true {
		t.Fatal("crash time 0: process not crashed by t=0")
	}
	if pattern.Correct() != SetOf(0, 2) || pattern.Faulty() != SetOf(1) {
		t.Fatalf("Correct/Faulty inconsistent: %v / %v", pattern.Correct(), pattern.Faulty())
	}
	rep, err := RunMachines(Config{Pattern: pattern, Schedule: RoundRobin()},
		[]StepMachine{&stepCounter{k: 3}, &stepCounter{k: 3}, &stepCounter{k: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StepsBy[1] != 0 {
		t.Errorf("machine runner: crash-at-0 process took %d steps", rep.StepsBy[1])
	}
	if !rep.Crashed.Has(1) {
		t.Error("crash-at-0 process not reported crashed")
	}
	if _, ok := rep.Decided[1]; ok {
		t.Error("crash-at-0 process decided")
	}
}

// TestPatternAllButOneCrashed: the extreme admissible pattern — n−1 crashes
// — leaves exactly one correct process, which must still finish solo.
func TestPatternAllButOneCrashed(t *testing.T) {
	const n = 4
	crashes := map[PID]Time{0: 0, 1: 2, 2: 0}
	pattern := CrashPattern(n, crashes)
	if pattern.Correct() != SetOf(3) {
		t.Fatalf("Correct = %v, want {p4}", pattern.Correct())
	}
	if pattern.Faulty() != SetOf(0, 1, 2) || pattern.NumFaulty() != n-1 {
		t.Fatalf("Faulty = %v (%d), want {p1,p2,p3}", pattern.Faulty(), pattern.NumFaulty())
	}
	// Correct and Faulty partition Π.
	if pattern.Correct().Union(pattern.Faulty()) != FullSet(n) ||
		!pattern.Correct().Intersect(pattern.Faulty()).IsEmpty() {
		t.Fatal("Correct/Faulty do not partition the process set")
	}
	machines := make([]StepMachine, n)
	for i := range machines {
		machines[i] = &stepCounter{k: 5}
	}
	rep, err := RunMachines(Config{Pattern: pattern, Schedule: RoundRobin()}, machines)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Decided[3]; !ok {
		t.Error("sole correct process did not decide")
	}
	if rep.Crashed != SetOf(0, 1, 2) {
		t.Errorf("Crashed = %v, want {p1,p2,p3}", rep.Crashed)
	}
}

// TestPatternEnvironmentBoundary: E_f membership at the f = n−1 boundary,
// where every admissible pattern lives.
func TestPatternEnvironmentBoundary(t *testing.T) {
	const n = 4
	allButOne := CrashPattern(n, map[PID]Time{0: 0, 1: 0, 2: 0})
	if !allButOne.InEnvironment(n - 1) {
		t.Error("n-1 crashes rejected from E_{n-1}")
	}
	if allButOne.InEnvironment(n - 2) {
		t.Error("n-1 crashes admitted to E_{n-2}")
	}
	if !FailFree(n).InEnvironment(0) {
		t.Error("fail-free pattern rejected from E_0")
	}
	// Crash times are irrelevant to E_f membership: only the crash count is.
	late := CrashPattern(n, map[PID]Time{0: 1 << 40, 1: 1, 2: 7})
	if !late.InEnvironment(n-1) || late.InEnvironment(n-2) {
		t.Error("E_f membership depends on crash times")
	}
	if late.Faulty() != allButOne.Faulty() {
		t.Error("Faulty differs between early- and late-crash variants")
	}
}
