package sim

import (
	"reflect"
	"testing"
)

func TestAccessLogStepsAndSpans(t *testing.T) {
	l := NewAccessLog()
	x, y := l.Intern("x"), l.Intern("y")
	if x == y || x == 0 || y == 0 {
		t.Fatalf("bad interning: x=%d y=%d", x, y)
	}
	if l.Intern("x") != x {
		t.Fatal("re-interning x changed its ID")
	}

	l.BeginStep()
	l.Record(x, AccessRead)
	l.Record(y, AccessWrite)
	l.EndStep(2)
	l.BeginStep()
	l.EndStep(0) // a step with no shared access (detector query, yield)
	l.BeginStep()
	l.Record(x, AccessWrite)
	l.EndStep(1)

	if l.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", l.Steps())
	}
	p, accs := l.Step(0)
	if p != 2 || !reflect.DeepEqual(accs, []Access{{x, AccessRead}, {y, AccessWrite}}) {
		t.Fatalf("step 0 = %v %v", p, accs)
	}
	if _, accs := l.Step(1); len(accs) != 0 {
		t.Fatalf("empty step recorded %v", accs)
	}
	if got := l.AccessString(accs[:0]); got != "-" {
		t.Fatalf("empty AccessString = %q", got)
	}
	_, a0 := l.Step(0)
	if got := l.AccessString(a0); got != "R(x) W(y)" {
		t.Fatalf("AccessString = %q", got)
	}

	// Reset keeps the intern table (ID stability across runs of one log).
	l.Reset()
	if l.Steps() != 0 {
		t.Fatal("Reset kept steps")
	}
	if l.Intern("y") != y {
		t.Fatal("Reset dropped the intern table")
	}
	if l.ObjName(y) != "y" || l.ObjName(0) != "?" {
		t.Fatalf("ObjName: %q %q", l.ObjName(y), l.ObjName(0))
	}
}

func TestAccessLogNilSafe(t *testing.T) {
	var l *AccessLog
	l.BeginStep()
	l.Record(1, AccessWrite)
	l.EndStep(0)
	l.Reset()
	if l.Steps() != 0 {
		t.Fatal("nil log has steps")
	}
	if l.ObjName(1) != "?" {
		t.Fatal("nil ObjName")
	}
}

func TestAccessesConflict(t *testing.T) {
	r1 := []Access{{1, AccessRead}}
	r1b := []Access{{1, AccessRead}}
	w1 := []Access{{1, AccessWrite}}
	w2 := []Access{{2, AccessWrite}}
	scan := []Access{{1, AccessRead}, {2, AccessRead}}
	cases := []struct {
		a, b []Access
		want bool
	}{
		{r1, r1b, false},   // read-read never conflicts
		{r1, w1, true},     // read-write on the same object
		{w1, w1, true},     // write-write on the same object
		{w1, w2, false},    // writes to different objects
		{scan, w2, true},   // scan covers object 2
		{scan, nil, false}, // empty set conflicts with nothing
	}
	for i, c := range cases {
		if got := AccessesConflict(c.a, c.b); got != c.want {
			t.Errorf("case %d: AccessesConflict(%v, %v) = %v", i, c.a, c.b, got)
		}
		if got := AccessesConflict(c.b, c.a); got != c.want {
			t.Errorf("case %d (sym): = %v", i, got)
		}
	}
}

// TestRunMachinesRecordsSpans: the runner brackets every machine step, so
// span count equals Report.Steps and span owners match the granted PIDs.
func TestRunMachinesRecordsSpans(t *testing.T) {
	log := NewAccessLog()
	rep, err := RunMachines(Config{
		Pattern:   FailFree(2),
		Schedule:  RoundRobin(),
		AccessLog: log,
	}, []StepMachine{
		&countdownMachine{steps: 3, val: 1, decides: true},
		&countdownMachine{steps: 5, val: 2, decides: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accesses != log {
		t.Fatal("Report.Accesses is not the configured log")
	}
	if int64(log.Steps()) != rep.Steps {
		t.Fatalf("log has %d steps, report %d", log.Steps(), rep.Steps)
	}
	var byPID [2]int64
	for i := 0; i < log.Steps(); i++ {
		p, _ := log.Step(i)
		byPID[p]++
	}
	if byPID[0] != rep.StepsBy[0] || byPID[1] != rep.StepsBy[1] {
		t.Fatalf("span owners %v, StepsBy %v", byPID, rep.StepsBy)
	}
}
