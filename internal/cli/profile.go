package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling into cpuPath and arranges a heap
// profile into memPath (either may be empty = off). It returns a stop
// function that stops the CPU profile and writes the heap profile; errors
// while flushing are reported on stderr so a profiling failure never masks
// the run's own exit code.
//
// The caller must invoke stop *before* any os.Exit — os.Exit runs no
// deferred functions, and the sweep tools' non-zero exit paths (violations
// found, exhaustiveness void) are exactly the runs worth profiling.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cli: -cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cli: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "cli: -memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cli: -memprofile: %v\n", err)
			}
		}
	}, nil
}

// Usage strings for the -cpuprofile/-memprofile flags, shared so every tool
// spells them identically.
const (
	CPUProfileUsage = "write a CPU profile of the sweep to this file"
	MemProfileUsage = "write an allocation profile (taken after the sweep, post-GC) to this file"
)
