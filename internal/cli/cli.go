// Package cli holds flag-parsing helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseCrashes parses a crash specification of the form
// "pid:step[,pid:step...]" with 0-based pids, e.g. "0:10,3:45".
// An empty string yields a nil map (no crashes).
func ParseCrashes(s string) (map[int]int64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]int64)
	for _, part := range strings.Split(s, ",") {
		pid, step, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("cli: bad crash spec %q (want pid:step)", part)
		}
		p, err := strconv.Atoi(strings.TrimSpace(pid))
		if err != nil {
			return nil, fmt.Errorf("cli: bad crash pid %q: %w", pid, err)
		}
		if p < 0 {
			return nil, fmt.Errorf("cli: negative crash pid %d", p)
		}
		t, err := strconv.ParseInt(strings.TrimSpace(step), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cli: bad crash step %q: %w", step, err)
		}
		if t < 0 {
			return nil, fmt.Errorf("cli: negative crash step %d", t)
		}
		if _, dup := out[p]; dup {
			return nil, fmt.Errorf("cli: duplicate crash pid %d", p)
		}
		out[p] = t
	}
	return out, nil
}

// ParseProposals parses a comma-separated value list, e.g. "10,20,30"; an
// empty string yields nil (caller applies defaults).
func ParseProposals(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cli: bad proposal %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// DefaultProposals returns n distinct proposals 100..100+n−1.
func DefaultProposals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(100 + i)
	}
	return out
}

// ParseTimes parses a comma-separated list of non-negative step times for
// the named flag, e.g. "0,3"; an empty string yields nil (caller applies
// defaults).
func ParseTimes(flagName, s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, part := range parts {
		t, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cli: bad %s entry %q: %w", flagName, part, err)
		}
		if t < 0 {
			return nil, fmt.Errorf("cli: negative %s entry %d", flagName, t)
		}
		out = append(out, t)
	}
	return out, nil
}

// ValidatePool rejects worker-pool and seed counts that would silently
// produce an empty or hung run: -workers below 0 (0 means GOMAXPROCS) and
// -seeds below 1 are configuration errors, not requests.
func ValidatePool(workers, seeds int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	if seeds <= 0 {
		return fmt.Errorf("-seeds must be >= 1, got %d", seeds)
	}
	return nil
}
