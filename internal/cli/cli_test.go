package cli

import "testing"

func TestParseCrashes(t *testing.T) {
	tests := []struct {
		in      string
		want    map[int]int64
		wantErr bool
	}{
		{"", nil, false},
		{"0:10", map[int]int64{0: 10}, false},
		{"0:10,3:45", map[int]int64{0: 10, 3: 45}, false},
		{" 1 : 5 ", map[int]int64{1: 5}, false},
		{"0", nil, true},
		{"x:1", nil, true},
		{"0:y", nil, true},
		{"-1:5", nil, true},
		{"0:-5", nil, true},
		{"0:1,0:2", nil, true},
	}
	for _, tt := range tests {
		got, err := ParseCrashes(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseCrashes(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ParseCrashes(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for k, v := range tt.want {
			if got[k] != v {
				t.Errorf("ParseCrashes(%q)[%d] = %d, want %d", tt.in, k, got[k], v)
			}
		}
	}
}

func TestParseProposals(t *testing.T) {
	got, err := ParseProposals("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
	if v, err := ParseProposals(""); err != nil || v != nil {
		t.Errorf("empty should be nil, got %v/%v", v, err)
	}
	if _, err := ParseProposals("1,x"); err == nil {
		t.Error("expected error")
	}
}

func TestDefaultProposals(t *testing.T) {
	got := DefaultProposals(3)
	if len(got) != 3 || got[0] != 100 || got[2] != 102 {
		t.Fatalf("got %v", got)
	}
}
