// Package core implements the paper's primary contribution: the failure
// detectors Υ and Υ^f, the set-agreement protocols that use them, the
// generic extraction of Υ^f from any stable non-trivial failure detector,
// and the adversary constructions behind the separation theorems.
//
// How the code's names map to the paper's definitions:
//
//   - UpsilonSpec (constructors Upsilon, UpsilonF) is Υ / Υ^f (Sections 4
//     and 5.3): eventually all correct processes permanently output the
//     same set U with |U| ≥ n+1−f, where U is *not* the set of correct
//     processes. That single "wrong set" bit is the weakest failure
//     information the paper exhibits; Legal/LegalStable are the executable
//     specification.
//   - Fig1 (NewFig1) is Figure 1 / Theorem 2: n-set agreement from Υ and
//     registers, wait-free. Fig2 (NewFig2) is Figure 2 / Theorem 6: f-set
//     agreement from Υ^f in E_f. Both round-alternate a k-converge attempt
//     (internal/converge) with an Υ query that breaks symmetry when the
//     output set differs from the processes still running.
//   - Extraction (NewExtraction) is Figure 3 / Theorem 10: the generic
//     emulation of Υ^f from any stable f-non-trivial detector D, driven by
//     Phi — the map φ_D of Corollary 9 carrying each stable output d to
//     (correct(σ), w(σ)) for a non-sample σ of D. The paper proves φ_D
//     exists non-constructively; phi.go exhibits it per concrete detector
//     (PhiOmega, PhiOmegaF, PhiStableEvPerfect).
//   - NewComposed chains Figure 3 into Figure 1 as parallel per-process
//     tasks — Theorem 10 made operational: any stable non-trivial detector
//     solves set agreement.
//   - ComplementOfOmega / ComplementOfOmegaF / OmegaFromUpsilon2 /
//     NewUpsilon1ToOmega are the local reductions of Sections 4 and 5.3:
//     Ω^f → Υ^f by complementing the trusted set, and the two-process and
//     E_1 equivalences in the other direction.
//   - Extractor / RunAdversary (adversary.go) is the Theorem 1/5 machinery:
//     a constructive adversary that, against any candidate algorithm
//     claiming to extract Ω^f from Υ^f, builds a run whose extracted output
//     either switches forever or violates Ω^f — Υ is strictly weaker than
//     Ωn (the Ωn-boost comparator of Corollary 4 lives in
//     internal/agreement's boosted consensus).
//   - NewHeartbeatUpsilon (heartbeat.go) is the Section 1 observation that
//     timing assumptions are where failure information comes from: Υ
//     implemented from heartbeats and adaptive timeouts, valid under an
//     eventually synchronous schedule and defeated by pure asynchrony.
package core
