package core

import (
	"fmt"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// runComposed solves set agreement using a stable detector through the
// Figure 3 + Figure 1 composition and verifies the agreement properties.
func runComposed(t *testing.T, pattern sim.Pattern, d sim.Oracle, phi Phi, sched sim.Schedule, budget int64) *sim.Report {
	t.Helper()
	n := pattern.N()
	c := NewComposed(n, d, phi, converge.UseAtomic)
	proposals := make([]sim.Value, n)
	for i := range proposals {
		proposals[i] = sim.Value(100 + i)
	}
	rep, err := sim.RunTasks(sim.Config{Pattern: pattern, Schedule: sched, Budget: budget},
		c.TaskSets(proposals))
	if err != nil {
		t.Fatalf("composed run failed: %v", err)
	}
	if err := check.SetAgreement(rep, pattern, c.K(), proposals); err != nil {
		t.Fatalf("composed run violated set agreement: %v", err)
	}
	return rep
}

func TestComposedSolvesWithOmega(t *testing.T) {
	// Set agreement using Ω — but only through the generic machinery: no
	// Ω-specific algorithm anywhere in the pipeline.
	patterns := map[string]sim.Pattern{
		"failfree": sim.FailFree(4),
		"crash1":   sim.CrashPattern(4, map[sim.PID]sim.Time{1: 60}),
		"crash3":   sim.CrashPattern(4, map[sim.PID]sim.Time{0: 40, 1: 90, 3: 140}),
	}
	for name, pattern := range patterns {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				omega := fd.NewOmega(pattern, 100, seed)
				runComposed(t, pattern, omega, PhiOmega(4), sim.NewRandom(seed), 1<<21)
			}
		})
	}
}

func TestComposedSolvesWithOmegaN(t *testing.T) {
	n := 5
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{2: 70})
	for seed := int64(0); seed < 4; seed++ {
		omegaN := fd.NewOmegaF(pattern, n-1, 120, seed)
		runComposed(t, pattern, omegaN, PhiOmegaF(n), sim.NewRandom(seed+9), 1<<21)
	}
}

func TestComposedSolvesWithStableEvPerfect(t *testing.T) {
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{3: 50})
	evp := fd.NewStableEvPerfect(pattern, 90, 3)
	runComposed(t, pattern, evp, PhiStableEvPerfect(n), sim.NewRandom(2), 1<<21)
}

func TestComposedRoundRobin(t *testing.T) {
	n := 4
	pattern := sim.FailFree(n)
	omega := fd.NewOmega(pattern, 200, 5)
	rep := runComposed(t, pattern, omega, PhiOmega(n), sim.RoundRobin(), 1<<22)
	t.Logf("lockstep composed run: %d steps", rep.Steps)
}

func TestComposedWithBatchSlack(t *testing.T) {
	// The batch-counting extraction path composes too.
	n := 4
	pattern := sim.FailFree(n)
	omega := fd.NewOmega(pattern, 150, 1)
	runComposed(t, pattern, omega, PhiOmegaSlack(n, 2), sim.NewRandom(3), 1<<22)
}

func TestComposedEmulatedOracleFallback(t *testing.T) {
	// Before the extraction initializes, the emulated oracle answers Π — a
	// set of legal size, so the protocol's arithmetic stays in range.
	n := 3
	ex := NewExtraction(n, fd.Constant(sim.PID(0)), PhiOmega(n))
	oracle := ex.Emulated()
	if got := oracle.Value(1, 0).(sim.Set); got != sim.FullSet(n) {
		t.Fatalf("fallback = %v, want Π", got)
	}
}

func TestComposedStepsSplitAcrossTasks(t *testing.T) {
	// Both tasks of each process make progress: the reduction's outputs
	// stabilize AND the protocol decides in the same run.
	n := 4
	pattern := sim.FailFree(n)
	omega := fd.NewOmega(pattern, 50, 7)
	c := NewComposed(n, omega, PhiOmega(n), converge.UseAtomic)
	proposals := []sim.Value{100, 101, 102, 103}
	rep, err := sim.RunTasks(sim.Config{
		Pattern: pattern, Schedule: sim.NewRandom(11), Budget: 1 << 21,
	}, c.TaskSets(proposals))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decided) != n {
		t.Fatalf("decided %d/%d", len(rep.Decided), n)
	}
	// The extraction outputs must be non-trivial by decision time at the
	// processes that got far enough (Π or the complement — both legal).
	for i := 0; i < n; i++ {
		if c.Extraction().OutputAt(sim.PID(i)).IsEmpty() {
			t.Errorf("extraction at p%d never initialized", i+1)
		}
	}
}

func TestRunTasksMultiTaskSemantics(t *testing.T) {
	// Direct RunTasks checks: a process with a deciding task and a forever
	// task decides; crash kills both tasks; fairness rotates tasks.
	n := 2
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{1: 7})
	var foreverSteps int64
	decider := func(p *sim.Proc) (sim.Value, bool) {
		for i := 0; i < 5; i++ {
			p.Yield()
		}
		return sim.Value(p.ID()), true
	}
	forever := func(p *sim.Proc) (sim.Value, bool) {
		for {
			p.Yield()
			foreverSteps++
		}
	}
	rep, err := sim.RunTasks(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 16},
		[]sim.TaskSet{{decider, forever}, {decider, forever}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decided[0] != 0 {
		t.Fatalf("p1 decision missing: %v", rep.Decided)
	}
	if _, ok := rep.Decided[1]; ok {
		t.Fatal("crashed process decided")
	}
	if !rep.Crashed.Has(1) {
		t.Fatal("p2 should be crashed")
	}
	if foreverSteps == 0 {
		t.Fatal("forever task starved")
	}
}

func TestRunTasksSingleTaskMatchesRun(t *testing.T) {
	// RunTasks with one task per process behaves like Run.
	mk := func() []sim.Body {
		bodies := make([]sim.Body, 3)
		for i := range bodies {
			bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
				for k := 0; k < 4; k++ {
					p.Yield()
				}
				return sim.Value(p.ID()) * 2, true
			}
		}
		return bodies
	}
	pattern := sim.FailFree(3)
	a, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin()}, mk())
	if err != nil {
		t.Fatal(err)
	}
	sets := make([]sim.TaskSet, 3)
	for i, b := range mk() {
		sets[i] = sim.TaskSet{b}
	}
	b, err := sim.RunTasks(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin()}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
	for p, v := range a.Decided {
		if b.Decided[p] != v {
			t.Fatalf("decisions differ at %v", p)
		}
	}
}

func TestRunTasksValidation(t *testing.T) {
	for name, sets := range map[string][]sim.TaskSet{
		"wrong count": {{}},
		"empty tasks": {{}, {}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			_, _ = sim.RunTasks(sim.Config{Pattern: sim.FailFree(2), Schedule: sim.RoundRobin()}, sets)
		}()
	}
}

func TestComposedGrid(t *testing.T) {
	// Broader grid: sizes × detectors, all through the generic pipeline.
	for _, n := range []int{3, 5} {
		for _, det := range []string{"omega", "omegaN", "evp"} {
			t.Run(fmt.Sprintf("n%d/%s", n, det), func(t *testing.T) {
				pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{sim.PID(n - 1): 80})
				var (
					oracle sim.Oracle
					phi    Phi
				)
				switch det {
				case "omega":
					oracle = fd.NewOmega(pattern, 100, 1)
					phi = PhiOmega(n)
				case "omegaN":
					oracle = fd.NewOmegaF(pattern, n-1, 100, 1)
					phi = PhiOmegaF(n)
				case "evp":
					oracle = fd.NewStableEvPerfect(pattern, 100, 1)
					phi = PhiStableEvPerfect(n)
				}
				runComposed(t, pattern, oracle, phi, sim.NewRandom(4), 1<<22)
			})
		}
	}
}
