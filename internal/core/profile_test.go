package core

import (
	"testing"

	"weakestfd/internal/converge"
	"weakestfd/internal/sim"
	"weakestfd/internal/trace"
)

// White-box step-profile tests: the paper's pseudocode prescribes which
// kinds of atomic operations each protocol performs; the trace recorder
// verifies the implementations take exactly those step classes.

func TestFig1StepProfile(t *testing.T) {
	n := 4
	pattern := sim.FailFree(n)
	// Worst-case noise forces multiple rounds, exercising all step classes.
	h := Upsilon(n).HistoryWorstCase(pattern, 300, 1)
	g := NewFig1(n, h, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = g.Body(sim.Value(100 + i))
	}
	rec := trace.NewRecorder(nil)
	if _, err := sim.Run(sim.Config{
		Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 21,
		Tracer: rec.Hook(),
	}, bodies); err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	// The protocol's vocabulary, per Figure 1: decision register reads and
	// writes, Υ queries, round registers, converge snapshot ops.
	for _, class := range []string{
		"read D", "write D", "query",
		"read D[·]", "write D[·]", "read Stable[·]",
		"update nconv[·][·]/·.A", "scan nconv[·][·]/·.B",
		"update gconv[·][·]/·.A",
	} {
		if s.ByClass[class] == 0 {
			t.Errorf("no %q steps recorded; classes: %v", class, s.ByClass)
		}
	}
	// No foreign step classes: everything must be one of the protocol's.
	allowed := map[string]bool{
		"read D": true, "write D": true, "query": true,
		"read D[·]": true, "write D[·]": true,
		"read Stable[·]": true, "write Stable[·]": true,
		"update nconv[·][·]/·.A": true, "scan nconv[·][·]/·.A": true,
		"update nconv[·][·]/·.B": true, "scan nconv[·][·]/·.B": true,
		"update gconv[·][·]/·.A": true, "scan gconv[·][·]/·.A": true,
		"update gconv[·][·]/·.B": true, "scan gconv[·][·]/·.B": true,
	}
	for class := range s.ByClass {
		if !allowed[class] {
			t.Errorf("unexpected step class %q", class)
		}
	}
}

func TestFig2StepProfile(t *testing.T) {
	// Figure 2 adds the A[r][k] snapshot batching to the vocabulary.
	n, f := 5, 2
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{0: 30, 1: 50})
	u := sim.SetOf(0, 2, 3, 4) // all correct + one faulty: gladiator path
	h := UpsilonF(n, f).HistoryWithStable(pattern, 0, 1, u)
	g := NewFig2(n, f, h, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = g.Body(sim.Value(100 + i))
	}
	rec := trace.NewRecorder(nil)
	if _, err := sim.Run(sim.Config{
		Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 21,
		Tracer: rec.Hook(),
	}, bodies); err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	for _, class := range []string{"update A[·][·]/·", "scan A[·][·]/·", "query", "write D"} {
		if s.ByClass[class] == 0 {
			t.Errorf("no %q steps recorded; classes: %v", class, s.ByClass)
		}
	}
}

func TestExtractionStepProfile(t *testing.T) {
	// Figure 3's vocabulary: D queries, R[i] publications, report reads,
	// Changed/Exited flags, output writes.
	n := 3
	pattern := sim.FailFree(n)
	ex := NewExtraction(n, constPIDOracle{}, PhiOmega(n))
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = ex.Body()
	}
	rec := trace.NewRecorder(nil)
	rep, _ := sim.Run(sim.Config{
		Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 5_000,
		Tracer: rec.Hook(),
	}, bodies)
	if !rep.BudgetExhausted {
		t.Fatal("extraction should run to budget")
	}
	s := rec.Summarize()
	for _, class := range []string{
		"query", "write R[·]", "read R[·]",
		"read Changed[·]", "write Υf-output[·]",
	} {
		if s.ByClass[class] == 0 {
			t.Errorf("no %q steps recorded; classes: %v", class, s.ByClass)
		}
	}
}

// constPIDOracle is a trivially stable Ω-range oracle for profile tests.
type constPIDOracle struct{}

func (constPIDOracle) Value(sim.PID, sim.Time) any { return sim.PID(0) }
