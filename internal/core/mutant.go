package core

import (
	"fmt"

	"weakestfd/internal/converge"
	"weakestfd/internal/sim"
)

// Fig1Mutation names an intentionally broken variant of the Figure 1
// protocol. Mutants exist to calibrate the schedule-space explorer
// (internal/explore): a useful bug-finding harness must demonstrably catch a
// protocol that is wrong in a way the seeded-random test suites miss. They
// are never used by the real protocol paths.
type Fig1Mutation int

const (
	// MutNone is the unmutated protocol (MutantMachine == Machine).
	MutNone Fig1Mutation = iota
	// MutWrongAdopt breaks the k-converge adopt rule: a process that does not
	// commit keeps its own input instead of adopting the minimum of the
	// smallest committing set. This voids C-Agreement — the chain-containment
	// argument that pins all picked values inside one committing set — and
	// with it the protocol's Agreement property: under the right
	// interleaving, a non-committing process escapes the round with its own
	// value, commits it solo in a later round, and the decision register sees
	// more than n−1 distinct values. Random schedules essentially never
	// produce that interleaving, which is exactly why the explorer exists.
	MutWrongAdopt
	// MutSkipOnChange breaks the detector-change escape: a gladiator whose
	// re-query observes a different Υ output skips ahead two rounds with its
	// current value instead of writing Stable[r] and adopting D[r]. The
	// mutation is *provably dead code under every history that is stable
	// from time 0*: both query sites of a round then return the identical
	// value, the u2 != u branch never fires, and the mutant takes exactly
	// the unmutated protocol's steps — so no stable-from-0 exploration and
	// no seeded-random suite (which also fixes histories at their stable
	// value) can distinguish it. Under an unstable prefix — one
	// pre-stabilization output switch suffices — the skipping process
	// bypasses a round's top-level converge entirely, voiding the
	// pass-through invariant (every process in round r updated round r's
	// converge) that Agreement's containment argument rests on: the skipper
	// solo-commits its stale value in a round the others never contaminate,
	// while another process solo-commits a different value one round behind.
	// It exists to prove the SwitchBudget dimension of the explorer pays for
	// itself: only a schedule-controlled history flip reaches the bug.
	MutSkipOnChange
)

// String implements fmt.Stringer.
func (m Fig1Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutWrongAdopt:
		return "wrong-adopt"
	case MutSkipOnChange:
		return "skip-on-change"
	default:
		return fmt.Sprintf("Fig1Mutation(%d)", int(m))
	}
}

// MutantMachine returns the Figure 1 automaton with the given mutation
// applied, proposing the given value. MutNone yields the correct machine.
func (g *Fig1) MutantMachine(input sim.Value, mut Fig1Mutation) sim.StepMachine {
	m := &fig1Machine{g: g, v: input}
	switch mut {
	case MutNone:
	case MutWrongAdopt:
		m.conv.Adopt = func(in sim.Value, _ converge.ValueSet) sim.Value { return in }
	case MutSkipOnChange:
		m.skipOnChange = true
	default:
		panic(fmt.Sprintf("core: unknown Fig1Mutation %d", int(mut)))
	}
	return m
}
