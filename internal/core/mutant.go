package core

import (
	"fmt"

	"weakestfd/internal/converge"
	"weakestfd/internal/sim"
)

// Mutation-testing variants of the protocol machines. Mutants exist to
// calibrate the schedule-space explorer (internal/explore): a useful
// bug-finding harness must demonstrably catch protocols that are wrong in
// ways the seeded-random test suites miss, and each mutant is paired (in
// explore's mutant zoo) with the named failure pattern expected to kill it.
// They are never used by the real protocol paths.

// Fig1Mutation names an intentionally broken variant of the Figure 1
// protocol.
type Fig1Mutation int

const (
	// MutNone is the unmutated protocol (MutantMachine == Machine).
	MutNone Fig1Mutation = iota
	// MutWrongAdopt breaks the k-converge adopt rule: a process that does not
	// commit keeps its own input instead of adopting the minimum of the
	// smallest committing set. This voids C-Agreement — the chain-containment
	// argument that pins all picked values inside one committing set — and
	// with it the protocol's Agreement property: under the right
	// interleaving, a non-committing process escapes the round with its own
	// value, commits it solo in a later round, and the decision register sees
	// more than n−1 distinct values. Random schedules essentially never
	// produce that interleaving, which is exactly why the explorer exists.
	MutWrongAdopt
	// MutSkipOnChange breaks the detector-change escape: a gladiator whose
	// re-query observes a different Υ output skips ahead two rounds with its
	// current value instead of writing Stable[r] and adopting D[r]. The
	// mutation is *provably dead code under every history that is stable
	// from time 0*: both query sites of a round then return the identical
	// value, the u2 != u branch never fires, and the mutant takes exactly
	// the unmutated protocol's steps — so no stable-from-0 exploration and
	// no seeded-random suite (which also fixes histories at their stable
	// value) can distinguish it. Under an unstable prefix — one
	// pre-stabilization output switch suffices — the skipping process
	// bypasses a round's top-level converge entirely, voiding the
	// pass-through invariant (every process in round r updated round r's
	// converge) that Agreement's containment argument rests on: the skipper
	// solo-commits its stale value in a round the others never contaminate,
	// while another process solo-commits a different value one round behind.
	// It exists to prove the SwitchBudget dimension of the explorer pays for
	// itself: only a schedule-controlled history flip reaches the bug.
	MutSkipOnChange
	// MutGarbledDecide corrupts the commit path: the top-level converge
	// commit writes v+garbleOffset into the decision register and decides
	// that garbled value. Every deciding run violates Validity, so the
	// explorer's root fair run already kills it — the zoo's cheapest mutant,
	// pinning the validity property and the artifact/replay plumbing.
	MutGarbledDecide
	// MutGarbledEcho corrupts the citizen path: a process outside the
	// detector output echoes v+garbleOffset into D[r] instead of its value.
	// Dead code while the detector names every process — a failure-free
	// Figure 1 run under stable output Π never has citizens — but under any
	// stable output that excludes a live process, that process's echo
	// poisons D[r], everyone leaving round r adopts the garbled value, and
	// the eventual decision is unproposed. It pins the citizen branch,
	// which no other mutant exercises, and (composed with Figure 3) is the
	// composition's third kill: the emulated Υ settles on the complement of
	// the Ω leader, so the leader itself is a live citizen in the root run.
	MutGarbledEcho
)

// garbleOffset is the value corruption MutGarbledDecide applies on commit:
// far outside the canonical proposal range, so the decided value is
// provably unproposed.
const garbleOffset sim.Value = 911

// String implements fmt.Stringer.
func (m Fig1Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutWrongAdopt:
		return "wrong-adopt"
	case MutSkipOnChange:
		return "skip-on-change"
	case MutGarbledDecide:
		return "garbled-decide"
	case MutGarbledEcho:
		return "garbled-echo"
	default:
		return fmt.Sprintf("Fig1Mutation(%d)", int(m))
	}
}

// MutantMachine returns the Figure 1 automaton with the given mutation
// applied, proposing the given value. MutNone yields the correct machine.
func (g *Fig1) MutantMachine(input sim.Value, mut Fig1Mutation) sim.StepMachine {
	m := &fig1Machine{g: g, v: input}
	switch mut {
	case MutNone:
	case MutWrongAdopt:
		m.conv.Adopt = func(in sim.Value, _ converge.ValueSet) sim.Value { return in }
	case MutSkipOnChange:
		m.skipOnChange = true
	case MutGarbledDecide:
		m.garbleDecide = true
	case MutGarbledEcho:
		m.garbleEcho = true
	default:
		panic(fmt.Sprintf("core: unknown Fig1Mutation %d", int(mut)))
	}
	return m
}

// Fig2Mutation names an intentionally broken variant of the Figure 2
// protocol. The mutations target its three load-bearing mechanisms: the
// converge adopt rule (agreement), the detector-change escape of the
// gladiator cycle (agreement under unstable histories), and the gladiator
// scan threshold n+1−f of lines 17-19 (termination). Note that *lowering*
// the scan threshold is not here: the top-level converge's C-Agreement pins
// every gladiator's scan-minimum inside the committing set regardless of
// how stale the scan is, so an undersized-scan mutant is behaviorally
// equivalent for every property the explorer checks.
type Fig2Mutation int

const (
	// MutF2None is the unmutated protocol.
	MutF2None Fig2Mutation = iota
	// MutF2WrongAdopt breaks the converge adopt rule exactly like
	// MutWrongAdopt does for Figure 1: non-committers keep their own value.
	// The top-level (f)-converge race then yields two solo commits of
	// different values — more than f distinct decisions.
	MutF2WrongAdopt
	// MutF2SkipOnChange breaks Figure 2's detector-change escape the same
	// way MutSkipOnChange breaks Figure 1's: a gladiator whose re-query
	// (line 29, or the wait-loop escape of line 19) observes a different Υ^f
	// output skips ahead two rounds with its current value instead of
	// writing Stable[r] and adopting D[r]. Like the Figure 1 variant it is
	// provably dead code under every stable-from-0 history — both query
	// sites return the identical value — so only a SwitchBudget sweep
	// reaches it; the skipper bypasses two rounds' top-level (f)-converges,
	// voiding the pass-through containment that Agreement rests on.
	MutF2SkipOnChange
	// MutF2StarvedWait raises the gladiator scan threshold to all n
	// entries: the wait loop of lines 17-19 then waits for crashed
	// gladiators too, and a single crashed member of U parks every correct
	// gladiator in the wait loop forever — a termination failure whose
	// witness crash is load-bearing (the failure-free runs terminate).
	MutF2StarvedWait
)

// String implements fmt.Stringer.
func (m Fig2Mutation) String() string {
	switch m {
	case MutF2None:
		return "none"
	case MutF2WrongAdopt:
		return "wrong-adopt"
	case MutF2SkipOnChange:
		return "skip-on-change"
	case MutF2StarvedWait:
		return "starved-wait"
	default:
		return fmt.Sprintf("Fig2Mutation(%d)", int(m))
	}
}

// MutantMachine returns the Figure 2 automaton with the given mutation
// applied, proposing the given value. MutF2None yields the correct machine.
func (g *Fig2) MutantMachine(input sim.Value, mut Fig2Mutation) sim.StepMachine {
	m := &fig2Machine{g: g, v: input, minEntries: g.n - g.f}
	switch mut {
	case MutF2None:
	case MutF2WrongAdopt:
		m.conv.Adopt = func(in sim.Value, _ converge.ValueSet) sim.Value { return in }
	case MutF2SkipOnChange:
		m.skipOnChange = true
	case MutF2StarvedWait:
		m.minEntries = g.n
	default:
		panic(fmt.Sprintf("core: unknown Fig2Mutation %d", int(mut)))
	}
	return m
}

// ExtractMutation names an intentionally broken variant of the Figure 3
// reduction. The extraction's claim is output *sanity* — whenever the
// emulated outputs settle, the settled set is a legal Υ^f value — so its
// mutants corrupt what gets written into the output registers, or when.
type ExtractMutation int

const (
	// MutExNone is the unmutated reduction.
	MutExNone ExtractMutation = iota
	// MutExFullOutput writes Π instead of φ_D's set S at the round's output
	// switch (the "batches complete" commit of Figure 3). Under a
	// failure-free pattern the outputs settle on Π = correct — exactly the
	// value Υ^f may never stabilize on.
	MutExFullOutput
	// MutExEmptyOutput writes ∅ instead of S: the settled output violates
	// the range constraint (Υ^f outputs are non-empty) in every pattern.
	MutExEmptyOutput
	// MutExStaleLeader latches the first detector query forever: Task 1
	// keeps republishing the round-entry value and the round exit re-adopts
	// it instead of re-querying, so a leader change never propagates. A
	// single pre-stabilization flip of the Ω source — output the
	// crashed process until the very first query has happened — makes the
	// reduction compute S = complement({crashed}) = correct and settle
	// there. Both the flip and the crash are load-bearing: stable-from-0
	// histories latch the true leader (S legal), and without the crash the
	// latched complement is a strict subset of correct (also legal).
	MutExStaleLeader
)

// String implements fmt.Stringer.
func (m ExtractMutation) String() string {
	switch m {
	case MutExNone:
		return "none"
	case MutExFullOutput:
		return "full-output"
	case MutExEmptyOutput:
		return "empty-output"
	case MutExStaleLeader:
		return "stale-leader"
	default:
		return fmt.Sprintf("ExtractMutation(%d)", int(m))
	}
}

// MutantMachine returns the Figure 3 reduction automaton with the given
// mutation applied. MutExNone yields the correct machine.
func (e *Extraction) MutantMachine(mut ExtractMutation) sim.StepMachine {
	switch mut {
	case MutExNone, MutExFullOutput, MutExEmptyOutput, MutExStaleLeader:
		return &extractionMachine{e: e, mut: mut}
	default:
		panic(fmt.Sprintf("core: unknown ExtractMutation %d", int(mut)))
	}
}

// MutantMachineTaskSets is MachineTaskSets with the protocol task replaced
// by the given Figure 1 mutant: the reduction half runs unmutated, so the
// composition's failures are the protocol's — under the emulated detector,
// whose output changes are ordinary shared-state evolution rather than
// oracle flips. MutSkipOnChange is NOT composed here: the emulated output
// only changes during the pre-settle window, before any process can
// decide, so an armed skip merely renumbers rounds while converge still
// enforces Agreement (depth-48 sweeps past 6M runs find no kill).
// MutGarbledEcho is the composition's detector-shape mutant instead: the
// emulated Υ settles on the complement of the Ω leader, so the leader is a
// live citizen in the root run and its garbled echo poisons D[r].
func (c *Composed) MutantMachineTaskSets(proposals []sim.Value, mut Fig1Mutation) []sim.MachineTaskSet {
	out := make([]sim.MachineTaskSet, len(proposals))
	for i := range out {
		out[i] = sim.MachineTaskSet{
			c.extraction.Machine(),
			c.protocol.MutantMachine(proposals[i], mut),
		}
	}
	return out
}
