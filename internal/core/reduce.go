package core

import (
	"fmt"

	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// This file implements the explicit reductions of Sections 4 and 5.3:
// Ω → Υ and Υ → Ω for two processes (where the two detectors are
// equivalent), and the Υ¹ → Ω extraction in the environment E_1, which uses
// shared heartbeat registers.

// ComplementOfOmega builds the local reduction Ω → Υ: every process outputs
// Π minus its Ω leader. Eventually the leader is the same correct process ℓ
// everywhere, and Π−{ℓ} misses a correct process, so it cannot be the
// correct set. For two processes this is the paper's Section 4 equivalence
// direction Ω ⇒ Υ; it is legal for every n.
func ComplementOfOmega(omega sim.Oracle, n int) sim.Oracle {
	return fd.FuncOracle(func(p sim.PID, t sim.Time) any {
		//lint:fdlint seamcheck -- history transformer: defines the derived Υ history pointwise from Ω; the derived output is what machines observe, and they observe it through the seam
		out := omega.Value(p, t)
		l, ok := out.(sim.PID)
		if !ok {
			panic(fmt.Sprintf("core: Ω output has type %T, want sim.PID", out))
		}
		return sim.SetOf(l).Complement(n)
	})
}

// OmegaFromUpsilon2 builds the local two-process reduction Υ → Ω (Section
// 4): a process outputs the complement of the Υ output when that output is a
// singleton, and its own identifier otherwise. With two processes, Υ's
// eventual output U ≠ correct leaves only two cases: U = {q} means the other
// process is correct (so elect it); U = {p1, p2} means exactly one process
// is correct (so the one correct process electing itself is a stable correct
// leader at every correct process).
func OmegaFromUpsilon2(upsilon sim.Oracle) sim.Oracle {
	return fd.FuncOracle(func(p sim.PID, t sim.Time) any {
		//lint:fdlint seamcheck -- history transformer: defines the derived Ω history pointwise from Υ; machines observe the derived history through the seam
		out := upsilon.Value(p, t)
		u, ok := out.(sim.Set)
		if !ok {
			panic(fmt.Sprintf("core: Υ output has type %T, want sim.Set", out))
		}
		if u.Len() == 1 {
			return u.Complement(2).Min()
		}
		return p
	})
}

// Upsilon1ToOmega is the Section 5.3 extraction of Ω = Ω¹ from Υ¹ in the
// environment E_1 (at most one crash). Every process periodically writes an
// ever-growing timestamp; when Υ¹ outputs a proper subset U (size n), the
// elected leader is the single process Π−U, which must be correct (were it
// faulty, correct ⊆ U with |correct| ≥ n = |U| would force U = correct);
// when Υ¹ outputs Π, exactly one process is faulty, its timestamp freezes,
// and the leader is the smallest id among the n processes with the highest
// timestamps.
//
// The emulated Ω output is published per process in the returned array.
type Upsilon1ToOmega struct {
	n       int
	upsilon sim.Oracle
	hb      *memory.Array[int64]
	out     *memory.Array[memory.Opt[sim.PID]]
}

// NewUpsilon1ToOmega builds the shared state of one reduction run.
func NewUpsilon1ToOmega(n int, upsilon sim.Oracle) *Upsilon1ToOmega {
	if n < 2 {
		panic(fmt.Sprintf("core: Upsilon1ToOmega needs n ≥ 2, got %d", n))
	}
	return &Upsilon1ToOmega{
		n:       n,
		upsilon: upsilon,
		hb:      memory.NewArray[int64]("HB", n),
		out:     memory.NewArray[memory.Opt[sim.PID]]("Ω-output", n),
	}
}

// OutputAt returns process i's current emulated Ω output; for inspection
// between steps only.
func (u *Upsilon1ToOmega) OutputAt(i sim.PID) memory.Opt[sim.PID] { return u.out.At(i).Inspect() }

// Body returns the reduction automaton for one process; it never returns.
func (u *Upsilon1ToOmega) Body() sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		me := p.ID()
		ts := int64(0)
		for {
			ts++
			u.hb.Write(p, me, ts)
			set := fd.Query[sim.Set](p, u.upsilon)
			var leader sim.PID
			if set.Len() < u.n {
				leader = set.Complement(u.n).Min()
			} else {
				beats := u.hb.Collect(p)
				leader = freshest(beats, u.n-1).Min()
			}
			u.out.Write(p, me, memory.Some(leader))
		}
	}
}
