package core

import (
	"fmt"

	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// This file implements the adversary constructions behind Theorem 1 (Υ is
// strictly weaker than Ωn, n ≥ 2) and Theorem 5 (Υ^f strictly weaker than
// Ω^f, 2 ≤ f ≤ n). The proofs build, against any algorithm A that claims to
// extract Ω^f from Υ^f, a failure-free run — in which Υ^f permanently
// outputs U = {p1,…,pn} — where A's extracted output can never stabilize:
// whenever A stabilizes on a set L at the currently-running processes, the
// adversary lets every process take one step and then runs only Π−L, a
// prefix indistinguishable from runs where all of L is faulty, in which a
// correct extraction must eventually output some L' ≠ L (Ω^f's set must
// intersect the correct processes).
//
// An impossibility cannot be executed universally, but the adversary is
// fully constructive against a concrete candidate: RunAdversary drives it
// against an Extractor and reports either (a) the forced output switches —
// unbounded in the phase budget — or (b) a "stuck" candidate together with a
// completed run (replayed deterministically with the stuck set crashed)
// witnessing that the candidate's stable output violates the Ω^f
// specification. Either outcome falsifies the candidate, which is exactly
// the theorem's content.

// Extractor is a candidate algorithm that uses an Υ^f history (set-valued
// oracle) and continuously publishes, per process, its current guess of an
// Ω^f output (a set of f processes) in a register array.
type Extractor struct {
	// Name identifies the candidate in reports.
	Name string
	// Build returns the n process bodies and the candidate-output array the
	// adversary watches. Bodies never return.
	Build func(n, f int, upsilon sim.Oracle) (bodies []sim.Body, out *memory.Array[sim.Set])
}

// AdversaryConfig parameterizes one adversary execution.
type AdversaryConfig struct {
	// N is the system size, F the resilience (2 ≤ F ≤ N−1; Theorem 1 is
	// F = N−1).
	N, F int
	// Extractor is the candidate under attack.
	Extractor Extractor
	// TargetSwitches stops the adversary once this many forced output
	// transitions have been observed (the run could continue forever).
	TargetSwitches int
	// PhaseBudget is the number of steps the adversary waits for the
	// candidate to move before declaring it stuck (and building the
	// violation witness). 0 means 4096·N.
	PhaseBudget int64
	// Budget caps the total run length. 0 means sim.DefaultBudget.
	Budget int64
}

// Violation witnesses a stuck candidate: a completed run (the observed
// prefix with the stuck set crashed immediately after its last step) in
// which the candidate's stable output contains no correct process.
type Violation struct {
	// Pattern is the completion's failure pattern: faulty = StableL.
	Pattern sim.Pattern
	// StableL is the candidate's stuck output.
	StableL sim.Set
	// Err is the Ω^f-legality error of StableL under Pattern.
	Err error
	// Confirmed reports that the deterministic replay reproduced StableL at
	// every correct process of Pattern.
	Confirmed bool
}

// AdversaryResult reports one adversary execution.
type AdversaryResult struct {
	// Switches is the number of forced candidate transitions observed.
	Switches int
	// History is the sequence of candidate sets the adversary extracted.
	History []sim.Set
	// Stuck reports that the candidate stopped moving within PhaseBudget.
	Stuck bool
	// Violation is non-nil iff Stuck: the completed-run witness.
	Violation *Violation
	// Steps is the length of the driven run.
	Steps int64
	// U is the constant Υ^f output used throughout (the proofs' {p1..pn}).
	U sim.Set
}

// Falsified reports whether the adversary falsified the candidate — by
// forcing at least target switches or by exhibiting a spec violation.
func (r *AdversaryResult) Falsified(target int) bool {
	return r.Switches >= target || (r.Stuck && r.Violation != nil && r.Violation.Err != nil && r.Violation.Confirmed)
}

// RunAdversary executes the Theorem 1/5 adversary against a candidate
// extractor.
func RunAdversary(cfg AdversaryConfig) *AdversaryResult {
	n, f := cfg.N, cfg.F
	if n < 3 || f < 2 || f > n-1 {
		panic(fmt.Sprintf("core: adversary needs n ≥ 3 and 2 ≤ f ≤ n−1, got n=%d f=%d", n, f))
	}
	phaseBudget := cfg.PhaseBudget
	if phaseBudget == 0 {
		phaseBudget = 4096 * int64(n)
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = sim.DefaultBudget
	}

	// The proofs' constant history: Υ^f permanently outputs U = {p1,…,pn},
	// legal in every failure-free run (U ≠ Π = correct) and in every
	// completion crashing a set other than {p_{n+1}}.
	u := sim.FullSet(n).Remove(sim.PID(n - 1))
	upsilon := fd.Constant(u)

	bodies, out := cfg.Extractor.Build(n, f, upsilon)
	pattern := sim.FailFree(n)
	res := &AdversaryResult{U: u}

	// Adversary state, updated by the stop predicate (which runs while all
	// processes are quiescent) and read by the schedule.
	victims := sim.FullSet(n)
	var eachOnce sim.Set
	var lastL sim.Set // empty = no candidate yet
	var sinceSwitch int64
	var grants []sim.PID
	lastStep := make([]sim.Time, n)
	rr := sim.PID(-1)

	schedule := sim.Func(func(t sim.Time, enabled sim.Set) sim.PID {
		var p sim.PID
		if togo := eachOnce.Intersect(enabled); !togo.IsEmpty() {
			p = togo.Min()
			eachOnce = eachOnce.Remove(p)
		} else {
			// Round-robin within the victim set.
			pool := victims.Intersect(enabled)
			if pool.IsEmpty() {
				pool = enabled
			}
			p = pool.Min()
			for i := 1; i <= sim.MaxProcs; i++ {
				q := sim.PID((int(rr) + i) % sim.MaxProcs)
				if pool.Has(q) {
					p = q
					break
				}
			}
			rr = p
		}
		grants = append(grants, p)
		lastStep[p] = t
		return p
	})

	stuck := false
	stop := func(_ sim.Time) bool {
		sinceSwitch++
		for _, j := range victims.Members() {
			l := out.At(j).Inspect()
			if l.IsEmpty() || l == lastL {
				continue
			}
			// The candidate moved: record the transition, let everyone
			// take one step, then run only Π−L.
			if !lastL.IsEmpty() {
				res.Switches++
			}
			res.History = append(res.History, l)
			lastL = l
			sinceSwitch = 0
			eachOnce = sim.FullSet(n)
			victims = l.Complement(n)
			break
		}
		if res.Switches >= cfg.TargetSwitches {
			return true
		}
		if sinceSwitch > phaseBudget && !lastL.IsEmpty() {
			stuck = true
			return true
		}
		return false
	}

	rep, err := sim.Run(sim.Config{
		Pattern:  pattern,
		Schedule: schedule,
		Budget:   budget,
		StopWhen: stop,
	}, bodies)
	if err != nil && !rep.Stopped && !rep.BudgetExhausted {
		panic(fmt.Sprintf("core: adversary run failed unexpectedly: %v", err))
	}
	res.Steps = rep.Steps
	if !stuck {
		return res
	}

	// The candidate is stuck on lastL while only Π−lastL runs: complete the
	// run by crashing lastL right after its members' last steps and replay
	// the very same grant sequence — determinism makes the two runs
	// indistinguishable to the survivors.
	res.Stuck = true
	var crashAt sim.Time
	for _, q := range lastL.Members() {
		if lastStep[q] >= crashAt {
			crashAt = lastStep[q] + 1
		}
	}
	if crashAt == 0 {
		crashAt = 1
	}
	crashes := make(map[sim.PID]sim.Time, lastL.Len())
	for _, q := range lastL.Members() {
		crashes[q] = crashAt
	}
	completion := sim.CrashPattern(n, crashes)

	bodies2, out2 := cfg.Extractor.Build(n, f, upsilon)
	idx := 0
	replay := sim.Func(func(_ sim.Time, enabled sim.Set) sim.PID {
		p := grants[idx]
		idx++
		if !enabled.Has(p) {
			panic(fmt.Sprintf("core: replay diverged: %v not enabled", p))
		}
		return p
	})
	rep2, err2 := sim.Run(sim.Config{
		Pattern:  completion,
		Schedule: replay,
		Budget:   int64(len(grants)),
	}, bodies2)
	_ = err2 // replay runs exactly the prefix; exhaustion is expected
	confirmed := rep2.Steps == int64(len(grants))
	for _, j := range completion.Correct().Members() {
		if out2.At(j).Inspect() != lastL {
			confirmed = false
		}
	}
	res.Violation = &Violation{
		Pattern:   completion,
		StableL:   lastL,
		Err:       fd.OmegaFLegal(completion, f)(any(lastL)),
		Confirmed: confirmed,
	}
	return res
}
