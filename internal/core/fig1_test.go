package core

import (
	"fmt"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// runFig1 executes one Figure 1 run and verifies the n−1-set-agreement
// properties.
func runFig1(t *testing.T, pattern sim.Pattern, upsilon sim.Oracle, impl converge.Impl, sched sim.Schedule, budget int64) *sim.Report {
	t.Helper()
	n := pattern.N()
	g := NewFig1(n, upsilon, impl)
	bodies := make([]sim.Body, n)
	proposals := make([]sim.Value, n)
	for i := range bodies {
		proposals[i] = sim.Value(100 + i) // all distinct: the hard case
		bodies[i] = g.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sched, Budget: budget}, bodies)
	if err != nil {
		t.Fatalf("fig1 run failed: %v", err)
	}
	if err := check.SetAgreement(rep, pattern, g.K(), proposals); err != nil {
		t.Fatalf("fig1 violated set agreement: %v", err)
	}
	return rep
}

// patternsFor enumerates representative failure patterns for n processes:
// failure-free, a single early crash, a late crash, and the wait-free
// extreme where all but one process crash at staggered times.
func patternsFor(n int) map[string]sim.Pattern {
	single := map[sim.PID]sim.Time{sim.PID(n / 2): 11}
	late := map[sim.PID]sim.Time{0: 900}
	waitFree := map[sim.PID]sim.Time{}
	for i := 1; i < n; i++ {
		waitFree[sim.PID(i)] = sim.Time(7 * i)
	}
	return map[string]sim.Pattern{
		"failfree":  sim.FailFree(n),
		"one-crash": sim.CrashPattern(n, single),
		"late":      sim.CrashPattern(n, late),
		"wait-free": sim.CrashPattern(n, waitFree),
	}
}

func TestFig1Sweep(t *testing.T) {
	for n := 2; n <= 7; n++ {
		for pname, pattern := range patternsFor(n) {
			for _, ts := range []sim.Time{0, 150, 1500} {
				name := fmt.Sprintf("n%d/%s/ts%d", n, pname, ts)
				t.Run(name, func(t *testing.T) {
					for seed := int64(0); seed < 4; seed++ {
						h := Upsilon(n).History(pattern, ts, seed)
						runFig1(t, pattern, h, converge.UseAtomic, sim.NewRandom(seed+99), 1<<21)
					}
				})
			}
		}
	}
}

func TestFig1RoundRobin(t *testing.T) {
	// Lockstep round-robin blocks the lucky early converge commits and
	// forces the gladiator machinery to do the work.
	for n := 3; n <= 6; n++ {
		pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{sim.PID(n - 1): 61})
		h := Upsilon(n).History(pattern, 300, 5)
		rep := runFig1(t, pattern, h, converge.UseAtomic, sim.RoundRobin(), 1<<21)
		if rep.Steps < 50 {
			t.Errorf("n=%d suspiciously fast (%d steps) for lockstep", n, rep.Steps)
		}
	}
}

func TestFig1AllStableChoices(t *testing.T) {
	// Exhaustively run every legal stable Υ output for a 3-process system
	// with p1 faulty: {p1},{p2},{p3},{p1,p2},{p1,p3},Π (all but {p2,p3}).
	n := 3
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{0: 31})
	spec := Upsilon(n)
	for mask := sim.Set(1); mask < sim.Set(1<<n); mask++ {
		if spec.LegalStable(pattern, mask) != nil {
			continue
		}
		t.Run(mask.String(), func(t *testing.T) {
			h := spec.HistoryWithStable(pattern, 90, 1, mask)
			runFig1(t, pattern, h, converge.UseAtomic, sim.RoundRobin(), 1<<21)
			runFig1(t, pattern, h, converge.UseAtomic, sim.NewRandom(17), 1<<21)
		})
	}
}

func TestFig1GladiatorOnlyPath(t *testing.T) {
	// Υ stabilizes on Π with one faulty process: there are no citizens, so
	// termination must come from the gladiators' (n−1)-converge shedding a
	// value once the faulty gladiator is gone — Theorem 2's case (1).
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{2: 45})
	h := Upsilon(n).HistoryWithStable(pattern, 0, 1, sim.FullSet(n))
	rep := runFig1(t, pattern, h, converge.UseAtomic, sim.RoundRobin(), 1<<21)
	if len(rep.DecidedValues()) > n-1 {
		t.Fatalf("agreement: %v", rep.DecidedValues())
	}
}

func TestFig1CitizenOnlyPath(t *testing.T) {
	// Υ stabilizes on a set of faulty processes only: every correct process
	// is a citizen — Theorem 2's case (2). Decisions flow through D[r].
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{0: 21, 1: 33})
	h := Upsilon(n).HistoryWithStable(pattern, 0, 1, sim.SetOf(0, 1))
	runFig1(t, pattern, h, converge.UseAtomic, sim.RoundRobin(), 1<<21)
}

func TestFig1RegistersOnly(t *testing.T) {
	// End-to-end over the Afek snapshot: the protocol genuinely runs on
	// registers alone (at quadratic step cost).
	n := 3
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{1: 100})
	h := Upsilon(n).History(pattern, 120, 3)
	rep := runFig1(t, pattern, h, converge.UseAfek, sim.NewRandom(4), 1<<22)
	t.Logf("registers-only fig1: %d steps", rep.Steps)
}

func TestFig1Determinism(t *testing.T) {
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{3: 55})
	mk := func() *sim.Report {
		h := Upsilon(n).History(pattern, 200, 8)
		return runFig1(t, pattern, h, converge.UseAtomic, sim.NewRandom(8), 1<<21)
	}
	a, b := mk(), mk()
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
	for p, v := range a.Decided {
		if b.Decided[p] != v {
			t.Fatalf("decisions differ at %v: %v vs %v", p, v, b.Decided[p])
		}
	}
}

func TestFig1NonParticipant(t *testing.T) {
	// The remark after Theorem 2: if some process never proposes, the
	// remaining n−1 values make round 1's (n−1)-converge commit, so every
	// participant decides in round 1 regardless of Υ.
	n := 4
	pattern := sim.FailFree(n)
	// An Υ history that never stabilizes within the run would be illegal,
	// but the remark needs no Υ help at all: use pure noise (stabilization
	// beyond the horizon) to show termination does not rely on it.
	h := Upsilon(n).History(pattern, 1<<30, 2)
	g := NewFig1(n, h, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	proposals := []sim.Value{100, 101, 102, 0}
	for i := 0; i < n-1; i++ {
		bodies[i] = g.Body(proposals[i])
	}
	bodies[n-1] = func(p *sim.Proc) (sim.Value, bool) {
		return 0, false // never participates
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 20}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if _, ok := rep.Decided[sim.PID(i)]; !ok {
			t.Fatalf("participant %d did not decide", i)
		}
	}
	if len(rep.DecidedValues()) > n-1 {
		t.Fatalf("agreement violated: %v", rep.DecidedValues())
	}
}

func TestFig1SpecViolatingUpsilonLivelocks(t *testing.T) {
	// Ablation: feed Figure 1 a "dummy" detector stuck on U = correct(F) —
	// exactly what the Υ spec forbids. Under lockstep round-robin with all
	// n values distinct, no converge instance may commit and no citizen
	// exists, so the protocol livelocks: Υ's U ≠ correct clause is load-
	// bearing. (This is the executable face of the impossibility: without
	// non-trivial failure information the task is unsolvable.)
	n := 4
	pattern := sim.FailFree(n)
	dummy := fd.Constant(sim.FullSet(n)) // = correct(F): illegal for Υ
	g := NewFig1(n, dummy, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = g.Body(sim.Value(100 + i))
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 60_000}, bodies)
	if err == nil {
		t.Fatalf("run decided %v despite spec-violating Υ under lockstep", rep.DecidedValues())
	}
	if !rep.BudgetExhausted {
		t.Fatalf("expected budget exhaustion, got: %v", err)
	}
	if len(rep.Decided) != 0 {
		t.Fatalf("no process should decide, got %v", rep.Decided)
	}
}

func TestFig1ValidUpsilonSameScheduleDecides(t *testing.T) {
	// Control for the livelock ablation: the identical schedule and inputs
	// with a *legal* Υ history decide promptly.
	n := 4
	pattern := sim.FailFree(n)
	h := Upsilon(n).HistoryWithStable(pattern, 0, 1, sim.SetOf(1, 2))
	rep := runFig1(t, pattern, h, converge.UseAtomic, sim.RoundRobin(), 60_000)
	if rep.BudgetExhausted {
		t.Fatal("legal Υ should decide within the ablation budget")
	}
}

func TestFig1TwoProcesses(t *testing.T) {
	// n+1 = 2: set agreement coincides with consensus and Υ with Ω.
	pattern := sim.CrashPattern(2, map[sim.PID]sim.Time{1: 19})
	for seed := int64(0); seed < 10; seed++ {
		h := Upsilon(2).History(pattern, 60, seed)
		rep := runFig1(t, pattern, h, converge.UseAtomic, sim.NewRandom(seed), 1<<20)
		if len(rep.DecidedValues()) != 1 {
			t.Fatalf("2-process agreement must be consensus, got %v", rep.DecidedValues())
		}
	}
}

func TestFig1DecisionRegisterConsistent(t *testing.T) {
	n := 5
	pattern := sim.FailFree(n)
	h := Upsilon(n).History(pattern, 100, 6)
	g := NewFig1(n, h, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	proposals := make([]sim.Value, n)
	for i := range bodies {
		proposals[i] = sim.Value(100 + i)
		bodies[i] = g.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.NewRandom(11), Budget: 1 << 20}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Decision()
	if !d.OK {
		t.Fatal("decision register empty after termination")
	}
	found := false
	for _, v := range rep.DecidedValues() {
		if v == d.V {
			found = true
		}
	}
	if !found {
		t.Fatalf("decision register %v not among decided %v", d.V, rep.DecidedValues())
	}
}

func TestFig1MinimumSystemSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	NewFig1(1, fd.Constant(sim.SetOf(0)), converge.UseAtomic)
}
