package core

import (
	"fmt"

	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// UpsilonSpec describes the Υ^f family. For every failure pattern in E_f
// (at most f crashes), a history is legal iff eventually:
//
//  1. the same set U, with |U| ≥ n+1−f, is permanently output at all correct
//     processes, and
//  2. U is not the set of correct processes of the run.
//
// Υ itself is Υ^n (the wait-free case, where the only size constraint is
// U ≠ ∅).
type UpsilonSpec struct {
	// N is the number of processes (the paper's n+1).
	N int
	// F is the resilience parameter; histories output sets of size at least
	// N−F. F = N−1 gives Υ (sets of size ≥ 1).
	F int
}

// Upsilon returns the Υ specification for n processes (f = n−1 in our
// 0-based size convention: sets of size ≥ 1).
func Upsilon(n int) UpsilonSpec { return UpsilonSpec{N: n, F: n - 1} }

// UpsilonF returns the Υ^f specification for n processes and resilience f.
func UpsilonF(n, f int) UpsilonSpec {
	if f < 1 || f >= n {
		panic(fmt.Sprintf("core: UpsilonF f=%d out of range for n=%d", f, n))
	}
	return UpsilonSpec{N: n, F: f}
}

// MinSize returns the minimum legal output-set size, n+1−f in paper terms.
func (s UpsilonSpec) MinSize() int { return s.N - s.F }

// LegalStable reports whether U is a legal eventual output for pattern f:
// non-empty, of size ≥ MinSize, and different from correct(F).
func (s UpsilonSpec) LegalStable(f sim.Pattern, u sim.Set) error {
	if u.IsEmpty() {
		return fmt.Errorf("Υ^f output must be non-empty")
	}
	if u.Len() < s.MinSize() {
		return fmt.Errorf("Υ^f output %v has size %d < n+1−f = %d", u, u.Len(), s.MinSize())
	}
	if !u.SubsetOf(sim.FullSet(s.N)) {
		return fmt.Errorf("Υ^f output %v not a subset of Π", u)
	}
	if u == f.Correct() {
		return fmt.Errorf("Υ^f output %v equals the correct set", u)
	}
	return nil
}

// Legal returns the legality predicate for use with fd.CheckStable.
func (s UpsilonSpec) Legal(f sim.Pattern) func(any) error {
	return func(v any) error {
		u, ok := v.(sim.Set)
		if !ok {
			return fmt.Errorf("Υ^f output has type %T, want sim.Set", v)
		}
		return s.LegalStable(f, u)
	}
}

// History returns a legal Υ^f history for pattern f: seeded noise (arbitrary
// sets of legal size, possibly different at different processes) strictly
// before ts, and a fixed legal stable set from ts on. The stable set is
// chosen from the seed among all legal candidates, so experiment sweeps
// cover the spec's behaviour space, including stable sets that contain no
// correct process at all and stable sets that contain all of them.
func (s UpsilonSpec) History(f sim.Pattern, ts sim.Time, seed int64) sim.Oracle {
	stable := s.StableChoice(f, seed)
	return s.HistoryWithStable(f, ts, seed, stable)
}

// HistoryWithStable is History with an explicitly chosen stable set, which
// must be legal for f.
func (s UpsilonSpec) HistoryWithStable(f sim.Pattern, ts sim.Time, seed int64, stable sim.Set) sim.Oracle {
	if err := s.LegalStable(f, stable); err != nil {
		panic(fmt.Sprintf("core: illegal Υ^f stable set: %v", err))
	}
	n := s.N
	minSize := s.MinSize()
	return &fd.Stabilizing[sim.Set]{
		TS:     ts,
		Stable: stable,
		Noise: func(p sim.PID, t sim.Time) sim.Set {
			size := minSize + int(fd.Mix(seed+2, p, t)%uint64(n-minSize+1))
			return fd.NoiseSetOfSize(seed, n, size, p, t)
		},
	}
}

// HistoryWorstCase returns a legal Υ^f history whose pre-stabilization
// output is the single most unhelpful value: correct(F) itself, at every
// process. The specification only constrains the *eventual* output, so this
// is a legal history — and under lockstep schedules it pins Figure 1/2 in
// their gladiator loops until ts, making decision latency track the
// detector's stabilization time exactly (used by the E10 ablation).
func (s UpsilonSpec) HistoryWorstCase(f sim.Pattern, ts sim.Time, seed int64) sim.Oracle {
	noise := f.Correct()
	if noise.Len() < s.MinSize() {
		// Pad with faulty processes to respect the range constraint; the
		// padded set is still maximally unhelpful (all correct inside).
		for _, p := range f.Faulty().Members() {
			if noise.Len() >= s.MinSize() {
				break
			}
			noise = noise.Add(p)
		}
	}
	return &fd.Stabilizing[sim.Set]{
		TS:     ts,
		Stable: s.StableChoice(f, seed),
		Noise: func(sim.PID, sim.Time) sim.Set {
			return noise
		},
	}
}

// StableChoice deterministically picks a legal stable set for pattern f from
// the seed. Legal candidates are plentiful — of the C(n, ≥minSize) subsets,
// only correct(F) itself is excluded — reflecting how little information Υ^f
// carries.
func (s UpsilonSpec) StableChoice(f sim.Pattern, seed int64) sim.Set {
	n := s.N
	for i := 0; ; i++ {
		size := s.MinSize() + int(fd.Mix(seed, sim.PID(i%n), sim.Time(i))%uint64(n-s.MinSize()+1))
		u := fd.NoiseSetOfSize(seed+int64(i)*7919, n, size, 0, sim.Time(i))
		if s.LegalStable(f, u) == nil {
			return u
		}
	}
}

// ComplementOfOmegaF builds the Section 4 / Section 5.3 reduction Ω^f → Υ^f
// as a history transformer: every process outputs the complement of its Ω^f
// module's output. The eventual Ω^f set has size f and contains a correct
// process, so its complement has size n+1−f and is missing a correct
// process, hence cannot be the correct set — a legal Υ^f output. No shared
// memory is needed; the reduction is local.
func ComplementOfOmegaF(omegaF sim.Oracle, n int) sim.Oracle {
	return fd.FuncOracle(func(p sim.PID, t sim.Time) any {
		//lint:fdlint seamcheck -- history transformer: defines the derived Υ^f history pointwise from Ω^f; machines observe the derived history through the seam
		out := omegaF.Value(p, t)
		s, ok := out.(sim.Set)
		if !ok {
			panic(fmt.Sprintf("core: Ω^f output has type %T, want sim.Set", out))
		}
		c := s.Complement(n)
		if c.IsEmpty() {
			// Ω^n output Π (only possible pre-stabilization for size < n
			// detectors; impossible for size-n output): fall back to a
			// fixed non-empty set, legal during the arbitrary period.
			return sim.SetOf(0)
		}
		return c
	})
}
