package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// The equivalence suite: the goroutine runner (sim.Run/RunTasks) and the
// machine runner (sim.RunMachines/RunTaskMachines) must produce identical
// Reports — every field, including DecidedAt, StepsBy and the Crashed
// bookkeeping of poisoned runs — for every protocol ported to StepMachine,
// across schedules and failure patterns.

// schedFactory builds a fresh schedule per run; schedules are stateful, so
// the two runners must never share one instance.
type schedFactory struct {
	name string
	mk   func(seed int64) sim.Schedule
}

func schedules() []schedFactory {
	return []schedFactory{
		{"roundrobin", func(int64) sim.Schedule { return sim.RoundRobin() }},
		{"random", sim.NewRandom},
		{"evsync", func(seed int64) sim.Schedule { return sim.EventuallySynchronous(200, 8, seed) }},
	}
}

func requireSameReport(t *testing.T, goroutine, machine *sim.Report, gErr, mErr error) {
	t.Helper()
	if (gErr == nil) != (mErr == nil) {
		t.Fatalf("error mismatch: goroutine=%v machine=%v", gErr, mErr)
	}
	if gErr != nil && !errors.Is(mErr, sim.ErrBudgetExhausted) != !errors.Is(gErr, sim.ErrBudgetExhausted) {
		t.Fatalf("error kind mismatch: goroutine=%v machine=%v", gErr, mErr)
	}
	if !reflect.DeepEqual(goroutine, machine) {
		t.Fatalf("report mismatch:\n goroutine: %+v\n machine:   %+v", goroutine, machine)
	}
}

func proposalsFor(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i)
	}
	return out
}

func TestMachineEquivalenceFig1(t *testing.T) {
	patterns := map[string]func(n int) sim.Pattern{
		"failfree": sim.FailFree,
		"onecrash": func(n int) sim.Pattern {
			return sim.CrashPattern(n, map[sim.PID]sim.Time{1: 30})
		},
		"waitfree": func(n int) sim.Pattern {
			crashes := make(map[sim.PID]sim.Time, n-1)
			for i := 1; i < n; i++ {
				crashes[sim.PID(i)] = sim.Time(9 * i)
			}
			return sim.CrashPattern(n, crashes)
		},
	}
	for _, n := range []int{3, 5, 7} {
		for pname, mkPattern := range patterns {
			for _, sf := range schedules() {
				for _, ts := range []sim.Time{0, 150} {
					for seed := int64(0); seed < 3; seed++ {
						name := fmt.Sprintf("n%d/%s/%s/ts%d/seed%d", n, pname, sf.name, ts, seed)
						t.Run(name, func(t *testing.T) {
							pattern := mkPattern(n)
							run := func(machineRunner bool) (*sim.Report, error) {
								h := Upsilon(n).History(pattern, ts, seed)
								g := NewFig1(n, h, converge.UseAtomic)
								cfg := sim.Config{Pattern: pattern, Schedule: sf.mk(seed), Budget: 1 << 22}
								if machineRunner {
									machines := make([]sim.StepMachine, n)
									for i := range machines {
										machines[i] = g.Machine(proposalsFor(n)[i])
									}
									return sim.RunMachines(cfg, machines)
								}
								bodies := make([]sim.Body, n)
								for i := range bodies {
									bodies[i] = g.Body(proposalsFor(n)[i])
								}
								return sim.Run(cfg, bodies)
							}
							gRep, gErr := run(false)
							mRep, mErr := run(true)
							requireSameReport(t, gRep, mRep, gErr, mErr)
						})
					}
				}
			}
		}
	}
}

func TestMachineEquivalenceFig2(t *testing.T) {
	for _, tc := range []struct{ n, f, crashes int }{{4, 1, 0}, {4, 2, 2}, {6, 2, 1}, {6, 5, 3}} {
		for _, sf := range schedules() {
			for seed := int64(0); seed < 3; seed++ {
				name := fmt.Sprintf("n%d/f%d/crash%d/%s/seed%d", tc.n, tc.f, tc.crashes, sf.name, seed)
				t.Run(name, func(t *testing.T) {
					crashes := make(map[sim.PID]sim.Time, tc.crashes)
					for i := 0; i < tc.crashes; i++ {
						crashes[sim.PID(i)] = sim.Time(13 * (i + 1))
					}
					pattern := sim.CrashPattern(tc.n, crashes)
					run := func(machineRunner bool) (*sim.Report, error) {
						h := UpsilonF(tc.n, tc.f).History(pattern, 150, seed)
						g := NewFig2(tc.n, tc.f, h, converge.UseAtomic)
						cfg := sim.Config{Pattern: pattern, Schedule: sf.mk(seed), Budget: 1 << 22}
						if machineRunner {
							machines := make([]sim.StepMachine, tc.n)
							for i := range machines {
								machines[i] = g.Machine(proposalsFor(tc.n)[i])
							}
							return sim.RunMachines(cfg, machines)
						}
						bodies := make([]sim.Body, tc.n)
						for i := range bodies {
							bodies[i] = g.Body(proposalsFor(tc.n)[i])
						}
						return sim.Run(cfg, bodies)
					}
					gRep, gErr := run(false)
					mRep, mErr := run(true)
					requireSameReport(t, gRep, mRep, gErr, mErr)
				})
			}
		}
	}
}

// TestMachineEquivalenceExtraction compares the Figure 3 reduction on both
// runners, including the emulated-output evolution (sampled after every step
// through StopWhen, exactly as ExtractUpsilon wires it).
func TestMachineEquivalenceExtraction(t *testing.T) {
	const n = 5
	type source struct {
		name string
		mk   func(pattern sim.Pattern, seed int64) (sim.Oracle, Phi)
	}
	sources := []source{
		{"omega", func(p sim.Pattern, seed int64) (sim.Oracle, Phi) {
			return fd.NewOmega(p, 150, seed), PhiOmega(n)
		}},
		{"omegaN", func(p sim.Pattern, seed int64) (sim.Oracle, Phi) {
			return fd.NewOmegaF(p, n-1, 150, seed), PhiOmegaF(n)
		}},
		{"evP", func(p sim.Pattern, seed int64) (sim.Oracle, Phi) {
			return fd.NewStableEvPerfect(p, 150, seed), PhiStableEvPerfect(n)
		}},
	}
	patterns := map[string]sim.Pattern{
		"failfree": sim.FailFree(n),
		"onecrash": sim.CrashPattern(n, map[sim.PID]sim.Time{2: 40}),
	}
	for _, src := range sources {
		for pname, pattern := range patterns {
			for _, sf := range schedules() {
				for seed := int64(0); seed < 2; seed++ {
					name := fmt.Sprintf("%s/%s/%s/seed%d", src.name, pname, sf.name, seed)
					t.Run(name, func(t *testing.T) {
						run := func(machineRunner bool) (*sim.Report, [][]sim.Set, error) {
							oracle, phi := src.mk(pattern, seed)
							ex := NewExtraction(n, oracle, phi)
							var outputs [][]sim.Set
							cfg := sim.Config{
								Pattern:  pattern,
								Schedule: sf.mk(seed),
								Budget:   6000,
								StopWhen: func(sim.Time) bool {
									outputs = append(outputs, append([]sim.Set(nil), ex.Output()...))
									return false
								},
							}
							if machineRunner {
								machines := make([]sim.StepMachine, n)
								for i := range machines {
									machines[i] = ex.Machine()
								}
								rep, err := sim.RunMachines(cfg, machines)
								return rep, outputs, err
							}
							bodies := make([]sim.Body, n)
							for i := range bodies {
								bodies[i] = ex.Body()
							}
							rep, err := sim.Run(cfg, bodies)
							return rep, outputs, err
						}
						gRep, gOut, gErr := run(false)
						mRep, mOut, mErr := run(true)
						requireSameReport(t, gRep, mRep, gErr, mErr)
						if !reflect.DeepEqual(gOut, mOut) {
							t.Fatalf("emulated output evolution differs (%d vs %d samples)", len(gOut), len(mOut))
						}
					})
				}
			}
		}
	}
}

// TestMachineEquivalenceComposed compares the two-task composition (Figure 3
// reduction + Figure 1 protocol) on RunTasks vs RunTaskMachines, covering
// the task-rotation logic.
func TestMachineEquivalenceComposed(t *testing.T) {
	const n = 5
	patterns := map[string]sim.Pattern{
		"failfree": sim.FailFree(n),
		"onecrash": sim.CrashPattern(n, map[sim.PID]sim.Time{2: 40}),
	}
	for pname, pattern := range patterns {
		for _, sf := range schedules() {
			for seed := int64(0); seed < 2; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", pname, sf.name, seed)
				t.Run(name, func(t *testing.T) {
					run := func(machineRunner bool) (*sim.Report, error) {
						oracle := fd.NewOmega(pattern, 120, seed)
						c := NewComposed(n, oracle, PhiOmega(n), converge.UseAtomic)
						cfg := sim.Config{Pattern: pattern, Schedule: sf.mk(seed), Budget: 1 << 22}
						if machineRunner {
							return sim.RunTaskMachines(cfg, c.MachineTaskSets(proposalsFor(n)))
						}
						return sim.RunTasks(cfg, c.TaskSets(proposalsFor(n)))
					}
					gRep, gErr := run(false)
					mRep, mErr := run(true)
					requireSameReport(t, gRep, mRep, gErr, mErr)
				})
			}
		}
	}
}

// TestMachineEquivalenceTimed compares the oracle-free composition
// (heartbeat Υ implementation + Figure 1) under the eventually synchronous
// schedule on both task runners.
func TestMachineEquivalenceTimed(t *testing.T) {
	const n = 4
	patterns := map[string]sim.Pattern{
		"failfree": sim.FailFree(n),
		"onecrash": sim.CrashPattern(n, map[sim.PID]sim.Time{1: 300}),
	}
	for pname, pattern := range patterns {
		for seed := int64(0); seed < 3; seed++ {
			name := fmt.Sprintf("%s/seed%d", pname, seed)
			t.Run(name, func(t *testing.T) {
				run := func(machineRunner bool) (*sim.Report, error) {
					c := NewTimedComposed(n, 4, converge.UseAtomic)
					cfg := sim.Config{
						Pattern:  pattern,
						Schedule: sim.EventuallySynchronous(800, 8, seed),
						Budget:   1 << 22,
					}
					if machineRunner {
						return sim.RunTaskMachines(cfg, c.MachineTaskSets(proposalsFor(n)))
					}
					return sim.RunTasks(cfg, c.TaskSets(proposalsFor(n)))
				}
				gRep, gErr := run(false)
				mRep, mErr := run(true)
				requireSameReport(t, gRep, mRep, gErr, mErr)
			})
		}
	}
}
