package core

import (
	"fmt"
	"testing"

	"weakestfd/internal/sim"
)

func TestAdversaryTheorem1(t *testing.T) {
	// Theorem 1 (f = n, i.e. size-(n) sets among n+1 processes): the
	// adversary falsifies every candidate Ωn-from-Υ extractor, either by
	// forcing unbounded output switches or by completing a run where the
	// stuck output violates Ωn.
	for _, n := range []int{3, 4, 6} {
		f := n - 1
		for _, ext := range AllExtractors() {
			t.Run(fmt.Sprintf("n%d/%s", n, ext.Name), func(t *testing.T) {
				res := RunAdversary(AdversaryConfig{
					N: n, F: f,
					Extractor:      ext,
					TargetSwitches: 25,
					Budget:         1 << 21,
				})
				if !res.Falsified(25) {
					t.Fatalf("adversary failed to falsify %s: switches=%d stuck=%v violation=%+v",
						ext.Name, res.Switches, res.Stuck, res.Violation)
				}
				t.Logf("%s: switches=%d stuck=%v steps=%d", ext.Name, res.Switches, res.Stuck, res.Steps)
			})
		}
	}
}

func TestAdversaryTheorem5(t *testing.T) {
	// Theorem 5 (2 ≤ f ≤ n−1): same story for Ω^f-from-Υ^f.
	n := 6
	for f := 2; f <= n-2; f++ {
		for _, ext := range AllExtractors() {
			t.Run(fmt.Sprintf("f%d/%s", f, ext.Name), func(t *testing.T) {
				res := RunAdversary(AdversaryConfig{
					N: n, F: f,
					Extractor:      ext,
					TargetSwitches: 15,
					Budget:         1 << 21,
				})
				if !res.Falsified(15) {
					t.Fatalf("adversary failed to falsify %s: switches=%d stuck=%v",
						ext.Name, res.Switches, res.Stuck)
				}
			})
		}
	}
}

func TestAdversaryComplementGetsViolationWitness(t *testing.T) {
	// The complement extractor sticks with a constant guess against the
	// constant-U history, so the adversary must produce the completed-run
	// witness, with the replay confirming the stuck output at every
	// survivor.
	res := RunAdversary(AdversaryConfig{
		N: 4, F: 3,
		Extractor:      ComplementExtractor(),
		TargetSwitches: 5,
		PhaseBudget:    2_000,
		Budget:         1 << 20,
	})
	if !res.Stuck {
		t.Fatalf("complement extractor should be stuck, got %d switches", res.Switches)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("missing violation witness")
	}
	if v.Err == nil {
		t.Fatalf("stuck output %v should violate Ω^f under %v", v.StableL, v.Pattern)
	}
	if !v.Confirmed {
		t.Fatal("deterministic replay failed to confirm the witness")
	}
	if v.Pattern.Faulty() != v.StableL {
		t.Fatalf("completion should crash exactly the stuck set: faulty=%v stuck=%v",
			v.Pattern.Faulty(), v.StableL)
	}
	if got := v.Pattern.NumFaulty(); got != 3 {
		t.Fatalf("completion crashes %d processes, want f=3 (stays in E_f)", got)
	}
}

func TestAdversaryStalenessForcedToSwitchForever(t *testing.T) {
	// The staleness extractor keeps chasing the adversary: switches grow
	// with the target, demonstrating the non-stabilizing run of the proofs.
	prev := 0
	for _, target := range []int{5, 20, 60} {
		res := RunAdversary(AdversaryConfig{
			N: 5, F: 4,
			Extractor:      StalenessExtractor(),
			TargetSwitches: target,
			Budget:         1 << 22,
		})
		if res.Stuck {
			t.Fatalf("staleness extractor stuck at %d switches", res.Switches)
		}
		if res.Switches < target {
			t.Fatalf("only %d switches, wanted %d", res.Switches, target)
		}
		if res.Switches < prev {
			t.Fatalf("switches not monotone in target")
		}
		prev = res.Switches
	}
}

func TestAdversaryHistoryAlternates(t *testing.T) {
	// Consecutive forced candidates must differ — the proofs' L_{i+1} ≠ L_i.
	res := RunAdversary(AdversaryConfig{
		N: 4, F: 3,
		Extractor:      StalenessExtractor(),
		TargetSwitches: 10,
		Budget:         1 << 21,
	})
	for i := 1; i < len(res.History); i++ {
		if res.History[i] == res.History[i-1] {
			t.Fatalf("history repeats at %d: %v", i, res.History[i])
		}
	}
}

func TestAdversaryConstantUpsilonIsLegalForCompletion(t *testing.T) {
	// Sanity of the construction: the constant U = {p1..pn} used by the
	// adversary must be a legal Υ^f output both for the failure-free run
	// and for the violation completion (the proofs' "it is thus legitimate
	// for Υ^f to output U").
	res := RunAdversary(AdversaryConfig{
		N: 5, F: 3,
		Extractor:      ComplementExtractor(),
		TargetSwitches: 3,
		PhaseBudget:    2_000,
		Budget:         1 << 20,
	})
	spec := UpsilonF(5, 3)
	if err := spec.LegalStable(sim.FailFree(5), res.U); err != nil {
		t.Fatalf("U illegal for the driven run: %v", err)
	}
	if res.Violation != nil {
		if err := spec.LegalStable(res.Violation.Pattern, res.U); err != nil {
			t.Fatalf("U illegal for the completion: %v", err)
		}
	}
}

func TestAdversaryParamValidation(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{2, 1}, {4, 1}, {4, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RunAdversary(n=%d, f=%d) should panic", tc.n, tc.f)
				}
			}()
			RunAdversary(AdversaryConfig{N: tc.n, F: tc.f, Extractor: ComplementExtractor()})
		}()
	}
}

func TestPadToSize(t *testing.T) {
	if got := padToSize(sim.SetOf(5), 3, 6); got != sim.SetOf(0, 1, 5) {
		t.Errorf("pad = %v", got)
	}
	if got := padToSize(sim.SetOf(0, 1, 2, 3), 2, 6); got != sim.SetOf(0, 1) {
		t.Errorf("trim = %v", got)
	}
	if got := padToSize(sim.SetOf(1, 2), 2, 6); got != sim.SetOf(1, 2) {
		t.Errorf("identity = %v", got)
	}
}

func TestFreshest(t *testing.T) {
	beats := []int64{5, 9, 9, 1}
	if got := freshest(beats, 2); got != sim.SetOf(1, 2) {
		t.Errorf("freshest = %v", got)
	}
	if got := freshest(beats, 3); got != sim.SetOf(0, 1, 2) {
		t.Errorf("freshest = %v", got)
	}
}
