package core

import (
	"testing"
	"testing/quick"

	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

func TestUpsilonSpecSizes(t *testing.T) {
	if got := Upsilon(4).MinSize(); got != 1 {
		t.Errorf("Υ MinSize = %d, want 1", got)
	}
	if got := UpsilonF(6, 2).MinSize(); got != 4 {
		t.Errorf("Υ² MinSize = %d, want n+1−f = 4", got)
	}
}

func TestUpsilonLegalStable(t *testing.T) {
	// The paper's 3-process example: p1 fails, p2 and p3 correct. Every
	// non-empty subset except {p2,p3} is legal.
	pattern := sim.CrashPattern(3, map[sim.PID]sim.Time{0: 10})
	spec := Upsilon(3)
	legal := []sim.Set{
		sim.SetOf(0), sim.SetOf(1), sim.SetOf(2),
		sim.SetOf(0, 2), sim.SetOf(0, 1), sim.SetOf(0, 1, 2),
	}
	for _, u := range legal {
		if err := spec.LegalStable(pattern, u); err != nil {
			t.Errorf("%v should be legal: %v", u, err)
		}
	}
	if err := spec.LegalStable(pattern, sim.SetOf(1, 2)); err == nil {
		t.Errorf("{p2,p3} is the correct set and must be illegal")
	}
	if err := spec.LegalStable(pattern, sim.EmptySet); err == nil {
		t.Errorf("∅ must be illegal")
	}
}

func TestUpsilonFLegalStableSize(t *testing.T) {
	pattern := sim.FailFree(5)
	spec := UpsilonF(5, 2)
	if err := spec.LegalStable(pattern, sim.SetOf(0, 1)); err == nil {
		t.Error("size-2 set must be illegal for Υ² with n=5 (min size 3)")
	}
	if err := spec.LegalStable(pattern, sim.SetOf(0, 1, 2)); err != nil {
		t.Errorf("size-3 set should be legal: %v", err)
	}
	if err := spec.LegalStable(pattern, sim.FullSet(5)); err == nil {
		t.Error("Π = correct(F) must be illegal in a failure-free pattern")
	}
}

func TestUpsilonHistoryCompliance(t *testing.T) {
	patterns := map[string]sim.Pattern{
		"failfree":  sim.FailFree(4),
		"one":       sim.CrashPattern(4, map[sim.PID]sim.Time{3: 40}),
		"wait-free": sim.CrashPattern(4, map[sim.PID]sim.Time{0: 1, 1: 7, 2: 13}),
	}
	for name, pattern := range patterns {
		t.Run(name, func(t *testing.T) {
			spec := Upsilon(4)
			for seed := int64(0); seed < 20; seed++ {
				h := spec.History(pattern, 120, seed)
				if _, from, err := fd.CheckStable(h, pattern, 600, spec.Legal(pattern)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				} else if from > 120 {
					t.Errorf("seed %d: stabilized at %d > 120", seed, from)
				}
			}
		})
	}
}

func TestUpsilonFHistoryCompliance(t *testing.T) {
	for n := 3; n <= 6; n++ {
		for f := 1; f < n; f++ {
			spec := UpsilonF(n, f)
			pattern := sim.FailFree(n)
			for seed := int64(0); seed < 5; seed++ {
				h := spec.History(pattern, 50, seed)
				if _, _, err := fd.CheckStable(h, pattern, 300, spec.Legal(pattern)); err != nil {
					t.Fatalf("n=%d f=%d seed=%d: %v", n, f, seed, err)
				}
				// Noise must also respect the range (size ≥ n−f).
				for ts := sim.Time(0); ts < 50; ts++ {
					u := h.Value(0, ts).(sim.Set)
					if u.Len() < spec.MinSize() {
						t.Fatalf("noise set %v below min size %d", u, spec.MinSize())
					}
				}
			}
		}
	}
}

func TestStableChoiceCoversVariety(t *testing.T) {
	// Υ's stable output may be any set except correct(F): across seeds we
	// should see sets that contain no correct process, sets that contain
	// faulty processes, and Π itself.
	pattern := sim.CrashPattern(3, map[sim.PID]sim.Time{0: 5})
	spec := Upsilon(3)
	seen := make(map[sim.Set]bool)
	for seed := int64(0); seed < 200; seed++ {
		seen[spec.StableChoice(pattern, seed)] = true
	}
	if len(seen) < 4 {
		t.Errorf("StableChoice covered only %d distinct sets", len(seen))
	}
	if seen[pattern.Correct()] {
		t.Errorf("StableChoice produced the correct set")
	}
}

func TestHistoryWithStableRejectsIllegal(t *testing.T) {
	pattern := sim.FailFree(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Upsilon(3).HistoryWithStable(pattern, 0, 0, sim.FullSet(3)) // Π = correct
}

func TestUpsilonFParamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UpsilonF(4, 4) // f must be < n
}

func TestComplementOfOmegaFIsLegalUpsilonF(t *testing.T) {
	// Section 5.3: Ω^f → Υ^f by complement. Check spec compliance of the
	// transformed history across patterns and seeds.
	for f := 1; f <= 4; f++ {
		crashes := map[sim.PID]sim.Time{}
		for i := 0; i < f; i++ {
			crashes[sim.PID(i)] = sim.Time(10 * (i + 1))
		}
		pattern := sim.CrashPattern(5, crashes)
		spec := UpsilonF(5, f)
		if f == 4 {
			spec = Upsilon(5) // wait-free case
		}
		for seed := int64(0); seed < 10; seed++ {
			omegaF := fd.NewOmegaF(pattern, f, 80, seed)
			upsilon := ComplementOfOmegaF(omegaF, 5)
			if _, _, err := fd.CheckStable(upsilon, pattern, 400, spec.Legal(pattern)); err != nil {
				t.Fatalf("f=%d seed=%d: %v", f, seed, err)
			}
		}
	}
}

func TestComplementOfOmegaIsLegalUpsilon(t *testing.T) {
	// Section 4: Ω → Υ by complement (2-process equivalence direction,
	// legal at any n).
	for n := 2; n <= 5; n++ {
		pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{sim.PID(n - 1): 25})
		spec := Upsilon(n)
		for seed := int64(0); seed < 10; seed++ {
			omega := fd.NewOmega(pattern, 60, seed)
			upsilon := ComplementOfOmega(omega, n)
			if _, _, err := fd.CheckStable(upsilon, pattern, 300, spec.Legal(pattern)); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestOmegaFromUpsilon2(t *testing.T) {
	// Section 4: with two processes, Υ yields Ω.
	patterns := map[string]sim.Pattern{
		"failfree": sim.FailFree(2),
		"p1-crash": sim.CrashPattern(2, map[sim.PID]sim.Time{0: 30}),
		"p2-crash": sim.CrashPattern(2, map[sim.PID]sim.Time{1: 30}),
	}
	for name, pattern := range patterns {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				upsilon := Upsilon(2).History(pattern, 70, seed)
				omega := OmegaFromUpsilon2(upsilon)
				if _, _, err := fd.CheckStable(omega, pattern, 400, fd.OmegaLegal(pattern)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestHistoryWorstCase(t *testing.T) {
	pattern := sim.CrashPattern(4, map[sim.PID]sim.Time{1: 9})
	spec := Upsilon(4)
	h := spec.HistoryWorstCase(pattern, 100, 3)
	// Pre-stabilization the output is exactly correct(F) — legal because
	// the spec only constrains eventual output.
	if got := h.Value(2, 50).(sim.Set); got != pattern.Correct() {
		t.Errorf("noise = %v, want correct %v", got, pattern.Correct())
	}
	if _, _, err := fd.CheckStable(h, pattern, 400, spec.Legal(pattern)); err != nil {
		t.Fatal(err)
	}
	// Padding kicks in when correct(F) is below the minimum size.
	spec2 := UpsilonF(4, 1) // min size 3
	pattern2 := sim.CrashPattern(4, map[sim.PID]sim.Time{3: 9})
	h2 := spec2.HistoryWorstCase(pattern2, 100, 3)
	if got := h2.Value(0, 10).(sim.Set); got.Len() < spec2.MinSize() {
		t.Errorf("worst-case noise %v below min size %d", got, spec2.MinSize())
	}
}

func TestFig1WorstCaseNoiseDelaysDecision(t *testing.T) {
	// Under lockstep, worst-case legal noise pins the protocol until ts:
	// the run's step count must exceed ts.
	n := 4
	pattern := sim.FailFree(n)
	h := Upsilon(n).HistoryWorstCase(pattern, 800, 2)
	g := NewFig1(n, h, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = g.Body(sim.Value(100 + i))
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 20}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps <= 800 {
		t.Fatalf("decided in %d steps, before stabilization at 800", rep.Steps)
	}
	if len(rep.DecidedValues()) > n-1 {
		t.Fatalf("agreement: %v", rep.DecidedValues())
	}
}

func TestUpsilonQuickLegality(t *testing.T) {
	// Property: StableChoice is always legal; History stabilizes to it.
	prop := func(seed int64, crash uint8) bool {
		n := 4
		pattern := sim.FailFree(n)
		if crash%2 == 0 {
			pattern = sim.CrashPattern(n, map[sim.PID]sim.Time{sim.PID(crash % 4): 9})
		}
		spec := Upsilon(n)
		u := spec.StableChoice(pattern, seed)
		if spec.LegalStable(pattern, u) != nil {
			return false
		}
		h := spec.History(pattern, 30, seed)
		return h.Value(0, 1000).(sim.Set) == u
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
