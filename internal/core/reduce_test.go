package core

import (
	"errors"
	"fmt"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// runUpsilon1ToOmega drives the Section 5.3 reduction to its budget and
// returns the Ω-output trace.
func runUpsilon1ToOmega(t *testing.T, pattern sim.Pattern, upsilon sim.Oracle, sched sim.Schedule, budget int64) *check.OutputTrace[memory.Opt[sim.PID]] {
	t.Helper()
	n := pattern.N()
	red := NewUpsilon1ToOmega(n, upsilon)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = red.Body()
	}
	trace := check.NewOutputTrace[memory.Opt[sim.PID]](n, func() []memory.Opt[sim.PID] {
		out := make([]memory.Opt[sim.PID], n)
		for i := range out {
			out[i] = red.OutputAt(sim.PID(i))
		}
		return out
	})
	rep, err := sim.Run(sim.Config{
		Pattern:  pattern,
		Schedule: sched,
		Budget:   budget,
		StopWhen: trace.Hook(),
	}, bodies)
	if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
		t.Fatalf("reduction run: %v", err)
	}
	_ = rep
	return trace
}

func TestUpsilon1ToOmegaProperSubsetCase(t *testing.T) {
	// Υ¹ stabilizes on a proper subset U (size n): the elected leader is
	// the single process outside U, which the paper argues must be correct.
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{2: 90})
	spec := UpsilonF(n, 1)
	// U = Π − {p1}: legal (size 3 = n+1−f... here n−1, and ≠ correct).
	u := sim.SetOf(0).Complement(n)
	if err := spec.LegalStable(pattern, u); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		h := spec.HistoryWithStable(pattern, 150, seed, u)
		trace := runUpsilon1ToOmega(t, pattern, h, sim.NewRandom(seed), 40_000)
		stable, _, err := trace.StableFrom(pattern.Correct())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !stable.OK || stable.V != 0 {
			t.Fatalf("seed %d: leader = %+v, want p1", seed, stable)
		}
	}
}

func TestUpsilon1ToOmegaFullSetCase(t *testing.T) {
	// Υ¹ stabilizes on Π (legal only when exactly one process is faulty):
	// the timestamp mechanism must elect a correct leader — the faulty
	// process's heartbeat freezes and it drops out of the freshest n.
	n := 4
	for faulty := 0; faulty < n; faulty++ {
		t.Run(fmt.Sprintf("faulty-p%d", faulty+1), func(t *testing.T) {
			pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{sim.PID(faulty): 120})
			spec := UpsilonF(n, 1)
			h := spec.HistoryWithStable(pattern, 60, 1, sim.FullSet(n))
			trace := runUpsilon1ToOmega(t, pattern, h, sim.RoundRobin(), 40_000)
			stable, _, err := trace.StableFrom(pattern.Correct())
			if err != nil {
				t.Fatal(err)
			}
			if !stable.OK || !pattern.Correct().Has(stable.V) {
				t.Fatalf("leader %+v not correct (correct=%v)", stable, pattern.Correct())
			}
			// The elected leader should be the smallest-id correct process.
			if want := pattern.Correct().Min(); stable.V != want {
				t.Fatalf("leader %v, want %v", stable.V, want)
			}
		})
	}
}

func TestUpsilon1ToOmegaFailFree(t *testing.T) {
	// Failure-free in E_1: Υ¹ cannot output Π forever (Π = correct), so the
	// proper-subset case applies and the complement leader is correct.
	n := 5
	pattern := sim.FailFree(n)
	spec := UpsilonF(n, 1)
	for seed := int64(0); seed < 5; seed++ {
		h := spec.History(pattern, 100, seed)
		trace := runUpsilon1ToOmega(t, pattern, h, sim.NewRandom(seed+7), 40_000)
		stable, _, err := trace.StableFrom(pattern.Correct())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !stable.OK || !pattern.Correct().Has(stable.V) {
			t.Fatalf("seed %d: leader %+v not correct", seed, stable)
		}
	}
}

func TestUpsilon1ToOmegaNeedsTwoProcesses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUpsilon1ToOmega(1, nil)
}
