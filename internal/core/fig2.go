package core

import (
	"fmt"
	"sync"

	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// Fig2 is the paper's Figure 2: the Υ^f-based protocol solving f-set
// agreement among n+1 processes in the environment E_f (at most f crashes),
// using registers and atomic snapshots (Theorem 6).
//
// The skeleton follows Figure 1 with (f)-converge[r] at the top (line 4).
// The difference is in the gladiator sub-round (r, k), lines 15-30: Υ^f
// outputs sets U of size ≥ n+1−f, so the |U| gladiators must shed down to
// |U|+f−n−1 values (so that, with the ≤ n+1−|U| citizen values, at most f
// values survive). To do so each gladiator:
//
//	line 16:    updates its value into the atomic snapshot A[r][k];
//	lines 17-19: repeatedly scans A[r][k] until the scan holds at least
//	            n+1−f non-⊥ values (escaping if D[r], D or Stable[r] fires);
//	line 25:    adopts the minimum value of its scan — scans are related by
//	            containment, and with at least one faulty gladiator they
//	            hold between n+1−f and |U|−1 values, so at most
//	            |U|+f−n−1 distinct minima arise;
//	line 26:    runs (|U|+f−n−1)-converge[r][k]; a commit is written to D[r].
//
// Agreement needs only the top-level (f)-converge and D; termination follows
// Theorem 6's case analysis on the eventual output U ≠ correct.
type Fig2 struct {
	n       int
	f       int
	upsilon sim.Oracle
	impl    converge.Impl
	top     *converge.Series
	sub     *converge.Series
	d       *memory.Register[memory.Opt[sim.Value]]
	rounds  *roundRegs
	snaps   *snapSeries
}

// NewFig2 builds the shared state for one run of the Figure 2 protocol for n
// processes with resilience f (1 ≤ f ≤ n−1), using the given Υ^f history.
func NewFig2(n, f int, upsilon sim.Oracle, impl converge.Impl) *Fig2 {
	if n < 2 {
		panic(fmt.Sprintf("core: Fig2 needs ≥ 2 processes, got %d", n))
	}
	if f < 1 || f >= n {
		panic(fmt.Sprintf("core: Fig2 resilience f=%d out of range for n=%d", f, n))
	}
	return &Fig2{
		n:       n,
		f:       f,
		upsilon: upsilon,
		impl:    impl,
		top:     converge.NewSeries("fconv", n, impl),
		sub:     converge.NewSeries("gconv", n, impl),
		d:       memory.NewRegister[memory.Opt[sim.Value]]("D"),
		rounds:  newRoundRegs(n),
		snaps:   newSnapSeries(n, impl),
	}
}

// K returns the agreement parameter f: at most f distinct decisions.
func (g *Fig2) K() int { return g.f }

// Decision returns the decision register's current content; for post-run
// inspection only.
func (g *Fig2) Decision() memory.Opt[sim.Value] { return g.d.Inspect() }

// Body returns the process automaton proposing the given value.
func (g *Fig2) Body(input sim.Value) sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		v := input
		me := p.ID()
		minEntries := g.n - g.f // the paper's n+1−f
		for r := 1; ; r++ {
			if d := g.d.Read(p); d.OK {
				return d.V, true
			}
			// Line 4: top-level (f)-converge.
			picked, committed := g.top.At(r, 0, g.f).Converge(p, v)
			v = picked
			if committed {
				g.d.Write(p, memory.Some(v))
				return v, true
			}
			u := fd.Query[sim.Set](p, g.upsilon)

			dr, stable := g.rounds.at(r)
		cycle:
			for k := 1; ; k++ {
				if d := g.d.Read(p); d.OK {
					return d.V, true
				}
				if stable.Read(p) {
					break cycle
				}
				if w := dr.Read(p); w.OK { // line 23
					v = w.V
					break cycle
				}
				if !u.Has(me) {
					dr.Write(p, memory.Some(v)) // line 11: citizen feeds D[r]
					break cycle
				}
				// Gladiator sub-round (r, k).
				snap := g.snaps.at(r, k, u.Len())
				snap.Update(p, me, v) // line 16
				for {                 // lines 17-19: wait for n+1−f entries
					scan := snap.Scan(p)
					if memory.CountSome(scan) >= minEntries {
						v = minValue(scan) // line 25
						break
					}
					if d := g.d.Read(p); d.OK {
						return d.V, true
					}
					if w := dr.Read(p); w.OK {
						v = w.V
						break cycle
					}
					if stable.Read(p) {
						break cycle
					}
					if u2 := fd.Query[sim.Set](p, g.upsilon); u2 != u {
						stable.Write(p, true)
						break cycle
					}
				}
				param := u.Len() + g.f - g.n // the paper's |U|+f−n−1
				picked, committed := g.sub.At(r, k, param).Converge(p, v)
				v = picked
				if committed {
					dr.Write(p, memory.Some(v)) // commit feeds D[r]
					break cycle
				}
				if u2 := fd.Query[sim.Set](p, g.upsilon); u2 != u {
					stable.Write(p, true)
					break cycle
				}
			}
			if w := dr.Read(p); w.OK { // line 33: adopt before round r+1
				v = w.V
			}
		}
	}
}

func minValue(scan []memory.Opt[sim.Value]) sim.Value {
	best := sim.Value(0)
	found := false
	for _, c := range scan {
		if c.OK && (!found || c.V < best) {
			best = c.V
			found = true
		}
	}
	if !found {
		panic("core: minValue of empty scan")
	}
	return best
}

// snapSeries lazily allocates the atomic snapshot objects A[r][k]. Like
// converge series, the identity includes the caller's |U| so that processes
// with divergent Υ^f views use distinct objects.
type snapSeries struct {
	mu   sync.Mutex
	n    int
	impl converge.Impl
	m    map[seriesKey3]memory.Snapshot[sim.Value]
}

type seriesKey3 struct{ r, k, usize int }

func newSnapSeries(n int, impl converge.Impl) *snapSeries {
	return &snapSeries{n: n, impl: impl, m: make(map[seriesKey3]memory.Snapshot[sim.Value])}
}

func (ss *snapSeries) at(r, k, usize int) memory.Snapshot[sim.Value] {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	key := seriesKey3{r: r, k: k, usize: usize}
	s, ok := ss.m[key]
	if !ok {
		name := fmt.Sprintf("A[%d][%d]/%d", r, k, usize)
		if ss.impl == converge.UseAfek {
			s = memory.NewAfekSnapshot[sim.Value](name, ss.n)
		} else {
			s = memory.NewAtomicSnapshot[sim.Value](name, ss.n)
		}
		ss.m[key] = s
	}
	return s
}
