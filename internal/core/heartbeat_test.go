package core

import (
	"errors"
	"fmt"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/sim"
)

// runHeartbeat drives the timing-based Υ implementation to its budget under
// the given schedule and returns the output trace.
func runHeartbeat(t *testing.T, pattern sim.Pattern, sched sim.Schedule, budget int64) (*HeartbeatUpsilon, *check.OutputTrace[sim.Set]) {
	t.Helper()
	n := pattern.N()
	hb := NewHeartbeatUpsilon(n, 4)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = hb.Body()
	}
	trace := check.NewOutputTrace[sim.Set](n, hb.Output)
	rep, err := sim.Run(sim.Config{
		Pattern:  pattern,
		Schedule: sched,
		Budget:   budget,
		StopWhen: trace.Hook(),
	}, bodies)
	if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
		t.Fatalf("heartbeat run: %v", err)
	}
	if !rep.BudgetExhausted {
		t.Fatal("heartbeat implementation should run to budget")
	}
	return hb, trace
}

func TestHeartbeatUpsilonUnderPartialSynchrony(t *testing.T) {
	// Under an eventually synchronous schedule the implemented output must
	// satisfy the Υ specification: stable, agreed, ≠ correct set.
	patterns := map[string]sim.Pattern{
		"failfree": sim.FailFree(4),
		"crash1":   sim.CrashPattern(4, map[sim.PID]sim.Time{2: 900}),
		"crash2":   sim.CrashPattern(4, map[sim.PID]sim.Time{0: 700, 3: 1_400}),
	}
	for name, pattern := range patterns {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				sched := sim.EventuallySynchronous(2_000, 8, seed)
				_, trace := runHeartbeat(t, pattern, sched, 60_000)
				stable, from, err := trace.StableFrom(pattern.Correct())
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := Upsilon(4).LegalStable(pattern, stable); err != nil {
					t.Fatalf("seed %d: implemented output illegal: %v", seed, err)
				}
				if from > 50_000 {
					t.Fatalf("seed %d: stabilized too late (%d)", seed, from)
				}
				// With crashes the suspected set must end up exactly faulty;
				// failure-free it must be the {p1} default.
				want := pattern.Faulty()
				if want.IsEmpty() {
					want = sim.SetOf(0)
				}
				if stable != want {
					t.Fatalf("seed %d: stable %v, want %v", seed, stable, want)
				}
			}
		})
	}
}

func TestHeartbeatUpsilonIndistinguishability(t *testing.T) {
	// The classic asynchrony argument: a starved correct process is
	// indistinguishable from a crashed one. Run the implementation twice —
	// failure-free with p3 starved, and with p3 actually crashed — under
	// the same schedule, and verify the survivors compute identical
	// outputs. (Υ is so weak that the output {p3} happens to be legal in
	// both patterns; what asynchrony destroys is stabilization, see the
	// next test.)
	n := 3
	budget := int64(20_000)
	run := func(pattern sim.Pattern) []sim.Set {
		hb := NewHeartbeatUpsilon(n, 4)
		bodies := make([]sim.Body, n)
		for i := range bodies {
			bodies[i] = hb.Body()
		}
		_, err := sim.Run(sim.Config{
			Pattern:  pattern,
			Schedule: sim.Starve(2, sim.RoundRobin()),
			Budget:   budget,
		}, bodies)
		if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
			t.Fatal(err)
		}
		return []sim.Set{hb.OutputAt(0), hb.OutputAt(1)}
	}
	outStarved := run(sim.FailFree(n))
	outCrashed := run(sim.CrashPattern(n, map[sim.PID]sim.Time{2: 1}))
	for i := range outStarved {
		if outStarved[i] != outCrashed[i] {
			t.Fatalf("runs distinguishable at p%d: %v vs %v", i+1, outStarved[i], outCrashed[i])
		}
	}
	if outStarved[0] != sim.SetOf(2) {
		t.Fatalf("survivors should suspect exactly the starved process, got %v", outStarved[0])
	}
}

func TestHeartbeatUpsilonDefeatedByAsynchrony(t *testing.T) {
	// Υ is non-trivial: no algorithm implements it in a fully asynchronous
	// system. For the heartbeat implementation the witness is an adversary
	// whose starvation bursts grow faster than the doubling timeouts: every
	// burst eventually triggers a (false) suspicion, every recovery phase
	// retracts it, and the emulated output changes forever — violating Υ's
	// "eventually permanent" clause for any stabilization point.
	n := 3
	victim := sim.PID(2)
	hb := NewHeartbeatUpsilon(n, 4)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = hb.Body()
	}

	// Phase k: starve the victim for 192·2^k steps, then round-robin for
	// 256 steps so the survivors see it move and retract.
	rr := sim.RoundRobin()
	var phase int
	var inPhase int64
	starving := true
	schedule := sim.Func(func(t sim.Time, enabled sim.Set) sim.PID {
		limit := int64(192) << uint(phase)
		if !starving {
			limit = 256
		}
		if inPhase >= limit {
			inPhase = 0
			if !starving {
				phase++
			}
			starving = !starving
		}
		inPhase++
		pool := enabled
		if starving {
			if rest := enabled.Remove(victim); !rest.IsEmpty() {
				pool = rest
			}
		}
		return rr.Next(t, pool)
	})

	changes := 0
	var prev sim.Set
	sampled := false
	_, err := sim.Run(sim.Config{
		Pattern:  sim.FailFree(n),
		Schedule: schedule,
		Budget:   80_000,
		StopWhen: func(_ sim.Time) bool {
			cur := hb.OutputAt(0)
			if sampled && cur != prev {
				changes++
			}
			prev = cur
			sampled = true
			return false
		},
	}, bodies)
	if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
		t.Fatal(err)
	}
	if changes < 6 {
		t.Fatalf("adversary forced only %d output changes; expected sustained instability", changes)
	}
	t.Logf("growing-burst adversary forced %d output changes at p1", changes)
}

func TestTimedComposedSolvesSetAgreement(t *testing.T) {
	// The full arc: partial synchrony → heartbeat Υ → Figure 1, no oracle.
	for _, tc := range []struct {
		name    string
		pattern sim.Pattern
	}{
		{"failfree", sim.FailFree(4)},
		{"crash1", sim.CrashPattern(4, map[sim.PID]sim.Time{1: 400})},
		{"crash2", sim.CrashPattern(4, map[sim.PID]sim.Time{1: 300, 3: 600})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				n := tc.pattern.N()
				c := NewTimedComposed(n, 4, converge.UseAtomic)
				proposals := make([]sim.Value, n)
				for i := range proposals {
					proposals[i] = sim.Value(100 + i)
				}
				rep, err := sim.RunTasks(sim.Config{
					Pattern:  tc.pattern,
					Schedule: sim.EventuallySynchronous(1_000, 8, seed),
					Budget:   1 << 22,
				}, c.TaskSets(proposals))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := check.SetAgreement(rep, tc.pattern, c.K(), proposals); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestTimedComposedSafetyUnderPureAsynchrony(t *testing.T) {
	// Even when the timing assumption fails (a starved correct process
	// wrecks the implemented Υ's liveness guarantees), the protocol's
	// SAFETY is untouched: if processes decide, they decide ≤ n−1 valid
	// values. (Decisions still happen here: the starved run is
	// indistinguishable from a crash run, where the output is legal.)
	n := 4
	pattern := sim.FailFree(n)
	c := NewTimedComposed(n, 4, converge.UseAtomic)
	proposals := []sim.Value{100, 101, 102, 103}
	rep, err := sim.RunTasks(sim.Config{
		Pattern:  pattern,
		Schedule: sim.Starve(3, sim.RoundRobin()),
		Budget:   1 << 20,
	}, c.TaskSets(proposals))
	if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
		t.Fatal(err)
	}
	distinct := rep.DecidedValues()
	if len(distinct) > n-1 {
		t.Fatalf("safety violated: %v", distinct)
	}
	for _, v := range distinct {
		if v < 100 || v > 103 {
			t.Fatalf("validity violated: %v", distinct)
		}
	}
}

func TestEventuallySynchronousBound(t *testing.T) {
	// After GST, no enabled process waits more than the bound.
	n := 4
	gst := sim.Time(200)
	bound := int64(6)
	sched := sim.EventuallySynchronous(gst, bound, 3)
	last := make([]sim.Time, n)
	spin := func(p *sim.Proc) (sim.Value, bool) {
		for {
			p.Yield()
		}
	}
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = spin
	}
	var worst int64
	_, err := sim.Run(sim.Config{
		Pattern:  sim.FailFree(n),
		Schedule: sched,
		Budget:   5_000,
		Tracer: func(e sim.Event) {
			if e.T > gst+gst && last[e.P] > gst {
				if wait := int64(e.T - last[e.P]); wait > worst {
					worst = wait
				}
			}
			last[e.P] = e.T
		},
	}, bodies)
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	// The longest-waiting rule admits a small constant slack when several
	// processes hit the bound simultaneously.
	if worst > bound+int64(n) {
		t.Fatalf("post-GST wait %d exceeds bound %d (+n slack)", worst, bound)
	}
}

func TestStarveSchedule(t *testing.T) {
	var granted sim.Set
	spin := func(p *sim.Proc) (sim.Value, bool) {
		for {
			p.Yield()
		}
	}
	_, err := sim.Run(sim.Config{
		Pattern:  sim.FailFree(3),
		Schedule: sim.Starve(1, nil),
		Budget:   100,
		Tracer:   func(e sim.Event) { granted = granted.Add(e.P) },
	}, []sim.Body{spin, spin, spin})
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	if granted.Has(1) {
		t.Fatal("victim was granted a step")
	}
	if !granted.Has(0) || !granted.Has(2) {
		t.Fatal("others starved")
	}
}

func TestHeartbeatValidation(t *testing.T) {
	for _, tc := range []struct{ n, thr int }{{1, 4}, {3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHeartbeatUpsilon(%d, %d) should panic", tc.n, tc.thr)
				}
			}()
			NewHeartbeatUpsilon(tc.n, int64(tc.thr))
		}()
	}
}

func TestHeartbeatThresholdAdaptation(t *testing.T) {
	// A bursty-but-fair schedule provokes early false suspicions; the
	// doubling thresholds must absorb them and still stabilize legally.
	n := 3
	pattern := sim.FailFree(n)
	// Bursts: each process runs 40 steps at a time, rotating.
	burst := sim.Func(func(t sim.Time, enabled sim.Set) sim.PID {
		idx := int(t/40) % n
		for i := 0; i < n; i++ {
			p := sim.PID((idx + i) % n)
			if enabled.Has(p) {
				return p
			}
		}
		return enabled.Min()
	})
	hb := NewHeartbeatUpsilon(n, 2) // small patience: false suspicions early
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = hb.Body()
	}
	trace := check.NewOutputTrace[sim.Set](n, hb.Output)
	_, err := sim.Run(sim.Config{
		Pattern:  pattern,
		Schedule: burst,
		Budget:   80_000,
		StopWhen: trace.Hook(),
	}, bodies)
	if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
		t.Fatal(err)
	}
	stable, from, err := trace.StableFrom(pattern.Correct())
	if err != nil {
		t.Fatal(err)
	}
	if err := Upsilon(n).LegalStable(pattern, stable); err != nil {
		t.Fatalf("output %v illegal: %v", stable, err)
	}
	t.Logf("stabilized on %v at %d under 40-step bursts", stable, from)
	_ = fmt.Sprint(from)
}
