package core

import (
	"fmt"

	"weakestfd/internal/converge"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// HeartbeatUpsilon *implements* Υ from timing assumptions, closing the loop
// the paper's introduction draws: "timing assumptions circumvent
// asynchronous impossibilities by providing processes with information
// about failures, typically through time-out (or heart-beat) mechanisms"
// (Section 1). Υ itself is non-trivial — unimplementable in a fully
// asynchronous system — but under partial synchrony (an eventually
// synchronous schedule) the classic heartbeat/adaptive-timeout construction
// yields it:
//
//   - every process increments a shared heartbeat register and collects the
//     others';
//   - a process whose heartbeat has not moved for threshold[j] of the
//     observer's own steps is suspected; seeing it move again retracts the
//     suspicion and doubles threshold[j] (the standard eventually-perfect
//     adaptation, which false-suspects only finitely often once the
//     schedule's bound holds);
//   - the emulated Υ output is the suspected set when non-empty — which
//     eventually equals faulty(F), a set disjoint from and hence different
//     from correct(F) — and the fixed singleton {p1} otherwise — correct,
//     because an eventually-empty suspicion set means every process is
//     correct, and {p1} ⊊ Π = correct(F).
//
// Under a schedule that starves a correct process forever (legal in pure
// asynchrony) the suspected set converges to a wrong value — the emulated
// output equals the correct set and violates Υ. That is not a bug: it is
// the impossibility of implementing any non-trivial detector without
// timing assumptions, and the tests assert both sides.
type HeartbeatUpsilon struct {
	n   int
	hb  *memory.Array[int64]
	out *memory.Array[sim.Set]
	// initialThreshold is the starting per-target patience, in observer
	// steps per collect round.
	initialThreshold int64
}

// NewHeartbeatUpsilon builds the shared state of one timing-based Υ
// implementation over n processes.
func NewHeartbeatUpsilon(n int, initialThreshold int64) *HeartbeatUpsilon {
	if n < 2 {
		panic(fmt.Sprintf("core: HeartbeatUpsilon needs n ≥ 2, got %d", n))
	}
	if initialThreshold < 1 {
		panic(fmt.Sprintf("core: initial threshold %d", initialThreshold))
	}
	return &HeartbeatUpsilon{
		n:                n,
		hb:               memory.NewArray[int64]("HB", n),
		out:              memory.NewArray[sim.Set]("Υ-impl", n),
		initialThreshold: initialThreshold,
	}
}

// OutputAt returns process i's current emulated output; for inspection
// between steps only.
func (h *HeartbeatUpsilon) OutputAt(i sim.PID) sim.Set { return h.out.At(i).Inspect() }

// Output returns all current emulated outputs; for inspection only.
func (h *HeartbeatUpsilon) Output() []sim.Set { return h.out.Inspect() }

// Emulated exposes the implementation as a queryable oracle: the module
// output of process p is p's own output variable (process-local state),
// with the {p1} default before the task's first write.
func (h *HeartbeatUpsilon) Emulated() sim.Oracle {
	return emulatedSetOracle{read: h.OutputAt, fallback: sim.SetOf(0)}
}

type emulatedSetOracle struct {
	read     func(sim.PID) sim.Set
	fallback sim.Set
}

func (e emulatedSetOracle) Value(p sim.PID, _ sim.Time) any {
	u := e.read(p)
	if u.IsEmpty() {
		return e.fallback
	}
	return u
}

// Body returns the heartbeat task for one process; it never returns.
func (h *HeartbeatUpsilon) Body() sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		me := p.ID()
		lastSeen := make([]int64, h.n)  // last heartbeat value observed
		staleFor := make([]int64, h.n)  // collect rounds without movement
		threshold := make([]int64, h.n) // adaptive patience per target
		for j := range threshold {
			threshold[j] = h.initialThreshold
		}
		var ticks int64
		suspected := sim.EmptySet
		h.out.Write(p, me, sim.SetOf(0))
		for {
			ticks++
			h.hb.Write(p, me, ticks)
			beats := h.hb.Collect(p)
			changed := false
			for j := 0; j < h.n; j++ {
				if sim.PID(j) == me {
					continue
				}
				if beats[j] != lastSeen[j] {
					lastSeen[j] = beats[j]
					staleFor[j] = 0
					if suspected.Has(sim.PID(j)) {
						// False suspicion: retract and double the patience.
						suspected = suspected.Remove(sim.PID(j))
						threshold[j] *= 2
						changed = true
					}
					continue
				}
				staleFor[j]++
				if staleFor[j] >= threshold[j] && !suspected.Has(sim.PID(j)) {
					suspected = suspected.Add(sim.PID(j))
					changed = true
				}
			}
			u := suspected
			if u.IsEmpty() {
				u = sim.SetOf(0)
			}
			if changed || h.out.At(me).Inspect() != u {
				h.out.Write(p, me, u)
			} else {
				p.Yield() // keep the task's step rate even when quiescent
			}
		}
	}
}

// TimedComposed solves (n−1)-set agreement with *no oracle at all*: Υ is
// implemented from heartbeats (valid under an eventually synchronous
// schedule) and consumed by the Figure 1 protocol, each as a parallel task
// of the same processes. Timing assumptions → Υ → set agreement, the full
// arc of the paper's introduction.
type TimedComposed struct {
	impl     *HeartbeatUpsilon
	protocol *Fig1
}

// NewTimedComposed builds the shared state over n processes.
func NewTimedComposed(n int, initialThreshold int64, impl converge.Impl) *TimedComposed {
	hb := NewHeartbeatUpsilon(n, initialThreshold)
	return &TimedComposed{
		impl:     hb,
		protocol: NewFig1(n, hb.Emulated(), impl),
	}
}

// K returns the agreement bound, n−1.
func (c *TimedComposed) K() int { return c.protocol.K() }

// Implementation exposes the heartbeat half.
func (c *TimedComposed) Implementation() *HeartbeatUpsilon { return c.impl }

// TaskSets returns the two parallel task bodies per process.
func (c *TimedComposed) TaskSets(proposals []sim.Value) []sim.TaskSet {
	out := make([]sim.TaskSet, len(proposals))
	for i := range out {
		out[i] = sim.TaskSet{
			c.impl.Body(),
			c.protocol.Body(proposals[i]),
		}
	}
	return out
}
