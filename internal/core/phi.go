package core

import (
	"fmt"

	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// This file exhibits the φ_D maps (Corollary 9) for the concrete stable
// detectors the Figure 3 experiments extract from. Theorem 10 only needs
// φ_D to exist; running the reduction needs it in hand. Each map documents
// why its σ is not an f-resilient sample.

// PhiOmega is φ_Ω: for a stable leader value ℓ, the sequence σ in which
// exactly the processes of Π−{ℓ} take steps forever, each always observing
// ℓ, is not a sample: in any fair run with correct set Π−{ℓ}, Ω must
// eventually output a correct leader, never permanently ℓ. w(σ) = 0 since
// every process appearing in σ appears infinitely often.
//
// The resulting extraction outputs Π−{ℓ} — precisely the Section 4
// complement reduction, recovered from the generic theorem.
func PhiOmega(n int) Phi {
	return func(d any) (sim.Set, int) {
		l, ok := d.(sim.PID)
		if !ok {
			panic(fmt.Sprintf("core: PhiOmega on %T, want sim.PID", d))
		}
		return sim.SetOf(l).Complement(n), 0
	}
}

// PhiOmegaF is φ_Ω^f (covering Ωn as size = n): for a stable set value L of
// size f, the sequence σ in which exactly Π−L take steps forever, each
// always observing L, is not a sample: Ω^f's eventual set must contain a
// correct process, and L ∩ (Π−L) = ∅. |Π−L| = n+1−f as required; w(σ) = 0.
func PhiOmegaF(n int) Phi {
	return func(d any) (sim.Set, int) {
		l, ok := d.(sim.Set)
		if !ok {
			panic(fmt.Sprintf("core: PhiOmegaF on %T, want sim.Set", d))
		}
		return l.Complement(n), 0
	}
}

// PhiStableEvPerfect is φ for the stable eventually-perfect detector (range:
// the suspected set, eventually exactly faulty(F)). For a stable value d the
// correct set is forced to be Π−d, so: if d ≠ ∅, σ with correct(σ) = Π is
// not a sample (a fair all-correct run forces the stable output ∅ ≠ d); if
// d = ∅, σ with correct(σ) = Π−{p0} is not a sample (a run in which p0
// appears finitely often and the stable output is ∅ would require
// faulty = ∅... while the non-sample property only needs that *no* F with
// correct(F) = Π−{p0} admits the constant-∅ history, which holds since
// faulty(F) = {p0} ≠ ∅ must eventually be output). w(σ) = 0 in the first
// case; in the second, σ can be chosen with p0 taking a single first step,
// giving w(σ) = 1 — kept at 1 to exercise the batch machinery.
func PhiStableEvPerfect(n int) Phi {
	return func(d any) (sim.Set, int) {
		s, ok := d.(sim.Set)
		if !ok {
			panic(fmt.Sprintf("core: PhiStableEvPerfect on %T, want sim.Set", d))
		}
		if !s.IsEmpty() {
			return sim.FullSet(n), 0
		}
		return sim.SetOf(0).Complement(n), 1
	}
}

// PhiTaggedOmegaF is φ for the opaque-string-range Ω^f variant
// (fd.NewTaggedOmegaF): decode the tag to its excluded set L and return its
// complement, as in PhiOmegaF. The non-sample argument is identical — the
// range encoding is irrelevant to the failure information carried — and the
// map exists precisely because Corollary 9 is range-agnostic.
func PhiTaggedOmegaF(n int) Phi {
	return func(d any) (sim.Set, int) {
		tag, ok := d.(string)
		if !ok {
			panic(fmt.Sprintf("core: PhiTaggedOmegaF on %T, want string", d))
		}
		l, err := fd.UntagSet(tag)
		if err != nil {
			panic(fmt.Sprintf("core: PhiTaggedOmegaF: %v", err))
		}
		return l.Complement(n), 0
	}
}

// PhiOmegaSlack is a deliberately conservative variant of PhiOmega with
// w(σ) = slack > 0: the non-sample σ is prefixed by slack full batches in
// which every process (including ℓ) takes steps observing ℓ before Π−{ℓ}
// runs alone forever. Such a σ is still not a sample — the tail argument is
// unchanged — and the positive w exercises Figure 3's batch-counting path
// (line 15) rather than the immediate-exit path.
func PhiOmegaSlack(n, slack int) Phi {
	if slack < 0 {
		panic(fmt.Sprintf("core: PhiOmegaSlack slack=%d", slack))
	}
	return func(d any) (sim.Set, int) {
		l, ok := d.(sim.PID)
		if !ok {
			panic(fmt.Sprintf("core: PhiOmegaSlack on %T, want sim.PID", d))
		}
		return sim.SetOf(l).Complement(n), slack
	}
}
