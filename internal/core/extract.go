package core

import (
	"fmt"
	"sync"

	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// Phi is the map φ_D of Corollary 9: it carries each value d in the range of
// a stable f-non-trivial failure detector D to a pair (correct(σ), w(σ))
// where σ ∈ (Π × {d})* is *not* an f-resilient sample of D,
// |correct(σ)| ≥ n+1−f, and w(σ) is the length of the shortest prefix of σ
// containing all steps of the processes that appear only finitely often.
//
// The paper proves φ_D exists for every f-non-trivial D but does not
// construct it (the proof of Theorem 10 is non-constructive); to run the
// reduction one must exhibit φ_D per concrete detector — see PhiOmega,
// PhiOmegaF, PhiStableEvPerfect and PhiWitnessed in phi.go.
//
// Detector values must be comparable with == (true of every range used in
// this module: sim.PID and sim.Set).
type Phi func(d any) (s sim.Set, w int)

// Extraction is the paper's Figure 3: the reduction algorithm transforming
// any stable f-non-trivial failure detector D into Υ^f. Each process runs
// two interleaved tasks:
//
//	Task 1: query D and publish the value with an ever-increasing timestamp
//	        in the single-writer register R[i].
//	Task 2: proceed in rounds. Entering round r, set the emulated output to
//	        Π, read the current value d and compute (S, w) = φ_D(d). If
//	        S = Π, just watch for a differing report. Otherwise count
//	        "batches" — a batch completes when every process (including the
//	        faulty-to-be!) has published d at least twice since the last
//	        batch — up to w of them, or accept the shared flag Exited[r][j]
//	        = d from a process that already observed w batches; then set the
//	        emulated output to S and watch for a differing report. Any fresh
//	        report carrying a value ≠ d sets the shared flag Changed[r],
//	        which advances every process of round r to round r+1.
//
// Eventually D stabilizes on some d everywhere. If some process has crashed
// and the batches never complete, all correct processes output Π — legal,
// since correct ≠ Π. If the batches complete, all correct processes output
// S, and σ's non-sample property guarantees S ≠ correct: otherwise the very
// run at hand would exhibit σ as an f-resilient sample of D.
type Extraction struct {
	n   int
	d   sim.Oracle
	phi Phi
	// r holds the published (value, timestamp) reports.
	r *memory.Array[report]
	// out is the emulated Υ^f output, one register per process.
	out    *memory.Array[sim.Set]
	rounds *extractRounds
}

type report struct {
	val any
	ts  int64
}

// StateFP implements sim.Fingerprinter for the explorer's state digests:
// reports live in shared registers, so their fingerprint must be a function
// of their content alone.
func (r report) StateFP() uint64 {
	return sim.StateFP(r.val)*0x100000001b3 ^ uint64(r.ts)
}

// NewExtraction builds the shared state of one Figure 3 run over n
// processes, extracting from detector history d via φ_D.
func NewExtraction(n int, d sim.Oracle, phi Phi) *Extraction {
	if phi == nil {
		panic("core: NewExtraction with nil Phi")
	}
	return &Extraction{
		n:      n,
		d:      d,
		phi:    phi,
		r:      memory.NewArray[report]("R", n),
		out:    memory.NewArray[sim.Set]("Υf-output", n),
		rounds: newExtractRounds(n),
	}
}

// Output returns the current emulated Υ^f outputs; for inspection between
// steps (schedules, stop predicates, post-run checks) only.
func (e *Extraction) Output() []sim.Set { return e.out.Inspect() }

// OutputAt returns process i's current emulated output.
func (e *Extraction) OutputAt(i sim.PID) sim.Set { return e.out.At(i).Inspect() }

// Body returns the reduction automaton for one process. It never returns;
// extraction runs are ended by the step budget or a stop predicate.
func (e *Extraction) Body() sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		me := p.ID()
		full := sim.FullSet(e.n)
		ts := int64(0)
		lastTS := make([]int64, e.n) // freshness horizon per process

		// publish runs one Task 1 action: query D, publish with timestamp.
		publish := func() any {
			d := p.Query(e.d)
			ts++
			e.r.Write(p, me, report{val: d, ts: ts})
			return d
		}

		d := publish()
		for r := 1; ; r++ {
			// Round entry (lines 7-10).
			e.out.Write(p, me, full)
			s, w := e.phi(d)
			changed, exited := e.rounds.at(r)
			batches := 0
			fresh := make([]int, e.n)
			sSet := false

			for !changed.Read(p) {
				d2 := publish() // Task 1 interleaved with Task 2
				if d2 != d {
					changed.Write(p, true)
					break
				}
				// Read all reports, tracking freshness.
				sawBatch := true
				for j := 0; j < e.n; j++ {
					rep := e.r.Read(p, sim.PID(j))
					if rep.ts > lastTS[j] {
						if rep.val != d {
							changed.Write(p, true)
						}
						fresh[j] += int(rep.ts - lastTS[j])
						lastTS[j] = rep.ts
					}
					if fresh[j] < 2 {
						sawBatch = false
					}
				}
				if s == full || sSet {
					continue // wait for a differing report (line 21)
				}
				if sawBatch {
					batches++
					for j := range fresh {
						fresh[j] = 0
					}
				}
				if batches < w {
					// Accept another process's observation (line 15's
					// "some process observes r batches").
					if ex := exited.Read(p, me); ex.OK && ex.V == d {
						batches = w
					} else {
						for j := 0; j < e.n && batches < w; j++ {
							if ex := exited.Read(p, sim.PID(j)); ex.OK && ex.V == d {
								batches = w
							}
						}
					}
				}
				if batches >= w {
					exited.Write(p, me, memory.Some[any](d)) // line 19
					e.out.Write(p, me, s)
					sSet = true
				}
			}
			// Round r is over; adopt the freshest value we have seen.
			d = publish()
		}
	}
}

// extractRounds lazily allocates the per-round shared flags of Figure 3:
// Changed[r] (a differing report was seen; advance) and Exited[r][j] (the
// value with which j exited the wait clause).
type extractRounds struct {
	mu sync.Mutex
	n  int
	m  map[int]*extractRound
}

type extractRound struct {
	changed *memory.Register[bool]
	exited  *memory.Array[memory.Opt[any]]
}

func newExtractRounds(n int) *extractRounds {
	return &extractRounds{n: n, m: make(map[int]*extractRound)}
}

func (er *extractRounds) at(r int) (*memory.Register[bool], *memory.Array[memory.Opt[any]]) {
	er.mu.Lock()
	defer er.mu.Unlock()
	round, ok := er.m[r]
	if !ok {
		round = &extractRound{
			changed: memory.NewRegister[bool](fmt.Sprintf("Changed[%d]", r)),
			exited:  memory.NewArray[memory.Opt[any]](fmt.Sprintf("Exited[%d]", r), er.n),
		}
		er.m[r] = round
	}
	return round.changed, round.exited
}
