package core

import (
	"sort"

	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// Candidate extractors for the Theorem 1/5 adversary experiments: natural
// attempts at computing Ω^f from Υ^f. Theorem 1/5 say every attempt fails;
// the adversary demonstrates how each of these does.

// ComplementExtractor publishes the complement of the Υ^f output, padded
// with the lowest process ids up to size f. It is the reverse of the (valid)
// Ω^f → Υ^f complement reduction; the adversary defeats it by sticking with
// a constant Υ^f output whose complement it can crash.
func ComplementExtractor() Extractor {
	return Extractor{
		Name: "complement",
		Build: func(n, f int, upsilon sim.Oracle) ([]sim.Body, *memory.Array[sim.Set]) {
			out := memory.NewArray[sim.Set]("omegaf-guess", n)
			bodies := make([]sim.Body, n)
			for i := range bodies {
				me := sim.PID(i)
				bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
					for {
						u := fd.Query[sim.Set](p, upsilon)
						out.Write(p, me, padToSize(u.Complement(n), f, n))
					}
				}
			}
			return bodies, out
		},
	}
}

// StalenessExtractor publishes the f processes with the freshest heartbeats
// (highest shared counters, ties to lower ids) — the natural activity-based
// guess, and the style of reduction that does work for Υ¹ → Ω in E_1
// (Section 5.3). For f ≥ 2 the adversary defeats it by always running
// exactly the processes the candidate excluded, making yesterday's stale
// processes today's freshest, forever.
func StalenessExtractor() Extractor {
	return Extractor{
		Name: "staleness",
		Build: func(n, f int, _ sim.Oracle) ([]sim.Body, *memory.Array[sim.Set]) {
			out := memory.NewArray[sim.Set]("omegaf-guess", n)
			hb := memory.NewArray[int64]("HB", n)
			bodies := make([]sim.Body, n)
			for i := range bodies {
				me := sim.PID(i)
				bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
					ts := int64(0)
					for {
						ts++
						hb.Write(p, me, ts)
						beats := hb.Collect(p)
						out.Write(p, me, freshest(beats, f))
					}
				}
			}
			return bodies, out
		},
	}
}

// HybridExtractor uses the complement when the Υ^f output is a proper
// subset of Π and falls back to heartbeat freshness when it is Π — mirroring
// the Υ¹ → Ω reduction's case split. Against it the adversary's constant
// proper-subset history reduces to the complement case.
func HybridExtractor() Extractor {
	return Extractor{
		Name: "hybrid",
		Build: func(n, f int, upsilon sim.Oracle) ([]sim.Body, *memory.Array[sim.Set]) {
			out := memory.NewArray[sim.Set]("omegaf-guess", n)
			hb := memory.NewArray[int64]("HB", n)
			bodies := make([]sim.Body, n)
			for i := range bodies {
				me := sim.PID(i)
				bodies[i] = func(p *sim.Proc) (sim.Value, bool) {
					ts := int64(0)
					for {
						ts++
						hb.Write(p, me, ts)
						u := fd.Query[sim.Set](p, upsilon)
						var l sim.Set
						if u != sim.FullSet(p.N()) {
							l = padToSize(u.Complement(n), f, n)
						} else {
							l = freshest(hb.Collect(p), f)
						}
						out.Write(p, me, l)
					}
				}
			}
			return bodies, out
		},
	}
}

// AllExtractors returns the candidate catalogue.
func AllExtractors() []Extractor {
	return []Extractor{ComplementExtractor(), StalenessExtractor(), HybridExtractor()}
}

// padToSize grows s to exactly size by adding the lowest absent ids, or
// shrinks it by removing the highest members.
func padToSize(s sim.Set, size, n int) sim.Set {
	for i := 0; s.Len() < size && i < n; i++ {
		s = s.Add(sim.PID(i))
	}
	members := s.Members()
	for i := len(members) - 1; s.Len() > size && i >= 0; i-- {
		s = s.Remove(members[i])
	}
	return s
}

// freshest returns the f processes with the highest heartbeat counters,
// breaking ties toward lower ids.
func freshest(beats []int64, f int) sim.Set {
	idx := make([]int, len(beats))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if beats[idx[a]] != beats[idx[b]] {
			return beats[idx[a]] > beats[idx[b]]
		}
		return idx[a] < idx[b]
	})
	var s sim.Set
	for i := 0; i < f && i < len(idx); i++ {
		s = s.Add(sim.PID(idx[i]))
	}
	return s
}
