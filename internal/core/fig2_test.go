package core

import (
	"fmt"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// runFig2 executes one Figure 2 run and verifies f-set agreement.
func runFig2(t *testing.T, pattern sim.Pattern, f int, upsilonF sim.Oracle, impl converge.Impl, sched sim.Schedule, budget int64) *sim.Report {
	t.Helper()
	n := pattern.N()
	if !pattern.InEnvironment(f) {
		t.Fatalf("pattern %v outside E_%d", pattern, f)
	}
	g := NewFig2(n, f, upsilonF, impl)
	bodies := make([]sim.Body, n)
	proposals := make([]sim.Value, n)
	for i := range bodies {
		proposals[i] = sim.Value(100 + i)
		bodies[i] = g.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sched, Budget: budget}, bodies)
	if err != nil {
		t.Fatalf("fig2 run failed: %v", err)
	}
	if err := check.SetAgreement(rep, pattern, f, proposals); err != nil {
		t.Fatalf("fig2 violated %d-set agreement: %v", f, err)
	}
	return rep
}

// crashK returns a pattern crashing the first k processes at staggered times.
func crashK(n, k int) sim.Pattern {
	crashes := make(map[sim.PID]sim.Time, k)
	for i := 0; i < k; i++ {
		crashes[sim.PID(i)] = sim.Time(13 * (i + 1))
	}
	return sim.CrashPattern(n, crashes)
}

func TestFig2Grid(t *testing.T) {
	// Sweep (n, f) and the number of actual crashes 0..f.
	for n := 3; n <= 6; n++ {
		for f := 1; f < n; f++ {
			for crashed := 0; crashed <= f; crashed++ {
				name := fmt.Sprintf("n%d/f%d/crash%d", n, f, crashed)
				t.Run(name, func(t *testing.T) {
					pattern := sim.FailFree(n)
					if crashed > 0 {
						pattern = crashK(n, crashed)
					}
					spec := UpsilonF(n, f)
					for seed := int64(0); seed < 3; seed++ {
						h := spec.History(pattern, 120, seed)
						runFig2(t, pattern, f, h, converge.UseAtomic, sim.NewRandom(seed+3), 1<<21)
					}
				})
			}
		}
	}
}

func TestFig2RoundRobin(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{4, 2}, {5, 2}, {5, 3}, {6, 4}} {
		t.Run(fmt.Sprintf("n%d-f%d", tc.n, tc.f), func(t *testing.T) {
			pattern := crashK(tc.n, tc.f)
			h := UpsilonF(tc.n, tc.f).History(pattern, 250, 7)
			runFig2(t, pattern, tc.f, h, converge.UseAtomic, sim.RoundRobin(), 1<<22)
		})
	}
}

func TestFig2GladiatorSnapshotPath(t *testing.T) {
	// All citizens faulty: Υ^f stabilizes on a set containing every correct
	// process plus a faulty one, so termination must flow through the
	// snapshot batching and (|U|+f−n−1)-converge (Theorem 6's second case).
	n, f := 5, 2
	pattern := crashK(n, 2) // p1, p2 faulty
	// U = {p1, p3, p4, p5}: contains all correct (p3,p4,p5) and faulty p1;
	// citizens = {p2} faulty. |U| = 4 ≥ n+1−f = 3 and U ≠ correct.
	u := sim.SetOf(0, 2, 3, 4)
	spec := UpsilonF(n, f)
	if err := spec.LegalStable(pattern, u); err != nil {
		t.Fatal(err)
	}
	h := spec.HistoryWithStable(pattern, 0, 1, u)
	runFig2(t, pattern, f, h, converge.UseAtomic, sim.RoundRobin(), 1<<22)
	runFig2(t, pattern, f, h, converge.UseAtomic, sim.NewRandom(21), 1<<22)
}

func TestFig2CitizenPath(t *testing.T) {
	// Υ^f stabilizes on a set disjoint from the correct processes: all
	// correct processes are citizens and D[r] carries the round.
	n, f := 5, 3
	pattern := crashK(n, 3)
	u := sim.SetOf(0, 1, 2) // exactly the faulty set; |U| = 3 ≥ n+1−f = 2...
	spec := UpsilonF(n, f)
	if err := spec.LegalStable(pattern, u); err != nil {
		t.Fatal(err)
	}
	h := spec.HistoryWithStable(pattern, 0, 1, u)
	runFig2(t, pattern, f, h, converge.UseAtomic, sim.RoundRobin(), 1<<22)
}

func TestFig2MatchesFig1AtWaitFree(t *testing.T) {
	// Υ^n is Υ: with f = n−1 (wait-free), Figure 2 solves the same task as
	// Figure 1. Run both on the same pattern/history and verify both meet
	// the same (n−1)-set-agreement bar.
	n := 4
	f := n - 1
	pattern := crashK(n, 2)
	h := Upsilon(n).History(pattern, 100, 9)
	runFig1(t, pattern, h, converge.UseAtomic, sim.NewRandom(2), 1<<21)
	runFig2(t, pattern, f, h, converge.UseAtomic, sim.NewRandom(2), 1<<21)
}

func TestFig2RegistersOnly(t *testing.T) {
	n, f := 4, 2
	pattern := crashK(n, 1)
	h := UpsilonF(n, f).History(pattern, 80, 4)
	rep := runFig2(t, pattern, f, h, converge.UseAfek, sim.NewRandom(6), 1<<23)
	t.Logf("registers-only fig2: %d steps", rep.Steps)
}

func TestFig2AgreementBoundTight(t *testing.T) {
	// With f = 1, Figure 2 must reach consensus (exactly one decided value)
	// in E_1.
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{2: 17})
	for seed := int64(0); seed < 8; seed++ {
		h := UpsilonF(n, 1).History(pattern, 90, seed)
		rep := runFig2(t, pattern, 1, h, converge.UseAtomic, sim.NewRandom(seed), 1<<21)
		if len(rep.DecidedValues()) != 1 {
			t.Fatalf("seed %d: f=1 must yield consensus, got %v", seed, rep.DecidedValues())
		}
	}
}

func TestFig2LateStabilization(t *testing.T) {
	n, f := 5, 2
	pattern := crashK(n, 2)
	h := UpsilonF(n, f).History(pattern, 2000, 13)
	rep := runFig2(t, pattern, f, h, converge.UseAtomic, sim.RoundRobin(), 1<<22)
	t.Logf("late stabilization: %d steps", rep.Steps)
}

func TestFig2Determinism(t *testing.T) {
	n, f := 5, 2
	pattern := crashK(n, 2)
	mk := func() *sim.Report {
		h := UpsilonF(n, f).History(pattern, 150, 3)
		return runFig2(t, pattern, f, h, converge.UseAtomic, sim.NewRandom(3), 1<<21)
	}
	a, b := mk(), mk()
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
}

func TestFig2ParamValidation(t *testing.T) {
	h := fd.Constant(sim.SetOf(0))
	for _, tc := range []struct{ n, f int }{{4, 0}, {4, 4}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFig2(%d, %d) should panic", tc.n, tc.f)
				}
			}()
			NewFig2(tc.n, tc.f, h, converge.UseAtomic)
		}()
	}
}

func TestFig2SpecViolatingUpsilonFLivelocks(t *testing.T) {
	// Ablation: the Υ^f clause "U ≠ correct(F)" is load-bearing. Take
	// n = 4, f = 2 and a dummy detector stuck on U = {p3, p4}. If exactly
	// p1, p2 crash, U equals the correct set (spec violation), |U| = n+1−f
	// makes the gladiators' shedding converge a 0-converge (which never
	// commits by definition), and all citizens are faulty — so once the
	// citizens crash after feeding round 1's top-level converge with four
	// distinct values (preventing an early f-converge commit) but before
	// writing D[r], the two correct gladiators loop sub-rounds forever.
	//
	// Crash timing under round-robin lockstep: a process's 10th step is its
	// citizen D[r]-write; both crash at t=37, after their 9th steps.
	n, f := 4, 2
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{0: 37, 1: 37})
	dummy := fd.Constant(sim.SetOf(2, 3)) // = correct(F): illegal for Υ^f
	g := NewFig2(n, f, dummy, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = g.Body(sim.Value(100 + i))
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 60_000}, bodies)
	if err == nil {
		t.Fatalf("run decided %v despite spec-violating Υ^f", rep.DecidedValues())
	}
	if len(rep.Decided) != 0 {
		t.Fatalf("no process should decide, got %v", rep.Decided)
	}

	// Control: the same pattern and schedule with a *legal* stable set of
	// the same size ({p1, p4} ≠ correct) decides: p3 is a citizen and feeds
	// D[r].
	legal := fd.Constant(sim.SetOf(0, 3))
	g2 := NewFig2(n, f, legal, converge.UseAtomic)
	bodies2 := make([]sim.Body, n)
	for i := range bodies2 {
		bodies2[i] = g2.Body(sim.Value(100 + i))
	}
	rep2, err2 := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 60_000}, bodies2)
	if err2 != nil {
		t.Fatalf("legal same-size U should decide: %v", err2)
	}
	if len(rep2.DecidedValues()) > f {
		t.Fatalf("agreement: %v", rep2.DecidedValues())
	}
}
