package core

import (
	"fmt"
	"sync"

	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// Fig1 is the paper's Figure 1: the Υ-based protocol solving n-set agreement
// among n+1 processes using registers, tolerating n crashes (Theorem 2).
//
// Each round r:
//
//	line 4:     try (n)-converge[r]; a commit is written to the decision
//	            register D and decided.
//	line ~8:    otherwise query Υ; call the output U. Processes in U are
//	            gladiators, processes outside are citizens.
//	lines 12-17 (cyclic): a citizen writes its value to D[r] and proceeds to
//	            round r+1. A gladiator runs (|U|−1)-converge[r][k] for
//	            k = 1, 2, …, chaining picked values; a commit is written to
//	            D[r]. Every cycle the gladiator re-queries Υ; a changed
//	            output sets the shared flag Stable[r] (so named in the
//	            paper; it records that instability was observed). The cycle
//	            exits when Stable[r] is set, D[r] ≠ ⊥, or D ≠ ⊥.
//
// Processes leaving round r adopt D[r] when non-⊥; a non-⊥ D is decided
// immediately. Agreement needs only the top-level converge and D: the first
// committed (n)-converge pins all values ever written to D to at most n.
// Termination uses Υ: eventually U ≠ correct, so either some gladiator is
// faulty (the sub-converges shed a value) or some citizen is correct (it
// feeds D[r]).
//
// One Fig1 value holds the shared memory of one run; give each process a
// body from Body.
type Fig1 struct {
	n       int
	upsilon sim.Oracle
	top     *converge.Series // (n)-converge[r]
	sub     *converge.Series // (|U|−1)-converge[r][k]
	d       *memory.Register[memory.Opt[sim.Value]]
	rounds  *roundRegs
}

// NewFig1 builds the shared state for one run of the Figure 1 protocol for n
// processes (the paper's n+1) using the given Υ history. The protocol
// decides at most n−1 values (the paper's "at most n" with n+1 processes).
func NewFig1(n int, upsilon sim.Oracle, impl converge.Impl) *Fig1 {
	if n < 2 {
		panic(fmt.Sprintf("core: Fig1 needs ≥ 2 processes, got %d", n))
	}
	return &Fig1{
		n:       n,
		upsilon: upsilon,
		top:     converge.NewSeries("nconv", n, impl),
		sub:     converge.NewSeries("gconv", n, impl),
		d:       memory.NewRegister[memory.Opt[sim.Value]]("D"),
		rounds:  newRoundRegs(n),
	}
}

// K returns the agreement parameter: the maximum number of distinct decision
// values, n−1 for n processes.
func (g *Fig1) K() int { return g.n - 1 }

// Decision returns the decision register's current content; for post-run
// inspection only.
func (g *Fig1) Decision() memory.Opt[sim.Value] { return g.d.Inspect() }

// Body returns the process automaton proposing the given value.
func (g *Fig1) Body(input sim.Value) sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		v := input
		me := p.ID()
		for r := 1; ; r++ {
			if d := g.d.Read(p); d.OK {
				return d.V, true // line 20: decide on a posted decision
			}
			// Line 4: top-level (n)-converge.
			picked, committed := g.top.At(r, 0, g.K()).Converge(p, v)
			v = picked
			if committed {
				g.d.Write(p, memory.Some(v))
				return v, true
			}
			u := fd.Query[sim.Set](p, g.upsilon)

			// Lines 12-17: the cyclic gladiator/citizen procedure.
			dr, stable := g.rounds.at(r)
		cycle:
			for k := 1; ; k++ {
				if d := g.d.Read(p); d.OK {
					return d.V, true
				}
				if stable.Read(p) {
					// Condition (a): someone saw Υ change in round r.
					break cycle
				}
				if w := dr.Read(p); w.OK {
					// Condition (c): a value reached D[r]; adopt it.
					v = w.V
					break cycle
				}
				if !u.Has(me) {
					// Citizen: contribute the value and move on.
					dr.Write(p, memory.Some(v))
					break cycle
				}
				// Gladiator: try to shed one of U's values.
				picked, committed := g.sub.At(r, k, u.Len()-1).Converge(p, v)
				v = picked
				if committed {
					// Condition (b): a gladiator commit reaches D[r].
					dr.Write(p, memory.Some(v))
					break cycle
				}
				if u2 := fd.Query[sim.Set](p, g.upsilon); u2 != u {
					stable.Write(p, true)
					break cycle
				}
			}
			// Leaving round r: adopt D[r] if some process fed it.
			if w := dr.Read(p); w.OK {
				v = w.V
			}
		}
	}
}

// roundRegs lazily allocates the per-round registers D[r] and Stable[r].
// Allocation is bookkeeping (no simulation steps); the mutex covers the
// pre-first-step window in which process bodies may run concurrently.
type roundRegs struct {
	mu sync.Mutex
	n  int
	m  map[int]*roundPair
}

type roundPair struct {
	dr     *memory.Register[memory.Opt[sim.Value]]
	stable *memory.Register[bool]
}

func newRoundRegs(n int) *roundRegs {
	return &roundRegs{n: n, m: make(map[int]*roundPair)}
}

func (rr *roundRegs) at(r int) (*memory.Register[memory.Opt[sim.Value]], *memory.Register[bool]) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	pair, ok := rr.m[r]
	if !ok {
		pair = &roundPair{
			dr:     memory.NewRegister[memory.Opt[sim.Value]](fmt.Sprintf("D[%d]", r)),
			stable: memory.NewRegister[bool](fmt.Sprintf("Stable[%d]", r)),
		}
		rr.m[r] = pair
	}
	return pair.dr, pair.stable
}
