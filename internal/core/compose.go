package core

import (
	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// Composition: Theorem 10 made operational. Because Figure 3 extracts Υ^f
// from any stable f-non-trivial detector D, and Figures 1/2 solve set
// agreement from Υ^f, chaining the two solves set agreement *using D* —
// whatever D is. Each process runs two parallel tasks (exactly the paper's
// multi-task processes): Task A executes the Figure 3 reduction against D,
// continuously maintaining the process's emulated Υ^f output variable;
// Task B executes the set-agreement protocol, and its Υ^f queries read the
// process's own emulated output variable — a process-local read, as in the
// model's definition of an emulated failure detector module.

// Emulated returns the extraction's output as a queryable oracle: the
// module output of process p at any time is p's current emulated output
// variable (Π until the first round entry initializes it). Query steps on
// this oracle read only p-local state, so the composition stays within the
// shared-memory model.
func (e *Extraction) Emulated() sim.Oracle {
	return fd.FuncOracle(func(p sim.PID, _ sim.Time) any {
		u := e.OutputAt(p)
		if u.IsEmpty() {
			return sim.FullSet(e.n)
		}
		return u
	})
}

// Composed bundles a Figure 3 extraction from a stable detector with a
// Figure 1 set-agreement protocol consuming the emulated Υ.
type Composed struct {
	extraction *Extraction
	protocol   *Fig1
}

// NewComposed builds the shared state for solving (n−1)-set agreement among
// n processes using stable detector d (with non-sample map phi) through the
// generic reduction.
func NewComposed(n int, d sim.Oracle, phi Phi, impl converge.Impl) *Composed {
	ex := NewExtraction(n, d, phi)
	return &Composed{
		extraction: ex,
		protocol:   NewFig1(n, ex.Emulated(), impl),
	}
}

// K returns the agreement bound, n−1.
func (c *Composed) K() int { return c.protocol.K() }

// Extraction exposes the reduction half (for output inspection).
func (c *Composed) Extraction() *Extraction { return c.extraction }

// TaskSets returns, per process, the two parallel task bodies: the
// reduction task and the agreement task proposing the given value.
func (c *Composed) TaskSets(proposals []sim.Value) []sim.TaskSet {
	n := len(proposals)
	out := make([]sim.TaskSet, n)
	for i := range out {
		out[i] = sim.TaskSet{
			c.extraction.Body(),
			c.protocol.Body(proposals[i]),
		}
	}
	return out
}
