package core

import (
	"fmt"

	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// Step-machine ports of the hot protocol bodies, for sim.RunMachines. Each
// machine mirrors the corresponding Body *operation for operation*: the
// program counter enumerates the body's atomic operations (register and
// snapshot accesses, detector queries), and every Step call performs exactly
// one of them followed by the body's process-local computation up to the next
// operation. Under the same Config the two representations therefore take
// identical steps and produce identical Reports — the equivalence suite
// asserts this across every scenario family.
//
// The machines require the one-step atomic snapshot implementation
// (converge.UseAtomic); the Afek registers-only construction spans many steps
// per operation and stays on the goroutine runner.

// directSnap asserts step-free access on a snapshot, with a uniform error.
func directSnap[T any](s memory.Snapshot[T]) memory.DirectSnapshot[T] {
	d, ok := memory.AsDirect(s)
	if !ok {
		panic(fmt.Sprintf("core: snapshot %T does not support step-free access (use the goroutine runner for the Afek construction)", s))
	}
	return d
}

// ---------------------------------------------------------------------------
// Figure 1

// fig1 machine program counter, one value per atomic operation site of
// Fig1.Body.
const (
	f1ReadD        uint8 = iota // line 20 + round top: read decision register
	f1TopConv                   // line 4: top-level (n)-converge (4 ops)
	f1WriteD                    // commit: write D and decide
	f1QueryU                    // query Υ, enter the cycle
	f1CycleReadD                // cycle top: read D
	f1ReadStable                // condition (a): read Stable[r]
	f1ReadDr                    // condition (c): read D[r]; branch citizen/gladiator
	f1CitizenWrite              // citizen: write D[r]
	f1SubConv                   // gladiator: (|U|−1)-converge (4 ops)
	f1GladWrite                 // condition (b): gladiator commit to D[r]
	f1ReQuery                   // gladiator: re-query Υ
	f1StableWrite               // Υ changed: set Stable[r]
	f1LeaveReadDr               // leaving round r: adopt D[r]
)

type fig1Machine struct {
	g  *Fig1
	me sim.PID
	v  sim.Value
	r  int
	k  int
	u  sim.Set

	dr     *memory.Register[memory.Opt[sim.Value]]
	stable *memory.Register[bool]
	conv   converge.Machine
	log    *sim.AccessLog
	seam   *sim.QuerySeam
	pc     uint8

	// skipOnChange is the MutSkipOnChange mutation hook: a re-query that
	// observes a detector change skips ahead two rounds instead of writing
	// Stable[r]. Dead code under stable-from-0 histories (see mutant.go).
	skipOnChange bool
	// garbleDecide is the MutGarbledDecide mutation hook: the top-level
	// commit writes and decides v+garbleOffset (see mutant.go).
	garbleDecide bool
	// garbleEcho is the MutGarbledEcho mutation hook: the citizen writes
	// v+garbleOffset into D[r] instead of its value. Dead code while the
	// detector output names every process (see mutant.go).
	garbleEcho bool

	decision sim.Value
}

// Machine returns the Figure 1 automaton proposing the given value in
// resumable step-machine form — Body(input) for the machine runner.
func (g *Fig1) Machine(input sim.Value) sim.StepMachine {
	return &fig1Machine{g: g, v: input}
}

func (m *fig1Machine) Init(ctx sim.MachineContext) {
	m.me = ctx.ID
	m.log = ctx.Log
	m.seam = ctx.Queries
	m.conv.Bind(ctx)
	m.r = 1
	m.pc = f1ReadD
}

func (m *fig1Machine) Decision() sim.Value { return m.decision }

func (m *fig1Machine) Step(t sim.Time) sim.MachineStatus {
	g := m.g
	switch m.pc {
	case f1ReadD:
		if d := g.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		m.conv.Start(g.top.At(m.r, 0, g.K()), m.v) // K() ≥ 1: never immediate
		m.pc = f1TopConv
	case f1TopConv:
		if m.conv.StepOp() {
			m.v = m.conv.Picked
			if m.conv.Committed {
				m.pc = f1WriteD
			} else {
				m.pc = f1QueryU
			}
		}
	case f1WriteD:
		if m.garbleDecide {
			m.v += garbleOffset
		}
		g.d.DirectWrite(m.log, memory.Some(m.v))
		m.decision = m.v
		return sim.MachineDecided
	case f1QueryU:
		m.u = fd.QueryAt[sim.Set](m.seam, g.upsilon, m.me, t)
		m.dr, m.stable = g.rounds.at(m.r)
		m.k = 1
		m.pc = f1CycleReadD
	case f1CycleReadD:
		if d := g.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		m.pc = f1ReadStable
	case f1ReadStable:
		if m.stable.DirectRead(m.log) {
			m.pc = f1LeaveReadDr // condition (a)
		} else {
			m.pc = f1ReadDr
		}
	case f1ReadDr:
		if w := m.dr.DirectRead(m.log); w.OK {
			m.v = w.V // condition (c)
			m.pc = f1LeaveReadDr
		} else if !m.u.Has(m.me) {
			m.pc = f1CitizenWrite
		} else if m.conv.Start(g.sub.At(m.r, m.k, m.u.Len()-1), m.v) {
			m.v = m.conv.Picked // 0-converge: picked = v, not committed
			m.pc = f1ReQuery
		} else {
			m.pc = f1SubConv
		}
	case f1CitizenWrite:
		echo := m.v
		if m.garbleEcho {
			echo += garbleOffset
		}
		m.dr.DirectWrite(m.log, memory.Some(echo))
		m.pc = f1LeaveReadDr
	case f1SubConv:
		if m.conv.StepOp() {
			m.v = m.conv.Picked
			if m.conv.Committed {
				m.pc = f1GladWrite // condition (b)
			} else {
				m.pc = f1ReQuery
			}
		}
	case f1GladWrite:
		m.dr.DirectWrite(m.log, memory.Some(m.v))
		m.pc = f1LeaveReadDr
	case f1ReQuery:
		if u2 := fd.QueryAt[sim.Set](m.seam, g.upsilon, m.me, t); u2 != m.u {
			if m.skipOnChange {
				// MutSkipOnChange: treat the change as "this round is stale"
				// and fast-forward past the next round's converge instead of
				// publishing Stable[r] and adopting D[r].
				m.r += 2
				m.pc = f1ReadD
			} else {
				m.pc = f1StableWrite
			}
		} else {
			m.k++
			m.pc = f1CycleReadD
		}
	case f1StableWrite:
		m.stable.DirectWrite(m.log, true)
		m.pc = f1LeaveReadDr
	case f1LeaveReadDr:
		if w := m.dr.DirectRead(m.log); w.OK {
			m.v = w.V
		}
		m.r++
		m.pc = f1ReadD
	}
	return sim.MachineRunning
}

// ---------------------------------------------------------------------------
// Figure 2

const (
	f2ReadD uint8 = iota
	f2TopConv
	f2WriteD
	f2QueryU
	f2CycleReadD
	f2ReadStable
	f2ReadDr
	f2CitizenWrite
	f2SnapUpdate     // line 16: update A[r][k]
	f2SnapScan       // lines 17-19: scan A[r][k]
	f2WaitReadD      // wait-loop escape: read D
	f2WaitReadDr     // wait-loop escape: read D[r]
	f2WaitReadStable // wait-loop escape: read Stable[r]
	f2WaitQuery      // wait-loop escape: re-query Υ^f
	f2SubConv        // line 26: (|U|+f−n−1)-converge
	f2GladWrite
	f2ReQuery
	f2StableWrite
	f2LeaveReadDr
)

type fig2Machine struct {
	g  *Fig2
	me sim.PID
	v  sim.Value
	r  int
	k  int
	u  sim.Set

	dr     *memory.Register[memory.Opt[sim.Value]]
	stable *memory.Register[bool]
	snap   memory.DirectSnapshot[sim.Value]
	scan   []memory.Opt[sim.Value]
	conv   converge.Machine
	log    *sim.AccessLog
	seam   *sim.QuerySeam
	pc     uint8

	// minEntries is the gladiator scan threshold of lines 17-19 — the
	// paper's n+1−f for the real protocol, perturbed by the Fig2 mutations
	// (see mutant.go).
	minEntries int
	// skipOnChange is the MutF2SkipOnChange mutation hook: a re-query that
	// observes a detector change skips ahead two rounds instead of writing
	// Stable[r]. Dead code under stable-from-0 histories (see mutant.go).
	skipOnChange bool

	decision sim.Value
}

// Machine returns the Figure 2 automaton proposing the given value in
// resumable step-machine form.
func (g *Fig2) Machine(input sim.Value) sim.StepMachine {
	return &fig2Machine{g: g, v: input, minEntries: g.n - g.f}
}

func (m *fig2Machine) Init(ctx sim.MachineContext) {
	m.me = ctx.ID
	m.log = ctx.Log
	m.seam = ctx.Queries
	m.conv.Bind(ctx)
	m.r = 1
	m.pc = f2ReadD
}

func (m *fig2Machine) Decision() sim.Value { return m.decision }

func (m *fig2Machine) Step(t sim.Time) sim.MachineStatus {
	g := m.g
	switch m.pc {
	case f2ReadD:
		if d := g.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		m.conv.Start(g.top.At(m.r, 0, g.f), m.v) // f ≥ 1: never immediate
		m.pc = f2TopConv
	case f2TopConv:
		if m.conv.StepOp() {
			m.v = m.conv.Picked
			if m.conv.Committed {
				m.pc = f2WriteD
			} else {
				m.pc = f2QueryU
			}
		}
	case f2WriteD:
		g.d.DirectWrite(m.log, memory.Some(m.v))
		m.decision = m.v
		return sim.MachineDecided
	case f2QueryU:
		m.u = fd.QueryAt[sim.Set](m.seam, g.upsilon, m.me, t)
		m.dr, m.stable = g.rounds.at(m.r)
		m.k = 1
		m.pc = f2CycleReadD
	case f2CycleReadD:
		if d := g.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		m.pc = f2ReadStable
	case f2ReadStable:
		if m.stable.DirectRead(m.log) {
			m.pc = f2LeaveReadDr
		} else {
			m.pc = f2ReadDr
		}
	case f2ReadDr:
		if w := m.dr.DirectRead(m.log); w.OK { // line 23
			m.v = w.V
			m.pc = f2LeaveReadDr
		} else if !m.u.Has(m.me) {
			m.pc = f2CitizenWrite // line 11
		} else {
			m.snap = directSnap(g.snaps.at(m.r, m.k, m.u.Len()))
			m.pc = f2SnapUpdate
		}
	case f2CitizenWrite:
		m.dr.DirectWrite(m.log, memory.Some(m.v))
		m.pc = f2LeaveReadDr
	case f2SnapUpdate:
		m.snap.DirectUpdate(m.log, m.me, m.v) // line 16
		m.pc = f2SnapScan
	case f2SnapScan:
		m.scan = m.snap.DirectScan(m.log, m.scan[:0])
		if memory.CountSome(m.scan) >= m.minEntries {
			m.v = minValue(m.scan) // line 25
			param := m.u.Len() + g.f - g.n
			if m.conv.Start(g.sub.At(m.r, m.k, param), m.v) {
				m.v = m.conv.Picked // 0-converge
				m.pc = f2ReQuery
			} else {
				m.pc = f2SubConv
			}
		} else {
			m.pc = f2WaitReadD
		}
	case f2WaitReadD:
		if d := g.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		m.pc = f2WaitReadDr
	case f2WaitReadDr:
		if w := m.dr.DirectRead(m.log); w.OK {
			m.v = w.V
			m.pc = f2LeaveReadDr
		} else {
			m.pc = f2WaitReadStable
		}
	case f2WaitReadStable:
		if m.stable.DirectRead(m.log) {
			m.pc = f2LeaveReadDr
		} else {
			m.pc = f2WaitQuery
		}
	case f2WaitQuery:
		if u2 := fd.QueryAt[sim.Set](m.seam, g.upsilon, m.me, t); u2 != m.u {
			if m.skipOnChange {
				// MutF2SkipOnChange: fast-forward past the next round's
				// converge instead of publishing Stable[r] and adopting D[r].
				m.r += 2
				m.pc = f2ReadD
			} else {
				m.pc = f2StableWrite
			}
		} else {
			m.pc = f2SnapScan
		}
	case f2SubConv:
		if m.conv.StepOp() {
			m.v = m.conv.Picked
			if m.conv.Committed {
				m.pc = f2GladWrite
			} else {
				m.pc = f2ReQuery
			}
		}
	case f2GladWrite:
		m.dr.DirectWrite(m.log, memory.Some(m.v))
		m.pc = f2LeaveReadDr
	case f2ReQuery:
		if u2 := fd.QueryAt[sim.Set](m.seam, g.upsilon, m.me, t); u2 != m.u {
			if m.skipOnChange {
				// MutF2SkipOnChange: as above, skip two rounds on a change.
				m.r += 2
				m.pc = f2ReadD
			} else {
				m.pc = f2StableWrite
			}
		} else {
			m.k++
			m.pc = f2CycleReadD
		}
	case f2StableWrite:
		m.stable.DirectWrite(m.log, true)
		m.pc = f2LeaveReadDr
	case f2LeaveReadDr:
		if w := m.dr.DirectRead(m.log); w.OK { // line 33
			m.v = w.V
		}
		m.r++
		m.pc = f2ReadD
	}
	return sim.MachineRunning
}

// ---------------------------------------------------------------------------
// Figure 3 (extraction)

const (
	exInitQuery         uint8 = iota // Task 1: query D
	exInitWrite                      // Task 1: publish (value, timestamp)
	exRoundOut                       // round entry: output ← Π
	exChangedRead                    // loop top: read Changed[r]
	exD2Query                        // interleaved Task 1: query
	exD2Write                        // interleaved Task 1: publish
	exChangedWriteBreak              // differing own report: set Changed[r], leave loop
	exReadReports                    // read R[j], tracking freshness
	exChangedWriteCont               // differing published report: set Changed[r], keep scanning
	exExitedReadMe                   // line 15: read own Exited[r] entry
	exExitedReadJ                    // line 15: scan Exited[r][j]
	exExitedWrite                    // line 19: write Exited[r]
	exOutWrite                       // output ← S
	exExitQuery                      // round exit: adopt the freshest value (query)
	exExitWrite                      // round exit: publish
)

type extractionMachine struct {
	e    *Extraction
	me   sim.PID
	full sim.Set
	ts   int64
	last []int64 // lastTS: freshness horizon per process

	d       any // round-entry detector value
	d2      any // freshly published value
	r       int
	s       sim.Set
	w       int
	changed *memory.Register[bool]
	exited  *memory.Array[memory.Opt[any]]
	batches int
	fresh   []int
	sSet    bool
	sawB    bool
	j       int
	log     *sim.AccessLog
	seam    *sim.QuerySeam
	pc      uint8

	// mut perturbs the output writes and re-query sites (see mutant.go);
	// MutExNone is the real reduction.
	mut ExtractMutation
}

// Machine returns the Figure 3 reduction automaton in resumable step-machine
// form; like Body, it never returns.
func (e *Extraction) Machine() sim.StepMachine {
	return &extractionMachine{e: e}
}

func (m *extractionMachine) Init(ctx sim.MachineContext) {
	m.me = ctx.ID
	m.log = ctx.Log
	m.seam = ctx.Queries
	m.full = sim.FullSet(m.e.n)
	m.last = make([]int64, m.e.n)
	m.fresh = make([]int, m.e.n)
	m.pc = exInitQuery
}

func (m *extractionMachine) Decision() sim.Value { return 0 }

// afterReports runs the local post-scan logic of the publish/collect loop and
// sets the next operation.
func (m *extractionMachine) afterReports() {
	if m.s == m.full || m.sSet {
		m.pc = exChangedRead // line 21: just watch for a differing report
		return
	}
	if m.sawB {
		m.batches++
		for j := range m.fresh {
			m.fresh[j] = 0
		}
	}
	if m.batches < m.w {
		m.pc = exExitedReadMe
		return
	}
	m.pc = exExitedWrite
}

// afterExited routes control after the Exited[r] read chain.
func (m *extractionMachine) afterExited() {
	if m.batches >= m.w {
		m.pc = exExitedWrite
	} else {
		m.pc = exChangedRead
	}
}

func (m *extractionMachine) Step(t sim.Time) sim.MachineStatus {
	e := m.e
	switch m.pc {
	case exInitQuery:
		m.d = m.seam.Query(e.d, m.me, t)
		m.ts++
		m.pc = exInitWrite
	case exInitWrite:
		e.r.DirectWrite(m.log, m.me, report{val: m.d, ts: m.ts})
		m.r = 1
		m.pc = exRoundOut
	case exRoundOut:
		e.out.DirectWrite(m.log, m.me, m.full) // lines 7-10
		m.s, m.w = e.phi(m.d)
		m.changed, m.exited = e.rounds.at(m.r)
		m.batches = 0
		for j := range m.fresh {
			m.fresh[j] = 0
		}
		m.sSet = false
		m.pc = exChangedRead
	case exChangedRead:
		if m.changed.DirectRead(m.log) {
			m.pc = exExitQuery
		} else {
			m.pc = exD2Query
		}
	case exD2Query:
		if m.mut == MutExStaleLeader {
			m.d2 = m.d // latch: republish the round-entry value
		} else {
			m.d2 = m.seam.Query(e.d, m.me, t)
		}
		m.ts++
		m.pc = exD2Write
	case exD2Write:
		e.r.DirectWrite(m.log, m.me, report{val: m.d2, ts: m.ts})
		if m.d2 != m.d {
			m.pc = exChangedWriteBreak
		} else {
			m.j = 0
			m.sawB = true
			m.pc = exReadReports
		}
	case exChangedWriteBreak:
		m.changed.DirectWrite(m.log, true)
		m.pc = exExitQuery
	case exReadReports:
		rep := e.r.DirectRead(m.log, sim.PID(m.j))
		differs := false
		if rep.ts > m.last[m.j] {
			if rep.val != m.d {
				differs = true
			}
			m.fresh[m.j] += int(rep.ts - m.last[m.j])
			m.last[m.j] = rep.ts
		}
		if m.fresh[m.j] < 2 {
			m.sawB = false
		}
		m.j++
		switch {
		case differs:
			m.pc = exChangedWriteCont
		case m.j < e.n:
			// stay on exReadReports
		default:
			m.afterReports()
		}
	case exChangedWriteCont:
		m.changed.DirectWrite(m.log, true)
		if m.j < e.n {
			m.pc = exReadReports
		} else {
			m.afterReports()
		}
	case exExitedReadMe:
		if ex := m.exited.DirectRead(m.log, m.me); ex.OK && ex.V == m.d {
			m.batches = m.w
			m.afterExited()
		} else {
			m.j = 0
			m.pc = exExitedReadJ
			if m.j >= e.n || m.batches >= m.w {
				m.afterExited()
			}
		}
	case exExitedReadJ:
		if ex := m.exited.DirectRead(m.log, sim.PID(m.j)); ex.OK && ex.V == m.d {
			m.batches = m.w
		}
		m.j++
		if m.j < e.n && m.batches < m.w {
			// stay on exExitedReadJ
		} else {
			m.afterExited()
		}
	case exExitedWrite:
		m.exited.DirectWrite(m.log, m.me, memory.Some[any](m.d)) // line 19
		m.pc = exOutWrite
	case exOutWrite:
		out := m.s
		switch m.mut {
		case MutExFullOutput:
			out = m.full
		case MutExEmptyOutput:
			out = sim.EmptySet
		}
		e.out.DirectWrite(m.log, m.me, out)
		m.sSet = true
		m.pc = exChangedRead
	case exExitQuery:
		// MutExStaleLeader skips the re-query, keeping the latched value.
		if m.mut != MutExStaleLeader {
			m.d = m.seam.Query(e.d, m.me, t)
		}
		m.ts++
		m.pc = exExitWrite
	case exExitWrite:
		e.r.DirectWrite(m.log, m.me, report{val: m.d, ts: m.ts})
		m.r++
		m.pc = exRoundOut
	}
	return sim.MachineRunning
}

// ---------------------------------------------------------------------------
// Heartbeat Υ implementation

const (
	hbInitWrite uint8 = iota // initial output write
	hbTick                   // heartbeat increment
	hbCollect                // collect one heartbeat register
	hbOutWrite               // publish a new suspicion set
	hbYield                  // quiescent no-op step
)

type heartbeatMachine struct {
	h         *HeartbeatUpsilon
	me        sim.PID
	lastSeen  []int64
	staleFor  []int64
	threshold []int64
	beats     []int64
	ticks     int64
	suspected sim.Set
	u         sim.Set
	j         int
	log       *sim.AccessLog
	pc        uint8
}

// Machine returns the heartbeat task in resumable step-machine form; like
// Body, it never returns.
func (h *HeartbeatUpsilon) Machine() sim.StepMachine {
	return &heartbeatMachine{h: h}
}

func (m *heartbeatMachine) Init(ctx sim.MachineContext) {
	m.me = ctx.ID
	m.log = ctx.Log
	m.lastSeen = make([]int64, m.h.n)
	m.staleFor = make([]int64, m.h.n)
	m.threshold = make([]int64, m.h.n)
	for j := range m.threshold {
		m.threshold[j] = m.h.initialThreshold
	}
	m.beats = make([]int64, m.h.n)
	m.pc = hbInitWrite
}

func (m *heartbeatMachine) Decision() sim.Value { return 0 }

func (m *heartbeatMachine) Step(_ sim.Time) sim.MachineStatus {
	h := m.h
	switch m.pc {
	case hbInitWrite:
		h.out.DirectWrite(m.log, m.me, sim.SetOf(0))
		m.pc = hbTick
	case hbTick:
		m.ticks++
		h.hb.DirectWrite(m.log, m.me, m.ticks)
		m.j = 0
		m.pc = hbCollect
	case hbCollect:
		m.beats[m.j] = h.hb.DirectRead(m.log, sim.PID(m.j))
		m.j++
		if m.j < h.n {
			break
		}
		// Collect complete: run the suspicion update locally.
		changed := false
		for j := 0; j < h.n; j++ {
			if sim.PID(j) == m.me {
				continue
			}
			if m.beats[j] != m.lastSeen[j] {
				m.lastSeen[j] = m.beats[j]
				m.staleFor[j] = 0
				if m.suspected.Has(sim.PID(j)) {
					m.suspected = m.suspected.Remove(sim.PID(j))
					m.threshold[j] *= 2
					changed = true
				}
				continue
			}
			m.staleFor[j]++
			if m.staleFor[j] >= m.threshold[j] && !m.suspected.Has(sim.PID(j)) {
				m.suspected = m.suspected.Add(sim.PID(j))
				changed = true
			}
		}
		m.u = m.suspected
		if m.u.IsEmpty() {
			m.u = sim.SetOf(0)
		}
		// Inspecting the own output register is process-local knowledge
		// (only this process writes it), so it is not a recorded access:
		// it cannot conflict with any other process's step.
		//lint:fdlint accesscheck -- single-writer register owned by this process; unrecorded reads of it cannot create a missed dependency
		if changed || h.out.At(m.me).Inspect() != m.u {
			m.pc = hbOutWrite
		} else {
			m.pc = hbYield
		}
	case hbOutWrite:
		h.out.DirectWrite(m.log, m.me, m.u)
		m.pc = hbTick
	case hbYield:
		// One no-op step, like Proc.Yield: waiting consumes schedule steps.
		m.pc = hbTick
	}
	return sim.MachineRunning
}

// ---------------------------------------------------------------------------
// Compositions

// MachineTaskSets returns the step-machine counterpart of TaskSets for
// sim.RunTaskMachines: per process, the reduction machine and the agreement
// machine proposing the given value, in the same task order.
func (c *Composed) MachineTaskSets(proposals []sim.Value) []sim.MachineTaskSet {
	out := make([]sim.MachineTaskSet, len(proposals))
	for i := range out {
		out[i] = sim.MachineTaskSet{
			c.extraction.Machine(),
			c.protocol.Machine(proposals[i]),
		}
	}
	return out
}

// MachineTaskSets returns the step-machine counterpart of TaskSets for
// sim.RunTaskMachines: the heartbeat machine and the Figure 1 machine, in the
// same task order.
func (c *TimedComposed) MachineTaskSets(proposals []sim.Value) []sim.MachineTaskSet {
	out := make([]sim.MachineTaskSet, len(proposals))
	for i := range out {
		out[i] = sim.MachineTaskSet{
			c.impl.Machine(),
			c.protocol.Machine(proposals[i]),
		}
	}
	return out
}
