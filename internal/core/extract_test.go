package core

import (
	"errors"
	"fmt"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// runExtraction drives one Figure 3 run to its budget and returns the
// recorded output trace. Extraction bodies never return, so the runner
// reports budget exhaustion; that is the expected way these runs end.
func runExtraction(t *testing.T, pattern sim.Pattern, d sim.Oracle, phi Phi, sched sim.Schedule, budget int64) (*Extraction, *check.OutputTrace[sim.Set]) {
	t.Helper()
	n := pattern.N()
	ex := NewExtraction(n, d, phi)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = ex.Body()
	}
	trace := check.NewOutputTrace[sim.Set](n, ex.Output)
	rep, err := sim.Run(sim.Config{
		Pattern:  pattern,
		Schedule: sched,
		Budget:   budget,
		StopWhen: trace.Hook(),
	}, bodies)
	if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
		t.Fatalf("extraction run: %v", err)
	}
	if !rep.BudgetExhausted {
		t.Fatalf("extraction must run to budget")
	}
	return ex, trace
}

// assertUpsilonF checks that the extracted outputs satisfy the Υ^f contract:
// eventual agreement at correct processes on a legal stable set, with the
// stabilization point comfortably before the horizon.
func assertUpsilonF(t *testing.T, spec UpsilonSpec, pattern sim.Pattern, trace *check.OutputTrace[sim.Set]) (sim.Set, sim.Time) {
	t.Helper()
	stable, from, err := trace.StableFrom(pattern.Correct())
	if err != nil {
		t.Fatalf("extracted outputs did not agree: %v", err)
	}
	if err := spec.LegalStable(pattern, stable); err != nil {
		t.Fatalf("extracted stable output illegal: %v", err)
	}
	if horizon := trace.Horizon(); from > horizon*3/4 {
		t.Fatalf("outputs stabilized too late: %d of horizon %d", from, horizon)
	}
	return stable, from
}

func TestExtractFromOmega(t *testing.T) {
	// Theorem 10 instantiated at D = Ω: the generic reduction recovers the
	// complement reduction of Section 4.
	patterns := map[string]sim.Pattern{
		"failfree": sim.FailFree(4),
		"crash1":   sim.CrashPattern(4, map[sim.PID]sim.Time{1: 400}),
		"crash3": sim.CrashPattern(4, map[sim.PID]sim.Time{
			0: 300, 1: 500, 2: 700}),
	}
	for name, pattern := range patterns {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				omega := fd.NewOmega(pattern, 200, seed)
				ex, trace := runExtraction(t, pattern, omega, PhiOmega(4),
					sim.NewRandom(seed), 60_000)
				stable, _ := assertUpsilonF(t, Upsilon(4), pattern, trace)
				// With every process alive long enough to complete batches
				// in the stabilized round, the output is the leader's
				// complement; with crashes stalling batches it may be Π.
				leader := omega.Value(pattern.Correct().Min(), 1<<40).(sim.PID)
				comp := sim.SetOf(leader).Complement(4)
				if stable != comp && stable != sim.FullSet(4) {
					t.Errorf("seed %d: stable %v, want %v or Π", seed, stable, comp)
				}
				_ = ex
			}
		})
	}
}

func TestExtractFromOmegaFailFreeGivesComplement(t *testing.T) {
	// In a failure-free run batches always complete, so the output must be
	// exactly the complement, not the Π fallback.
	pattern := sim.FailFree(5)
	omega := fd.NewOmega(pattern, 100, 3)
	_, trace := runExtraction(t, pattern, omega, PhiOmega(5), sim.RoundRobin(), 60_000)
	stable, _ := assertUpsilonF(t, Upsilon(5), pattern, trace)
	leader := omega.Value(0, 1<<40).(sim.PID)
	if want := sim.SetOf(leader).Complement(5); stable != want {
		t.Fatalf("stable %v, want complement %v", stable, want)
	}
}

func TestExtractFromOmegaN(t *testing.T) {
	// D = Ωn (the paper's [18] detector): extraction yields Υ. This is the
	// executable content of "Υ is weaker than Ωn" (half of Theorem 1).
	n := 5
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{2: 350})
	for seed := int64(0); seed < 4; seed++ {
		omegaN := fd.NewOmegaF(pattern, n-1, 150, seed)
		_, trace := runExtraction(t, pattern, omegaN, PhiOmegaF(n),
			sim.NewRandom(seed+50), 60_000)
		assertUpsilonF(t, Upsilon(n), pattern, trace)
	}
}

func TestExtractFromOmegaFGrid(t *testing.T) {
	// D = Ω^f across the resilience grid: extraction yields Υ^f in E_f.
	n := 5
	for f := 2; f < n; f++ {
		for crashed := 0; crashed <= f; crashed += f {
			t.Run(fmt.Sprintf("f%d/crash%d", f, crashed), func(t *testing.T) {
				pattern := sim.FailFree(n)
				if crashed > 0 {
					crashes := make(map[sim.PID]sim.Time, crashed)
					for i := 0; i < crashed; i++ {
						crashes[sim.PID(i)] = sim.Time(300 + 40*i)
					}
					pattern = sim.CrashPattern(n, crashes)
				}
				omegaF := fd.NewOmegaF(pattern, f, 150, 7)
				_, trace := runExtraction(t, pattern, omegaF, PhiOmegaF(n),
					sim.NewRandom(11), 80_000)
				assertUpsilonF(t, UpsilonF(n, f), pattern, trace)
			})
		}
	}
}

func TestExtractFromStableEvPerfect(t *testing.T) {
	// D = stable ◇P: a much stronger stable detector also reduces to Υ^f —
	// minimality does not care how strong D is.
	n := 4
	tests := map[string]sim.Pattern{
		"failfree": sim.FailFree(n),
		"crash2":   sim.CrashPattern(n, map[sim.PID]sim.Time{0: 250, 3: 450}),
	}
	for name, pattern := range tests {
		t.Run(name, func(t *testing.T) {
			evp := fd.NewStableEvPerfect(pattern, 120, 5)
			_, trace := runExtraction(t, pattern, evp, PhiStableEvPerfect(n),
				sim.NewRandom(9), 60_000)
			assertUpsilonF(t, Upsilon(n), pattern, trace)
		})
	}
}

func TestExtractBatchCountingPath(t *testing.T) {
	// φ with w(σ) > 0 exercises the Figure 3 batch machinery (line 15): the
	// output must still stabilize legally, and in failure-free runs it must
	// reach S (batches complete).
	n := 4
	pattern := sim.FailFree(n)
	for _, slack := range []int{1, 3, 10} {
		t.Run(fmt.Sprintf("w%d", slack), func(t *testing.T) {
			omega := fd.NewOmega(pattern, 100, 2)
			_, trace := runExtraction(t, pattern, omega, PhiOmegaSlack(n, slack),
				sim.RoundRobin(), 80_000)
			stable, _ := assertUpsilonF(t, Upsilon(n), pattern, trace)
			leader := omega.Value(0, 1<<40).(sim.PID)
			if want := sim.SetOf(leader).Complement(n); stable != want {
				t.Fatalf("stable %v, want %v", stable, want)
			}
		})
	}
}

func TestExtractCrashStallsBatches(t *testing.T) {
	// A process that crashes before the stabilized round's batches complete
	// freezes them; every correct process must then stay at Π — which is a
	// legal output precisely because someone crashed.
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{3: 5})
	omega := fd.NewOmega(pattern, 0, 4) // stable from the start
	_, trace := runExtraction(t, pattern, omega, PhiOmegaSlack(n, 2),
		sim.RoundRobin(), 60_000)
	stable, _ := assertUpsilonF(t, Upsilon(n), pattern, trace)
	if stable != sim.FullSet(n) {
		t.Fatalf("stalled batches should leave Π, got %v", stable)
	}
}

func TestExtractSlowStabilization(t *testing.T) {
	// Long noise period: rounds churn until D stabilizes, then the output
	// locks in.
	n := 4
	pattern := sim.FailFree(n)
	omega := fd.NewOmega(pattern, 5_000, 6)
	_, trace := runExtraction(t, pattern, omega, PhiOmega(n), sim.NewRandom(3), 120_000)
	_, from := assertUpsilonF(t, Upsilon(n), pattern, trace)
	if from < 1_000 {
		t.Fatalf("output stabilized at %d, before D could have (noise ends at step ~5000/(2n+3) per process)", from)
	}
}

func TestExtractStabilizationLagBounded(t *testing.T) {
	// The extraction overhead (output stabilization − detector
	// stabilization) should be modest: bounded by a few batch lengths.
	n := 4
	pattern := sim.FailFree(n)
	omega := fd.NewOmega(pattern, 500, 8)
	_, trace := runExtraction(t, pattern, omega, PhiOmega(n), sim.RoundRobin(), 100_000)
	_, from := assertUpsilonF(t, Upsilon(n), pattern, trace)
	if from > 20_000 {
		t.Fatalf("extraction lag too large: stabilized at %d for ts=500", from)
	}
}

func TestExtractFromOpaqueRangeDetector(t *testing.T) {
	// Section 3.2: detector ranges are unrestricted. The tagged Ω^f variant
	// outputs opaque strings; extraction must work unchanged through its
	// φ_D map (Corollary 9 is range-agnostic).
	n := 5
	patterns := map[string]sim.Pattern{
		"failfree": sim.FailFree(n),
		"crash":    sim.CrashPattern(n, map[sim.PID]sim.Time{1: 350}),
	}
	for name, pattern := range patterns {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				tagged := fd.NewTaggedOmegaF(pattern, n-1, 150, seed)
				_, trace := runExtraction(t, pattern, tagged, PhiTaggedOmegaF(n),
					sim.NewRandom(seed+33), 60_000)
				assertUpsilonF(t, Upsilon(n), pattern, trace)
			}
		})
	}
}

func TestTagSetRoundTrip(t *testing.T) {
	for _, s := range []sim.Set{sim.EmptySet, sim.SetOf(0), sim.SetOf(1, 3, 5), sim.FullSet(6)} {
		tag := fd.TagSet(s)
		got, err := fd.UntagSet(tag)
		if err != nil {
			t.Fatalf("UntagSet(%q): %v", tag, err)
		}
		if got != s {
			t.Fatalf("round trip %v → %q → %v", s, tag, got)
		}
	}
	if _, err := fd.UntagSet("bogus"); err == nil {
		t.Error("expected error for missing prefix")
	}
	if _, err := fd.UntagSet("excl:x1"); err == nil {
		t.Error("expected error for bad element")
	}
}

func TestExtractNilPhiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExtraction(3, fd.Constant(sim.PID(0)), nil)
}

func TestPhiCatalogue(t *testing.T) {
	n := 5
	if s, w := PhiOmega(n)(sim.PID(2)); s != sim.SetOf(2).Complement(n) || w != 0 {
		t.Errorf("PhiOmega = (%v, %d)", s, w)
	}
	l := sim.SetOf(0, 1, 2, 3)
	if s, w := PhiOmegaF(n)(l); s != sim.SetOf(4) || w != 0 {
		t.Errorf("PhiOmegaF = (%v, %d)", s, w)
	}
	if s, _ := PhiStableEvPerfect(n)(sim.SetOf(1)); s != sim.FullSet(n) {
		t.Errorf("PhiStableEvPerfect(non-empty) = %v", s)
	}
	if s, w := PhiStableEvPerfect(n)(sim.EmptySet); s != sim.SetOf(0).Complement(n) || w != 1 {
		t.Errorf("PhiStableEvPerfect(∅) = (%v, %d)", s, w)
	}
	if s, w := PhiOmegaSlack(n, 4)(sim.PID(0)); s != sim.SetOf(0).Complement(n) || w != 4 {
		t.Errorf("PhiOmegaSlack = (%v, %d)", s, w)
	}
}

func TestPhiTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PhiOmega(3)("not a pid")
}
