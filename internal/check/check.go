// Package check verifies problem specifications on run outcomes: the three
// k-set-agreement properties on decision reports (paper Section 5.1), and
// stabilization of emulated failure detector outputs in reduction runs.
package check

import (
	"fmt"

	"weakestfd/internal/sim"
)

// SetAgreement verifies a k-set-agreement outcome:
//
//	Termination: every correct process decided (the runner already enforces
//	             this by returning an error otherwise; here we re-check on
//	             the report),
//	Agreement:   at most k distinct values were decided,
//	Validity:    every decided value was proposed.
func SetAgreement(rep *sim.Report, pattern sim.Pattern, k int, proposals []sim.Value) error {
	for _, p := range pattern.Correct().Members() {
		if _, ok := rep.Decided[p]; !ok {
			return fmt.Errorf("check: termination violated: correct %v did not decide", p)
		}
	}
	decided := rep.DecidedValues()
	if len(decided) > k {
		return fmt.Errorf("check: agreement violated: %d > %d distinct decisions %v", len(decided), k, decided)
	}
	proposed := make(map[sim.Value]bool, len(proposals))
	for _, v := range proposals {
		proposed[v] = true
	}
	for p, v := range rep.Decided {
		if !proposed[v] {
			return fmt.Errorf("check: validity violated: %v decided unproposed value %d", p, v)
		}
	}
	return nil
}

// Consensus verifies a consensus outcome (1-set agreement).
func Consensus(rep *sim.Report, pattern sim.Pattern, proposals []sim.Value) error {
	return SetAgreement(rep, pattern, 1, proposals)
}

// OutputTrace records the evolution of per-process emulated detector
// outputs across a run, via a sampling function plugged into
// sim.Config.StopWhen (which the runner calls on quiescent shared state
// after every step).
type OutputTrace[T comparable] struct {
	n          int
	sample     func() []T
	last       []T
	lastChange []sim.Time
	sampled    bool
	final      sim.Time
}

// NewOutputTrace builds a trace over n per-process outputs read by sample.
func NewOutputTrace[T comparable](n int, sample func() []T) *OutputTrace[T] {
	return &OutputTrace[T]{
		n:          n,
		sample:     sample,
		last:       make([]T, n),
		lastChange: make([]sim.Time, n),
	}
}

// Observe samples the outputs at time t; wire it into StopWhen:
//
//	StopWhen: func(t sim.Time) bool { trace.Observe(t); return false }
func (o *OutputTrace[T]) Observe(t sim.Time) {
	cur := o.sample()
	for i := 0; i < o.n; i++ {
		if !o.sampled || cur[i] != o.last[i] {
			o.lastChange[i] = t
			o.last[i] = cur[i]
		}
	}
	o.sampled = true
	o.final = t
}

// Hook returns a StopWhen function that records the trace and never stops
// the run.
func (o *OutputTrace[T]) Hook() func(sim.Time) bool {
	return func(t sim.Time) bool {
		o.Observe(t)
		return false
	}
}

// Final returns the last sampled outputs.
func (o *OutputTrace[T]) Final() []T { return o.last }

// StableFrom returns the time after which none of the given processes'
// outputs changed, and the common final value; it errors if the outputs of
// those processes disagree at the end of the trace.
func (o *OutputTrace[T]) StableFrom(procs sim.Set) (T, sim.Time, error) {
	var zero T
	if !o.sampled {
		return zero, 0, fmt.Errorf("check: no samples recorded")
	}
	members := procs.Members()
	if len(members) == 0 {
		return zero, 0, fmt.Errorf("check: empty process set")
	}
	ref := o.last[members[0]]
	var from sim.Time
	for _, p := range members {
		if o.last[p] != ref {
			return zero, 0, fmt.Errorf("check: outputs disagree: %v has %v, %v has %v",
				members[0], ref, p, o.last[p])
		}
		if o.lastChange[p] > from {
			from = o.lastChange[p]
		}
	}
	return ref, from, nil
}

// Horizon returns the time of the last sample.
func (o *OutputTrace[T]) Horizon() sim.Time { return o.final }
