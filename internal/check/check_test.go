package check

import (
	"strings"
	"testing"

	"weakestfd/internal/sim"
)

func reportWith(decided map[sim.PID]sim.Value) *sim.Report {
	return &sim.Report{Decided: decided}
}

func TestSetAgreementOK(t *testing.T) {
	pattern := sim.CrashPattern(3, map[sim.PID]sim.Time{0: 5})
	rep := reportWith(map[sim.PID]sim.Value{1: 10, 2: 11})
	if err := SetAgreement(rep, pattern, 2, []sim.Value{10, 11, 12}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAgreementTermination(t *testing.T) {
	pattern := sim.FailFree(2)
	rep := reportWith(map[sim.PID]sim.Value{0: 10})
	err := SetAgreement(rep, pattern, 2, []sim.Value{10, 11})
	if err == nil || !strings.Contains(err.Error(), "termination") {
		t.Fatalf("err = %v", err)
	}
}

func TestSetAgreementAgreement(t *testing.T) {
	pattern := sim.FailFree(3)
	rep := reportWith(map[sim.PID]sim.Value{0: 10, 1: 11, 2: 12})
	err := SetAgreement(rep, pattern, 2, []sim.Value{10, 11, 12})
	if err == nil || !strings.Contains(err.Error(), "agreement") {
		t.Fatalf("err = %v", err)
	}
}

func TestSetAgreementValidity(t *testing.T) {
	pattern := sim.FailFree(1)
	rep := reportWith(map[sim.PID]sim.Value{0: 99})
	err := SetAgreement(rep, pattern, 1, []sim.Value{10})
	if err == nil || !strings.Contains(err.Error(), "validity") {
		t.Fatalf("err = %v", err)
	}
}

func TestConsensusIsOneSetAgreement(t *testing.T) {
	pattern := sim.FailFree(2)
	rep := reportWith(map[sim.PID]sim.Value{0: 10, 1: 11})
	if err := Consensus(rep, pattern, []sim.Value{10, 11}); err == nil {
		t.Fatal("two values should violate consensus")
	}
	rep2 := reportWith(map[sim.PID]sim.Value{0: 10, 1: 10})
	if err := Consensus(rep2, pattern, []sim.Value{10, 11}); err != nil {
		t.Fatal(err)
	}
}

func TestOutputTraceStability(t *testing.T) {
	vals := []int{1, 1}
	trace := NewOutputTrace[int](2, func() []int {
		out := make([]int, 2)
		copy(out, vals)
		return out
	})
	trace.Observe(1)
	trace.Observe(2)
	vals[0] = 5
	trace.Observe(3)
	vals[0] = 1
	trace.Observe(4)
	trace.Observe(5)
	v, from, err := trace.StableFrom(sim.SetOf(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("stable = %d", v)
	}
	if from != 4 {
		t.Errorf("stable from %d, want 4 (last change of p1)", from)
	}
	if trace.Horizon() != 5 {
		t.Errorf("horizon = %d", trace.Horizon())
	}
	if got := trace.Final(); got[0] != 1 || got[1] != 1 {
		t.Errorf("final = %v", got)
	}
}

func TestOutputTraceDisagreement(t *testing.T) {
	trace := NewOutputTrace[int](2, func() []int { return []int{1, 2} })
	trace.Observe(1)
	if _, _, err := trace.StableFrom(sim.SetOf(0, 1)); err == nil {
		t.Fatal("expected disagreement error")
	}
	// Restricting to one process succeeds.
	if v, _, err := trace.StableFrom(sim.SetOf(1)); err != nil || v != 2 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestOutputTraceEmpty(t *testing.T) {
	trace := NewOutputTrace[int](1, func() []int { return []int{0} })
	if _, _, err := trace.StableFrom(sim.SetOf(0)); err == nil {
		t.Fatal("expected error with no samples")
	}
	trace.Observe(1)
	if _, _, err := trace.StableFrom(sim.EmptySet); err == nil {
		t.Fatal("expected error with empty process set")
	}
}

func TestOutputTraceHookNeverStops(t *testing.T) {
	trace := NewOutputTrace[int](1, func() []int { return []int{7} })
	hook := trace.Hook()
	for i := sim.Time(1); i <= 3; i++ {
		if hook(i) {
			t.Fatal("hook must not stop the run")
		}
	}
	if v, _, err := trace.StableFrom(sim.SetOf(0)); err != nil || v != 7 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}
