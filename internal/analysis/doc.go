// Package analysis is the home of fdlint: a go/analysis suite that turns
// the explorer's soundness conventions into machine-checked invariants.
//
// Every headline number the explorer produces — "violation-free over the
// full n≤3 suite", "19,637 runs instead of 273,092", "the mutant is killed
// at SwitchBudget 1" — rests on three properties that no test can establish,
// because they are properties of the *code*, not of any particular run:
//
//  1. Completeness of the dependency relation. DPOR (classic and source)
//     prunes a schedule only when every pair of reordered steps is
//     independent, and independence is computed from the access sets that
//     machines report through sim.AccessLog. One uninstrumented
//     shared-object access makes the relation under-approximate real
//     conflicts, and the pruning silently drops reachable schedules.
//  2. Seam-routed detector observation. Unstable-history exploration is
//     sound because queries and output flips are conflicting accesses of a
//     virtual history object (internal/sim/query.go). A query that
//     bypasses the seam is invisible to that conflict relation.
//  3. Determinism of steps and hot paths. Replayable artifacts,
//     cross-engine differential equality and state-hash joins all assume a
//     run is a pure function of (config, schedule, seeds).
//
// The four analyzers map onto those properties:
//
//   - accesscheck (invariant 1): in machine-world code, shared-object state
//     may only be touched through the AccessLog-taking Direct* accessors of
//     internal/memory; raw field access and the Proc-based or Inspect-style
//     accessors are flagged.
//   - seamcheck (invariant 2): detector output may only be observed via
//     fd.Query, fd.QueryAt or sim.QuerySeam.Query; direct Oracle.Value
//     calls are flagged outside internal/fd.
//   - determinism (invariant 3): in Step/Init bodies, machine-world helpers
//     and the internal/explore + internal/sim hot paths, time.Now,
//     math/rand, map ranging, select-with-default and go statements are
//     flagged.
//   - enginecase (meta-invariant): switches over explore.Engine must list
//     every engine constant, so a future engine cannot silently inherit
//     another engine's dispatch arm and void the differential-testing story.
//
// # Suppression policy
//
// A finding is silenced only by an audited exception:
//
//	//lint:fdlint <analyzer> -- <justification>
//
// on the flagged line, the line above it, or (file-wide) on or above the
// package clause. The justification must name the mechanism that replaces
// the static guarantee — e.g. the goroutine engine's step gate enforcing
// atomicity dynamically, or a history transformer being oracle *plumbing*
// whose output is itself observed through the seam. Suppressions without a
// justification fail code review, not the build: the directive's " -- "
// tail is deliberately free text, and `git grep 'lint:fdlint'` is the audit
// surface. See internal/analysis/suppress.
//
// # Running
//
// cmd/fdlint is a unitchecker binary; CI (and the smoke test in
// smoke_test.go) run it over the whole repository as
//
//	go build -o fdlint ./cmd/fdlint
//	go vet -vettool=$PWD/fdlint ./...
//
// Each analyzer also has an analysistest-style suite under its testdata/src
// tree, driven by the loader in internal/analysis/analysistest (the
// framework subset vendored in internal/xtools has no go/packages, so the
// loader resolves testdata stubs by path suffix and the stdlib from source).
package analysis
