// Package a exercises determinism's machine-world scope: Step/Init bodies
// are checked in every package, while plain helpers in unscoped packages
// are not.
package a

import (
	"time"

	"weakestfd/internal/sim"
)

type mach struct {
	seen map[sim.PID]sim.Value
	dec  sim.Value
}

func (m *mach) Init(ctx sim.MachineContext) {
	m.seen = map[sim.PID]sim.Value{}
}

func (m *mach) Step(t sim.Time) sim.MachineStatus {
	if time.Now().Unix() > 0 { // want `time.Now in deterministic scope`
		m.seen[0] = 1
	}
	for _, v := range m.seen { // want `map iteration order is nondeterministic`
		m.dec = v
	}
	return sim.MachineDecided
}

func (m *mach) Decision() sim.Value { return m.dec }

// wallClock is not machine-world and package a is not a scoped package:
// nothing is flagged here.
func wallClock() int64 {
	m := map[int]int{1: 1}
	for k := range m {
		_ = k
	}
	return time.Now().Unix()
}
