// Package explore stubs the explorer's hot paths: every function in a
// package whose path ends internal/explore is in determinism's scope.
package explore

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic scope`
}

func noise() int {
	return rand.Intn(3) // want `math/rand.Intn in deterministic scope`
}

func pick(m map[int]string) string {
	for _, v := range m { // want `map iteration order is nondeterministic`
		return v
	}
	return ""
}

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want `go statement in deterministic scope`
	select {
	case <-ch:
	default: // want `select with default branches on scheduler state`
	}
}

// sortedPick shows the audited fix pattern: the collection loop is
// order-insensitive (suppressed with justification), and every consumer
// iterates the sorted slice.
func sortedPick(m map[int]string) string {
	keys := make([]int, 0, len(m))
	//lint:fdlint determinism -- order-insensitive key collection; consumers iterate the sorted slice
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if len(keys) == 0 {
		return ""
	}
	return m[keys[0]]
}

// elapsed uses time.Since on a caller-supplied start: wall-clock metadata
// is fine as long as time.Now itself sits outside the deterministic scope
// or under an audited suppression.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
