// Package determinism defines the fdlint analyzer that keeps machine steps
// and the explorer's hot paths replayable: no wall-clock time, no
// math/rand, no map-iteration order, no racing select, no goroutines.
//
// Everything the explorer produces is a claim about *re-executable* runs:
// counterexample artifacts replay schedules step for step (fdlab replay),
// cross-engine differential tests demand byte-identical Reports, and the
// state-hash join layer identifies runs by fingerprints of their shared
// state. All three break if a Step/Init body — or the runner/explorer code
// driving it — consults a nondeterministic source:
//
//   - time.Now / runtime wall clock: step behaviour stops being a function
//     of (schedule, config); replay diverges.
//   - math/rand (v1 or v2): unseeded global state; even seeded, it is
//     process-global and order-dependent across configurations exploring
//     concurrently. Deterministic noise must come from fd.Mix.
//   - range over a map: iteration order is randomized per run; any value
//     or ordering derived from it perturbs fingerprints and violation keys.
//   - select with a default clause: turns channel readiness — scheduler
//     state — into a branch.
//   - go statements: concurrency inside a step or inside the single-threaded
//     machine runner destroys the atomicity the model charges per step.
//
// Scope: every machine-world function (simtypes.Scope) in any package, plus
// every function in the packages listed by -packages (default
// internal/explore, internal/sim and internal/fleet — the hot paths and the
// multi-process coordinator whose merged results must be schedule-timing
// independent). The legacy goroutine engine files in internal/sim carry
// file-wide //lint:fdlint determinism suppressions: their goroutines and
// channel handshakes are the engine's mechanism, and replay determinism
// there is enforced dynamically by the step gate. internal/fleet's audited
// exceptions are line-level: the worker/reader goroutines that are the
// process fan-out itself, and the coordinator's wall-clock summary stamp —
// checkpoint writing and result merging stay in scope unconditionally.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"weakestfd/internal/analysis/simtypes"
	"weakestfd/internal/analysis/suppress"
	"weakestfd/internal/xtools/go/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "machine steps and explorer hot paths must be deterministic: no time.Now, math/rand, map ranging, select-default or go statements",
	URL:  "weakestfd/internal/analysis",
	Run:  run,
}

// packagesFlag lists the package-path suffixes whose every function is in
// scope (machine-world functions are in scope everywhere regardless).
var packagesFlag = "internal/explore,internal/sim,internal/fleet"

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages",
		packagesFlag, "comma-separated package path suffixes fully in scope")
}

func run(pass *analysis.Pass) (any, error) {
	if strings.Contains(pass.Pkg.Path(), "internal/xtools") {
		return nil, nil
	}
	pkgInScope := false
	for _, suf := range strings.Split(packagesFlag, ",") {
		if suf != "" && simtypes.PathHasSuffix(pass.Pkg.Path(), strings.TrimSpace(suf)) {
			pkgInScope = true
			break
		}
	}
	scope := simtypes.NewScope(pass)
	sup := suppress.New(pass)
	simtypes.NonTestFuncs(pass, func(decl *ast.FuncDecl) {
		if !pkgInScope && !scope.MachineFunc(decl) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, sup, n)
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						sup.Report(pass, n.Range,
							"map iteration order is nondeterministic: collect and sort keys (or iterate a slice) so replay, fingerprints and violation keys stay stable")
					}
				}
			case *ast.SelectStmt:
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						sup.Report(pass, cc.Pos(),
							"select with default branches on scheduler state: deterministic code must not observe channel readiness")
					}
				}
			case *ast.GoStmt:
				sup.Report(pass, n.Pos(),
					"go statement in deterministic scope: machine steps and the machine runner are single-threaded by construction")
			}
			return true
		})
	})
	return nil, nil
}

// checkCall flags calls into the forbidden stdlib surfaces: time.Now and
// anything from math/rand or math/rand/v2.
func checkCall(pass *analysis.Pass, sup *suppress.Index, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" {
			sup.Report(pass, sel.Sel.Pos(),
				"time.Now in deterministic scope: step behaviour must be a pure function of (schedule, config); use sim.Time from the runner")
		}
	case "math/rand", "math/rand/v2":
		sup.Report(pass, sel.Sel.Pos(),
			"%s.%s in deterministic scope: use the pure fd.Mix noise source so runs are functions of their seeds", obj.Pkg().Path(), obj.Name())
	}
}
