package determinism_test

import (
	"testing"

	"weakestfd/internal/analysis/analysistest"
	"weakestfd/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "weakestfd/internal/explore", "a")
}
