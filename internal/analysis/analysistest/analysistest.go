// Package analysistest drives the fdlint analyzers over self-contained
// testdata packages, mirroring golang.org/x/tools/go/analysis/analysistest:
// expectations are `// want "regexp"` comments, testdata lives in a
// GOPATH-style testdata/src tree, and stub copies of the simulator packages
// (weakestfd/internal/sim, .../memory, ...) sit in that tree under their
// real path *suffixes* so the analyzers' suffix-based type resolution finds
// them.
//
// It exists because the x/tools subset vendored in internal/xtools omits
// go/packages (it would drag in half the module ecosystem); instead, this
// loader resolves imports by hand: a path with a directory under
// testdata/src is parsed and type-checked from that directory, and anything
// else (the stdlib) is type-checked from $GOROOT source via the standard
// library's "source" importer. Analyzers under test must be self-contained
// (no Requires, no facts) — true of all four fdlint analyzers.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"weakestfd/internal/xtools/go/analysis"
)

// Run loads each named package from testdata/src/<path>, applies a to it,
// and checks the reported diagnostics against the // want comments in the
// package's files.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	if len(a.Requires) > 0 || len(a.FactTypes) > 0 {
		t.Fatalf("analysistest: analyzer %s uses Requires/FactTypes, which this loader does not support", a.Name)
	}
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		t.Run(path, func(t *testing.T) {
			pkg, err := ld.load(path)
			if err != nil {
				t.Fatalf("loading %s: %v", path, err)
			}
			diags := runAnalyzer(t, a, ld, pkg)
			checkExpectations(t, a, ld, pkg, diags)
		})
	}
}

// pkgInfo is one loaded testdata package: syntax, types and type info.
type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves imports: testdata/src first, stdlib from source second.
type loader struct {
	srcDir string
	fset   *token.FileSet
	loaded map[string]*pkgInfo
	std    types.ImporterFrom
}

func newLoader(srcDir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcDir: srcDir,
		fset:   fset,
		loaded: map[string]*pkgInfo{},
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer for the type-checker's use.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.srcDir, filepath.FromSlash(path)); isDir(dir) {
		pi, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return ld.std.ImportFrom(path, "", 0)
}

// load parses and type-checks testdata/src/<path>, memoizing the result.
func (ld *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := ld.loaded[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		Instances:    map[*ast.Ident]types.Instance{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	ld.loaded[path] = pi
	return pi, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// runAnalyzer applies a to the loaded package and returns the diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, ld *loader, pi *pkgInfo) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      pi.files,
		Pkg:        pi.pkg,
		TypesInfo:  pi.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s failed: %v", a.Name, err)
	}
	return diags
}

// expectation is one `// want "re"` clause: a position and a pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkExpectations cross-checks diagnostics against // want comments:
// every diagnostic must be expected, every expectation must fire.
func checkExpectations(t *testing.T, a *analysis.Analyzer, ld *loader, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := ld.fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, a.Name, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		return wants[i].file < wants[j].file || (wants[i].file == wants[j].file && wants[i].line < wants[j].line)
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted extracts the double-quoted or backquoted tokens of a want
// clause ("re1" "re2" → two tokens), preserving the quotes for Unquote.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		case '`':
			j := i + 1
			for j < len(s) && s[j] != '`' {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		}
	}
	return out
}
