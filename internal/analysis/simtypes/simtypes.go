// Package simtypes resolves the simulator's types from a type-checked
// package, so the fdlint analyzers can recognize machine-world code no
// matter which module path it lives under (the real repo, or an
// analysistest stub tree laid out under testdata/src/weakestfd/...).
// All lookups are by package-path suffix ("internal/sim", "internal/memory",
// ...), never by exact module path.
package simtypes

import (
	"go/ast"
	"go/types"
	"strings"

	"weakestfd/internal/xtools/go/analysis"
)

// PathHasSuffix reports whether package path ends with the given
// slash-separated suffix (or equals it).
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PkgWithSuffix returns pkg itself or one of its direct imports whose path
// ends in suffix, or nil.
func PkgWithSuffix(pkg *types.Package, suffix string) *types.Package {
	if PathHasSuffix(pkg.Path(), suffix) {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if PathHasSuffix(imp.Path(), suffix) {
			return imp
		}
	}
	return nil
}

// IsNamed reports whether t — after stripping one pointer level and any
// aliases — is the named type pkgSuffix.name.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// Scope classifies functions as machine-world code: the code whose
// shared-object accesses and determinism the explorer's soundness argument
// quantifies over.
type Scope struct {
	pass        *analysis.Pass
	stepMachine *types.Interface // sim.StepMachine, nil if sim is not imported
}

// NewScope builds the classifier for one pass.
func NewScope(pass *analysis.Pass) *Scope {
	s := &Scope{pass: pass}
	if sim := PkgWithSuffix(pass.Pkg, "internal/sim"); sim != nil {
		if obj := sim.Scope().Lookup("StepMachine"); obj != nil {
			s.stepMachine, _ = obj.Type().Underlying().(*types.Interface)
		}
	}
	return s
}

// implementsStepMachine reports whether t or *t satisfies sim.StepMachine.
func (s *Scope) implementsStepMachine(t types.Type) bool {
	if s.stepMachine == nil || t == nil {
		return false
	}
	if types.Implements(t, s.stepMachine) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), s.stepMachine)
	}
	return false
}

// machineWorldType reports whether t is one of the types whose presence in a
// signature marks machine-world code: the instrumentation carriers
// (*sim.AccessLog, *sim.QuerySeam, sim.MachineContext) and the machine
// runner's inputs (sim.StepMachine, sim.MachineTaskSet, []sim.StepMachine,
// []sim.MachineTaskSet).
func (s *Scope) machineWorldType(t types.Type) bool {
	if sl, ok := types.Unalias(t).(*types.Slice); ok {
		t = sl.Elem()
	}
	for _, name := range [...]string{"AccessLog", "QuerySeam", "MachineContext", "StepMachine", "MachineTaskSet"} {
		if IsNamed(t, "internal/sim", name) {
			return true
		}
	}
	return false
}

// MachineFunc reports whether decl is machine-world code:
//
//   - a method on a type implementing sim.StepMachine (the Step/Init/Decision
//     bodies and every helper method on the same automaton),
//   - a method on a struct carrying a *sim.AccessLog or *sim.QuerySeam field
//     (converge.Machine and machine-embedded helpers bind the run's
//     instrumentation that way), or
//   - a function whose parameters mention a machine-world type (the machine
//     runner itself and log-threading helpers).
func (s *Scope) MachineFunc(decl *ast.FuncDecl) bool {
	info := s.pass.TypesInfo
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		rt := info.TypeOf(decl.Recv.List[0].Type)
		if s.implementsStepMachine(rt) {
			return true
		}
		base := rt
		if p, ok := base.(*types.Pointer); ok {
			base = p.Elem()
		}
		if st, ok := types.Unalias(base).Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				ft := st.Field(i).Type()
				if IsNamed(ft, "internal/sim", "AccessLog") || IsNamed(ft, "internal/sim", "QuerySeam") {
					return true
				}
			}
		}
	}
	if decl.Type.Params != nil {
		for _, fld := range decl.Type.Params.List {
			if s.machineWorldType(info.TypeOf(fld.Type)) {
				return true
			}
		}
	}
	return false
}

// NonTestFuncs walks every function declaration of the pass that is not in a
// _test.go file, invoking fn with the declaration. Analyzers use it as their
// traversal root: generated test harness files and test helpers are outside
// every fdlint invariant's scope.
func NonTestFuncs(pass *analysis.Pass, fn func(*ast.FuncDecl)) {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
