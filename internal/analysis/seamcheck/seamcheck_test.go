package seamcheck_test

import (
	"testing"

	"weakestfd/internal/analysis/analysistest"
	"weakestfd/internal/analysis/seamcheck"
)

func TestSeamCheck(t *testing.T) {
	analysistest.Run(t, seamcheck.Analyzer, "b")
}
