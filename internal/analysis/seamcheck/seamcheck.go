// Package seamcheck defines the fdlint analyzer that keeps detector queries
// first-class accesses: outside internal/fd, failure detector output may
// only be observed through the query seam.
//
// PR 5's soundness argument (internal/sim/query.go) models each detector
// history as a virtual shared object: queries are recorded reads, output
// flips are recorded writes, and a boundary-guard read at T−1 orders every
// step against the flip at T. DPOR's independence relation is complete only
// if *every* observation of detector output actually routes through that
// seam — fd.Query (goroutine world), fd.QueryAt / sim.QuerySeam.Query
// (machine world). A direct h.Value(p, t) call on a history is a read the
// access log never sees: schedules that disagree on what the query returned
// get merged into one equivalence class, and "violation-free" stops meaning
// anything for unstable-history sweeps.
//
// This analyzer flags every call to the Value method of a type implementing
// sim.Oracle, in any package outside internal/fd (which owns Query/QueryAt
// and the history implementations) and excluding _test.go files. The
// audited exceptions — the seam's own oracle evaluation in
// sim.QuerySeam.Query/OnStep, and the local history *transformers* in
// internal/core that define one oracle pointwise in terms of another —
// carry //lint:fdlint seamcheck suppressions with inline justification.
package seamcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"weakestfd/internal/analysis/simtypes"
	"weakestfd/internal/analysis/suppress"
	"weakestfd/internal/xtools/go/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seamcheck",
	Doc:  "detector output must be observed through fd.Query/fd.QueryAt/sim.QuerySeam, never Oracle.Value directly",
	URL:  "weakestfd/internal/analysis",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if simtypes.PathHasSuffix(pass.Pkg.Path(), "internal/fd") ||
		strings.Contains(pass.Pkg.Path(), "internal/xtools") {
		return nil, nil
	}
	sim := simtypes.PkgWithSuffix(pass.Pkg, "internal/sim")
	if sim == nil {
		return nil, nil
	}
	oracleObj := sim.Scope().Lookup("Oracle")
	if oracleObj == nil {
		return nil, nil
	}
	oracle, ok := oracleObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil, nil
	}
	sup := suppress.New(pass)
	simtypes.NonTestFuncs(pass, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Value" {
				return true
			}
			fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() == nil {
				return true
			}
			recv := pass.TypesInfo.TypeOf(sel.X)
			if recv == nil || !types.Implements(recv, oracle) {
				return true
			}
			sup.Report(pass, sel.Sel.Pos(),
				"detector output observed via Oracle.Value: queries must route through fd.Query/fd.QueryAt/sim.QuerySeam so the access log records the read (unstable-history DPOR soundness)")
			return true
		})
	})
	return nil, nil
}
