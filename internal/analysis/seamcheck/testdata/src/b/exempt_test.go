package b

import "weakestfd/internal/sim"

// Test files are exempt: history assertions evaluate oracles directly.
func assertOutput(h sim.Oracle, p sim.PID, t sim.Time) any {
	return h.Value(p, t)
}
