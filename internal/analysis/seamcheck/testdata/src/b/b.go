// Package b exercises seamcheck: detector output may only be observed
// through the query seam, never via a direct Oracle.Value call.
package b

import "weakestfd/internal/sim"

// leader is a concrete oracle (a stable Ω history).
type leader struct{ l sim.PID }

func (h *leader) Value(p sim.PID, t sim.Time) any { return h.l }

func observeInterface(h sim.Oracle, p sim.PID, t sim.Time) any {
	return h.Value(p, t) // want `detector output observed via Oracle.Value`
}

func observeConcrete(h *leader, p sim.PID, t sim.Time) any {
	return h.Value(p, t) // want `detector output observed via Oracle.Value`
}

// viaSeam is the sanctioned machine-world path: the seam records the read.
func viaSeam(q *sim.QuerySeam, h sim.Oracle, p sim.PID, t sim.Time) any {
	return q.Query(h, p, t)
}

// notOracle has a Value method with the wrong shape: not a detector.
type notOracle struct{}

func (notOracle) Value() int { return 0 }

func fine(n notOracle) int { return n.Value() }

// audited carries the suppression an oracle transformer would: it defines
// one history pointwise in terms of another, and its own output is only
// ever observed through the seam.
func audited(h sim.Oracle, p sim.PID, t sim.Time) any {
	//lint:fdlint seamcheck -- history transformer: plumbing, output re-observed through the seam
	return h.Value(p, t)
}
