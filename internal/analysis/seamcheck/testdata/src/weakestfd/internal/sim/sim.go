// Package sim is a minimal stub of the real weakestfd/internal/sim: just
// the types the accesscheck analyzer resolves by path suffix.
package sim

type (
	PID           int
	Time          int64
	Value         int64
	MachineStatus uint8
	ObjID         int
	AccessKind    uint8
)

const (
	MachineRunning MachineStatus = iota
	MachineDecided
	MachineHalted
)

const (
	AccessRead AccessKind = iota
	AccessWrite
)

type AccessLog struct{}

func (l *AccessLog) Intern(name string) ObjID      { return 0 }
func (l *AccessLog) Record(id ObjID, k AccessKind) {}

type Oracle interface{ Value(p PID, t Time) any }

type QuerySeam struct{}

func (q *QuerySeam) Query(h Oracle, p PID, t Time) any { return nil }

type MachineContext struct {
	ID      PID
	N       int
	Log     *AccessLog
	Queries *QuerySeam
}

type StepMachine interface {
	Init(ctx MachineContext)
	Step(t Time) MachineStatus
	Decision() Value
}
