// Package suppress implements fdlint's audited-exception mechanism: the
// //lint:fdlint comment directive.
//
// Every fdlint analyzer enforces an invariant the explorer's soundness
// argument depends on, so findings may not be silenced casually: a
// suppression is an *audited exception*, and the directive format forces the
// audit trail into the source:
//
//	//lint:fdlint <analyzer>[,<analyzer>...] -- <justification>
//
// placed either on the flagged line itself (trailing comment), on the line
// immediately above it, or — for whole-file exemptions such as the legacy
// goroutine engine — on or above the file's package clause. The
// justification after " -- " is free text; by policy it must say which
// dynamic mechanism or review argument replaces the static guarantee
// (see internal/analysis/doc.go for the suppression policy).
package suppress

import (
	"go/token"
	"strings"

	"weakestfd/internal/xtools/go/analysis"
)

// prefix is the directive marker. The "lint:" namespace keeps gofmt from
// reformatting the comment and mirrors staticcheck's //lint:ignore.
const prefix = "//lint:fdlint"

// fileIndex records one file's directives: the analyzers exempted file-wide
// and the analyzers exempted per directive line.
type fileIndex struct {
	fileWide map[string]bool
	byLine   map[int]map[string]bool
}

// Index holds the parsed directives of one package pass.
type Index struct {
	fset  *token.FileSet
	files map[string]*fileIndex
}

// New parses every //lint:fdlint directive in the pass's files. Directives
// on or above the package clause apply to the whole file; any other
// directive applies to its own line and the line below it.
func New(pass *analysis.Pass) *Index {
	idx := &Index{fset: pass.Fset, files: make(map[string]*fileIndex)}
	for _, f := range pass.Files {
		pkgLine := idx.fset.Position(f.Package).Line
		var fi *fileIndex
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parse(c.Text)
				if !ok {
					continue
				}
				if fi == nil {
					fi = &fileIndex{fileWide: map[string]bool{}, byLine: map[int]map[string]bool{}}
					idx.files[idx.fset.Position(f.Package).Filename] = fi
				}
				line := idx.fset.Position(c.Pos()).Line
				if line <= pkgLine {
					for _, n := range names {
						fi.fileWide[n] = true
					}
					continue
				}
				m := fi.byLine[line]
				if m == nil {
					m = map[string]bool{}
					fi.byLine[line] = m
				}
				for _, n := range names {
					m[n] = true
				}
			}
		}
	}
	return idx
}

// parse extracts the analyzer names from one comment text, reporting whether
// it is a directive at all. The justification after " -- " is ignored here;
// it exists for the human auditor.
func parse(text string) ([]string, bool) {
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //lint:fdlintfoo
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' }) {
		names = append(names, f)
	}
	return names, len(names) > 0
}

// Suppressed reports whether a finding of the named analyzer at pos is
// covered by a directive.
func (idx *Index) Suppressed(name string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	fi := idx.files[p.Filename]
	if fi == nil {
		return false
	}
	if fi.fileWide[name] {
		return true
	}
	return fi.byLine[p.Line][name] || fi.byLine[p.Line-1][name]
}

// Report emits a diagnostic through pass unless a directive suppresses it.
func (idx *Index) Report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if idx.Suppressed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}
