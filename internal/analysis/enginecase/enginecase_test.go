package enginecase_test

import (
	"testing"

	"weakestfd/internal/analysis/analysistest"
	"weakestfd/internal/analysis/enginecase"
)

func TestEngineCase(t *testing.T) {
	analysistest.Run(t, enginecase.Analyzer, "weakestfd/internal/explore", "c")
}
