// Package explore stubs the explorer's Engine enum for the enginecase
// analyzer: three engines today, and every switch must name all of them.
package explore

type Engine uint8

const (
	EngineSource Engine = iota
	EngineDPOR
	EngineEnum
)

// Label is exhaustive with a panic default: the sanctioned shape.
func Label(e Engine) string {
	switch e {
	case EngineSource:
		return "source"
	case EngineDPOR:
		return "classic"
	case EngineEnum:
		return "legacy"
	default:
		panic("unknown engine")
	}
}

// stale misses the newest engine; the default arm would silently absorb it.
func stale(e Engine) string {
	switch e { // want `switch over explore.Engine is not exhaustive: missing EngineEnum`
	case EngineSource:
		return "source"
	case EngineDPOR:
		return "classic"
	default:
		return "source"
	}
}
