// Package c exercises enginecase from a consumer package: dispatch sites
// outside internal/explore are held to the same exhaustiveness rule.
package c

import "weakestfd/internal/explore"

func dispatch(e explore.Engine) int {
	switch e { // want `switch over explore.Engine is not exhaustive: missing EngineDPOR, EngineEnum`
	case explore.EngineSource:
		return 0
	}
	return -1
}

func full(e explore.Engine) int {
	switch e {
	case explore.EngineSource, explore.EngineDPOR:
		return 0
	case explore.EngineEnum:
		return 1
	default:
		panic("unknown engine")
	}
}

// otherSwitches over non-Engine types are never enginecase's business.
func otherSwitches(n int, s string) int {
	switch n {
	case 1:
		return 1
	}
	switch s {
	case "x":
		return 2
	}
	switch {
	case n > 3:
		return 3
	}
	return 0
}

func audited(e explore.Engine) int {
	//lint:fdlint enginecase -- prototype dispatcher, unreachable from sweeps
	switch e {
	case explore.EngineSource:
		return 0
	}
	return -1
}
