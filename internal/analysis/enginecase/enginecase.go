// Package enginecase defines the fdlint analyzer that keeps explore.Engine
// switches exhaustive.
//
// The explorer dispatches on explore.Engine in several places: run
// execution (exploreConfig), labelling, CLI parsing. The engines are
// deliberately kept differentially comparable — the clean-suite violation
// sets of source-DPOR, classic DPOR and the block enumerator must be
// identical — so a switch that silently routes an unknown engine into one
// of the existing arms (via default, or by falling off the end) would let a
// future fourth engine inherit another engine's code path without anyone
// noticing: sweeps would run, report "violation-free", and test a different
// algorithm than claimed.
//
// The rule: every switch statement whose tag has type explore.Engine must
// have an explicit case for every declared constant of that type. A default
// clause is allowed *in addition* (as a panic guard for corrupted values)
// but never substitutes for a missing enumerator.
package enginecase

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"weakestfd/internal/analysis/simtypes"
	"weakestfd/internal/analysis/suppress"
	"weakestfd/internal/xtools/go/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "enginecase",
	Doc:  "switches over explore.Engine must cover every engine constant explicitly",
	URL:  "weakestfd/internal/analysis",
	Run:  run,
}

// enumFlag names the enum type as <pkg path suffix>.<type name>.
var enumFlag = "internal/explore.Engine"

func init() {
	Analyzer.Flags.StringVar(&enumFlag, "enum", enumFlag,
		"enum type to enforce exhaustiveness for, as pkgPathSuffix.TypeName")
}

func run(pass *analysis.Pass) (any, error) {
	if strings.Contains(pass.Pkg.Path(), "internal/xtools") {
		return nil, nil
	}
	dot := strings.LastIndex(enumFlag, ".")
	if dot < 0 {
		return nil, nil
	}
	pkgSuffix, typeName := enumFlag[:dot], enumFlag[dot+1:]
	sup := suppress.New(pass)
	simtypes.NonTestFuncs(pass, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypesInfo.TypeOf(sw.Tag)
			if tagType == nil || !simtypes.IsNamed(tagType, pkgSuffix, typeName) {
				return true
			}
			named := types.Unalias(tagType).(*types.Named)
			missing := missingConstants(pass, named, sw)
			if len(missing) > 0 {
				sup.Report(pass, sw.Switch,
					"switch over %s.%s is not exhaustive: missing %s (an unlisted engine must fail loudly, not inherit another engine's arm)",
					named.Obj().Pkg().Name(), typeName, strings.Join(missing, ", "))
			}
			return true
		})
	})
	return nil, nil
}

// missingConstants returns the names of declared constants of typ (in its
// defining package's scope) whose values no case clause of sw covers.
func missingConstants(pass *analysis.Pass, typ *types.Named, sw *ast.SwitchStmt) []string {
	covered := map[string]bool{} // by exact constant value
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	scope := typ.Obj().Pkg().Scope()
	var missing []string
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), typ) {
			continue
		}
		if !covered[c.Val().ExactString()] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}
