// Package analysis_test holds the end-to-end smoke test for the fdlint
// vettool: the binary must build and the real repository must vet clean
// under it. The per-analyzer behaviour is covered by the analysistest
// suites next to each analyzer; this test pins the wiring — unitchecker
// registration, flag plumbing, suppression parsing — against the actual
// module.
package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestFDLintCleanOnRepo builds cmd/fdlint and runs it over the whole module
// via the vet vettool protocol. Any finding not carrying an audited
// //lint:fdlint suppression fails the build — which is exactly the contract
// CI enforces.
func TestFDLintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module twice; skipped under -short")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "fdlint")

	build := exec.Command("go", "build", "-o", tool, "./cmd/fdlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building fdlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("fdlint reported findings on the repo:\n%s", out)
	}
}
