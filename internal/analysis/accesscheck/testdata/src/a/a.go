// Package a exercises accesscheck: machine-world code must touch shared
// memory only through the AccessLog-taking Direct* accessors.
package a

import (
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

type mach struct {
	r   *memory.Register[int]
	arr *memory.Array[int]
	log *sim.AccessLog
	dec sim.Value
}

func (m *mach) Init(ctx sim.MachineContext) { m.log = ctx.Log }

func (m *mach) Step(t sim.Time) sim.MachineStatus {
	v := m.r.DirectRead(m.log) // instrumented: fine
	_ = m.r.Inspect()          // want `memory.Inspect bypasses the AccessLog-instrumented Direct\* accessors`
	_ = m.r.Read(nil)          // want `memory.Read bypasses the AccessLog-instrumented Direct\* accessors`
	_ = m.arr.Collect(nil)     // want `memory.Collect bypasses the AccessLog-instrumented Direct\* accessors`
	_ = m.r.V                  // want `raw field access to memory.V`
	m.r.DirectWrite(m.log, v+1)
	_ = m.arr.N()                     // shape metadata: fine
	_ = m.arr.At(0).DirectRead(m.log) // navigation + instrumented access: fine
	//lint:fdlint accesscheck -- audited exception exercising the suppression path
	_ = m.r.Inspect()
	var o memory.Opt[int]
	_ = o.V // Opt is a value type, not shared state: fine
	m.dec = sim.Value(v)
	return sim.MachineDecided
}

func (m *mach) Decision() sim.Value { return m.dec }

// helper carries the run's access log, so it is machine-world code too.
func helper(l *sim.AccessLog, r *memory.Register[int]) int {
	return r.Inspect() // want `memory.Inspect bypasses the AccessLog-instrumented Direct\* accessors`
}

// postRunCheck is not machine-world: Inspect is the documented accessor for
// schedules, stop predicates and post-run assertions.
func postRunCheck(r *memory.Register[int]) int {
	return r.Inspect()
}
