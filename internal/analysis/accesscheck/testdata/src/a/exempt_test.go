package a

import (
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// Test files are exempt: assertions legitimately inspect raw state.
func assertState(l *sim.AccessLog, r *memory.Register[int]) int {
	return r.Inspect()
}
