// Package memory is a minimal stub of the real weakestfd/internal/memory.
// Unlike the real package it exports a state field (V) so the raw-field
// positive case is expressible from another package; the real types keep
// state unexported as defense in depth, and accesscheck is the layer that
// catches in-package style leaks if that ever changes.
package memory

import "weakestfd/internal/sim"

type Register[T any] struct {
	V T // shared-object state; exported only in this stub
}

func NewRegister[T any](name string) *Register[T] { return &Register[T]{} }

func (r *Register[T]) DirectRead(l *sim.AccessLog) T     { return r.V }
func (r *Register[T]) DirectWrite(l *sim.AccessLog, v T) { r.V = v }
func (r *Register[T]) Inspect() T                        { return r.V }
func (r *Register[T]) Read(step func()) T                { return r.V }
func (r *Register[T]) Write(step func(), v T)            { r.V = v }

type Array[T any] struct {
	regs []*Register[T]
}

func NewArray[T any](name string, n int) *Array[T] {
	return &Array[T]{regs: make([]*Register[T], n)}
}

func (a *Array[T]) N() int                    { return len(a.regs) }
func (a *Array[T]) At(i sim.PID) *Register[T] { return a.regs[i] }
func (a *Array[T]) Collect(step func()) []T   { return nil }

type Opt[T any] struct {
	V  T
	OK bool
}
