package accesscheck_test

import (
	"testing"

	"weakestfd/internal/analysis/accesscheck"
	"weakestfd/internal/analysis/analysistest"
)

func TestAccessCheck(t *testing.T) {
	analysistest.Run(t, accesscheck.Analyzer, "a")
}
