// Package accesscheck defines the fdlint analyzer that keeps the DPOR
// dependency relation complete: inside machine-world code, every
// shared-object access must route through the AccessLog-taking Direct*
// accessors of internal/memory.
//
// The explorer (internal/explore) prunes schedules using the access sets
// machines report through sim.AccessLog. A machine that touches a register,
// snapshot cell or consensus object through an uninstrumented path —
// Inspect, the Proc-based Read/Write/Scan/Update/Propose, a raw field — has
// performed communication the dependency analysis cannot see, and
// Flanagan–Godefroid/source-DPOR soundness (which assumes the dependency
// relation over-approximates real conflicts) is silently voided for every
// sweep over that protocol. This analyzer makes the convention
// machine-checked: in any function classified machine-world by
// simtypes.Scope, a call to a method of a type defined in internal/memory
// is flagged unless the method is a Direct* accessor or shape-only metadata
// (N, At, Limit, Name, String, StateFP), and any selection of a field of a
// memory shared-object type is flagged outright.
//
// internal/memory itself and _test.go files are exempt (the accessors'
// implementation and post-run assertions are where the raw state legally
// lives); everything else needs a //lint:fdlint accesscheck suppression with
// a justification to pass.
package accesscheck

import (
	"go/ast"
	"go/types"
	"strings"

	"weakestfd/internal/analysis/simtypes"
	"weakestfd/internal/analysis/suppress"
	"weakestfd/internal/xtools/go/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "accesscheck",
	Doc:  "machine code must access shared memory through AccessLog-instrumented Direct* accessors",
	URL:  "weakestfd/internal/analysis",
	Run:  run,
}

// metadataMethods are the memory-type methods that expose object shape, not
// object state: calling them performs no shared-memory communication.
var metadataMethods = map[string]bool{
	"N": true, "At": true, "Limit": true, "Name": true, "String": true, "StateFP": true,
}

func run(pass *analysis.Pass) (any, error) {
	if simtypes.PathHasSuffix(pass.Pkg.Path(), "internal/memory") ||
		strings.Contains(pass.Pkg.Path(), "internal/xtools") {
		return nil, nil
	}
	if simtypes.PkgWithSuffix(pass.Pkg, "internal/memory") == nil {
		return nil, nil // package never touches shared objects
	}
	sup := suppress.New(pass)
	scope := simtypes.NewScope(pass)
	simtypes.NonTestFuncs(pass, func(decl *ast.FuncDecl) {
		if !scope.MachineFunc(decl) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || !simtypes.PathHasSuffix(obj.Pkg().Path(), "internal/memory") {
				return true
			}
			switch obj := obj.(type) {
			case *types.Func:
				if obj.Type().(*types.Signature).Recv() == nil {
					return true // package-level helper (constructors, CountSome, ...)
				}
				name := obj.Name()
				if strings.HasPrefix(name, "Direct") || metadataMethods[name] || !obj.Exported() {
					return true
				}
				sup.Report(pass, sel.Sel.Pos(),
					"memory.%s bypasses the AccessLog-instrumented Direct* accessors: machine code must report every shared-object access to the DPOR dependency analysis", name)
			case *types.Var:
				if !obj.IsField() || isValueType(pass.TypesInfo.TypeOf(sel.X)) {
					return true
				}
				sup.Report(pass, sel.Sel.Pos(),
					"raw field access to memory.%s: shared-object state may only be touched through AccessLog-instrumented Direct* accessors", obj.Name())
			}
			return true
		})
	})
	return nil, nil
}

// isValueType reports whether t is one of memory's plain value types (Opt),
// whose fields are process-local data, not shared-object state.
func isValueType(t types.Type) bool {
	if t == nil {
		return true
	}
	return simtypes.IsNamed(t, "internal/memory", "Opt")
}
