package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"weakestfd/internal/explore"
)

// The coordinator and its workers speak length-delimited JSON over the
// worker's stdin/stdout: each frame is a header line "fdfleet1 <payload
// bytes>\n", the JSON payload, and a trailing newline. The magic doubles
// as the protocol version — a worker built from a different protocol
// revision fails the very first frame instead of misparsing mid-sweep.
const protoMagic = "fdfleet1"

// maxFrame bounds one frame's payload. Shard results carry shrunk
// counterexample artifacts, which run to a few tens of KB each; 256 MiB is
// far above any real frame while still catching a corrupt length before it
// turns into an absurd allocation.
const maxFrame = 256 << 20

// message is the single frame envelope, discriminated by Type:
//
//	coordinator → worker:
//	  "spec"    Spec                — the sweep; sent once, first
//	  "shard"   Shard, Lo, Hi      — explore job indices [Lo, Hi)
//	  "narrow"  Shard, Hi          — steal: stop before job Hi if possible
//	  "exit"                       — drain and terminate
//	worker → coordinator:
//	  "ready"   Jobs               — job-space size cross-check
//	  "progress" Shard, Lo, Name, Runs — one job (index Lo) finished
//	  "yield"   Shard, Hi          — narrow ack: worker stops before Hi
//	  "done"    Shard, Lo, Hi, Result — shard finished covering [Lo, Hi)
//	  "error"   Error              — fatal worker-side failure
type message struct {
	Type   string          `json:"type"`
	Spec   *Spec           `json:"spec,omitempty"`
	Shard  int             `json:"shard"`
	Lo     int             `json:"lo"`
	Hi     int             `json:"hi"`
	Jobs   int             `json:"jobs,omitempty"`
	Name   string          `json:"name,omitempty"`
	Runs   int64           `json:"runs,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result *explore.Result `json:"result,omitempty"`
}

// writeFrame encodes one frame. Callers serialize concurrent writers.
func writeFrame(w io.Writer, m *message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("fleet: encoding %s frame: %w", m.Type, err)
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", protoMagic, len(payload)); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err = w.Write([]byte{'\n'})
	return err
}

// readFrame decodes one frame, failing loudly on any framing drift.
func readFrame(r *bufio.Reader) (*message, error) {
	header, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && header == "" {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("fleet: reading frame header: %w", err)
	}
	magic, lenStr, ok := strings.Cut(strings.TrimSuffix(header, "\n"), " ")
	if !ok || magic != protoMagic {
		return nil, fmt.Errorf("fleet: bad frame header %q (want %q + payload length; protocol mismatch?)", strings.TrimSpace(header), protoMagic)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 || n > maxFrame {
		return nil, fmt.Errorf("fleet: bad frame length %q", lenStr)
	}
	buf := make([]byte, n+1)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("fleet: reading %d-byte frame: %w", n, err)
	}
	if buf[n] != '\n' {
		return nil, fmt.Errorf("fleet: frame not newline-terminated (payload length drift)")
	}
	var m message
	if err := json.Unmarshal(buf[:n], &m); err != nil {
		return nil, fmt.Errorf("fleet: decoding frame: %w", err)
	}
	return &m, nil
}
