package fleet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"time"

	"weakestfd/internal/explore"
)

// Options configures one coordinated sweep.
type Options struct {
	// Spec is the sweep to run. Spec.Workers is each worker process's
	// executor-pool width; the CLI divides the machine's cores by Procs.
	Spec Spec
	// Procs is the number of worker processes (>= 1).
	Procs int
	// WorkerCmd is the argv launching one worker process speaking the
	// fleet protocol on stdin/stdout — `fdlab fleet-worker` for the local
	// fleet, or any exec template (ssh wrapper, container runner) for
	// remote machines.
	WorkerCmd []string
	// CheckpointPath, when non-empty, is the frontier checkpoint rewritten
	// after every shard completion. Resume loads it and re-plans only the
	// uncovered job spans; without Resume an existing file is overwritten.
	CheckpointPath string
	Resume         bool
	// OnProgress, when non-nil, receives one human-readable line per
	// fleet event (job finished, shard done, steal). Called from the
	// coordinator's event loop, never concurrently.
	OnProgress func(line string)

	// afterCheckpoint, when non-nil, runs after every completed shard (and
	// its checkpoint write) with the completed-shard count. An error abandons
	// the sweep immediately, workers killed — the test seam simulating a
	// mid-sweep kill at an exact frontier.
	afterCheckpoint func(completed int) error
}

// Summary is the outcome of one coordinated sweep.
type Summary struct {
	// Result is the merged sweep result — checkpoint-resumed shards and
	// freshly executed shards folded by explore.MergeResults, so counters
	// and violations match a single-process Explore of the same Spec
	// whenever the MaxViolations budget does not bind. Result.ElapsedMS
	// sums per-shard compute time; WallMS is this invocation's wall clock.
	Result *explore.Result
	// Jobs is the configuration-space size; ResumedJobs of those were
	// loaded from the checkpoint, ExecutedJobs ran in this invocation.
	Jobs         int
	ResumedJobs  int
	ExecutedJobs int
	// Shards counts shards completed this invocation, Steals successful
	// work-stealing splits, Workers the worker processes launched.
	Shards  int
	Steals  int
	Workers int
	WallMS  int64
}

// inflight is the coordinator's view of one assigned shard.
type inflight struct {
	id       int
	lo, hi   int
	done     int  // jobs reported finished (progress frames)
	narrowed bool // steal sent, yield outstanding
	noSteal  bool // a steal yielded nothing; don't retry
}

// remaining estimates the jobs the worker still holds.
func (s *inflight) remaining() int { return s.hi - s.lo - s.done }

// workerProc is one live worker process. dead is maintained by the event
// loop (never read off cmd.ProcessState, which the reader pump's Wait
// writes concurrently).
type workerProc struct {
	id    int
	cmd   *exec.Cmd
	stdin io.WriteCloser
	ready bool
	dead  bool
	shard *inflight
}

// event is one frame (or death) from a worker, funneled into the
// coordinator's single event loop.
type event struct {
	worker *workerProc
	msg    *message
	err    error
}

// coordinator is the state of one Run.
type coordinator struct {
	opts    Options
	jobs    int
	pending []span
	records []ShardRecord
	workers []*workerProc
	events  chan event

	nextShard int
	resumed   int
	deaths    int
	steals    int
	launched  int
}

// Run executes the sweep described by opts across opts.Procs worker
// processes and returns the merged summary. It is the engine behind
// `fdlab fleet`.
func Run(opts Options) (*Summary, error) {
	if opts.Procs < 1 {
		opts.Procs = 1
	}
	if len(opts.WorkerCmd) == 0 {
		return nil, fmt.Errorf("fleet: no worker command")
	}
	cfg, err := opts.Spec.Config()
	if err != nil {
		return nil, err
	}
	jobs := len(explore.EnumerateJobs(cfg))
	if jobs == 0 {
		return nil, fmt.Errorf("fleet: empty sweep: %s n=%d enumerates no configurations", opts.Spec.System, opts.Spec.N)
	}

	//lint:fdlint determinism -- wall-clock is Summary.WallMS metadata only; scheduling decisions depend on completion events, whose effect on the merged Result is erased by MergeResults
	start := time.Now()
	c := &coordinator{opts: opts, jobs: jobs, events: make(chan event, opts.Procs*4)}
	if opts.Resume {
		cp, err := LoadCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if cp.SpecKey != opts.Spec.Key() {
			return nil, fmt.Errorf("fleet: checkpoint %s records a different sweep (spec key mismatch); not resuming", opts.CheckpointPath)
		}
		if cp.Jobs != jobs {
			return nil, fmt.Errorf("fleet: checkpoint %s records %d jobs, this build enumerates %d — job space drifted, refusing to resume", opts.CheckpointPath, cp.Jobs, jobs)
		}
		c.records = cp.Shards
		c.resumed = cp.doneJobs()
		for _, s := range cp.Shards {
			if s.ID >= c.nextShard {
				c.nextShard = s.ID + 1
			}
		}
		c.progressf("resuming: %d/%d jobs already covered by %d checkpointed shards", c.resumed, jobs, len(cp.Shards))
	}
	c.pending = planShards(jobs, c.doneSpans(), shardTarget(jobs-c.resumed, opts.Procs))

	summaryOf := func() (*Summary, error) {
		merged, err := c.merge()
		if err != nil {
			return nil, err
		}
		return &Summary{
			Result:       merged,
			Jobs:         jobs,
			ResumedJobs:  c.resumed,
			ExecutedJobs: c.coveredJobs() - c.resumed,
			Shards:       len(c.records),
			Steals:       c.steals,
			Workers:      c.launched,
			WallMS:       time.Since(start).Milliseconds(),
		}, nil
	}
	if len(c.pending) == 0 {
		// The checkpoint already covers the whole space.
		return summaryOf()
	}

	defer c.killAll()
	procs := opts.Procs
	if procs > len(c.pending) {
		procs = len(c.pending)
	}
	for i := 0; i < procs; i++ {
		if err := c.spawn(); err != nil {
			return nil, err
		}
	}
	if err := c.loop(); err != nil {
		return nil, err
	}
	c.shutdown()
	return summaryOf()
}

func (c *coordinator) progressf(format string, args ...any) {
	if c.opts.OnProgress != nil {
		c.opts.OnProgress(fmt.Sprintf(format, args...))
	}
}

func (c *coordinator) doneSpans() []span {
	out := make([]span, len(c.records))
	for i, s := range c.records {
		out[i] = span{Lo: s.Lo, Hi: s.Hi}
	}
	return out
}

func (c *coordinator) coveredJobs() int {
	n := 0
	for _, s := range c.records {
		n += s.Hi - s.Lo
	}
	return n
}

// spawn launches one worker process, ships it the spec and registers its
// frame reader.
func (c *coordinator) spawn() error {
	argv := c.opts.WorkerCmd
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("fleet: launching worker: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("fleet: launching worker: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fleet: launching worker %q: %w", argv[0], err)
	}
	c.launched++
	w := &workerProc{id: c.launched, cmd: cmd, stdin: stdin}
	c.workers = append(c.workers, w)
	spec := c.opts.Spec
	if err := writeFrame(stdin, &message{Type: "spec", Spec: &spec}); err != nil {
		return fmt.Errorf("fleet: sending spec to worker %d: %w", w.id, err)
	}
	//lint:fdlint determinism -- process orchestration: the reader pump only forwards frames into the event loop; arrival order affects scheduling, not the merged Result
	go func() {
		r := bufio.NewReaderSize(stdout, 1<<16)
		for {
			m, err := readFrame(r)
			if err != nil {
				cmd.Wait()
				c.events <- event{worker: w, err: err}
				return
			}
			c.events <- event{worker: w, msg: m}
		}
	}()
	return nil
}

// killAll hard-stops every worker; the deferred safety net for error paths
// and the kill half of the afterCheckpoint seam. Killing an already-exited
// process is a harmless error.
func (c *coordinator) killAll() {
	for _, w := range c.workers {
		w.stdin.Close()
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	}
}

// shutdown drains workers gracefully once every job span is covered.
func (c *coordinator) shutdown() {
	for _, w := range c.workers {
		if !w.dead {
			writeFrame(w.stdin, &message{Type: "exit"})
			w.stdin.Close()
		}
	}
}

// loop is the single event loop: it assigns pending shards to idle
// workers, steals from stragglers when the queue drains, folds done
// frames into checkpointed records, and requeues the shards of dead
// workers. It returns once every job index is covered by a record.
func (c *coordinator) loop() error {
	for {
		c.assign()
		if c.coveredJobs() == c.jobs {
			return nil
		}
		ev, ok := <-c.events
		if !ok {
			return fmt.Errorf("fleet: event stream closed mid-sweep")
		}
		if ev.err != nil {
			if err := c.onDeath(ev.worker, ev.err); err != nil {
				return err
			}
			continue
		}
		if err := c.onFrame(ev.worker, ev.msg); err != nil {
			return err
		}
	}
}

// assign hands pending shards to idle ready workers; with the queue empty
// it steals from the straggler with the most unfinished jobs.
func (c *coordinator) assign() {
	for _, w := range c.workers {
		if !w.ready || w.shard != nil || w.dead {
			continue
		}
		if len(c.pending) > 0 {
			sp := c.pending[0]
			c.pending = c.pending[1:]
			sh := &inflight{id: c.nextShard, lo: sp.Lo, hi: sp.Hi}
			c.nextShard++
			if err := writeFrame(w.stdin, &message{Type: "shard", Shard: sh.id, Lo: sh.lo, Hi: sh.hi}); err != nil {
				// The reader pump will surface the death; leave the shard
				// unassigned so requeue logic stays in one place.
				c.pending = append([]span{{Lo: sh.lo, Hi: sh.hi}}, c.pending...)
				continue
			}
			w.shard = sh
			continue
		}
		c.steal()
	}
}

// steal narrows the in-flight shard with the most unfinished jobs so its
// tail can be re-assigned to an idle worker. At most one outstanding
// narrow per shard; shards that already yielded nothing are left alone.
func (c *coordinator) steal() {
	var victim *workerProc
	for _, w := range c.workers {
		sh := w.shard
		if sh == nil || sh.narrowed || sh.noSteal || sh.remaining() < 2 {
			continue
		}
		if victim == nil || sh.remaining() > victim.shard.remaining() ||
			(sh.remaining() == victim.shard.remaining() && sh.id < victim.shard.id) {
			victim = w
		}
	}
	if victim == nil {
		return
	}
	sh := victim.shard
	// Aim to take the unfinished half; the worker clamps to its claim
	// frontier, so the yield may return less (or nothing).
	newHi := sh.hi - sh.remaining()/2
	if min := sh.lo + sh.done + 1; newHi < min {
		newHi = min
	}
	sh.narrowed = true
	if err := writeFrame(victim.stdin, &message{Type: "narrow", Shard: sh.id, Hi: newHi}); err != nil {
		sh.narrowed = false
	}
}

// onFrame folds one worker frame into coordinator state.
func (c *coordinator) onFrame(w *workerProc, m *message) error {
	switch m.Type {
	case "ready":
		if m.Jobs != c.jobs {
			return fmt.Errorf("fleet: worker %d enumerates %d jobs, coordinator %d — build or spec drift between processes", w.id, m.Jobs, c.jobs)
		}
		w.ready = true
	case "progress":
		if w.shard != nil && w.shard.id == m.Shard {
			w.shard.done++
		}
		c.progressf("worker %d: %s (%d runs)", w.id, m.Name, m.Runs)
	case "yield":
		sh := w.shard
		if sh == nil || sh.id != m.Shard || m.Hi < 0 {
			// The shard finished before the narrow landed; the done frame
			// already queued any remainder.
			return nil
		}
		sh.narrowed = false
		if m.Hi >= sh.hi {
			sh.noSteal = true // claim frontier already past the cut
			return nil
		}
		c.steals++
		c.pending = append(c.pending, span{Lo: m.Hi, Hi: sh.hi})
		c.progressf("steal: shard %d yields jobs [%d,%d)", sh.id, m.Hi, sh.hi)
		sh.hi = m.Hi
	case "done":
		sh := w.shard
		if sh == nil || sh.id != m.Shard {
			return fmt.Errorf("fleet: worker %d reported shard %d done, but holds %v", w.id, m.Shard, sh)
		}
		w.shard = nil
		if m.Hi < sh.hi {
			// The worker stopped at a narrowed bound whose yield frame we
			// have not processed yet; queue the remainder here and let the
			// stale yield no-op.
			c.steals++
			c.pending = append(c.pending, span{Lo: m.Hi, Hi: sh.hi})
		}
		if m.Hi == m.Lo {
			return nil // fully stolen before any claim; nothing covered
		}
		if m.Result == nil || m.Result.Configs != m.Hi-m.Lo {
			return fmt.Errorf("fleet: worker %d shard %d done frame covers [%d,%d) but result has %v configs", w.id, m.Shard, m.Lo, m.Hi, m.Result)
		}
		c.records = append(c.records, ShardRecord{ID: sh.id, Lo: m.Lo, Hi: m.Hi, Result: m.Result})
		c.progressf("shard %d done: jobs [%d,%d), %d runs (%d/%d jobs covered)",
			sh.id, m.Lo, m.Hi, m.Result.Runs, c.coveredJobs(), c.jobs)
		if c.opts.CheckpointPath != "" {
			if err := WriteCheckpoint(c.opts.CheckpointPath, c.checkpoint()); err != nil {
				return err
			}
		}
		if c.opts.afterCheckpoint != nil {
			if err := c.opts.afterCheckpoint(len(c.records)); err != nil {
				return err
			}
		}
	case "error":
		return fmt.Errorf("fleet: worker %d failed: %s", w.id, m.Error)
	default:
		return fmt.Errorf("fleet: worker %d sent unexpected frame %q", w.id, m.Type)
	}
	return nil
}

// onDeath requeues a dead worker's shard and spawns a replacement. Jobs
// the shard had finished are re-run — results only enter the sweep through
// done frames, so the accounting stays exact.
func (c *coordinator) onDeath(w *workerProc, cause error) error {
	// Workers only exit on an exit frame or stdin EOF, and the loop sends
	// neither — any EOF here is a premature death.
	w.dead = true
	w.ready = false
	c.deaths++
	if sh := w.shard; sh != nil {
		w.shard = nil
		c.pending = append(c.pending, span{Lo: sh.lo, Hi: sh.hi})
		c.progressf("worker %d died (%v); requeued jobs [%d,%d)", w.id, cause, sh.lo, sh.hi)
	}
	if c.deaths > 2*c.opts.Procs {
		return fmt.Errorf("fleet: %d worker deaths (last: %v); aborting", c.deaths, cause)
	}
	if c.coveredJobs() < c.jobs && c.liveWorkers() == 0 {
		return c.spawn()
	}
	return nil
}

func (c *coordinator) liveWorkers() int {
	n := 0
	for _, w := range c.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

// checkpoint snapshots the frontier, shards ordered by job span so the
// file is deterministic for a given set of completions.
func (c *coordinator) checkpoint() *Checkpoint {
	shards := append([]ShardRecord(nil), c.records...)
	sort.Slice(shards, func(i, j int) bool { return shards[i].Lo < shards[j].Lo })
	return &Checkpoint{
		Schema:  CheckpointSchema,
		Spec:    c.opts.Spec,
		SpecKey: c.opts.Spec.Key(),
		Jobs:    c.jobs,
		Shards:  shards,
	}
}

// merge folds every shard record — resumed and fresh — into the sweep's
// single Result, in job-span order so the fold is deterministic.
func (c *coordinator) merge() (*explore.Result, error) {
	if g := gaps(c.jobs, c.doneSpans()); len(g) != 0 {
		return nil, fmt.Errorf("fleet: internal: merge with uncovered job spans %v", g)
	}
	records := append([]ShardRecord(nil), c.records...)
	sort.Slice(records, func(i, j int) bool { return records[i].Lo < records[j].Lo })
	results := make([]*explore.Result, len(records))
	for i, r := range records {
		results[i] = r.Result
	}
	return explore.MergeResults(results)
}
