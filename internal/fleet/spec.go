package fleet

import (
	"encoding/json"
	"fmt"

	"weakestfd/internal/explore"
	"weakestfd/internal/sim"
)

// Spec is the primitive, process-portable description of one sweep: every
// knob of explore.Config that shapes the configuration space or the
// per-configuration search, expressed in serializable terms (system and
// engine by name, times as integers). The coordinator ships it to workers
// verbatim and stamps its Key into checkpoints, so both sides — and a
// resumed run — provably rebuild the identical job list.
type Spec struct {
	// System names the system under exploration (explore.NewSystem).
	System string `json:"system"`
	// N is the process count; F the resilience (explore.NewSystem).
	N int `json:"n"`
	F int `json:"f"`
	// Engine names the exploration engine (explore.ParseEngine); "" means
	// the default.
	Engine string `json:"engine,omitempty"`
	// The remaining fields mirror the explore.Config fields of the same
	// name; zero values take explore's defaults.
	NoHash        bool    `json:"no_hash,omitempty"`
	MaxStates     int     `json:"max_states,omitempty"`
	MaxBlocks     int     `json:"max_blocks,omitempty"`
	MaxBlock      int     `json:"max_block,omitempty"`
	MaxDepth      int     `json:"max_depth,omitempty"`
	MaxRuns       int64   `json:"max_runs,omitempty"`
	Budget        int64   `json:"budget,omitempty"`
	CrashTimes    []int64 `json:"crash_times,omitempty"`
	SwitchBudget  int     `json:"switch_budget,omitempty"`
	FlipTimes     []int64 `json:"flip_times,omitempty"`
	Symmetry      bool    `json:"symmetry,omitempty"`
	MaxViolations int     `json:"max_violations,omitempty"`
	ShrinkBudget  int     `json:"shrink_budget,omitempty"`
	// Workers is the lab pool width per worker process. It shapes only how
	// fast a worker explores, never what it explores, so Key ignores it: a
	// checkpoint taken at one width resumes at any other.
	Workers int `json:"workers,omitempty"`
}

// Key is the canonical identity of the sweep this Spec describes — the
// JSON encoding with the space-neutral Workers field zeroed. Checkpoints
// record it and refuse to resume under a different key.
func (s Spec) Key() string {
	s.Workers = 0
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is a struct of plain scalars and slices; Marshal cannot fail.
		panic(fmt.Sprintf("fleet: marshaling spec key: %v", err))
	}
	return string(b)
}

// Config instantiates the spec into an explore.Config, validating the
// named system and engine.
func (s Spec) Config() (explore.Config, error) {
	f := s.F
	if f == 0 {
		f = s.N - 1
	}
	sys, err := explore.NewSystem(s.System, s.N, f)
	if err != nil {
		return explore.Config{}, fmt.Errorf("fleet: %w", err)
	}
	engine, err := explore.ParseEngine(s.Engine)
	if err != nil {
		return explore.Config{}, fmt.Errorf("fleet: %w", err)
	}
	return explore.Config{
		System:        sys,
		Engine:        engine,
		NoHash:        s.NoHash,
		MaxStates:     s.MaxStates,
		MaxBlocks:     s.MaxBlocks,
		MaxBlock:      s.MaxBlock,
		MaxDepth:      s.MaxDepth,
		MaxRuns:       s.MaxRuns,
		Budget:        s.Budget,
		MaxFaults:     f,
		CrashTimes:    toTimes(s.CrashTimes),
		SwitchBudget:  s.SwitchBudget,
		FlipTimes:     toTimes(s.FlipTimes),
		Symmetry:      s.Symmetry,
		MaxViolations: s.MaxViolations,
		ShrinkBudget:  s.ShrinkBudget,
		Workers:       s.Workers,
	}, nil
}

func toTimes(ts []int64) []sim.Time {
	if ts == nil {
		return nil
	}
	out := make([]sim.Time, len(ts))
	for i, t := range ts {
		out[i] = sim.Time(t)
	}
	return out
}
