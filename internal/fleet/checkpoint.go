package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"weakestfd/internal/explore"
)

// CheckpointSchema versions the checkpoint file format. Bump it whenever a
// field changes meaning; Load refuses other schemas loudly rather than
// resuming a sweep it would silently mis-merge.
const CheckpointSchema = 1

// ShardRecord is one completed shard: the job span it covered and the full
// explore.Result for exactly those jobs (counters, flags and shrunk
// violation artifacts included). Records are the unit of both resume (their
// spans are subtracted from the plan) and merging (their Results fold into
// the sweep Result).
type ShardRecord struct {
	ID int `json:"id"`
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Result is the shard's merged explore.Result; Result.Configs always
	// equals Hi-Lo.
	Result *explore.Result `json:"result"`
}

// Checkpoint is the frontier of one fleet sweep, rewritten atomically after
// every shard completion. A killed sweep resumes by loading it, validating
// identity (schema, spec key, job count) and re-planning only the uncovered
// spans; the doubled role is a persistent explored-subspace cache — any
// later sweep with the same Key can subtract these spans.
type Checkpoint struct {
	Schema int `json:"schema"`
	// Spec is the sweep being explored; SpecKey its canonical identity
	// (Spec.Key()), stored redundantly so identity comparison never
	// depends on re-marshaling stability across versions.
	Spec    Spec   `json:"spec"`
	SpecKey string `json:"spec_key"`
	// Jobs is the size of the enumerated (pattern × oracle) space; a
	// resumed run re-enumerates and must agree.
	Jobs   int           `json:"jobs"`
	Shards []ShardRecord `json:"shards"`
}

// doneSpans lists the covered spans.
func (c *Checkpoint) doneSpans() []span {
	out := make([]span, len(c.Shards))
	for i, s := range c.Shards {
		out[i] = span{Lo: s.Lo, Hi: s.Hi}
	}
	return out
}

// doneJobs is the number of jobs the checkpoint already covers.
func (c *Checkpoint) doneJobs() int {
	n := 0
	for _, s := range c.Shards {
		n += s.Hi - s.Lo
	}
	return n
}

// validate rejects structurally broken checkpoints: a malformed frontier
// must abort the resume, not silently re-run or skip jobs.
func (c *Checkpoint) validate() error {
	if c.Schema != CheckpointSchema {
		return fmt.Errorf("fleet: checkpoint schema %d, this build reads schema %d — refusing a stale or future checkpoint", c.Schema, CheckpointSchema)
	}
	if c.SpecKey != c.Spec.Key() {
		return fmt.Errorf("fleet: checkpoint spec_key does not match its spec (corrupt or hand-edited checkpoint)")
	}
	if c.Jobs <= 0 {
		return fmt.Errorf("fleet: checkpoint claims %d jobs", c.Jobs)
	}
	covered := make([]bool, c.Jobs)
	for _, s := range c.Shards {
		if s.Lo < 0 || s.Hi > c.Jobs || s.Lo >= s.Hi {
			return fmt.Errorf("fleet: checkpoint shard %d covers invalid span [%d,%d) of %d jobs", s.ID, s.Lo, s.Hi, c.Jobs)
		}
		if s.Result == nil {
			return fmt.Errorf("fleet: checkpoint shard %d has no result", s.ID)
		}
		if s.Result.Configs != s.Hi-s.Lo {
			return fmt.Errorf("fleet: checkpoint shard %d result covers %d configs, span says %d", s.ID, s.Result.Configs, s.Hi-s.Lo)
		}
		for i := s.Lo; i < s.Hi; i++ {
			if covered[i] {
				return fmt.Errorf("fleet: checkpoint shards overlap at job %d", i)
			}
			covered[i] = true
		}
	}
	return nil
}

// WriteCheckpoint writes the checkpoint atomically (temp file + rename in
// the destination directory), so a kill mid-write leaves the previous
// frontier intact instead of a torn file.
func WriteCheckpoint(path string, c *Checkpoint) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fleet-checkpoint-*")
	if err != nil {
		return fmt.Errorf("fleet: writing checkpoint: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: writing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint. Every failure mode —
// unreadable file, malformed JSON, wrong schema, inconsistent frontier —
// is a loud error: resuming from a bad frontier would corrupt the sweep's
// exhaustiveness claim.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: reading checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint %s is not valid JSON (truncated or corrupt): %w", path, err)
	}
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("%w (checkpoint %s)", err, path)
	}
	return &c, nil
}
