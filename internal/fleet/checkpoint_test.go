package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"weakestfd/internal/explore"
)

func testSpec() Spec {
	return Spec{
		System: "fig1", N: 3, F: 2,
		CrashTimes: []int64{0}, MaxDepth: 12, Budget: 1024,
		MaxViolations: 1 << 20, Workers: 2,
	}
}

func testCheckpoint() *Checkpoint {
	spec := testSpec()
	return &Checkpoint{
		Schema:  CheckpointSchema,
		Spec:    spec,
		SpecKey: spec.Key(),
		Jobs:    10,
		Shards: []ShardRecord{
			{ID: 0, Lo: 0, Hi: 3, Result: &explore.Result{System: "fig1", Engine: "source+hash", Configs: 3, Runs: 100}},
			{ID: 2, Lo: 6, Hi: 10, Result: &explore.Result{System: "fig1", Engine: "source+hash", Configs: 4, Runs: 140,
				Violations: []*explore.Violation{{Property: "validity", Pattern: "p", Oracle: "o", Message: "m"}}}},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	cp := testCheckpoint()
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Errorf("round trip drifted:\n got  %+v\n want %+v", got, cp)
	}
	if got.doneJobs() != 7 {
		t.Errorf("doneJobs = %d, want 7", got.doneJobs())
	}
	if want := []span{{0, 3}, {6, 10}}; !reflect.DeepEqual(got.doneSpans(), want) {
		t.Errorf("doneSpans = %v, want %v", got.doneSpans(), want)
	}
}

func TestCheckpointSpecKeyIgnoresWorkers(t *testing.T) {
	a, b := testSpec(), testSpec()
	b.Workers = 7
	if a.Key() != b.Key() {
		t.Error("Spec.Key varies with Workers; checkpoints would refuse to resume at a different width")
	}
	b.MaxDepth++
	if a.Key() == b.Key() {
		t.Error("Spec.Key ignores MaxDepth; different sweeps would share checkpoints")
	}
}

// TestCheckpointRejectsLoudly drives every structural failure mode through
// LoadCheckpoint and demands an error naming the problem.
func TestCheckpointRejectsLoudly(t *testing.T) {
	dir := t.TempDir()
	write := func(t *testing.T, mutate func(c *Checkpoint)) string {
		t.Helper()
		cp := testCheckpoint()
		mutate(cp)
		data, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	expectErr := func(t *testing.T, path, substr string) {
		t.Helper()
		_, err := LoadCheckpoint(path)
		if err == nil {
			t.Fatalf("LoadCheckpoint accepted a checkpoint that should fail with %q", substr)
		}
		if !strings.Contains(err.Error(), substr) {
			t.Errorf("error %q does not name the problem (want substring %q)", err, substr)
		}
	}

	t.Run("missing-file", func(t *testing.T) {
		expectErr(t, filepath.Join(dir, "nope.json"), "reading checkpoint")
	})
	t.Run("corrupt-json", func(t *testing.T) {
		path := filepath.Join(dir, "torn.json")
		os.WriteFile(path, []byte(`{"schema": 1, "shards": [{"id"`), 0o644)
		expectErr(t, path, "not valid JSON")
	})
	t.Run("stale-schema", func(t *testing.T) {
		expectErr(t, write(t, func(c *Checkpoint) { c.Schema = CheckpointSchema + 1 }), "schema")
	})
	t.Run("spec-key-mismatch", func(t *testing.T) {
		expectErr(t, write(t, func(c *Checkpoint) { c.Spec.MaxDepth = 99 }), "spec_key")
	})
	t.Run("overlapping-shards", func(t *testing.T) {
		expectErr(t, write(t, func(c *Checkpoint) {
			c.Shards[1].Lo, c.Shards[1].Hi = 2, 6
			c.Shards[1].Result.Configs = 4
		}), "overlap")
	})
	t.Run("invalid-span", func(t *testing.T) {
		expectErr(t, write(t, func(c *Checkpoint) { c.Shards[0].Hi = 99 }), "invalid span")
	})
	t.Run("missing-result", func(t *testing.T) {
		expectErr(t, write(t, func(c *Checkpoint) { c.Shards[0].Result = nil }), "no result")
	})
	t.Run("configs-span-mismatch", func(t *testing.T) {
		expectErr(t, write(t, func(c *Checkpoint) { c.Shards[0].Result.Configs = 99 }), "configs")
	})
}

// TestWriteCheckpointAtomic asserts a rewrite never leaves a torn file
// behind: the temp file is cleaned up and the previous content survives a
// failed write directory.
func TestWriteCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	if err := WriteCheckpoint(path, testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(path, testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d entries after rewrites, want only the checkpoint", len(entries))
	}
}
