package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"weakestfd/internal/explore"
)

// lockedWriter serializes protocol frames from the shard supervisor and
// the main loop onto the single stdout pipe.
type lockedWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (lw *lockedWriter) send(m *message) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if err := writeFrame(lw.w, m); err != nil {
		return err
	}
	return lw.w.Flush()
}

// shardRun is one in-flight shard's claim frontier. Executors claim job
// indices through it; a coordinator steal narrows its limit. Claim and
// narrow are serialized by one mutex — with bare atomics a narrow could
// land between an executor's claim and the limit check, letting a stolen
// job run twice (once here, once in the shard the coordinator re-assigns
// it to) and double-count every counter. Jobs cost thousands of simulation
// runs, so the lock is free by comparison.
type shardRun struct {
	id     int
	lo, hi int

	mu    sync.Mutex
	next  int // next unclaimed job index
	limit int // exclusive claim bound; narrowed by steals
}

// claim takes the next job index, or reports the shard drained.
func (s *shardRun) claim() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= s.limit {
		return 0, false
	}
	i := s.next
	s.next++
	return i, true
}

// narrow lowers the claim bound to hi — clamped up to the claim frontier
// (already-claimed jobs cannot be unclaimed) — and returns the bound that
// actually holds: the coordinator owns [returned, original hi) from here on.
func (s *shardRun) narrow(hi int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hi < s.next {
		hi = s.next
	}
	if hi < s.limit {
		s.limit = hi
	}
	return s.limit
}

// covered is the final span bound once executors have drained the shard.
func (s *shardRun) covered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limit
}

// WorkerMain is the worker process body behind `fdlab fleet-worker`: it
// reads a Spec, re-enumerates the job space, and serves shard assignments
// until stdin closes or an exit frame arrives. All exploration determinism
// lives in explore; this layer only moves job indices and results.
func WorkerMain(in io.Reader, out io.Writer) error {
	r := bufio.NewReaderSize(in, 1<<16)
	w := &lockedWriter{w: bufio.NewWriterSize(out, 1<<16)}

	first, err := readFrame(r)
	if err != nil {
		return fmt.Errorf("fleet worker: reading spec: %w", err)
	}
	if first.Type != "spec" || first.Spec == nil {
		return fmt.Errorf("fleet worker: first frame is %q, want spec", first.Type)
	}
	spec := *first.Spec
	cfg, err := spec.Config()
	if err != nil {
		w.send(&message{Type: "error", Error: err.Error()})
		return err
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	jobs := explore.EnumerateJobs(cfg)
	if err := w.send(&message{Type: "ready", Jobs: len(jobs)}); err != nil {
		return err
	}

	// Per-job exploration config: each executor explores one job at a time
	// with a single-width lab pool; worker-level parallelism comes from the
	// executor pool instead, so cfg.Workers stays the one knob.
	jobCfg := cfg
	jobCfg.Workers = 1

	var (
		mu     sync.Mutex
		active = make(map[int]*shardRun)
		wg     sync.WaitGroup
	)
	for {
		m, err := readFrame(r)
		if err == io.EOF {
			// Coordinator went away: stop taking work, let in-flight shards
			// finish (their done frames go nowhere) and exit cleanly.
			wg.Wait()
			return nil
		}
		if err != nil {
			return fmt.Errorf("fleet worker: %w", err)
		}
		switch m.Type {
		case "shard":
			if m.Lo < 0 || m.Hi > len(jobs) || m.Lo >= m.Hi {
				w.send(&message{Type: "error", Error: fmt.Sprintf("shard %d spans invalid [%d,%d) of %d jobs", m.Shard, m.Lo, m.Hi, len(jobs))})
				return fmt.Errorf("fleet worker: invalid shard span [%d,%d)", m.Lo, m.Hi)
			}
			sr := &shardRun{id: m.Shard, lo: m.Lo, hi: m.Hi, next: m.Lo, limit: m.Hi}
			mu.Lock()
			active[sr.id] = sr
			mu.Unlock()
			wg.Add(1)
			//lint:fdlint determinism -- process orchestration: the supervisor only moves job indices and finished results; exploration order never affects the merged Result
			go func() {
				defer wg.Done()
				runShard(jobCfg, jobs, sr, cfg.Workers, w)
				mu.Lock()
				delete(active, sr.id)
				mu.Unlock()
			}()
		case "narrow":
			mu.Lock()
			sr := active[m.Shard]
			mu.Unlock()
			if sr == nil {
				// The shard finished before the steal landed; its done frame
				// is already in flight, so the coordinator ignores the yield.
				w.send(&message{Type: "yield", Shard: m.Shard, Hi: -1})
				continue
			}
			actual := sr.narrow(m.Hi)
			if err := w.send(&message{Type: "yield", Shard: m.Shard, Hi: actual}); err != nil {
				return err
			}
		case "exit":
			wg.Wait()
			return nil
		default:
			return fmt.Errorf("fleet worker: unexpected frame %q", m.Type)
		}
	}
}

// runShard drains one shard through a pool of executors and reports the
// merged result for exactly the covered span.
func runShard(jobCfg explore.Config, jobs []explore.Job, sr *shardRun, executors int, w *lockedWriter) {
	results := make([]*explore.Result, sr.hi-sr.lo)
	var wg sync.WaitGroup
	for e := 0; e < executors; e++ {
		wg.Add(1)
		//lint:fdlint determinism -- process orchestration: executors claim disjoint job indices under shardRun's mutex; per-job Results are order-independent and merged by the deterministic MergeResults
		go func() {
			defer wg.Done()
			for {
				i, ok := sr.claim()
				if !ok {
					return
				}
				res := explore.ExploreJobs(jobCfg, []explore.Job{jobs[i]})
				results[i-sr.lo] = res
				w.send(&message{Type: "progress", Shard: sr.id, Lo: i, Name: jobs[i].Label(), Runs: res.Runs})
			}
		}()
	}
	wg.Wait()

	covered := sr.covered()
	if covered == sr.lo {
		// Fully stolen before any claim: nothing to merge, nothing to record.
		w.send(&message{Type: "done", Shard: sr.id, Lo: sr.lo, Hi: sr.lo})
		return
	}
	merged, err := explore.MergeResults(results[:covered-sr.lo])
	if err != nil {
		w.send(&message{Type: "error", Error: fmt.Sprintf("merging shard %d: %v", sr.id, err)})
		return
	}
	w.send(&message{Type: "done", Shard: sr.id, Lo: sr.lo, Hi: covered, Result: merged})
}
