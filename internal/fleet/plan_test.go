package fleet

import (
	"reflect"
	"testing"
)

func TestGaps(t *testing.T) {
	cases := []struct {
		name string
		jobs int
		done []span
		want []span
	}{
		{"nothing-done", 10, nil, []span{{0, 10}}},
		{"all-done", 10, []span{{0, 10}}, nil},
		{"middle-done", 10, []span{{3, 7}}, []span{{0, 3}, {7, 10}}},
		{"unordered-adjacent", 10, []span{{5, 7}, {0, 5}}, []span{{7, 10}}},
		{"overlapping", 10, []span{{0, 6}, {4, 8}}, []span{{8, 10}}},
		{"clipped", 5, []span{{-2, 2}, {4, 99}}, []span{{2, 4}}},
		{"interleaved", 12, []span{{10, 12}, {2, 4}, {6, 8}}, []span{{0, 2}, {4, 6}, {8, 10}}},
	}
	for _, tc := range cases {
		if got := gaps(tc.jobs, tc.done); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: gaps(%d, %v) = %v, want %v", tc.name, tc.jobs, tc.done, got, tc.want)
		}
	}
}

func TestPlanShards(t *testing.T) {
	got := planShards(10, []span{{4, 6}}, 3)
	want := []span{{0, 3}, {3, 4}, {6, 9}, {9, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("planShards = %v, want %v", got, want)
	}
	// Shards cover exactly the gaps, in ascending order, every time.
	again := planShards(10, []span{{4, 6}}, 3)
	if !reflect.DeepEqual(got, again) {
		t.Errorf("planShards not deterministic: %v vs %v", got, again)
	}
	if shards := planShards(5, nil, 0); len(shards) != 5 {
		t.Errorf("planShards with target<1 produced %v, want 5 single-job shards", shards)
	}
}

func TestShardTarget(t *testing.T) {
	if got := shardTarget(910, 8); got != 910/(8*defaultOversubscribe) {
		t.Errorf("shardTarget(910, 8) = %d", got)
	}
	if got := shardTarget(6, 2); got != 1 {
		t.Errorf("shardTarget(6, 2) = %d, want floor of 1", got)
	}
	if got := shardTarget(100, 0); got != shardTarget(100, 1) {
		t.Errorf("shardTarget with procs 0 = %d, want the procs=1 sizing", got)
	}
}

func TestShardRunClaimNarrow(t *testing.T) {
	sr := &shardRun{id: 1, lo: 10, hi: 20, next: 10, limit: 20}
	for want := 10; want < 13; want++ {
		i, ok := sr.claim()
		if !ok || i != want {
			t.Fatalf("claim = %d,%v; want %d,true", i, ok, want)
		}
	}
	// Narrow below the claim frontier clamps up: claimed jobs can't be
	// unclaimed, so the worker keeps [10,13) and yields [13,20).
	if actual := sr.narrow(11); actual != 13 {
		t.Errorf("narrow(11) = %d, want clamp to claim frontier 13", actual)
	}
	if _, ok := sr.claim(); ok {
		t.Error("claim succeeded past a narrowed limit")
	}
	if sr.covered() != 13 {
		t.Errorf("covered = %d, want 13", sr.covered())
	}
	// Narrowing an already-narrowed shard never raises the limit.
	if actual := sr.narrow(18); actual != 13 {
		t.Errorf("narrow(18) after narrow = %d, want 13", actual)
	}
}
