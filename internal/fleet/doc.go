// Package fleet shards a bounded-exhaustive exploration sweep across
// worker processes: a coordinator plans the (pattern × oracle) job space
// explore.EnumerateJobs defines, hands contiguous job-index shards to
// `fdlab fleet-worker` subprocesses over a length-delimited JSON protocol
// on stdin/stdout, work-steals the tails of straggler shards, checkpoints
// the completed frontier after every shard, and folds per-shard results
// into one explore.Result via explore.MergeResults.
//
// # Identity and determinism
//
// Everything hangs off one fact: EnumerateJobs is deterministic, so a Spec
// (the serializable sweep description) plus a job-index span names the same
// work in every process and every resumed run. The wire protocol and the
// checkpoint therefore carry only spans and results, never jobs. Shard
// *scheduling* — which worker runs which span, when steals fire — is
// timing-dependent, but the merged Result is not: per-job results are
// independent (the explorer's only cross-job coupling is the MaxViolations
// budget), and MergeResults' fold is commutative with violations
// deduplicated and sorted by (pattern, oracle, property).
//
// The one semantic difference from a single-process Explore: MaxViolations
// is a global budget in one process but a per-shard budget in a fleet, so
// exact result equality holds when the budget does not bind — sweeps
// wanting it set MaxViolations above any plausible violation count.
//
// # Resume
//
// The checkpoint (schema-versioned JSON, written atomically after every
// shard completion) records the Spec, its canonical Key, the job-space
// size, and every completed shard's span + full explore.Result, shrunk
// violation artifacts included. A killed sweep re-run with -resume loads
// it, refuses loudly on schema/spec/job-space mismatch or a structurally
// broken frontier, and plans shards only over the uncovered spans —
// completed shards are never re-run. The same file doubles as a persistent
// explored-subspace cache for any later sweep with the same Key.
package fleet
