package fleet

import "sort"

// span is a half-open range [Lo, Hi) of explore job indices. Shards,
// checkpoint records and steals all speak spans: because EnumerateJobs is
// deterministic, a span fully identifies its jobs in any process.
type span struct {
	Lo, Hi int
}

func (s span) len() int { return s.Hi - s.Lo }

// defaultOversubscribe is the shard-count multiplier over the worker
// count. More shards than workers keeps every worker busy while shard
// run-times vary (heavy DPOR trees vs near-empty crash patterns), bounds
// the work lost to a kill at one shard, and gives work-stealing something
// to rebalance; 8 keeps shards coarse enough that framing and checkpoint
// writes stay noise.
const defaultOversubscribe = 8

// planShards cuts the uncovered spans of a jobs-long space into at most
// target-sized shards, in deterministic ascending order. done lists the
// already-covered spans (from a resumed checkpoint), in any order.
func planShards(jobs int, done []span, target int) []span {
	if target < 1 {
		target = 1
	}
	var out []span
	for _, g := range gaps(jobs, done) {
		for lo := g.Lo; lo < g.Hi; lo += target {
			hi := lo + target
			if hi > g.Hi {
				hi = g.Hi
			}
			out = append(out, span{Lo: lo, Hi: hi})
		}
	}
	return out
}

// shardTarget sizes shards so procs workers see defaultOversubscribe
// shards each, with a floor of one job.
func shardTarget(jobs, procs int) int {
	if procs < 1 {
		procs = 1
	}
	target := jobs / (procs * defaultOversubscribe)
	if target < 1 {
		target = 1
	}
	return target
}

// gaps returns the ascending complement of done within [0, jobs): the job
// spans a resumed sweep still has to run. Overlapping or adjacent done
// spans merge; spans outside [0, jobs) are clipped (Checkpoint validation
// rejects them earlier — this keeps gaps total on any input).
func gaps(jobs int, done []span) []span {
	ds := make([]span, 0, len(done))
	for _, d := range done {
		if d.Lo < 0 {
			d.Lo = 0
		}
		if d.Hi > jobs {
			d.Hi = jobs
		}
		if d.Lo < d.Hi {
			ds = append(ds, d)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Lo < ds[j].Lo })
	var out []span
	next := 0
	for _, d := range ds {
		if d.Lo > next {
			out = append(out, span{Lo: next, Hi: d.Lo})
		}
		if d.Hi > next {
			next = d.Hi
		}
	}
	if next < jobs {
		out = append(out, span{Lo: next, Hi: jobs})
	}
	return out
}
