package fleet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"weakestfd/internal/explore"
	"weakestfd/internal/sim"
)

// TestMain doubles as the worker executable: fleet tests re-exec the test
// binary with WEAKESTFD_FLEET_TEST_MODE set, turning the child into a
// protocol worker (or a crash stand-in) instead of a test run.
func TestMain(m *testing.M) {
	switch os.Getenv("WEAKESTFD_FLEET_TEST_MODE") {
	case "":
		os.Exit(m.Run())
	case "worker":
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "die-now":
		os.Exit(1)
	case "die-once":
		// Crash the first process to reach the marker, behave on respawn:
		// the deterministic worker-death recovery scenario.
		marker := os.Getenv("WEAKESTFD_FLEET_TEST_MARKER")
		if _, err := os.Stat(marker); err != nil {
			os.WriteFile(marker, []byte("died"), 0o644)
			os.Exit(1)
		}
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "unknown WEAKESTFD_FLEET_TEST_MODE")
		os.Exit(2)
	}
}

// workerCmd re-execs this test binary in the given worker mode.
func workerCmd(t *testing.T, mode string) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("WEAKESTFD_FLEET_TEST_MODE", mode)
	return []string{exe}
}

// garbledSpec is a sweep with a violation in every configuration —
// exercising result merging, violation dedup/sort and artifact transport —
// with MaxViolations lifted so the budget never couples configurations
// (the regime where fleet == single-process exactly).
func garbledSpec() Spec {
	return Spec{
		System: "fig1-garbled-decide", N: 2, F: 1,
		CrashTimes: []int64{0}, MaxDepth: 12, Budget: 1024,
		MaxViolations: 1 << 20, ShrinkBudget: 50, Workers: 2,
	}
}

// singleProcess runs the spec's sweep in-process as the equality oracle.
func singleProcess(t *testing.T, spec Spec) *explore.Result {
	t.Helper()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	return explore.Explore(cfg)
}

// assertResultsEqual compares everything a sweep claims except wall-clock.
func assertResultsEqual(t *testing.T, fleet, single *explore.Result) {
	t.Helper()
	if fleet.System != single.System || fleet.Engine != single.Engine {
		t.Errorf("identity differs: %s/%s vs %s/%s", fleet.System, fleet.Engine, single.System, single.Engine)
	}
	if fleet.Configs != single.Configs || fleet.Runs != single.Runs ||
		fleet.Pruned != single.Pruned || fleet.Joined != single.Joined ||
		fleet.SettledRuns != single.SettledRuns || fleet.MaxSteps != single.MaxSteps {
		t.Errorf("counters differ:\n fleet:  configs=%d runs=%d pruned=%d joined=%d settled=%d maxsteps=%d\n single: configs=%d runs=%d pruned=%d joined=%d settled=%d maxsteps=%d",
			fleet.Configs, fleet.Runs, fleet.Pruned, fleet.Joined, fleet.SettledRuns, fleet.MaxSteps,
			single.Configs, single.Runs, single.Pruned, single.Joined, single.SettledRuns, single.MaxSteps)
	}
	if fleet.Truncated != single.Truncated || fleet.StateCapped != single.StateCapped ||
		fleet.DepthLimited != single.DepthLimited {
		t.Errorf("flags differ: fleet {%v %v %v} vs single {%v %v %v}",
			fleet.Truncated, fleet.StateCapped, fleet.DepthLimited,
			single.Truncated, single.StateCapped, single.DepthLimited)
	}
	fk, sk := violationKeys(fleet), violationKeys(single)
	if !reflect.DeepEqual(fk, sk) {
		t.Errorf("violation sets differ:\n fleet:  %v\n single: %v", fk, sk)
	}
}

func violationKeys(r *explore.Result) []string {
	out := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		out = append(out, v.Pattern+"|"+v.Oracle+"|"+v.Property)
	}
	return out
}

func TestFleetEqualsSingleProcess(t *testing.T) {
	spec := garbledSpec()
	single := singleProcess(t, spec)
	if len(single.Violations) < 2 {
		t.Fatalf("oracle sweep found %d violations, want >= 2 to exercise merging", len(single.Violations))
	}
	sum, err := Run(Options{
		Spec:      spec,
		Procs:     2,
		WorkerCmd: workerCmd(t, "worker"),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, sum.Result, single)
	if sum.ExecutedJobs != sum.Jobs || sum.ResumedJobs != 0 {
		t.Errorf("fresh run executed %d of %d jobs, resumed %d", sum.ExecutedJobs, sum.Jobs, sum.ResumedJobs)
	}
	// Per-shard determinism: a second fleet pass is byte-identical in
	// everything but timing — the 1-CPU stand-in for the multi-core
	// speedup acceptance check.
	again, err := Run(Options{Spec: spec, Procs: 2, WorkerCmd: workerCmd(t, "worker")})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, again.Result, sum.Result)
}

// TestFleetFullGridEqualsSingleProcess is the acceptance sweep: the fig1
// n=4 full-E_3 grid under -procs 8 must produce the identical violation
// set, run count and joined count as single-process EngineSource Explore.
func TestFleetFullGridEqualsSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second n=4 full-grid sweep skipped under -short; the full lane runs it")
	}
	spec := Spec{
		System: "fig1", N: 4, F: 3,
		CrashTimes: []int64{0, 3}, MaxDepth: 11,
		MaxViolations: 1 << 20, Workers: 1,
	}
	single := singleProcess(t, spec)
	sum, err := Run(Options{
		Spec:      spec,
		Procs:     8,
		WorkerCmd: workerCmd(t, "worker"),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, sum.Result, single)
	if len(sum.Result.Violations) != 0 {
		t.Errorf("fig1 n=4 grid found violations: %v", sum.Result.Violations)
	}
	t.Logf("n=4 grid: %d jobs, %d shards, %d steals, %d runs (%d joined), fleet %dms wall vs single %dms",
		sum.Jobs, sum.Shards, sum.Steals, sum.Result.Runs, sum.Result.Joined, sum.WallMS, single.ElapsedMS)
}

// TestFleetKillResume kills the coordinator at an exact frontier (the
// afterCheckpoint seam) and asserts the resumed run re-runs only the
// incomplete shards and still merges to the single-process result.
func TestFleetKillResume(t *testing.T) {
	spec := garbledSpec()
	single := singleProcess(t, spec)
	path := filepath.Join(t.TempDir(), "fleet.json")

	killAfter := 2
	_, err := Run(Options{
		Spec:           spec,
		Procs:          2,
		WorkerCmd:      workerCmd(t, "worker"),
		CheckpointPath: path,
		afterCheckpoint: func(completed int) error {
			if completed >= killAfter {
				return fmt.Errorf("injected kill after %d shards", completed)
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("injected kill did not abort the run")
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable after kill: %v", err)
	}
	if len(cp.Shards) < killAfter {
		t.Fatalf("checkpoint records %d shards, want >= %d at the kill point", len(cp.Shards), killAfter)
	}
	killed := cp.doneJobs()
	if killed == 0 || killed >= cp.Jobs {
		t.Fatalf("kill frontier covers %d of %d jobs; the test needs a genuine mid-sweep kill", killed, cp.Jobs)
	}

	sum, err := Run(Options{
		Spec:           spec,
		Procs:          2,
		WorkerCmd:      workerCmd(t, "worker"),
		CheckpointPath: path,
		Resume:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ResumedJobs != killed {
		t.Errorf("resume credited %d checkpointed jobs, checkpoint had %d", sum.ResumedJobs, killed)
	}
	if sum.ExecutedJobs != sum.Jobs-killed {
		t.Errorf("resume executed %d jobs, want exactly the %d incomplete ones", sum.ExecutedJobs, sum.Jobs-killed)
	}
	assertResultsEqual(t, sum.Result, single)

	// Resuming the now-complete checkpoint runs nothing at all.
	done, err := Run(Options{
		Spec:           spec,
		Procs:          2,
		WorkerCmd:      workerCmd(t, "worker"),
		CheckpointPath: path,
		Resume:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.ExecutedJobs != 0 || done.Workers != 0 {
		t.Errorf("complete checkpoint still executed %d jobs on %d workers", done.ExecutedJobs, done.Workers)
	}
	assertResultsEqual(t, done.Result, single)
}

func TestFleetResumeRefusesForeignCheckpoint(t *testing.T) {
	spec := garbledSpec()
	path := filepath.Join(t.TempDir(), "fleet.json")
	other := spec
	other.MaxDepth = 20
	cfg, err := other.Config()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(path, &Checkpoint{
		Schema: CheckpointSchema, Spec: other, SpecKey: other.Key(),
		Jobs: len(explore.EnumerateJobs(cfg)),
	}); err != nil {
		t.Fatal(err)
	}
	_, err = Run(Options{
		Spec: spec, Procs: 1, WorkerCmd: workerCmd(t, "worker"),
		CheckpointPath: path, Resume: true,
	})
	if err == nil {
		t.Fatal("resume accepted a checkpoint from a different sweep")
	}
}

// TestFleetWorkerDeathRecovery crashes the only worker once mid-sweep; the
// coordinator must requeue its shard, respawn, and still converge to the
// single-process result.
func TestFleetWorkerDeathRecovery(t *testing.T) {
	spec := garbledSpec()
	single := singleProcess(t, spec)
	marker := filepath.Join(t.TempDir(), "died")
	t.Setenv("WEAKESTFD_FLEET_TEST_MARKER", marker)
	sum, err := Run(Options{
		Spec:      spec,
		Procs:     1,
		WorkerCmd: workerCmd(t, "die-once"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(marker); statErr != nil {
		t.Fatal("the worker never died; the recovery path was not exercised")
	}
	if sum.Workers < 2 {
		t.Errorf("launched %d workers, want the dead one plus a respawn", sum.Workers)
	}
	assertResultsEqual(t, sum.Result, single)
}

func TestFleetAbortsWhenWorkersKeepDying(t *testing.T) {
	_, err := Run(Options{
		Spec:      garbledSpec(),
		Procs:     1,
		WorkerCmd: workerCmd(t, "die-now"),
	})
	if err == nil {
		t.Fatal("a fleet whose workers always crash reported success")
	}
}

// TestWorkerProtocol drives WorkerMain directly over pipes: spec/ready
// handshake, a shard assignment, a mid-shard narrow with its yield, and
// the done frame covering exactly the kept span.
func TestWorkerProtocol(t *testing.T) {
	spec := garbledSpec()
	spec.Workers = 1 // sequential claims make the narrow outcome precise
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	jobs := len(explore.EnumerateJobs(cfg))
	if jobs < 3 {
		t.Fatalf("spec enumerates %d jobs, want >= 3", jobs)
	}

	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	workerErr := make(chan error, 1)
	go func() { workerErr <- WorkerMain(inR, outW) }()
	r := bufio.NewReader(outR)

	if err := writeFrame(inW, &message{Type: "spec", Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	ready, err := readFrame(r)
	if err != nil || ready.Type != "ready" || ready.Jobs != jobs {
		t.Fatalf("handshake = %+v, %v; want ready with %d jobs", ready, err, jobs)
	}

	if err := writeFrame(inW, &message{Type: "shard", Shard: 7, Lo: 0, Hi: jobs}); err != nil {
		t.Fatal(err)
	}
	// After the first progress frame at least one job is claimed; narrowing
	// to 1 must clamp to the claim frontier, never below it.
	first, err := readFrame(r)
	if err != nil || first.Type != "progress" || first.Shard != 7 {
		t.Fatalf("first frame = %+v, %v; want progress for shard 7", first, err)
	}
	if err := writeFrame(inW, &message{Type: "narrow", Shard: 7, Hi: 1}); err != nil {
		t.Fatal(err)
	}

	// The yield (from the main loop) and the done (from the shard
	// supervisor) race onto the pipe: drain until both arrive, in any
	// order, or the worker blocks writing the one we stopped reading.
	yieldHi, doneLo, doneHi := -2, 0, 0
	var doneResult *explore.Result
	for doneResult == nil || yieldHi == -2 {
		m, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		switch m.Type {
		case "progress":
		case "yield":
			yieldHi = m.Hi
		case "done":
			doneLo, doneHi, doneResult = m.Lo, m.Hi, m.Result
		default:
			t.Fatalf("unexpected frame %q", m.Type)
		}
	}
	if yieldHi == -1 {
		// The shard drained before the narrow landed; nothing was stolen.
		if doneHi != jobs {
			t.Errorf("shard finished pre-narrow but done covers [%d,%d) of %d jobs", doneLo, doneHi, jobs)
		}
	} else {
		if yieldHi < 1 || yieldHi > jobs {
			t.Errorf("yield bound %d outside [1,%d]", yieldHi, jobs)
		}
		if doneHi != yieldHi {
			t.Errorf("done covers [%d,%d), yield promised [0,%d)", doneLo, doneHi, yieldHi)
		}
	}
	if doneLo != 0 || doneResult.Configs != doneHi-doneLo {
		t.Errorf("done result has %d configs for span [%d,%d)", doneResult.Configs, doneLo, doneHi)
	}

	if err := writeFrame(inW, &message{Type: "exit"}); err != nil {
		t.Fatal(err)
	}
	if err := <-workerErr; err != nil {
		t.Fatalf("worker exited with %v", err)
	}
}

func TestProtoRoundTrip(t *testing.T) {
	spec := garbledSpec()
	msgs := []*message{
		{Type: "spec", Spec: &spec},
		{Type: "shard", Shard: 3, Lo: 10, Hi: 20},
		{Type: "progress", Shard: 3, Lo: 11, Name: "fig1/failure-free(n=2)/stable", Runs: 42},
		{Type: "done", Shard: 3, Lo: 10, Hi: 20, Result: &explore.Result{System: "fig1", Engine: "source+hash", Configs: 10}},
	}
	var buf fakePipe
	for _, m := range msgs {
		if err := writeFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for _, want := range msgs {
		got, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip drifted:\n got  %+v\n want %+v", got, want)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Errorf("trailing read = %v, want io.EOF", err)
	}

	buf.data = []byte("not-a-frame 12\n{}\n")
	if _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Error("readFrame accepted a frame with the wrong magic")
	}
	_ = sim.Time(0)
}

// fakePipe is an in-memory io.ReadWriter for protocol tests.
type fakePipe struct{ data []byte }

func (p *fakePipe) Write(b []byte) (int, error) { p.data = append(p.data, b...); return len(b), nil }
func (p *fakePipe) Read(b []byte) (int, error) {
	if len(p.data) == 0 {
		return 0, io.EOF
	}
	n := copy(b, p.data)
	p.data = p.data[n:]
	return n, nil
}
