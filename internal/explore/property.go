package explore

import (
	"fmt"

	"weakestfd/internal/core"
	"weakestfd/internal/sim"
)

// Run is one completed simulation, in the shape properties are checked
// against. The explorer produces one per explored schedule; replay produces
// one per artifact re-execution.
type Run struct {
	// System is the registry name of the system under test.
	System string
	// Pattern is the failure pattern of the run.
	Pattern sim.Pattern
	// Oracle identifies the failure detector history driving the run.
	Oracle OracleChoice
	// Proposals are the input values (nil for extraction systems).
	Proposals []sim.Value
	// K is the agreement bound the system guarantees (0 when not applicable).
	K int
	// Report is the simulation outcome.
	Report *sim.Report
	// Err is the run error; for terminating protocols a non-nil Err is the
	// observable face of non-termination within the budget.
	Err error
	// Schedule is the granted PID sequence of the run, for artifacts.
	Schedule []sim.PID

	// Outputs holds the final emulated detector outputs of extraction
	// systems (nil otherwise); OutputsSettled reports that the outputs of
	// the correct processes agreed and had been constant long enough
	// (relative to the run length) to treat the run's horizon as "eventually".
	Outputs        []sim.Set
	OutputsSettled bool
	// StableOutput is the settled common output (valid iff OutputsSettled).
	StableOutput sim.Set

	// seam is the query seam the run recorded its detector accesses through
	// (nil for unrecorded runs and systems without histories). The source
	// engine's flip-anchored race analysis reads the registered histories'
	// flip schedules from it.
	seam *sim.QuerySeam
}

// Property is one checkable claim about a completed run — properties as
// data, so a system declares what must hold and the explorer quantifies it
// over the schedule space. Check returns nil when the run satisfies the
// property and a descriptive error when it violates it. A property must be
// decidable on a single bounded run: eventual properties are checked
// against the run's horizon and must return nil (not an error) when the run
// is inconclusive.
type Property interface {
	Name() string
	Check(r *Run) error
}

// Validity: every decided value was proposed.
type Validity struct{}

// Name implements Property.
func (Validity) Name() string { return "validity" }

// Check implements Property.
func (Validity) Check(r *Run) error {
	if r.Report == nil {
		return nil
	}
	proposed := make(map[sim.Value]bool, len(r.Proposals))
	for _, v := range r.Proposals {
		proposed[v] = true
	}
	// Iterate by PID, not over the Decided map: the returned message names
	// the first offender, and it reaches violation artifacts, so the choice
	// must not depend on map order.
	for pid := range r.Report.StepsBy {
		p := sim.PID(pid)
		if v, ok := r.Report.Decided[p]; ok && !proposed[v] {
			return fmt.Errorf("%v decided unproposed value %d", p, v)
		}
	}
	return nil
}

// TerminationOfCorrect: every correct process decided within the budget.
// The schedules the explorer closes runs with are fair, so a budget
// exhaustion under an adequate budget is a genuine liveness failure, not a
// starved run.
type TerminationOfCorrect struct{}

// Name implements Property.
func (TerminationOfCorrect) Name() string { return "termination-of-correct" }

// Check implements Property.
func (TerminationOfCorrect) Check(r *Run) error {
	if r.Report == nil {
		return nil
	}
	for s := r.Pattern.Correct(); s != 0; s &= s - 1 {
		p := s.Min()
		if _, ok := r.Report.Decided[p]; !ok {
			return fmt.Errorf("correct %v did not decide within %d steps", p, r.Report.Steps)
		}
	}
	return nil
}

// AtMostK: at most K distinct values were decided — the Agreement property
// of k-set agreement.
type AtMostK struct{}

// Name implements Property.
func (AtMostK) Name() string { return "agreement" }

// Check implements Property.
func (AtMostK) Check(r *Run) error {
	if r.Report == nil || r.K <= 0 {
		return nil
	}
	var scratch [sim.MaxProcs]sim.Value
	decided := r.Report.DecidedValuesAppend(scratch[:0])
	if len(decided) > r.K {
		return fmt.Errorf("%d distinct decisions %v exceed k=%d", len(decided), decided, r.K)
	}
	return nil
}

// UpsilonSanity: the extraction's settled output is a legal Υ^f value for
// the run's failure pattern — in particular it is not the correct set.
// Inconclusive runs (outputs still moving at the horizon) pass vacuously;
// the explorer reports how many runs settled so a sweep that never settles
// is visible.
type UpsilonSanity struct {
	// Spec is the Υ^f specification the output must satisfy.
	Spec core.UpsilonSpec
}

// Name implements Property.
func (UpsilonSanity) Name() string { return "upsilon-sanity" }

// Check implements Property.
func (u UpsilonSanity) Check(r *Run) error {
	if !r.OutputsSettled {
		return nil
	}
	if err := u.Spec.LegalStable(r.Pattern, r.StableOutput); err != nil {
		return fmt.Errorf("settled output %v illegal: %v", r.StableOutput, err)
	}
	return nil
}
