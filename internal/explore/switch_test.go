package explore

import (
	"path/filepath"
	"strings"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/sim"
)

// Tests of the SwitchBudget dimension: schedule-controlled unstable detector
// histories. The calibration mutant is fig1-skip-on-change
// (core.MutSkipOnChange), whose broken branch is dead code under every
// stable-from-0 history — so the SwitchBudget=0 sweep must pass, seeded
// random testing must pass, and only a SwitchBudget>=1 sweep may (and must)
// find it.

// switchSweep sweeps the skip-on-change mutant at n=2 with the given engine
// and switch budget. The branch horizon must contain the minimal witness's
// second context switch (the skipping process resumes after the laggard's
// solo decision, around depth 30); 36 leaves headroom. The crash grid is
// trimmed to crash-at-0 and the flip grid to the productive mid-cycle time —
// the full-default sweep finds the same witness, this one just keeps the
// test fast; the CI smoke job runs the mutant through `fdlab explore` with
// the same trimmed grids (the full-default mutant sweep is a multi-minute
// pass; the default grids are CI-covered by the clean fig1 n=3 sweep).
func switchSweep(engine Engine, budget int) *Result {
	return Explore(Config{
		System:       SkipOnChangeFig1System(2),
		Engine:       engine,
		SwitchBudget: budget,
		FlipTimes:    []sim.Time{14},
		CrashTimes:   []sim.Time{0},
		MaxDepth:     36,
		MaxRuns:      400_000,
		MaxBlocks:    3,
		MaxBlock:     36,
		Budget:       2048,
		// One witness is all these tests need; the first violation stops the
		// sweep (the full-enumeration comparison lives in
		// TestDifferentialSwitchMutant).
		MaxViolations: 1,
	})
}

// TestSwitchMutantCleanAtBudgetZero: with SwitchBudget=0 the mutant is
// indistinguishable from the real protocol — the sweep must be violation-free
// under both engines, proving the violation found at budget 1 is reachable
// only through an unstable prefix.
func TestSwitchMutantCleanAtBudgetZero(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep skipped under -short (race lane); the full lane runs it")
	}
	for _, engine := range []Engine{EngineDPOR, EngineEnum} {
		res := switchSweep(engine, 0)
		if len(res.Violations) != 0 {
			t.Fatalf("%v: SwitchBudget=0 sweep found violations on the stable-history-correct mutant: %v",
				engine, res.Violations)
		}
		if res.Truncated {
			t.Errorf("%v: budget-0 sweep truncated", engine)
		}
	}
}

// TestSwitchMutantCaughtAtBudgetOne: one pre-stabilization output switch
// suffices — the sweep finds an agreement violation, shrinks the schedule,
// and records a flip schedule in the witness artifact.
func TestSwitchMutantCaughtAtBudgetOne(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep skipped under -short (race lane); the full lane runs it")
	}
	res := switchSweep(EngineDPOR, 1)
	if len(res.Violations) == 0 {
		t.Fatalf("SwitchBudget=1 sweep missed the skip-on-change mutant (%d runs)", res.Runs)
	}
	v := res.Violations[0]
	if v.Property != "agreement" {
		t.Fatalf("violated property %q, want agreement", v.Property)
	}
	// A shrunk schedule of length 0 is legal: it means the fair round-robin
	// tail alone reproduces the violation under the (possibly moved) flip.
	if int64(v.ShrunkSteps) >= v.Steps {
		t.Errorf("shrinker made no progress: %d -> %d", v.Steps, v.ShrunkSteps)
	}
	if len(v.Artifact.OracleFlips) == 0 {
		t.Fatalf("witness artifact carries no flip schedule; the violation should be unreachable without one: %v", v)
	}
	if v.Artifact.Schema != 3 {
		t.Errorf("witness artifact has schema %d, want 3 (classified)", v.Artifact.Schema)
	}
	if v.FailurePattern != "adopt-skipped-after-flip" {
		t.Errorf("classified as %q, want adopt-skipped-after-flip", v.FailurePattern)
	}
	if v.Artifact.PatternName != v.FailurePattern || v.Artifact.Narrative == "" {
		t.Errorf("artifact classification %q/%d-byte narrative does not mirror the violation's %q",
			v.Artifact.PatternName, len(v.Artifact.Narrative), v.FailurePattern)
	}
	if !strings.Contains(v.WitnessOracle, "pre[") {
		t.Errorf("witness oracle name %q does not render the unstable prefix", v.WitnessOracle)
	}
	t.Logf("found and shrunk: %v", v)
}

// TestSwitchMutantArtifactRoundTrip: the unstable-history counterexample
// must replay deterministically from disk, flips included.
func TestSwitchMutantArtifactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep skipped under -short (race lane); the full lane runs it")
	}
	res := switchSweep(EngineDPOR, 1)
	if len(res.Violations) == 0 {
		t.Fatal("no violation to round-trip")
	}
	path := filepath.Join(t.TempDir(), "counterexample.json")
	if err := res.Violations[0].Artifact.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	a, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.OracleFlips) == 0 {
		t.Fatal("flip schedule lost in the round trip")
	}
	for i := 0; i < 2; i++ {
		run, violation, err := a.Replay(nil)
		if err != nil {
			t.Fatal(err)
		}
		if violation == nil {
			t.Fatalf("replay %d did not reproduce (run: %d steps, decided %v)",
				i, run.Report.Steps, run.Report.Decided)
		}
		if violation.Error() != a.Violation {
			t.Errorf("replayed violation %q differs from recorded %q", violation.Error(), a.Violation)
		}
	}
}

// TestArtifactRejectsMalformed: the schema field must agree with the flip
// payload (a schema-1 file with flips replays divergently on a pre-flip
// reader), and an illegal stable set must be a clean error, not a panic.
func TestArtifactRejectsMalformed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep skipped under -short (race lane); the full lane runs it")
	}
	res := switchSweep(EngineDPOR, 1)
	if len(res.Violations) == 0 {
		t.Fatal("no violation to corrupt")
	}
	good := res.Violations[0].Artifact
	write := func(mutate func(a *Artifact)) string {
		a := *good
		mutate(&a)
		path := filepath.Join(t.TempDir(), "corrupt.json")
		if err := a.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}

	declassify := func(a *Artifact) { a.PatternName, a.Narrative = "", "" }
	if _, err := ReadArtifact(write(func(a *Artifact) { a.Schema = 1; declassify(a) })); err == nil {
		t.Error("schema-1 artifact with oracle_flips was accepted")
	}
	if _, err := ReadArtifact(write(func(a *Artifact) { a.Schema = 2; a.OracleFlips = nil; declassify(a) })); err == nil {
		t.Error("schema-2 artifact without oracle_flips was accepted")
	}
	if _, err := ReadArtifact(write(func(a *Artifact) { a.Schema = 2 })); err == nil {
		t.Error("schema-2 artifact carrying a classification was accepted")
	}
	if _, err := ReadArtifact(write(declassify)); err == nil {
		t.Error("schema-3 artifact without a failure pattern was accepted")
	}
	if _, err := ReadArtifact(write(func(a *Artifact) { a.PatternName = "no-such-pattern" })); err == nil {
		t.Error("schema-3 artifact naming an unknown pattern was accepted")
	}

	a, err := ReadArtifact(write(func(a *Artifact) {
		a.OracleStable = []int{0, 1} // the correct set: illegal for Υ under failure-free
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Replay(nil); err == nil {
		t.Error("illegal stable set replayed without error")
	} else if !strings.Contains(err.Error(), "not legal") {
		t.Errorf("unexpected replay error: %v", err)
	}
}

// TestDifferentialSwitchMutant: the legacy block enumerator executes
// explicit schedules and makes no independence assumptions, so it honors
// switch budgets soundly — but a flip-gated witness needs at least four
// preemption blocks (interleaved round-1 converge, the skipper's solo run,
// the laggard's decision), beyond the enumerator's usual 3-block bound.
// At MaxBlocks=4 both engines must find the identical violating
// (pattern, oracle, property) configurations at SwitchBudget=1 — which is
// also why the fdlab CLI rejects -switch-budget > 0 under -engine legacy: at
// the default 3-block bound the enumerator's pass would be vacuous.
func TestDifferentialSwitchMutant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep skipped under -short (race lane); the full lane runs it")
	}
	full := func(engine Engine) *Result {
		cfg := Config{
			System:       SkipOnChangeFig1System(2),
			Engine:       engine,
			SwitchBudget: 1,
			FlipTimes:    []sim.Time{14},
			CrashTimes:   []sim.Time{0},
			// 31 comfortably contains the witness's last race (the laggard's
			// round-2 decision poll against the skipper's write, ~depth 29)
			// and keeps the clean flip-variant configs' full-depth DFS
			// CI-affordable.
			MaxDepth:  31,
			MaxBlocks: 4,
			MaxBlock:  14,
			Budget:    2048,
			// The mutant has exactly two violating configurations on this
			// grid (one per stable set, symmetric); capping there lets both
			// sweeps stop once they have them instead of exhausting every
			// clean config at full depth (a ~9M-run, minutes-long pass that
			// found nothing more when run uncapped).
			MaxViolations: 2,
			Workers:       1,
		}
		return Explore(cfg)
	}
	d, l := full(EngineDPOR), full(EngineEnum)
	dk, lk := violationKeys(d), violationKeys(l)
	if strings.Join(dk, "\n") != strings.Join(lk, "\n") {
		t.Fatalf("violation sets differ at SwitchBudget=1:\nDPOR (%d):\n%s\nenum (%d):\n%s",
			len(dk), strings.Join(dk, "\n"), len(lk), strings.Join(lk, "\n"))
	}
	if len(dk) != 2 {
		t.Fatalf("found %d violating configs at SwitchBudget=1, want the mutant's 2:\n%s",
			len(dk), strings.Join(dk, "\n"))
	}
	t.Logf("identical %d violating configs; dpor %d runs (%d pruned) vs enum %d runs",
		len(dk), d.Runs, d.Pruned, l.Runs)
}

// TestSwitchMutantEscapesRandomTesting: 500 seeded-random schedules over
// stable-from-0 histories — the regime every other suite in this repository
// tests in — cannot distinguish the mutant from the real protocol (the
// mutated branch is dead code there), in the exact configuration the
// SwitchBudget=1 sweep breaks.
func TestSwitchMutantEscapesRandomTesting(t *testing.T) {
	const n = 2
	pattern := sim.FailFree(n)
	proposals := canonicalProposals(n)
	spec := core.Upsilon(n)
	for seed := int64(1); seed <= 500; seed++ {
		stable := spec.StableChoice(pattern, seed)
		h := spec.HistoryWithStable(pattern, 0, seed, stable)
		g := core.NewFig1(n, h, converge.UseAtomic)
		machines := make([]sim.StepMachine, n)
		for i := range machines {
			machines[i] = g.MutantMachine(proposals[i], core.MutSkipOnChange)
		}
		rep, err := sim.RunMachines(sim.Config{
			Pattern:  pattern,
			Schedule: sim.NewRandom(seed),
			Budget:   1 << 16,
		}, machines)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := check.SetAgreement(rep, pattern, g.K(), proposals); err != nil {
			t.Fatalf("seed %d: random testing caught the mutant (%v) — the premise no longer holds", seed, err)
		}
	}
}

// TestFlipTimesNormalization: an unsorted or duplicated flip-time grid must
// be normalized, not crash the sweep — flipVariants assumes a strictly
// increasing grid and fd.NewUnstable panics on an unordered phase tuple.
// Unobservable times (a phase ending at t <= 1 covers no step) are dropped.
func TestFlipTimesNormalization(t *testing.T) {
	got := Config{System: Fig1System(2), SwitchBudget: 1,
		FlipTimes: []sim.Time{14, 2, 2, 1, 0}}.withDefaults().FlipTimes
	want := []sim.Time{2, 14}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("normalized grid %v, want %v", got, want)
	}
	// A grid of entirely unobservable times must fall back to the default,
	// not silently degenerate the budget>0 sweep to stable-from-0.
	got = Config{System: Fig1System(2), SwitchBudget: 1,
		FlipTimes: []sim.Time{1}}.withDefaults().FlipTimes
	if len(got) != 2 || got[0] != 2 || got[1] != 14 {
		t.Fatalf("all-unobservable grid normalized to %v, want the {2,14} default", got)
	}
	// End-to-end regression: the unsorted grid used to panic inside a worker
	// at Instantiate (building the Unstable history). Truncation is fine —
	// every configuration still gets instantiated.
	res := Explore(Config{
		System:       Fig1System(2),
		SwitchBudget: 2,
		FlipTimes:    []sim.Time{14, 2, 2},
		CrashTimes:   []sim.Time{0},
		MaxDepth:     1,
		MaxRuns:      1,
		Budget:       2048,
		Workers:      1,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
}

// TestBaseOracleRecovery: re-flipping a flip variant must rebuild the name
// from the remembered base, never nest "pre[" suffixes, and baseOracle must
// recover the stable-from-0 choice exactly.
func TestBaseOracleRecovery(t *testing.T) {
	base := OracleChoice{Name: "U={p1}", Stable: sim.SetOf(0)}
	v1 := base.withFlips([]FlipPhase{{Until: 2, Out: sim.SetOf(1)}})
	v2 := v1.withFlips([]FlipPhase{{Until: 8, Out: sim.SetOf(0, 1)}})
	if strings.Count(v2.Name, " pre[") != 1 {
		t.Fatalf("re-flipped name %q nests the unstable-prefix suffix", v2.Name)
	}
	if got := baseOracle(v2); got.Name != base.Name || len(got.Flips) != 0 {
		t.Fatalf("baseOracle(%q) = %+v, want name %q with no flips", v2.Name, got, base.Name)
	}
	if got := v1.withFlips(nil); got.Name != base.Name || got.base != "" {
		t.Fatalf("withFlips(nil) = %+v, want the plain base choice", got)
	}
}

// TestFlipVariantsEnumeration pins the flip-schedule enumeration: base
// choices come through unchanged, every variant's phases are strictly
// ordered with no no-op switches, and the counts match the closed form
// (per base: for k switches, C(|times|, k) time tuples × valid output
// chains).
func TestFlipVariantsEnumeration(t *testing.T) {
	base := []OracleChoice{{Name: "U={p1}", Stable: sim.SetOf(0)}}
	domain := []sim.Set{sim.SetOf(0), sim.SetOf(1), sim.SetOf(0, 1)}

	if got := flipVariants(base, domain, SwitchPlan{}); len(got) != 1 {
		t.Fatalf("zero plan returned %d choices, want the 1 base choice", len(got))
	}

	plan := SwitchPlan{Budget: 2, Times: []sim.Time{2, 8}}
	got := flipVariants(base, domain, plan)
	// k=1: 2 times × 2 outputs (≠ stable) = 4.
	// k=2: 1 time pair × |{(a,b): b ∉ {a, stable}}| over the 3-value domain
	// with stable ∈ domain: a=stable gives 2 chains, each other a gives 1,
	// so 4 chains.
	want := 1 + 4 + 4
	if len(got) != want {
		for _, o := range got {
			t.Log(o.Name)
		}
		t.Fatalf("enumerated %d choices, want %d", len(got), want)
	}
	seen := make(map[string]bool)
	for _, o := range got {
		if seen[o.Name] {
			t.Errorf("duplicate choice %q", o.Name)
		}
		seen[o.Name] = true
		var last sim.Time
		for i, f := range o.Flips {
			if f.Until <= last {
				t.Errorf("%s: phase %d not strictly later than %d", o.Name, i, last)
			}
			last = f.Until
			next := o.Stable
			if i+1 < len(o.Flips) {
				next = o.Flips[i+1].Out
			}
			if f.Out == next {
				t.Errorf("%s: phase %d is a no-op switch", o.Name, i)
			}
		}
	}
}

// TestFlipVariantsAllocBound pins the enumeration's allocation discipline:
// the recursion backtracks through one shared phase buffer, so the per-call
// prefix cloning is gone and what remains is per *emitted* variant — the
// owned phase copy and its rendered name — plus slice growth. The bound is
// deliberately loose (the name rendering costs a handful of allocations per
// variant); the regression it guards against is allocation proportional to
// the much larger interior-node count of the recursion tree.
func TestFlipVariantsAllocBound(t *testing.T) {
	base := []OracleChoice{{Name: "U={p1}", Stable: sim.SetOf(0)}}
	domain := []sim.Set{sim.SetOf(0), sim.SetOf(1), sim.SetOf(0, 1), sim.SetOf(2)}
	plan := SwitchPlan{Budget: 3, Times: []sim.Time{2, 5, 8, 11}}
	variants := len(flipVariants(base, domain, plan))
	allocs := testing.AllocsPerRun(10, func() {
		flipVariants(base, domain, plan)
	})
	if limit := float64(16*variants + 32); allocs > limit {
		t.Fatalf("flipVariants allocated %.0f objects for %d variants; want <= %.0f (16/variant + 32)", allocs, variants, limit)
	}
}
