package explore

import (
	"testing"

	"weakestfd/internal/sim"
)

// TestPatternLabelForms pins the dedup-key format of patternLabel: the
// explorer keys its per-configuration caps on these strings, so two
// different configurations must never collide.
func TestPatternLabelForms(t *testing.T) {
	cases := []struct {
		p    sim.Pattern
		want string
	}{
		{sim.FailFree(3), "failure-free(n=3)"},
		{sim.CrashPattern(2, map[sim.PID]sim.Time{0: 0}), "crash{p1@0}(n=2)"},
		{sim.CrashPattern(2, map[sim.PID]sim.Time{0: 3}), "crash{p1@3}(n=2)"},
		{sim.CrashPattern(3, map[sim.PID]sim.Time{0: 0, 2: 3}), "crash{p1@0,p3@3}(n=3)"},
	}
	for _, c := range cases {
		if got := patternLabel(c.p); got != c.want {
			t.Errorf("patternLabel = %q, want %q", got, c.want)
		}
	}
	// Crash-at-0 and crash-at-3 are distinct configurations: the time is
	// part of the key, not just the faulty set.
	a := patternLabel(sim.CrashPattern(2, map[sim.PID]sim.Time{0: 0}))
	b := patternLabel(sim.CrashPattern(2, map[sim.PID]sim.Time{0: 3}))
	if a == b {
		t.Fatalf("crash-time ignored in dedup key: %q", a)
	}
}

// TestPatternsForEnumeration covers the grid pinning and the symmetric
// reduction of patternsFor.
func TestPatternsForEnumeration(t *testing.T) {
	// An empty grid is pinned to {0}: failure-free plus one crash-at-0 per
	// process.
	pats := patternsFor(2, 1, nil, false)
	if len(pats) != 3 {
		t.Fatalf("patternsFor(2,1,nil,false) = %d patterns, want 3", len(pats))
	}
	labels := make(map[string]bool)
	for _, p := range pats {
		labels[patternLabel(p)] = true
	}
	for _, want := range []string{"failure-free(n=2)", "crash{p1@0}(n=2)", "crash{p2@0}(n=2)"} {
		if !labels[want] {
			t.Errorf("missing pattern %s in %v", want, labels)
		}
	}

	// Asymmetric n=3, maxF=2, grid {0,3}: 1 failure-free + 3·2 singles +
	// 3·4 pairs = 19, all with distinct dedup keys.
	asym := patternsFor(3, 2, []sim.Time{0, 3}, false)
	if len(asym) != 19 {
		t.Fatalf("asymmetric enumeration = %d patterns, want 19", len(asym))
	}
	seen := make(map[string]bool)
	for _, p := range asym {
		l := patternLabel(p)
		if seen[l] {
			t.Errorf("duplicate pattern key %s", l)
		}
		seen[l] = true
	}

	// Symmetric: one canonical faulty set per cardinality (highest PIDs)
	// with non-decreasing times: 1 + 2 + 3 = 6.
	syms := patternsFor(3, 2, []sim.Time{0, 3}, true)
	if len(syms) != 6 {
		t.Fatalf("symmetric enumeration = %d patterns, want 6", len(syms))
	}
	for _, p := range syms {
		f := p.Faulty()
		if !f.SubsetOf(sim.SetOf(1, 2)) {
			t.Errorf("symmetric pattern %s crashes a non-canonical set", patternLabel(p))
		}
		if f == sim.SetOf(1, 2) && p.CrashAt(1) > p.CrashAt(2) {
			t.Errorf("symmetric times not canonical: %s", patternLabel(p))
		}
	}

	// maxF is clamped to n-1: at least one process stays correct.
	for _, p := range patternsFor(2, 5, []sim.Time{0}, false) {
		if p.Faulty().Len() > 1 {
			t.Errorf("pattern %s crashes everyone", patternLabel(p))
		}
	}
}
