package explore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"weakestfd/internal/lab"
	"weakestfd/internal/sim"
)

// Engine selects the exploration algorithm.
type Engine uint8

const (
	// EngineSource — the default — is source-DPOR with wakeup sequences
	// (source.go, wakeup.go): full-depth exploration of one representative
	// per commutativity class, with race reversals gated on source sets and
	// forced by wakeup sequences, plus the state-hash join layer (hash.go)
	// that shares post-horizon tails between runs reaching the same state.
	EngineSource Engine = iota
	// EngineDPOR is the classic Flanagan–Godefroid DPOR of PR 4 (dpor.go):
	// bare backtrack points plus sleep sets, kept as the reduction-quality
	// baseline the source engine is differentially tested and benchmarked
	// against.
	EngineDPOR
	// EngineEnum is the context-switch-bounded block enumerator of PR 3,
	// kept as the differential-testing reference: the reducing engines and
	// the enumerator must find the identical violation set on the standard
	// suites.
	EngineEnum
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineSource:
		return "source"
	case EngineDPOR:
		return "classic"
	case EngineEnum:
		return "legacy"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// engineLabel names the engine as configured: the source engine with the
// join layer on reports "source+hash".
func engineLabel(c Config) string {
	if c.Engine == EngineSource && !c.NoHash {
		return "source+hash"
	}
	return c.Engine.String()
}

// Config bounds one exploration. The zero value of every field has a usable
// default; only System is required.
type Config struct {
	// System is the protocol under exploration.
	System System
	// Engine selects the exploration algorithm; the zero value is
	// EngineSource.
	Engine Engine
	// NoHash disables the source engine's state-hash join layer, making it
	// pure source-DPOR — the differential-testing lens for the join
	// soundness argument. EngineSource only.
	NoHash bool
	// MaxStates caps the join cache's entries per configuration; once full,
	// new states are no longer admitted (Result.StateCapped) but cached ones
	// keep joining. Default 16384. EngineSource only.
	MaxStates int
	// MaxBlocks bounds the number of adversarial blocks per schedule (the
	// context-switch bound); the fair round-robin tail after the last block
	// is free. Default 2. EngineEnum only.
	MaxBlocks int
	// MaxBlock bounds the length of one adversarial block. Default 48.
	// EngineEnum only.
	MaxBlock int
	// Budget caps every run's total step count. Default 4096.
	Budget int64
	// MaxDepth bounds the step depth at which the DPOR engine inserts
	// backtrack points; beyond it runs continue under the fair tail without
	// branching. 0 means the step budget — genuinely full-depth for
	// terminating protocols. Non-terminating systems (the extraction, the
	// compositions' reduction tasks) need a finite bound to keep the
	// branching frontier tractable. EngineDPOR only.
	MaxDepth int
	// MaxRuns caps the number of runs one configuration's DPOR search may
	// execute (0 = unlimited); hitting the cap marks the Result Truncated,
	// which voids the exhaustiveness claim for that sweep. EngineDPOR only.
	MaxRuns int64
	// MaxFaults overrides the system's environment E_f (0 keeps it).
	MaxFaults int
	// CrashTimes is the crash-time grid per faulty process. Default {0, 3}:
	// crashed-from-the-start and a mid-protocol crash.
	CrashTimes []sim.Time
	// SwitchBudget bounds the pre-stabilization output switches enumerated
	// per detector history. 0 (the default) explores only stable-from-0
	// histories — exactly the PR-4 schedule space; b >= 1 additionally
	// enumerates, per stable value, every schedule of at most b flips with
	// phase outputs from the detector's range and flip times from FlipTimes.
	// Honored by both engines: the block enumerator executes explicit
	// schedules and makes no independence assumptions, and DPOR stays sound
	// because the query seam records queries and flips as conflicting
	// accesses of the history object.
	SwitchBudget int
	// FlipTimes is the global-time grid flips are drawn from when
	// SwitchBudget > 0. Default {2, 14}: one flip before the protocols'
	// first query sites (the boundary case) and one inside the first
	// gladiator cycle's query window — after both processes' round-entry
	// queries but before the first re-query under interleaved schedules, the
	// region the paper's adversaries exploit.
	FlipTimes []sim.Time
	// Symmetry enumerates crash sets up to process renaming — a speed
	// heuristic, not a sound reduction, because proposals are pinned to
	// PIDs (see patternsFor). Leave false for coverage claims.
	Symmetry bool
	// Workers is the lab worker pool size; <= 0 means GOMAXPROCS.
	Workers int
	// MaxViolations stops the exploration after this many distinct
	// violations (they are deduplicated per configuration and property).
	// Default 4.
	MaxViolations int
	// ShrinkBudget caps the number of candidate replays the shrinker spends
	// per violation. Default 2000.
	ShrinkBudget int
	// OnConfig, when non-nil, receives a progress line per finished
	// (pattern × oracle) configuration. Configurations explore concurrently
	// on the lab worker pool, so OnConfig is invoked from multiple goroutines
	// at once with no ordering or mutual-exclusion guarantee: the callback
	// must be safe for concurrent use and must serialize any output it
	// produces itself (see `fdlab explore -progress` for the canonical
	// mutex-guarded printer).
	OnConfig func(name string, runs int64)
}

func (c Config) withDefaults() Config {
	if c.MaxBlocks == 0 {
		c.MaxBlocks = 2
	}
	if c.MaxBlock == 0 {
		c.MaxBlock = 48
	}
	if c.Budget == 0 {
		c.Budget = 4096
	}
	if c.MaxDepth <= 0 || int64(c.MaxDepth) > c.Budget {
		c.MaxDepth = int(c.Budget)
	}
	if c.MaxFaults <= 0 || c.MaxFaults > c.System.MaxFaults() {
		c.MaxFaults = c.System.MaxFaults()
	}
	if len(c.CrashTimes) == 0 {
		c.CrashTimes = []sim.Time{0, 3}
	}
	// FlipTimes is a set of candidate times; flipVariants builds strictly
	// increasing phase tuples by walking it in order, and fd.NewUnstable
	// panics on an unordered tuple — normalize rather than crash mid-sweep.
	// Normalization runs before the default so that a grid of entirely
	// unobservable times (all < 2) falls back to the default grid instead
	// of silently degenerating a SwitchBudget>0 sweep to stable-from-0.
	c.FlipTimes = sortedTimes(c.FlipTimes)
	if c.SwitchBudget > 0 && len(c.FlipTimes) == 0 {
		c.FlipTimes = []sim.Time{2, 14}
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 4 // a non-positive cap would stop the sweep at birth
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 14
	}
	if c.ShrinkBudget == 0 {
		c.ShrinkBudget = 2000
	}
	return c
}

// Violation is one property failure, with its shrunk replayable artifact.
// The JSON encoding is the fleet wire and checkpoint representation, so
// field tags are part of the checkpoint schema.
type Violation struct {
	// Property is the violated property's name.
	Property string `json:"property"`
	// Message describes the failure (from Property.Check).
	Message string `json:"message"`
	// Pattern and Oracle identify the configuration the violation was
	// discovered under.
	Pattern string `json:"pattern"`
	Oracle  string `json:"oracle"`
	// WitnessPattern and WitnessOracle identify the *shrunk* witness
	// configuration: the shrinker also minimizes the configuration (drops
	// crashes from the pattern, shrinks the oracle's stable set), so these
	// may be strictly smaller than the discovery configuration. The
	// Artifact records the witness configuration.
	WitnessPattern string `json:"witness_pattern"`
	WitnessOracle  string `json:"witness_oracle"`
	// Steps is the length of the originally found violating run;
	// ShrunkSteps the length of the shrunk schedule prefix.
	Steps       int64 `json:"steps"`
	ShrunkSteps int   `json:"shrunk_steps"`
	// FailurePattern is the named failure pattern the classifier assigned to
	// the shrunk witness, and Narrative its human-readable story (see
	// classify.go). Both are recorded in the Artifact (schema 3).
	FailurePattern string `json:"failure_pattern"`
	Narrative      string `json:"narrative"`
	// Artifact is the replayable counterexample.
	Artifact *Artifact `json:"artifact,omitempty"`
}

func (v *Violation) String() string {
	where := fmt.Sprintf("%s, %s", v.Pattern, v.Oracle)
	if v.WitnessPattern != v.Pattern || v.WitnessOracle != v.Oracle {
		where += fmt.Sprintf(" (witness shrunk to %s, %s)", v.WitnessPattern, v.WitnessOracle)
	}
	return fmt.Sprintf("%s violated under %s (run %d steps, shrunk to %d): %s",
		v.Property, where, v.Steps, v.ShrunkSteps, v.Message)
}

// Result summarizes one exploration. The JSON encoding is the fleet wire
// and checkpoint representation, so field tags are part of the checkpoint
// schema.
type Result struct {
	// System is the explored system's name.
	System string `json:"system"`
	// Engine names the exploration algorithm that produced the result.
	Engine string `json:"engine"`
	// Configs is the number of (pattern × oracle) configurations.
	Configs int `json:"configs"`
	// Runs is the number of schedules executed (shrinking replays excluded).
	Runs int64 `json:"runs"`
	// Pruned counts the schedules a reducing engine proved redundant without
	// executing them (sleep-set and source-set skips); always 0 for
	// EngineEnum, whose stutter pruning cuts length scans rather than whole
	// schedules.
	Pruned int64 `json:"pruned"`
	// Joined counts the runs the source engine stopped at the branch horizon
	// because a state-hash join let them reuse an already-executed tail.
	// Joined runs are included in Runs.
	Joined int64 `json:"joined"`
	// Truncated reports that some configuration hit Config.MaxRuns, voiding
	// the sweep's exhaustiveness claim.
	Truncated bool `json:"truncated,omitempty"`
	// StateCapped reports that some configuration's join cache hit
	// Config.MaxStates and stopped admitting new states; exploration stays
	// exhaustive, only tail sharing degrades.
	StateCapped bool `json:"state_capped,omitempty"`
	// DepthLimited reports that runs went past Config.MaxDepth, i.e. the
	// exhaustiveness claim is bounded-depth: complete up to commutativity
	// over every prefix of MaxDepth steps, with the fair tail beyond.
	DepthLimited bool `json:"depth_limited,omitempty"`
	// MaxSteps is the longest run observed.
	MaxSteps int64 `json:"max_steps"`
	// SettledRuns counts extraction runs whose outputs settled (0 for
	// terminating systems, where every completed run is conclusive).
	SettledRuns int64 `json:"settled_runs"`
	// Violations are the distinct property failures, shrunk and replayable,
	// sorted by (pattern, oracle, property).
	Violations []*Violation `json:"violations,omitempty"`
	// ElapsedMS is the exploration wall-clock time; a merged Result sums the
	// shards' compute time instead.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// block is one adversarial schedule segment: up to n consecutive steps of
// pid (fewer if pid returns or crashes first).
type block struct {
	pid sim.PID
	n   int
}

// blockSchedule plays a block sequence then a fair round-robin tail,
// recording the granted sequence and per-block grant counts.
type blockSchedule struct {
	blocks  []block
	bi      int
	left    int
	tail    sim.Schedule
	granted []sim.PID
	counts  []int
}

func newBlockSchedule(blocks []block) *blockSchedule {
	s := &blockSchedule{blocks: blocks, tail: sim.RoundRobin(), counts: make([]int, len(blocks))}
	if len(blocks) > 0 {
		s.left = blocks[0].n
	}
	return s
}

// Next implements sim.Schedule.
func (s *blockSchedule) Next(t sim.Time, enabled sim.Set) sim.PID {
	for s.bi < len(s.blocks) {
		b := s.blocks[s.bi]
		if s.left > 0 && enabled.Has(b.pid) {
			s.left--
			s.counts[s.bi]++
			s.granted = append(s.granted, b.pid)
			return b.pid
		}
		s.bi++
		if s.bi < len(s.blocks) {
			s.left = s.blocks[s.bi].n
		}
	}
	p := s.tail.Next(t, enabled)
	s.granted = append(s.granted, p)
	return p
}

// Job is one (pattern × oracle) cell of a sweep's configuration space — the
// shard grain of distributed exploration. EnumerateJobs is deterministic, so
// any process holding the same Config rebuilds the identical job list and a
// job index range fully identifies a unit of work (internal/fleet ships
// index ranges, never jobs, over its wire protocol).
type Job struct {
	Pattern sim.Pattern
	Oracle  OracleChoice
}

// Label renders the job the way sweeps name lab scenarios and violations
// key their dedup: "<pattern>/<oracle>".
func (j Job) Label() string {
	return patternLabel(j.Pattern) + "/" + j.Oracle.Name
}

// EnumerateJobs returns cfg's (pattern × oracle) configuration space in the
// deterministic order Explore visits it.
func EnumerateJobs(cfg Config) []Job {
	return enumerateJobs(cfg.withDefaults())
}

func enumerateJobs(cfg Config) []Job {
	sys := cfg.System
	plan := SwitchPlan{Budget: cfg.SwitchBudget, Times: cfg.FlipTimes}
	var jobs []Job
	for _, p := range patternsFor(sys.N(), cfg.MaxFaults, cfg.CrashTimes, cfg.Symmetry) {
		for _, o := range sys.Oracles(p, plan) {
			jobs = append(jobs, Job{Pattern: p, Oracle: o})
		}
	}
	return jobs
}

// explorer carries the shared state of one Explore invocation.
type explorer struct {
	cfg         Config
	runs        atomic.Int64
	settled     atomic.Int64
	maxSteps    atomic.Int64
	violations  atomic.Int64
	pruned      atomic.Int64
	joined      atomic.Int64
	truncated   atomic.Bool
	stateCapped atomic.Bool

	mu    sync.Mutex
	found []*Violation
	seen  map[string]bool // config+property dedup
}

// Explore runs the bounded-exhaustive sweep for cfg.System, parallelized
// over the internal/lab worker pool: each (pattern × oracle) configuration
// becomes one lab scenario whose run is the full schedule DFS.
func Explore(cfg Config) *Result {
	cfg = cfg.withDefaults()
	return exploreJobs(cfg, enumerateJobs(cfg))
}

// ExploreJobs explores only the given subset of cfg's configuration space —
// the shard entry point for distributed sweeps (internal/fleet). The jobs
// must come from EnumerateJobs of a Config equal to cfg up to Workers;
// exploring a shard is result-identical to the same jobs' share of a full
// Explore except for the MaxViolations budget, which a single process
// spends globally but shards spend independently — callers wanting exact
// equality set MaxViolations above any plausible count.
func ExploreJobs(cfg Config, jobs []Job) *Result {
	return exploreJobs(cfg.withDefaults(), jobs)
}

func exploreJobs(cfg Config, jobs []Job) *Result {
	e := &explorer{cfg: cfg, seen: make(map[string]bool)}
	sys := cfg.System

	//lint:fdlint determinism -- wall-clock is Result.ElapsedMS metadata only; it never feeds schedules, fingerprints or artifacts
	start := time.Now()
	scs := make([]lab.Scenario, len(jobs))
	for i, jb := range jobs {
		jb := jb
		name := sys.Name() + "/" + jb.Label()
		scs[i] = lab.Scenario{
			Family: sys.Name(),
			Name:   name,
			Params: map[string]string{"pattern": patternLabel(jb.Pattern), "oracle": jb.Oracle.Name},
			Seeds:  1,
			Run: func(int64) (lab.Metrics, error) {
				violations, runs := e.exploreConfig(jb.Pattern, jb.Oracle)
				if cfg.OnConfig != nil {
					cfg.OnConfig(name, runs)
				}
				m := lab.Metrics{"runs": float64(runs), "violations": float64(violations)}
				if violations > 0 {
					return m, fmt.Errorf("%d property violations", violations)
				}
				return m, nil
			},
		}
	}
	lab.Run(scs, lab.Options{Workers: cfg.Workers})

	e.mu.Lock()
	defer e.mu.Unlock()
	maxSteps := e.maxSteps.Load()
	violations := append([]*Violation(nil), e.found...)
	sortViolations(violations)
	return &Result{
		System:       sys.Name(),
		Engine:       engineLabel(cfg),
		Configs:      len(jobs),
		Runs:         e.runs.Load(),
		Pruned:       e.pruned.Load(),
		Joined:       e.joined.Load(),
		Truncated:    e.truncated.Load(),
		StateCapped:  e.stateCapped.Load(),
		DepthLimited: cfg.MaxDepth < int(cfg.Budget) && maxSteps > int64(cfg.MaxDepth),
		MaxSteps:     maxSteps,
		SettledRuns:  e.settled.Load(),
		Violations:   violations,
		ElapsedMS:    time.Since(start).Milliseconds(),
	}
}

// violationKey is the (configuration, property) identity violations are
// deduplicated and ordered by — the same key explorer.check uses for its
// seen map.
func violationKey(v *Violation) string {
	return v.Pattern + "|" + v.Oracle + "|" + v.Property
}

// sortViolations orders violations by (pattern, oracle, property) so
// Result.Violations is bit-stable across worker counts and shard merges;
// lab workers complete configurations in a nondeterministic order.
func sortViolations(vs []*Violation) {
	sort.Slice(vs, func(i, j int) bool {
		return violationKey(vs[i]) < violationKey(vs[j])
	})
}

// MergeResults folds per-shard Results of one sweep back into the Result
// the single-process Explore would have produced (up to ElapsedMS, which
// sums shard compute time rather than measuring wall clock): counters and
// Configs summed, exhaustiveness flags OR-folded, MaxSteps maximized, and
// violations deduplicated by (pattern, oracle, property) then sorted. All
// inputs must come from the same System and engine configuration.
func MergeResults(results []*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("explore: merge of zero results")
	}
	out := &Result{System: results[0].System, Engine: results[0].Engine}
	seen := make(map[string]bool)
	for _, r := range results {
		if r.System != out.System || r.Engine != out.Engine {
			return nil, fmt.Errorf("explore: merge mixes sweeps: %s/%s vs %s/%s",
				out.System, out.Engine, r.System, r.Engine)
		}
		out.Configs += r.Configs
		out.Runs += r.Runs
		out.Pruned += r.Pruned
		out.Joined += r.Joined
		out.SettledRuns += r.SettledRuns
		out.ElapsedMS += r.ElapsedMS
		out.Truncated = out.Truncated || r.Truncated
		out.StateCapped = out.StateCapped || r.StateCapped
		out.DepthLimited = out.DepthLimited || r.DepthLimited
		if r.MaxSteps > out.MaxSteps {
			out.MaxSteps = r.MaxSteps
		}
		for _, v := range r.Violations {
			if key := violationKey(v); !seen[key] {
				seen[key] = true
				out.Violations = append(out.Violations, v)
			}
		}
	}
	sortViolations(out.Violations)
	return out, nil
}

// ParseEngine maps a CLI engine name to its Engine, accepting the names
// Engine.String prints plus common aliases. The empty string selects the
// default engine.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "source":
		return EngineSource, nil
	case "classic", "dpor":
		return EngineDPOR, nil
	case "legacy", "enum":
		return EngineEnum, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want source, classic or legacy)", name)
	}
}

// stopped reports that the violation budget is spent and exploration should
// wind down.
func (e *explorer) stopped() bool {
	return e.violations.Load() >= int64(e.cfg.MaxViolations)
}

// exploreConfig runs the configured engine's DFS for one (pattern, oracle)
// configuration and returns how many distinct violations it contributed and
// how many runs it executed. Configurations explore concurrently on the lab
// pool, so the per-config run count is tracked locally, not read off the
// shared counter.
func (e *explorer) exploreConfig(pattern sim.Pattern, oracle OracleChoice) (violations, runs int64) {
	switch e.cfg.Engine {
	case EngineSource:
		s := e.sourceConfig(pattern, oracle)
		e.pruned.Add(s.pruned)
		if s.truncated {
			e.truncated.Store(true)
		}
		if s.joins != nil && s.joins.capped {
			e.stateCapped.Store(true)
		}
		return s.violations, s.runs
	case EngineDPOR:
		d := e.dporConfig(pattern, oracle)
		e.pruned.Add(d.pruned)
		if d.truncated {
			e.truncated.Store(true)
		}
		return d.violations, d.runs
	case EngineEnum:
		c := &configRun{e: e, pattern: pattern, oracle: oracle}
		// Root: the pure fair schedule, no adversarial blocks.
		root, _ := c.run(nil)
		c.violations += e.check(root, pattern, oracle)
		c.dfs(nil)
		return c.violations, c.runs
	default:
		panic(fmt.Sprintf("explore: unknown engine %v", e.cfg.Engine))
	}
}

// configRun is the per-configuration DFS state.
type configRun struct {
	e          *explorer
	pattern    sim.Pattern
	oracle     OracleChoice
	runs       int64
	violations int64
}

// dfs extends the block prefix one block at a time. The length scan for a
// given owner stops as soon as a run cut the block short (every longer
// length is stutter-equivalent). Consecutive blocks share an owner only
// when the previous block ran its full MaxBlock length: a partial-then-same
// chain would duplicate the single longer block already scanned, while
// full-block chaining is the canonical decomposition of uninterrupted solo
// spans beyond MaxBlock — so one process can run up to MaxBlocks·MaxBlock
// consecutive steps, each span costing ⌈span/MaxBlock⌉ of the block budget.
func (c *configRun) dfs(blocks []block) {
	e := c.e
	if len(blocks) >= e.cfg.MaxBlocks || e.stopped() {
		return
	}
	n := e.cfg.System.N()
	last := sim.PID(-1)
	lastFull := false
	if len(blocks) > 0 {
		last = blocks[len(blocks)-1].pid
		lastFull = blocks[len(blocks)-1].n == e.cfg.MaxBlock
	}
	for p := 0; p < n; p++ {
		if sim.PID(p) == last && !lastFull {
			continue
		}
		for length := 1; length <= e.cfg.MaxBlock; length++ {
			if e.stopped() {
				return
			}
			child := append(append([]block(nil), blocks...), block{pid: sim.PID(p), n: length})
			run, counts := c.run(child)
			if counts[len(child)-1] < length {
				// The block ended early (pid returned/crashed or the run
				// finished): this run equals the previous length's run, and
				// so would every longer one. Stutter-prune the scan.
				break
			}
			c.violations += e.check(run, c.pattern, c.oracle)
			c.dfs(child)
		}
	}
}

// run executes one schedule (blocks + fair tail) on fresh state.
func (c *configRun) run(blocks []block) (*Run, []int) {
	e := c.e
	sched := newBlockSchedule(blocks)
	run := execute(e.cfg.System, c.pattern, c.oracle, sched, e.cfg.Budget, nil, nil)
	run.Schedule = sched.granted
	c.runs++
	e.runs.Add(1)
	if run.OutputsSettled {
		e.settled.Add(1)
	}
	bumpMax(&e.maxSteps, run.Report.Steps)
	return run, sched.counts
}

// bumpMax raises the atomic maximum m to v.
func bumpMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// execute runs one simulation of sys under the given schedule on fresh
// shared state and returns the completed Run (properties not yet checked).
// log, when non-nil, records every step's shared-object access set; the
// instance's detector histories are then registered with a query seam so
// queries and history flips are part of those sets. An unrecorded run needs
// no seam — flip schedules live in the oracle itself, so outputs are
// identical either way. stop, when non-nil, is polled after every step (and
// after the instance's observer) with the step count and the query seam; a
// true return ends the run early — the source engine's state-hash join probe.
func execute(sys System, pattern sim.Pattern, oracle OracleChoice, sched sim.Schedule, budget int64, log *sim.AccessLog, stop func(sim.Time, *sim.QuerySeam) bool) *Run {
	inst := sys.Instantiate(pattern, oracle)
	simCfg := sim.Config{Pattern: pattern, Schedule: sched, Budget: budget, AccessLog: log}
	var seam *sim.QuerySeam
	if log != nil && len(inst.Histories) > 0 {
		seam = sim.NewQuerySeam(log)
		for _, h := range inst.Histories {
			seam.Register(h.Name, h.H)
		}
		simCfg.Queries = seam
	}
	if inst.Observe != nil || stop != nil {
		observe := inst.Observe
		simCfg.StopWhen = func(t sim.Time) bool {
			if observe != nil {
				observe(t)
			}
			return stop != nil && stop(t, seam)
		}
	}
	var rep *sim.Report
	var err error
	if len(inst.Tasks) > 0 {
		rep, err = sim.RunTaskMachines(simCfg, inst.Tasks)
	} else {
		rep, err = sim.RunMachines(simCfg, inst.Machines)
	}
	run := &Run{
		System:    sys.Name(),
		Pattern:   pattern,
		Oracle:    oracle,
		Proposals: inst.Proposals,
		K:         inst.K,
		Report:    rep,
		Err:       err,
		seam:      seam,
	}
	if inst.Finish != nil {
		inst.Finish(run)
	}
	return run
}

// check evaluates every property against the run; each violation is
// deduplicated per (pattern, oracle, property), shrunk, and recorded.
func (e *explorer) check(run *Run, pattern sim.Pattern, oracle OracleChoice) int64 {
	var contributed int64
	for _, prop := range e.cfg.System.Properties() {
		err := prop.Check(run)
		if err == nil {
			continue
		}
		key := fmt.Sprintf("%s|%s|%s", patternLabel(pattern), oracle.Name, prop.Name())
		e.mu.Lock()
		dup := e.seen[key]
		if !dup {
			e.seen[key] = true
		}
		e.mu.Unlock()
		if dup {
			continue
		}
		e.violations.Add(1)
		contributed++

		w := shrink(e.cfg, run, prop)
		if w.message == "" {
			w.message = err.Error()
		}
		// Re-execute the shrunk witness with an access log so the classifier
		// sees the minimized trace's structural features (the exploration
		// runs themselves are unrecorded for speed).
		wrun := execute(e.cfg.System, w.pattern, w.oracle,
			sim.NewFixedSchedule(w.schedule), e.cfg.Budget, sim.NewAccessLog(), nil)
		fp := Classify(wrun, prop.Name())
		v := &Violation{
			Property:       prop.Name(),
			Message:        w.message,
			Pattern:        patternLabel(pattern),
			Oracle:         oracle.Name,
			WitnessPattern: patternLabel(w.pattern),
			WitnessOracle:  w.oracle.Name,
			Steps:          run.Report.Steps,
			ShrunkSteps:    len(w.schedule),
			FailurePattern: fp.Name,
			Narrative:      fp.Narrative,
			Artifact:       newArtifact(e.cfg, run, prop.Name(), w, fp),
		}
		e.mu.Lock()
		e.found = append(e.found, v)
		e.mu.Unlock()
	}
	return contributed
}
