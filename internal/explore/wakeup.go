package explore

import "weakestfd/internal/sim"

// Wakeup-sequence construction for the source-DPOR engine (source.go).
//
// When the race analysis of a completed run E finds a race between steps
// b < c, classic DPOR inserts a bare backtrack point — "try proc(c) at
// node b" — and hopes the fair tail wanders into the reversal. Source-DPOR
// (Abdulla, Aronis, Jonsson, Sagonas, POPL 2014) computes the actual
// *wakeup sequence* v·p: the subsequence of steps strictly between b and c
// that do not happen-after step b (notdep), followed by p = proc(c). Forcing
// that sequence steers the next run directly into the race reversal, and the
// *initials* of v·p — the processes whose first event in the sequence
// depends on nothing before it — are exactly the alternatives whose
// exploration from node b already covers the reversal: if any initial has
// been explored there (the node's covered set), the race needs no new run at
// all. That gating is what removes classic DPOR's redundant sibling
// executions; the lost-update toy drops from 6 executed interleavings to its
// 4 Mazurkiewicz classes.
//
// Executability: every process's steps appear in v in program order (notdep
// is program-order closed — a later step of a process happens-after its
// earlier ones), steps in v observe no dropped write (a read of a dropped
// write would make the reader dependent on step b too), and enabledness is
// monotone under left shifts (crash times are absolute, so a process alive
// at a later time is alive earlier; returned/halted is forever). A forced
// wakeup prefix therefore never diverges — with one exception, pre-checked
// by the engine: histories with pre-stabilization flips pin output switches
// to *absolute* times, so left-shifting a querying step can move it across a
// flip boundary and change its observation. Under flip schedules the engine
// degrades to bare source-set insertion (a single initial, one step), which
// stays sound and still gates on the covered set.

// raceStep is one entry of a wakeup sequence under construction: a step's
// process and access set (aliasing the run's access log; consumed before the
// next run resets it).
type raceStep struct {
	p   sim.PID
	acc []sim.Access
}

// notDepWindow appends to dst the steps of (b, c) (exclusive) that do not
// happen-after step b, reading per-step clocks from the current run's
// analysis. procB/scB identify step b's process and its per-process step
// count at b; a step k happens-after b exactly when its post-step clock has
// clk[procB] >= scB.
func (s *srcSearch) notDepWindow(dst []raceStep, b, c int, procB int, scB int32) []raceStep {
	for k := b + 1; k < c; k++ {
		if s.stepClk[k][procB] >= scB {
			continue
		}
		p, acc := s.log.Step(k)
		dst = append(dst, raceStep{p: p, acc: acc})
	}
	return dst
}

// initials returns the processes with an event in seq that has no
// dependent predecessor inside seq: no earlier event of the same process,
// and no earlier conflicting event. These are the first steps of the
// linearizations of seq's trace — exploring any one of them from the
// insertion node covers the whole trace.
func initials(seq []raceStep) sim.Set {
	out := sim.EmptySet
	for m, e := range seq {
		if out.Has(e.p) {
			continue // an earlier event of e.p is already the candidate
		}
		dep := false
		for l := 0; l < m; l++ {
			if seq[l].p == e.p || sim.AccessesConflict(seq[l].acc, e.acc) {
				dep = true
				break
			}
		}
		if !dep {
			out = out.Add(e.p)
		}
	}
	return out
}

// hasSequence reports whether an identical PID sequence is already pending
// in the node's wakeup set.
func hasSequence(wut [][]sim.PID, seq []sim.PID) bool {
outer:
	for _, w := range wut {
		if len(w) != len(seq) {
			continue
		}
		for i := range w {
			if w[i] != seq[i] {
				continue outer
			}
		}
		return true
	}
	return false
}
