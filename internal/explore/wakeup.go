package explore

import "weakestfd/internal/sim"

// Wakeup-sequence construction for the source-DPOR engine (source.go).
//
// When the race analysis of a completed run E finds a race between steps
// b < c, classic DPOR inserts a bare backtrack point — "try proc(c) at
// node b" — and hopes the fair tail wanders into the reversal. Source-DPOR
// (Abdulla, Aronis, Jonsson, Sagonas, POPL 2014) computes the actual
// *wakeup sequence* v·p: the subsequence of steps strictly between b and c
// that do not happen-after step b (notdep), followed by p = proc(c). Forcing
// that sequence steers the next run directly into the race reversal, and the
// *initials* of v·p — the processes whose first event in the sequence
// depends on nothing before it — are exactly the alternatives whose
// exploration from node b already covers the reversal: if any initial has
// been explored there (the node's covered set), the race needs no new run at
// all. That gating is what removes classic DPOR's redundant sibling
// executions; the lost-update toy drops from 6 executed interleavings to its
// 4 Mazurkiewicz classes.
//
// Executability. Every process's steps appear in v in program order (notdep
// is program-order closed — a later step of a process happens-after its
// earlier ones), steps in v observe no dropped write (a read of a dropped
// write would make the reader dependent on step b too), and enabledness is
// monotone under left shifts (crash times are absolute, so a process alive
// at a later time is alive earlier; returned/halted is forever).
//
// Histories with pre-stabilization flips add one more obligation, because a
// flip is pinned to an *absolute* global time while the reversal shifts
// every window step leftward. The dependency rule, applied by anchorWindow:
//
//	a step that reads a history object depends on every flip of that
//	object whose absolute time lies strictly between the step's shifted
//	position and its current position (lo < flip time <= hi) — crossing
//	such a flip would change what the step's query observes, so the pair
//	does not commute and the step cannot join the wakeup sequence.
//
// Dropping a flip-pinned step breaks the transitivity the clock test
// provides for happens-after-b drops (a flip-pinned step does *not*
// happen-after b), so anchorWindow also drops every later window step that
// depends on a dropped one — same process (program order) or conflicting
// access set — and step c itself must pass both checks before the full
// sequence v·p may be forced. When c fails them, the engine falls back to
// the bare single-initial insertion (classic DPOR's per-race insertion,
// gated on the unanchored window's initials exactly as before PR 10); with
// no flips in the configuration the anchored window is the notdep window
// verbatim and the stable-history search is unchanged, run for run.

// raceStep is one entry of a wakeup sequence under construction: a step's
// process, access set (aliasing the run's access log; consumed before the
// next run resets it), and the global time it executed at in the analyzed
// run (step index i runs at time i+1).
type raceStep struct {
	p   sim.PID
	acc []sim.Access
	t   sim.Time
}

// notDepWindow appends to dst the steps of (b, c) (exclusive) that do not
// happen-after step b, reading per-step clocks from the current run's
// analysis. procB/scB identify step b's process and its per-process step
// count at b; a step k happens-after b exactly when its post-step clock has
// clk[procB] >= scB.
func (s *srcSearch) notDepWindow(dst []raceStep, b, c int, procB int, scB int32) []raceStep {
	for k := b + 1; k < c; k++ {
		if s.stepClk[k][procB] >= scB {
			continue
		}
		p, acc := s.log.Step(k)
		dst = append(dst, raceStep{p: p, acc: acc, t: sim.Time(k + 1)})
	}
	return dst
}

// anchorWindow refines the clock-based notdep window win of a race at step b
// for flip-time-anchored histories: window steps are kept in order, each
// checked at the position it would occupy in the forced reversal (the j-th
// kept step executes at time b+j+1), and dropped when a history read would
// cross a flip on the way there or when the step depends on an
// already-dropped one (same process or conflicting accesses — the explicit
// transitive closure the clock test cannot provide for flip drops). It
// returns the kept steps (backed by s.keep) and whether step c itself —
// accC at original time cTime, process pC, shifted to the slot after the
// kept steps — still replays its recorded behavior there. A nil seam (or a
// flip-free one) keeps everything and always clears c.
func (s *srcSearch) anchorWindow(win []raceStep, b int, pC sim.PID, accC []sim.Access, cTime sim.Time) (kept []raceStep, okC bool) {
	kept = s.keep[:0]
	dropped := s.drops[:0]
	for _, e := range win {
		if dependsOnDropped(e.p, e.acc, dropped) ||
			s.flipCrossedReads(e.acc, sim.Time(b+len(kept)+1), e.t) {
			dropped = append(dropped, e)
			continue
		}
		kept = append(kept, e)
	}
	s.keep, s.drops = kept, dropped
	okC = !dependsOnDropped(pC, accC, dropped) &&
		!s.flipCrossedReads(accC, sim.Time(b+len(kept)+1), cTime)
	return kept, okC
}

// dependsOnDropped reports whether a step of process p with access set acc
// depends on any dropped window step: an earlier step of the same process
// (program order) or a conflicting access set. Such a step cannot precede
// the dropped one in the forced reversal without changing behavior.
func dependsOnDropped(p sim.PID, acc []sim.Access, dropped []raceStep) bool {
	for i := range dropped {
		if dropped[i].p == p || sim.AccessesConflict(dropped[i].acc, acc) {
			return true
		}
	}
	return false
}

// flipCrossedReads reports whether moving a step with access set acc from
// time hi to the earlier time lo would carry one of its history reads across
// an output flip (the anchorWindow dependency rule). Writes of history
// objects in acc are the environment's own flip writes charged to the step's
// span — they stay pinned to their absolute time in any schedule and do not
// constrain the step.
func (s *srcSearch) flipCrossedReads(acc []sim.Access, lo, hi sim.Time) bool {
	if s.seam == nil || lo >= hi {
		return false
	}
	for _, a := range acc {
		if a.Kind == sim.AccessRead && s.seam.FlipCrossed(a.Obj, lo, hi) {
			return true
		}
	}
	return false
}

// initials returns the processes with an event in seq that has no
// dependent predecessor inside seq: no earlier event of the same process,
// and no earlier conflicting event. These are the first steps of the
// linearizations of seq's trace — exploring any one of them from the
// insertion node covers the whole trace.
func initials(seq []raceStep) sim.Set {
	out := sim.EmptySet
	for m, e := range seq {
		if out.Has(e.p) {
			continue // an earlier event of e.p is already the candidate
		}
		dep := false
		for l := 0; l < m; l++ {
			if seq[l].p == e.p || sim.AccessesConflict(seq[l].acc, e.acc) {
				dep = true
				break
			}
		}
		if !dep {
			out = out.Add(e.p)
		}
	}
	return out
}

// hasSequence reports whether an identical PID sequence is already pending
// in the node's wakeup set.
func hasSequence(wut [][]sim.PID, seq []sim.PID) bool {
outer:
	for _, w := range wut {
		if len(w) != len(seq) {
			continue
		}
		for i := range w {
			if w[i] != seq[i] {
				continue outer
			}
		}
		return true
	}
	return false
}
