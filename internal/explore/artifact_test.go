package explore

import (
	"strings"
	"testing"
)

// flipArtifact builds a syntactically valid schema-2 fig2 artifact whose
// unstable prefix is the given flip, for driving Replay's range validation.
// n=3, f=1: the Υ^f range floor is n−f = 2 processes, so singleton flip
// outputs are below range while the protocol's own flipVariants would never
// emit them — exactly the hand-edited-artifact path the check guards.
func flipArtifact(out []int) *Artifact {
	return &Artifact{
		Schema:       2,
		System:       "fig2",
		N:            3,
		F:            1,
		OracleStable: []int{0, 1},
		OracleFlips:  []ArtifactFlip{{Until: 8, Out: out}},
		Budget:       256,
		Property:     "agreement",
	}
}

// TestReplayRejectsOutOfRangeFlips is the hand-edited-artifact gate: a flip
// output outside the system's detector range must fail Replay with a
// range error, not execute as if the environment could produce it.
func TestReplayRejectsOutOfRangeFlips(t *testing.T) {
	cases := []struct {
		name    string
		a       *Artifact
		wantErr string
	}{
		{
			name:    "upsilon flip below the range floor",
			a:       flipArtifact([]int{2}),
			wantErr: "below the Υ range floor",
		},
		{
			name: "upsilon flip output not a subset of Pi",
			a: &Artifact{
				Schema: 2, System: "fig2", N: 3, F: 1,
				OracleStable: []int{0, 1},
				OracleFlips:  []ArtifactFlip{{Until: 8, Out: []int{0, 3}}},
				Budget:       256, Property: "agreement",
			},
			wantErr: "out of range",
		},
		{
			name: "omega flip with two leaders",
			a: &Artifact{
				Schema: 2, System: "extract-omega", N: 3, F: 2,
				OracleStable: []int{0},
				OracleFlips:  []ArtifactFlip{{Until: 8, Out: []int{1, 2}}},
				Budget:       256, Property: "upsilon-sanity",
			},
			wantErr: "not a singleton",
		},
		{
			name: "flip against a system that consumes no history",
			a: &Artifact{
				Schema: 2, System: "timed-composed", N: 2, F: 1,
				OracleFlips: []ArtifactFlip{{Until: 8, Out: []int{0}}},
				Budget:      256, Property: "agreement",
			},
			wantErr: "no flip schedule is legal",
		},
		{
			name:    "in-range upsilon flip replays",
			a:       flipArtifact([]int{1, 2}),
			wantErr: "",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := c.a.Replay(nil)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("legal flip rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("out-of-range flip replayed")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
