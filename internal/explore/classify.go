package explore

import (
	"strings"

	"weakestfd/internal/sim"
)

// Trace classification: mapping a shrunk counterexample onto a library of
// named failure patterns. A shrunk artifact is a verified but opaque object —
// a step list plus a flip schedule — and the classifier is what turns it into
// evidence a human can read: it matches structural features of the witness
// run (the per-step shared-object access sets from sim.AccessLog, the
// flip/decide ordering, which crashes and flips the shrinker proved
// load-bearing by keeping them) against the patterns below and attaches the
// winning pattern's narrative to the artifact (schema 3) and to `fdlab
// replay` output.
//
// The features are deliberately structural, not mutant-aware: the classifier
// never looks at which mutation produced the run, only at what the run did.
// That is what makes the mutant zoo a real calibration: each mutant's
// documented kill pattern is a *prediction* that the mutant-gate CI job
// checks, and a classifier regression (or a mutant whose failure mode drifts)
// breaks the pairing visibly.

// FailurePattern is one named entry of the pattern library: a stable name
// (recorded in artifacts and asserted by the corpus tests), the structural
// signature that selects it, and the human-readable narrative replay prints.
type FailurePattern struct {
	// Name is the stable pattern identifier, e.g. "adopt-skipped-after-flip".
	Name string
	// Signature describes the structural features that select this pattern.
	Signature string
	// Narrative is the human-readable story of the failure class.
	Narrative string
}

// patternLibrary is the full taxonomy, in classification precedence order
// within each property. Names are stable: artifacts record them and the
// corpus regression tests assert them.
var patternLibrary = []FailurePattern{
	{
		Name:      "unproposed-decision",
		Signature: "validity violated: a decided value is outside the proposal set",
		Narrative: "A process decided a value nobody proposed. The commit path writes a corrupted value into the decision register, so the failure needs no adversarial schedule at all — the explorer's root fair run already exhibits it.",
	},
	{
		Name:      "crash-stalled-wait",
		Signature: "termination-of-correct violated; the shrunk witness keeps a crash",
		Narrative: "A correct process is parked forever in a wait loop whose exit condition counts a crashed process. The crash is load-bearing — the shrinker could not drop it, and the failure-free runs of the same schedule terminate — so the bug is a liveness dependence on a process the environment is allowed to kill.",
	},
	{
		Name:      "commit-starvation",
		Signature: "termination-of-correct violated on a failure-free witness",
		Narrative: "Correct processes loop without ever committing although nobody crashed: successive rounds keep invalidating each other's converge attempts and no commit lands within the budget.",
	},
	{
		Name:      "empty-detector-output",
		Signature: "upsilon-sanity violated: the settled output is the empty set",
		Narrative: "The emulated detector's outputs settled on ∅, which is outside the Υ range — every legal Υ^f output is a non-empty process set. The reduction's output switch is writing something other than φ_D's extracted set.",
	},
	{
		Name:      "stale-leader-latch",
		Signature: "upsilon-sanity violated: settled output equals the correct set, and the witness keeps a flip",
		Narrative: "A pre-stabilization leader change never propagated: the reduction latched its first detector query and kept republishing it, so after the underlying Ω source stabilized the extraction still computed the complement of the stale leader — exactly the correct set, the one value Υ^f may never settle on. Both the flip and the crash are load-bearing: stable-from-0 histories latch the true leader, and without the crash the latched complement is a legal strict subset of correct.",
	},
	{
		Name:      "correct-set-output",
		Signature: "upsilon-sanity violated: settled output equals the correct set on a stable-from-0 witness",
		Narrative: "The outputs settled on the correct set itself with no detector instability needed: the reduction's output switch publishes the full candidate set instead of φ_D's extracted set, so under a failure-free pattern the emulation stabilizes on correct — forbidden for Υ^f.",
	},
	{
		Name:      "undersized-output",
		Signature: "upsilon-sanity violated: settled output breaks the Υ^f range (size or membership)",
		Narrative: "The settled output is outside the Υ^f range — too few processes (below n+1−f) or not a subset of Π — without equalling the correct set. The emulation is publishing a set the detector specification can never output.",
	},
	{
		Name:      "adopt-skipped-after-flip",
		Signature: "agreement violated; some process's round-indexed accesses skip a round; the witness keeps a flip",
		Narrative: "A schedule-controlled detector output switch made a round's re-query disagree with its entry query, and instead of writing Stable[r] and adopting D[r] the process skipped the round's converge entirely: its access trace jumps a round index, it escapes with a stale value and solo-commits it in a round the others never contaminate, while another process solo-commits a different value a round behind. The flip is load-bearing — stable-from-0 histories make both query sites agree and the skip is dead code.",
	},
	{
		Name:      "adopt-skipped-on-change",
		Signature: "agreement violated; some process's round-indexed accesses skip a round; no oracle flip in the witness",
		Narrative: "A detector output change made a round's re-query disagree with its entry query and the process skipped the round's converge — but the change came from an emulated detector's ordinary shared-state evolution, not from an oracle flip schedule: the composition reaches the skip path with a zero switch budget, because the emulated module's output register is just shared state the schedule already controls.",
	},
	{
		Name:      "stale-snapshot-decide",
		Signature: "agreement violated; the decider's last read of a snapshot entry A[r][k] precedes another process's write of the same entry",
		Narrative: "A gladiator adopted the minimum of a snapshot scan taken below the overlap threshold: a concurrent snapshot write landed after the decider's last scan read, so two gladiators entered the sub-converge with minima over unrelated scans and the shed-down bound on distinct sub-round inputs no longer holds.",
	},
	{
		Name:      "wrong-adopt-order",
		Signature: "agreement violated; the decider's last read of a converge register precedes another process's write of the same register",
		Narrative: "A non-committing process kept its own value instead of adopting the minimum of the smallest committing set: under the lost-update interleaving — both sides read the converge registers before either's write lands — each side escapes the round believing it ran alone, later solo-commits its own value, and the decision register collects more distinct values than k. The chain-containment argument behind C-Agreement is exactly what the adopt rule was carrying.",
	},
	{
		Name:      "flip-gated-divergence",
		Signature: "agreement violated; the witness keeps a flip; no finer structural feature matched",
		Narrative: "The agreement failure needs a pre-stabilization detector output switch — the shrinker kept a flip — but the access trace matches no finer structural pattern: the divergence is gated by when queries straddle the flip rather than by a recognisable skip or missed write.",
	},
	{
		Name:      "unclassified",
		Signature: "no pattern signature matched",
		Narrative: "The violation reproduces but matches no known structural signature. Inspect the trace with `fdlab replay -trace` and consider growing the pattern library.",
	},
}

// Patterns returns the full pattern library, in classification precedence
// order. The slice is shared — callers must not mutate it.
func Patterns() []FailurePattern {
	return patternLibrary
}

// PatternByName looks a pattern up by its stable name, reporting whether it
// exists.
func PatternByName(name string) (FailurePattern, bool) {
	for _, p := range patternLibrary {
		if p.Name == name {
			return p, true
		}
	}
	return FailurePattern{}, false
}

func mustPattern(name string) FailurePattern {
	p, ok := PatternByName(name)
	if !ok {
		panic("explore: pattern library is missing " + name)
	}
	return p
}

// Classify matches the structural features of a (shrunk, recorded) witness
// run against the pattern library and returns the selected pattern. run must
// carry the witness configuration (Pattern/Oracle are the shrunk ones, so a
// surviving crash or flip is load-bearing by construction) and a populated
// Report.Accesses — the explorer re-executes the witness with an access log
// before classifying, and Artifact.Replay always records one.
func Classify(run *Run, property string) FailurePattern {
	switch property {
	case "validity":
		return mustPattern("unproposed-decision")
	case "termination-of-correct":
		if !run.Pattern.Faulty().IsEmpty() {
			return mustPattern("crash-stalled-wait")
		}
		return mustPattern("commit-starvation")
	case "upsilon-sanity":
		if run.StableOutput.IsEmpty() {
			return mustPattern("empty-detector-output")
		}
		if run.StableOutput == run.Pattern.Correct() {
			if len(run.Oracle.Flips) > 0 {
				return mustPattern("stale-leader-latch")
			}
			return mustPattern("correct-set-output")
		}
		return mustPattern("undersized-output")
	case "agreement":
		if roundSkipper(run) >= 0 {
			if len(run.Oracle.Flips) > 0 {
				return mustPattern("adopt-skipped-after-flip")
			}
			return mustPattern("adopt-skipped-on-change")
		}
		if deciderMissedWrite(run, isSnapshotObj) {
			return mustPattern("stale-snapshot-decide")
		}
		if deciderMissedWrite(run, isConvergeObj) {
			return mustPattern("wrong-adopt-order")
		}
		if len(run.Oracle.Flips) > 0 {
			return mustPattern("flip-gated-divergence")
		}
	}
	return mustPattern("unclassified")
}

// isSnapshotObj matches fig2's gladiator snapshot entries ("A[r][k]/|U|", …).
func isSnapshotObj(name string) bool { return strings.HasPrefix(name, "A[") }

// isConvergeObj matches k-converge registers at any nesting level
// ("nconv[r][k]/param.A", "gconv…", "fconv…").
func isConvergeObj(name string) bool { return strings.Contains(name, "conv") }

// roundIndexedObj reports whether an access-log object name carries a
// protocol round index as its first bracket group, and isolates it. These
// are the per-round protocol objects — decision-estimate and stability
// registers, converge registers, snapshot entries — whose access pattern
// reveals which rounds a process actually executed. Detector history
// objects, the plain decision register "D", and the extraction's registers
// are excluded: only the agreement protocols' round counters are contiguous
// by construction.
func roundIndexedObj(name string) (round int, ok bool) {
	switch {
	case strings.HasPrefix(name, "D["), strings.HasPrefix(name, "Stable["), strings.HasPrefix(name, "A["):
	case strings.HasPrefix(name, "nconv["), strings.HasPrefix(name, "gconv["), strings.HasPrefix(name, "fconv["):
	default:
		return 0, false
	}
	i := strings.IndexByte(name, '[')
	j := strings.IndexByte(name[i:], ']')
	if j < 0 {
		return 0, false
	}
	r := 0
	digits := name[i+1 : i+j]
	if digits == "" {
		return 0, false
	}
	for k := 0; k < len(digits); k++ {
		c := digits[k]
		if c < '0' || c > '9' {
			return 0, false
		}
		r = r*10 + int(c-'0')
	}
	return r, true
}

// roundSkipper scans the run's access log for a process whose round-indexed
// accesses have a gap — it touched rounds r and r' > r+1 but never any round
// in between. The unmutated protocols advance their round counter by exactly
// one, so a gap is the structural fingerprint of a skipped round (e.g. the
// skip-on-change escape jumping r += 2). Returns the first skipping PID, or
// -1 when every process's round trace is contiguous (or there is no log).
func roundSkipper(run *Run) sim.PID {
	log := run.Report.Accesses
	if log == nil {
		return -1
	}
	var seen [sim.MaxProcs]map[int]bool
	for i := 0; i < log.Steps(); i++ {
		pid, accs := log.Step(i)
		for _, a := range accs {
			if r, ok := roundIndexedObj(log.ObjName(a.Obj)); ok {
				if seen[pid] == nil {
					seen[pid] = make(map[int]bool)
				}
				seen[pid][r] = true
			}
		}
	}
	for p := range seen {
		rounds := seen[p]
		if len(rounds) < 2 {
			continue
		}
		lo, hi := -1, -1
		//lint:fdlint determinism -- min/max over the key set: the result is independent of iteration order
		for r := range rounds {
			if lo < 0 || r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		for r := lo; r <= hi; r++ {
			if !rounds[r] {
				return sim.PID(p)
			}
		}
	}
	return -1
}

// deciderMissedWrite reports whether some deciding process's *last* read of
// an object selected by match is followed, later in the trace, by a
// different process's write of the same object — the decider acted on a
// value that was superseded before the race resolved. This is the shared
// fingerprint of the adopt-order and stale-snapshot failures: the decision
// was computed from converge or snapshot state another process went on to
// overwrite.
func deciderMissedWrite(run *Run, match func(string) bool) bool {
	log := run.Report.Accesses
	if log == nil || run.Report.Decided == nil {
		return false
	}
	// lastRead[p][obj] = step index of p's last read of obj (matching only).
	type key struct {
		p   sim.PID
		obj sim.ObjID
	}
	lastRead := make(map[key]int)
	for i := 0; i < log.Steps(); i++ {
		pid, accs := log.Step(i)
		for _, a := range accs {
			if a.Kind == sim.AccessRead && match(log.ObjName(a.Obj)) {
				lastRead[key{pid, a.Obj}] = i
			}
		}
	}
	//lint:fdlint determinism -- existential check over deciders: the boolean result is independent of iteration order
	for p := range run.Report.Decided {
		for i := 0; i < log.Steps(); i++ {
			pid, accs := log.Step(i)
			if pid == p {
				continue
			}
			for _, a := range accs {
				if a.Kind != sim.AccessWrite || !match(log.ObjName(a.Obj)) {
					continue
				}
				if ri, ok := lastRead[key{p, a.Obj}]; ok && ri < i {
					return true
				}
			}
		}
	}
	return false
}
