package explore

import (
	"fmt"

	"weakestfd/internal/sim"
)

// Dynamic partial-order reduction (Flanagan & Godefroid, POPL 2005) over the
// step-machine engine — the explorer's default engine since PR 4.
//
// The legacy enumerator (EngineEnum, explore.go) bounds the *number of
// context switches*; DPOR instead bounds nothing and prunes by
// *commutativity*: two steps of different processes are independent when
// their shared-object access sets (recorded by sim.AccessLog through the
// instrumented memory.Direct* accessors) do not conflict, and schedules that
// differ only by reordering independent adjacent steps are equivalent —
// they produce identical shared state and identical local results. DPOR
// explores at least one representative of every equivalence class
// (Mazurkiewicz trace) of the full-depth schedule space:
//
//   - Each completed run is analyzed with per-process and per-object vector
//     clocks. A pair of conflicting accesses by different processes that is
//     not already ordered by the happens-before relation of the run minus
//     that pair (a "race") means the reversed order is a genuinely
//     different trace: a backtrack point is inserted at the earlier step's
//     pre-state (the racing process if enabled there, every enabled process
//     otherwise).
//   - The DFS re-executes the chosen prefix (runs are deterministic in the
//     schedule, so re-execution is state restoration) and closes each run
//     with the fair round-robin tail.
//   - Sleep sets kill redundant siblings: a fully-explored child process
//     goes to sleep carrying its first step's access set, stays asleep
//     along independent steps, is woken by the first conflicting one, and
//     is never re-explored while asleep. Each sleep-set skip is counted as
//     a pruned schedule.
//
// Soundness of the reduction relies on two properties of the explored
// configurations. First, a machine's step behaviour must not depend on the
// global time of the step in any way the access sets do not capture, since
// commuting two adjacent steps shifts both their times by one. Crash times
// are fixed by the pattern regardless of who steps, and the protocol
// machines use the time parameter only for detector queries — which the
// query seam (sim.QuerySeam, registered by execute for every instance
// history) makes first-class accesses of a virtual per-history object:
// queries read it, each pre-stabilization output switch of an unstable
// history (OracleChoice.Flips) writes it at its global time, and the step
// one before a flip carries a boundary-guard read. Conflicts on the history
// object therefore order every reordering that could change a query's
// result, and stable-from-0 histories degenerate to inert reads — the PR-4
// search, run for run. Second, the
// checked properties must be trace-invariant — equal on every member of an
// equivalence class — so that checking the one executed representative
// decides the class. Properties over decisions (agreement, validity,
// termination-of-correct) are functions of the final state and qualify.
// The extraction's upsilon-sanity is the known exception at its margin:
// whether outputs count as "settled" compares the global time of the last
// output change against a stability window, and that time is not invariant
// under commutation, so a class straddling the window boundary may be
// checked on an unsettled (vacuously passing) representative. The sweep
// surfaces Result.SettledRuns so a settledness collapse is visible, and
// the legacy enumerator — which executes every bounded schedule rather
// than one per class — remains the reference lens for that property.
//
// Non-terminating systems (the Figure 3 extraction, whose runs always cost
// the full budget) additionally need Config.MaxDepth: backtrack points are
// only inserted at depths below it, giving bounded-depth DPOR — exhaustive
// up to commutativity over every prefix of that depth, with the fair tail
// beyond. Terminating protocols leave MaxDepth at the default (the step
// budget), which makes the search genuinely full-depth.

// dporMaxProcs bounds the vector-clock width. The CLI caps exploration at
// n = 4; fixed-size clock arrays keep the analysis allocation-light.
const dporMaxProcs = 8

// vclock is a vector clock: entry q counts the steps of process q known to
// happen before the clock's owner.
type vclock [dporMaxProcs]int32

func (a vclock) join(b vclock) vclock {
	for i := range a {
		if b[i] > a[i] {
			a[i] = b[i]
		}
	}
	return a
}

// sleeper is one sleep-set entry: a process whose subtree is fully explored
// at this point, together with its next step's access set (known from that
// exploration), so later steps can wake it exactly when they conflict.
type sleeper struct {
	p   sim.PID
	acc []sim.Access
}

func sleepContains(sleep []sleeper, p sim.PID) bool {
	for _, s := range sleep {
		if s.p == p {
			return true
		}
	}
	return false
}

// dporNode is one level of the search stack: the state reached by executing
// chosen[0..depth-1], with its scheduling alternatives.
type dporNode struct {
	enabled  sim.Set
	chosen   sim.PID
	accesses []sim.Access // the chosen step's access set (owned copy)
	// backtrack holds the processes that must be tried at this node (seeded
	// with the first chosen process, grown by race analysis); done the ones
	// already tried or pruned.
	backtrack sim.Set
	done      sim.Set
	sleep     []sleeper // inherited sleep set at entry to this node
	slept     []sleeper // earlier fully-explored siblings at this node
}

// dporRecord is one run's scheduling transcript: the forced prefix is
// replayed through a sim.FixedSchedule (round-robin fallback closes the
// run fairly) whose OnGrant hook records the enabled set and grant of
// every step for the post-run dependency analysis.
type dporRecord struct {
	granted []sim.PID
	enabled []sim.Set
}

func (r *dporRecord) schedule(prefix []sim.PID) *sim.FixedSchedule {
	s := sim.NewFixedSchedule(prefix)
	s.OnGrant = func(_ int, _ sim.Time, enabled sim.Set, chosen sim.PID) {
		r.granted = append(r.granted, chosen)
		r.enabled = append(r.enabled, enabled)
	}
	return s
}

// dporSearch is the per-configuration DPOR state.
type dporSearch struct {
	e       *explorer
	pattern sim.Pattern
	oracle  OracleChoice
	n       int
	log     *sim.AccessLog
	stack   []dporNode

	// objs is the per-object analysis state, indexed by ObjID (IDs are
	// dense and stable across the runs of one search because the log's
	// intern table survives Reset). Entries are generation-stamped and
	// lazily reset per run, so the hot analysis loop allocates nothing
	// after warm-up.
	objs []objAccess
	gen  int32

	runs       int64
	violations int64
	pruned     int64
	truncated  bool
}

// dporConfig runs the DPOR DFS for one (pattern, oracle) configuration.
func (e *explorer) dporConfig(pattern sim.Pattern, oracle OracleChoice) *dporSearch {
	n := e.cfg.System.N()
	if n > dporMaxProcs {
		panic(fmt.Sprintf("explore: DPOR supports n <= %d, got %d", dporMaxProcs, n))
	}
	d := &dporSearch{e: e, pattern: pattern, oracle: oracle, n: n, log: sim.NewAccessLog()}
	var prefix []sim.PID
	for {
		if e.stopped() {
			return d
		}
		if e.cfg.MaxRuns > 0 && d.runs >= e.cfg.MaxRuns {
			d.truncated = true
			return d
		}
		rec := &dporRecord{}
		sched := rec.schedule(prefix)
		d.log.Reset()
		run := execute(e.cfg.System, pattern, oracle, sched, e.cfg.Budget, d.log, nil)
		run.Schedule = append([]sim.PID(nil), rec.granted...)
		d.runs++
		e.runs.Add(1)
		if run.OutputsSettled {
			e.settled.Add(1)
		}
		bumpMax(&e.maxSteps, run.Report.Steps)
		d.violations += e.check(run, pattern, oracle)
		if sched.Diverged() {
			// A forced prefix can only diverge if re-execution is not
			// deterministic — a broken system, not a property of the run.
			panic(fmt.Sprintf("explore: DPOR prefix diverged on %s under %s, %s (non-deterministic system?)",
				e.cfg.System.Name(), patternLabel(pattern), oracle.Name))
		}
		d.extend(len(prefix), rec)
		d.analyze()
		var ok bool
		prefix, ok = d.nextPrefix(prefix)
		if !ok {
			return d
		}
	}
}

// extend appends stack nodes for the steps the last run executed beyond the
// forced prefix (up to MaxDepth), and fills in the access set of the node
// whose alternative was just executed for the first time.
func (d *dporSearch) extend(start int, rec *dporRecord) {
	steps := d.log.Steps()
	if start > 0 {
		nd := &d.stack[start-1]
		_, acc := d.log.Step(start - 1)
		nd.accesses = append(nd.accesses[:0], acc...)
	}
	limit := steps
	if d.e.cfg.MaxDepth < limit {
		limit = d.e.cfg.MaxDepth
	}
	for i := len(d.stack); i < limit; i++ {
		_, acc := d.log.Step(i)
		nd := dporNode{
			enabled:  rec.enabled[i],
			chosen:   rec.granted[i],
			accesses: append([]sim.Access(nil), acc...),
		}
		nd.backtrack = sim.EmptySet.Add(nd.chosen)
		nd.done = sim.EmptySet.Add(nd.chosen)
		if i > 0 {
			nd.sleep = inheritSleep(&d.stack[i-1])
		}
		d.stack = append(d.stack, nd)
	}
}

// inheritSleep filters the parent's sleep entries (inherited and local)
// through the parent's executed step: an entry survives while it commutes
// with every step taken since it fell asleep and is woken — dropped — by
// the first conflicting step (or by its own execution).
func inheritSleep(parent *dporNode) []sleeper {
	var out []sleeper
	keep := func(s sleeper) {
		if s.p != parent.chosen && !sim.AccessesConflict(parent.accesses, s.acc) {
			out = append(out, s)
		}
	}
	for _, s := range parent.sleep {
		keep(s)
	}
	for _, s := range parent.slept {
		keep(s)
	}
	return out
}

// objAccess tracks, per shared object, the most recent write and the most
// recent read of each process, with the accessor's vector clock at that
// step — the state the race detection and happens-before joins consume.
// Entries live in dporSearch.objs across runs; gen stamps which run an
// entry was last touched in, so stale entries are reset in place instead
// of reallocating the table on every run.
type objAccess struct {
	gen  int32
	wIdx int32 // step index of the last write; -1 when none
	wPID int8
	wSC  int32 // the writer's per-process step count at that write
	wClk vclock
	rIdx [dporMaxProcs]int32 // last read per process; -1 when none
	rSC  [dporMaxProcs]int32
	rClk [dporMaxProcs]vclock
}

// obj returns the analysis entry for id in the current run (generation),
// growing the table on first sight of an ID and resetting entries left
// over from earlier runs.
func (d *dporSearch) obj(id sim.ObjID) *objAccess {
	for int(id) >= len(d.objs) {
		d.objs = append(d.objs, objAccess{})
	}
	o := &d.objs[id]
	if o.gen != d.gen {
		o.gen = d.gen
		o.wIdx = -1
		for i := range o.rIdx {
			o.rIdx[i] = -1
		}
	}
	return o
}

// analyze walks the completed run, maintains the happens-before relation
// with vector clocks, and inserts a backtrack point for every race: a pair
// of conflicting accesses by different processes not ordered by the rest of
// the relation. Immediate conflicting predecessors suffice — for a read,
// the last write; for a write, the last write and every process's last read
// since it (older accesses are ordered transitively through those).
func (d *dporSearch) analyze() {
	steps := d.log.Steps()
	d.gen++
	var clk [dporMaxProcs]vclock
	var scount [dporMaxProcs]int32
	for i := 0; i < steps; i++ {
		pid, accs := d.log.Step(i)
		p := int(pid)
		// 1. Race detection against the pre-step clock: if p's causal past
		// does not include the conflicting predecessor, only this race
		// orders the pair, and the reversal must be explored.
		for _, a := range accs {
			o := d.obj(a.Obj)
			if o.wIdx >= 0 && int(o.wPID) != p && clk[p][o.wPID] < o.wSC {
				d.insertBacktrack(int(o.wIdx), pid)
			}
			if a.Kind == sim.AccessWrite {
				for q := 0; q < d.n; q++ {
					if q == p || o.rIdx[q] < 0 || o.rIdx[q] < o.wIdx {
						continue
					}
					if clk[p][q] < o.rSC[q] {
						d.insertBacktrack(int(o.rIdx[q]), pid)
					}
				}
			}
		}
		// 2. Join the clocks of the conflicting predecessors: this step
		// happens after them.
		c := clk[p]
		for _, a := range accs {
			o := d.obj(a.Obj)
			if o.wIdx >= 0 {
				c = c.join(o.wClk)
			}
			if a.Kind == sim.AccessWrite {
				for q := 0; q < d.n; q++ {
					if o.rIdx[q] >= 0 {
						c = c.join(o.rClk[q])
					}
				}
			}
		}
		scount[p]++
		c[p] = scount[p]
		clk[p] = c
		// 3. This step's accesses become the new immediate predecessors.
		for _, a := range accs {
			o := d.obj(a.Obj)
			if a.Kind == sim.AccessWrite {
				o.wIdx, o.wPID, o.wSC, o.wClk = int32(i), int8(p), scount[p], c
			} else {
				o.rIdx[p], o.rSC[p], o.rClk[p] = int32(i), scount[p], c
			}
		}
	}
}

// insertBacktrack requests that p be tried at the pre-state of step j: p
// itself if enabled there, otherwise every process enabled there (the
// standard conservative fallback).
func (d *dporSearch) insertBacktrack(j int, p sim.PID) {
	if j >= len(d.stack) {
		return // beyond MaxDepth: not a choice point
	}
	nd := &d.stack[j]
	if nd.enabled.Has(p) {
		nd.backtrack = nd.backtrack.Add(p)
	} else {
		nd.backtrack = nd.backtrack.Union(nd.enabled)
	}
}

// nextPrefix pops the search to the deepest node with an unexplored,
// non-sleeping backtrack candidate and returns the forced prefix of the
// next run. Sleeping candidates are marked done without execution — their
// interleavings are covered by an already-explored subtree — and counted
// as pruned schedules.
func (d *dporSearch) nextPrefix(prefix []sim.PID) ([]sim.PID, bool) {
	for i := len(d.stack) - 1; i >= 0; i-- {
		nd := &d.stack[i]
		for {
			cand := nd.backtrack.Minus(nd.done)
			if cand.IsEmpty() {
				break
			}
			q := cand.Min()
			nd.done = nd.done.Add(q)
			if sleepContains(nd.sleep, q) {
				d.pruned++
				continue
			}
			// Retire the current child into the sleep set of q's subtree.
			nd.slept = append(nd.slept, sleeper{p: nd.chosen, acc: nd.accesses})
			nd.chosen = q
			nd.accesses = nil
			d.stack = d.stack[:i+1]
			out := prefix[:0]
			for k := 0; k <= i; k++ {
				out = append(out, d.stack[k].chosen)
			}
			return out, true
		}
	}
	return nil, false
}
