package explore

import (
	"testing"

	"weakestfd/internal/core"
	"weakestfd/internal/sim"
)

// TestFullSweepRealProtocols is the headline soundness check: the
// bounded-exhaustive sweep over every explored schedule × crash pattern ×
// legal detector history finds no property violation in the real protocols
// for n ≤ 3. (The mutation tests prove the same sweep does catch a broken
// variant, so "no violations" is evidence, not vacuity.)
func TestFullSweepRealProtocols(t *testing.T) {
	for _, cfg := range DefaultSweep() {
		sys := cfg.System
		res := Explore(cfg)
		if len(res.Violations) != 0 {
			for _, v := range res.Violations {
				t.Errorf("%s n=%d: unexpected %v", sys.Name(), sys.N(), v)
			}
		}
		if res.Runs == 0 || res.Configs == 0 {
			t.Fatalf("%s n=%d: empty sweep (%d runs, %d configs)", sys.Name(), sys.N(), res.Runs, res.Configs)
		}
		if sys.Name() == "extract-omega" && res.SettledRuns == 0 {
			t.Errorf("extract-omega: no run settled; the sanity property was never exercised")
		}
		t.Logf("%s n=%d f=%d: %d configs, %d runs, max %d steps, %d settled, %dms",
			sys.Name(), sys.N(), sys.MaxFaults(), res.Configs, res.Runs, res.MaxSteps, res.SettledRuns, res.ElapsedMS)
	}
}

// TestExploreDeterministic: two sweeps of the same configuration visit the
// same schedules (replay is cloning, so this must hold for counterexamples
// to be reproducible) — checked for both engines.
func TestExploreDeterministic(t *testing.T) {
	for _, engine := range []Engine{EngineDPOR, EngineEnum} {
		run := func() *Result {
			return Explore(Config{System: Fig1System(2), Engine: engine, MaxDepth: 20,
				MaxBlocks: 3, MaxBlock: 16, Budget: 1024, Symmetry: true})
		}
		a, b := run(), run()
		if a.Runs != b.Runs || a.Configs != b.Configs || a.MaxSteps != b.MaxSteps || a.Pruned != b.Pruned {
			t.Fatalf("%v sweeps differ: (%d runs, %d configs, %d max, %d pruned) vs (%d, %d, %d, %d)",
				engine, a.Runs, a.Configs, a.MaxSteps, a.Pruned, b.Runs, b.Configs, b.MaxSteps, b.Pruned)
		}
	}
}

func TestBlockScheduleSemantics(t *testing.T) {
	s := newBlockSchedule([]block{{pid: 1, n: 2}, {pid: 0, n: 3}})
	enabled := sim.SetOf(0, 1, 2)
	var got []sim.PID
	for i := 0; i < 8; i++ {
		got = append(got, s.Next(sim.Time(i+1), enabled))
	}
	want := []sim.PID{1, 1, 0, 0, 0 /* tail round-robin (fresh, from p1): */, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: got %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
	if s.counts[0] != 2 || s.counts[1] != 3 {
		t.Fatalf("block counts %v, want [2 3]", s.counts)
	}

	// A block whose owner is disabled is skipped entirely (counted 0).
	s = newBlockSchedule([]block{{pid: 2, n: 5}, {pid: 0, n: 1}})
	if p := s.Next(1, sim.SetOf(0, 1)); p != 0 {
		t.Fatalf("disabled block owner: got %v, want p1", p)
	}
	if s.counts[0] != 0 || s.counts[1] != 1 {
		t.Fatalf("block counts %v, want [0 1]", s.counts)
	}
}

func TestPatternsFor(t *testing.T) {
	// Symmetric: one canonical crash set per cardinality, sorted time
	// assignments. n=3, f=2, grid {0,3}: sizes 0 (1) + 1 (2 times) +
	// 2 (3 non-decreasing pairs) = 6 patterns.
	pats := patternsFor(3, 2, []sim.Time{0, 3}, true)
	if len(pats) != 6 {
		t.Fatalf("symmetric: %d patterns, want 6: %v", len(pats), pats)
	}
	// Asymmetric: all subsets of size ≤ 2 with all time tuples:
	// 1 + 3·2 + 3·4 = 19.
	pats = patternsFor(3, 2, []sim.Time{0, 3}, false)
	if len(pats) != 19 {
		t.Fatalf("asymmetric: %d patterns, want 19", len(pats))
	}
	for _, p := range pats {
		if !p.InEnvironment(2) {
			t.Fatalf("pattern %v outside E_2", p)
		}
		if p.Correct().IsEmpty() {
			t.Fatalf("pattern %v has no correct process", p)
		}
	}
	// maxF is clamped to n−1 even when asked for more.
	for _, p := range patternsFor(2, 5, []sim.Time{0}, false) {
		if p.NumFaulty() > 1 {
			t.Fatalf("pattern %v crashes more than n-1 processes", p)
		}
	}
}

// TestPatternLabelDistinguishesCrashTimes: the violation-dedup key and the
// scenario names use patternLabel, which must keep grid points apart that
// sim.Pattern.String() conflates (it prints only the faulty set).
func TestPatternLabelDistinguishesCrashTimes(t *testing.T) {
	early := sim.CrashPattern(2, map[sim.PID]sim.Time{1: 0})
	late := sim.CrashPattern(2, map[sim.PID]sim.Time{1: 3})
	if early.String() != late.String() {
		t.Skip("sim.Pattern.String now includes crash times; patternLabel may be redundant")
	}
	if patternLabel(early) == patternLabel(late) {
		t.Fatalf("patternLabel conflates crash times: %q", patternLabel(early))
	}
	if patternLabel(sim.FailFree(3)) != "failure-free(n=3)" {
		t.Fatalf("fail-free label = %q", patternLabel(sim.FailFree(3)))
	}
	// Every pattern of a sweep's enumeration gets a distinct label (labels
	// key the dedup map and the lab scenario names).
	seen := make(map[string]bool)
	for _, p := range patternsFor(3, 2, []sim.Time{0, 3}, false) {
		l := patternLabel(p)
		if seen[l] {
			t.Fatalf("duplicate pattern label %q", l)
		}
		seen[l] = true
	}
}

func TestLegalStableSets(t *testing.T) {
	pattern := sim.FailFree(3)
	choices := legalStableSets(core.Upsilon(3), pattern)
	// All 7 non-empty subsets minus correct(F) = Π.
	if len(choices) != 6 {
		t.Fatalf("%d stable sets, want 6", len(choices))
	}
	for _, c := range choices {
		if c.Stable == pattern.Correct() {
			t.Fatalf("stable set %v equals the correct set", c.Stable)
		}
		if c.Stable.IsEmpty() {
			t.Fatal("empty stable set enumerated")
		}
	}
	// Υ^1 for n=3 requires size ≥ 2: subsets of size ≥ 2 except Π = 3.
	choices = legalStableSets(core.UpsilonF(3, 1), pattern)
	if len(choices) != 3 {
		t.Fatalf("Υ^1: %d stable sets, want 3", len(choices))
	}
}
