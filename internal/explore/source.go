package explore

import (
	"fmt"

	"weakestfd/internal/sim"
)

// Source-DPOR with wakeup sequences and state-hash joins — the explorer's
// default engine (EngineSource).
//
// The classic engine (dpor.go) reacts to a race between steps b < c by
// inserting a bare backtrack alternative at node b and letting the fair tail
// find the reversal; sibling subtrees that turn out equivalent are only
// culled after the fact by sleep sets, each cull costing the run that
// discovered it. This engine applies the source-set insight (Abdulla,
// Aronis, Jonsson, Sagonas, POPL 2014): the race analysis computes the
// wakeup sequence of the reversal (wakeup.go) and its *initials* — the
// exact set of first-steps whose exploration from node b covers the
// reversal. A race whose initials intersect the node's explored
// alternatives, pending wakeup heads, or sleep set needs no new run at all;
// otherwise the full wakeup sequence is queued and the next run is *forced*
// into the reversal rather than left to wander. Under non-empty flip
// schedules the window is flip-anchored first (wakeup.go): steps whose
// history queries would cross an output flip on the leftward shift are
// excluded from the sequence, so forced runs replay deterministically even
// while the detector environment is still changing its mind. Classic DPOR's conservative
// "add every enabled process" fallback disappears entirely — in this
// simulator enabledness is monotone (crashes fire at absolute times,
// returning is forever), so the racing process is always enabled at the
// insertion node and a single targeted alternative suffices.
//
// On top of the source-set search sits the state-hash join layer (hash.go):
// with a finite branch horizon (Config.MaxDepth < Budget) every run's tail
// beyond the horizon is a deterministic fair round-robin, so runs whose
// prefixes commute into the same horizon state share their tail. The first
// run to reach a state executes and caches the tail; later runs stop at the
// horizon, splice the cached tail into their access log (race analysis
// still sees complete runs) and skip re-checking properties the first
// visitor already checked on the identical continuation. Result.Joined
// counts the spliced runs; Config.NoHash disables the layer for
// differential testing.

// srcNode is one level of the source-DPOR search stack: the state reached by
// executing chosen[0..depth-1], with its scheduling alternatives.
type srcNode struct {
	enabled  sim.Set
	chosen   sim.PID
	accesses []sim.Access // the chosen step's access set (owned copy)
	// covered holds the alternatives already explored (or pruned) at this
	// node — the classic engine's done set; wut the pending wakeup
	// sequences, each beginning with the alternative it would explore.
	covered sim.Set
	wut     [][]sim.PID
	sleep   []sleeper // inherited sleep set at entry to this node
	slept   []sleeper // earlier fully-explored siblings at this node
}

// srcSearch is the per-configuration source-DPOR state.
type srcSearch struct {
	e       *explorer
	pattern sim.Pattern
	oracle  OracleChoice
	n       int
	log     *sim.AccessLog
	stack   []srcNode

	// objs/gen: generation-stamped per-object analysis state, as in the
	// classic engine.
	objs []objAccess
	gen  int32
	// stepClk[k] is step k's post-step vector clock in the current run;
	// stepSC[k] the stepping process's step count at k. The wakeup-sequence
	// construction reads both (wakeup.go).
	stepClk []vclock
	stepSC  []int32
	scratch []raceStep
	// keep/drops are anchorWindow's scratch partitions of the notdep window;
	// seam is the analyzed run's query seam and hasFlips whether any of its
	// registered histories flips at all — when false, flip anchoring is a
	// no-op and raceReversal skips it.
	keep     []raceStep
	drops    []raceStep
	seam     *sim.QuerySeam
	hasFlips bool

	// joins is the state-hash cache; nil when hashing is off. horizon is the
	// probe depth (Config.MaxDepth), 0 when hashing is off.
	joins   *joinCache
	horizon int

	runs       int64
	violations int64
	pruned     int64
	joined     int64
	truncated  bool
}

// sourceConfig runs the source-DPOR DFS for one (pattern, oracle)
// configuration.
func (e *explorer) sourceConfig(pattern sim.Pattern, oracle OracleChoice) *srcSearch {
	n := e.cfg.System.N()
	if n > dporMaxProcs {
		panic(fmt.Sprintf("explore: source-DPOR supports n <= %d, got %d", dporMaxProcs, n))
	}
	s := &srcSearch{e: e, pattern: pattern, oracle: oracle, n: n, log: sim.NewAccessLog()}
	if !e.cfg.NoHash && e.cfg.MaxDepth < int(e.cfg.Budget) {
		s.horizon = e.cfg.MaxDepth
		s.joins = newJoinCache(e.cfg.MaxStates)
		s.log.EnableDigest()
	}
	// The join probe fires once per run, when the step count reaches the
	// horizon: on a cache hit the run stops there and reuses the cached tail;
	// on a miss the completed run's tail is inserted under the probed key.
	// The closure (and the per-run probe state it captures) is built once for
	// the whole configuration — it sits on the per-run hot path.
	var prefix []sim.PID
	var rec *dporRecord
	var hit *joinEntry
	var probeKey joinKey
	var probed bool
	var stop func(sim.Time, *sim.QuerySeam) bool
	if s.horizon > 0 {
		stop = func(t sim.Time, seam *sim.QuerySeam) bool {
			if int(t) != s.horizon || probed {
				return false
			}
			probed = true
			probeKey = joinKey{digest: s.log.StateDigest(), rr: -1}
			if s.horizon > len(prefix) {
				probeKey.rr = int16(rec.granted[s.horizon-1])
			} else if len(prefix) > s.horizon {
				// The forced prefix extends past the horizon: those steps
				// have not executed yet, so two runs may join only when
				// they agree on the pending suffix too.
				probeKey.pending = pidSeqFP(prefix[s.horizon:])
			}
			probeKey.env = seam.OutputsDigest(t)
			hit = s.joins.get(probeKey)
			return hit != nil
		}
	}
	for {
		if e.stopped() {
			return s
		}
		if e.cfg.MaxRuns > 0 && s.runs >= e.cfg.MaxRuns {
			s.truncated = true
			return s
		}
		rec = &dporRecord{}
		sched := rec.schedule(prefix)
		s.log.Reset()
		hit, probed = nil, false

		run := execute(e.cfg.System, pattern, oracle, sched, e.cfg.Budget, s.log, stop)
		s.seam = run.seam
		s.hasFlips = s.seam.FlipsRemaining(0) > 0
		s.runs++
		e.runs.Add(1)
		if hit != nil {
			// Joined run: splice the cached tail so the race analysis sees
			// the complete run, and account the first visitor's facts. The
			// first visitor also checked the identical continuation, so no
			// property check here.
			for _, ts := range hit.tail {
				s.log.AppendStep(ts.p, ts.acc)
			}
			rec.granted = append(rec.granted, hit.grants...)
			run.Schedule = append([]sim.PID(nil), rec.granted...)
			s.joined++
			e.joined.Add(1)
			if hit.settled {
				e.settled.Add(1)
			}
			bumpMax(&e.maxSteps, hit.steps)
		} else {
			run.Schedule = append([]sim.PID(nil), rec.granted...)
			if run.OutputsSettled {
				e.settled.Add(1)
			}
			bumpMax(&e.maxSteps, run.Report.Steps)
			s.violations += e.check(run, pattern, oracle)
			if probed {
				s.joins.put(probeKey, s.log, rec.granted, s.horizon, run.Report.Steps, run.OutputsSettled)
			}
		}
		if sched.Diverged() {
			// A forced prefix can only diverge if re-execution is not
			// deterministic — a broken system, not a property of the run.
			// Wakeup tails cannot diverge either: their steps left-shift to
			// earlier times, enabledness is monotone, and flip anchoring
			// (wakeup.go) admits a querying step into a forced sequence only
			// when the shift crosses no output flip.
			panic(fmt.Sprintf("explore: source-DPOR prefix diverged on %s under %s, %s (non-deterministic system?)",
				e.cfg.System.Name(), patternLabel(pattern), oracle.Name))
		}
		s.extend(rec)
		s.analyze()
		var ok bool
		prefix, ok = s.nextPrefix(prefix)
		if !ok {
			return s
		}
	}
}

// extend refills the branch node's access set from the re-executed run (its
// alternative just ran for the first time) and appends stack nodes for the
// steps beyond the current stack (up to MaxDepth) — which include the forced
// wakeup tail, each node seeded with its executed step as the first covered
// alternative.
func (s *srcSearch) extend(rec *dporRecord) {
	steps := s.log.Steps()
	if k := len(s.stack); k > 0 {
		nd := &s.stack[k-1]
		_, acc := s.log.Step(k - 1)
		nd.accesses = append(nd.accesses[:0], acc...)
	}
	limit := steps
	if s.e.cfg.MaxDepth < limit {
		limit = s.e.cfg.MaxDepth
	}
	for i := len(s.stack); i < limit; i++ {
		_, acc := s.log.Step(i)
		nd := srcNode{
			enabled:  rec.enabled[i],
			chosen:   rec.granted[i],
			accesses: append([]sim.Access(nil), acc...),
		}
		nd.covered = sim.EmptySet.Add(nd.chosen)
		if i > 0 {
			nd.sleep = inheritSleepSrc(&s.stack[i-1])
		}
		s.stack = append(s.stack, nd)
	}
}

// inheritSleepSrc filters the parent's sleep entries through the parent's
// executed step, exactly as the classic engine's inheritSleep.
func inheritSleepSrc(parent *srcNode) []sleeper {
	var out []sleeper
	keep := func(sl sleeper) {
		if sl.p != parent.chosen && !sim.AccessesConflict(parent.accesses, sl.acc) {
			out = append(out, sl)
		}
	}
	for _, sl := range parent.sleep {
		keep(sl)
	}
	for _, sl := range parent.slept {
		keep(sl)
	}
	return out
}

// analyze walks the completed run maintaining the happens-before relation
// with vector clocks — the same immediate-predecessor scheme as the classic
// engine — but hands each race to raceReversal, which builds the wakeup
// sequence instead of a bare backtrack point. Per-step clocks are kept for
// the notdep computation.
func (s *srcSearch) analyze() {
	steps := s.log.Steps()
	s.gen++
	if cap(s.stepClk) < steps {
		s.stepClk = make([]vclock, steps)
		s.stepSC = make([]int32, steps)
	}
	s.stepClk = s.stepClk[:steps]
	s.stepSC = s.stepSC[:steps]
	var clk [dporMaxProcs]vclock
	var scount [dporMaxProcs]int32
	for i := 0; i < steps; i++ {
		pid, accs := s.log.Step(i)
		p := int(pid)
		// 1. Race detection against the pre-step clock.
		for _, a := range accs {
			o := s.obj(a.Obj)
			if o.wIdx >= 0 && int(o.wPID) != p && clk[p][o.wPID] < o.wSC {
				s.raceReversal(int(o.wIdx), i, pid, int(o.wPID), o.wSC)
			}
			if a.Kind == sim.AccessWrite {
				for q := 0; q < s.n; q++ {
					if q == p || o.rIdx[q] < 0 || o.rIdx[q] < o.wIdx {
						continue
					}
					if clk[p][q] < o.rSC[q] {
						s.raceReversal(int(o.rIdx[q]), i, pid, q, o.rSC[q])
					}
				}
			}
		}
		// 2. Join the clocks of the conflicting predecessors.
		c := clk[p]
		for _, a := range accs {
			o := s.obj(a.Obj)
			if o.wIdx >= 0 {
				c = c.join(o.wClk)
			}
			if a.Kind == sim.AccessWrite {
				for q := 0; q < s.n; q++ {
					if o.rIdx[q] >= 0 {
						c = c.join(o.rClk[q])
					}
				}
			}
		}
		scount[p]++
		c[p] = scount[p]
		clk[p] = c
		s.stepClk[i] = c
		s.stepSC[i] = scount[p]
		// 3. This step's accesses become the new immediate predecessors.
		for _, a := range accs {
			o := s.obj(a.Obj)
			if a.Kind == sim.AccessWrite {
				o.wIdx, o.wPID, o.wSC, o.wClk = int32(i), int8(p), scount[p], c
			} else {
				o.rIdx[p], o.rSC[p], o.rClk[p] = int32(i), scount[p], c
			}
		}
	}
}

// obj returns the analysis entry for id in the current run, sharing the
// classic engine's generation-stamped table layout.
func (s *srcSearch) obj(id sim.ObjID) *objAccess {
	for int(id) >= len(s.objs) {
		s.objs = append(s.objs, objAccess{})
	}
	o := &s.objs[id]
	if o.gen != s.gen {
		o.gen = s.gen
		o.wIdx = -1
		for i := range o.rIdx {
			o.rIdx[i] = -1
		}
	}
	return o
}

// raceReversal handles one race between steps b < c (p = proc(c); procB and
// scB identify step b's process and step count): it builds the wakeup
// sequence v·p of the reversal and queues it at node b, unless an initial of
// the sequence shows the reversal is already covered there.
//
// Under flip schedules the window is first refined by anchorWindow
// (wakeup.go): steps whose history reads would cross an output flip on the
// leftward shift — and their dependents — are dropped, so the forced
// sequence replays every kept step's recorded behavior. When step c itself
// survives the refinement the full sequence is queued exactly as in the
// stable case; when it does not, the engine falls back to the pre-PR-10
// single-initial insertion, gated on the unanchored window's initials.
func (s *srcSearch) raceReversal(b, c int, p sim.PID, procB int, scB int32) {
	if b >= len(s.stack) {
		return // beyond MaxDepth: not a choice point
	}
	nd := &s.stack[b]
	s.scratch = s.notDepWindow(s.scratch[:0], b, c, procB, scB)
	win := s.scratch
	_, accC := s.log.Step(c)
	stepC := raceStep{p: p, acc: accC, t: sim.Time(c + 1)}
	okC := true
	if s.hasFlips {
		var kept []raceStep
		kept, okC = s.anchorWindow(win, b, p, accC, stepC.t)
		if okC {
			win = kept
		}
	}
	v := append(win, stepC)
	ini := initials(v)
	// Source-set gate: an initial already explored (or queued, or slept) at
	// node b covers the reversal — its subtree contains a linearization of
	// v·p's trace.
	if !ini.Intersect(nd.covered).IsEmpty() {
		return
	}
	for _, w := range nd.wut {
		if ini.Has(w[0]) {
			return
		}
	}
	for _, sl := range nd.sleep {
		if ini.Has(sl.p) {
			s.pruned++
			return
		}
	}
	var seq []sim.PID
	if okC {
		// Full wakeup sequence: force the next run straight into the
		// reversal.
		seq = make([]sim.PID, 0, len(v))
		for _, e := range v {
			seq = append(seq, e.p)
		}
	} else {
		// Step c cannot replay at its shifted position (its own query would
		// cross a flip, or it depends on a flip-pinned window step): degrade
		// to a bare single-initial insertion (still gated on the source set
		// above).
		q := p
		if !ini.Has(p) {
			q = ini.Min()
		}
		seq = []sim.PID{q}
	}
	if !nd.enabled.Has(seq[0]) {
		return // unreachable given monotone enabledness; defensive
	}
	if hasSequence(nd.wut, seq) {
		return
	}
	nd.wut = append(nd.wut, seq)
}

// nextPrefix pops the search to the deepest node with a pending wakeup
// sequence and returns the forced prefix of the next run: the stack's chosen
// steps through that node (re-chosen to the sequence head) followed by the
// rest of the sequence. Sequences whose head is meanwhile covered or asleep
// are dropped as pruned schedules.
func (s *srcSearch) nextPrefix(prefix []sim.PID) ([]sim.PID, bool) {
	for i := len(s.stack) - 1; i >= 0; i-- {
		nd := &s.stack[i]
		for len(nd.wut) > 0 {
			seq := nd.wut[len(nd.wut)-1]
			nd.wut = nd.wut[:len(nd.wut)-1]
			q := seq[0]
			if nd.covered.Has(q) || sleepContains(nd.sleep, q) {
				s.pruned++
				continue
			}
			// Retire the current child into the sleep set of q's subtree.
			nd.slept = append(nd.slept, sleeper{p: nd.chosen, acc: nd.accesses})
			nd.covered = nd.covered.Add(q)
			nd.chosen = q
			nd.accesses = nil
			s.stack = s.stack[:i+1]
			out := prefix[:0]
			for k := 0; k <= i; k++ {
				out = append(out, s.stack[k].chosen)
			}
			out = append(out, seq[1:]...)
			return out, true
		}
	}
	return nil, false
}
