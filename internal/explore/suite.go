package explore

// DefaultSweep returns the standard exhaustive sweep over the real
// protocols at n ≤ 3: the configuration CI's explore-smoke job (and
// `paperbench -explore`) must complete with zero violations. Bounds are
// tuned so the whole suite finishes well under the CI limit on one core
// while covering every ≤3-block schedule of *every* E_f crash pattern
// (crash times {0, 3}; no symmetry shortcut — see patternsFor) under every
// legal stable detector value.
func DefaultSweep() []Config {
	return []Config{
		{System: Fig1System(2), MaxBlocks: 3, MaxBlock: 24, Budget: 2048},
		{System: Fig1System(3), MaxBlocks: 3, MaxBlock: 24, Budget: 2048},
		{System: Fig2System(3, 1), MaxBlocks: 3, MaxBlock: 24, Budget: 2048},
		{System: Fig2System(3, 2), MaxBlocks: 3, MaxBlock: 24, Budget: 2048},
		// The extraction never terminates, so every run costs the full
		// budget; two blocks keep the sweep quick while still covering every
		// single-preemption neighbourhood.
		{System: ExtractOmegaSystem(3), MaxBlocks: 2, MaxBlock: 24, Budget: 768},
	}
}
