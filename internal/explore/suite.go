package explore

// DefaultSweep returns the standard exhaustive sweep over the real
// protocols at n ≤ 3 (plus the n = 2 compositions): the configuration CI's
// explore-smoke job (and `paperbench -explore`) must complete with zero
// violations. Every config carries bounds for both engines, so the
// differential suite can run the identical sweep under DPOR (the default)
// and the legacy block enumerator and compare violation sets.
//
// Bound semantics differ per engine. The enumerator covers every schedule
// with ≤ MaxBlocks adversarial blocks of ≤ MaxBlock steps before the fair
// tail — few context switches, arbitrary depth. DPOR covers *every*
// schedule — arbitrarily many context switches — whose branching lies in
// the first MaxDepth steps, up to commutativity of independent steps, with
// the fair tail beyond the branch horizon. MaxDepth values are tuned so
// the whole suite finishes well under the CI limit on one core; the
// per-system values reflect how conflict-dense the protocol's opening is
// (the extraction's processes touch only their own registers for the
// first ~15 steps, so its race frontier starts later but fans out fast).
func DefaultSweep() []Config {
	return []Config{
		{System: Fig1System(2), MaxDepth: 28, MaxBlocks: 3, MaxBlock: 24, Budget: 2048},
		{System: Fig1System(3), MaxDepth: 12, MaxBlocks: 3, MaxBlock: 24, Budget: 2048},
		{System: Fig2System(3, 1), MaxDepth: 12, MaxBlocks: 3, MaxBlock: 24, Budget: 2048},
		{System: Fig2System(3, 2), MaxDepth: 12, MaxBlocks: 3, MaxBlock: 24, Budget: 2048},
		// The extraction never terminates, so every run costs the full
		// budget; the shallow block bound (legacy) and the deeper DPOR
		// branch horizon both keep the sweep quick while covering every
		// single-preemption neighbourhood and, under DPOR, every
		// interleaving of the first 18 steps.
		{System: ExtractOmegaSystem(3), MaxDepth: 18, MaxBlocks: 2, MaxBlock: 24, Budget: 768},
		// The Corollary 11 pipeline (extraction ∘ protocol as parallel task
		// sets, driven through sim.RunTaskMachines) and its oracle-free
		// timing-based sibling, safety properties only — see
		// ComposedSystem/TimedComposedSystem.
		{System: ComposedSystem(2), MaxDepth: 24, MaxBlocks: 3, MaxBlock: 24, Budget: 4096},
		{System: TimedComposedSystem(2), MaxDepth: 20, MaxBlocks: 3, MaxBlock: 24, Budget: 4096},
	}
}
