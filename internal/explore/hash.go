package explore

import "weakestfd/internal/sim"

// State-hash join cache for the source-DPOR engine: when two explored
// prefixes of one (pattern, oracle) configuration commute into the same
// state at the branch horizon, the tail beyond the horizon — which branches
// no further and runs under the deterministic fair round-robin — is executed
// once and reused.
//
// Soundness. A join key is taken at step depth h = Config.MaxDepth, only
// when h < Budget (a fair tail exists), and is composed of:
//
//   - the access log's state digest (sim.AccessLog.StateDigest): every
//     shared object's current-value fingerprint — detector-history objects
//     included, their flip writes fingerprint the post-flip output — plus
//     every process's rolling observation hash, whose per-step marker makes
//     it a per-process program counter. Equal digests mean (up to 64-bit
//     collisions) identical shared state and identical machine local states,
//     because a machine's local state is a deterministic function of its
//     observation sequence;
//   - the round-robin rotation state entering the tail (the last granted
//     PID, or fresh when the forced prefix covered the whole horizon), so
//     identical states continued by differently-rotated fair tails are
//     never identified;
//   - the configuration's flips-remaining index at h
//     (sim.QuerySeam.FlipsRemaining). Within one configuration every history
//     flips at fixed absolute times, so this is constant at fixed h — it is
//     folded in for defense against future histories whose schedules depend
//     on the run.
//
// Both runs are at the same global time (t = h: time advances one per step),
// the crash pattern fires at absolute times, and flips fire at absolute
// times, so equal keys imply the continuations are *identical runs*, step
// for step — not merely equivalent. The joiner therefore stops executing at
// h, splices the cached tail's access trace into its log (so the race
// analysis that drives further branching sees the complete run), counts the
// cached tail's step/settledness facts, and skips property checking: the
// first visitor checked the identical run, and the explorer deduplicates
// violations per (pattern, oracle, property), so a joiner's checks can
// contribute nothing the first visitor's did not.
//
// The cache is bounded by Config.MaxStates entries per configuration; once
// full it stops admitting new states (Result.StateCapped) but keeps probing
// existing ones — joins degrade, coverage does not.

// joinKey identifies a state at the branch horizon.
type joinKey struct {
	digest uint64
	rr     int16 // RR rotation entering the tail: last granted PID, -1 fresh
	flips  int32 // flips still pending past the horizon
}

// tailStep is one cached tail step: its process and an owned copy of its
// access set.
type tailStep struct {
	p   sim.PID
	acc []sim.Access
}

// joinEntry is the reusable continuation of a state: the tail's grants and
// access trace, and the run facts the joiner reports instead of measuring.
type joinEntry struct {
	grants  []sim.PID
	tail    []tailStep
	steps   int64
	settled bool
}

// joinCache maps horizon states to their continuations for one
// configuration's search (single-goroutine access; no locking).
type joinCache struct {
	max    int
	m      map[joinKey]*joinEntry
	capped bool
}

func newJoinCache(max int) *joinCache {
	return &joinCache{max: max, m: make(map[joinKey]*joinEntry)}
}

// get returns the cached continuation for key, nil when unseen.
func (c *joinCache) get(key joinKey) *joinEntry {
	return c.m[key]
}

// put records a continuation: the tail portion of the log (steps from
// horizon on) and of the grant sequence, copied out of the run's buffers.
// Returns false when the entry cap is hit (the state is not admitted).
func (c *joinCache) put(key joinKey, log *sim.AccessLog, granted []sim.PID, horizon int, steps int64, settled bool) bool {
	if len(c.m) >= c.max {
		c.capped = true
		return false
	}
	ent := &joinEntry{steps: steps, settled: settled}
	if horizon < len(granted) {
		ent.grants = append([]sim.PID(nil), granted[horizon:]...)
	}
	for i := horizon; i < log.Steps(); i++ {
		p, acc := log.Step(i)
		ent.tail = append(ent.tail, tailStep{p: p, acc: append([]sim.Access(nil), acc...)})
	}
	c.m[key] = ent
	return true
}
