package explore

import "weakestfd/internal/sim"

// State-hash join cache for the source-DPOR engine: when two explored
// prefixes of one (pattern, oracle) configuration commute into the same
// state at the branch horizon, the tail beyond the horizon — which branches
// no further and runs under the deterministic fair round-robin — is executed
// once and reused.
//
// Soundness. A join key is taken at step depth h = Config.MaxDepth, only
// when h < Budget (a fair tail exists), and is composed of:
//
//   - the access log's state digest (sim.AccessLog.StateDigest): every
//     shared object's current-value fingerprint plus every process's rolling
//     observation hash, whose per-step marker makes it a per-process program
//     counter. Equal digests mean (up to 64-bit collisions) identical shared
//     state and identical machine local states, because a machine's local
//     state is a deterministic function of its observation sequence. The
//     environment's own history-object accesses (flip writes and
//     boundary-guard reads) are sealed out of the observation hashes
//     (sim.AccessLog.SealEnv): they are charged to whichever step runs at
//     the flip's absolute time, not observed by it, and the env component
//     below carries the information instead;
//   - the detector environment's outputs digest at h
//     (sim.QuerySeam.OutputsDigest): per registered history, the output a
//     query at h would observe plus every still-pending flip's (time,
//     post-flip output). Equal env components mean the continuations query
//     identical presents and face identical futures; because the pending
//     schedule is folded in, prefixes reaching h on opposite sides of a flip
//     can never be identified even when the observable outputs happen to
//     coincide;
//   - the round-robin rotation state entering the tail (the last granted
//     PID, or fresh when the forced prefix covered the whole horizon), so
//     identical states continued by differently-rotated fair tails are
//     never identified;
//   - a fingerprint of the forced prefix's not-yet-executed suffix, when the
//     wakeup sequence extends past the horizon: those grants override the
//     fair tail, so two runs may join only when they agree on the pending
//     grants too.
//
// Both runs are at the same global time (t = h: time advances one per step),
// the crash pattern fires at absolute times, and flips fire at absolute
// times, so equal keys imply the continuations are *identical runs*, step
// for step — not merely equivalent. The joiner therefore stops executing at
// h, splices the cached tail's access trace into its log (so the race
// analysis that drives further branching sees the complete run), counts the
// cached tail's step/settledness facts, and skips property checking: the
// first visitor checked the identical run, and the explorer deduplicates
// violations per (pattern, oracle, property), so a joiner's checks can
// contribute nothing the first visitor's did not.
//
// The cache is bounded by Config.MaxStates entries per configuration; once
// full it stops admitting new states (Result.StateCapped) but keeps probing
// existing ones — joins degrade, coverage does not.

// joinKey identifies a state at the branch horizon.
type joinKey struct {
	digest  uint64
	env     uint64 // QuerySeam.OutputsDigest at the horizon
	pending uint64 // pidSeqFP of forced-prefix grants past the horizon, 0 none
	rr      int16  // RR rotation entering the tail: last granted PID, -1 fresh
}

// pidSeqFP fingerprints a grant sequence (FNV-1a over PID+1 so a leading
// PID 0 is distinguishable from the empty sequence's 0).
func pidSeqFP(pids []sim.PID) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, p := range pids {
		h = (h ^ uint64(p+1)) * 0x100000001b3
	}
	return h
}

// tailStep is one cached tail step: its process and an owned copy of its
// access set.
type tailStep struct {
	p   sim.PID
	acc []sim.Access
}

// joinEntry is the reusable continuation of a state: the tail's grants and
// access trace, and the run facts the joiner reports instead of measuring.
type joinEntry struct {
	grants  []sim.PID
	tail    []tailStep
	steps   int64
	settled bool
}

// joinCache maps horizon states to their continuations for one
// configuration's search (single-goroutine access; no locking).
type joinCache struct {
	max    int
	m      map[joinKey]*joinEntry
	capped bool
}

func newJoinCache(max int) *joinCache {
	return &joinCache{max: max, m: make(map[joinKey]*joinEntry)}
}

// get returns the cached continuation for key, nil when unseen.
func (c *joinCache) get(key joinKey) *joinEntry {
	return c.m[key]
}

// put records a continuation: the tail portion of the log (steps from
// horizon on) and of the grant sequence, copied out of the run's buffers.
// Returns false when the entry cap is hit (the state is not admitted).
func (c *joinCache) put(key joinKey, log *sim.AccessLog, granted []sim.PID, horizon int, steps int64, settled bool) bool {
	if len(c.m) >= c.max {
		c.capped = true
		return false
	}
	ent := &joinEntry{steps: steps, settled: settled}
	if horizon < len(granted) {
		ent.grants = append([]sim.PID(nil), granted[horizon:]...)
	}
	for i := horizon; i < log.Steps(); i++ {
		p, acc := log.Step(i)
		ent.tail = append(ent.tail, tailStep{p: p, acc: append([]sim.Access(nil), acc...)})
	}
	c.m[key] = ent
	return true
}
