package explore

import (
	"weakestfd/internal/sim"
)

// witness is a minimized, verified counterexample: the smallest
// configuration and schedule the shrinker could reach on which the violated
// property still fails, with the failure message of the final replay.
type witness struct {
	pattern  sim.Pattern
	oracle   OracleChoice
	schedule []sim.PID
	message  string
}

// shrink minimizes a violating run along three axes, every candidate
// re-replayed from fresh state through a sim.FixedSchedule and accepted only
// if the same property still fails — the result is a verified
// counterexample by construction:
//
//  1. Schedule: binary prefix truncation (the tail after the violation is
//     replaced by the fair fallback), then ddmin-style chunk deletion at
//     halving granularities.
//  2. Pattern: each crash is tentatively dropped (the process becomes
//     correct); a drop is kept when the failure survives, so the witness
//     carries only load-bearing crashes.
//  3. Oracle: every legal detector history for the (possibly shrunk)
//     pattern with a strictly smaller stable set is tried; the witness
//     keeps the smallest on which the failure survives.
//
// A configuration change can make more of the schedule redundant, so a
// successful pattern/oracle shrink re-runs the schedule pass. Replays are
// capped by cfg.ShrinkBudget; the best witness so far is returned when it
// runs out. A witness with an empty message means the original run did not
// reproduce under replay (which deterministic systems never hit).
func shrink(cfg Config, run *Run, prop Property) witness {
	w := witness{
		pattern:  run.Pattern,
		oracle:   run.Oracle,
		schedule: append([]sim.PID(nil), run.Schedule...),
	}
	budget := cfg.ShrinkBudget

	violates := func(pat sim.Pattern, o OracleChoice, sched []sim.PID) (string, bool) {
		if budget <= 0 {
			return "", false
		}
		budget--
		r := execute(cfg.System, pat, o, sim.NewFixedSchedule(sched), cfg.Budget, nil)
		if err := prop.Check(r); err != nil {
			return err.Error(), true
		}
		return "", false
	}

	// The full sequence must reproduce (it is the run's own trace); record
	// its message as the baseline.
	if msg, ok := violates(w.pattern, w.oracle, w.schedule); ok {
		w.message = msg
	} else {
		return w
	}

	shrinkSchedule(&w, violates)
	changed := shrinkPattern(cfg, &w, violates)
	changed = shrinkOracle(cfg, &w, violates) || changed
	if changed {
		shrinkSchedule(&w, violates)
	}
	return w
}

// shrinkSchedule minimizes w.schedule under the current configuration:
// binary-search the shortest violating prefix, then ddmin-lite chunk
// deletion.
func shrinkSchedule(w *witness, violates func(sim.Pattern, OracleChoice, []sim.PID) (string, bool)) {
	lo, hi := 0, len(w.schedule)
	for lo < hi {
		mid := (lo + hi) / 2
		if msg, ok := violates(w.pattern, w.oracle, w.schedule[:mid]); ok {
			w.message = msg
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	w.schedule = append([]sim.PID(nil), w.schedule[:hi]...)

	for size := len(w.schedule) / 2; size >= 1; size /= 2 {
		for i := 0; i+size <= len(w.schedule); {
			trial := append(append([]sim.PID(nil), w.schedule[:i]...), w.schedule[i+size:]...)
			if msg, ok := violates(w.pattern, w.oracle, trial); ok {
				w.schedule, w.message = trial, msg
				continue // same offset now holds the next chunk
			}
			i++
		}
	}
}

// shrinkPattern drops crashes from the witness pattern while the failure
// survives, keeping the oracle legal for each candidate (an illegal history
// would indict the environment, not the protocol). Returns whether the
// pattern changed.
func shrinkPattern(cfg Config, w *witness, violates func(sim.Pattern, OracleChoice, []sim.PID) (string, bool)) bool {
	changed := false
	for {
		progress := false
		for _, p := range w.pattern.Faulty().Members() {
			cand := dropCrash(w.pattern, p)
			o, legal := matchOracle(cfg.System, cand, w.oracle)
			if !legal {
				continue
			}
			if msg, ok := violates(cand, o, w.schedule); ok {
				w.pattern, w.oracle, w.message = cand, o, msg
				progress, changed = true, true
				break
			}
		}
		if !progress {
			return changed
		}
	}
}

// shrinkOracle replaces the witness oracle with a legal history whose
// stable set is strictly smaller, while the failure survives. Returns
// whether the oracle changed.
func shrinkOracle(cfg Config, w *witness, violates func(sim.Pattern, OracleChoice, []sim.PID) (string, bool)) bool {
	changed := false
	for {
		progress := false
		for _, o := range cfg.System.Oracles(w.pattern) {
			if o.Stable.Len() >= w.oracle.Stable.Len() {
				continue
			}
			if msg, ok := violates(w.pattern, o, w.schedule); ok {
				w.oracle, w.message = o, msg
				progress, changed = true, true
				break
			}
		}
		if !progress {
			return changed
		}
	}
}

// dropCrash returns pattern with p made correct.
func dropCrash(pattern sim.Pattern, p sim.PID) sim.Pattern {
	crashes := make(map[sim.PID]sim.Time)
	for _, q := range pattern.Faulty().Members() {
		if q != p {
			crashes[q] = pattern.CrashAt(q)
		}
	}
	return sim.CrashPattern(pattern.N(), crashes)
}

// matchOracle finds the system's enumerated oracle for pattern whose stable
// set equals o's, reporting false when o is not legal for pattern.
func matchOracle(sys System, pattern sim.Pattern, o OracleChoice) (OracleChoice, bool) {
	for _, c := range sys.Oracles(pattern) {
		if c.Stable == o.Stable {
			return c, true
		}
	}
	return OracleChoice{}, false
}
