package explore

import (
	"strings"

	"weakestfd/internal/sim"
)

// witness is a minimized, verified counterexample: the smallest
// configuration and schedule the shrinker could reach on which the violated
// property still fails, with the failure message of the final replay.
type witness struct {
	pattern  sim.Pattern
	oracle   OracleChoice
	schedule []sim.PID
	message  string
}

// shrink minimizes a violating run along three axes, every candidate
// re-replayed from fresh state through a sim.FixedSchedule and accepted only
// if the same property still fails — the result is a verified
// counterexample by construction:
//
//  1. Schedule: binary prefix truncation (the tail after the violation is
//     replaced by the fair fallback), then ddmin-style chunk deletion at
//     halving granularities.
//  2. Pattern: each crash is tentatively dropped (the process becomes
//     correct); a drop is kept when the failure survives, so the witness
//     carries only load-bearing crashes.
//  3. Oracle: every legal detector history for the (possibly shrunk)
//     pattern with a strictly smaller stable set is tried; the witness
//     keeps the smallest on which the failure survives.
//  4. Flips: each pre-stabilization phase of the history is tentatively
//     dropped (stable-from-0 when none remain), and each surviving flip is
//     moved later one grid-free step at a time — so the witness carries
//     only load-bearing output switches, at the latest times that still
//     fail.
//
// A configuration change can make more of the schedule redundant, so a
// successful pattern/oracle shrink re-runs the schedule pass. Replays are
// capped by cfg.ShrinkBudget; the best witness so far is returned when it
// runs out. A witness with an empty message means the original run did not
// reproduce under replay (which deterministic systems never hit).
func shrink(cfg Config, run *Run, prop Property) witness {
	w := witness{
		pattern:  run.Pattern,
		oracle:   run.Oracle,
		schedule: append([]sim.PID(nil), run.Schedule...),
	}
	budget := cfg.ShrinkBudget

	violates := func(pat sim.Pattern, o OracleChoice, sched []sim.PID) (string, bool) {
		if budget <= 0 {
			return "", false
		}
		budget--
		r := execute(cfg.System, pat, o, sim.NewFixedSchedule(sched), cfg.Budget, nil, nil)
		if err := prop.Check(r); err != nil {
			return err.Error(), true
		}
		return "", false
	}

	// The full sequence must reproduce (it is the run's own trace); record
	// its message as the baseline.
	if msg, ok := violates(w.pattern, w.oracle, w.schedule); ok {
		w.message = msg
	} else {
		return w
	}

	shrinkSchedule(&w, violates)
	changed := shrinkPattern(cfg, &w, violates)
	changed = shrinkOracle(cfg, &w, violates) || changed
	changed = shrinkFlips(&w, violates) || changed
	if changed {
		shrinkSchedule(&w, violates)
	}
	return w
}

// shrinkSchedule minimizes w.schedule under the current configuration:
// binary-search the shortest violating prefix, then ddmin-lite chunk
// deletion.
func shrinkSchedule(w *witness, violates func(sim.Pattern, OracleChoice, []sim.PID) (string, bool)) {
	lo, hi := 0, len(w.schedule)
	for lo < hi {
		mid := (lo + hi) / 2
		if msg, ok := violates(w.pattern, w.oracle, w.schedule[:mid]); ok {
			w.message = msg
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	w.schedule = append([]sim.PID(nil), w.schedule[:hi]...)

	for size := len(w.schedule) / 2; size >= 1; size /= 2 {
		for i := 0; i+size <= len(w.schedule); {
			trial := append(append([]sim.PID(nil), w.schedule[:i]...), w.schedule[i+size:]...)
			if msg, ok := violates(w.pattern, w.oracle, trial); ok {
				w.schedule, w.message = trial, msg
				continue // same offset now holds the next chunk
			}
			i++
		}
	}
}

// shrinkPattern drops crashes from the witness pattern while the failure
// survives, keeping the oracle legal for each candidate (an illegal history
// would indict the environment, not the protocol). Returns whether the
// pattern changed.
func shrinkPattern(cfg Config, w *witness, violates func(sim.Pattern, OracleChoice, []sim.PID) (string, bool)) bool {
	changed := false
	for {
		progress := false
		for _, p := range w.pattern.Faulty().Members() {
			cand := dropCrash(w.pattern, p)
			o, legal := matchOracle(cfg.System, cand, w.oracle)
			if !legal {
				continue
			}
			if msg, ok := violates(cand, o, w.schedule); ok {
				w.pattern, w.oracle, w.message = cand, o, msg
				progress, changed = true, true
				break
			}
		}
		if !progress {
			return changed
		}
	}
}

// shrinkOracle replaces the witness oracle with a legal history whose
// stable set is strictly smaller (keeping the witness's flip schedule),
// while the failure survives. Returns whether the oracle changed.
func shrinkOracle(cfg Config, w *witness, violates func(sim.Pattern, OracleChoice, []sim.PID) (string, bool)) bool {
	changed := false
	for {
		progress := false
		for _, o := range cfg.System.Oracles(w.pattern, SwitchPlan{}) {
			if o.Stable.Len() >= w.oracle.Stable.Len() {
				continue
			}
			cand := o.withFlips(w.oracle.Flips)
			if msg, ok := violates(w.pattern, cand, w.schedule); ok {
				w.oracle, w.message = cand, msg
				progress, changed = true, true
				break
			}
		}
		if !progress {
			return changed
		}
	}
}

// shrinkFlips minimizes the witness history's unstable prefix: every phase
// is tentatively dropped (a kept drop removes one output switch; dropping
// all of them yields a stable-from-0 witness), then every surviving flip is
// pushed later one step at a time (capped per flip) while the failure
// survives — the canonical witness flips as rarely and as late as possible.
// Returns whether the flip schedule changed.
func shrinkFlips(w *witness, violates func(sim.Pattern, OracleChoice, []sim.PID) (string, bool)) bool {
	if len(w.oracle.Flips) == 0 {
		return false
	}
	base := baseOracle(w.oracle)
	changed := false
	// Pass 1: drop phases, first-to-last, restarting after each kept drop.
	for {
		progress := false
		for i := range w.oracle.Flips {
			trial := append([]FlipPhase(nil), w.oracle.Flips[:i]...)
			trial = append(trial, w.oracle.Flips[i+1:]...)
			cand := base.withFlips(trial)
			if msg, ok := violates(w.pattern, cand, w.schedule); ok {
				w.oracle, w.message = cand, msg
				progress, changed = true, true
				break
			}
		}
		if !progress {
			break
		}
	}
	// Pass 2: move each remaining flip later, one step at a time.
	const maxLater = 16 // bound the walk; the schedule pass already bounds run length
	for i := 0; i < len(w.oracle.Flips); i++ {
		for moved := 0; moved < maxLater; moved++ {
			trial := append([]FlipPhase(nil), w.oracle.Flips...)
			trial[i].Until++
			if i+1 < len(trial) && trial[i].Until >= trial[i+1].Until {
				break // phases must stay strictly ordered
			}
			cand := base.withFlips(trial)
			msg, ok := violates(w.pattern, cand, w.schedule)
			if !ok {
				break
			}
			w.oracle, w.message, changed = cand, msg, true
		}
	}
	return changed
}

// baseOracle strips a choice's flip schedule, recovering the stable-from-0
// choice the flip variants were built from: the base name withFlips
// remembered, with a display-name parse as the fallback for choices built
// outside the enumeration (artifact replay).
func baseOracle(o OracleChoice) OracleChoice {
	if o.base != "" {
		o.Name = o.base
	} else if i := strings.Index(o.Name, " pre["); i >= 0 {
		o.Name = o.Name[:i]
	}
	o.Flips = nil
	o.base = ""
	return o
}

// dropCrash returns pattern with p made correct.
func dropCrash(pattern sim.Pattern, p sim.PID) sim.Pattern {
	crashes := make(map[sim.PID]sim.Time)
	for _, q := range pattern.Faulty().Members() {
		if q != p {
			crashes[q] = pattern.CrashAt(q)
		}
	}
	return sim.CrashPattern(pattern.N(), crashes)
}

// matchOracle finds the system's enumerated oracle for pattern whose stable
// set equals o's (re-attaching o's flip schedule), reporting false when o is
// not legal for pattern.
func matchOracle(sys System, pattern sim.Pattern, o OracleChoice) (OracleChoice, bool) {
	for _, c := range sys.Oracles(pattern, SwitchPlan{}) {
		if c.Stable == o.Stable {
			return c.withFlips(o.Flips), true
		}
	}
	return OracleChoice{}, false
}
