package explore

import (
	"weakestfd/internal/sim"
)

// shrink minimizes the granted sequence of a violating run: first a binary
// prefix truncation (the tail after the violation is replaced by the fair
// fallback), then ddmin-style chunk deletion at halving granularities. Every
// candidate is re-replayed from fresh state through a sim.FixedSchedule and
// accepted only if the same property still fails, so the result is a
// verified counterexample by construction. Replays are capped by
// cfg.ShrinkBudget; the best candidate so far is returned when it runs out.
func shrink(cfg Config, run *Run, prop Property) ([]sim.PID, string) {
	candidate := append([]sim.PID(nil), run.Schedule...)
	message := ""
	budget := cfg.ShrinkBudget

	violates := func(prefix []sim.PID) (string, bool) {
		if budget <= 0 {
			return "", false
		}
		budget--
		r := execute(cfg.System, run.Pattern, run.Oracle, sim.NewFixedSchedule(prefix), cfg.Budget)
		if err := prop.Check(r); err != nil {
			return err.Error(), true
		}
		return "", false
	}

	// The full sequence must reproduce (it is the run's own trace); record
	// its message as the baseline.
	if msg, ok := violates(candidate); ok {
		message = msg
	} else {
		// Non-reproducible under replay (should not happen: runs are
		// deterministic in the schedule); fall back to the unshrunk trace.
		return candidate, ""
	}

	// Phase 1: binary-search the shortest violating prefix.
	lo, hi := 0, len(candidate)
	for lo < hi {
		mid := (lo + hi) / 2
		if msg, ok := violates(candidate[:mid]); ok {
			message = msg
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	candidate = append([]sim.PID(nil), candidate[:hi]...)

	// Phase 2: ddmin-lite — delete chunks at halving sizes.
	for size := len(candidate) / 2; size >= 1; size /= 2 {
		for i := 0; i+size <= len(candidate); {
			trial := append(append([]sim.PID(nil), candidate[:i]...), candidate[i+size:]...)
			if msg, ok := violates(trial); ok {
				candidate, message = trial, msg
				continue // same offset now holds the next chunk
			}
			i++
		}
	}
	return candidate, message
}
