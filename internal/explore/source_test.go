package explore

import (
	"strings"
	"testing"

	"weakestfd/internal/sim"
)

// Differential testing of the source-DPOR engine against the classic engine:
// identical verdicts, fewer executions. CI's explore-smoke matrix runs these
// explicitly.

// TestSourceVsClassicDifferential compares the three reduction variants —
// classic DPOR, pure source-DPOR (NoHash), and source-DPOR with state-hash
// joins (the default) — on the toy ground truth, the full standard suite,
// and three zoo mutants.
func TestSourceVsClassicDifferential(t *testing.T) {
	if testing.Short() {
		// The engine-equivalence sweep is the slowest test in the package
		// and exercises no concurrency the other lanes miss; the race lane
		// runs with -short and relies on the full lane for equivalence.
		t.Skip("engine differential sweep skipped under -short")
	}
	t.Run("toy-optimal", func(t *testing.T) {
		// The 2×(read;write) shared-counter space has 6 raw interleavings in
		// 4 Mazurkiewicz classes. Classic DPOR is sound but not optimal here
		// (sleep sets cull siblings only after paying a run); the source
		// engine must execute exactly one run per class.
		res := Explore(Config{
			System: toySystem{name: "toy-shared", props: []Property{propSomeoneDecides2{}}},
		})
		if res.Runs != 4 {
			t.Errorf("source engine executed %d runs on the lost-update toy, want exactly its 4 trace classes", res.Runs)
		}
		if len(res.Violations) == 0 {
			t.Error("source engine missed the lost-update violation")
		}
	})

	t.Run("clean-suite", func(t *testing.T) {
		var classicRuns, sourceRuns, hashRuns, joined int64
		for _, cfg := range DefaultSweep() {
			cfg.Engine = EngineDPOR
			c := Explore(cfg)
			cfg.Engine = EngineSource
			cfg.NoHash = true
			s := Explore(cfg)
			cfg.NoHash = false
			h := Explore(cfg)
			for _, r := range []*Result{c, s, h} {
				if len(r.Violations) != 0 {
					t.Errorf("%s: engine %s found violations on the real protocol: %v", r.System, r.Engine, r.Violations)
				}
				if r.Truncated {
					t.Errorf("%s: engine %s truncated — exhaustiveness claim void", r.System, r.Engine)
				}
			}
			if c.Configs != s.Configs || c.Configs != h.Configs {
				t.Errorf("%s: engines explored different config counts: %d vs %d vs %d",
					c.System, c.Configs, s.Configs, h.Configs)
			}
			if s.Runs > c.Runs {
				t.Errorf("%s: source executed %d runs, more than classic's %d", c.System, s.Runs, c.Runs)
			}
			if h.Runs > c.Runs {
				t.Errorf("%s: source+hash executed %d runs, more than classic's %d", c.System, h.Runs, c.Runs)
			}
			if c.System == "extract-omega" {
				// Settledness is the one non-trace-invariant margin (see
				// dpor.go); guard against a silent collapse under either
				// source variant.
				if s.SettledRuns == 0 || h.SettledRuns == 0 {
					t.Errorf("extract-omega: settled runs source=%d source+hash=%d; the sanity property was never exercised",
						s.SettledRuns, h.SettledRuns)
				}
			}
			classicRuns += c.Runs
			sourceRuns += s.Runs
			hashRuns += h.Runs
			joined += h.Joined
			t.Logf("%s: classic %d runs vs source %d (%d pruned) vs source+hash %d (%d joined)",
				c.System, c.Runs, s.Runs, s.Pruned, h.Runs, h.Joined)
		}
		if sourceRuns >= classicRuns {
			t.Errorf("source executed %d runs across the suite, not fewer than classic's %d", sourceRuns, classicRuns)
		}
		if joined == 0 {
			t.Error("state hashing joined nothing across the whole suite; the join layer is dead")
		}
		t.Logf("suite totals: classic %d vs source %d vs source+hash %d (%d joined)",
			classicRuns, sourceRuns, hashRuns, joined)
	})

	t.Run("budget1", func(t *testing.T) {
		// Switch-budget-1 sweeps of the clean protocol: the regime the
		// flip-anchored wakeup sequences (wakeup.go) were built for. All
		// three engines must agree the protocol is clean, and the source
		// engine must beat classic *strictly* — before flip anchoring it
		// degraded to single-initial insertion here and the margin collapsed.
		for _, n := range []int{2, 3} {
			cfg := Config{
				System:       Fig1System(n),
				SwitchBudget: 1,
				CrashTimes:   []sim.Time{0},
				MaxDepth:     12,
				Budget:       2048,
			}
			cfg.Engine = EngineDPOR
			c := Explore(cfg)
			cfg.Engine = EngineSource
			cfg.NoHash = true
			s := Explore(cfg)
			cfg.NoHash = false
			h := Explore(cfg)
			for _, r := range []*Result{c, s, h} {
				if len(r.Violations) != 0 {
					t.Errorf("n=%d: engine %s found violations on the clean protocol: %v", n, r.Engine, r.Violations)
				}
				if r.Truncated {
					t.Errorf("n=%d: engine %s truncated", n, r.Engine)
				}
			}
			if c.Configs != s.Configs || c.Configs != h.Configs {
				t.Errorf("n=%d: engines explored different config counts: %d vs %d vs %d", n, c.Configs, s.Configs, h.Configs)
			}
			if s.Runs >= c.Runs {
				t.Errorf("n=%d: source executed %d runs, not strictly fewer than classic's %d", n, s.Runs, c.Runs)
			}
			if h.Runs >= c.Runs {
				t.Errorf("n=%d: source+hash executed %d runs, not strictly fewer than classic's %d", n, h.Runs, c.Runs)
			}
			// A sound join key never changes the search, only who executes
			// each tail: the hash variant must visit exactly the pure-source
			// schedules. (The pre-PR-10 key conflated runs whose forced
			// prefixes extended past the horizon and merged real schedules.)
			if h.Runs != s.Runs {
				t.Errorf("n=%d: source+hash executed %d runs vs pure source's %d; the join key is altering the search", n, h.Runs, s.Runs)
			}
			t.Logf("n=%d switch-budget 1: classic %d runs vs source %d (%d pruned) vs source+hash %d (%d joined)",
				n, c.Runs, s.Runs, s.Pruned, h.Runs, h.Joined)
		}
	})

	t.Run("mutants", func(t *testing.T) {
		// Three zoo mutants covering the engine's regimes: a pure scheduling
		// race (full wakeup sequences), a flip-schedule kill (flip-anchored
		// wakeup sequences under an unstable history), and a flips-plus-joins
		// extraction kill (MaxDepth 1 < Budget keeps the hash layer active on
		// a violating sweep — joins must not eat violations).
		cases := []struct {
			name string
			cfg  Config
		}{
			{"fig1-broken-adopt", Config{
				System:        BrokenFig1System(2),
				MaxDepth:      24,
				Budget:        2048,
				MaxViolations: 1 << 20,
				Workers:       1,
			}},
			{"fig1-skip-on-change", Config{
				System:       SkipOnChangeFig1System(2),
				SwitchBudget: 1,
				FlipTimes:    []sim.Time{14},
				CrashTimes:   []sim.Time{0},
				MaxDepth:     31,
				Budget:       2048,
				// The mutant has exactly two violating configurations on
				// this grid (see TestDifferentialSwitchMutant); capping
				// there keeps the three full-depth sweeps CI-affordable.
				MaxViolations: 2,
				Workers:       1,
			}},
			{"extract-stale-leader", Config{
				System:        mustSystem("extract-stale-leader", 2, 1),
				SwitchBudget:  1,
				FlipTimes:     []sim.Time{2},
				CrashTimes:    []sim.Time{0},
				MaxDepth:      1,
				MaxRuns:       16,
				Budget:        768,
				MaxViolations: 1 << 20,
				Workers:       1,
			}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				cfg := tc.cfg
				cfg.Engine = EngineDPOR
				c := Explore(cfg)
				cfg.Engine = EngineSource
				cfg.NoHash = true
				s := Explore(cfg)
				cfg.NoHash = false
				h := Explore(cfg)
				ck, sk, hk := violationKeys(c), violationKeys(s), violationKeys(h)
				if strings.Join(ck, "\n") != strings.Join(sk, "\n") {
					t.Fatalf("violation sets differ:\nclassic (%d):\n%s\nsource (%d):\n%s",
						len(ck), strings.Join(ck, "\n"), len(sk), strings.Join(sk, "\n"))
				}
				if strings.Join(ck, "\n") != strings.Join(hk, "\n") {
					t.Fatalf("violation sets differ:\nclassic (%d):\n%s\nsource+hash (%d):\n%s",
						len(ck), strings.Join(ck, "\n"), len(hk), strings.Join(hk, "\n"))
				}
				if len(ck) == 0 {
					t.Fatal("no engine killed the mutant")
				}
				t.Logf("identical %d violating configs; classic %d runs vs source %d vs source+hash %d (%d joined)",
					len(ck), c.Runs, s.Runs, h.Runs, h.Joined)
			})
		}
	})
}

// mustSystem resolves a registered system or fails the build of the test
// fixture loudly.
func mustSystem(name string, n, f int) System {
	sys, err := NewSystem(name, n, f)
	if err != nil {
		panic(err)
	}
	return sys
}
