package explore

import (
	"testing"
)

// TestMutantZoo is the mutant gate: every zoo entry must be killed by its
// recorded cheapest sweep AND classified to its documented failure pattern.
// This is the calibration contract of the explorer — a mutant surviving, or
// a kill classifying to the wrong pattern, means either the search or the
// classifier regressed. CI runs this job separately (mutant-gate); `go test
// -short` skips the expensive sweeps.
func TestMutantZoo(t *testing.T) {
	zoo := MutantZoo()
	perSystem := make(map[string]int)
	for _, m := range zoo {
		perSystem[familyOf(m.System)]++
	}
	for _, fam := range []string{"fig1", "fig2", "extract-omega", "composed"} {
		if perSystem[fam] < 3 {
			t.Errorf("protocol system %s has %d mutants, want >= 3", fam, perSystem[fam])
		}
	}
	for _, m := range zoo {
		m := m
		t.Run(m.System, func(t *testing.T) {
			if testing.Short() && m.MaxDepth > 1 {
				t.Skip("branching sweep skipped in -short mode (CI mutant-gate runs it)")
			}
			t.Parallel()
			if _, ok := PatternByName(m.Pattern); !ok {
				t.Fatalf("zoo entry documents unknown pattern %q", m.Pattern)
			}
			v, res, err := m.Kill()
			if err != nil {
				t.Fatal(err)
			}
			if v == nil {
				t.Fatalf("mutant survived its cheapest killing sweep (%d runs, %d violations of other properties)",
					res.Runs, len(res.Violations))
			}
			if v.FailurePattern != m.Pattern {
				t.Fatalf("kill classified as %q, want %q (violation: %v)", v.FailurePattern, m.Pattern, v)
			}
			if v.Narrative == "" || v.Artifact.PatternName != m.Pattern {
				t.Errorf("classification not mirrored into the artifact: pattern %q, %d-byte narrative",
					v.Artifact.PatternName, len(v.Narrative))
			}
			t.Logf("killed in %d runs (%dms): %v", res.Runs, res.ElapsedMS, v)
		})
	}
}

// familyOf maps a mutant system name to its protocol family's registry name.
func familyOf(system string) string {
	switch {
	case len(system) >= 8 && system[:8] == "extract-":
		return "extract-omega"
	case len(system) >= 9 && system[:9] == "composed-":
		return "composed"
	case len(system) >= 5 && system[:5] == "fig2-":
		return "fig2"
	case len(system) >= 5 && system[:5] == "fig1-":
		return "fig1"
	}
	return system
}
