package explore

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"weakestfd/internal/sim"
)

// Flip-schedule enumeration: the SwitchBudget dimension of the sweep. The
// paper's lower-bound adversaries act *before* a detector history
// stabilizes — a history may output arbitrary range values until some finite
// time, and only its eventual output is constrained. PR 4 pinned every
// explored history to its stable value from time 0 (sound for finding
// stable-history bugs, blind to unstable-prefix ones); with the query seam
// making detector queries first-class accesses, the sweep can now also
// enumerate *when* each history flips: per (pattern, stable value), every
// schedule of at most SwitchBudget pre-stabilization output switches, with
// phase outputs drawn from the detector's range and flip times from a small
// global-time grid (Config.FlipTimes), exactly like the crash-time grid.
// Each choice is one more configuration; within it, DPOR (or the block
// enumerator) still quantifies over every schedule, so "process p queried
// just before the flip, q just after" is reached whenever any interleaving
// reaches it.

// FlipPhase is one pre-stabilization phase of an explored history: the
// history outputs Out (uniformly, at every process) while t < Until. A
// choice's phases are ordered by strictly increasing Until; the last Until
// is the history's stabilization time.
type FlipPhase struct {
	// Until is the phase's exclusive end time — the global step time the
	// history flips at.
	Until sim.Time
	// Out is the phase's output as a process set (a singleton for Ω-range
	// histories).
	Out sim.Set
}

// SwitchPlan bounds the flip schedules a system enumerates per history:
// at most Budget output switches, each at a time drawn from Times (strictly
// increasing within one schedule). A zero plan (Budget 0) enumerates only
// stable-from-0 histories — the PR-4 space.
type SwitchPlan struct {
	Budget int
	Times  []sim.Time
}

// sortedTimes normalizes a flip-time grid into the form flipVariants
// assumes: strictly increasing, all >= 2. A phase's output applies to
// t < its end time and the first step runs at t=1, so a flip at time <= 1
// is unobservable — its variant would duplicate the stable-from-0 base
// while the flip write still conflicted with every time-1 query under
// DPOR. Unobservable and duplicate entries are dropped; an
// already-normalized grid is returned as-is.
func sortedTimes(grid []sim.Time) []sim.Time {
	ok := true
	for i, t := range grid {
		if t < 2 || (i > 0 && t <= grid[i-1]) {
			ok = false
			break
		}
	}
	if ok {
		return grid
	}
	out := make([]sim.Time, 0, len(grid))
	for _, t := range grid {
		if t >= 2 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	out = slices.Compact(out)
	return out
}

// flipName renders a flipped choice's display name: the stable choice's name
// plus the unstable prefix, e.g. "U={p1} pre[{p1,p2}<8]" for a history that
// outputs {p1,p2} until time 8 and {p1} from then on.
func flipName(base string, flips []FlipPhase) string {
	if len(flips) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteString(" pre[")
	for i, f := range flips {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%v<%d", f.Out, int64(f.Until))
	}
	b.WriteByte(']')
	return b.String()
}

// withFlips returns the stable choice o extended with the given unstable
// prefix (renamed accordingly, remembering the base name for the shrinker).
func (o OracleChoice) withFlips(flips []FlipPhase) OracleChoice {
	base := o.Name
	if o.base != "" {
		base = o.base
	}
	o.Flips = flips
	o.Name = flipName(base, flips)
	if len(flips) > 0 {
		o.base = base
	} else {
		o.base = ""
	}
	return o
}

// flipVariants expands each stable base choice with every flip schedule the
// plan allows: for k = 1..Budget switches, every strictly increasing k-tuple
// of flip times from the plan's grid and every assignment of phase outputs
// from domain with adjacent phases (and the last phase vs the stable value)
// distinct — equal adjacent outputs would be the same history with a
// redundant label. The stable-from-0 base choices are always included first,
// so a Budget-0 plan returns base unchanged.
//
// The recursion backtracks through one shared phase buffer (allocated once,
// capacity Budget) instead of growing a fresh prefix slice per call; the only
// per-schedule allocation left is the owned copy handed to withFlips on
// emission. Emission order is part of the enumeration's contract — fleet
// sharding and checkpoint resume index into it — and is unchanged.
func flipVariants(base []OracleChoice, domain []sim.Set, plan SwitchPlan) []OracleChoice {
	out := append([]OracleChoice(nil), base...)
	if plan.Budget <= 0 || len(plan.Times) == 0 || len(domain) == 0 {
		return out
	}
	scratch := make([]FlipPhase, 0, plan.Budget)
	var cur OracleChoice
	var build func(nextTime int)
	build = func(nextTime int) {
		if len(scratch) > 0 {
			// The phase list is a complete schedule at every length.
			if scratch[len(scratch)-1].Out != cur.Stable {
				out = append(out, cur.withFlips(append([]FlipPhase(nil), scratch...)))
			}
		}
		if len(scratch) >= plan.Budget {
			return
		}
		for ti := nextTime; ti < len(plan.Times); ti++ {
			for _, v := range domain {
				if len(scratch) > 0 && v == scratch[len(scratch)-1].Out {
					continue // no-op switch
				}
				scratch = append(scratch, FlipPhase{Until: plan.Times[ti], Out: v})
				build(ti + 1)
				scratch = scratch[:len(scratch)-1]
			}
		}
	}
	for _, b := range base {
		cur = b
		build(0)
	}
	return out
}

// upsilonRange enumerates the range of a Υ^f detector — every process set of
// size ≥ n+1−f, *including* the correct set: legality constrains only the
// eventual output, so the most adversarial pre-stabilization values (the
// correct set itself, the one the stable output may never be) are fair game.
func upsilonRange(n, minSize int) []sim.Set {
	var out []sim.Set
	full := sim.FullSet(n)
	for bits := sim.Set(1); bits <= full; bits++ {
		if bits.Len() >= minSize {
			out = append(out, bits)
		}
	}
	return out
}

// omegaRange enumerates the range of an Ω source — every process, correct or
// not, as a singleton set (pre-stabilization Ω may output anyone).
func omegaRange(n int) []sim.Set {
	out := make([]sim.Set, n)
	for i := range out {
		out[i] = sim.SetOf(sim.PID(i))
	}
	return out
}

// validateFlips checks an externally supplied flip schedule (artifact
// replay): strictly increasing positive times, outputs within Π.
func validateFlips(flips []FlipPhase, n int) error {
	var last sim.Time
	for i, f := range flips {
		if f.Until <= last {
			return fmt.Errorf("explore: flip %d at time %d does not follow %d", i, f.Until, last)
		}
		if f.Out.IsEmpty() || !f.Out.SubsetOf(sim.FullSet(n)) {
			return fmt.Errorf("explore: flip %d output %v not a non-empty subset of Π (n=%d)", i, f.Out, n)
		}
		last = f.Until
	}
	return nil
}
