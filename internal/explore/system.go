package explore

import (
	"fmt"
	"strings"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// OracleChoice identifies one failure detector history of a system's
// enumerated family: a stable value (a Υ/Υ^f set, or a singleton {leader}
// for Ω sources), stable from time 0. Seed feeds any remaining seeded
// choices a system makes.
type OracleChoice struct {
	// Name is the display form, e.g. "U={p1,p3}".
	Name string
	// Stable is the history's stable output as a process set.
	Stable sim.Set
	// Seed drives auxiliary seeded choices.
	Seed int64
}

// Instance is one run's freshly built shared state: the per-process
// machines plus the hooks the explorer wires into the simulation.
type Instance struct {
	// Machines are the per-process automata (one per PID). Single-task
	// systems set Machines; multi-task systems set Tasks instead.
	Machines []sim.StepMachine
	// Tasks are the per-process task sets of multi-task systems
	// (Composed/TimedComposed): the explorer drives them through
	// sim.RunTaskMachines, putting the extraction∘protocol pipeline of
	// Corollary 11 under the same exhaustive lens as the single-task
	// protocols. Exactly one of Machines and Tasks is non-nil.
	Tasks []sim.MachineTaskSet
	// Proposals are the input values (nil for extraction systems).
	Proposals []sim.Value
	// K is the agreement bound (0 when not applicable).
	K int
	// Observe, when non-nil, is called after every settled step (wired into
	// sim.Config.StopWhen); extraction systems use it to trace outputs.
	Observe func(t sim.Time)
	// Finish, when non-nil, runs after the simulation and may fill
	// system-specific Run fields (e.g. Outputs/OutputsSettled).
	Finish func(r *Run)
}

// System is one protocol (or reduction) under exploration. Instantiate must
// build completely fresh shared state on every call: the explorer replays
// thousands of runs and two runs may never share memory.
type System interface {
	// Name is the registry name ("fig1", "fig2", …).
	Name() string
	// N is the number of processes.
	N() int
	// MaxFaults is the resilience f of the system's environment E_f.
	MaxFaults() int
	// Oracles enumerates the detector histories to explore for one pattern.
	Oracles(pattern sim.Pattern) []OracleChoice
	// Instantiate builds one run's machines and hooks.
	Instantiate(pattern sim.Pattern, o OracleChoice) Instance
	// Properties are the claims checked on every completed run.
	Properties() []Property
}

// NewSystem builds a registered system by name — the registry `fdlab
// explore -system` and artifact replay resolve against. f is the resilience
// where the system has one (fig2); others ignore it.
func NewSystem(name string, n, f int) (System, error) {
	switch name {
	case "fig1":
		return Fig1System(n), nil
	case "fig1-broken-adopt":
		return BrokenFig1System(n), nil
	case "fig2":
		return Fig2System(n, f), nil
	case "extract-omega":
		return ExtractOmegaSystem(n), nil
	case "composed":
		return ComposedSystem(n), nil
	case "timed-composed":
		return TimedComposedSystem(n), nil
	default:
		return nil, fmt.Errorf("explore: unknown system %q (want %s)", name, strings.Join(SystemNames(), "|"))
	}
}

// SystemNames lists the registry, for CLI help.
func SystemNames() []string {
	return []string{"fig1", "fig1-broken-adopt", "fig2", "extract-omega", "composed", "timed-composed"}
}

// canonicalProposals returns the explorer's fixed inputs 100..100+n−1:
// distinct values, so agreement violations cannot hide behind colliding
// proposals.
func canonicalProposals(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i)
	}
	return out
}

// legalStableSets enumerates every legal Υ^f stable set for the pattern, in
// deterministic order: all subsets of Π of size ≥ n+1−f except correct(F).
func legalStableSets(spec core.UpsilonSpec, pattern sim.Pattern) []OracleChoice {
	var out []OracleChoice
	full := sim.FullSet(spec.N)
	for bits := sim.Set(1); bits <= full; bits++ {
		if spec.LegalStable(pattern, bits) != nil {
			continue
		}
		out = append(out, OracleChoice{Name: "U=" + bits.String(), Stable: bits})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 1 (and its mutation-testing variant)

type fig1System struct {
	n   int
	mut core.Fig1Mutation
}

// Fig1System explores the paper's Figure 1: Υ-based n−1-set agreement among
// n processes, wait-free.
func Fig1System(n int) System { return fig1System{n: n} }

// BrokenFig1System is Figure 1 with the converge adopt rule broken
// (core.MutWrongAdopt) — the intentionally wrong variant the mutation tests
// use to prove the explorer catches what seeded-random testing misses.
func BrokenFig1System(n int) System { return fig1System{n: n, mut: core.MutWrongAdopt} }

func (s fig1System) Name() string {
	if s.mut != core.MutNone {
		return "fig1-broken-adopt"
	}
	return "fig1"
}

func (s fig1System) N() int         { return s.n }
func (s fig1System) MaxFaults() int { return s.n - 1 }

func (s fig1System) Oracles(pattern sim.Pattern) []OracleChoice {
	return legalStableSets(core.Upsilon(s.n), pattern)
}

func (s fig1System) Instantiate(pattern sim.Pattern, o OracleChoice) Instance {
	h := core.Upsilon(s.n).HistoryWithStable(pattern, 0, o.Seed, o.Stable)
	g := core.NewFig1(s.n, h, converge.UseAtomic)
	proposals := canonicalProposals(s.n)
	machines := make([]sim.StepMachine, s.n)
	for i := range machines {
		machines[i] = g.MutantMachine(proposals[i], s.mut)
	}
	return Instance{Machines: machines, Proposals: proposals, K: g.K()}
}

func (s fig1System) Properties() []Property {
	return []Property{AtMostK{}, Validity{}, TerminationOfCorrect{}}
}

// ---------------------------------------------------------------------------
// Figure 2

type fig2System struct {
	n, f int
}

// Fig2System explores the paper's Figure 2: Υ^f-based f-set agreement among
// n processes in E_f.
func Fig2System(n, f int) System { return fig2System{n: n, f: f} }

func (s fig2System) Name() string   { return "fig2" }
func (s fig2System) N() int         { return s.n }
func (s fig2System) MaxFaults() int { return s.f }

func (s fig2System) Oracles(pattern sim.Pattern) []OracleChoice {
	return legalStableSets(core.UpsilonF(s.n, s.f), pattern)
}

func (s fig2System) Instantiate(pattern sim.Pattern, o OracleChoice) Instance {
	h := core.UpsilonF(s.n, s.f).HistoryWithStable(pattern, 0, o.Seed, o.Stable)
	g := core.NewFig2(s.n, s.f, h, converge.UseAtomic)
	proposals := canonicalProposals(s.n)
	machines := make([]sim.StepMachine, s.n)
	for i := range machines {
		machines[i] = g.Machine(proposals[i])
	}
	return Instance{Machines: machines, Proposals: proposals, K: g.K()}
}

func (s fig2System) Properties() []Property {
	return []Property{AtMostK{}, Validity{}, TerminationOfCorrect{}}
}

// ---------------------------------------------------------------------------
// Figure 3 extraction from Ω

type extractSystem struct {
	n int
}

// ExtractOmegaSystem explores the Figure 3 reduction extracting Υ from a
// stable Ω source: the checked property is Υ-output sanity — whenever the
// emulated outputs settle within the run, the settled set must be a legal Υ
// value for the pattern (in particular, not the correct set).
func ExtractOmegaSystem(n int) System { return extractSystem{n: n} }

func (s extractSystem) Name() string   { return "extract-omega" }
func (s extractSystem) N() int         { return s.n }
func (s extractSystem) MaxFaults() int { return s.n - 1 }

// Oracles enumerates every correct leader as the Ω source's stable output,
// in PID order (Members iterates ascending).
func (s extractSystem) Oracles(pattern sim.Pattern) []OracleChoice {
	var out []OracleChoice
	for _, leader := range pattern.Correct().Members() {
		out = append(out, OracleChoice{
			Name:   fmt.Sprintf("leader=%v", leader),
			Stable: sim.SetOf(leader),
		})
	}
	return out
}

func (s extractSystem) Instantiate(pattern sim.Pattern, o OracleChoice) Instance {
	oracle := &fd.Stabilizing[sim.PID]{Stable: o.Stable.Min()}
	ex := core.NewExtraction(s.n, oracle, core.PhiOmega(s.n))
	machines := make([]sim.StepMachine, s.n)
	for i := range machines {
		machines[i] = ex.Machine()
	}
	trace := check.NewOutputTrace[sim.Set](s.n, ex.Output)
	correct := pattern.Correct()
	return Instance{
		Machines: machines,
		Observe:  trace.Observe,
		Finish: func(r *Run) {
			r.Outputs = append([]sim.Set(nil), trace.Final()...)
			stable, from, err := trace.StableFrom(correct)
			if err != nil {
				return // outputs still disagree at the horizon: inconclusive
			}
			// Settled means the common output survived unchanged for a
			// meaningful fraction of the run — the bounded-run reading of
			// "eventually permanently output".
			window := r.Report.Steps / 4
			if window < 64 {
				window = 64
			}
			if int64(trace.Horizon()-from) >= window {
				r.OutputsSettled = true
				r.StableOutput = stable
			}
		},
	}
}

func (s extractSystem) Properties() []Property {
	return []Property{UpsilonSanity{Spec: core.Upsilon(s.n)}}
}

// ---------------------------------------------------------------------------
// Composed: Figure 3 extraction ∘ Figure 1 protocol (Corollary 11 pipeline)

type composedSystem struct {
	n int
}

// ComposedSystem explores the Theorem 10 composition: each process runs the
// Figure 3 reduction against a stable Ω source as one task and the Figure 1
// protocol consuming the emulated Υ as a second, through
// sim.RunTaskMachines. Checked properties are the safety half — Agreement
// and Validity must hold under *every* schedule, even ones on which the
// emulated detector has not yet converged; termination is an eventual
// property of fair runs and is exercised by the lab experiments instead
// (a bounded adversarial run cannot refute it).
func ComposedSystem(n int) System { return composedSystem{n: n} }

func (s composedSystem) Name() string   { return "composed" }
func (s composedSystem) N() int         { return s.n }
func (s composedSystem) MaxFaults() int { return s.n - 1 }

// Oracles enumerates every correct leader as the underlying Ω source's
// stable output, as in ExtractOmegaSystem.
func (s composedSystem) Oracles(pattern sim.Pattern) []OracleChoice {
	var out []OracleChoice
	for _, leader := range pattern.Correct().Members() {
		out = append(out, OracleChoice{
			Name:   fmt.Sprintf("leader=%v", leader),
			Stable: sim.SetOf(leader),
		})
	}
	return out
}

func (s composedSystem) Instantiate(pattern sim.Pattern, o OracleChoice) Instance {
	oracle := &fd.Stabilizing[sim.PID]{Stable: o.Stable.Min()}
	c := core.NewComposed(s.n, oracle, core.PhiOmega(s.n), converge.UseAtomic)
	proposals := canonicalProposals(s.n)
	return Instance{
		Tasks:     c.MachineTaskSets(proposals),
		Proposals: proposals,
		K:         c.K(),
	}
}

func (s composedSystem) Properties() []Property {
	return []Property{AtMostK{}, Validity{}}
}

// ---------------------------------------------------------------------------
// TimedComposed: heartbeat-implemented Υ ∘ Figure 1 protocol

type timedComposedSystem struct {
	n int
}

// timedComposedThreshold is the heartbeat implementation's initial
// per-target patience: small, so suspicion dynamics are reachable within
// explorer-sized runs.
const timedComposedThreshold = 2

// TimedComposedSystem explores the oracle-free composition: Υ implemented
// from heartbeats and adaptive timeouts, consumed by Figure 1, both as
// parallel tasks. Adversarial schedules legally make the emulated Υ output
// arbitrary garbage (that is the impossibility of implementing a
// non-trivial detector in pure asynchrony), so only the safety properties
// are checked: no schedule — however the emulated detector misbehaves —
// may produce more than n−1 decisions or an unproposed decision.
func TimedComposedSystem(n int) System { return timedComposedSystem{n: n} }

func (s timedComposedSystem) Name() string   { return "timed-composed" }
func (s timedComposedSystem) N() int         { return s.n }
func (s timedComposedSystem) MaxFaults() int { return s.n - 1 }

// Oracles returns the single trivial choice: the system consumes no oracle
// (its detector is implemented, not assumed).
func (s timedComposedSystem) Oracles(sim.Pattern) []OracleChoice {
	return []OracleChoice{{Name: "heartbeat-emulated"}}
}

func (s timedComposedSystem) Instantiate(pattern sim.Pattern, _ OracleChoice) Instance {
	c := core.NewTimedComposed(s.n, timedComposedThreshold, converge.UseAtomic)
	proposals := canonicalProposals(s.n)
	return Instance{
		Tasks:     c.MachineTaskSets(proposals),
		Proposals: proposals,
		K:         c.K(),
	}
}

func (s timedComposedSystem) Properties() []Property {
	return []Property{AtMostK{}, Validity{}}
}
