package explore

import (
	"fmt"
	"strings"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// OracleChoice identifies one failure detector history of a system's
// enumerated family: an optional bounded unstable prefix (Flips), then a
// stable value (a Υ/Υ^f set, or a singleton {leader} for Ω sources) output
// permanently. Without flips the history is stable from time 0 — the PR-4
// space. Seed feeds any remaining seeded choices a system makes.
type OracleChoice struct {
	// Name is the display form, e.g. "U={p1,p3}" or
	// "U={p1} pre[{p1,p2}<8]".
	Name string
	// Stable is the history's stable output as a process set.
	Stable sim.Set
	// Seed drives auxiliary seeded choices.
	Seed int64
	// Flips is the unstable prefix: the pre-stabilization phases, ordered by
	// strictly increasing Until (empty = stable from time 0). Each flip is
	// recorded by the query seam as a write of the history's virtual object.
	Flips []FlipPhase
	// base is the stable-from-0 display name the flip variant was built
	// from (set by withFlips), so the shrinker can recover the base choice
	// without parsing Name.
	base string
}

// NamedHistory is one detector history an instance's machines query,
// paired with the virtual-object name it is registered under in the run's
// query seam (and hence how its accesses render in traces).
type NamedHistory struct {
	Name string
	H    sim.Oracle
}

// Instance is one run's freshly built shared state: the per-process
// machines plus the hooks the explorer wires into the simulation.
type Instance struct {
	// Machines are the per-process automata (one per PID). Single-task
	// systems set Machines; multi-task systems set Tasks instead.
	Machines []sim.StepMachine
	// Tasks are the per-process task sets of multi-task systems
	// (Composed/TimedComposed): the explorer drives them through
	// sim.RunTaskMachines, putting the extraction∘protocol pipeline of
	// Corollary 11 under the same exhaustive lens as the single-task
	// protocols. Exactly one of Machines and Tasks is non-nil.
	Tasks []sim.MachineTaskSet
	// Proposals are the input values (nil for extraction systems).
	Proposals []sim.Value
	// K is the agreement bound (0 when not applicable).
	K int
	// Observe, when non-nil, is called after every settled step (wired into
	// sim.Config.StopWhen); extraction systems use it to trace outputs.
	Observe func(t sim.Time)
	// Finish, when non-nil, runs after the simulation and may fill
	// system-specific Run fields (e.g. Outputs/OutputsSettled).
	Finish func(r *Run)
	// Histories are the detector histories the machines query, registered
	// with the run's query seam so every query is recorded as a read of the
	// history's virtual object and every flip as a write. Empty for systems
	// that consume no oracle (timed-composed) or whose detector is emulated
	// from shared state already under access tracking.
	Histories []NamedHistory
}

// System is one protocol (or reduction) under exploration. Instantiate must
// build completely fresh shared state on every call: the explorer replays
// thousands of runs and two runs may never share memory.
type System interface {
	// Name is the registry name ("fig1", "fig2", …).
	Name() string
	// N is the number of processes.
	N() int
	// MaxFaults is the resilience f of the system's environment E_f.
	MaxFaults() int
	// Oracles enumerates the detector histories to explore for one pattern:
	// every legal stable value, expanded by every flip schedule the switch
	// plan allows (a zero plan keeps the histories stable from time 0).
	Oracles(pattern sim.Pattern, plan SwitchPlan) []OracleChoice
	// LegalFlipOut validates one pre-stabilization phase output against the
	// system's detector *range* (which constrains every output, not just the
	// eventual one): Υ^f phases must be sets of size ≥ n+1−f, Ω phases
	// singletons. Artifact.Replay applies it to hand-edited flip schedules;
	// the enumeration (flipVariants over upsilonRange/omegaRange) only
	// produces outputs that pass. Systems without an oracle reject every
	// flip.
	LegalFlipOut(out sim.Set) error
	// Instantiate builds one run's machines and hooks.
	Instantiate(pattern sim.Pattern, o OracleChoice) Instance
	// Properties are the claims checked on every completed run.
	Properties() []Property
}

// NewSystem builds a registered system by name — the registry `fdlab
// explore -system` and artifact replay resolve against. f is the resilience
// where the system has one (fig2); others ignore it.
func NewSystem(name string, n, f int) (System, error) {
	switch name {
	case "fig1":
		return Fig1System(n), nil
	case "fig1-broken-adopt":
		return BrokenFig1System(n), nil
	case "fig1-skip-on-change":
		return SkipOnChangeFig1System(n), nil
	case "fig1-garbled-decide":
		return GarbledFig1System(n), nil
	case "fig1-garbled-echo":
		return GarbledEchoFig1System(n), nil
	case "fig2":
		return Fig2System(n, f), nil
	case "fig2-broken-adopt":
		return BrokenAdoptFig2System(n, f), nil
	case "fig2-skip-on-change":
		return SkipOnChangeFig2System(n, f), nil
	case "fig2-starved-wait":
		return StarvedWaitFig2System(n, f), nil
	case "extract-omega":
		return ExtractOmegaSystem(n), nil
	case "extract-full-output":
		return FullOutputExtractSystem(n), nil
	case "extract-empty-output":
		return EmptyOutputExtractSystem(n), nil
	case "extract-stale-leader":
		return StaleLeaderExtractSystem(n), nil
	case "composed":
		return ComposedSystem(n), nil
	case "composed-broken-adopt":
		return BrokenAdoptComposedSystem(n), nil
	case "composed-garbled-echo":
		return GarbledEchoComposedSystem(n), nil
	case "composed-garbled-decide":
		return GarbledComposedSystem(n), nil
	case "timed-composed":
		return TimedComposedSystem(n), nil
	default:
		return nil, fmt.Errorf("explore: unknown system %q (want %s)", name, strings.Join(SystemNames(), "|"))
	}
}

// SystemNames lists the registry, for CLI help: the real systems first,
// then each protocol family's mutants (the zoo in mutants.go pairs every
// mutant with its expected killing configuration and failure pattern).
func SystemNames() []string {
	return []string{
		"fig1", "fig2", "extract-omega", "composed", "timed-composed",
		"fig1-broken-adopt", "fig1-skip-on-change", "fig1-garbled-decide",
		"fig1-garbled-echo",
		"fig2-broken-adopt", "fig2-skip-on-change", "fig2-starved-wait",
		"extract-full-output", "extract-empty-output", "extract-stale-leader",
		"composed-broken-adopt", "composed-garbled-echo", "composed-garbled-decide",
	}
}

// canonicalProposals returns the explorer's fixed inputs 100..100+n−1:
// distinct values, so agreement violations cannot hide behind colliding
// proposals.
func canonicalProposals(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(100 + i)
	}
	return out
}

// upsilonHistory builds the Υ^f history for one choice: the seeded
// stable-from-0 history when the choice has no flips (the PR-4 path,
// byte-identical behaviour), otherwise the flip-aware Unstable history the
// query seam records writes for.
func upsilonHistory(spec core.UpsilonSpec, pattern sim.Pattern, o OracleChoice) sim.Oracle {
	if len(o.Flips) == 0 {
		return spec.HistoryWithStable(pattern, 0, o.Seed, o.Stable)
	}
	if err := spec.LegalStable(pattern, o.Stable); err != nil {
		panic(fmt.Sprintf("explore: illegal Υ^f stable set: %v", err))
	}
	phases := make([]fd.Phase[sim.Set], len(o.Flips))
	for i, f := range o.Flips {
		phases[i] = fd.Phase[sim.Set]{Until: f.Until, Out: f.Out}
	}
	return fd.NewUnstable(o.Stable, phases...)
}

// omegaHistory builds the Ω source history for one choice: a constant
// correct leader without flips, otherwise the flip-aware history running
// through the choice's pre-stabilization leaders.
func omegaHistory(o OracleChoice) sim.Oracle {
	leader := o.Stable.Min()
	if len(o.Flips) == 0 {
		return &fd.Stabilizing[sim.PID]{Stable: leader}
	}
	phases := make([]fd.Phase[sim.PID], len(o.Flips))
	for i, f := range o.Flips {
		phases[i] = fd.Phase[sim.PID]{Until: f.Until, Out: f.Out.Min()}
	}
	return fd.NewUnstable(leader, phases...)
}

// omegaLeaderChoices enumerates every correct leader as an Ω source's stable
// output, in PID order (Members iterates ascending).
func omegaLeaderChoices(pattern sim.Pattern) []OracleChoice {
	var out []OracleChoice
	for _, leader := range pattern.Correct().Members() {
		out = append(out, OracleChoice{
			Name:   fmt.Sprintf("leader=%v", leader),
			Stable: sim.SetOf(leader),
		})
	}
	return out
}

// legalStableSets enumerates every legal Υ^f stable set for the pattern, in
// deterministic order: all subsets of Π of size ≥ n+1−f except correct(F).
func legalStableSets(spec core.UpsilonSpec, pattern sim.Pattern) []OracleChoice {
	var out []OracleChoice
	full := sim.FullSet(spec.N)
	for bits := sim.Set(1); bits <= full; bits++ {
		if spec.LegalStable(pattern, bits) != nil {
			continue
		}
		out = append(out, OracleChoice{Name: "U=" + bits.String(), Stable: bits})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 1 (and its mutation-testing variant)

type fig1System struct {
	n   int
	mut core.Fig1Mutation
}

// Fig1System explores the paper's Figure 1: Υ-based n−1-set agreement among
// n processes, wait-free.
func Fig1System(n int) System { return fig1System{n: n} }

// BrokenFig1System is Figure 1 with the converge adopt rule broken
// (core.MutWrongAdopt) — the intentionally wrong variant the mutation tests
// use to prove the explorer catches what seeded-random testing misses.
func BrokenFig1System(n int) System { return fig1System{n: n, mut: core.MutWrongAdopt} }

// SkipOnChangeFig1System is Figure 1 with the detector-change escape broken
// (core.MutSkipOnChange): provably correct under every stable-from-0
// history — the mutated branch is dead code there — but agreement-violating
// under an unstable prefix. It calibrates the SwitchBudget dimension: the
// sweep must pass at SwitchBudget=0 and find (and shrink) the violation at
// SwitchBudget>=1.
func SkipOnChangeFig1System(n int) System { return fig1System{n: n, mut: core.MutSkipOnChange} }

// GarbledFig1System is Figure 1 with the commit path corrupted
// (core.MutGarbledDecide): every deciding run writes an unproposed value,
// so the root fair run already violates Validity — the cheapest mutant in
// the zoo, pinning the validity property end to end.
func GarbledFig1System(n int) System { return fig1System{n: n, mut: core.MutGarbledDecide} }

// GarbledEchoFig1System is Figure 1 with the citizen echo corrupted
// (core.MutGarbledEcho): dead code under stable output Π, but any stable
// Υ output that excludes a live process turns that process into a citizen
// whose poisoned D[r] echo everyone leaving the round adopts — the oracle
// enumeration alone (no schedule branching) reaches the kill.
func GarbledEchoFig1System(n int) System { return fig1System{n: n, mut: core.MutGarbledEcho} }

func (s fig1System) Name() string {
	switch s.mut {
	case core.MutWrongAdopt:
		return "fig1-broken-adopt"
	case core.MutSkipOnChange:
		return "fig1-skip-on-change"
	case core.MutGarbledDecide:
		return "fig1-garbled-decide"
	case core.MutGarbledEcho:
		return "fig1-garbled-echo"
	}
	return "fig1"
}

func (s fig1System) N() int         { return s.n }
func (s fig1System) MaxFaults() int { return s.n - 1 }

func (s fig1System) Oracles(pattern sim.Pattern, plan SwitchPlan) []OracleChoice {
	spec := core.Upsilon(s.n)
	return flipVariants(legalStableSets(spec, pattern), upsilonRange(s.n, spec.MinSize()), plan)
}

func (s fig1System) LegalFlipOut(out sim.Set) error {
	return upsilonFlipOut(core.Upsilon(s.n), out)
}

func (s fig1System) Instantiate(pattern sim.Pattern, o OracleChoice) Instance {
	h := upsilonHistory(core.Upsilon(s.n), pattern, o)
	g := core.NewFig1(s.n, h, converge.UseAtomic)
	proposals := canonicalProposals(s.n)
	machines := make([]sim.StepMachine, s.n)
	for i := range machines {
		machines[i] = g.MutantMachine(proposals[i], s.mut)
	}
	return Instance{
		Machines:  machines,
		Proposals: proposals,
		K:         g.K(),
		Histories: []NamedHistory{{Name: "H(U)", H: h}},
	}
}

func (s fig1System) Properties() []Property {
	return []Property{AtMostK{}, Validity{}, TerminationOfCorrect{}}
}

// ---------------------------------------------------------------------------
// Figure 2

type fig2System struct {
	n, f int
	mut  core.Fig2Mutation
}

// Fig2System explores the paper's Figure 2: Υ^f-based f-set agreement among
// n processes in E_f.
func Fig2System(n, f int) System { return fig2System{n: n, f: f} }

// BrokenAdoptFig2System is Figure 2 with the converge adopt rule broken
// (core.MutF2WrongAdopt): the top-level (f)-converge race yields two solo
// commits of different values, violating f-set Agreement — the same shape
// as fig1-broken-adopt, proving the explorer's reach extends to Figure 2.
func BrokenAdoptFig2System(n, f int) System {
	return fig2System{n: n, f: f, mut: core.MutF2WrongAdopt}
}

// SkipOnChangeFig2System is Figure 2 with the detector-change escape
// broken (core.MutF2SkipOnChange): a gladiator observing a Υ^f change at a
// re-query skips two rounds with its current value instead of writing
// Stable[r] and adopting D[r]. Dead code under stable-from-0 histories —
// only a SwitchBudget sweep reaches it, mirroring fig1-skip-on-change.
func SkipOnChangeFig2System(n, f int) System {
	return fig2System{n: n, f: f, mut: core.MutF2SkipOnChange}
}

// StarvedWaitFig2System is Figure 2 with the gladiator scan threshold
// raised to all n entries (core.MutF2StarvedWait): one crashed gladiator
// parks every correct one in the lines 17-19 wait loop forever — a
// termination failure whose witness crash is load-bearing.
func StarvedWaitFig2System(n, f int) System {
	return fig2System{n: n, f: f, mut: core.MutF2StarvedWait}
}

func (s fig2System) Name() string {
	switch s.mut {
	case core.MutF2WrongAdopt:
		return "fig2-broken-adopt"
	case core.MutF2SkipOnChange:
		return "fig2-skip-on-change"
	case core.MutF2StarvedWait:
		return "fig2-starved-wait"
	}
	return "fig2"
}

func (s fig2System) N() int         { return s.n }
func (s fig2System) MaxFaults() int { return s.f }

func (s fig2System) Oracles(pattern sim.Pattern, plan SwitchPlan) []OracleChoice {
	spec := core.UpsilonF(s.n, s.f)
	return flipVariants(legalStableSets(spec, pattern), upsilonRange(s.n, spec.MinSize()), plan)
}

func (s fig2System) LegalFlipOut(out sim.Set) error {
	return upsilonFlipOut(core.UpsilonF(s.n, s.f), out)
}

func (s fig2System) Instantiate(pattern sim.Pattern, o OracleChoice) Instance {
	h := upsilonHistory(core.UpsilonF(s.n, s.f), pattern, o)
	g := core.NewFig2(s.n, s.f, h, converge.UseAtomic)
	proposals := canonicalProposals(s.n)
	machines := make([]sim.StepMachine, s.n)
	for i := range machines {
		machines[i] = g.MutantMachine(proposals[i], s.mut)
	}
	return Instance{
		Machines:  machines,
		Proposals: proposals,
		K:         g.K(),
		Histories: []NamedHistory{{Name: "H(U)", H: h}},
	}
}

func (s fig2System) Properties() []Property {
	return []Property{AtMostK{}, Validity{}, TerminationOfCorrect{}}
}

// ---------------------------------------------------------------------------
// Figure 3 extraction from Ω

type extractSystem struct {
	n   int
	mut core.ExtractMutation
}

// ExtractOmegaSystem explores the Figure 3 reduction extracting Υ from a
// stable Ω source: the checked property is Υ-output sanity — whenever the
// emulated outputs settle within the run, the settled set must be a legal Υ
// value for the pattern (in particular, not the correct set).
func ExtractOmegaSystem(n int) System { return extractSystem{n: n} }

// FullOutputExtractSystem is the extraction writing Π instead of φ_D's set
// at the output switch (core.MutExFullOutput): under a failure-free pattern
// the outputs settle on Π = correct, the one value Υ may never settle on.
func FullOutputExtractSystem(n int) System {
	return extractSystem{n: n, mut: core.MutExFullOutput}
}

// EmptyOutputExtractSystem is the extraction writing ∅ at the output switch
// (core.MutExEmptyOutput): the settled output violates Υ's range in every
// pattern.
func EmptyOutputExtractSystem(n int) System {
	return extractSystem{n: n, mut: core.MutExEmptyOutput}
}

// StaleLeaderExtractSystem is the extraction that latches its first
// detector query forever (core.MutExStaleLeader): one pre-stabilization
// flip of the Ω source — outputting a crashed process until the first query
// — makes it settle on complement({crashed}) = correct. Both the flip and
// the crash are load-bearing, making this the SwitchBudget calibration
// mutant of the extraction family.
func StaleLeaderExtractSystem(n int) System {
	return extractSystem{n: n, mut: core.MutExStaleLeader}
}

func (s extractSystem) Name() string {
	switch s.mut {
	case core.MutExFullOutput:
		return "extract-full-output"
	case core.MutExEmptyOutput:
		return "extract-empty-output"
	case core.MutExStaleLeader:
		return "extract-stale-leader"
	}
	return "extract-omega"
}

func (s extractSystem) N() int         { return s.n }
func (s extractSystem) MaxFaults() int { return s.n - 1 }

func (s extractSystem) LegalFlipOut(out sim.Set) error { return omegaFlipOut(s.n, out) }

// Oracles enumerates every correct leader as the Ω source's stable output,
// in PID order (Members iterates ascending), expanded by the plan's flip
// schedules over arbitrary (possibly faulty) pre-stabilization leaders.
func (s extractSystem) Oracles(pattern sim.Pattern, plan SwitchPlan) []OracleChoice {
	return flipVariants(omegaLeaderChoices(pattern), omegaRange(s.n), plan)
}

func (s extractSystem) Instantiate(pattern sim.Pattern, o OracleChoice) Instance {
	oracle := omegaHistory(o)
	ex := core.NewExtraction(s.n, oracle, core.PhiOmega(s.n))
	machines := make([]sim.StepMachine, s.n)
	for i := range machines {
		machines[i] = ex.MutantMachine(s.mut)
	}
	trace := check.NewOutputTrace[sim.Set](s.n, ex.Output)
	correct := pattern.Correct()
	return Instance{
		Machines:  machines,
		Histories: []NamedHistory{{Name: "H(Ω)", H: oracle}},
		Observe:   trace.Observe,
		Finish: func(r *Run) {
			r.Outputs = append([]sim.Set(nil), trace.Final()...)
			stable, from, err := trace.StableFrom(correct)
			if err != nil {
				return // outputs still disagree at the horizon: inconclusive
			}
			// Settled means the common output survived unchanged for a
			// meaningful fraction of the run — the bounded-run reading of
			// "eventually permanently output".
			window := r.Report.Steps / 4
			if window < 64 {
				window = 64
			}
			if int64(trace.Horizon()-from) >= window {
				r.OutputsSettled = true
				r.StableOutput = stable
			}
		},
	}
}

func (s extractSystem) Properties() []Property {
	return []Property{UpsilonSanity{Spec: core.Upsilon(s.n)}}
}

// ---------------------------------------------------------------------------
// Composed: Figure 3 extraction ∘ Figure 1 protocol (Corollary 11 pipeline)

type composedSystem struct {
	n   int
	mut core.Fig1Mutation
}

// ComposedSystem explores the Theorem 10 composition: each process runs the
// Figure 3 reduction against a stable Ω source as one task and the Figure 1
// protocol consuming the emulated Υ as a second, through
// sim.RunTaskMachines. Checked properties are the safety half — Agreement
// and Validity must hold under *every* schedule, even ones on which the
// emulated detector has not yet converged; termination is an eventual
// property of fair runs and is exercised by the lab experiments instead
// (a bounded adversarial run cannot refute it).
func ComposedSystem(n int) System { return composedSystem{n: n} }

// BrokenAdoptComposedSystem is the composition with the protocol task's
// converge adopt rule broken (core.MutWrongAdopt): the fig1 agreement race
// must stay reachable through the task interleaving, under the emulated
// detector.
func BrokenAdoptComposedSystem(n int) System {
	return composedSystem{n: n, mut: core.MutWrongAdopt}
}

// GarbledEchoComposedSystem is the composition with the protocol task's
// citizen echo corrupted (core.MutGarbledEcho). The emulated Υ settles on
// the complement of the Ω leader's singleton, so the leader itself is a
// live citizen of every later round: its poisoned D[r] echo is adopted by
// the gladiator and decided — a root-run Validity kill that exercises the
// one protocol branch only a proper-subset detector output can reach.
// (MutSkipOnChange is deliberately not composed: the emulated output only
// changes pre-settle, before any decision, so the armed skip renumbers
// rounds without breaking Agreement — see core.MutantMachineTaskSets.)
func GarbledEchoComposedSystem(n int) System {
	return composedSystem{n: n, mut: core.MutGarbledEcho}
}

// GarbledComposedSystem is the composition with the protocol task's commit
// path corrupted (core.MutGarbledDecide): the root fair run already decides
// an unproposed value.
func GarbledComposedSystem(n int) System {
	return composedSystem{n: n, mut: core.MutGarbledDecide}
}

func (s composedSystem) Name() string {
	switch s.mut {
	case core.MutWrongAdopt:
		return "composed-broken-adopt"
	case core.MutGarbledEcho:
		return "composed-garbled-echo"
	case core.MutGarbledDecide:
		return "composed-garbled-decide"
	}
	return "composed"
}

func (s composedSystem) N() int         { return s.n }
func (s composedSystem) MaxFaults() int { return s.n - 1 }

func (s composedSystem) LegalFlipOut(out sim.Set) error { return omegaFlipOut(s.n, out) }

// Oracles enumerates every correct leader as the underlying Ω source's
// stable output, as in ExtractOmegaSystem, with the plan's flip schedules.
func (s composedSystem) Oracles(pattern sim.Pattern, plan SwitchPlan) []OracleChoice {
	return flipVariants(omegaLeaderChoices(pattern), omegaRange(s.n), plan)
}

func (s composedSystem) Instantiate(pattern sim.Pattern, o OracleChoice) Instance {
	oracle := omegaHistory(o)
	c := core.NewComposed(s.n, oracle, core.PhiOmega(s.n), converge.UseAtomic)
	proposals := canonicalProposals(s.n)
	return Instance{
		Tasks:     c.MutantMachineTaskSets(proposals, s.mut),
		Proposals: proposals,
		K:         c.K(),
		// Only the underlying Ω source is a seam history; the emulated Υ the
		// protocol task queries reads the process's own output variable —
		// process-local state, not an environment object.
		Histories: []NamedHistory{{Name: "H(Ω)", H: oracle}},
	}
}

func (s composedSystem) Properties() []Property {
	return []Property{AtMostK{}, Validity{}}
}

// ---------------------------------------------------------------------------
// TimedComposed: heartbeat-implemented Υ ∘ Figure 1 protocol

type timedComposedSystem struct {
	n int
}

// timedComposedThreshold is the heartbeat implementation's initial
// per-target patience: small, so suspicion dynamics are reachable within
// explorer-sized runs.
const timedComposedThreshold = 2

// TimedComposedSystem explores the oracle-free composition: Υ implemented
// from heartbeats and adaptive timeouts, consumed by Figure 1, both as
// parallel tasks. Adversarial schedules legally make the emulated Υ output
// arbitrary garbage (that is the impossibility of implementing a
// non-trivial detector in pure asynchrony), so only the safety properties
// are checked: no schedule — however the emulated detector misbehaves —
// may produce more than n−1 decisions or an unproposed decision.
func TimedComposedSystem(n int) System { return timedComposedSystem{n: n} }

func (s timedComposedSystem) Name() string   { return "timed-composed" }
func (s timedComposedSystem) N() int         { return s.n }
func (s timedComposedSystem) MaxFaults() int { return s.n - 1 }

// Oracles returns the single trivial choice: the system consumes no oracle
// (its detector is implemented, not assumed), so there is no history to
// flip and the switch plan is ignored.
func (s timedComposedSystem) Oracles(sim.Pattern, SwitchPlan) []OracleChoice {
	return []OracleChoice{{Name: "heartbeat-emulated"}}
}

func (s timedComposedSystem) LegalFlipOut(sim.Set) error {
	return fmt.Errorf("system timed-composed consumes no detector history: no flip schedule is legal")
}

func (s timedComposedSystem) Instantiate(pattern sim.Pattern, _ OracleChoice) Instance {
	c := core.NewTimedComposed(s.n, timedComposedThreshold, converge.UseAtomic)
	proposals := canonicalProposals(s.n)
	return Instance{
		Tasks:     c.MachineTaskSets(proposals),
		Proposals: proposals,
		K:         c.K(),
	}
}

func (s timedComposedSystem) Properties() []Property {
	return []Property{AtMostK{}, Validity{}}
}

// upsilonFlipOut checks one pre-stabilization phase output against the Υ^f
// range: every phase output — not just the eventual stable value — must be a
// non-empty subset of Π of size at least n+1−f... in the paper's 1-indexed
// counting; with this codebase's 0-indexed |Π| = n that floor is
// spec.MinSize() = n−f. Unlike LegalStable it does not exclude the correct
// set: pre-stabilization outputs may equal correct(F), only the settled
// value may not.
func upsilonFlipOut(spec core.UpsilonSpec, out sim.Set) error {
	if out == sim.EmptySet {
		return fmt.Errorf("flip output is empty: Υ range values are non-empty")
	}
	all := sim.FullSet(spec.N)
	if out&^all != 0 {
		return fmt.Errorf("flip output %s is not a subset of Π (n=%d)", out.String(), spec.N)
	}
	if out.Len() < spec.MinSize() {
		return fmt.Errorf("flip output %s has %d processes, below the Υ range floor %d",
			out.String(), out.Len(), spec.MinSize())
	}
	return nil
}

// omegaFlipOut checks one pre-stabilization phase output against the Ω
// range: every output is a singleton {leader} ⊆ Π.
func omegaFlipOut(n int, out sim.Set) error {
	if out.Len() != 1 {
		return fmt.Errorf("flip output %s is not a singleton: Ω outputs exactly one leader", out.String())
	}
	if out&^sim.FullSet(n) != 0 {
		return fmt.Errorf("flip output %s names a process outside Π (n=%d)", out.String(), n)
	}
	return nil
}
