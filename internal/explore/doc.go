// Package explore is a bounded-exhaustive schedule-space explorer for the
// protocols of this reproduction: a stateless model checker in the VeriSoft
// tradition, specialized to the step-machine simulation engine.
//
// The paper's claims are universally quantified — Figure 1 solves n-set
// agreement in *every* admissible run, the Figure 3 extraction emits a legal
// Υ^f history under *every* schedule and failure pattern in E_f — but the
// experiment lab only samples a few hundred seeded-random schedules. The
// explorer closes that gap for small configurations (n ≤ 4): it enumerates a
// precisely-defined family of schedules × crash patterns, replays each one
// through sim.RunMachines (or sim.RunTaskMachines for the multi-task
// compositions) on fresh shared state (runs are deterministic in the
// schedule, so replay *is* cloning), and checks declarative Property values
// against every completed run.
//
// # Engines
//
// Three engines enumerate the schedule space; all close every run with a
// fair round-robin tail inside the step budget, and all share the same
// dependence relation, built on the access-recording seam of
// internal/memory: every Direct* accessor reports its (object, read|write)
// events to the run's sim.AccessLog, so each step carries its exact
// shared-object footprint. Two steps of different processes are independent
// when their access sets do not conflict (no common object with at least
// one write); schedules that differ only by reordering independent adjacent
// steps are equivalent, and a partial-order engine executes at least one
// representative per equivalence class (Mazurkiewicz trace).
//
// EngineSource (default) is source-DPOR with wakeup sequences in the
// Abdulla–Aronis–Jonsson–Sagonas style (POPL 2014), plus a state-hash join
// layer at the branching horizon:
//
//   - Happens-before is tracked with per-process and per-object vector
//     clocks over the recorded access sets (snapshot objects are tracked
//     per *position*: updates by different processes commute, scans
//     conflict with every update).
//   - A race — conflicting accesses (b, c) of different processes ordered
//     only by their own pair — yields a *wakeup sequence* v·p: the steps in
//     (b, c) not happening-after b, then proc(c). Where classic DPOR falls
//     back to "add every enabled process" when the reversing process was
//     not enabled at b, source-DPOR computes the initials of v·p — the
//     processes with no dependent predecessor inside the sequence — and
//     inserts nothing when some initial is already covered at b (that
//     branch subsumes the reversal) or asleep there (the reversal was
//     already explored). In this simulation the fallback is provably dead
//     anyway: crashes happen at absolute times and enabledness never
//     recovers, so any process that stepped inside (b, c) was enabled at b.
//   - Flip anchoring: with a non-empty flip schedule (SwitchBudget > 0
//     histories), a detector flip is pinned to an *absolute* global time
//     while the forced reversal left-shifts every window step, so the
//     wakeup-sequence construction applies one extra dependency rule
//     (wakeup.go): a step whose history query would cross a flip on the way
//     to its shifted slot — lo < flip time <= hi — cannot join the sequence,
//     and neither can any later window step depending on it (same process or
//     conflicting accesses; flip drops need that explicit transitive closure
//     because a flip-pinned step does not happen-after b). Every kept step
//     then replays its recorded behavior at its forced position. Only when
//     the racing step c itself fails the rule does the engine degrade to a
//     bare single-initial insertion — classic DPOR's per-race insertion,
//     still gated by the covered/sleep checks. Flip-free configurations skip
//     anchoring entirely: the stable-from-0 search is unchanged run for run.
//   - Sleep sets carry fully-explored siblings down the tree exactly as in
//     the classic engine; sleep-set skips count as Result.Pruned.
//   - State-hash joins: when MaxDepth < Budget, every step of every run
//     beyond the horizon is pure round-robin, so two runs that reach the
//     horizon in the same joint state run identical tails. Each run's state
//     at the horizon is fingerprinted incrementally (sim.AccessLog's
//     order-insensitive XOR of per-write value fingerprints — see
//     StateDigest) and keyed together with the round-robin rotation point,
//     a fingerprint of any forced-prefix grants still pending past the
//     horizon, and the detector environment's *outputs digest*
//     (sim.QuerySeam.OutputsDigest): per live history, the output a query at
//     the horizon would observe plus every still-pending flip's time and
//     post-flip output. A later run hitting a seen key stops at the horizon
//     and splices the recorded tail, counted in Result.Joined. Soundness:
//     crashes and flips fire at *absolute* times, and machines consult time
//     only through the query seam, whose environment-side accesses are
//     sealed out of the per-process observation hashes (they are charged to
//     whichever step runs at the flip time, not observed by it) and carried
//     by the env component instead — so equal key at equal time t means the
//     two runs' futures are *identical* step for step, not merely
//     equivalent, and the first visitor's property verdict covers the
//     joined run. A sound key never changes the search, only who executes
//     each tail: the hash variant visits exactly the pure-source schedules
//     (pinned by the differential suite). The cache is capped
//     (Config.MaxStates); hitting the cap only disables new insertions and
//     is reported as Result.StateCapped.
//
// EngineDPOR is classic dynamic partial-order reduction in the
// Flanagan–Godefroid style (POPL 2005): per-race backtrack points with the
// conservative add-all-enabled fallback, plus the same sleep sets. It is
// kept as the differential anchor for the source engine — same dependence
// relation, independently implemented search.
//
// For both partial-order engines, Config.MaxDepth bounds where backtrack
// points may be inserted: the search is exhaustive up to commutativity over
// *every* schedule — arbitrarily many context switches — whose branching
// lies in the first MaxDepth steps. Terminating protocols at small n afford
// full depth (MaxDepth = budget); the non-terminating extraction and the
// compositions use a finite horizon. Reduction soundness needs step
// behaviour to be independent of a step's global time *up to what the
// access sets record*. Crash times are fixed by the pattern, and detector
// queries — the one time-dependent operation — are first-class accesses
// since PR 5: every query routes through the run's query seam
// (sim.QuerySeam) and is recorded as a read of a virtual per-history
// object, every pre-stabilization output switch ("flip") of an unstable
// history is recorded as a write of that object at its global time, and the
// step one before a flip carries a boundary-guard read, so no commutation
// the reduction performs can move a query across a flip. With stable-from-0
// histories the object is never written and the search is the PR-4 one,
// run for run.
//
// EngineEnum is the PR-3 enumerator, kept for differential testing: a
// schedule is a sequence of adversarial "blocks" (block (p, ℓ) grants up to
// ℓ consecutive steps to p) followed by the fair tail — exactly the
// context-switch-bounded exploration of Musuvathi & Qadeer's CHESS, with
// stutter pruning on cut-short blocks and canonical decomposition of solo
// spans. The differential suites (differential_test.go, source_test.go, CI)
// assert all engines find the identical violation set on the standard n ≤ 3
// suite and on killable mutants, with source executing strictly fewer runs
// than classic, and classic strictly fewer than the enumerator.
//
// # What is enumerated
//
// Failure patterns. Every crash set of size ≤ f (the environment E_f) is
// combined with every assignment of crash times from a small grid
// (Config.CrashTimes). Config.Symmetry collapses crash sets up to process
// renaming — a speed heuristic only: proposals are pinned to PIDs and the
// protocols branch on value order, so renamed patterns are not
// execution-equivalent. The standard suite keeps it off.
//
// Detector histories. For each pattern the system enumerates the legal
// stable outputs of its failure detector (every legal Υ/Υ^f stable set,
// every correct Ω leader). Config.SwitchBudget adds the unstable-prefix
// dimension the paper's lower-bound adversaries drive: for b > 0, each
// stable value is additionally explored under every schedule of at most b
// pre-stabilization output switches, with phase outputs drawn from the
// detector's *range* (including maximally unhelpful values like the correct
// set itself, legal before stabilization) and flip times from the
// Config.FlipTimes grid. Budget 0 — the default and the standard suite —
// keeps histories stable from time 0, which is exactly the PR-4 space. The
// timed composition consumes no oracle at all — its detector is implemented
// from heartbeats, and the explorer checks that safety survives every way
// the implementation can misbehave.
//
// # Counterexamples
//
// A violated property yields the flat granted-PID sequence of the failing
// run. The shrinker minimizes the schedule (prefix truncation, then
// ddmin-style chunk deletion) and then the *configuration*: crashes that
// are not load-bearing are dropped from the pattern, the oracle's stable
// set is shrunk to the smallest legal value, and the history's flip
// schedule is minimized (drop phases, then move each surviving flip later)
// — every candidate re-replayed through sim.FixedSchedule and kept only if
// the same property still fails. The shrunk witness is then *classified*:
// Classify matches the run's structural features — which property failed,
// whether a crash or a history flip is load-bearing, round gaps in the
// access trace's round-indexed objects, a decider's stale read of a
// converge register or snapshot entry another process overwrote — against
// the named failure-pattern library of classify.go, yielding a
// FailurePattern with a one-line signature and a human-readable narrative
// of how the interleaving broke the protocol. The result is emitted as a
// JSON Artifact recording the witness configuration, flips included, plus
// the pattern name and narrative (schema 3; schemas 1 and 2 from earlier
// explorer versions still load). `fdlab replay` re-executes it
// deterministically, step for step, printing the detector flip events, the
// reproduced violation and its classification and, with -trace, each
// step's recorded access set — history-object reads and flip writes
// included. Replay validates hand-edited artifacts: every recorded flip
// output must lie in the system's detector *range* (Υ^f sets of size
// ≥ n+1−f, Ω singletons), or the replay would indict the environment
// rather than the protocol.
//
// The package proves its own worth by mutation. The mutant zoo
// (mutants.go) pairs every registered broken variant of the four protocol
// systems — fig1, fig2, extract-omega, composed, at least three mutants
// each — with the cheapest exploration configuration known to kill it and
// the failure pattern the kill must classify to; TestMutantZoo and the CI
// mutant-gate job sweep all of them. The committed corpus under
// testdata/corpus/ holds one shrunk schema-3 artifact per zoo entry, and
// TestCorpus replays each against the current code, asserting both the
// violation and its classification reproduce — a regression net over the
// simulator, the protocols, the shrinker and the classifier at once. Two
// zoo lineages calibrate specific explorer dimensions: fig1-skip-on-change
// (core.MutSkipOnChange) is provably correct under every stable-from-0
// history — its broken branch is dead code there — yet agreement-violating
// under a single pre-stabilization output switch, so only a SwitchBudget
// >= 1 sweep catches it; fig1-garbled-echo (core.MutGarbledEcho) is dead
// code under stable output Π, so only the oracle enumeration's
// proper-subset stable sets reach its poisoned citizen echo.
package explore
