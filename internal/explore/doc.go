// Package explore is a bounded-exhaustive schedule-space explorer for the
// protocols of this reproduction: a stateless model checker in the VeriSoft
// tradition, specialized to the step-machine simulation engine.
//
// The paper's claims are universally quantified — Figure 1 solves n-set
// agreement in *every* admissible run, the Figure 3 extraction emits a legal
// Υ^f history under *every* schedule and failure pattern in E_f — but the
// experiment lab only samples a few hundred seeded-random schedules. The
// explorer closes that gap for small configurations (n ≤ 4): it enumerates a
// precisely-defined family of schedules × crash patterns, replays each one
// through sim.RunMachines on fresh shared state (runs are deterministic in
// the schedule, so replay *is* cloning), and checks declarative Property
// values against every completed run.
//
// # What is enumerated
//
// Schedules. A schedule is explored as a sequence of adversarial "blocks"
// followed by a fair round-robin tail: block (p, ℓ) grants up to ℓ
// consecutive steps to process p (fewer if p returns or crashes first), and
// after at most MaxBlocks blocks the round-robin tail runs the system to
// completion within the step budget. The explorer enumerates every such
// schedule — all block counts ≤ MaxBlocks, all block owners, all lengths
// ≤ MaxBlock — which is exactly the context-switch-bounded exploration of
// Musuvathi & Qadeer's CHESS: most concurrency bugs are triggered by few
// preemptions, and within the bound the search is exhaustive. Two prunings
// keep the frontier tractable without losing coverage: a block that was cut
// short (its process returned or crashed) makes every longer length
// stutter-equivalent, so the length scan stops; and consecutive blocks of
// one process are generated only as the canonical decomposition of a longer
// solo span (full MaxBlock blocks then a remainder), never as partial
// splits that would duplicate a shorter scan.
//
// Failure patterns. Every crash set of size ≤ f (the environment E_f) is
// combined with every assignment of crash times from a small grid
// (Config.CrashTimes). Config.Symmetry collapses crash sets up to process
// renaming — a speed heuristic only: proposals are pinned to PIDs and the
// protocols branch on value order, so renamed patterns are not
// execution-equivalent. The standard suite keeps it off.
//
// Detector histories. For each pattern the system enumerates the legal
// stable outputs of its failure detector (every legal Υ/Υ^f stable set,
// every correct Ω leader), stable from time 0: the adversary already owns
// the schedule, and pre-stabilization noise is subsumed by exploring every
// stable value.
//
// # Counterexamples
//
// A violated property yields the flat granted-PID sequence of the failing
// run. The shrinker minimizes it (prefix truncation, then ddmin-style chunk
// deletion — each candidate re-replayed through
// sim.FixedSchedule and kept only if the same property still fails) and the
// result is emitted as a JSON Artifact that `fdlab replay` re-executes
// deterministically, step for step, with an optional trace.
//
// The package proves its own worth by mutation: internal/explore's tests
// show the explorer finds and shrinks an agreement violation in a fig1
// variant with a broken converge adopt rule (core.MutWrongAdopt) that every
// seeded-random suite in this repository misses, and finds none across the
// real protocols' full n ≤ 3 sweep.
package explore
