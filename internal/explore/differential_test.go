package explore

import (
	"sort"
	"strings"
	"testing"
)

// Differential testing of the two exploration engines: DPOR (the default)
// and the legacy context-switch-bounded enumerator must agree on what is
// broken and what is not. CI's explore-smoke job runs these explicitly.

// violationKeys returns the sorted (pattern, oracle, property) triples of a
// result's violations.
func violationKeys(r *Result) []string {
	var out []string
	for _, v := range r.Violations {
		out = append(out, v.Pattern+"|"+v.Oracle+"|"+v.Property)
	}
	sort.Strings(out)
	return out
}

// TestDifferentialCleanSuite runs the standard n ≤ 3 suite under both
// engines: both must be violation-free, the DPOR pass must not be
// truncated, sleep sets must prune something, and DPOR must execute
// strictly fewer schedules than the enumerator in total — the point of
// dependency-aware exploration.
func TestDifferentialCleanSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep skipped under -short (race lane); the full lane runs it")
	}
	var dporRuns, enumRuns, dporPruned int64
	for _, cfg := range DefaultSweep() {
		d := Explore(cfg)
		cfg.Engine = EngineEnum
		l := Explore(cfg)
		if len(d.Violations) != 0 {
			t.Errorf("%s: DPOR found violations on the real protocol: %v", d.System, d.Violations)
		}
		if len(l.Violations) != 0 {
			t.Errorf("%s: enumerator found violations on the real protocol: %v", l.System, l.Violations)
		}
		if d.Truncated {
			t.Errorf("%s: DPOR sweep truncated — exhaustiveness claim void", d.System)
		}
		if d.Configs != l.Configs {
			t.Errorf("%s: engines explored different config counts: %d vs %d", d.System, d.Configs, l.Configs)
		}
		if d.System == "extract-omega" {
			// Upsilon-sanity settledness is time-window-based and not
			// trace-invariant (see dpor.go): guard against a silent
			// settledness collapse that would make the DPOR pass vacuous.
			if d.SettledRuns == 0 || l.SettledRuns == 0 {
				t.Errorf("extract-omega: settled runs dpor=%d enum=%d; the sanity property was never exercised",
					d.SettledRuns, l.SettledRuns)
			}
		}
		dporRuns += d.Runs
		enumRuns += l.Runs
		dporPruned += d.Pruned
		t.Logf("%s: dpor %d runs (%d pruned) vs enum %d runs", d.System, d.Runs, d.Pruned, l.Runs)
	}
	if dporRuns >= enumRuns {
		t.Errorf("DPOR executed %d runs, not fewer than the enumerator's %d", dporRuns, enumRuns)
	}
	if dporPruned == 0 {
		t.Error("sleep sets pruned nothing across the whole suite")
	}
	t.Logf("suite totals: dpor %d runs + %d pruned vs enum %d runs", dporRuns, dporPruned, enumRuns)
}

// TestDifferentialMutantIdenticalViolations: on the wrong-adopt fig1 mutant
// at n = 2 both engines must find the *identical* set of violating
// (pattern, oracle, property) configurations — every violating config is
// enumerated (no MaxViolations cap) and compared exactly. At n = 3 the
// full violating set is too expensive to enumerate twice, so the engines
// are compared on the violated property set and the minimal-witness
// property: both find agreement violations and both shrink the witness.
func TestDifferentialMutantIdenticalViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep skipped under -short (race lane); the full lane runs it")
	}
	sweep := func(engine Engine) *Result {
		return Explore(Config{
			System:        BrokenFig1System(2),
			Engine:        engine,
			MaxDepth:      24,
			MaxBlocks:     3,
			MaxBlock:      24,
			Budget:        2048,
			MaxViolations: 1 << 20, // enumerate every violating configuration
			Workers:       1,
		})
	}
	d, l := sweep(EngineDPOR), sweep(EngineEnum)
	dk, lk := violationKeys(d), violationKeys(l)
	if strings.Join(dk, "\n") != strings.Join(lk, "\n") {
		t.Fatalf("violation sets differ at n=2:\nDPOR (%d):\n%s\nenum (%d):\n%s",
			len(dk), strings.Join(dk, "\n"), len(lk), strings.Join(lk, "\n"))
	}
	if len(dk) == 0 {
		t.Fatal("neither engine found the mutant at n=2")
	}
	if d.Runs >= l.Runs {
		t.Errorf("n=2 mutant: DPOR executed %d runs, not fewer than enum's %d", d.Runs, l.Runs)
	}
	t.Logf("n=2: identical %d violating configs; dpor %d runs vs enum %d", len(dk), d.Runs, l.Runs)

	for _, engine := range []Engine{EngineDPOR, EngineEnum} {
		res := brokenSweep(3, engine)
		if len(res.Violations) == 0 {
			t.Fatalf("n=3: engine %v missed the mutant", engine)
		}
		for _, v := range res.Violations {
			if v.Property != "agreement" {
				t.Errorf("n=3 %v: unexpected property %q", engine, v.Property)
			}
			if int64(v.ShrunkSteps) >= v.Steps {
				t.Errorf("n=3 %v: shrinker made no progress (%d -> %d)", engine, v.Steps, v.ShrunkSteps)
			}
		}
	}
}
