package explore

import (
	"os"
	"path/filepath"
	"testing"
)

// The committed counterexample corpus: one shrunk schema-3 artifact per
// mutant-zoo entry, checked in under testdata/corpus/. TestCorpus is the
// regression gate — every artifact must still replay to its recorded
// violation and classify to its recorded failure pattern, so any refactor
// of the simulator, the protocols, or the classifier that silently changes
// a witness's meaning fails loudly. TestCorpusRegen (CORPUS_REGEN=1)
// rebuilds the corpus from the zoo after an intentional change.

const corpusDir = "testdata/corpus"

// TestCorpusRegen regenerates the committed corpus by killing every zoo
// mutant at its recorded configuration and writing the shrunk artifact.
// Skipped unless CORPUS_REGEN=1: the deep entries (broken-adopt sweeps)
// take tens of seconds, and regeneration is only meant to follow a
// deliberate witness-changing commit.
func TestCorpusRegen(t *testing.T) {
	if os.Getenv("CORPUS_REGEN") == "" {
		t.Skip("set CORPUS_REGEN=1 to regenerate the committed corpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, m := range MutantZoo() {
		m := m
		t.Run(m.System, func(t *testing.T) {
			t.Parallel()
			v, res, err := m.Kill()
			if err != nil {
				t.Fatal(err)
			}
			if v == nil {
				t.Fatalf("mutant survived %d runs — no artifact to record", res.Runs)
			}
			if v.FailurePattern != m.Pattern {
				t.Fatalf("kill classified %q, zoo documents %q", v.FailurePattern, m.Pattern)
			}
			path := filepath.Join(corpusDir, m.System+".json")
			if err := v.Artifact.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s: %s under %s, pattern %s",
				path, v.Property, v.WitnessPattern, v.FailurePattern)
		})
	}
}

// TestCorpus replays every committed artifact and asserts (a) the recorded
// violation reproduces and (b) the classifier still assigns the recorded
// failure pattern to the replayed run.
func TestCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 8 {
		t.Fatalf("corpus holds %d artifacts, want >= 8 (regenerate with CORPUS_REGEN=1 go test -run TestCorpusRegen)", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			a, err := ReadArtifact(path)
			if err != nil {
				t.Fatal(err)
			}
			if a.Schema != 3 {
				t.Fatalf("corpus artifact has schema %d, want classified schema 3", a.Schema)
			}
			run, violation, err := a.Replay(nil)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if violation == nil {
				t.Fatalf("recorded %s violation did not reproduce", a.Property)
			}
			if got := Classify(run, a.Property); got.Name != a.PatternName {
				t.Errorf("replayed run classified %q, artifact records %q", got.Name, a.PatternName)
			}
		})
	}
}
