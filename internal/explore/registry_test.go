package explore

import "testing"

// TestSystemRegistryRoundTrip pins the registry against drift: every name
// SystemNames advertises must resolve through NewSystem, and the resolved
// system must report exactly that name — so CLI help, the mutant zoo, and
// artifact replay (which rebuilds systems by recorded name) can never
// disagree about what exists.
func TestSystemRegistryRoundTrip(t *testing.T) {
	names := SystemNames()
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			t.Errorf("SystemNames lists %q twice", name)
		}
		seen[name] = true
		sys, err := NewSystem(name, 3, 1)
		if err != nil {
			t.Errorf("NewSystem(%q) failed: %v", name, err)
			continue
		}
		if sys.Name() != name {
			t.Errorf("NewSystem(%q).Name() = %q", name, sys.Name())
		}
		if sys.N() != 3 {
			t.Errorf("NewSystem(%q, 3, 1).N() = %d", name, sys.N())
		}
	}
	if _, err := NewSystem("no-such-system", 2, 1); err == nil {
		t.Error("NewSystem accepted an unknown system name")
	}
}

// TestMutantZooNamesRegistered asserts the other direction of the pairing:
// every zoo entry names a registered system and a library pattern, and its
// recorded size instantiates.
func TestMutantZooNamesRegistered(t *testing.T) {
	registered := make(map[string]bool)
	for _, name := range SystemNames() {
		registered[name] = true
	}
	for _, m := range MutantZoo() {
		if !registered[m.System] {
			t.Errorf("zoo entry %q is not in SystemNames", m.System)
		}
		if _, err := NewSystem(m.System, m.N, m.F); err != nil {
			t.Errorf("zoo entry %q does not instantiate at n=%d f=%d: %v", m.System, m.N, m.F, err)
		}
		if _, ok := PatternByName(m.Pattern); !ok {
			t.Errorf("zoo entry %q documents unknown pattern %q", m.System, m.Pattern)
		}
		if _, err := zooEntry(m.System); err != nil {
			t.Errorf("zooEntry(%q) failed: %v", m.System, err)
		}
	}
	if _, err := zooEntry("fig1"); err == nil {
		t.Error("zooEntry resolved the unmutated fig1 system")
	}
}
