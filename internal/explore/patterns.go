package explore

import (
	"fmt"
	"strings"

	"weakestfd/internal/sim"
)

// patternLabel renders a pattern unambiguously, including crash times —
// sim.Pattern.String() shows only the faulty set, which would conflate the
// grid points the sweep deliberately distinguishes (e.g. crash at 0 vs 3).
// Used for scenario names, violation reports and the dedup key.
func patternLabel(p sim.Pattern) string {
	faulty := p.Faulty()
	if faulty.IsEmpty() {
		return fmt.Sprintf("failure-free(n=%d)", p.N())
	}
	var b strings.Builder
	b.WriteString("crash{")
	for i, pid := range faulty.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%v@%d", pid, p.CrashAt(pid))
	}
	fmt.Fprintf(&b, "}(n=%d)", p.N())
	return b.String()
}

// patternsFor enumerates the failure patterns of E_f over n processes with
// crash times drawn from the grid. With sym set, crash sets are enumerated
// up to process renaming: one canonical set per cardinality (the highest
// PIDs) with non-decreasing time assignments. That reduction is a *speed
// heuristic*, not a sound quotient, for the built-in systems: renaming
// processes would also have to permute their proposals, but the sweep fixes
// proposal 100+i to process i and the protocols' adopt/commit rules branch
// on value order, so a run under a renamed pattern is not isomorphic to the
// original. Exhaustiveness claims (DefaultSweep, CI) therefore use
// sym=false; sym=true is for quick scans.
func patternsFor(n, maxF int, grid []sim.Time, sym bool) []sim.Pattern {
	if maxF > n-1 {
		maxF = n - 1 // at least one process stays correct
	}
	if len(grid) == 0 {
		grid = []sim.Time{0}
	}
	var out []sim.Pattern
	emit := func(faulty []sim.PID, times []sim.Time) {
		crashes := make(map[sim.PID]sim.Time, len(faulty))
		for i, p := range faulty {
			crashes[p] = times[i]
		}
		out = append(out, sim.CrashPattern(n, crashes))
	}
	// assign enumerates time tuples for one faulty set: all tuples in the
	// asymmetric case, non-decreasing tuples (canonical under renaming) in
	// the symmetric one.
	var assign func(faulty []sim.PID, times []sim.Time, minIdx int)
	assign = func(faulty []sim.PID, times []sim.Time, minIdx int) {
		if len(times) == len(faulty) {
			emit(faulty, times)
			return
		}
		start := 0
		if sym {
			start = minIdx
		}
		for gi := start; gi < len(grid); gi++ {
			assign(faulty, append(times, grid[gi]), gi)
		}
	}
	if sym {
		for size := 0; size <= maxF; size++ {
			faulty := make([]sim.PID, 0, size)
			for i := n - size; i < n; i++ {
				faulty = append(faulty, sim.PID(i))
			}
			if size == 0 {
				emit(nil, nil)
				continue
			}
			assign(faulty, make([]sim.Time, 0, size), 0)
		}
		return out
	}
	// Asymmetric: every subset of size ≤ maxF.
	full := sim.FullSet(n)
	for bits := sim.Set(0); bits <= full; bits++ {
		if bits.Len() > maxF {
			continue
		}
		faulty := bits.Members()
		if len(faulty) == 0 {
			emit(nil, nil)
			continue
		}
		assign(faulty, make([]sim.Time, 0, len(faulty)), 0)
	}
	return out
}
