package explore

import (
	"fmt"

	"weakestfd/internal/sim"
)

// The mutant zoo: every registered broken system, paired with the cheapest
// exploration configuration known to kill it and the named failure pattern
// the classifier must assign to the kill. The zoo is the calibration data of
// the whole explorer: the mutant-gate CI job (and TestMutantZoo) sweeps each
// entry and fails unless the mutant is (a) killed and (b) classified to its
// documented pattern, and the committed counterexample corpus under
// testdata/corpus/ is regenerated from these exact configurations.

// Mutant is one zoo entry: a registered mutant system plus its cheapest
// killing sweep and the expected verdict.
type Mutant struct {
	// System is the registry name (NewSystem resolves it) and N/F the size
	// and resilience to instantiate.
	System string
	N, F   int
	// Property is the property the kill must violate, and Pattern the named
	// failure pattern the classifier must assign to the shrunk witness.
	Property string
	Pattern  string
	// Config fields of the cheapest killing sweep. Zero values defer to
	// Config.withDefaults; CrashTimes/FlipTimes are trimmed to the
	// productive grid points so the gate stays CI-affordable.
	SwitchBudget int
	FlipTimes    []sim.Time
	CrashTimes   []sim.Time
	MaxDepth     int
	MaxRuns      int64
	Budget       int64
	Symmetry     bool
}

// Kill runs the mutant's sweep and returns the first violation of the
// expected property (nil if the mutant survived) plus the full result.
func (m Mutant) Kill() (*Violation, *Result, error) {
	sys, err := NewSystem(m.System, m.N, m.F)
	if err != nil {
		return nil, nil, err
	}
	res := Explore(Config{
		System:        sys,
		SwitchBudget:  m.SwitchBudget,
		FlipTimes:     m.FlipTimes,
		CrashTimes:    m.CrashTimes,
		MaxDepth:      m.MaxDepth,
		MaxRuns:       m.MaxRuns,
		Budget:        m.Budget,
		Symmetry:      m.Symmetry,
		MaxViolations: 1,
	})
	for _, v := range res.Violations {
		if v.Property == m.Property {
			return v, res, nil
		}
	}
	return nil, res, nil
}

// MutantZoo returns every mutant entry. Each of the four real protocol
// systems (fig1, fig2, extract-omega, composed) has at least three mutants;
// the comments give the kill's mechanism and why the configuration is the
// cheapest known one.
func MutantZoo() []Mutant {
	return []Mutant{
		// fig1-broken-adopt: the n=2 lost-update race on round 1's converge —
		// both processes read param.A/param.B before either write lands, each
		// escapes believing it ran alone and solo-commits its own value.
		// Depth 24 contains the second decision; symmetry halves the crash
		// grid.
		{
			System: "fig1-broken-adopt", N: 2, F: 1,
			Property: "agreement", Pattern: "wrong-adopt-order",
			CrashTimes: []sim.Time{0}, MaxDepth: 24, MaxRuns: 150_000,
			Budget: 2048, Symmetry: true,
		},
		// fig1-skip-on-change: dead code under every stable-from-0 history —
		// only a SwitchBudget>=1 sweep reaches it. Flip time 14 lands inside
		// the first gladiator cycle's query window; depth 36 contains the
		// skipping process's resumption after the laggard's solo decision.
		{
			System: "fig1-skip-on-change", N: 2, F: 1,
			Property: "agreement", Pattern: "adopt-skipped-after-flip",
			SwitchBudget: 1, FlipTimes: []sim.Time{14}, CrashTimes: []sim.Time{0},
			MaxDepth: 36, MaxRuns: 400_000, Budget: 2048,
		},
		// fig1-garbled-decide: every deciding run decides v+911 — the root
		// fair run kills it, no branching needed.
		{
			System: "fig1-garbled-decide", N: 2, F: 1,
			Property: "validity", Pattern: "unproposed-decision",
			CrashTimes: []sim.Time{0}, MaxDepth: 1, MaxRuns: 4, Budget: 2048,
		},
		// fig1-garbled-echo: dead code under stable output Π, so the kill
		// rides the oracle enumeration — under stable U={p1} the excluded p2
		// is a live citizen whose poisoned D[1] echo the gladiator adopts and
		// eventually decides. Root fair runs over the stable-set variants
		// suffice; no schedule branching.
		{
			System: "fig1-garbled-echo", N: 2, F: 1,
			Property: "validity", Pattern: "unproposed-decision",
			CrashTimes: []sim.Time{0}, MaxDepth: 1, MaxRuns: 8, Budget: 2048,
		},
		// fig2-broken-adopt: same adopt race as fig1, lifted to Figure 2's
		// top-level (f)-converge — needs two gladiators, so n=3 with
		// U={p0,p1} (legal failure-free: size 2 >= n-f, != correct). The
		// gladiator sub-round deepens the witness; depth 48.
		{
			System: "fig2-broken-adopt", N: 3, F: 1,
			Property: "agreement", Pattern: "wrong-adopt-order",
			CrashTimes: []sim.Time{0}, MaxDepth: 24, MaxRuns: 150_000,
			Budget: 2048, Symmetry: true,
		},
		// fig2-skip-on-change: Figure 2's detector-change escape broken the
		// same way fig1-skip-on-change breaks Figure 1's — dead code under
		// every stable-from-0 history, so only the SwitchBudget dimension
		// reaches it. The flip must land between a gladiator's round-entry
		// query and its re-query; the skipper then bypasses two rounds'
		// top-level converges and solo-commits its stale value. Flip time 24
		// lands between the fair run's round-entry query and its wait-loop
		// re-query, so the root fair run under the right flip variant already
		// violates — no schedule branching needed.
		{
			System: "fig2-skip-on-change", N: 2, F: 1,
			Property: "agreement", Pattern: "adopt-skipped-after-flip",
			SwitchBudget: 1, FlipTimes: []sim.Time{24}, CrashTimes: []sim.Time{0},
			MaxDepth: 1, MaxRuns: 64, Budget: 2048,
		},
		// fig2-starved-wait: the wait loop counts crashed processes — the
		// victim must die mid-converge (crash-at-0 lets the survivor
		// solo-commit the top-level converge and never reach the snapshot),
		// so that the survivor enters the gladiator cycle and waits forever
		// for the corpse's snapshot entry. The root fair run exhausts the
		// budget; the shrinker proves the crash load-bearing.
		{
			System: "fig2-starved-wait", N: 2, F: 1,
			Property: "termination-of-correct", Pattern: "crash-stalled-wait",
			CrashTimes: []sim.Time{5}, MaxDepth: 1, MaxRuns: 8, Budget: 512,
		},
		// extract-full-output: the output switch publishes Π instead of S —
		// under the failure-free root run the outputs settle on Π = correct.
		// The budget must clear the settle window (max(steps/4, 64)).
		{
			System: "extract-full-output", N: 2, F: 1,
			Property: "upsilon-sanity", Pattern: "correct-set-output",
			CrashTimes: []sim.Time{0}, MaxDepth: 1, MaxRuns: 4, Budget: 768,
		},
		// extract-empty-output: the settled output is ∅, outside the Υ range
		// in every pattern — root-run kill.
		{
			System: "extract-empty-output", N: 2, F: 1,
			Property: "upsilon-sanity", Pattern: "empty-detector-output",
			CrashTimes: []sim.Time{0}, MaxDepth: 1, MaxRuns: 4, Budget: 768,
		},
		// extract-stale-leader: with p1 crashed from the start and the Ω
		// source outputting the corpse until t=2, p0's first query latches
		// leader p1; the latch never updates, S settles on complement({p1}) =
		// {p0} = correct. Flip and crash are both load-bearing. The crashed
		// process never steps, so the root run is the whole schedule space.
		{
			System: "extract-stale-leader", N: 2, F: 1,
			Property: "upsilon-sanity", Pattern: "stale-leader-latch",
			SwitchBudget: 1, FlipTimes: []sim.Time{2}, CrashTimes: []sim.Time{0},
			MaxDepth: 1, MaxRuns: 16, Budget: 768,
		},
		// composed-broken-adopt: the fig1 adopt race under the *emulated*
		// detector. The task runner rotates each process between its
		// extraction and protocol tasks, so fig1's 17-grant witness doubles
		// to ~38 grants of controlled prefix: depth 44 is the shallowest
		// level that contains it (the depth-40 tree exhausts without a kill),
		// and the kill lands around 600k runs.
		{
			System: "composed-broken-adopt", N: 2, F: 1,
			Property: "agreement", Pattern: "wrong-adopt-order",
			CrashTimes: []sim.Time{0}, MaxDepth: 44, MaxRuns: 1_000_000,
			Budget: 4096, Symmetry: true,
		},
		// composed-garbled-echo: the emulated Υ settles on the complement of
		// the Ω leader, so the leader is a live citizen of the protocol's
		// rounds in every root run — its garbled D[r] echo is adopted and
		// decided, killing Validity through the whole pipeline. (The skip-on-
		// change mutation is deliberately absent from the composition: the
		// emulated output only changes pre-settle, before any decision, so
		// the armed skip cannot break Agreement — depth-48 sweeps past 6M
		// runs found no kill.)
		{
			System: "composed-garbled-echo", N: 2, F: 1,
			Property: "validity", Pattern: "unproposed-decision",
			CrashTimes: []sim.Time{0}, MaxDepth: 1, MaxRuns: 8, Budget: 4096,
		},
		// composed-garbled-decide: root-run validity kill through the whole
		// extraction∘protocol pipeline.
		{
			System: "composed-garbled-decide", N: 2, F: 1,
			Property: "validity", Pattern: "unproposed-decision",
			CrashTimes: []sim.Time{0}, MaxDepth: 1, MaxRuns: 4, Budget: 4096,
		},
	}
}

// zooEntry looks up a mutant by system name.
func zooEntry(system string) (Mutant, error) {
	for _, m := range MutantZoo() {
		if m.System == system {
			return m, nil
		}
	}
	return Mutant{}, fmt.Errorf("explore: no mutant zoo entry for system %q", system)
}
