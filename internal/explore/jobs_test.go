package explore

import (
	"reflect"
	"testing"

	"weakestfd/internal/sim"
)

// garbledSweep is a sweep with several distinct violating configurations:
// fig1-garbled-decide at n=2 fails validity under every (pattern × oracle)
// cell, so violation ordering and shard merging are exercised on a
// multi-violation result. MaxViolations is lifted far above the config
// count so the budget never couples configurations — the regime in which
// sharded exploration is exactly equal to single-process.
func garbledSweep() Config {
	return Config{
		System:        GarbledFig1System(2),
		CrashTimes:    []sim.Time{0},
		MaxDepth:      12,
		Budget:        1024,
		MaxViolations: 1 << 20,
		ShrinkBudget:  50,
	}
}

func TestEnumerateJobsDeterministic(t *testing.T) {
	cfg := Config{System: Fig1System(3)}
	a, b := EnumerateJobs(cfg), EnumerateJobs(cfg)
	if len(a) == 0 {
		t.Fatal("EnumerateJobs returned no jobs for fig1 n=3")
	}
	for i := range a {
		if a[i].Label() != b[i].Label() {
			t.Fatalf("job %d differs between enumerations: %s vs %s", i, a[i].Label(), b[i].Label())
		}
	}
	// The job list must match what Explore reports as its config count.
	small := Config{System: Fig1System(2), CrashTimes: []sim.Time{0}, MaxDepth: 12, Budget: 1024}
	res := Explore(small)
	if n := len(EnumerateJobs(small)); n != res.Configs {
		t.Errorf("EnumerateJobs produced %d jobs, Explore reported %d configs", n, res.Configs)
	}
}

// TestViolationOrderWorkerInvariant is the satellite regression test for the
// completion-order Violations bug: a multi-worker sweep must report the
// byte-identical violation sequence a serial sweep does.
func TestViolationOrderWorkerInvariant(t *testing.T) {
	cfg := garbledSweep()
	cfg.Workers = 1
	serial := Explore(cfg)
	cfg.Workers = 4
	pooled := Explore(cfg)

	if len(serial.Violations) < 2 {
		t.Fatalf("sweep found %d violations, want >= 2 for an ordering test", len(serial.Violations))
	}
	sk, pk := make([]string, 0), make([]string, 0)
	for _, v := range serial.Violations {
		sk = append(sk, violationKey(v))
	}
	for _, v := range pooled.Violations {
		pk = append(pk, violationKey(v))
	}
	if !reflect.DeepEqual(sk, pk) {
		t.Errorf("violation order differs across worker counts:\n workers=1: %v\n workers=4: %v", sk, pk)
	}
	if !sort_isSorted(sk) {
		t.Errorf("violations not sorted by (pattern, oracle, property): %v", sk)
	}
	if serial.Runs != pooled.Runs || serial.Joined != pooled.Joined {
		t.Errorf("counters differ across worker counts: runs %d vs %d, joined %d vs %d",
			serial.Runs, pooled.Runs, serial.Joined, pooled.Joined)
	}
}

func sort_isSorted(ks []string) bool {
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			return false
		}
	}
	return true
}

// TestExploreJobsShardedMerge is the shard-grain equality property the fleet
// relies on: exploring every job in its own ExploreJobs call and merging the
// per-shard Results must reproduce the single-process Explore Result exactly
// (counters, flags, violation keys and order).
func TestExploreJobsShardedMerge(t *testing.T) {
	cfg := garbledSweep()
	cfg.Workers = 1
	whole := Explore(cfg)

	jobs := EnumerateJobs(cfg)
	if len(jobs) != whole.Configs {
		t.Fatalf("enumerated %d jobs, Explore reported %d configs", len(jobs), whole.Configs)
	}
	shards := make([]*Result, 0, len(jobs))
	for _, jb := range jobs {
		shards = append(shards, ExploreJobs(cfg, []Job{jb}))
	}
	merged, err := MergeResults(shards)
	if err != nil {
		t.Fatalf("MergeResults: %v", err)
	}

	if merged.Configs != whole.Configs || merged.Runs != whole.Runs ||
		merged.Pruned != whole.Pruned || merged.Joined != whole.Joined ||
		merged.SettledRuns != whole.SettledRuns || merged.MaxSteps != whole.MaxSteps {
		t.Errorf("merged counters differ from single-process Explore:\n merged: configs=%d runs=%d pruned=%d joined=%d settled=%d maxsteps=%d\n whole:  configs=%d runs=%d pruned=%d joined=%d settled=%d maxsteps=%d",
			merged.Configs, merged.Runs, merged.Pruned, merged.Joined, merged.SettledRuns, merged.MaxSteps,
			whole.Configs, whole.Runs, whole.Pruned, whole.Joined, whole.SettledRuns, whole.MaxSteps)
	}
	if merged.Truncated != whole.Truncated || merged.StateCapped != whole.StateCapped ||
		merged.DepthLimited != whole.DepthLimited {
		t.Errorf("merged flags differ: merged {%v %v %v} vs whole {%v %v %v}",
			merged.Truncated, merged.StateCapped, merged.DepthLimited,
			whole.Truncated, whole.StateCapped, whole.DepthLimited)
	}
	mk, wk := violationKeys(merged), violationKeys(whole)
	if !reflect.DeepEqual(mk, wk) {
		t.Errorf("merged violation set differs:\n merged: %v\n whole:  %v", mk, wk)
	}
	for i := range merged.Violations {
		if violationKey(merged.Violations[i]) != violationKey(whole.Violations[i]) {
			t.Errorf("violation %d out of order after merge: %s vs %s",
				i, violationKey(merged.Violations[i]), violationKey(whole.Violations[i]))
		}
	}
}

func TestMergeResultsRejectsMixedSweeps(t *testing.T) {
	if _, err := MergeResults(nil); err == nil {
		t.Error("MergeResults(nil) succeeded, want error")
	}
	a := &Result{System: "fig1", Engine: "source+hash"}
	b := &Result{System: "fig2", Engine: "source+hash"}
	if _, err := MergeResults([]*Result{a, b}); err == nil {
		t.Error("MergeResults across systems succeeded, want error")
	}
	c := &Result{System: "fig1", Engine: "classic"}
	if _, err := MergeResults([]*Result{a, c}); err == nil {
		t.Error("MergeResults across engines succeeded, want error")
	}
}

func TestParseEngine(t *testing.T) {
	cases := map[string]Engine{
		"": EngineSource, "source": EngineSource,
		"classic": EngineDPOR, "dpor": EngineDPOR,
		"legacy": EngineEnum, "enum": EngineEnum,
	}
	for name, want := range cases {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Error("ParseEngine accepted an unknown engine name")
	}
}
