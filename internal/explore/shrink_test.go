package explore

import (
	"testing"

	"weakestfd/internal/sim"
)

// TestShrinkDropsIrrelevantCrash pins the configuration-minimizing half of
// the shrinker on a known fig1 mutant witness: take a violating schedule of
// the wrong-adopt mutant discovered under failure-free n=2, re-discover the
// same violation under a pattern whose crash never fires within the run's
// horizon, and shrink. The crash is not load-bearing, so the witness
// pattern must drop it — and the artifact must record the shrunk
// (failure-free) configuration and still replay.
func TestShrinkDropsIrrelevantCrash(t *testing.T) {
	cfg := Config{
		System:   BrokenFig1System(2),
		MaxDepth: 24,
		Budget:   2048,
	}.withDefaults()

	// Find a violating schedule under failure-free (deterministic). Crashing
	// p2 makes {p1} the correct set, so pick a violation whose oracle stays
	// legal once the spurious crash is added (its stable set must differ
	// from {p1}).
	base := Explore(Config{System: BrokenFig1System(2), MaxDepth: 24, Budget: 2048, Workers: 1})
	pattern := sim.CrashPattern(2, map[sim.PID]sim.Time{1: 100_000})
	var schedule []sim.PID
	var oracle OracleChoice
	found := false
	for _, v := range base.Violations {
		if v.Property != (AtMostK{}).Name() {
			continue // the re-execution below checks AtMostK specifically
		}
		o, legal := matchOracle(cfg.System, pattern, v.Artifact.oracleChoice())
		if !legal {
			continue
		}
		for _, s := range v.Artifact.Schedule {
			schedule = append(schedule, sim.PID(s))
		}
		oracle, found = o, true
		break
	}
	if !found {
		t.Fatal("no baseline violation with an oracle legal under the crash-augmented pattern")
	}

	// Re-execute the same schedule under the pattern whose p2 crash fires
	// far beyond the horizon: the run is step-identical, the violation
	// persists, but the pattern now carries a spurious crash.
	run := execute(cfg.System, pattern, oracle, sim.NewFixedSchedule(schedule), cfg.Budget, nil, nil)
	run.Schedule = schedule
	prop := AtMostK{}
	if err := prop.Check(run); err == nil {
		t.Fatal("violation did not reproduce under the crash-augmented pattern")
	}

	w := shrink(cfg, run, prop)
	if w.message == "" {
		t.Fatal("shrink could not reproduce its own input")
	}
	if !w.pattern.Faulty().IsEmpty() {
		t.Fatalf("shrinker kept the irrelevant crash: witness pattern %s", patternLabel(w.pattern))
	}
	if got, want := len(w.schedule), len(schedule); got > want {
		t.Fatalf("schedule grew during shrinking: %d > %d", got, want)
	}
	if w.oracle.Stable.Len() > oracle.Stable.Len() {
		t.Fatalf("oracle grew during shrinking: %v from %v", w.oracle.Stable, oracle.Stable)
	}

	// The witness must round-trip through an artifact replay.
	a := newArtifact(cfg, run, prop.Name(), w, mustPattern("unclassified"))
	if len(a.Crashes) != 0 {
		t.Fatalf("artifact kept crashes: %v", a.Crashes)
	}
	_, violation, err := a.Replay(nil)
	if err != nil {
		t.Fatal(err)
	}
	if violation == nil {
		t.Fatal("shrunk witness did not replay")
	}
}

// oracleChoice rebuilds the OracleChoice recorded in an artifact (test
// helper).
func (a *Artifact) oracleChoice() OracleChoice {
	var stable sim.Set
	for _, p := range a.OracleStable {
		stable = stable.Add(sim.PID(p))
	}
	return OracleChoice{Name: a.OracleName, Stable: stable, Seed: a.OracleSeed}
}

// TestShrinkHelpers covers the pattern/oracle helpers directly.
func TestShrinkHelpers(t *testing.T) {
	p := sim.CrashPattern(3, map[sim.PID]sim.Time{0: 0, 2: 3})
	q := dropCrash(p, 0)
	if q.Faulty() != sim.SetOf(2) || q.CrashAt(2) != 3 {
		t.Fatalf("dropCrash(p0) = %s", patternLabel(q))
	}
	sys := Fig1System(3)
	// The correct set of the failure-free pattern is an illegal stable set.
	if _, legal := matchOracle(sys, sim.FailFree(3), OracleChoice{Stable: sim.FullSet(3)}); legal {
		t.Fatal("matchOracle accepted the correct set as a Υ history")
	}
	if o, legal := matchOracle(sys, sim.FailFree(3), OracleChoice{Stable: sim.SetOf(1)}); !legal || o.Stable != sim.SetOf(1) {
		t.Fatalf("matchOracle rejected a legal set: %v %v", o, legal)
	}
}
