package explore

import (
	"testing"

	"weakestfd/internal/sim"
)

// TestPatternLibraryIntegrity pins the taxonomy's invariants: stable unique
// names, complete signature/narrative text, and "unclassified" as the final
// fallback entry.
func TestPatternLibraryIntegrity(t *testing.T) {
	pats := Patterns()
	if len(pats) == 0 {
		t.Fatal("empty pattern library")
	}
	seen := make(map[string]bool)
	for _, p := range pats {
		if p.Name == "" || p.Signature == "" || p.Narrative == "" {
			t.Errorf("pattern %+v has empty fields", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate pattern name %q", p.Name)
		}
		seen[p.Name] = true
		got, ok := PatternByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("PatternByName(%q) did not round-trip", p.Name)
		}
	}
	if pats[len(pats)-1].Name != "unclassified" {
		t.Errorf("last library entry is %q, want the unclassified fallback", pats[len(pats)-1].Name)
	}
	if _, ok := PatternByName("no-such-pattern"); ok {
		t.Error("PatternByName resolved an unknown name")
	}
}

// syntheticAccess is one step of a hand-built access trace.
type syntheticAccess struct {
	pid  sim.PID
	obj  string
	kind sim.AccessKind
}

func syntheticLog(steps []syntheticAccess) *sim.AccessLog {
	log := sim.NewAccessLog()
	for _, s := range steps {
		log.BeginStep()
		log.Record(log.Intern(s.obj), s.kind)
		log.EndStep(s.pid)
	}
	return log
}

// classifyRun builds the minimal Run the classifier inspects.
func classifyRun(pattern sim.Pattern, flips []FlipPhase, decided map[sim.PID]sim.Value, log *sim.AccessLog, stable sim.Set) *Run {
	return &Run{
		Pattern:      pattern,
		Oracle:       OracleChoice{Stable: sim.SetOf(0), Flips: flips},
		Report:       &sim.Report{Decided: decided, Accesses: log},
		StableOutput: stable,
	}
}

// TestClassifySignatures drives every classifier branch on synthetic witness
// runs, pinning the precedence order of the library.
func TestClassifySignatures(t *testing.T) {
	ff2 := sim.FailFree(2)
	crash := sim.CrashPattern(2, map[sim.PID]sim.Time{1: 5})
	flip := []FlipPhase{{Until: 10, Out: sim.SetOf(1)}}
	decided := map[sim.PID]sim.Value{0: 100}

	// A round gap in one process's round-indexed accesses (D[1] then D[3]).
	skipLog := func() *sim.AccessLog {
		return syntheticLog([]syntheticAccess{
			{0, "D[1]", sim.AccessRead},
			{1, "D[1]", sim.AccessRead},
			{1, "D[2]", sim.AccessRead},
			{0, "D[3]", sim.AccessRead},
		})
	}
	// The decider p1's last read of a converge register precedes p0's write.
	convRace := syntheticLog([]syntheticAccess{
		{1, "nconv[1][0]/param.A", sim.AccessRead},
		{0, "nconv[1][0]/param.A", sim.AccessWrite},
	})
	// Same race on a fig2 snapshot entry.
	snapRace := syntheticLog([]syntheticAccess{
		{1, "A[1][1]/2", sim.AccessRead},
		{0, "A[1][1]/2", sim.AccessWrite},
	})

	cases := []struct {
		name     string
		run      *Run
		property string
		want     string
	}{
		{"validity", classifyRun(ff2, nil, decided, nil, 0), "validity", "unproposed-decision"},
		{"termination with crash", classifyRun(crash, nil, nil, nil, 0), "termination-of-correct", "crash-stalled-wait"},
		{"termination failure-free", classifyRun(ff2, nil, nil, nil, 0), "termination-of-correct", "commit-starvation"},
		{"empty output", classifyRun(ff2, nil, nil, nil, sim.EmptySet), "upsilon-sanity", "empty-detector-output"},
		{"correct-set output with flip", classifyRun(ff2, flip, nil, nil, ff2.Correct()), "upsilon-sanity", "stale-leader-latch"},
		{"correct-set output stable-from-0", classifyRun(ff2, nil, nil, nil, ff2.Correct()), "upsilon-sanity", "correct-set-output"},
		{"range-breaking output", classifyRun(crash, nil, nil, nil, sim.SetOf(1)), "upsilon-sanity", "undersized-output"},
		{"round skip with flip", classifyRun(ff2, flip, decided, skipLog(), 0), "agreement", "adopt-skipped-after-flip"},
		{"round skip without flip", classifyRun(ff2, nil, decided, skipLog(), 0), "agreement", "adopt-skipped-on-change"},
		{"snapshot race", classifyRun(ff2, nil, map[sim.PID]sim.Value{1: 101}, snapRace, 0), "agreement", "stale-snapshot-decide"},
		{"converge race", classifyRun(ff2, nil, map[sim.PID]sim.Value{1: 101}, convRace, 0), "agreement", "wrong-adopt-order"},
		{"flip-gated", classifyRun(ff2, flip, decided, nil, 0), "agreement", "flip-gated-divergence"},
		{"fallback", classifyRun(ff2, nil, decided, nil, 0), "agreement", "unclassified"},
		{"unknown property", classifyRun(ff2, nil, decided, nil, 0), "no-such-property", "unclassified"},
	}
	for _, c := range cases {
		if got := Classify(c.run, c.property); got.Name != c.want {
			t.Errorf("%s: classified %q, want %q", c.name, got.Name, c.want)
		}
	}
}

// TestRoundIndexedObj pins which access-log object names carry a protocol
// round index.
func TestRoundIndexedObj(t *testing.T) {
	cases := []struct {
		name  string
		round int
		ok    bool
	}{
		{"D[1]", 1, true},
		{"D[12]", 12, true},
		{"Stable[3]", 3, true},
		{"A[2][1]/2", 2, true},
		{"nconv[4][1]/param.A", 4, true},
		{"gconv[7][2]/param.B", 7, true},
		{"fconv[5][0]/commit", 5, true},
		{"D", 0, false},          // the decision register has no round
		{"R", 0, false},          // extraction registers are not rounds
		{"H(U)", 0, false},       // detector histories are not rounds
		{"Changed[2]", 0, false}, // extraction state, excluded by prefix
		{"D[x]", 0, false},       // non-numeric index
		{"D[]", 0, false},        // empty index
	}
	for _, c := range cases {
		r, ok := roundIndexedObj(c.name)
		if ok != c.ok || (ok && r != c.round) {
			t.Errorf("roundIndexedObj(%q) = (%d,%v), want (%d,%v)", c.name, r, ok, c.round, c.ok)
		}
	}
}

// TestRoundSkipperContiguous asserts the skipper detector stays quiet on
// contiguous round traces and on processes with a single round.
func TestRoundSkipperContiguous(t *testing.T) {
	log := syntheticLog([]syntheticAccess{
		{0, "D[1]", sim.AccessRead},
		{0, "D[2]", sim.AccessRead},
		{0, "D[3]", sim.AccessRead},
		{1, "D[5]", sim.AccessRead},
	})
	run := classifyRun(sim.FailFree(2), nil, nil, log, 0)
	if p := roundSkipper(run); p != -1 {
		t.Fatalf("roundSkipper flagged %v on a contiguous trace", p)
	}
	if p := roundSkipper(classifyRun(sim.FailFree(2), nil, nil, nil, 0)); p != -1 {
		t.Fatalf("roundSkipper flagged %v with no access log", p)
	}
}

// TestDeciderMissedWriteDirection asserts the race detector requires the
// write to land strictly after the decider's last read, by a different
// process, and only counts deciding processes.
func TestDeciderMissedWriteDirection(t *testing.T) {
	obj := "nconv[1][0]/param.A"
	decided := map[sim.PID]sim.Value{1: 101}
	// Write before the last read: no race.
	before := syntheticLog([]syntheticAccess{
		{0, obj, sim.AccessWrite},
		{1, obj, sim.AccessRead},
	})
	if deciderMissedWrite(classifyRun(sim.FailFree(2), nil, decided, before, 0), isConvergeObj) {
		t.Error("write preceding the last read counted as a missed write")
	}
	// Same-process write after own read: no race.
	own := syntheticLog([]syntheticAccess{
		{1, obj, sim.AccessRead},
		{1, obj, sim.AccessWrite},
	})
	if deciderMissedWrite(classifyRun(sim.FailFree(2), nil, decided, own, 0), isConvergeObj) {
		t.Error("a process's own later write counted as a missed write")
	}
	// Racing reader never decided: no race.
	race := syntheticLog([]syntheticAccess{
		{1, obj, sim.AccessRead},
		{0, obj, sim.AccessWrite},
	})
	if deciderMissedWrite(classifyRun(sim.FailFree(2), nil, map[sim.PID]sim.Value{0: 100}, race, 0), isConvergeObj) {
		t.Error("a non-deciding reader counted as a missed-write victim")
	}
	if !deciderMissedWrite(classifyRun(sim.FailFree(2), nil, decided, race, 0), isConvergeObj) {
		t.Error("the genuine missed write went undetected")
	}
}
