package explore

import (
	"fmt"
	"testing"

	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// The toy systems below validate the DPOR engine against ground truth small
// enough to reason about by hand: two processes, two operations each.

// toyMachine reads a register, then writes source+1 to another register and
// decides the written value — the canonical lost-update shape when src and
// dst are the same shared counter for both processes.
type toyMachine struct {
	src, dst *memory.Register[int64]
	log      *sim.AccessLog
	local    int64
	pc       int
}

func (m *toyMachine) Init(ctx sim.MachineContext) { m.log = ctx.Log }

func (m *toyMachine) Step(sim.Time) sim.MachineStatus {
	switch m.pc {
	case 0:
		m.local = m.src.DirectRead(m.log)
		m.pc = 1
		return sim.MachineRunning
	default:
		m.dst.DirectWrite(m.log, m.local+1)
		return sim.MachineDecided
	}
}

func (m *toyMachine) Decision() sim.Value { return sim.Value(m.local + 1) }

// toySystem is a 2-process failure-free system over toy machines.
type toySystem struct {
	name     string
	disjoint bool
	props    []Property
}

func (s toySystem) Name() string   { return s.name }
func (s toySystem) N() int         { return 2 }
func (s toySystem) MaxFaults() int { return 0 }
func (s toySystem) Oracles(sim.Pattern, SwitchPlan) []OracleChoice {
	return []OracleChoice{{Name: "-"}}
}
func (s toySystem) Properties() []Property { return s.props }

func (s toySystem) LegalFlipOut(sim.Set) error { return nil }

func (s toySystem) Instantiate(sim.Pattern, OracleChoice) Instance {
	if s.disjoint {
		// Each process owns a private counter: every pair of steps of
		// different processes commutes.
		a := memory.NewRegister[int64]("a")
		b := memory.NewRegister[int64]("b")
		return Instance{Machines: []sim.StepMachine{
			&toyMachine{src: a, dst: a},
			&toyMachine{src: b, dst: b},
		}}
	}
	// Shared counter: read-read commutes, read-write and write-write do not.
	x := memory.NewRegister[int64]("x")
	return Instance{Machines: []sim.StepMachine{
		&toyMachine{src: x, dst: x},
		&toyMachine{src: x, dst: x},
	}}
}

// propSomeoneDecides2 fails on the lost-update interleavings (both read 0
// before either writes), where both processes decide 1.
type propSomeoneDecides2 struct{}

func (propSomeoneDecides2) Name() string { return "someone-decides-2" }
func (propSomeoneDecides2) Check(r *Run) error {
	for _, v := range r.Report.Decided {
		if v == 2 {
			return nil
		}
	}
	return fmt.Errorf("no process decided 2: %v", r.Report.Decided)
}

// propAlwaysHolds never fails; it exists so clean sweeps still execute the
// checking path.
type propAlwaysHolds struct{}

func (propAlwaysHolds) Name() string     { return "always-holds" }
func (propAlwaysHolds) Check(*Run) error { return nil }

// TestDPORDisjointSingleRun: when every step of one process commutes with
// every step of the other, the whole schedule space is one Mazurkiewicz
// trace and DPOR must execute exactly one run.
func TestDPORDisjointSingleRun(t *testing.T) {
	res := Explore(Config{
		System: toySystem{name: "toy-disjoint", disjoint: true, props: []Property{propAlwaysHolds{}}},
	})
	if res.Runs != 1 {
		t.Fatalf("disjoint toy explored %d runs, want exactly 1", res.Runs)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
}

// TestDPORFindsRaceReversal: the lost-update violation exists only in the
// interleavings where both reads precede both writes. DPOR must reach one
// via backtracking from the races it observes, within the 6 raw
// interleavings of the 2+2-step space (classic DPOR with sleep sets is
// sound but not optimal: on this 4-class space it may execute all 6).
func TestDPORFindsRaceReversal(t *testing.T) {
	res := Explore(Config{
		System: toySystem{name: "toy-shared", props: []Property{propSomeoneDecides2{}}},
	})
	if len(res.Violations) == 0 {
		t.Fatalf("DPOR missed the lost-update interleaving (%d runs)", res.Runs)
	}
	if res.Runs > 6 {
		t.Errorf("DPOR executed %d runs; the whole raw space is 6 interleavings", res.Runs)
	}
	t.Logf("lost update found in %d runs (%d pruned): %v", res.Runs, res.Pruned, res.Violations[0])
}

// TestDPORAgreesWithEnumOnToy: both engines judge the toy systems
// identically (violation present/absent).
func TestDPORAgreesWithEnumOnToy(t *testing.T) {
	for _, sys := range []toySystem{
		{name: "toy-shared", props: []Property{propSomeoneDecides2{}}},
		{name: "toy-disjoint", disjoint: true, props: []Property{propAlwaysHolds{}}},
	} {
		d := Explore(Config{System: sys})
		l := Explore(Config{System: sys, Engine: EngineEnum, MaxBlocks: 3, MaxBlock: 8})
		if (len(d.Violations) == 0) != (len(l.Violations) == 0) {
			t.Fatalf("%s: engines disagree: dpor %d violations, enum %d", sys.name, len(d.Violations), len(l.Violations))
		}
	}
}

// TestDPORTaskMachines: the explorer drives multi-task systems
// (Instance.Tasks → sim.RunTaskMachines) through the same DPOR lens; a
// composed n=2 sweep over one configuration must be deterministic and
// violation-free.
func TestDPORTaskMachines(t *testing.T) {
	run := func() *Result {
		return Explore(Config{System: ComposedSystem(2), MaxDepth: 16, Budget: 4096})
	}
	a := run()
	if len(a.Violations) != 0 {
		t.Fatalf("composed n=2: %v", a.Violations)
	}
	if a.Runs < 2 {
		t.Fatalf("composed n=2 explored only %d runs; task interleavings should race", a.Runs)
	}
	b := run()
	if a.Runs != b.Runs || a.Pruned != b.Pruned {
		t.Fatalf("task-machine DPOR not deterministic: (%d,%d) vs (%d,%d)", a.Runs, a.Pruned, b.Runs, b.Pruned)
	}
}
