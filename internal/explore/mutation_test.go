package explore

import (
	"path/filepath"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/sim"
)

// brokenSweep runs the calibration sweep against the wrong-adopt fig1
// mutant at the given size, with the given engine. The DPOR branch horizon
// of 24 comfortably contains the mutant's minimal witnesses (17 steps at
// n=2, 22 at n=3); the per-config run cap only bounds the violation-free
// configurations the DFS would otherwise exhaust.
func brokenSweep(n int, engine Engine) *Result {
	return Explore(Config{
		System:    BrokenFig1System(n),
		Engine:    engine,
		MaxDepth:  24,
		MaxRuns:   150_000,
		MaxBlocks: 3,
		MaxBlock:  24,
		Budget:    2048,
		Symmetry:  true,
	})
}

// TestMutationBrokenFig1Caught proves the explorer earns its keep: the fig1
// variant with a broken converge adopt rule (core.MutWrongAdopt) violates
// Agreement under an interleaving the explorer finds, shrinks, and emits as
// a replayable artifact — while TestMutationEscapesRandomTesting shows the
// same mutant sails through seeded-random testing of the kind every other
// suite in this repository performs.
func TestMutationBrokenFig1Caught(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep skipped under -short (race lane); the full lane runs it")
	}
	for _, n := range []int{2, 3} {
		res := brokenSweep(n, EngineDPOR)
		if len(res.Violations) == 0 {
			t.Fatalf("n=%d: explorer missed the wrong-adopt mutant (%d runs)", n, res.Runs)
		}
		v := res.Violations[0]
		if v.Property != "agreement" {
			t.Fatalf("n=%d: violated property %q, want agreement", n, v.Property)
		}
		if v.ShrunkSteps <= 0 || int64(v.ShrunkSteps) > v.Steps {
			t.Fatalf("n=%d: shrunk schedule length %d not in (0, %d]", n, v.ShrunkSteps, v.Steps)
		}
		if v.ShrunkSteps == int(v.Steps) {
			t.Errorf("n=%d: shrinker made no progress (%d steps)", n, v.ShrunkSteps)
		}
		t.Logf("n=%d: %v", n, v)
	}
}

// TestMutationArtifactRoundTrip writes the shrunk counterexample to disk,
// reads it back, and replays it: the violation must reproduce
// deterministically, twice.
func TestMutationArtifactRoundTrip(t *testing.T) {
	res := brokenSweep(2, EngineDPOR)
	if len(res.Violations) == 0 {
		t.Fatal("no violation to round-trip")
	}
	path := filepath.Join(t.TempDir(), "counterexample.json")
	if err := res.Violations[0].Artifact.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	a, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 2; i++ {
		run, violation, err := a.Replay(nil)
		if err != nil {
			t.Fatal(err)
		}
		if violation == nil {
			t.Fatalf("replay %d did not reproduce the violation (run: %d steps, decided %v)",
				i, run.Report.Steps, run.Report.Decided)
		}
		if i == 0 {
			first = violation.Error()
			if first != a.Violation {
				t.Errorf("replayed violation %q differs from recorded %q", first, a.Violation)
			}
		} else if violation.Error() != first {
			t.Errorf("replay not deterministic: %q vs %q", violation.Error(), first)
		}
	}
}

// TestMutationEscapesRandomTesting documents why the explorer exists: 500
// seeded-random schedules — more than any scenario family in internal/lab
// runs — never trip the wrong-adopt mutant, in the exact configuration the
// explorer needs only thousands of bounded schedules to break.
func TestMutationEscapesRandomTesting(t *testing.T) {
	const n = 2
	pattern := sim.FailFree(n)
	proposals := canonicalProposals(n)
	spec := core.Upsilon(n)
	for seed := int64(1); seed <= 500; seed++ {
		stable := spec.StableChoice(pattern, seed)
		h := spec.HistoryWithStable(pattern, 0, seed, stable)
		g := core.NewFig1(n, h, converge.UseAtomic)
		machines := make([]sim.StepMachine, n)
		for i := range machines {
			machines[i] = g.MutantMachine(proposals[i], core.MutWrongAdopt)
		}
		rep, err := sim.RunMachines(sim.Config{
			Pattern:  pattern,
			Schedule: sim.NewRandom(seed),
			Budget:   1 << 16,
		}, machines)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := check.SetAgreement(rep, pattern, g.K(), proposals); err != nil {
			t.Fatalf("seed %d: random testing caught the mutant (%v) — the mutation test's premise no longer holds; pick a subtler mutation", seed, err)
		}
	}
}
