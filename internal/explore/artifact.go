package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"weakestfd/internal/sim"
)

// Artifact is a replayable counterexample: everything needed to rebuild the
// configuration and re-execute the violating schedule deterministically.
// `fdlab replay` consumes these files; the explorer emits them.
type Artifact struct {
	Schema int `json:"schema"`
	// System is the registry name (see NewSystem) and N/F its size and
	// resilience.
	System string `json:"system"`
	N      int    `json:"n"`
	F      int    `json:"f"`
	// Proposals documents the canonical inputs of the run (informational;
	// systems regenerate them).
	Proposals []int64 `json:"proposals,omitempty"`
	// Crashes maps 0-based PIDs (as JSON object keys) to crash times.
	Crashes map[string]int64 `json:"crashes,omitempty"`
	// Oracle reconstructs the detector history: its stable set, seed, and
	// (schema 2) the unstable prefix — the pre-stabilization phases, each
	// output Out while t < Until.
	OracleName   string         `json:"oracle"`
	OracleStable []int          `json:"oracle_stable"`
	OracleSeed   int64          `json:"oracle_seed,omitempty"`
	OracleFlips  []ArtifactFlip `json:"oracle_flips,omitempty"`
	// Budget is the step cap of the run.
	Budget int64 `json:"budget"`
	// Schedule is the (shrunk) grant sequence; replay follows it through a
	// sim.FixedSchedule with a fair round-robin tail.
	Schedule []int `json:"schedule"`
	// Property and Violation record what failed and how.
	Property  string `json:"property"`
	Violation string `json:"violation"`
	// PatternName and Narrative (schema 3) record the named failure pattern
	// the classifier assigned to the shrunk witness and its human-readable
	// story; `fdlab replay` prints both, and the corpus regression tests
	// assert the classification reproduces.
	PatternName string `json:"pattern,omitempty"`
	Narrative   string `json:"narrative,omitempty"`
}

// ArtifactFlip is one recorded pre-stabilization phase: the history outputs
// the set Out (0-based PIDs) while t < Until.
type ArtifactFlip struct {
	Until int64 `json:"until"`
	Out   []int `json:"out"`
}

// newArtifact assembles the artifact for one shrunk violation. The recorded
// configuration is the *witness* configuration — the shrinker may have
// dropped crashes, shrunk the oracle, and dropped or delayed history flips
// relative to the discovery run. Every newly emitted artifact is schema 3
// (classification always present); ReadArtifact still accepts schema 1
// (stable-from-0, unclassified) and 2 (flips, unclassified) files from
// earlier explorer versions.
func newArtifact(cfg Config, run *Run, property string, w witness, fp FailurePattern) *Artifact {
	a := &Artifact{
		Schema:      3,
		System:      run.System,
		N:           cfg.System.N(),
		F:           cfg.System.MaxFaults(),
		OracleName:  w.oracle.Name,
		OracleSeed:  w.oracle.Seed,
		Budget:      cfg.Budget,
		Property:    property,
		Violation:   w.message,
		PatternName: fp.Name,
		Narrative:   fp.Narrative,
	}
	for _, v := range run.Proposals {
		a.Proposals = append(a.Proposals, int64(v))
	}
	for _, p := range w.pattern.Faulty().Members() {
		if a.Crashes == nil {
			a.Crashes = make(map[string]int64)
		}
		a.Crashes[strconv.Itoa(int(p))] = int64(w.pattern.CrashAt(p))
	}
	for _, p := range w.oracle.Stable.Members() {
		a.OracleStable = append(a.OracleStable, int(p))
	}
	for _, f := range w.oracle.Flips {
		af := ArtifactFlip{Until: int64(f.Until)}
		for _, p := range f.Out.Members() {
			af.Out = append(af.Out, int(p))
		}
		a.OracleFlips = append(a.OracleFlips, af)
	}
	a.Schedule = make([]int, len(w.schedule))
	for i, p := range w.schedule {
		a.Schedule[i] = int(p)
	}
	return a
}

// WriteFile writes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact loads an artifact file.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.Schema < 1 || a.Schema > 3 {
		return nil, fmt.Errorf("%s: unsupported artifact schema %d", path, a.Schema)
	}
	// The schema is the flip marker: a schema-1 file with flips would replay
	// as a stable-from-0 history on a pre-flip reader (which drops the
	// unknown field) and as an unstable one here — reject the divergence.
	// Schema 3 carries the flip fields natively, so flips are optional there.
	if a.Schema == 1 && len(a.OracleFlips) > 0 {
		return nil, fmt.Errorf("%s: schema 1 artifact carries oracle_flips; unstable witnesses are schema 2", path)
	}
	if a.Schema == 2 && len(a.OracleFlips) == 0 {
		return nil, fmt.Errorf("%s: schema 2 artifact has no oracle_flips; stable witnesses are schema 1", path)
	}
	// The schema is likewise the classification marker: pre-classifier
	// readers would silently drop the pattern fields, so their presence
	// pins the schema at 3 — and a schema-3 file must name a pattern the
	// library knows, or replay would print an unverifiable narrative.
	if a.Schema < 3 && (a.PatternName != "" || a.Narrative != "") {
		return nil, fmt.Errorf("%s: schema %d artifact carries a failure-pattern classification; classified artifacts are schema 3", path, a.Schema)
	}
	if a.Schema == 3 {
		if a.PatternName == "" {
			return nil, fmt.Errorf("%s: schema 3 artifact has no failure pattern; unclassified artifacts are schema 1 or 2", path)
		}
		if _, ok := PatternByName(a.PatternName); !ok {
			return nil, fmt.Errorf("%s: unknown failure pattern %q", path, a.PatternName)
		}
	}
	// Validate the flip schedule at load time: callers print flip lines
	// straight from a loaded artifact, assuming ascending Until and
	// in-range outputs.
	if _, err := a.flipPhases(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.N < 2 || a.N > sim.MaxProcs {
		return nil, fmt.Errorf("%s: n=%d out of range [2,%d]", path, a.N, sim.MaxProcs)
	}
	if a.F < 1 || a.F > a.N-1 {
		return nil, fmt.Errorf("%s: f=%d out of range [1,%d]", path, a.F, a.N-1)
	}
	if a.Budget <= 0 {
		return nil, fmt.Errorf("%s: non-positive budget %d", path, a.Budget)
	}
	return &a, nil
}

// pattern reconstructs the failure pattern.
func (a *Artifact) pattern() (sim.Pattern, error) {
	crashes := make(map[sim.PID]sim.Time, len(a.Crashes))
	//lint:fdlint determinism -- map-to-map reconstruction: the resulting pattern is independent of iteration order
	for key, t := range a.Crashes {
		pid, err := strconv.Atoi(key)
		if err != nil || pid < 0 || pid >= a.N {
			return sim.Pattern{}, fmt.Errorf("explore: bad crash pid %q for n=%d", key, a.N)
		}
		crashes[sim.PID(pid)] = sim.Time(t)
	}
	return sim.CrashPattern(a.N, crashes), nil
}

// flipPhases reconstructs and validates the artifact's unstable prefix —
// the single validation path shared by ReadArtifact and Replay.
func (a *Artifact) flipPhases() ([]FlipPhase, error) {
	var flips []FlipPhase
	for i, af := range a.OracleFlips {
		var out sim.Set
		for _, p := range af.Out {
			if p < 0 || p >= a.N {
				return nil, fmt.Errorf("explore: oracle_flips[%d] output pid %d out of range for n=%d", i, p, a.N)
			}
			out = out.Add(sim.PID(p))
		}
		flips = append(flips, FlipPhase{Until: sim.Time(af.Until), Out: out})
	}
	if err := validateFlips(flips, a.N); err != nil {
		return nil, err
	}
	return flips, nil
}

// Replay rebuilds the configuration and re-executes the recorded schedule
// through a sim.FixedSchedule on fresh state. It returns the completed run
// and the property-check error — non-nil exactly when the recorded
// violation reproduced. hook, when non-nil, observes every grant (for step
// traces). The replay records shared-object accesses: the returned run's
// Report.Accesses holds the per-step access sets, aligned with the grant
// indices the hook saw.
func (a *Artifact) Replay(hook func(idx int, t sim.Time, enabled sim.Set, chosen sim.PID)) (*Run, error, error) {
	sys, err := NewSystem(a.System, a.N, a.F)
	if err != nil {
		return nil, nil, err
	}
	pattern, err := a.pattern()
	if err != nil {
		return nil, nil, err
	}
	var stable sim.Set
	for _, p := range a.OracleStable {
		if p < 0 || p >= a.N {
			return nil, nil, fmt.Errorf("explore: oracle stable pid %d out of range for n=%d", p, a.N)
		}
		stable = stable.Add(sim.PID(p))
	}
	oracle := OracleChoice{Name: a.OracleName, Stable: stable, Seed: a.OracleSeed}
	flips, err := a.flipPhases()
	if err != nil {
		return nil, nil, err
	}
	// Range-check every pre-stabilization phase output against the system's
	// detector range: flipVariants only ever enumerates in-range outputs, so
	// this guards the hand-edited path — an artifact whose flip outputs a
	// Υ^f set below n+1−f (or a non-singleton for an Ω source) would indict
	// the environment, not the protocol, and must not replay.
	for i, f := range flips {
		if err := sys.LegalFlipOut(f.Out); err != nil {
			return nil, nil, fmt.Errorf("explore: oracle_flips[%d]: %w", i, err)
		}
	}
	oracle.Flips = flips
	// Reject an illegal stable set here with a proper error — Instantiate
	// treats legality as an internal invariant and panics on violations.
	if _, ok := matchOracle(sys, pattern, oracle); !ok {
		return nil, nil, fmt.Errorf("explore: oracle stable set %v is not legal for system %s under %s",
			stable, a.System, pattern)
	}

	prefix := make([]sim.PID, len(a.Schedule))
	for i, p := range a.Schedule {
		if p < 0 || p >= a.N {
			return nil, nil, fmt.Errorf("explore: schedule pid %d out of range for n=%d", p, a.N)
		}
		prefix[i] = sim.PID(p)
	}
	sched := sim.NewFixedSchedule(prefix)
	sched.OnGrant = hook

	run := execute(sys, pattern, oracle, sched, a.Budget, sim.NewAccessLog(), nil)
	run.Schedule = prefix
	var checked *error
	for _, prop := range sys.Properties() {
		if prop.Name() != a.Property {
			continue
		}
		err := prop.Check(run)
		checked = &err
	}
	if checked == nil {
		// A missing property is a stale or corrupt artifact, not a
		// non-reproduction: the recorded check was never run at all.
		return run, nil, fmt.Errorf("explore: system %s has no property %q (artifact from an older version?)",
			a.System, a.Property)
	}
	return run, *checked, nil
}
