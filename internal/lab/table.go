package lab

import (
	"fmt"
	"io"
	"strings"
)

// RenderFamily writes one family's summaries as an aligned text table: one
// row per scenario, one column per axis (in matrix order, recovered from
// the scenario names), then ok-counts and p50/p99 per metric.
func RenderFamily(w io.Writer, sums []ScenarioSummary) {
	if len(sums) == 0 {
		return
	}
	axes := axisOrder(sums[0].Name)
	metrics := MetricNames(sums)

	header := append([]string{}, axes...)
	header = append(header, "ok")
	for _, m := range metrics {
		header = append(header, m+" p50", m+" p99")
	}
	rows := [][]string{header}
	for _, s := range sums {
		row := make([]string, 0, len(header))
		for _, ax := range axes {
			row = append(row, s.Params[ax])
		}
		row = append(row, fmt.Sprintf("%d/%d", s.Runs-s.Failed, s.Runs))
		for _, m := range metrics {
			if sum, ok := s.Metrics[m]; ok {
				row = append(row, formatNum(sum.P50), formatNum(sum.P99))
			} else {
				row = append(row, "-", "-")
			}
		}
		rows = append(rows, row)
	}
	renderAligned(w, rows)
	for _, s := range sums {
		for _, e := range s.Errors {
			fmt.Fprintf(w, "  ! %s: %s\n", s.Name, e)
		}
	}
}

// axisOrder recovers the axis column order from a scenario name
// ("family/axis1=v1/axis2=v2/…").
func axisOrder(name string) []string {
	var axes []string
	for _, part := range strings.Split(name, "/")[1:] {
		if i := strings.IndexByte(part, '='); i > 0 {
			axes = append(axes, part[:i])
		}
	}
	return axes
}

// renderAligned prints rows with columns padded to their widest cell.
func renderAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(rows[0])
	dashes := make([]string, len(rows[0]))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, row := range rows[1:] {
		line(row)
	}
}

// formatNum renders a metric value compactly: integers without decimals,
// everything else with two.
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
