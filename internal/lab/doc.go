// Package lab is a deterministic parallel experiment engine: it expands
// declarative scenario matrices into seeded runs, fans the runs out over a
// worker pool, and aggregates per-scenario metrics into distribution
// summaries with stable JSON output.
//
// The package is deliberately generic — it knows nothing about failure
// detectors. A Matrix declares a scenario family as data: an ordered list of
// named Axes (in this repository: detector class × adversary schedule ×
// crash pattern × system size), a per-cell Build function producing a
// RunFunc, and a seed count. Expand takes the cartesian product of the axes
// and yields one Scenario per cell; Run executes every (scenario, seed)
// pair on a pool of workers.
//
// Determinism is the design center. Each run's seed is derived purely from
// the scenario's name and the seed index (DeriveSeed), never from worker
// identity, scheduling order, wall-clock time or a shared RNG, and each
// result is written into a pre-allocated slot keyed by (scenario, seed).
// Aggregate results are therefore bit-identical at Workers=1 and Workers=N;
// Report.Fingerprint hashes the deterministic portion so callers can assert
// it.
//
// The summaries (mean/p50/p99/min/max per metric, failure counts, deduped
// error strings) serialize to JSON for trajectory tracking across commits,
// and render as aligned text tables for the command-line tools. The scenario
// families that drive this engine for the paper's experiments live in the
// scenarios subpackage.
package lab
