package lab

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func synthMatrix(seeds int) Matrix {
	return Matrix{
		Family: "synth",
		Axes: []Axis{
			Vals("n", 2, 3),
			{Name: "mode", Values: []Value{{Name: "flat", V: 1.0}, {Name: "steep", V: 10.0}}},
		},
		Seeds: seeds,
		Build: func(pt Point) RunFunc {
			n := pt.Int("n")
			scale := pt.Get("mode").(float64)
			return func(seed int64) (Metrics, error) {
				// Deterministic in (cell, seed) alone.
				v := float64(n)*scale + float64(seed%97)
				return Metrics{"score": v, "n": float64(n)}, nil
			}
		},
	}
}

func TestExpand(t *testing.T) {
	scs := synthMatrix(3).Expand()
	if len(scs) != 4 {
		t.Fatalf("expanded %d scenarios, want 4", len(scs))
	}
	want := "synth/n=2/mode=flat"
	if scs[0].Name != want {
		t.Fatalf("first scenario %q, want %q", scs[0].Name, want)
	}
	if scs[0].Params["n"] != "2" || scs[0].Params["mode"] != "flat" {
		t.Fatalf("bad params %v", scs[0].Params)
	}
	if scs[0].Seeds != 3 {
		t.Fatalf("seeds %d, want 3", scs[0].Seeds)
	}
}

func TestExpandSkip(t *testing.T) {
	m := synthMatrix(1)
	m.Skip = func(pt Point) bool { return pt.Int("n") == 3 }
	scs := m.Expand()
	if len(scs) != 2 {
		t.Fatalf("expanded %d scenarios, want 2 after skip", len(scs))
	}
	for _, s := range scs {
		if s.Params["n"] != "2" {
			t.Fatalf("skip leaked scenario %q", s.Name)
		}
	}
}

func TestExpandAllRejectsDuplicates(t *testing.T) {
	m := synthMatrix(1)
	if _, err := ExpandAll([]Matrix{m, m}); err == nil {
		t.Fatal("duplicate scenario names not rejected")
	}
	scs, err := ExpandAll([]Matrix{m})
	if err != nil || len(scs) != 4 {
		t.Fatalf("ExpandAll: %v (%d scenarios)", err, len(scs))
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed("synth/n=2/mode=flat", 0)
	b := DeriveSeed("synth/n=2/mode=flat", 0)
	if a != b {
		t.Fatalf("DeriveSeed not stable: %d != %d", a, b)
	}
	if DeriveSeed("synth/n=2/mode=flat", 1) == a {
		t.Fatal("seed stream does not vary with index")
	}
	if DeriveSeed("synth/n=3/mode=flat", 0) == a {
		t.Fatal("seed stream does not vary with scenario name")
	}
}

// TestDeterministicAcrossWorkers is the engine's core contract: the
// deterministic portion of the report is bit-identical for any worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	scs := synthMatrix(5).Expand()
	var prints []string
	for _, workers := range []int{1, 2, 7} {
		rep := Run(scs, Options{Workers: workers})
		if rep.Workers != workers {
			t.Fatalf("report workers %d, want %d", rep.Workers, workers)
		}
		if rep.Runs != 4*5 || rep.Failed != 0 {
			t.Fatalf("workers=%d: runs=%d failed=%d", workers, rep.Runs, rep.Failed)
		}
		prints = append(prints, rep.Fingerprint())
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Fatalf("fingerprint differs across worker counts: %s vs %s", prints[0], prints[i])
		}
	}
}

func TestRunAggregatesFailures(t *testing.T) {
	m := Matrix{
		Family: "flaky",
		Axes:   []Axis{Vals("n", 1)},
		Seeds:  6,
		Build: func(Point) RunFunc {
			return func(seed int64) (Metrics, error) {
				if seed%2 == 0 {
					// Failed runs may still report diagnostics.
					return Metrics{"progress": 7}, errors.New("even seed rejected")
				}
				return Metrics{"v": 1}, nil
			}
		},
	}
	rep := Run(m.Expand(), Options{Workers: 3})
	s := rep.Scenarios[0]
	if s.Runs != 6 {
		t.Fatalf("runs %d, want 6", s.Runs)
	}
	if s.Failed != s.Runs-s.Metrics["v"].N {
		t.Fatalf("failed %d inconsistent with %d ok samples of %d runs", s.Failed, s.Metrics["v"].N, s.Runs)
	}
	if s.Failed > 0 && (len(s.Errors) == 0 || !strings.Contains(s.Errors[0], "even seed")) {
		t.Fatalf("errors not aggregated: %v", s.Errors)
	}
	// Metrics returned alongside an error are kept as diagnostics.
	if got := s.Metrics["progress"]; got.N != s.Failed || got.Max != 7 {
		t.Fatalf("failed-run metrics not aggregated: %+v", got)
	}
}

func TestSummaryStats(t *testing.T) {
	vs := []float64{5, 1, 4, 2, 3}
	s := newSummary(vs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("bad summary %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-9 {
		t.Fatalf("mean %v, want 3", s.Mean)
	}
	if s.P99 != 5 {
		t.Fatalf("p99 %v, want 5 (nearest rank)", s.P99)
	}
	// Percentiles over a large sample hit the expected ranks.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i + 1)
	}
	if got := percentile(big, 50); got != 50 {
		t.Fatalf("p50 of 1..100 = %v, want 50", got)
	}
	if got := percentile(big, 99); got != 99 {
		t.Fatalf("p99 of 1..100 = %v, want 99", got)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Run(synthMatrix(2).Expand(), Options{Workers: 2})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != rep.Fingerprint() {
		t.Fatal("fingerprint changed across JSON round trip")
	}
	if len(back.Scenarios) != len(rep.Scenarios) {
		t.Fatalf("scenario count %d, want %d", len(back.Scenarios), len(rep.Scenarios))
	}
}

func TestOnScenarioFiresOncePerScenario(t *testing.T) {
	scs := synthMatrix(3).Expand()
	seen := make(map[string]int)
	Run(scs, Options{Workers: 4, OnScenario: func(s ScenarioSummary) { seen[s.Name]++ }})
	if len(seen) != len(scs) {
		t.Fatalf("OnScenario fired for %d scenarios, want %d", len(seen), len(scs))
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("OnScenario fired %d times for %s", n, name)
		}
	}
}

func TestRenderFamily(t *testing.T) {
	rep := Run(synthMatrix(2).Expand(), Options{Workers: 1})
	var buf bytes.Buffer
	RenderFamily(&buf, rep.Family("synth"))
	out := buf.String()
	for _, want := range []string{"n", "mode", "ok", "score p50", "2/2", "steep"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "synth/") {
		t.Fatalf("table should use axis columns, not full names:\n%s", out)
	}
}

func TestDrive(t *testing.T) {
	scs := synthMatrix(2).Expand()
	var buf bytes.Buffer
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	if err := Drive(&buf, scs, DriveConfig{Workers: 2, JSONPath: jsonPath, Fingerprint: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## family synth", "4 scenarios, 8 runs (0 failed)", "fingerprint: ", "report written to "} {
		if !strings.Contains(out, want) {
			t.Fatalf("Drive output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report invalid: %v", err)
	}
	if rep.Runs != 8 {
		t.Fatalf("report runs %d, want 8", rep.Runs)
	}

	// A failing matrix surfaces as a Drive error.
	bad := Matrix{
		Family: "bad",
		Axes:   []Axis{Vals("n", 1)},
		Seeds:  2,
		Build: func(Point) RunFunc {
			return func(int64) (Metrics, error) { return nil, errors.New("boom") }
		},
	}
	if err := Drive(&bytes.Buffer{}, bad.Expand(), DriveConfig{}); err == nil {
		t.Fatal("Drive did not report failed runs")
	}
}

func TestFamilies(t *testing.T) {
	a := synthMatrix(1)
	b := synthMatrix(1)
	b.Family = "other"
	scs, err := ExpandAll([]Matrix{a, b})
	if err != nil {
		t.Fatal(err)
	}
	fams := Families(scs)
	if fmt.Sprint(fams) != "[synth other]" {
		t.Fatalf("families %v", fams)
	}
}
