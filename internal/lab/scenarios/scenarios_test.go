package scenarios

import (
	"strconv"
	"testing"

	"weakestfd/internal/lab"
)

func TestAllExpands(t *testing.T) {
	scs, err := lab.ExpandAll(All(2))
	if err != nil {
		t.Fatal(err)
	}
	fams := lab.Families(scs)
	want := []string{"fig1", "fig2", "extract", "compose", "timing", "waves", "late", "adversary"}
	if len(fams) != len(want) {
		t.Fatalf("families %v, want %v", fams, want)
	}
	for i, f := range want {
		if fams[i] != f {
			t.Fatalf("families %v, want %v", fams, want)
		}
	}
	counts := make(map[string]int)
	for _, s := range scs {
		counts[s.Family]++
	}
	// Spot-check the cell counts implied by the axes.
	if counts["fig1"] != 4*3*3*2 {
		t.Errorf("fig1 has %d cells, want %d", counts["fig1"], 4*3*3*2)
	}
	// fig2 skips f >= n: n=4 keeps f∈{1,2,3} (f=3 is the wait-free boundary),
	// n=6 keeps {1,2,3,5}, n=8 keeps {1,2,3,5,7}.
	if counts["fig2"] != (3+4+5)*2 {
		t.Errorf("fig2 has %d cells, want %d", counts["fig2"], (3+4+5)*2)
	}
	if counts["adversary"] != 3*2*2 {
		t.Errorf("adversary has %d cells, want %d", counts["adversary"], 3*2*2)
	}
}

func TestFamilyLookup(t *testing.T) {
	if _, ok := ByFamily("waves", 1); !ok {
		t.Fatal("waves family not found")
	}
	if _, ok := ByFamily("nope", 1); ok {
		t.Fatal("unknown family found")
	}
	if len(FamilyNames()) != 8 {
		t.Fatalf("family names %v", FamilyNames())
	}
}

// TestQuickDeterministicAcrossWorkers is the repo's acceptance check in
// miniature: running real simulations through the engine produces identical
// aggregate results at workers=1 and workers=4.
func TestQuickDeterministicAcrossWorkers(t *testing.T) {
	scs, err := lab.ExpandAll(Quick(2))
	if err != nil {
		t.Fatal(err)
	}
	serial := lab.Run(scs, lab.Options{Workers: 1})
	parallel := lab.Run(scs, lab.Options{Workers: 4})
	if serial.Fingerprint() != parallel.Fingerprint() {
		t.Fatalf("aggregate results differ across worker counts:\n  1: %s\n  4: %s",
			serial.Fingerprint(), parallel.Fingerprint())
	}
	if serial.Failed != 0 {
		for _, s := range serial.Scenarios {
			if s.Failed > 0 {
				t.Errorf("%s failed %d/%d: %v", s.Name, s.Failed, s.Runs, s.Errors)
			}
		}
	}
	// Every fig1 cell must respect the paper's bound: ≤ n−1 distinct values.
	for _, s := range serial.Family("fig1") {
		n, err := strconv.Atoi(s.Params["n"])
		if err != nil {
			t.Fatalf("bad n param %q", s.Params["n"])
		}
		if d := s.Metric("distinct").Max; d > float64(n-1) {
			t.Errorf("%s decided %v distinct values, bound %d", s.Name, d, n-1)
		}
	}
}

// TestAdversaryFamilyFalsifiesAll runs the deterministic adversary matrix
// and requires every candidate extractor to be falsified (Theorems 1/5).
func TestAdversaryFamilyFalsifiesAll(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary runs are slow")
	}
	rep := lab.Run(Adversary().Expand(), lab.Options{})
	for _, s := range rep.Scenarios {
		if s.Failed > 0 {
			t.Errorf("%s: %v", s.Name, s.Errors)
			continue
		}
		if s.Metric("falsified").Min != 1 {
			t.Errorf("%s not falsified", s.Name)
		}
	}
}

func TestWavePatterns(t *testing.T) {
	crash := Wave(2, 100)(6)
	if len(crash) != 5 {
		t.Fatalf("wave crashed %d processes, want 5", len(crash))
	}
	if _, ok := crash[0]; ok {
		t.Fatal("wave crashed p0")
	}
	if crash[1] != 100 || crash[2] != 100 || crash[3] != 200 || crash[5] != 300 {
		t.Fatalf("bad wave times %v", crash)
	}
}
