// Package scenarios declares the repository's experiment families as lab
// scenario matrices: each family is the cartesian product of named axes
// (detector class × adversary schedule × crash pattern × system size), with
// every cell running through the weakestfd facade and reporting metrics
// (simulated steps, distinct decisions, extraction stabilization lag,
// forced adversary switches) for the lab engine to aggregate.
//
// The seed families mirror the paper's experiment tables: fig1 (Theorem 2),
// fig2 (Theorem 6), extract (Theorem 10), compose (Figure 3 ∘ Figure 1) and
// timing (Section 1). Beyond the seed, waves sweeps staggered-crash
// cascades, late sweeps very-late-stabilizing detectors against both Υ and
// the stronger-detector baselines, and adversary sweeps the Theorem 1/5
// constructions from internal/core/adversary.go across candidates and
// resilience levels.
package scenarios

import (
	"fmt"
	"strings"

	"weakestfd"
	"weakestfd/internal/lab"
)

// defaultBudget caps each simulated run (in atomic steps).
const defaultBudget = 1 << 22

// proposals returns n distinct input values.
func proposals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(100 + i)
	}
	return out
}

// scheduleAxis is the adversary-schedule axis shared by the solve families.
func scheduleAxis() lab.Axis {
	return lab.Axis{Name: "schedule", Values: []lab.Value{
		{Name: "random", V: weakestfd.RandomSchedule},
		{Name: "lockstep", V: weakestfd.RoundRobinSchedule},
	}}
}

// solveMetrics folds a set-agreement result into lab metrics.
func solveMetrics(res *weakestfd.SetAgreementResult) lab.Metrics {
	return lab.Metrics{
		"steps":    float64(res.Steps),
		"distinct": float64(len(res.Distinct)),
		"decided":  float64(len(res.Decisions)),
	}
}

// Fig1 sweeps the paper's Figure 1 protocol (n-set agreement from Υ,
// Theorem 2) over system size × crash pattern × Υ stabilization time ×
// schedule.
func Fig1(seeds int) lab.Matrix {
	return lab.Matrix{
		Family: "fig1",
		Axes: []lab.Axis{
			lab.Vals("n", 3, 5, 7, 9),
			patternAxis(FailureFree(), OneCrash(), WaitFree()),
			lab.Vals("stabilize", int64(0), int64(200), int64(2000)),
			scheduleAxis(),
		},
		Seeds: seeds,
		Build: func(pt lab.Point) lab.RunFunc {
			n := pt.Int("n")
			crash := pt.Get("pattern").(PatternSpec).Build(n)
			ts := pt.Int64("stabilize")
			sched := pt.Get("schedule").(weakestfd.ScheduleKind)
			return func(seed int64) (lab.Metrics, error) {
				res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
					N: n, Proposals: proposals(n), CrashAt: crash,
					StabilizeAt: ts, Seed: seed, Schedule: sched,
					Budget: defaultBudget,
				})
				if err != nil {
					return nil, err
				}
				return solveMetrics(res), nil
			}
		},
	}
}

// Fig2 sweeps the Figure 2 protocol (f-set agreement from Υ^f in E_f,
// Theorem 6) over the resilience grid.
func Fig2(seeds int) lab.Matrix {
	return lab.Matrix{
		Family: "fig2",
		Axes: []lab.Axis{
			lab.Vals("n", 4, 6, 8),
			lab.Vals("f", 1, 2, 3, 5, 7),
			{Name: "crashes", Values: []lab.Value{
				{Name: "none", V: 0},
				{Name: "max", V: 1},
			}},
		},
		Seeds: seeds,
		Skip: func(pt lab.Point) bool {
			return pt.Int("f") >= pt.Int("n")
		},
		Build: func(pt lab.Point) lab.RunFunc {
			n, f := pt.Int("n"), pt.Int("f")
			crashAt := map[int]int64{}
			if pt.Int("crashes") == 1 {
				for i := 0; i < f; i++ {
					crashAt[i] = int64(13 * (i + 1))
				}
			}
			return func(seed int64) (lab.Metrics, error) {
				res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
					N: n, F: f, Algorithm: weakestfd.UpsilonFFig2,
					Proposals: proposals(n), CrashAt: crashAt,
					StabilizeAt: 150, Seed: seed, Budget: defaultBudget,
				})
				if err != nil {
					return nil, err
				}
				return solveMetrics(res), nil
			}
		},
	}
}

// detectorAxis names the stable source detectors of the Figure 3 reduction.
// The payload is the (detector, resilience) pair ExtractUpsilon expects
// (OmegaF needs an explicit f; the rest extract the wait-free Υ).
type detectorChoice struct {
	det weakestfd.Detector
	f   int
}

func detectorAxis(withOmegaF bool) lab.Axis {
	ax := lab.Axis{Name: "source", Values: []lab.Value{
		{Name: "omega", V: detectorChoice{weakestfd.Omega, 0}},
		{Name: "omegaN", V: detectorChoice{weakestfd.OmegaN, 0}},
		{Name: "stable-evP", V: detectorChoice{weakestfd.StableEvPerfect, 0}},
	}}
	if withOmegaF {
		ax.Values = append(ax.Values, lab.Value{Name: "omegaF-f2", V: detectorChoice{weakestfd.OmegaF, 2}})
	}
	return ax
}

// Extraction sweeps the Figure 3 reduction (Theorem 10): Υ^f extracted from
// each stable detector, measuring the extraction's stabilization lag.
func Extraction(seeds int) lab.Matrix {
	const n = 5
	return lab.Matrix{
		Family: "extract",
		Axes: []lab.Axis{
			detectorAxis(true),
			patternAxis(FailureFree(), OneCrash()),
		},
		Seeds: seeds,
		Build: func(pt lab.Point) lab.RunFunc {
			choice := pt.Get("source").(detectorChoice)
			crash := pt.Get("pattern").(PatternSpec).Build(n)
			return func(seed int64) (lab.Metrics, error) {
				res, err := weakestfd.ExtractUpsilon(weakestfd.ExtractConfig{
					N: n, F: choice.f, From: choice.det,
					StabilizeAt: 150, CrashAt: crash,
					Seed: seed, Budget: 80_000,
				})
				if err != nil {
					return nil, err
				}
				return lab.Metrics{
					"stable-from": float64(res.StableFrom),
					"lag":         float64(res.StableFrom - 150),
					"stable-size": float64(len(res.Stable)),
					"steps":       float64(res.Steps),
				}, nil
			}
		},
	}
}

// Compose sweeps the full composition (Figure 3 ∘ Figure 1): set agreement
// solved through the generic reduction from each stable detector.
func Compose(seeds int) lab.Matrix {
	const n = 5
	return lab.Matrix{
		Family: "compose",
		Axes: []lab.Axis{
			detectorAxis(false),
			patternAxis(FailureFree(), OneCrash()),
		},
		Seeds: seeds,
		Build: func(pt lab.Point) lab.RunFunc {
			choice := pt.Get("source").(detectorChoice)
			crash := pt.Get("pattern").(PatternSpec).Build(n)
			return func(seed int64) (lab.Metrics, error) {
				res, err := weakestfd.SolveWithStableDetector(weakestfd.ComposeConfig{
					N: n, From: choice.det, Proposals: proposals(n),
					CrashAt: crash, StabilizeAt: 120, Seed: seed,
					Budget: defaultBudget,
				})
				if err != nil {
					return nil, err
				}
				return solveMetrics(res), nil
			}
		},
	}
}

// Timing sweeps the oracle-free implementation (Section 1): Υ built from
// heartbeats under partial synchrony, across stabilization points and
// post-GST bounds.
func Timing(seeds int) lab.Matrix {
	const n = 5
	return lab.Matrix{
		Family: "timing",
		Axes: []lab.Axis{
			lab.Vals("gst", int64(500), int64(2000)),
			lab.Vals("bound", int64(4), int64(16)),
			patternAxis(FailureFree(), OneCrash()),
		},
		Seeds: seeds,
		Build: func(pt lab.Point) lab.RunFunc {
			gst := pt.Int64("gst")
			bound := pt.Int64("bound")
			crash := pt.Get("pattern").(PatternSpec).Build(n)
			return func(seed int64) (lab.Metrics, error) {
				res, err := weakestfd.SolveWithTimingAssumptions(weakestfd.TimedConfig{
					N: n, Proposals: proposals(n), CrashAt: crash,
					GST: gst, Bound: bound, Seed: seed, Budget: defaultBudget,
				})
				if err != nil {
					return nil, err
				}
				return solveMetrics(res), nil
			}
		},
	}
}

// Waves is a new family beyond the seed's: staggered-crash cascades. The
// processes other than p0 crash in waves of a given size, one wave per gap,
// so the failure pattern keeps shifting while Figure 1 runs — slow cascades
// with wide gaps force repeated re-convergence.
func Waves(seeds int) lab.Matrix {
	return lab.Matrix{
		Family: "waves",
		Axes: []lab.Axis{
			lab.Vals("n", 6, 10),
			lab.Vals("wave", 1, 2, 3),
			lab.Vals("gap", int64(10), int64(40)),
		},
		Seeds: seeds,
		Build: func(pt lab.Point) lab.RunFunc {
			n := pt.Int("n")
			crash := Wave(pt.Int("wave"), pt.Int64("gap"))(n)
			return func(seed int64) (lab.Metrics, error) {
				res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
					N: n, Proposals: proposals(n), CrashAt: crash,
					StabilizeAt: 300, Seed: seed, Budget: defaultBudget,
				})
				if err != nil {
					return nil, err
				}
				m := solveMetrics(res)
				m["crashed"] = float64(len(res.Crashed))
				return m, nil
			}
		},
	}
}

// Late is a new family beyond the seed's: very-late-stabilizing detectors.
// It sweeps the oracle's noise horizon up to 20000 steps for Υ (Figure 1)
// against the stronger-detector baselines on the same task, under both
// schedules. The facade's pre-stabilization noise is benign (seeded
// arbitrary output, not worst-case), so runs typically decide before the
// horizon — the family pins that down across algorithms; the conditional
// post-stabilize-steps metric flags the runs that did outlast it. The
// adversarial counterpart (worst-case legal noise) lives in the legacy E10b
// table.
func Late(seeds int) lab.Matrix {
	const n = 5
	algorithms := lab.Axis{Name: "algorithm", Values: []lab.Value{
		{Name: "fig1-upsilon", V: weakestfd.UpsilonFig1},
		{Name: "omegan-baseline", V: weakestfd.OmegaNBaseline},
		{Name: "omega-consensus", V: weakestfd.OmegaConsensus},
	}}
	return lab.Matrix{
		Family: "late",
		Axes: []lab.Axis{
			algorithms,
			lab.Vals("stabilize", int64(0), int64(1000), int64(5000), int64(20000)),
			scheduleAxis(),
		},
		Seeds: seeds,
		Build: func(pt lab.Point) lab.RunFunc {
			alg := pt.Get("algorithm").(weakestfd.Algorithm)
			ts := pt.Int64("stabilize")
			sched := pt.Get("schedule").(weakestfd.ScheduleKind)
			return func(seed int64) (lab.Metrics, error) {
				res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
					N: n, Algorithm: alg, Proposals: proposals(n),
					CrashAt: map[int]int64{2: 30}, StabilizeAt: ts,
					Seed: seed, Schedule: sched, Budget: 1 << 23,
				})
				if err != nil {
					return nil, err
				}
				m := solveMetrics(res)
				if lag := res.Steps - ts; lag > 0 {
					m["post-stabilize-steps"] = float64(lag)
				}
				return m, nil
			}
		},
	}
}

// Adversary is a new family beyond the seed's sweep loops: the Theorem 1/5
// constructions from internal/core/adversary.go as a scenario matrix —
// every candidate Ω^f-from-Υ^f extractor against the adversarial schedule,
// across system sizes and resilience levels. Metrics: forced output
// switches, run length, and whether the candidate was falsified (it always
// should be; a 0 in the falsified column is a reproduction failure).
func Adversary() lab.Matrix {
	return lab.Matrix{
		Family: "adversary",
		Axes: []lab.Axis{
			lab.Vals("candidate", "complement", "staleness", "hybrid"),
			lab.Vals("n", 4, 6),
			{Name: "resilience", Values: []lab.Value{
				{Name: "wait-free", V: -1},
				{Name: "f2", V: 2},
			}},
		},
		// The adversary is deterministic (it takes no seed): one run per cell.
		Seeds: 1,
		Build: func(pt lab.Point) lab.RunFunc {
			n := pt.Int("n")
			f := pt.Int("resilience")
			if f < 0 {
				f = n - 1
			}
			cand := pt.Get("candidate").(string)
			return func(int64) (lab.Metrics, error) {
				res, err := weakestfd.Falsify(weakestfd.FalsifyConfig{
					N: n, F: f, Candidate: cand,
					TargetSwitches: 20, Budget: defaultBudget,
				})
				if err != nil {
					return nil, err
				}
				m := lab.Metrics{
					"switches":  float64(res.Switches),
					"steps":     float64(res.Steps),
					"falsified": b2f(res.Falsified),
					"stuck":     b2f(res.Stuck),
				}
				if !res.Falsified {
					return m, fmt.Errorf("candidate %s at n=%d f=%d not falsified", cand, n, f)
				}
				return m, nil
			}
		},
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// All returns the full scenario matrix set: the seed families plus the
// three new ones. cmd/paperbench runs this by default.
func All(seeds int) []lab.Matrix {
	return []lab.Matrix{
		Fig1(seeds),
		Fig2(seeds),
		Extraction(seeds),
		Compose(seeds),
		Timing(seeds),
		Waves(seeds),
		Late(seeds),
		Adversary(),
	}
}

// Select resolves a command-line family filter: the full matrix set when
// family is empty, the single named family otherwise.
func Select(family string, seeds int) ([]lab.Matrix, error) {
	if family == "" {
		return All(seeds), nil
	}
	m, ok := ByFamily(family, seeds)
	if !ok {
		return nil, fmt.Errorf("unknown scenario family %q (have: %s)",
			family, strings.Join(FamilyNames(), ", "))
	}
	return []lab.Matrix{m}, nil
}

// ByFamily returns the named family's matrix (case-insensitively), or false.
func ByFamily(name string, seeds int) (lab.Matrix, bool) {
	for _, m := range All(seeds) {
		if strings.EqualFold(m.Family, name) {
			return m, true
		}
	}
	return lab.Matrix{}, false
}

// FamilyNames lists the declared families in matrix order.
func FamilyNames() []string {
	var out []string
	for _, m := range All(1) {
		out = append(out, m.Family)
	}
	return out
}

// Quick returns a trimmed matrix set that exercises every code path in a
// few seconds — used by tests and benchmarks.
func Quick(seeds int) []lab.Matrix {
	fig1 := Fig1(seeds)
	fig1.Axes = []lab.Axis{
		lab.Vals("n", 3, 4),
		patternAxis(FailureFree(), OneCrash()),
		lab.Vals("stabilize", int64(0), int64(150)),
		scheduleAxis(),
	}
	extract := Extraction(seeds)
	extract.Axes = []lab.Axis{
		detectorAxis(false),
		patternAxis(FailureFree()),
	}
	return []lab.Matrix{fig1, extract}
}
