package scenarios

import (
	"weakestfd/internal/lab"
)

// PatternSpec names a crash-pattern generator for a system of n processes —
// the "crash pattern" axis of every matrix is a list of these, so new
// failure shapes are added as data, not as new sweep loops.
type PatternSpec struct {
	Name string
	// Build returns crash times by 0-based process index (nil = failure
	// free). Process 0 is always kept correct.
	Build func(n int) map[int]int64
}

// FailureFree is the pattern in which no process crashes.
func FailureFree() PatternSpec {
	return PatternSpec{"failure-free", func(int) map[int]int64 { return nil }}
}

// OneCrash crashes the middle process early (step 11).
func OneCrash() PatternSpec {
	return PatternSpec{"one-crash", func(n int) map[int]int64 {
		return map[int]int64{n / 2: 11}
	}}
}

// WaitFree crashes every process but p0, at staggered early times — the
// maximal crash count the wait-free protocols tolerate.
func WaitFree() PatternSpec {
	return PatternSpec{"wait-free", func(n int) map[int]int64 {
		m := make(map[int]int64, n-1)
		for i := 1; i < n; i++ {
			m[i] = int64(9 * i)
		}
		return m
	}}
}

// LateCrash crashes one process long after typical decision times,
// exercising the case where the failure pattern changes under an
// already-stable detector.
func LateCrash() PatternSpec {
	return PatternSpec{"late-crash", func(n int) map[int]int64 {
		return map[int]int64{n - 1: 5_000}
	}}
}

// Wave crashes processes 1..n-1 in waves of the given size, one wave every
// gap steps starting at step gap. Small sizes with large gaps model slow
// cascading failures; large sizes with small gaps approach WaitFree.
func Wave(size int, gap int64) func(n int) map[int]int64 {
	return func(n int) map[int]int64 {
		if size < 1 {
			size = 1
		}
		m := make(map[int]int64, n-1)
		for i := 1; i < n; i++ {
			wave := int64((i-1)/size + 1)
			m[i] = wave * gap
		}
		return m
	}
}

// patternAxis builds the "pattern" axis from named specs.
func patternAxis(specs ...PatternSpec) lab.Axis {
	ax := lab.Axis{Name: "pattern"}
	for _, s := range specs {
		ax.Values = append(ax.Values, lab.Value{Name: s.Name, V: s})
	}
	return ax
}
