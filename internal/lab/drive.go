package lab

import (
	"fmt"
	"io"
	"os"
)

// DriveConfig configures Drive, the shared command-line front end of the
// engine (cmd/paperbench and cmd/fdlab both route through it).
type DriveConfig struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// JSONPath, when non-empty, receives the aggregate report as JSON.
	JSONPath string
	// Fingerprint prints the deterministic result hash after the tables.
	Fingerprint bool
}

// Drive runs the scenarios and renders the standard CLI output: one aligned
// table per family, a totals line, and optionally the fingerprint and a
// JSON report file. It returns an error if any run failed or the report
// could not be written.
func Drive(w io.Writer, scs []Scenario, cfg DriveConfig) error {
	rep := Run(scs, Options{Workers: cfg.Workers})
	for _, fam := range Families(scs) {
		fmt.Fprintf(w, "## family %s\n\n", fam)
		RenderFamily(w, rep.Family(fam))
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%d scenarios, %d runs (%d failed), %d workers, %dms\n",
		len(rep.Scenarios), rep.Runs, rep.Failed, rep.Workers, rep.ElapsedMS)
	if cfg.Fingerprint {
		fmt.Fprintf(w, "fingerprint: %s\n", rep.Fingerprint())
	}
	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		if err != nil {
			return err
		}
		err = rep.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.JSONPath)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d runs failed", rep.Failed, rep.Runs)
	}
	return nil
}
