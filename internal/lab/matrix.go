package lab

import (
	"fmt"
	"sort"
	"strings"
)

// Metrics is one run's named measurements (e.g. "steps", "distinct").
type Metrics map[string]float64

// RunFunc executes one seeded run of a scenario. It must be safe to call
// concurrently with other RunFuncs (and with itself under different seeds):
// every call builds its own simulation state. A non-nil error marks the run
// failed; its message is aggregated into the scenario summary. Metrics
// returned alongside an error are still aggregated — return them when the
// run produced diagnostics worth keeping (e.g. how far it got before the
// claim it checks went wrong).
type RunFunc func(seed int64) (Metrics, error)

// Value is one named setting of an Axis. V carries the typed payload the
// matrix Build function consumes; Name is what reports show.
type Value struct {
	Name string
	V    any
}

// Axis is one named dimension of a scenario matrix.
type Axis struct {
	Name   string
	Values []Value
}

// Vals is shorthand for an axis whose values are their own names.
func Vals[T any](name string, vs ...T) Axis {
	ax := Axis{Name: name}
	for _, v := range vs {
		ax.Values = append(ax.Values, Value{Name: fmt.Sprint(v), V: v})
	}
	return ax
}

// Point is one cell of the cartesian product: axis name → chosen value.
type Point map[string]Value

// Get returns the payload chosen for the axis, panicking on a name that is
// not an axis of the matrix (always a programming error in a family).
func (pt Point) Get(axis string) any {
	v, ok := pt[axis]
	if !ok {
		panic(fmt.Sprintf("lab: point has no axis %q", axis))
	}
	return v.V
}

// Int returns the axis payload as an int.
func (pt Point) Int(axis string) int { return pt.Get(axis).(int) }

// Int64 returns the axis payload as an int64.
func (pt Point) Int64(axis string) int64 { return pt.Get(axis).(int64) }

// Name returns the display name chosen for the axis.
func (pt Point) Name(axis string) string {
	v, ok := pt[axis]
	if !ok {
		panic(fmt.Sprintf("lab: point has no axis %q", axis))
	}
	return v.Name
}

// Matrix declares a scenario family as data: the cartesian product of Axes,
// with Build turning each cell into a runnable closure.
type Matrix struct {
	// Family names the scenario family (e.g. "fig1", "waves").
	Family string
	// Axes are the matrix dimensions, in report order.
	Axes []Axis
	// Seeds is the number of seeded runs per cell (min 1).
	Seeds int
	// Skip, when non-nil, prunes cells whose axis combination is illegal
	// (e.g. more crashes than the resilience admits).
	Skip func(Point) bool
	// Build returns the run closure for one cell.
	Build func(Point) RunFunc
}

// Expand takes the cartesian product of the matrix axes and returns one
// Scenario per non-skipped cell, in axis order. Scenario names are
// "family/axis1=v1/axis2=v2/…" and are unique within the matrix.
func (m Matrix) Expand() []Scenario {
	if m.Build == nil {
		panic(fmt.Sprintf("lab: matrix %q has no Build", m.Family))
	}
	seeds := m.Seeds
	if seeds < 1 {
		seeds = 1
	}
	var out []Scenario
	pt := make(Point, len(m.Axes))
	var rec func(i int)
	rec = func(i int) {
		if i == len(m.Axes) {
			if m.Skip != nil && m.Skip(pt) {
				return
			}
			cell := make(Point, len(pt))
			params := make(map[string]string, len(pt))
			parts := make([]string, 0, len(m.Axes)+1)
			parts = append(parts, m.Family)
			for _, ax := range m.Axes {
				cell[ax.Name] = pt[ax.Name]
				params[ax.Name] = pt[ax.Name].Name
				parts = append(parts, ax.Name+"="+pt[ax.Name].Name)
			}
			out = append(out, Scenario{
				Family: m.Family,
				Name:   strings.Join(parts, "/"),
				Params: params,
				Seeds:  seeds,
				Run:    m.Build(cell),
			})
			return
		}
		for _, v := range m.Axes[i].Values {
			pt[m.Axes[i].Name] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// Scenario is one fully-expanded cell of a Matrix: a named, parameterized
// run configuration plus the seeded closure that executes it.
type Scenario struct {
	Family string
	Name   string
	Params map[string]string
	Seeds  int
	Run    RunFunc
}

// ExpandAll expands every matrix and verifies scenario names are globally
// unique (summaries are keyed by name).
func ExpandAll(ms []Matrix) ([]Scenario, error) {
	var out []Scenario
	seen := make(map[string]bool)
	for _, m := range ms {
		for _, s := range m.Expand() {
			if seen[s.Name] {
				return nil, fmt.Errorf("lab: duplicate scenario name %q", s.Name)
			}
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	return out, nil
}

// Families returns the distinct family names of the scenarios, in first-seen
// order.
func Families(scs []Scenario) []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range scs {
		if !seen[s.Family] {
			seen[s.Family] = true
			out = append(out, s.Family)
		}
	}
	return out
}

// MetricNames returns the sorted union of metric names in the summaries.
func MetricNames(sums []ScenarioSummary) []string {
	seen := make(map[string]bool)
	for _, s := range sums {
		for name := range s.Metrics {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
