package lab

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures one engine invocation.
type Options struct {
	// Workers is the worker pool size; <= 0 means GOMAXPROCS.
	Workers int
	// OnScenario, when non-nil, is called once per completed scenario (all
	// seeds done), in completion order, from a single collector goroutine.
	// Useful for live progress output on long matrices.
	OnScenario func(ScenarioSummary)
}

// DeriveSeed returns the seed for run index idx of the named scenario. Seeds
// depend only on (name, idx) — never on worker identity or execution order —
// which is what makes aggregate results independent of parallelism. The
// derivation is FNV-1a over the name followed by a SplitMix64 finalization
// of the index, giving well-spread, stable streams per scenario.
func DeriveSeed(name string, idx int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(splitmix64(h.Sum64() + uint64(idx)*0x9E3779B97F4A7C15))
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// runOutcome is one (scenario, seed) result, parked in its pre-assigned slot.
type runOutcome struct {
	metrics Metrics
	err     error
}

// Run executes every (scenario, seed) pair on a worker pool and aggregates
// the outcomes into a Report. Each result lands in a slot keyed by
// (scenario, seed), so the deterministic portion of the report (the
// scenario summaries, in scenario order) is identical for any worker count.
func Run(scenarios []Scenario, opts Options) *Report {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct{ scenario, seed int }
	var pending []job
	slots := make([][]runOutcome, len(scenarios))
	remaining := make([]atomic.Int64, len(scenarios))
	for i, s := range scenarios {
		seeds := s.Seeds
		if seeds < 1 {
			seeds = 1
		}
		slots[i] = make([]runOutcome, seeds)
		remaining[i].Store(int64(seeds))
		for j := 0; j < seeds; j++ {
			pending = append(pending, job{i, j})
		}
	}

	start := time.Now()
	jobs := make(chan job)
	done := make(chan int, len(scenarios))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				s := scenarios[jb.scenario]
				m, err := s.Run(DeriveSeed(s.Name, jb.seed))
				slots[jb.scenario][jb.seed] = runOutcome{metrics: m, err: err}
				if remaining[jb.scenario].Add(-1) == 0 {
					done <- jb.scenario
				}
			}
		}()
	}

	// Collect per-scenario summaries as each scenario's last seed finishes.
	sums := make([]ScenarioSummary, len(scenarios))
	var collect sync.WaitGroup
	collect.Add(1)
	go func() {
		defer collect.Done()
		for idx := range done {
			sums[idx] = summarize(scenarios[idx], slots[idx])
			if opts.OnScenario != nil {
				opts.OnScenario(sums[idx])
			}
		}
	}()

	for _, jb := range pending {
		jobs <- jb
	}
	close(jobs)
	wg.Wait()
	close(done)
	collect.Wait()

	rep := &Report{Workers: workers}
	for _, sum := range sums {
		rep.Runs += sum.Runs
		rep.Failed += sum.Failed
		rep.Scenarios = append(rep.Scenarios, sum)
	}
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep
}
