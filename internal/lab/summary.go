package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Summary is the distribution of one metric over a scenario's seeded runs.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// ScenarioSummary aggregates one scenario's runs.
type ScenarioSummary struct {
	Family string            `json:"family"`
	Name   string            `json:"name"`
	Params map[string]string `json:"params"`
	Runs   int               `json:"runs"`
	Failed int               `json:"failed"`
	// Errors holds the distinct failure messages, capped at 3.
	Errors []string `json:"errors,omitempty"`
	// Metrics maps each metric name to its distribution over the runs that
	// reported it — including failed runs that returned diagnostics
	// alongside their error (see RunFunc).
	Metrics map[string]Summary `json:"metrics,omitempty"`
}

// Metric returns the named metric summary (zero value when absent).
func (s ScenarioSummary) Metric(name string) Summary { return s.Metrics[name] }

// Report is the output of one engine invocation. Scenarios is deterministic
// in the scenario list alone; Workers and ElapsedMS describe the particular
// execution and are excluded from Fingerprint.
type Report struct {
	Workers   int               `json:"workers"`
	ElapsedMS int64             `json:"elapsed_ms"`
	Runs      int               `json:"runs"`
	Failed    int               `json:"failed"`
	Scenarios []ScenarioSummary `json:"scenarios"`
}

// Fingerprint hashes the deterministic portion of the report. Two engine
// invocations over the same scenario list produce equal fingerprints
// regardless of worker count.
func (r *Report) Fingerprint() string {
	data, err := json.Marshal(r.Scenarios)
	if err != nil {
		panic(fmt.Sprintf("lab: marshal summaries: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// WriteJSON writes the report as indented JSON, for BENCH_*.json trajectory
// files.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Family returns the summaries belonging to one family, in scenario order.
func (r *Report) Family(name string) []ScenarioSummary {
	var out []ScenarioSummary
	for _, s := range r.Scenarios {
		if s.Family == name {
			out = append(out, s)
		}
	}
	return out
}

// summarize folds one scenario's run outcomes into a summary.
func summarize(s Scenario, outs []runOutcome) ScenarioSummary {
	sum := ScenarioSummary{
		Family: s.Family,
		Name:   s.Name,
		Params: s.Params,
		Runs:   len(outs),
	}
	samples := make(map[string][]float64)
	seenErr := make(map[string]bool)
	for _, o := range outs {
		if o.err != nil {
			sum.Failed++
			msg := o.err.Error()
			if !seenErr[msg] && len(sum.Errors) < 3 {
				seenErr[msg] = true
				sum.Errors = append(sum.Errors, msg)
			}
			// A failed run that still reported metrics (e.g. "the adversary
			// ran but did not falsify") keeps its diagnostics.
		}
		for name, v := range o.metrics {
			samples[name] = append(samples[name], v)
		}
	}
	if len(samples) > 0 {
		sum.Metrics = make(map[string]Summary, len(samples))
		for name, vs := range samples {
			sum.Metrics[name] = newSummary(vs)
		}
	}
	return sum
}

// newSummary computes the distribution of a sample set. The zero-sample
// summary is all zeros: summarize never produces one today (metrics maps
// only hold reported samples), but the guard keeps a future caller from
// panicking on sorted[0] or dividing by zero into NaN means.
func newSummary(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	return Summary{
		N:    len(sorted),
		Mean: total / float64(len(sorted)),
		P50:  percentile(sorted, 50),
		P99:  percentile(sorted, 99),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
	}
}

// percentile returns the nearest-rank p-th percentile of a sorted sample:
// sorted[⌈p/100·n⌉−1], with the rank clamped into [1, n] so that tiny
// samples (P99 of one or two runs) and out-of-range p values index the
// extremes instead of past the slice. The empty sample returns 0.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
