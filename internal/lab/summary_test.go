package lab

import (
	"math"
	"testing"
)

// TestPercentile pins the nearest-rank definition at the sample sizes that
// have bitten percentile implementations before: empty, one, two and a
// round hundred.
func TestPercentile(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1)
		}
		return out
	}
	tests := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"n=0 p50", nil, 50, 0},
		{"n=0 p99", []float64{}, 99, 0},
		{"n=1 p50", seq(1), 50, 1},
		{"n=1 p99", seq(1), 99, 1},
		{"n=1 p0", seq(1), 0, 1},
		{"n=2 p50", seq(2), 50, 1},
		{"n=2 p99", seq(2), 99, 2},
		{"n=2 p100", seq(2), 100, 2},
		{"n=100 p50", seq(100), 50, 50},
		{"n=100 p99", seq(100), 99, 99},
		{"n=100 p100", seq(100), 100, 100},
		// Out-of-range p values clamp to the extremes rather than indexing
		// past the slice.
		{"n=2 p150", seq(2), 150, 2},
		{"n=2 p-10", seq(2), -10, 1},
	}
	for _, tc := range tests {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestNewSummarySmallSamples(t *testing.T) {
	// Empty: all-zero summary, no panic, no NaN.
	s := newSummary(nil)
	if s.N != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	if math.IsNaN(s.Mean) {
		t.Fatal("empty summary has NaN mean")
	}
	// One sample: every statistic is that sample.
	s = newSummary([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.P50 != 7 || s.P99 != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
	// Two samples, unsorted input: P99 is the max, P50 the lower half.
	s = newSummary([]float64{9, 3})
	if s.N != 2 || s.Mean != 6 || s.P50 != 3 || s.P99 != 9 || s.Min != 3 || s.Max != 9 {
		t.Fatalf("two-sample summary wrong: %+v", s)
	}
}
