package fd

import (
	"fmt"

	"weakestfd/internal/sim"
)

// NewOmega returns an Ω history for pattern F: after ts the same correct
// leader is permanently output at every process; before ts the output is
// seeded noise. Ω is the weakest failure detector to solve consensus
// (Chandra–Hadzilacos–Toueg, the paper's [3]); its range is a single PID.
func NewOmega(f sim.Pattern, ts sim.Time, seed int64) sim.Oracle {
	leader := pickCorrect(f, seed)
	return &Stabilizing[sim.PID]{
		TS:     ts,
		Stable: leader,
		Noise: func(p sim.PID, t sim.Time) sim.PID {
			return NoisePID(seed, f.N(), p, t)
		},
	}
}

// NewOmegaF returns an Ω^f history for pattern F (Neiger's Ωk family, the
// paper's [18]): it outputs a set of exactly f processes such that
// eventually the same set, containing at least one correct process, is
// permanently output at all correct processes. Ω^n is the paper's Ωn and
// Ω^1 is (equivalent to) Ω.
func NewOmegaF(f sim.Pattern, size int, ts sim.Time, seed int64) sim.Oracle {
	n := f.N()
	if size < 1 || size > n {
		panic(fmt.Sprintf("fd: Omega^f size %d out of range for n=%d", size, n))
	}
	stable := omegaFStableSet(f, size, seed)
	return &Stabilizing[sim.Set]{
		TS:     ts,
		Stable: stable,
		Noise: func(p sim.PID, t sim.Time) sim.Set {
			return NoiseSetOfSize(seed, n, size, p, t)
		},
	}
}

// omegaFStableSet picks a legal stable value for Ω^f: a set of exactly size
// processes that contains at least one correct process. The choice is
// seed-dependent so experiments cover different legal histories.
func omegaFStableSet(f sim.Pattern, size int, seed int64) sim.Set {
	n := f.N()
	leader := pickCorrect(f, seed)
	s := sim.SetOf(leader)
	// Fill the remaining slots deterministically from the seed, preferring
	// faulty processes first (the adversarially least helpful choice).
	perm := noisePerm(seed+1, n, 0, 0)
	for _, class := range []bool{true, false} { // faulty first, then correct
		for _, i := range perm {
			if s.Len() == size {
				return s
			}
			p := sim.PID(i)
			if s.Has(p) {
				continue
			}
			if f.Correct().Has(p) != class {
				s = s.Add(p)
			}
		}
	}
	if s.Len() != size {
		panic("fd: could not build Omega^f stable set")
	}
	return s
}

// NewStableEvPerfect returns a stable eventually-perfect history: after ts
// every process permanently outputs exactly faulty(F). It is a stable,
// highly informative detector — the strongest detector used in the Figure 3
// extraction experiments. Its range is a process set (the suspected set).
func NewStableEvPerfect(f sim.Pattern, ts sim.Time, seed int64) sim.Oracle {
	return &Stabilizing[sim.Set]{
		TS:     ts,
		Stable: f.Faulty(),
		Noise: func(p sim.PID, t sim.Time) sim.Set {
			return NoiseSet(seed, f.N(), p, t) // arbitrary suspicion noise
		},
	}
}

// NewAntiOmega returns an anti-Ω history (Zielinski, the paper's [22,23]):
// the output is a single process id, and there is a correct process that is
// eventually never output. anti-Ω is unstable — its output may change
// forever — which is why it falls outside the paper's minimality class; it
// is included for the related-work comparisons.
func NewAntiOmega(f sim.Pattern, ts sim.Time, seed int64) sim.Oracle {
	n := f.N()
	safe := pickCorrect(f, seed) // the correct process never output after ts
	return FuncOracle(func(p sim.PID, t sim.Time) any {
		if t < ts {
			return NoisePID(seed, n, p, t)
		}
		q := NoisePID(seed+1, n, p, t)
		if q == safe {
			q = sim.PID((int(q) + 1) % n)
		}
		return q
	})
}

// pickCorrect deterministically picks a correct process of F from the seed.
func pickCorrect(f sim.Pattern, seed int64) sim.PID {
	members := f.Correct().Members()
	if len(members) == 0 {
		panic("fd: pattern has no correct process")
	}
	return members[Mix(seed, 0, 0)%uint64(len(members))]
}
