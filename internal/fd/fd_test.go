package fd

import (
	"fmt"
	"testing"
	"testing/quick"

	"weakestfd/internal/sim"
)

func TestMixDeterministic(t *testing.T) {
	a := Mix(1, 2, 3)
	b := Mix(1, 2, 3)
	if a != b {
		t.Fatal("Mix not deterministic")
	}
	if Mix(1, 2, 3) == Mix(1, 2, 4) && Mix(1, 2, 4) == Mix(1, 2, 5) {
		t.Error("Mix suspiciously constant")
	}
}

func TestNoisePIDInRange(t *testing.T) {
	prop := func(seed int64, p uint8, ts uint16) bool {
		n := 5
		pid := NoisePID(seed, n, sim.PID(p%8), sim.Time(ts))
		return pid >= 0 && pid < sim.PID(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNoiseSetNonEmptySubset(t *testing.T) {
	prop := func(seed int64, p uint8, ts uint16) bool {
		n := 6
		s := NoiseSet(seed, n, sim.PID(p%8), sim.Time(ts))
		return !s.IsEmpty() && s.SubsetOf(sim.FullSet(n))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNoiseSetOfSize(t *testing.T) {
	prop := func(seed int64, p uint8, ts uint16, kRaw uint8) bool {
		n := 7
		k := int(kRaw)%n + 1
		s := NoiseSetOfSize(seed, n, k, sim.PID(p%8), sim.Time(ts))
		return s.Len() == k && s.SubsetOf(sim.FullSet(n))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNoiseSetOfSizeBounds(t *testing.T) {
	if got := NoiseSetOfSize(1, 4, 4, 0, 0); got != sim.FullSet(4) {
		t.Errorf("k=n should give the full set, got %v", got)
	}
	if got := NoiseSetOfSize(1, 4, 0, 0, 0); !got.IsEmpty() {
		t.Errorf("k=0 should give empty, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	NoiseSetOfSize(1, 4, 5, 0, 0)
}

func TestStabilizingOracle(t *testing.T) {
	o := &Stabilizing[int]{
		TS:     10,
		Stable: 99,
		Noise:  func(p sim.PID, t sim.Time) int { return int(t) },
	}
	if got := o.Value(0, 5); got != 5 {
		t.Errorf("pre-stabilization = %v", got)
	}
	if got := o.Value(0, 10); got != 99 {
		t.Errorf("at TS = %v", got)
	}
	if got := o.Value(3, 1000); got != 99 {
		t.Errorf("post-stabilization = %v", got)
	}
}

func TestConstantOracle(t *testing.T) {
	o := Constant("d")
	if o.Value(0, 0) != "d" || o.Value(5, 1<<40) != "d" {
		t.Error("Constant not constant")
	}
}

func TestOmegaSpecCompliance(t *testing.T) {
	tests := []struct {
		name    string
		pattern sim.Pattern
	}{
		{"failfree", sim.FailFree(4)},
		{"one-crash", sim.CrashPattern(4, map[sim.PID]sim.Time{2: 50})},
		{"waitfree", sim.CrashPattern(4, map[sim.PID]sim.Time{0: 1, 1: 2, 2: 3})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				h := NewOmega(tt.pattern, 100, seed)
				stable, from, err := CheckStable(h, tt.pattern, 500, OmegaLegal(tt.pattern))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if from > 100 {
					t.Errorf("seed %d: stabilized at %d, want ≤ 100", seed, from)
				}
				if !tt.pattern.Correct().Has(stable.(sim.PID)) {
					t.Errorf("seed %d: leader %v faulty", seed, stable)
				}
			}
		})
	}
}

func TestOmegaFSpecCompliance(t *testing.T) {
	pattern := sim.CrashPattern(5, map[sim.PID]sim.Time{1: 30})
	for size := 1; size <= 5; size++ {
		for seed := int64(0); seed < 8; seed++ {
			h := NewOmegaF(pattern, size, 64, seed)
			if _, _, err := CheckStable(h, pattern, 300, OmegaFLegal(pattern, size)); err != nil {
				t.Fatalf("size %d seed %d: %v", size, seed, err)
			}
		}
	}
}

func TestOmegaFStableSetPrefersFaulty(t *testing.T) {
	// With 2 faulty processes and size 3, the stable set should include the
	// leader plus the faulty processes (the least helpful legal choice).
	pattern := sim.CrashPattern(5, map[sim.PID]sim.Time{0: 1, 4: 1})
	s := omegaFStableSet(pattern, 3, 12)
	if !pattern.Faulty().SubsetOf(s) {
		t.Errorf("stable set %v should include all faulty %v", s, pattern.Faulty())
	}
	if s.Intersect(pattern.Correct()).IsEmpty() {
		t.Errorf("stable set %v must contain a correct process", s)
	}
}

func TestOmegaFSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewOmegaF(sim.FailFree(3), 0, 0, 0)
}

func TestStableEvPerfect(t *testing.T) {
	pattern := sim.CrashPattern(4, map[sim.PID]sim.Time{1: 10, 3: 20})
	h := NewStableEvPerfect(pattern, 50, 9)
	stable, _, err := CheckStable(h, pattern, 200, func(v any) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stable.(sim.Set) != pattern.Faulty() {
		t.Errorf("stable = %v, want faulty %v", stable, pattern.Faulty())
	}
}

func TestAntiOmegaSpec(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pattern := sim.CrashPattern(4, map[sim.PID]sim.Time{0: 5})
		h := NewAntiOmega(pattern, 40, seed)
		if err := CheckAntiOmega(h, pattern, 40, 400); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAntiOmegaIsUnstable(t *testing.T) {
	pattern := sim.FailFree(4)
	h := NewAntiOmega(pattern, 0, 3)
	// The output should keep changing: CheckStable should fail (no common
	// suffix value at all correct processes).
	if _, _, err := CheckStable(h, pattern, 300, nil); err == nil {
		t.Error("anti-Ω checked as stable; it must not be")
	}
}

func TestCheckStableRejectsIllegal(t *testing.T) {
	pattern := sim.CrashPattern(3, map[sim.PID]sim.Time{2: 1})
	// A constant "leader = p3" history is stable but p3 is faulty.
	h := Constant(sim.PID(2))
	_, _, err := CheckStable(h, pattern, 100, OmegaLegal(pattern))
	if err == nil {
		t.Fatal("expected legality error")
	}
}

func TestCheckStableDetectsDivergence(t *testing.T) {
	pattern := sim.FailFree(2)
	h := FuncOracle(func(p sim.PID, t sim.Time) any { return p })
	if _, _, err := CheckStable(h, pattern, 100, nil); err == nil {
		t.Fatal("divergent history checked as stable")
	}
}

func TestQueryTypeMismatchPanics(t *testing.T) {
	o := Constant(42)
	body := func(p *sim.Proc) (sim.Value, bool) {
		Query[string](p, o) // wrong type: oracle yields int
		return 0, true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = sim.Run(sim.Config{Pattern: sim.FailFree(1), Schedule: sim.RoundRobin()},
		[]sim.Body{body})
}

func TestQueryTyped(t *testing.T) {
	o := Constant(sim.SetOf(1, 2))
	var got sim.Set
	body := func(p *sim.Proc) (sim.Value, bool) {
		got = Query[sim.Set](p, o)
		return 0, true
	}
	if _, err := sim.Run(sim.Config{Pattern: sim.FailFree(1), Schedule: sim.RoundRobin()},
		[]sim.Body{body}); err != nil {
		t.Fatal(err)
	}
	if got != sim.SetOf(1, 2) {
		t.Errorf("Query = %v", got)
	}
}

func TestOmegaNoiseDiverges(t *testing.T) {
	// Pre-stabilization, different processes should (usually) see different
	// leaders — the oracle may output anything.
	pattern := sim.FailFree(8)
	h := NewOmega(pattern, 1000, 5)
	diverged := false
	for ts := sim.Time(0); ts < 50 && !diverged; ts++ {
		if h.Value(0, ts) != h.Value(1, ts) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("noise period never diverged across processes")
	}
}

func TestTaggedOmegaFSpec(t *testing.T) {
	// The opaque-string-range Ω^f variant stabilizes on a tag whose decoded
	// set satisfies the Ω^f legality predicate.
	pattern := sim.CrashPattern(5, map[sim.PID]sim.Time{1: 40})
	for seed := int64(0); seed < 6; seed++ {
		h := NewTaggedOmegaF(pattern, 4, 80, seed)
		stable, _, err := CheckStable(h, pattern, 400, func(v any) error {
			tag, ok := v.(string)
			if !ok {
				return fmt.Errorf("range is %T, want string", v)
			}
			s, err := UntagSet(tag)
			if err != nil {
				return err
			}
			return OmegaFLegal(pattern, 4)(any(s))
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := UntagSet(stable.(string)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTagSetEncoding(t *testing.T) {
	if got := TagSet(sim.SetOf(0, 2)); got != "excl:p1+p3" {
		t.Errorf("TagSet = %q", got)
	}
	if got := TagSet(sim.EmptySet); got != "excl:" {
		t.Errorf("TagSet(∅) = %q", got)
	}
	s, err := UntagSet("excl:p1+p3")
	if err != nil || s != sim.SetOf(0, 2) {
		t.Errorf("UntagSet = %v/%v", s, err)
	}
	if _, err := UntagSet("excl:p0"); err == nil {
		t.Error("p0 (1-based names start at p1) should be rejected")
	}
}
