package fd

import (
	"fmt"
	"strconv"
	"strings"

	"weakestfd/internal/sim"
)

// The paper puts no restriction on failure detector ranges ("we do not
// restrict possible ranges of failure detectors", Section 3.2), and the
// Figure 3 reduction must work for any of them. NewTaggedOmegaF realizes an
// Ω^f-equivalent detector whose range is *opaque strings* of the form
// "excl:p3+p5": eventually all correct processes permanently see the same
// tag, whose encoded set of f processes contains at least one correct
// process. Extraction tests use it to check that nothing in the pipeline
// secretly assumes PID- or Set-valued oracles.

// TagSet encodes a process set as an opaque detector tag.
func TagSet(s sim.Set) string {
	parts := make([]string, 0, s.Len())
	for _, p := range s.Members() {
		parts = append(parts, fmt.Sprintf("p%d", int(p)+1))
	}
	return "excl:" + strings.Join(parts, "+")
}

// UntagSet decodes a tag produced by TagSet.
func UntagSet(tag string) (sim.Set, error) {
	body, ok := strings.CutPrefix(tag, "excl:")
	if !ok {
		return 0, fmt.Errorf("fd: tag %q lacks excl: prefix", tag)
	}
	var s sim.Set
	if body == "" {
		return s, nil
	}
	for _, part := range strings.Split(body, "+") {
		num, ok := strings.CutPrefix(part, "p")
		if !ok {
			return 0, fmt.Errorf("fd: bad tag element %q", part)
		}
		v, err := strconv.Atoi(num)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("fd: bad tag element %q", part)
		}
		s = s.Add(sim.PID(v - 1))
	}
	return s, nil
}

// NewTaggedOmegaF returns an Ω^f history with a string range: before ts,
// arbitrary (well-formed) tags; from ts on, the fixed tag of a legal Ω^f
// set.
func NewTaggedOmegaF(f sim.Pattern, size int, ts sim.Time, seed int64) sim.Oracle {
	n := f.N()
	stable := TagSet(omegaFStableSet(f, size, seed))
	return &Stabilizing[string]{
		TS:     ts,
		Stable: stable,
		Noise: func(p sim.PID, t sim.Time) string {
			return TagSet(NoiseSetOfSize(seed, n, size, p, t))
		},
	}
}
