package fd

import (
	"fmt"

	"weakestfd/internal/sim"
)

// Query queries oracle h as process p (one atomic step) and asserts the
// output type, panicking on a range mismatch — querying a detector at the
// wrong type is an algorithm bug.
func Query[T any](p *sim.Proc, h sim.Oracle) T {
	v := p.Query(h)
	out, ok := v.(T)
	if !ok {
		panic(fmt.Sprintf("fd: oracle output %T, algorithm expected %T", v, out))
	}
	return out
}

// QueryAt evaluates oracle h at (p, t) without a Proc and asserts the output
// type — the machine-runner counterpart of Query. The caller (a
// sim.StepMachine driven by sim.RunMachines) is charged the step by the
// runner itself. The query routes through the run's query seam q (from
// sim.MachineContext.Queries; nil evaluates the oracle directly) so that on
// recorded runs it is a first-class read of the history's virtual object.
func QueryAt[T any](q *sim.QuerySeam, h sim.Oracle, p sim.PID, t sim.Time) T {
	v := q.Query(h, p, t)
	out, ok := v.(T)
	if !ok {
		panic(fmt.Sprintf("fd: oracle output %T, algorithm expected %T", v, out))
	}
	return out
}

// Stabilizing is an oracle that outputs Noise(p, t) strictly before time TS
// and Stable from TS on, at every process. It realizes the ubiquitous
// "eventually the same value is permanently output at all correct processes"
// shape: before TS anything goes; after TS the history is stable in the
// paper's Section 6.2 sense.
type Stabilizing[T any] struct {
	// TS is the stabilization time; 0 makes the history stable from the
	// start.
	TS sim.Time
	// Stable is the permanent output from TS on.
	Stable T
	// Noise produces the pre-stabilization output; nil means Stable is
	// output from the start regardless of TS.
	Noise func(p sim.PID, t sim.Time) T
}

// Value implements sim.Oracle.
func (s *Stabilizing[T]) Value(p sim.PID, t sim.Time) any {
	if t < s.TS && s.Noise != nil {
		return s.Noise(p, t)
	}
	return s.Stable
}

var _ sim.Oracle = (*Stabilizing[int])(nil)

// Constant returns an oracle that outputs v at every process forever — the
// paper's "dummy" failure detector I_d, implementable in any asynchronous
// system and hence providing no failure information.
func Constant[T any](v T) sim.Oracle {
	return &Stabilizing[T]{Stable: v}
}

// FuncOracle adapts a function to sim.Oracle.
type FuncOracle func(p sim.PID, t sim.Time) any

// Value implements sim.Oracle.
func (f FuncOracle) Value(p sim.PID, t sim.Time) any { return f(p, t) }

var _ sim.Oracle = FuncOracle(nil)

// Mix is a deterministic pseudo-random mixer (splitmix64): the noise source
// for pre-stabilization detector output. It is a pure function, so histories
// built on it are pure functions of (seed, p, t) and runs stay reproducible.
func Mix(seed int64, p sim.PID, t sim.Time) uint64 {
	x := uint64(seed) ^ uint64(p)*0x9e3779b97f4a7c15 ^ uint64(t)*0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NoisePID returns a pseudo-random process id in [0, n).
func NoisePID(seed int64, n int, p sim.PID, t sim.Time) sim.PID {
	return sim.PID(Mix(seed, p, t) % uint64(n))
}

// NoiseSet returns a pseudo-random non-empty subset of {0..n-1}.
func NoiseSet(seed int64, n int, p sim.PID, t sim.Time) sim.Set {
	m := Mix(seed, p, t)
	s := sim.Set(m) & sim.FullSet(n)
	if s.IsEmpty() {
		return sim.SetOf(sim.PID(m % uint64(n)))
	}
	return s
}

// NoiseSetOfSize returns a pseudo-random subset of {0..n-1} with exactly k
// members.
func NoiseSetOfSize(seed int64, n, k int, p sim.PID, t sim.Time) sim.Set {
	if k < 0 || k > n {
		panic(fmt.Sprintf("fd: NoiseSetOfSize k=%d n=%d", k, n))
	}
	perm := noisePerm(seed, n, p, t)
	var s sim.Set
	for i := 0; i < k; i++ {
		s = s.Add(sim.PID(perm[i]))
	}
	return s
}

func noisePerm(seed int64, n int, p sim.PID, t sim.Time) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	m := Mix(seed, p, t)
	for i := n - 1; i > 0; i-- {
		j := int(m % uint64(i+1))
		m = Mix(int64(m), p, t)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
