package fd

import (
	"reflect"
	"testing"

	"weakestfd/internal/sim"
)

// Table tests for the Stabilizing noise path (the pre-TS branch): the output
// is Noise(p, t) strictly before TS, Stable from TS on, and a nil Noise
// makes the history stable from the start regardless of TS.
func TestStabilizingNoiseTable(t *testing.T) {
	noise := func(p sim.PID, tm sim.Time) int { return 1000*int(p) + int(tm) }
	cases := []struct {
		name  string
		ts    sim.Time
		noise func(sim.PID, sim.Time) int
		p     sim.PID
		t     sim.Time
		want  int
	}{
		{"before TS uses noise", 10, noise, 2, 3, 2003},
		{"noise depends on process", 10, noise, 3, 3, 3003},
		{"noise depends on time", 10, noise, 2, 9, 2009},
		{"at TS exactly stable", 10, noise, 2, 10, 77},
		{"after TS stable", 10, noise, 2, 11, 77},
		{"TS zero never noisy", 0, noise, 2, 0, 77},
		{"nil noise stable despite TS", 10, nil, 2, 3, 77},
		{"nil noise stable after TS", 10, nil, 2, 30, 77},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := &Stabilizing[int]{TS: tc.ts, Stable: 77, Noise: tc.noise}
			if got := o.Value(tc.p, tc.t); got != tc.want {
				t.Fatalf("Value(%v, %d) = %v, want %v", tc.p, tc.t, got, tc.want)
			}
		})
	}
}

// Table tests for the flip-aware Unstable history: phase lookup, the
// boundary convention (a query at a flip time sees the post-flip value),
// and FlipTimes.
func TestUnstableValueTable(t *testing.T) {
	u := NewUnstable(99,
		Phase[int]{Until: 3, Out: 10},
		Phase[int]{Until: 8, Out: 20},
	)
	cases := []struct {
		t    sim.Time
		want int
	}{
		{0, 10}, {1, 10}, {2, 10},
		{3, 20}, // at the flip: post-flip value
		{5, 20}, {7, 20},
		{8, 99}, // stabilization
		{100, 99},
	}
	for _, tc := range cases {
		for p := sim.PID(0); p < 3; p++ { // uniform across processes
			if got := u.Value(p, tc.t); got != 10 && got != 20 && got != 99 {
				t.Fatalf("Value(%v,%d) = %v, outside the phase outputs", p, tc.t, got)
			}
			if got := u.Value(p, tc.t); got != tc.want {
				t.Fatalf("Value(%v,%d) = %v, want %v", p, tc.t, got, tc.want)
			}
		}
	}
	if got, want := u.FlipTimes(), []sim.Time{3, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("FlipTimes = %v, want %v", got, want)
	}
}

func TestUnstableNoPhasesIsConstant(t *testing.T) {
	u := NewUnstable(5)
	if u.Value(0, 0) != 5 || u.Value(3, 1<<40) != 5 {
		t.Fatal("phase-free Unstable not constant")
	}
	if ft := u.FlipTimes(); ft != nil {
		t.Fatalf("phase-free Unstable reports flips %v", ft)
	}
}

func TestUnstableRejectsUnorderedPhases(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUnstable accepted non-increasing phase boundaries")
		}
	}()
	NewUnstable(0, Phase[int]{Until: 5, Out: 1}, Phase[int]{Until: 5, Out: 2})
}
