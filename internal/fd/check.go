package fd

import (
	"fmt"
	"reflect"

	"weakestfd/internal/sim"
)

// CheckStable verifies over [0, horizon] that oracle h eventually outputs,
// permanently and identically at every correct process of f, a single value,
// and that this stable value satisfies legal. It returns the stable value
// and the earliest time from which the output was stable.
//
// This is the executable form of the paper's stability definition (Section
// 6.2): ∃d, t such that ∀t' ≥ t and correct p, H(p, t') = d. A finite
// horizon cannot verify "permanently"; callers pick horizons comfortably
// beyond the history's stabilization time, which is exact for the histories
// this package constructs.
func CheckStable(h sim.Oracle, f sim.Pattern, horizon sim.Time, legal func(stable any) error) (any, sim.Time, error) {
	correct := f.Correct().Members()
	if len(correct) == 0 {
		return nil, 0, fmt.Errorf("fd: pattern %v has no correct process", f)
	}
	// The candidate stable value is the last value at the first correct
	// process; scan backwards to find the stabilization point.
	ref := h.Value(correct[0], horizon)
	stableFrom := horizon
	for t := horizon; t >= 0; t-- {
		ok := true
		for _, p := range correct {
			if !reflect.DeepEqual(h.Value(p, t), ref) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		stableFrom = t
	}
	if stableFrom == horizon {
		// Stability must hold on a non-trivial suffix to be meaningful.
		for _, p := range correct {
			if !reflect.DeepEqual(h.Value(p, horizon), ref) {
				return nil, 0, fmt.Errorf("fd: no common value at horizon %d", horizon)
			}
		}
	}
	if legal != nil {
		if err := legal(ref); err != nil {
			return ref, stableFrom, fmt.Errorf("fd: stable value %v illegal: %w", ref, err)
		}
	}
	return ref, stableFrom, nil
}

// OmegaLegal returns a legality predicate for Ω over pattern f: the stable
// value must be a correct process.
func OmegaLegal(f sim.Pattern) func(any) error {
	return func(v any) error {
		p, ok := v.(sim.PID)
		if !ok {
			return fmt.Errorf("Ω output has type %T, want sim.PID", v)
		}
		if !f.Correct().Has(p) {
			return fmt.Errorf("Ω stable leader %v is faulty (correct=%v)", p, f.Correct())
		}
		return nil
	}
}

// OmegaFLegal returns a legality predicate for Ω^f over pattern f: the
// stable value must be a set of exactly size processes containing at least
// one correct process.
func OmegaFLegal(f sim.Pattern, size int) func(any) error {
	return func(v any) error {
		s, ok := v.(sim.Set)
		if !ok {
			return fmt.Errorf("Ω^f output has type %T, want sim.Set", v)
		}
		if s.Len() != size {
			return fmt.Errorf("Ω^f stable set %v has size %d, want %d", s, s.Len(), size)
		}
		if s.Intersect(f.Correct()).IsEmpty() {
			return fmt.Errorf("Ω^f stable set %v contains no correct process (correct=%v)", s, f.Correct())
		}
		return nil
	}
}

// CheckAntiOmega verifies over [from, horizon] that some correct process of
// f is never output by h at any correct process — the executable form of the
// anti-Ω specification on a finite suffix.
func CheckAntiOmega(h sim.Oracle, f sim.Pattern, from, horizon sim.Time) error {
	outputs := sim.EmptySet
	for t := from; t <= horizon; t++ {
		for _, p := range f.Correct().Members() {
			v, ok := h.Value(p, t).(sim.PID)
			if !ok {
				return fmt.Errorf("anti-Ω output has type %T, want sim.PID", h.Value(p, t))
			}
			outputs = outputs.Add(v)
		}
	}
	if f.Correct().SubsetOf(outputs) {
		return fmt.Errorf("anti-Ω output every correct process in [%d,%d]", from, horizon)
	}
	return nil
}
