// Package fd provides the failure detector framework of the paper's model
// (Section 3.2) — oracles as functions from (process, time) to an output
// range — together with the classical detectors the paper compares against.
//
// A detector specification maps each failure pattern to a set of allowed
// histories. This package realizes specifications as concrete histories: an
// arbitrary (seeded, deterministic) output before a stabilization time, and
// a spec-compliant stable output afterwards — which is exactly the
// behaviour space the specifications allow — and provides checkers that
// verify compliance of any oracle over a finite horizon.
//
// How the code's names map to the paper's definitions:
//
//   - NewOmega builds Ω (Chandra–Hadzilacos–Toueg): eventually every
//     correct process permanently trusts the same correct leader. The
//     weakest detector for consensus, and the f = 1 case Ω¹ of Section 5.3.
//
//   - NewOmegaF builds the f-resilient family Ω^f (Neiger): eventually a
//     fixed set of f processes, at least one of them correct, is output
//     everywhere. Ωn = Ω^n is the baseline the paper proves strictly
//     stronger than Υ (Theorem 1, Corollary 3).
//
//   - NewStableEvPerfect is the stable eventually-perfect detector:
//     eventually outputs exactly faulty(F). "Stable" is the paper's
//     Section 5.4 requirement that the output stops changing — the class
//     Figure 3 extracts Υ^f from.
//
//   - NewAntiOmega is anti-Ω (Zielinski): outputs one process that is
//     eventually never a correct leader; the historical route to the
//     weakest detector for set agreement and a relative of Υ's complement
//     form.
//
//   - Constant is the dummy (trivial) detector D_⊥ used to define
//     f-non-triviality: a detector weaker than it gives no failure
//     information at all.
//
//   - CheckStable verifies a history stabilizes and that its stable value
//     satisfies a legality predicate (e.g. OmegaLegal, or core.Upsilon(n).
//     Legal) — the executable form of "H ∈ D(F)".
//
//   - Unstable (history.go) is the flip-aware history type: finitely many
//     constant pre-stabilization phases, uniform across processes, before
//     the permanent stable output. Because every output change happens at a
//     known global time, it implements sim.FlipOracle and the simulator's
//     query seam (sim.QuerySeam) can record each switch as a write of the
//     history's virtual object — what lets the schedule-space explorer
//     enumerate *when* a history stabilizes (its SwitchBudget dimension)
//     while keeping DPOR's independence relation sound.
//
// Queries themselves are first-class accesses: Query (goroutine runner) and
// QueryAt (step machines) route through the run's query seam, which records
// each query as a read of the queried history's object.
//
// Tagged histories (tagged.go) stamp outputs with the emitting module so
// reductions can count module switches, which the Theorem 1/5 adversary
// exploits.
package fd
