package fd

import (
	"fmt"

	"weakestfd/internal/sim"
)

// Unstable histories: the flip-aware counterpart of Stabilizing for the
// schedule-space explorer. A Stabilizing history's pre-stabilization output
// is an arbitrary function of (p, t) — fine for seeded experiments, but its
// output may change at every step, which no finite flip schedule can
// describe. An Unstable history instead runs through finitely many constant
// phases, uniform across processes, before settling on its stable output:
// exactly the bounded-output-switch prefixes the paper's lower-bound
// adversaries drive, and the shape the explorer's SwitchBudget enumerates.
// Because every output change happens at a known global time, Unstable
// implements sim.FlipOracle and the query seam can record each switch as a
// write of the history's virtual object — which is what keeps DPOR's
// independence relation sound when detector queries commute with other
// steps.

// Phase is one constant-output phase of an Unstable history: the history
// outputs Out at every process while t < Until.
type Phase[T any] struct {
	// Until is the phase's exclusive end time; the history flips to the next
	// phase (or the stable output) at t = Until.
	Until sim.Time
	// Out is the phase's output, the same at every process.
	Out T
}

// Unstable is a history with a bounded unstable prefix: Phases (with
// strictly increasing Until) followed by the permanent Stable output. An
// empty phase list makes it stable from time 0, i.e. Constant(Stable).
type Unstable[T any] struct {
	// Phases are the pre-stabilization phases, ordered by strictly
	// increasing Until.
	Phases []Phase[T]
	// Stable is the permanent output from the last phase boundary on.
	Stable T
}

// NewUnstable builds an Unstable history, validating the phase order.
func NewUnstable[T any](stable T, phases ...Phase[T]) *Unstable[T] {
	var last sim.Time
	for i, ph := range phases {
		if ph.Until <= last {
			panic(fmt.Sprintf("fd: Unstable phase %d ends at %d, not after %d", i, ph.Until, last))
		}
		last = ph.Until
	}
	return &Unstable[T]{Phases: phases, Stable: stable}
}

// Value implements sim.Oracle.
func (u *Unstable[T]) Value(_ sim.PID, t sim.Time) any {
	for _, ph := range u.Phases {
		if t < ph.Until {
			return ph.Out
		}
	}
	return u.Stable
}

// FlipTimes implements sim.FlipOracle: the phase boundaries, in increasing
// order.
func (u *Unstable[T]) FlipTimes() []sim.Time {
	if len(u.Phases) == 0 {
		return nil
	}
	out := make([]sim.Time, len(u.Phases))
	for i, ph := range u.Phases {
		out[i] = ph.Until
	}
	return out
}

var _ sim.FlipOracle = (*Unstable[sim.Set])(nil)
