package fd

import (
	"strings"
	"testing"

	"weakestfd/internal/sim"
)

// Table tests for the opaque-tag codec: every set round-trips, and every
// malformed tag is rejected with a descriptive error rather than decoded to
// a wrong set.
func TestTagSetRoundTripTable(t *testing.T) {
	cases := []struct {
		set  sim.Set
		want string
	}{
		{sim.EmptySet, "excl:"},
		{sim.SetOf(0), "excl:p1"},
		{sim.SetOf(1), "excl:p2"},
		{sim.SetOf(0, 1), "excl:p1+p2"},
		{sim.SetOf(0, 2, 4), "excl:p1+p3+p5"},
		{sim.SetOf(63), "excl:p64"},
		{sim.FullSet(4), "excl:p1+p2+p3+p4"},
	}
	for _, tc := range cases {
		tag := TagSet(tc.set)
		if tag != tc.want {
			t.Errorf("TagSet(%v) = %q, want %q", tc.set, tag, tc.want)
		}
		got, err := UntagSet(tag)
		if err != nil {
			t.Errorf("UntagSet(%q): %v", tag, err)
		} else if got != tc.set {
			t.Errorf("round trip %v -> %q -> %v", tc.set, tag, got)
		}
	}
}

func TestUntagSetRejectsMalformed(t *testing.T) {
	cases := []struct {
		tag     string
		wantErr string
	}{
		{"p1+p2", "lacks excl: prefix"},
		{"incl:p1", "lacks excl: prefix"},
		{"excl:q1", `bad tag element "q1"`},
		{"excl:p0", `bad tag element "p0"`},
		{"excl:p-1", `bad tag element "p-1"`},
		{"excl:p", `bad tag element "p"`},
		{"excl:p1+", `bad tag element ""`},
		{"excl:p1 p2", `bad tag element "p1 p2"`},
		{"excl:pp3", `bad tag element "pp3"`},
	}
	for _, tc := range cases {
		if _, err := UntagSet(tc.tag); err == nil {
			t.Errorf("UntagSet(%q) accepted a malformed tag", tc.tag)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("UntagSet(%q) error %q, want it to mention %q", tc.tag, err, tc.wantErr)
		}
	}
}

// TestTaggedOmegaFNoisePath exercises the pre-stabilization branch directly:
// before ts every output is a well-formed tag of exactly `size` processes
// (the range constraint holds even while the value is arbitrary), and
// outputs genuinely vary across (p, t) — the noise is noise.
func TestTaggedOmegaFNoisePath(t *testing.T) {
	pattern := sim.CrashPattern(5, map[sim.PID]sim.Time{0: 10})
	const size = 3
	h := NewTaggedOmegaF(pattern, size, 50, 7)
	seen := make(map[string]bool)
	for p := sim.PID(0); p < 5; p++ {
		for _, tm := range []sim.Time{0, 1, 17, 49} {
			tag, ok := h.Value(p, tm).(string)
			if !ok {
				t.Fatalf("noise output at (%v,%d) is %T, want string", p, tm, h.Value(p, tm))
			}
			s, err := UntagSet(tag)
			if err != nil {
				t.Fatalf("noise output %q malformed: %v", tag, err)
			}
			if s.Len() != size {
				t.Fatalf("noise output %q has %d members, want %d", tag, s.Len(), size)
			}
			seen[tag] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("noise produced a single tag %v across 20 samples; not noise", seen)
	}
	// From ts on, the output is one fixed tag.
	stable := h.Value(0, 50)
	for p := sim.PID(0); p < 5; p++ {
		if h.Value(p, 1000) != stable {
			t.Fatalf("post-ts output differs across processes: %v vs %v", h.Value(p, 1000), stable)
		}
	}
}
