package trace

import (
	"strings"
	"testing"

	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

func TestLabelClass(t *testing.T) {
	tests := []struct{ in, want string }{
		{"read D", "read D"},
		{"read D[3]", "read D[·]"},
		{"read D[17]", "read D[·]"},
		{"update nconv[2][5]/3.A", "update nconv[·][·]/·.A"},
		{"scan A[1][2]/4", "scan A[·][·]/·"},
		{"query", "query"},
		{"write R[0]", "write R[·]"},
		{"read Stable[12]", "read Stable[·]"},
		{"write HB7", "write HB·"},
	}
	for _, tt := range tests {
		if got := LabelClass(tt.in); got != tt.want {
			t.Errorf("LabelClass(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRecorderAndSummary(t *testing.T) {
	reg := memory.NewRegister[int]("X")
	arr := memory.NewArray[int]("Y", 2)
	body := func(p *sim.Proc) (sim.Value, bool) {
		reg.Write(p, 1)
		arr.Write(p, p.ID(), 2)
		reg.Read(p)
		return 0, true
	}
	rec := NewRecorder(nil)
	_, err := sim.Run(sim.Config{
		Pattern:  sim.FailFree(2),
		Schedule: sim.RoundRobin(),
		Tracer:   rec.Hook(),
	}, []sim.Body{body, body})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	if s.Total != 6 {
		t.Fatalf("Total = %d, want 6", s.Total)
	}
	if s.ByProc[0] != 3 || s.ByProc[1] != 3 {
		t.Fatalf("ByProc = %v", s.ByProc)
	}
	if s.ByClass["write X"] != 2 || s.ByClass["write Y[·]"] != 2 || s.ByClass["read X"] != 2 {
		t.Fatalf("ByClass = %v", s.ByClass)
	}
	if tl := rec.Timeline(1); len(tl) != 3 {
		t.Fatalf("Timeline(1) = %v", tl)
	}
	out := s.String()
	for _, want := range []string{"steps: 6", "write X", "write Y[·]"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderFilter(t *testing.T) {
	rec := NewRecorder(func(e sim.Event) bool { return e.P == 0 })
	body := func(p *sim.Proc) (sim.Value, bool) {
		p.Yield()
		return 0, true
	}
	_, err := sim.Run(sim.Config{
		Pattern:  sim.FailFree(2),
		Schedule: sim.RoundRobin(),
		Tracer:   rec.Hook(),
	}, []sim.Body{body, body})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) != 1 || rec.Events()[0].P != 0 {
		t.Fatalf("filter failed: %v", rec.Events())
	}
}

func TestEmptySummary(t *testing.T) {
	rec := NewRecorder(nil)
	s := rec.Summarize()
	if s.Total != 0 || len(s.ByProc) != 0 {
		t.Fatalf("empty summary wrong: %+v", s)
	}
}
