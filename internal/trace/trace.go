// Package trace records and summarizes run traces: which process performed
// which kind of atomic step when. It powers the narrated examples, the
// -trace flag of cmd/setagree, and white-box tests that assert protocols
// take the *kinds* of steps the paper's pseudocode prescribes.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"weakestfd/internal/sim"
)

// Recorder collects step events from a run via sim.Config.Tracer.
type Recorder struct {
	filter func(sim.Event) bool
	events []sim.Event
}

// NewRecorder builds a recorder; a nil filter records everything.
func NewRecorder(filter func(sim.Event) bool) *Recorder {
	return &Recorder{filter: filter}
}

// Hook returns the tracer callback to plug into sim.Config.Tracer.
func (r *Recorder) Hook() func(sim.Event) {
	return func(e sim.Event) {
		if r.filter == nil || r.filter(e) {
			r.events = append(r.events, e)
		}
	}
}

// Events returns the recorded events in time order.
func (r *Recorder) Events() []sim.Event { return r.events }

// Timeline returns the events of one process, in time order.
func (r *Recorder) Timeline(p sim.PID) []sim.Event {
	var out []sim.Event
	for _, e := range r.events {
		if e.P == p {
			out = append(out, e)
		}
	}
	return out
}

// Summary aggregates a recording.
type Summary struct {
	// Total is the number of recorded steps.
	Total int64
	// ByProc counts steps per process (indexed by PID; length = max PID+1).
	ByProc []int64
	// ByClass counts steps per label class (see LabelClass).
	ByClass map[string]int64
}

// Summarize aggregates the recording into per-process and per-label-class
// counts.
func (r *Recorder) Summarize() Summary {
	s := Summary{ByClass: make(map[string]int64)}
	maxP := sim.PID(-1)
	for _, e := range r.events {
		if e.P > maxP {
			maxP = e.P
		}
	}
	s.ByProc = make([]int64, int(maxP)+1)
	for _, e := range r.events {
		s.Total++
		s.ByProc[e.P]++
		s.ByClass[LabelClass(e.Label)]++
	}
	return s
}

// LabelClass collapses a step label to its structural class: indices inside
// brackets and trailing round/sub-round decorations are replaced by "·", so
// "read D[3]" and "read D[17]" both class as "read D[·]", and
// "update nconv[2][5]/3.A" classes as "update nconv[·][·]/·.A".
func LabelClass(label string) string {
	var b strings.Builder
	i := 0
	for i < len(label) {
		switch c := label[i]; {
		case c == '[':
			b.WriteString("[·]")
			for i < len(label) && label[i] != ']' {
				i++
			}
			i++ // skip ']'
		case c == '/':
			b.WriteString("/·")
			i++
			for i < len(label) && label[i] >= '0' && label[i] <= '9' {
				i++
			}
		case c >= '0' && c <= '9':
			b.WriteString("·")
			for i < len(label) && label[i] >= '0' && label[i] <= '9' {
				i++
			}
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

// String renders the summary, label classes sorted by descending count.
func (s Summary) String() string {
	type kv struct {
		class string
		n     int64
	}
	classes := make([]kv, 0, len(s.ByClass))
	for c, n := range s.ByClass {
		classes = append(classes, kv{c, n})
	}
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].n != classes[j].n {
			return classes[i].n > classes[j].n
		}
		return classes[i].class < classes[j].class
	})
	var b strings.Builder
	fmt.Fprintf(&b, "steps: %d\n", s.Total)
	for p, n := range s.ByProc {
		fmt.Fprintf(&b, "  %v: %d\n", sim.PID(p), n)
	}
	b.WriteString("by step class:\n")
	for _, c := range classes {
		fmt.Fprintf(&b, "  %-32s %d\n", c.class, c.n)
	}
	return b.String()
}
