package agreement

import (
	"fmt"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

func runBoosted(t *testing.T, pattern sim.Pattern, ts sim.Time, seed int64, sched sim.Schedule) (*sim.Report, *BoostedConsensus) {
	t.Helper()
	n := pattern.N()
	omegaN := fd.NewOmegaF(pattern, n-1, ts, seed)
	b := NewBoostedConsensus(n, omegaN, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	proposals := make([]sim.Value, n)
	for i := range bodies {
		proposals[i] = sim.Value(10 + i)
		bodies[i] = b.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sched, Budget: 1 << 22}, bodies)
	if err != nil {
		t.Fatalf("boosted run: %v", err)
	}
	if err := check.Consensus(rep, pattern, proposals); err != nil {
		t.Fatalf("boosted consensus violated: %v", err)
	}
	if err := b.Objects().AllAccessorsWithinLimit(); err != nil {
		t.Fatalf("consensus-object discipline violated: %v", err)
	}
	return rep, b
}

func TestBoostedConsensusSweep(t *testing.T) {
	for n := 2; n <= 6; n++ {
		crashes := map[sim.PID]sim.Time{}
		for i := 1; i < n; i++ {
			crashes[sim.PID(i)] = sim.Time(11 * i)
		}
		patterns := map[string]sim.Pattern{
			"failfree":  sim.FailFree(n),
			"one-crash": sim.CrashPattern(n, map[sim.PID]sim.Time{sim.PID(n - 1): 23}),
			"wait-free": sim.CrashPattern(n, crashes),
		}
		for pname, pattern := range patterns {
			t.Run(fmt.Sprintf("n%d/%s", n, pname), func(t *testing.T) {
				for seed := int64(0); seed < 4; seed++ {
					runBoosted(t, pattern, 90, seed, sim.NewRandom(seed+17))
				}
			})
		}
	}
}

func TestBoostedConsensusRoundRobin(t *testing.T) {
	n := 5
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{0: 35})
	runBoosted(t, pattern, 250, 3, sim.RoundRobin())
}

func TestBoostedConsensusDivergentViewsStaySafe(t *testing.T) {
	// With a long noise period, divergent Ωn views hit many distinct
	// consensus objects; the per-object n-process limit must never trip
	// (the family panics if it does) and consensus must still hold.
	n := 4
	pattern := sim.FailFree(n)
	rep, b := runBoosted(t, pattern, 3_000, 7, sim.NewRandom(5))
	if err := b.Objects().AllAccessorsWithinLimit(); err != nil {
		t.Fatal(err)
	}
	if len(rep.DecidedValues()) != 1 {
		t.Fatalf("decided %v", rep.DecidedValues())
	}
}

func TestConsensusObjectSemantics(t *testing.T) {
	obj := memory.NewConsensusObject("c", 2)
	var got [2]sim.Value
	body := func(p *sim.Proc) (sim.Value, bool) {
		got[p.ID()] = obj.Propose(p, sim.Value(p.ID())+10)
		return got[p.ID()], true
	}
	rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(2), Schedule: sim.RoundRobin()},
		[]sim.Body{body, body})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != got[1] {
		t.Fatalf("object decided two values: %v", got)
	}
	if got[0] != 10 {
		t.Fatalf("first proposal should win under round-robin, got %v", got[0])
	}
	if len(rep.DecidedValues()) != 1 {
		t.Fatalf("decisions %v", rep.DecidedValues())
	}
	if obj.Accessors() != sim.SetOf(0, 1) {
		t.Fatalf("accessors %v", obj.Accessors())
	}
	if d := obj.Decision(); !d.OK || d.V != 10 {
		t.Fatalf("decision %+v", d)
	}
}

func TestConsensusObjectLimitEnforced(t *testing.T) {
	obj := memory.NewConsensusObject("c", 2)
	body := func(p *sim.Proc) (sim.Value, bool) {
		obj.Propose(p, 1)
		return 0, true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("third accessor must panic")
		}
	}()
	_, _ = sim.Run(sim.Config{Pattern: sim.FailFree(3), Schedule: sim.RoundRobin()},
		[]sim.Body{body, body, body})
}

func TestConsFamilyKeying(t *testing.T) {
	fam := memory.NewConsFamily("c", 2)
	a := fam.At(1, sim.SetOf(0, 1))
	b := fam.At(1, sim.SetOf(0, 1))
	c := fam.At(1, sim.SetOf(0, 2))
	d := fam.At(2, sim.SetOf(0, 1))
	if a != b || a == c || a == d {
		t.Fatal("keying wrong")
	}
	if err := fam.AllAccessorsWithinLimit(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized key set must panic")
		}
	}()
	fam.At(1, sim.SetOf(0, 1, 2))
}

func TestConsFamilyDetectsForeignAccessor(t *testing.T) {
	fam := memory.NewConsFamily("c", 2)
	obj := fam.At(1, sim.SetOf(0, 1))
	body := func(p *sim.Proc) (sim.Value, bool) {
		obj.Propose(p, 5) // p3 accessing the {p1,p2}-keyed object
		return 0, true
	}
	spin := func(p *sim.Proc) (sim.Value, bool) { return 0, true }
	if _, err := sim.Run(sim.Config{Pattern: sim.FailFree(3), Schedule: sim.Priority(2)},
		[]sim.Body{spin, spin, body}); err != nil {
		t.Fatal(err)
	}
	if err := fam.AllAccessorsWithinLimit(); err == nil {
		t.Fatal("foreign accessor not detected")
	}
}
