// Package agreement implements the baseline algorithms the paper compares
// against or builds upon:
//
//   - consensus from Ω and registers (the Chandra–Hadzilacos–Toueg setting
//     in shared memory, via leader-driven 1-converge rounds),
//   - n-set agreement from Ωn and registers (Neiger, the paper's [18] — the
//     algorithm the conjecture of [19] was about),
//   - the FD-free asynchronous attempt, which cannot terminate in general
//     (FLP / set-agreement impossibility) and serves as the impossibility
//     side of the experiments.
package agreement

import (
	"fmt"
	"sync"

	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// OmegaConsensus solves consensus (1-set agreement) among n processes using
// an Ω history and registers, tolerating n−1 crashes. In round r, processes
// that currently consider themselves the leader run 1-converge[r]; a commit
// is posted to the decision register. Non-leaders poll the decision register
// and the round announcements. Safety comes from 1-converge's C-Agreement
// chained through round announcements; liveness from Ω's eventual unique
// correct leader running alone.
type OmegaConsensus struct {
	n     int
	omega sim.Oracle
	conv  *converge.Series
	d     *memory.Register[memory.Opt[sim.Value]]
	last  *lazyRegs // LastVal[r]: the value picked in round r
}

// NewOmegaConsensus builds the shared state for one consensus run.
func NewOmegaConsensus(n int, omega sim.Oracle, impl converge.Impl) *OmegaConsensus {
	if n < 1 {
		panic(fmt.Sprintf("agreement: OmegaConsensus n=%d", n))
	}
	return &OmegaConsensus{
		n:     n,
		omega: omega,
		conv:  converge.NewSeries("cons", n, impl),
		d:     memory.NewRegister[memory.Opt[sim.Value]]("D"),
		last:  newLazyRegs(),
	}
}

// Body returns the consensus automaton proposing the given value.
func (c *OmegaConsensus) Body(input sim.Value) sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		v := input
		me := p.ID()
		for r := 1; ; {
			if d := c.d.Read(p); d.OK {
				return d.V, true
			}
			if fd.Query[sim.PID](p, c.omega) != me {
				continue // not the leader: poll again
			}
			// Catch up on the latest announced pick before proposing.
			if w := c.last.at(r).Read(p); w.OK {
				v = w.V
				r++
				continue
			}
			picked, committed := c.conv.At(r, 0, 1).Converge(p, v)
			v = picked
			c.last.at(r).Write(p, memory.Some(v))
			if committed {
				c.d.Write(p, memory.Some(v))
				return v, true
			}
			r++
		}
	}
}

// OmegaNSetAgreement solves (n−1)-set agreement among n processes using an
// Ωn-style history (a set of n−1 processes eventually containing a correct
// process) and registers — the paper's [18] baseline, which Corollary 3
// shows is *not* based on the weakest detector for the task. Each round,
// processes currently inside the Ωn set announce their values; every process
// adopts the first announcement it sees for the round (at most n−1 distinct,
// since only Ωn members announce) and runs (n−1)-converge[r]; a commit is
// posted to the decision register.
type OmegaNSetAgreement struct {
	n      int
	omegaN sim.Oracle
	conv   *converge.Series
	d      *memory.Register[memory.Opt[sim.Value]]
	ann    *lazyArrays // Announce[r][i]
}

// NewOmegaNSetAgreement builds the shared state for one run.
func NewOmegaNSetAgreement(n int, omegaN sim.Oracle, impl converge.Impl) *OmegaNSetAgreement {
	if n < 2 {
		panic(fmt.Sprintf("agreement: OmegaNSetAgreement n=%d", n))
	}
	return &OmegaNSetAgreement{
		n:      n,
		omegaN: omegaN,
		conv:   converge.NewSeries("nset", n, impl),
		d:      memory.NewRegister[memory.Opt[sim.Value]]("D"),
		ann:    newLazyArrays(n),
	}
}

// K returns the agreement parameter, n−1.
func (a *OmegaNSetAgreement) K() int { return a.n - 1 }

// Body returns the automaton proposing the given value.
func (a *OmegaNSetAgreement) Body(input sim.Value) sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		v := input
		me := p.ID()
		for r := 1; ; r++ {
			if d := a.d.Read(p); d.OK {
				return d.V, true
			}
			ann := a.ann.at(r)
			// Wait until the round has an announcement from a current Ωn
			// member, announcing ourselves whenever we are a member.
			adopted := false
			for !adopted {
				l := fd.Query[sim.Set](p, a.omegaN)
				if l.Has(me) {
					ann.Write(p, me, memory.Some(v))
				}
				for _, j := range l.Members() {
					if w := ann.Read(p, j); w.OK {
						v = w.V
						adopted = true
						break
					}
				}
				if d := a.d.Read(p); d.OK {
					return d.V, true
				}
			}
			picked, committed := a.conv.At(r, 0, a.n-1).Converge(p, v)
			v = picked
			if committed {
				a.d.Write(p, memory.Some(v))
				return v, true
			}
		}
	}
}

// AsyncAttempt is the FD-free attempt at (n−1)-set agreement: processes loop
// on (n−1)-converge instances with no failure information. Convergence only
// fires when at most n−1 distinct values remain in play, which an adversary
// (or plain bad luck with n distinct inputs and no crashes) prevents
// forever — the executable face of the set-agreement impossibility the
// paper builds on [2,14,20].
type AsyncAttempt struct {
	n    int
	conv *converge.Series
	d    *memory.Register[memory.Opt[sim.Value]]
}

// NewAsyncAttempt builds the shared state for one attempt.
func NewAsyncAttempt(n int, impl converge.Impl) *AsyncAttempt {
	return &AsyncAttempt{
		n:    n,
		conv: converge.NewSeries("async", n, impl),
		d:    memory.NewRegister[memory.Opt[sim.Value]]("D"),
	}
}

// Body returns the automaton proposing the given value.
func (a *AsyncAttempt) Body(input sim.Value) sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		v := input
		for r := 1; ; r++ {
			if d := a.d.Read(p); d.OK {
				return d.V, true
			}
			picked, committed := a.conv.At(r, 0, a.n-1).Converge(p, v)
			v = picked
			if committed {
				a.d.Write(p, memory.Some(v))
				return v, true
			}
		}
	}
}

// lazyRegs lazily allocates a register per round.
type lazyRegs struct {
	mu sync.Mutex
	m  map[int]*memory.Register[memory.Opt[sim.Value]]
}

func newLazyRegs() *lazyRegs {
	return &lazyRegs{m: make(map[int]*memory.Register[memory.Opt[sim.Value]])}
}

func (l *lazyRegs) at(r int) *memory.Register[memory.Opt[sim.Value]] {
	l.mu.Lock()
	defer l.mu.Unlock()
	reg, ok := l.m[r]
	if !ok {
		reg = memory.NewRegister[memory.Opt[sim.Value]](fmt.Sprintf("Last[%d]", r))
		l.m[r] = reg
	}
	return reg
}

// lazyArrays lazily allocates a register array per round.
type lazyArrays struct {
	mu sync.Mutex
	n  int
	m  map[int]*memory.Array[memory.Opt[sim.Value]]
}

func newLazyArrays(n int) *lazyArrays {
	return &lazyArrays{n: n, m: make(map[int]*memory.Array[memory.Opt[sim.Value]])}
}

func (l *lazyArrays) at(r int) *memory.Array[memory.Opt[sim.Value]] {
	l.mu.Lock()
	defer l.mu.Unlock()
	arr, ok := l.m[r]
	if !ok {
		arr = memory.NewArray[memory.Opt[sim.Value]](fmt.Sprintf("Ann[%d]", r), l.n)
		l.m[r] = arr
	}
	return arr
}
