package agreement

import (
	"fmt"

	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// BoostedConsensus solves consensus among n+1 processes using n-process
// consensus objects, registers, and Ωn — the task on the *other* side of
// the paper's Corollary 4. Ωn is sufficient for it (Yang–Neiger–Gafni, the
// paper's [21]) and necessary (Guerraoui–Kuznetsov, the paper's [13]);
// together with Theorems 1 and 2 that yields the separation: set agreement
// from registers needs strictly less failure information (Υ) than this
// task does (Ωn).
//
// Algorithm, round r:
//
//  1. Processes that currently see themselves inside the Ωn output L funnel
//     their value through the n-process consensus object Cons[r][L] — keyed
//     by L itself, so each object is accessed by at most |L| = n processes
//     even while detector views diverge — and announce the object's
//     decision in Announce[r][i].
//  2. Everyone adopts the first announcement by a member of its current L.
//  3. Everyone runs 1-converge[r]; a commit is posted to the decision
//     register and decided.
//
// Safety is the usual converge chain; liveness follows once Ωn stabilizes
// on one set L with a correct member: a single consensus object funnels the
// members to one value, everyone adopts it, and 1-converge commits.
type BoostedConsensus struct {
	n      int
	omegaN sim.Oracle
	cons   *memory.ConsFamily
	conv   *converge.Series
	d      *memory.Register[memory.Opt[sim.Value]]
	ann    *lazyArrays
}

// NewBoostedConsensus builds the shared state for one run over n processes
// (the paper's n+1), with consensus objects of capacity n−1 (the paper's n).
func NewBoostedConsensus(n int, omegaN sim.Oracle, impl converge.Impl) *BoostedConsensus {
	if n < 2 {
		panic(fmt.Sprintf("agreement: BoostedConsensus n=%d", n))
	}
	return &BoostedConsensus{
		n:      n,
		omegaN: omegaN,
		cons:   memory.NewConsFamily("Cons", n-1),
		conv:   converge.NewSeries("boost", n, impl),
		d:      memory.NewRegister[memory.Opt[sim.Value]]("D"),
		ann:    newLazyArrays(n),
	}
}

// Objects exposes the consensus-object family for post-run verification.
func (b *BoostedConsensus) Objects() *memory.ConsFamily { return b.cons }

// Body returns the automaton proposing the given value.
func (b *BoostedConsensus) Body(input sim.Value) sim.Body {
	return func(p *sim.Proc) (sim.Value, bool) {
		v := input
		me := p.ID()
		for r := 1; ; r++ {
			if d := b.d.Read(p); d.OK {
				return d.V, true
			}
			ann := b.ann.at(r)
			adopted := false
			for !adopted {
				l := fd.Query[sim.Set](p, b.omegaN)
				if l.Has(me) {
					// Funnel through the object keyed by this exact view.
					won := b.cons.At(r, l).Propose(p, v)
					ann.Write(p, me, memory.Some(won))
					v = won
					adopted = true
					break
				}
				for _, j := range l.Members() {
					if w := ann.Read(p, j); w.OK {
						v = w.V
						adopted = true
						break
					}
				}
				if d := b.d.Read(p); d.OK {
					return d.V, true
				}
			}
			picked, committed := b.conv.At(r, 0, 1).Converge(p, v)
			v = picked
			if committed {
				b.d.Write(p, memory.Some(v))
				return v, true
			}
		}
	}
}
