package agreement

import (
	"fmt"
	"testing"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

func TestOmegaConsensus(t *testing.T) {
	for n := 1; n <= 6; n++ {
		patterns := map[string]sim.Pattern{"failfree": sim.FailFree(n)}
		if n >= 2 {
			patterns["crash"] = sim.CrashPattern(n, map[sim.PID]sim.Time{sim.PID(n - 1): 37})
		}
		if n >= 3 {
			crashes := map[sim.PID]sim.Time{}
			for i := 1; i < n; i++ {
				crashes[sim.PID(i)] = sim.Time(11 * i)
			}
			patterns["wait-free"] = sim.CrashPattern(n, crashes)
		}
		for pname, pattern := range patterns {
			t.Run(fmt.Sprintf("n%d/%s", n, pname), func(t *testing.T) {
				for seed := int64(0); seed < 5; seed++ {
					omega := fd.NewOmega(pattern, 100, seed)
					c := NewOmegaConsensus(n, omega, converge.UseAtomic)
					bodies := make([]sim.Body, n)
					proposals := make([]sim.Value, n)
					for i := range bodies {
						proposals[i] = sim.Value(10 + i)
						bodies[i] = c.Body(proposals[i])
					}
					rep, err := sim.Run(sim.Config{
						Pattern:  pattern,
						Schedule: sim.NewRandom(seed + 31),
						Budget:   1 << 21,
					}, bodies)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if err := check.Consensus(rep, pattern, proposals); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

func TestOmegaConsensusRoundRobin(t *testing.T) {
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{0: 41})
	omega := fd.NewOmega(pattern, 300, 2)
	c := NewOmegaConsensus(n, omega, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	proposals := make([]sim.Value, n)
	for i := range bodies {
		proposals[i] = sim.Value(10 + i)
		bodies[i] = c.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 21}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Consensus(rep, pattern, proposals); err != nil {
		t.Fatal(err)
	}
}

func TestOmegaNSetAgreement(t *testing.T) {
	for n := 2; n <= 6; n++ {
		crashes := map[sim.PID]sim.Time{}
		for i := 1; i < n; i++ {
			crashes[sim.PID(i)] = sim.Time(9 * i)
		}
		patterns := map[string]sim.Pattern{
			"failfree":  sim.FailFree(n),
			"wait-free": sim.CrashPattern(n, crashes),
		}
		for pname, pattern := range patterns {
			t.Run(fmt.Sprintf("n%d/%s", n, pname), func(t *testing.T) {
				for seed := int64(0); seed < 5; seed++ {
					omegaN := fd.NewOmegaF(pattern, n-1, 80, seed)
					a := NewOmegaNSetAgreement(n, omegaN, converge.UseAtomic)
					bodies := make([]sim.Body, n)
					proposals := make([]sim.Value, n)
					for i := range bodies {
						proposals[i] = sim.Value(10 + i)
						bodies[i] = a.Body(proposals[i])
					}
					rep, err := sim.Run(sim.Config{
						Pattern:  pattern,
						Schedule: sim.NewRandom(seed + 5),
						Budget:   1 << 21,
					}, bodies)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if err := check.SetAgreement(rep, pattern, a.K(), proposals); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

func TestOmegaNSetAgreementDropsAValue(t *testing.T) {
	// Ωn members' values are the only ones adopted: with the stable set
	// missing one process, at most n−1 values circulate.
	n := 4
	pattern := sim.FailFree(n)
	omegaN := fd.NewOmegaF(pattern, n-1, 0, 3) // stable from the start
	a := NewOmegaNSetAgreement(n, omegaN, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	proposals := make([]sim.Value, n)
	for i := range bodies {
		proposals[i] = sim.Value(10 + i)
		bodies[i] = a.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 21}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DecidedValues()) > n-1 {
		t.Fatalf("decided %v", rep.DecidedValues())
	}
}

func TestAsyncAttemptLivelocksUnderLockstep(t *testing.T) {
	// The impossibility side (E9): with n distinct inputs, no crashes and
	// lockstep scheduling, the FD-free attempt never decides.
	n := 4
	a := NewAsyncAttempt(n, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = a.Body(sim.Value(10 + i))
	}
	rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(n), Schedule: sim.RoundRobin(), Budget: 50_000}, bodies)
	if err == nil {
		t.Fatalf("async attempt decided %v under lockstep", rep.DecidedValues())
	}
	if len(rep.Decided) != 0 {
		t.Fatal("no decisions expected")
	}
}

func TestAsyncAttemptMayDecideOtherwise(t *testing.T) {
	// The impossibility says *some* run never decides, not all: under a
	// solo-start schedule the first process sees only its own value and
	// commits. Both behaviours are consistent with the theory.
	n := 4
	a := NewAsyncAttempt(n, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	proposals := make([]sim.Value, n)
	for i := range bodies {
		proposals[i] = sim.Value(10 + i)
		bodies[i] = a.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(n), Schedule: sim.Priority(0, 1, 2, 3), Budget: 1 << 20}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.SetAgreement(rep, sim.FailFree(n), n-1, proposals); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncAttemptWithFewValuesDecides(t *testing.T) {
	// With ≤ n−1 distinct inputs the attempt terminates even under
	// lockstep: converge's Convergence property fires. The impossibility
	// only bites at full input diversity.
	n := 4
	a := NewAsyncAttempt(n, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	proposals := []sim.Value{10, 10, 11, 12}
	for i := range bodies {
		bodies[i] = a.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: sim.FailFree(n), Schedule: sim.RoundRobin(), Budget: 1 << 20}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.SetAgreement(rep, sim.FailFree(n), n-1, proposals); err != nil {
		t.Fatal(err)
	}
}

func TestOmegaConsensusSingleProcess(t *testing.T) {
	pattern := sim.FailFree(1)
	omega := fd.NewOmega(pattern, 0, 0)
	c := NewOmegaConsensus(1, omega, converge.UseAtomic)
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.RoundRobin()},
		[]sim.Body{c.Body(99)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decided[0] != 99 {
		t.Fatalf("decided %v", rep.Decided)
	}
}

func TestOmegaNRegistersOnly(t *testing.T) {
	n := 3
	pattern := sim.FailFree(n)
	omegaN := fd.NewOmegaF(pattern, n-1, 50, 1)
	a := NewOmegaNSetAgreement(n, omegaN, converge.UseAfek)
	bodies := make([]sim.Body, n)
	proposals := make([]sim.Value, n)
	for i := range bodies {
		proposals[i] = sim.Value(10 + i)
		bodies[i] = a.Body(proposals[i])
	}
	rep, err := sim.Run(sim.Config{Pattern: pattern, Schedule: sim.NewRandom(9), Budget: 1 << 22}, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.SetAgreement(rep, pattern, a.K(), proposals); err != nil {
		t.Fatal(err)
	}
}
