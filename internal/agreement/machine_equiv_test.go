package agreement

import (
	"fmt"
	"reflect"
	"testing"

	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// Equivalence of the goroutine and machine runners on the baseline
// algorithms; see internal/core/machine_equiv_test.go for the protocol
// counterparts.

func equivProposals(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = sim.Value(10 + i)
	}
	return out
}

func equivSchedules() map[string]func(seed int64) sim.Schedule {
	return map[string]func(seed int64) sim.Schedule{
		"roundrobin": func(int64) sim.Schedule { return sim.RoundRobin() },
		"random":     sim.NewRandom,
	}
}

func checkSameReport(t *testing.T, gRep, mRep *sim.Report, gErr, mErr error) {
	t.Helper()
	if (gErr == nil) != (mErr == nil) {
		t.Fatalf("error mismatch: goroutine=%v machine=%v", gErr, mErr)
	}
	if !reflect.DeepEqual(gRep, mRep) {
		t.Fatalf("report mismatch:\n goroutine: %+v\n machine:   %+v", gRep, mRep)
	}
}

func TestMachineEquivalenceBaselines(t *testing.T) {
	const n = 5
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{1: 30})
	type algo struct {
		name string
		mk   func(seed int64) (func(i int) sim.Body, func(i int) sim.StepMachine)
	}
	algos := []algo{
		{"omega-consensus", func(seed int64) (func(int) sim.Body, func(int) sim.StepMachine) {
			c := NewOmegaConsensus(n, fd.NewOmega(pattern, 100, seed), converge.UseAtomic)
			return func(i int) sim.Body { return c.Body(equivProposals(n)[i]) },
				func(i int) sim.StepMachine { return c.Machine(equivProposals(n)[i]) }
		}},
		{"omegan-setagreement", func(seed int64) (func(int) sim.Body, func(int) sim.StepMachine) {
			a := NewOmegaNSetAgreement(n, fd.NewOmegaF(pattern, n-1, 100, seed), converge.UseAtomic)
			return func(i int) sim.Body { return a.Body(equivProposals(n)[i]) },
				func(i int) sim.StepMachine { return a.Machine(equivProposals(n)[i]) }
		}},
		{"boosted-consensus", func(seed int64) (func(int) sim.Body, func(int) sim.StepMachine) {
			// Two independent instances: consensus objects track accessors,
			// so the two runners must not share one family.
			b1 := NewBoostedConsensus(n, fd.NewOmegaF(pattern, n-1, 100, seed), converge.UseAtomic)
			b2 := NewBoostedConsensus(n, fd.NewOmegaF(pattern, n-1, 100, seed), converge.UseAtomic)
			return func(i int) sim.Body { return b1.Body(equivProposals(n)[i]) },
				func(i int) sim.StepMachine { return b2.Machine(equivProposals(n)[i]) }
		}},
	}
	for _, al := range algos {
		for sname, mkSched := range equivSchedules() {
			for seed := int64(0); seed < 4; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed%d", al.name, sname, seed), func(t *testing.T) {
					run := func(machineRunner bool) (*sim.Report, error) {
						bodyOf, machineOf := al.mk(seed)
						cfg := sim.Config{Pattern: pattern, Schedule: mkSched(seed), Budget: 1 << 21}
						if machineRunner {
							machines := make([]sim.StepMachine, n)
							for i := range machines {
								machines[i] = machineOf(i)
							}
							return sim.RunMachines(cfg, machines)
						}
						bodies := make([]sim.Body, n)
						for i := range bodies {
							bodies[i] = bodyOf(i)
						}
						return sim.Run(cfg, bodies)
					}
					gRep, gErr := run(false)
					mRep, mErr := run(true)
					checkSameReport(t, gRep, mRep, gErr, mErr)
				})
			}
		}
	}
}

// TestMachineEquivalenceAsyncLivelock pins the budget-exhaustion path: the
// FD-free attempt under round-robin never terminates, and the two runners
// must report the identical exhausted run (Steps, StepsBy, Crashed
// poisoning).
func TestMachineEquivalenceAsyncLivelock(t *testing.T) {
	const n = 4
	pattern := sim.FailFree(n)
	run := func(machineRunner bool) (*sim.Report, error) {
		a := NewAsyncAttempt(n, converge.UseAtomic)
		cfg := sim.Config{Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 20_000}
		if machineRunner {
			machines := make([]sim.StepMachine, n)
			for i := range machines {
				machines[i] = a.Machine(equivProposals(n)[i])
			}
			return sim.RunMachines(cfg, machines)
		}
		bodies := make([]sim.Body, n)
		for i := range bodies {
			bodies[i] = a.Body(equivProposals(n)[i])
		}
		return sim.Run(cfg, bodies)
	}
	gRep, gErr := run(false)
	mRep, mErr := run(true)
	if gErr == nil || mErr == nil {
		t.Fatalf("expected livelock on both runners, got goroutine=%v machine=%v", gErr, mErr)
	}
	checkSameReport(t, gRep, mRep, nil, nil)
	if !gRep.BudgetExhausted || !mRep.BudgetExhausted {
		t.Fatal("expected BudgetExhausted on both runners")
	}
}
