package agreement

import (
	"weakestfd/internal/converge"
	"weakestfd/internal/fd"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// Step-machine ports of the baseline algorithm bodies for sim.RunMachines.
// As in internal/core, each machine mirrors its Body operation for operation
// so the two runners produce identical Reports; see core/machines.go for the
// conventions.

// ---------------------------------------------------------------------------
// Consensus from Ω

const (
	ocReadD     uint8 = iota // poll the decision register
	ocQuery                  // query Ω
	ocLastRead               // catch up on the round's announced pick
	ocConv                   // leader: 1-converge[r]
	ocLastWrite              // announce the pick
	ocWriteD                 // commit: write D and decide
)

type omegaConsensusMachine struct {
	c        *OmegaConsensus
	me       sim.PID
	v        sim.Value
	r        int
	conv     converge.Machine
	log      *sim.AccessLog
	seam     *sim.QuerySeam
	pc       uint8
	decision sim.Value
}

// Machine returns the consensus automaton proposing the given value in
// resumable step-machine form.
func (c *OmegaConsensus) Machine(input sim.Value) sim.StepMachine {
	return &omegaConsensusMachine{c: c, v: input}
}

func (m *omegaConsensusMachine) Init(ctx sim.MachineContext) {
	m.me = ctx.ID
	m.log = ctx.Log
	m.seam = ctx.Queries
	m.conv.Bind(ctx)
	m.r = 1
	m.pc = ocReadD
}

func (m *omegaConsensusMachine) Decision() sim.Value { return m.decision }

func (m *omegaConsensusMachine) Step(t sim.Time) sim.MachineStatus {
	c := m.c
	switch m.pc {
	case ocReadD:
		if d := c.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		m.pc = ocQuery
	case ocQuery:
		if fd.QueryAt[sim.PID](m.seam, c.omega, m.me, t) != m.me {
			m.pc = ocReadD // not the leader: poll again
		} else {
			m.pc = ocLastRead
		}
	case ocLastRead:
		if w := c.last.at(m.r).DirectRead(m.log); w.OK {
			m.v = w.V
			m.r++
			m.pc = ocReadD
		} else {
			m.conv.Start(c.conv.At(m.r, 0, 1), m.v) // k = 1: never immediate
			m.pc = ocConv
		}
	case ocConv:
		if m.conv.StepOp() {
			m.v = m.conv.Picked
			m.pc = ocLastWrite
		}
	case ocLastWrite:
		c.last.at(m.r).DirectWrite(m.log, memory.Some(m.v))
		if m.conv.Committed {
			m.pc = ocWriteD
		} else {
			m.r++
			m.pc = ocReadD
		}
	case ocWriteD:
		c.d.DirectWrite(m.log, memory.Some(m.v))
		m.decision = m.v
		return sim.MachineDecided
	}
	return sim.MachineRunning
}

// ---------------------------------------------------------------------------
// n−1-set agreement from Ωn

const (
	onReadD    uint8 = iota // round top: poll the decision register
	onQuery                 // query Ωn
	onAnnWrite              // member: announce own value
	onAnnRead               // read one member's announcement
	onReadD2                // loop bottom: poll the decision register
	onConv                  // (n−1)-converge[r]
	onWriteD                // commit: write D and decide
)

type omegaNSetAgreementMachine struct {
	a        *OmegaNSetAgreement
	me       sim.PID
	v        sim.Value
	r        int
	ann      *memory.Array[memory.Opt[sim.Value]]
	l        sim.Set
	rest     sim.Set // members of l not yet read this pass
	adopted  bool
	conv     converge.Machine
	log      *sim.AccessLog
	seam     *sim.QuerySeam
	pc       uint8
	decision sim.Value
}

// Machine returns the set-agreement automaton proposing the given value in
// resumable step-machine form.
func (a *OmegaNSetAgreement) Machine(input sim.Value) sim.StepMachine {
	return &omegaNSetAgreementMachine{a: a, v: input}
}

func (m *omegaNSetAgreementMachine) Init(ctx sim.MachineContext) {
	m.me = ctx.ID
	m.log = ctx.Log
	m.seam = ctx.Queries
	m.conv.Bind(ctx)
	m.r = 1
	m.pc = onReadD
}

func (m *omegaNSetAgreementMachine) Decision() sim.Value { return m.decision }

func (m *omegaNSetAgreementMachine) Step(t sim.Time) sim.MachineStatus {
	a := m.a
	switch m.pc {
	case onReadD:
		if d := a.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		m.ann = a.ann.at(m.r)
		m.adopted = false
		m.pc = onQuery
	case onQuery:
		m.l = fd.QueryAt[sim.Set](m.seam, a.omegaN, m.me, t)
		if m.l.Has(m.me) {
			m.pc = onAnnWrite
		} else if m.rest = m.l; m.rest.IsEmpty() {
			m.pc = onReadD2
		} else {
			m.pc = onAnnRead
		}
	case onAnnWrite:
		m.ann.DirectWrite(m.log, m.me, memory.Some(m.v))
		if m.rest = m.l; m.rest.IsEmpty() {
			m.pc = onReadD2
		} else {
			m.pc = onAnnRead
		}
	case onAnnRead:
		j := m.rest.Min()
		m.rest = m.rest.Remove(j)
		if w := m.ann.DirectRead(m.log, j); w.OK {
			m.v = w.V
			m.adopted = true
			m.pc = onReadD2
		} else if m.rest.IsEmpty() {
			m.pc = onReadD2
		}
	case onReadD2:
		if d := a.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		if m.adopted {
			m.conv.Start(a.conv.At(m.r, 0, a.n-1), m.v) // n ≥ 2: never immediate
			m.pc = onConv
		} else {
			m.pc = onQuery
		}
	case onConv:
		if m.conv.StepOp() {
			m.v = m.conv.Picked
			if m.conv.Committed {
				m.pc = onWriteD
			} else {
				m.r++
				m.pc = onReadD
			}
		}
	case onWriteD:
		a.d.DirectWrite(m.log, memory.Some(m.v))
		m.decision = m.v
		return sim.MachineDecided
	}
	return sim.MachineRunning
}

// ---------------------------------------------------------------------------
// FD-free attempt

const (
	aaReadD uint8 = iota
	aaConv
	aaWriteD
)

type asyncAttemptMachine struct {
	a        *AsyncAttempt
	me       sim.PID
	v        sim.Value
	r        int
	conv     converge.Machine
	log      *sim.AccessLog
	pc       uint8
	decision sim.Value
}

// Machine returns the FD-free automaton proposing the given value in
// resumable step-machine form.
func (a *AsyncAttempt) Machine(input sim.Value) sim.StepMachine {
	return &asyncAttemptMachine{a: a, v: input}
}

func (m *asyncAttemptMachine) Init(ctx sim.MachineContext) {
	m.me = ctx.ID
	m.log = ctx.Log
	m.conv.Bind(ctx)
	m.r = 1
	m.pc = aaReadD
}

func (m *asyncAttemptMachine) Decision() sim.Value { return m.decision }

func (m *asyncAttemptMachine) Step(_ sim.Time) sim.MachineStatus {
	a := m.a
	switch m.pc {
	case aaReadD:
		if d := a.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		if m.conv.Start(a.conv.At(m.r, 0, a.n-1), m.v) {
			// 0-converge (n = 1): picked = v, never committed; spin.
			m.r++
		} else {
			m.pc = aaConv
		}
	case aaConv:
		if m.conv.StepOp() {
			m.v = m.conv.Picked
			if m.conv.Committed {
				m.pc = aaWriteD
			} else {
				m.r++
				m.pc = aaReadD
			}
		}
	case aaWriteD:
		a.d.DirectWrite(m.log, memory.Some(m.v))
		m.decision = m.v
		return sim.MachineDecided
	}
	return sim.MachineRunning
}

// ---------------------------------------------------------------------------
// Boosted consensus from Ωn and n-process consensus objects

const (
	bReadD uint8 = iota
	bQuery
	bPropose
	bAnnWrite
	bAnnRead
	bReadD2
	bConv
	bWriteD
)

type boostedMachine struct {
	b        *BoostedConsensus
	me       sim.PID
	v        sim.Value
	won      sim.Value
	r        int
	ann      *memory.Array[memory.Opt[sim.Value]]
	l        sim.Set
	rest     sim.Set
	adopted  bool
	conv     converge.Machine
	log      *sim.AccessLog
	seam     *sim.QuerySeam
	pc       uint8
	decision sim.Value
}

// Machine returns the boosted-consensus automaton proposing the given value
// in resumable step-machine form.
func (b *BoostedConsensus) Machine(input sim.Value) sim.StepMachine {
	return &boostedMachine{b: b, v: input}
}

func (m *boostedMachine) Init(ctx sim.MachineContext) {
	m.me = ctx.ID
	m.log = ctx.Log
	m.seam = ctx.Queries
	m.conv.Bind(ctx)
	m.r = 1
	m.pc = bReadD
}

func (m *boostedMachine) Decision() sim.Value { return m.decision }

func (m *boostedMachine) Step(t sim.Time) sim.MachineStatus {
	b := m.b
	switch m.pc {
	case bReadD:
		if d := b.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		m.ann = b.ann.at(m.r)
		m.adopted = false
		m.pc = bQuery
	case bQuery:
		m.l = fd.QueryAt[sim.Set](m.seam, b.omegaN, m.me, t)
		if m.l.Has(m.me) {
			m.pc = bPropose
		} else if m.rest = m.l; m.rest.IsEmpty() {
			m.pc = bReadD2
		} else {
			m.pc = bAnnRead
		}
	case bPropose:
		// Funnel through the object keyed by this exact view.
		m.won = b.cons.At(m.r, m.l).DirectPropose(m.log, m.me, m.v)
		m.pc = bAnnWrite
	case bAnnWrite:
		m.ann.DirectWrite(m.log, m.me, memory.Some(m.won))
		m.v = m.won
		// adopted via the leader path: skip the decision poll (the body
		// breaks out of the adoption loop before it).
		m.conv.Start(b.conv.At(m.r, 0, 1), m.v)
		m.pc = bConv
	case bAnnRead:
		j := m.rest.Min()
		m.rest = m.rest.Remove(j)
		if w := m.ann.DirectRead(m.log, j); w.OK {
			m.v = w.V
			m.adopted = true
			m.pc = bReadD2
		} else if m.rest.IsEmpty() {
			m.pc = bReadD2
		}
	case bReadD2:
		if d := b.d.DirectRead(m.log); d.OK {
			m.decision = d.V
			return sim.MachineDecided
		}
		if m.adopted {
			m.conv.Start(b.conv.At(m.r, 0, 1), m.v)
			m.pc = bConv
		} else {
			m.pc = bQuery
		}
	case bConv:
		if m.conv.StepOp() {
			m.v = m.conv.Picked
			if m.conv.Committed {
				m.pc = bWriteD
			} else {
				m.r++
				m.pc = bReadD
			}
		}
	case bWriteD:
		b.d.DirectWrite(m.log, memory.Some(m.v))
		m.decision = m.v
		return sim.MachineDecided
	}
	return sim.MachineRunning
}
