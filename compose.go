package weakestfd

import (
	"errors"
	"fmt"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// ComposeConfig configures SolveWithStableDetector: set agreement solved
// with an arbitrary stable detector, routed through the paper's generic
// machinery (Figure 3 extraction composed with the Figure 1 protocol).
type ComposeConfig struct {
	// N is the number of processes.
	N int
	// From selects the stable source detector.
	From Detector
	// Proposals are the input values, one per process.
	Proposals []int64
	// CrashAt maps process indices to crash times.
	CrashAt map[int]int64
	// StabilizeAt is the source detector's stabilization time.
	StabilizeAt int64
	// Seed drives noise and the random schedule.
	Seed int64
	// Schedule selects the adversary; default RandomSchedule.
	Schedule ScheduleKind
	// Budget caps the run. Default 2^22 (the composition pays for both the
	// reduction's and the protocol's steps).
	Budget int64
	// Runner selects the simulation engine; the zero value defers to the
	// package default (the machine runner unless SetLegacyRunner).
	Runner Runner
}

// SolveWithStableDetector solves (N−1)-set agreement using the chosen
// stable detector through the generic reduction: each process runs the
// Figure 3 extraction as one parallel task and the Figure 1 protocol —
// querying the emulated Υ — as another. This is Theorem 10 made
// operational: *any* stable non-trivial detector solves set agreement, via
// machinery that knows nothing about the detector beyond its φ_D map.
func SolveWithStableDetector(cfg ComposeConfig) (*SetAgreementResult, error) {
	if cfg.N < 2 || cfg.N > sim.MaxProcs {
		return nil, fmt.Errorf("weakestfd: N=%d out of range", cfg.N)
	}
	if len(cfg.Proposals) != cfg.N {
		return nil, fmt.Errorf("weakestfd: %d proposals for N=%d", len(cfg.Proposals), cfg.N)
	}
	pattern, err := patternOf(cfg.N, cfg.CrashAt)
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = 1 << 22
	}
	ts := sim.Time(cfg.StabilizeAt)

	var (
		oracle sim.Oracle
		phi    core.Phi
	)
	switch cfg.From {
	case Omega:
		oracle = fd.NewOmega(pattern, ts, cfg.Seed)
		phi = core.PhiOmega(cfg.N)
	case OmegaN:
		oracle = fd.NewOmegaF(pattern, cfg.N-1, ts, cfg.Seed)
		phi = core.PhiOmegaF(cfg.N)
	case OmegaF:
		return nil, fmt.Errorf("weakestfd: OmegaF needs an explicit f; use OmegaN for the wait-free case")
	case StableEvPerfect:
		oracle = fd.NewStableEvPerfect(pattern, ts, cfg.Seed)
		phi = core.PhiStableEvPerfect(cfg.N)
	default:
		return nil, fmt.Errorf("weakestfd: unknown detector %v", cfg.From)
	}

	c := core.NewComposed(cfg.N, oracle, phi, converge.UseAtomic)
	proposals := make([]sim.Value, cfg.N)
	for i, v := range cfg.Proposals {
		proposals[i] = sim.Value(v)
	}
	simCfg := sim.Config{
		Pattern:  pattern,
		Schedule: scheduleOf(cfg.Schedule, cfg.Seed),
		Budget:   budget,
	}
	var rep *sim.Report
	var runErr error
	if cfg.Runner.useMachines(false, false) {
		rep, runErr = sim.RunTaskMachines(simCfg, c.MachineTaskSets(proposals))
	} else {
		rep, runErr = sim.RunTasks(simCfg, c.TaskSets(proposals))
	}
	if runErr != nil {
		if errors.Is(runErr, sim.ErrBudgetExhausted) {
			return nil, fmt.Errorf("%w: %v", ErrNoTermination, runErr)
		}
		return nil, runErr
	}
	if err := check.SetAgreement(rep, pattern, c.K(), proposals); err != nil {
		return nil, err
	}
	return newResult(rep, c.K()), nil
}
