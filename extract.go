package weakestfd

import (
	"errors"
	"fmt"

	"weakestfd/internal/check"
	"weakestfd/internal/core"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
)

// Detector names a stable failure detector the Figure 3 reduction can
// extract Υ^f from.
type Detector int

const (
	// Omega is the Chandra–Hadzilacos–Toueg leader oracle (range: one PID).
	Omega Detector = iota
	// OmegaN is Neiger's Ωn: sets of N−1 processes eventually containing a
	// correct one.
	OmegaN
	// OmegaF is the f-resilient family Ω^f with the size given by
	// ExtractConfig.F.
	OmegaF
	// StableEvPerfect eventually outputs exactly the faulty set.
	StableEvPerfect
)

// String implements fmt.Stringer.
func (d Detector) String() string {
	switch d {
	case Omega:
		return "omega"
	case OmegaN:
		return "omegaN"
	case OmegaF:
		return "omegaF"
	case StableEvPerfect:
		return "stable-evP"
	default:
		return fmt.Sprintf("Detector(%d)", int(d))
	}
}

// ExtractConfig configures one Figure 3 extraction run: Υ^f is emulated from
// the chosen stable detector using its φ_D map.
type ExtractConfig struct {
	// N is the number of processes.
	N int
	// F is the resilience (used for OmegaF's size and the Υ^f legality
	// check); default N−1 (the wait-free case, Υ).
	F int
	// From selects the source detector.
	From Detector
	// StabilizeAt is the source detector's stabilization time.
	StabilizeAt int64
	// CrashAt maps process indices to crash times.
	CrashAt map[int]int64
	// Seed drives noise, stable choices and the random schedule.
	Seed int64
	// Schedule selects the adversary; default RandomSchedule.
	Schedule ScheduleKind
	// BatchSlack, if positive, replaces φ_Ω's w(σ) = 0 with this value,
	// exercising the reduction's batch-counting path (Omega only).
	BatchSlack int
	// Budget is the run length in steps (extractions never terminate on
	// their own). Default 60000.
	Budget int64
	// Runner selects the simulation engine; the zero value defers to the
	// package default (the machine runner unless SetLegacyRunner).
	Runner Runner
}

// ExtractResult reports one extraction run.
type ExtractResult struct {
	// Stable is the emulated Υ^f output shared by all correct processes at
	// the end of the run (a set of 0-based process indices).
	Stable []int
	// StableFrom is the time after which no correct process's output
	// changed.
	StableFrom int64
	// Steps is the run length.
	Steps int64
	// LegalErr is nil iff Stable satisfies the Υ^f specification for the
	// run's failure pattern (it always should; exposed for reporting).
	LegalErr error
}

// ExtractUpsilon runs the paper's Figure 3 reduction: it extracts Υ^f from
// the chosen stable detector and verifies the extracted output satisfies
// the Υ^f specification.
func ExtractUpsilon(cfg ExtractConfig) (*ExtractResult, error) {
	if cfg.N < 2 || cfg.N > sim.MaxProcs {
		return nil, fmt.Errorf("weakestfd: N=%d out of range", cfg.N)
	}
	f := cfg.F
	if f == 0 {
		f = cfg.N - 1
	}
	if f < 1 || f >= cfg.N {
		return nil, fmt.Errorf("weakestfd: F=%d out of range [1,%d]", f, cfg.N-1)
	}
	pattern, err := patternOf(cfg.N, cfg.CrashAt)
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = 60_000
	}
	ts := sim.Time(cfg.StabilizeAt)

	var (
		oracle sim.Oracle
		phi    core.Phi
	)
	switch cfg.From {
	case Omega:
		oracle = fd.NewOmega(pattern, ts, cfg.Seed)
		phi = core.PhiOmega(cfg.N)
		if cfg.BatchSlack > 0 {
			phi = core.PhiOmegaSlack(cfg.N, cfg.BatchSlack)
		}
	case OmegaN:
		if f != cfg.N-1 {
			return nil, fmt.Errorf("weakestfd: OmegaN extracts the wait-free Υ (its complement sets have size 1); leave F unset, or use OmegaF for F=%d", f)
		}
		oracle = fd.NewOmegaF(pattern, cfg.N-1, ts, cfg.Seed)
		phi = core.PhiOmegaF(cfg.N)
	case OmegaF:
		oracle = fd.NewOmegaF(pattern, f, ts, cfg.Seed)
		phi = core.PhiOmegaF(cfg.N)
	case StableEvPerfect:
		oracle = fd.NewStableEvPerfect(pattern, ts, cfg.Seed)
		phi = core.PhiStableEvPerfect(cfg.N)
	default:
		return nil, fmt.Errorf("weakestfd: unknown detector %v", cfg.From)
	}

	ex := core.NewExtraction(cfg.N, oracle, phi)
	trace := check.NewOutputTrace[sim.Set](cfg.N, ex.Output)
	simCfg := sim.Config{
		Pattern:  pattern,
		Schedule: scheduleOf(cfg.Schedule, cfg.Seed),
		Budget:   budget,
		StopWhen: trace.Hook(),
	}
	var rep *sim.Report
	var runErr error
	if cfg.Runner.useMachines(false, false) {
		machines := make([]sim.StepMachine, cfg.N)
		for i := range machines {
			machines[i] = ex.Machine()
		}
		rep, runErr = sim.RunMachines(simCfg, machines)
	} else {
		bodies := make([]sim.Body, cfg.N)
		for i := range bodies {
			bodies[i] = ex.Body()
		}
		rep, runErr = sim.Run(simCfg, bodies)
	}
	if runErr != nil && !errors.Is(runErr, sim.ErrBudgetExhausted) {
		return nil, runErr
	}

	stable, from, err := trace.StableFrom(pattern.Correct())
	if err != nil {
		return nil, fmt.Errorf("weakestfd: extracted outputs did not agree: %w", err)
	}
	spec := core.UpsilonF(cfg.N, f)
	if f == cfg.N-1 {
		spec = core.Upsilon(cfg.N)
	}
	legalErr := spec.LegalStable(pattern, stable)
	if legalErr != nil {
		return nil, fmt.Errorf("weakestfd: extracted output %v illegal: %w", stable, legalErr)
	}
	res := &ExtractResult{
		StableFrom: int64(from),
		Steps:      rep.Steps,
		LegalErr:   legalErr,
	}
	for _, p := range stable.Members() {
		res.Stable = append(res.Stable, int(p))
	}
	return res, nil
}

// FalsifyConfig configures a Theorem 1/5 adversary run against a candidate
// Ω^f-from-Υ^f extractor.
type FalsifyConfig struct {
	// N is the number of processes (≥ 3) and F the target detector size
	// (2 ≤ F ≤ N−1; F = N−1 is Theorem 1's Ωn case).
	N, F int
	// Candidate names the extractor: "complement", "staleness" or "hybrid".
	Candidate string
	// TargetSwitches is how many forced output changes to demonstrate.
	TargetSwitches int
	// Budget caps the run.
	Budget int64
}

// FalsifyResult reports how the adversary falsified the candidate.
type FalsifyResult struct {
	// Switches is the number of forced output transitions.
	Switches int
	// Stuck reports the candidate stopped moving; ViolationErr then holds
	// why its stable output is illegal in the completed run.
	Stuck        bool
	ViolationErr error
	// Steps is the run length.
	Steps int64
	// Falsified is true when the theorem's prediction held: the candidate
	// either switched TargetSwitches times or violated Ω^f.
	Falsified bool
}

// Falsify runs the Theorem 1/5 adversary against a named candidate
// extractor.
func Falsify(cfg FalsifyConfig) (*FalsifyResult, error) {
	var ext core.Extractor
	switch cfg.Candidate {
	case "complement":
		ext = core.ComplementExtractor()
	case "staleness":
		ext = core.StalenessExtractor()
	case "hybrid":
		ext = core.HybridExtractor()
	default:
		return nil, fmt.Errorf("weakestfd: unknown candidate %q (want complement|staleness|hybrid)", cfg.Candidate)
	}
	if cfg.N < 3 || cfg.F < 2 || cfg.F > cfg.N-1 {
		return nil, fmt.Errorf("weakestfd: adversary needs N ≥ 3 and 2 ≤ F ≤ N−1, got N=%d F=%d", cfg.N, cfg.F)
	}
	target := cfg.TargetSwitches
	if target == 0 {
		target = 20
	}
	res := core.RunAdversary(core.AdversaryConfig{
		N: cfg.N, F: cfg.F,
		Extractor:      ext,
		TargetSwitches: target,
		Budget:         cfg.Budget,
	})
	out := &FalsifyResult{
		Switches:  res.Switches,
		Stuck:     res.Stuck,
		Steps:     res.Steps,
		Falsified: res.Falsified(target),
	}
	if res.Violation != nil {
		out.ViolationErr = res.Violation.Err
	}
	return out, nil
}
