package weakestfd

import "testing"

func TestSolveWithTimingAssumptions(t *testing.T) {
	for _, tc := range []struct {
		name    string
		crashAt map[int]int64
	}{
		{"failfree", nil},
		{"one-crash", map[int]int64{2: 600}},
		{"two-crash", map[int]int64{0: 500, 3: 900}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := SolveWithTimingAssumptions(TimedConfig{
				N:         4,
				Proposals: []int64{10, 20, 30, 40},
				CrashAt:   tc.crashAt,
				Seed:      3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Distinct) > res.K {
				t.Fatalf("agreement: %v > %d", res.Distinct, res.K)
			}
		})
	}
}

func TestSolveWithTimingAssumptionsDeterminism(t *testing.T) {
	cfg := TimedConfig{N: 4, Proposals: []int64{1, 2, 3, 4}, Seed: 7}
	a, err := SolveWithTimingAssumptions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveWithTimingAssumptions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
}

func TestSolveWithTimingAssumptionsValidation(t *testing.T) {
	if _, err := SolveWithTimingAssumptions(TimedConfig{N: 1, Proposals: []int64{1}}); err == nil {
		t.Error("expected error for N=1")
	}
	if _, err := SolveWithTimingAssumptions(TimedConfig{N: 3, Proposals: []int64{1}}); err == nil {
		t.Error("expected error for proposal mismatch")
	}
}
