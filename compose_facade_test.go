package weakestfd

import "testing"

func TestSolveWithStableDetector(t *testing.T) {
	for _, d := range []Detector{Omega, OmegaN, StableEvPerfect} {
		t.Run(d.String(), func(t *testing.T) {
			res, err := SolveWithStableDetector(ComposeConfig{
				N:           4,
				From:        d,
				Proposals:   []int64{10, 20, 30, 40},
				CrashAt:     map[int]int64{2: 70},
				StabilizeAt: 100,
				Seed:        2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Distinct) > res.K {
				t.Fatalf("agreement: %v > %d", res.Distinct, res.K)
			}
		})
	}
}

func TestSolveWithStableDetectorDeterminism(t *testing.T) {
	cfg := ComposeConfig{
		N: 4, From: Omega, Proposals: []int64{1, 2, 3, 4},
		StabilizeAt: 80, Seed: 5,
	}
	a, err := SolveWithStableDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveWithStableDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
}

func TestSolveWithStableDetectorValidation(t *testing.T) {
	cases := map[string]ComposeConfig{
		"small N":    {N: 1, Proposals: []int64{1}},
		"bad props":  {N: 3, Proposals: []int64{1}},
		"omegaF ask": {N: 3, From: OmegaF, Proposals: []int64{1, 2, 3}},
		"unknown":    {N: 3, From: Detector(42), Proposals: []int64{1, 2, 3}},
	}
	for name, cfg := range cases {
		if _, err := SolveWithStableDetector(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
