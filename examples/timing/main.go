// No oracle anywhere: set agreement from timing assumptions alone.
//
// The paper's introduction observes that in real systems failure
// information comes from timing: "such timing assumptions circumvent
// asynchronous impossibilities by providing processes with information
// about failures, typically through time-out (or heart-beat) mechanisms".
// This example walks that whole arc inside the simulator:
//
//	partial synchrony  →  heartbeat/timeout Υ implementation  →  Figure 1
//
// Each process runs the heartbeat monitor as one parallel task and the
// set-agreement protocol as another, under an eventually synchronous
// schedule. After the schedule's global stabilization time the monitor's
// suspected set settles on exactly the crashed processes, which is a legal
// Υ output — and the protocol decides.
//
// Run with: go run ./examples/timing
package main

import (
	"fmt"
	"log"

	"weakestfd"
)

func main() {
	fmt.Println("set agreement from timing assumptions (no failure detector oracle)")
	fmt.Println()
	fmt.Println("  scenario        GST    steps   distinct decisions (≤ 4)")
	fmt.Println("  --------------  -----  -----   -------------------------")
	for _, tc := range []struct {
		name    string
		gst     int64
		crashAt map[int]int64
	}{
		{"failure-free", 500, nil},
		{"p3 crashes", 500, map[int]int64{2: 400}},
		{"two crashes", 2000, map[int]int64{0: 300, 4: 800}},
	} {
		res, err := weakestfd.SolveWithTimingAssumptions(weakestfd.TimedConfig{
			N:         5,
			Proposals: []int64{11, 22, 33, 44, 55},
			CrashAt:   tc.crashAt,
			GST:       tc.gst,
			Bound:     8,
			Seed:      4,
		})
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		fmt.Printf("  %-14s  %5d  %5d   %v\n", tc.name, tc.gst, res.Steps, res.Distinct)
	}
	fmt.Println()
	fmt.Println("under *pure* asynchrony the same heartbeat implementation can be kept")
	fmt.Println("unstable forever (see TestHeartbeatUpsilonDefeatedByAsynchrony): that")
	fmt.Println("gap is exactly why Υ is a non-trivial failure detector.")
}
