// f-resilient set agreement (the paper's Figure 2, Theorem 6): a 6-process
// system sweeps the resilience parameter f. For each f, at most f processes
// crash and Υ^f outputs sets of at least n+1−f processes; the protocol
// decides at most f distinct values. The f = 1 row is consensus; the
// f = n row is the wait-free case of Figure 1.
//
// Run with: go run ./examples/fresilient
package main

import (
	"fmt"
	"log"

	"weakestfd"
)

func main() {
	const n = 6
	fmt.Println("f-resilient f-set agreement with Υ^f (paper: Figure 2)")
	fmt.Println()
	fmt.Println("  f   crashes   steps   distinct decisions (≤ f)")
	fmt.Println("  -   -------   -----   ------------------------")
	for f := 1; f < n; f++ {
		crashAt := make(map[int]int64, f)
		for i := 0; i < f; i++ {
			crashAt[i] = int64(15 * (i + 1)) // staggered crashes
		}
		res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
			N:           n,
			F:           f,
			Algorithm:   weakestfd.UpsilonFFig2,
			Proposals:   []int64{11, 22, 33, 44, 55, 66},
			CrashAt:     crashAt,
			StabilizeAt: 150,
			Seed:        int64(f),
			Schedule:    weakestfd.RoundRobinSchedule,
		})
		if err != nil {
			log.Fatalf("f=%d: %v", f, err)
		}
		fmt.Printf("  %d   %7d   %5d   %v\n", f, len(res.Crashed), res.Steps, res.Distinct)
	}
	fmt.Println()
	fmt.Println("every row terminated, decided ≤ f proposed values — despite")
	fmt.Println("f-set agreement being impossible in E_f without failure information.")
}
