// Minimality, end to end: solve set agreement using an arbitrary stable
// failure detector, without any detector-specific algorithm.
//
// Theorem 10 says every stable non-trivial detector D can be transformed
// into Υ (Figure 3); Theorem 2 says Υ solves set agreement (Figure 1).
// Composing the two gives a *generic* solver: each process runs the
// reduction as one parallel task and the agreement protocol — querying the
// emulated Υ — as another. The pipeline below solves the task with Ω, with
// Ωn and with an eventually-perfect detector, touching only their φ_D maps.
//
// Run with: go run ./examples/composed
package main

import (
	"fmt"
	"log"

	"weakestfd"
)

func main() {
	fmt.Println("set agreement via Figure 3 ∘ Figure 1 (Theorem 10 + Theorem 2)")
	fmt.Println()
	fmt.Println("  source detector   steps   distinct decisions (≤ 3)")
	fmt.Println("  ---------------   -----   -------------------------")
	for _, d := range []weakestfd.Detector{
		weakestfd.Omega,
		weakestfd.OmegaN,
		weakestfd.StableEvPerfect,
	} {
		res, err := weakestfd.SolveWithStableDetector(weakestfd.ComposeConfig{
			N:           4,
			From:        d,
			Proposals:   []int64{10, 20, 30, 40},
			CrashAt:     map[int]int64{1: 55},
			StabilizeAt: 120,
			Seed:        3,
		})
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		fmt.Printf("  %-17v %5d   %v\n", d, res.Steps, res.Distinct)
	}
	fmt.Println()
	fmt.Println("the solver never saw the detectors — only their φ_D maps. that is")
	fmt.Println("the paper's minimality result: Υ sits below every stable detector.")
}
