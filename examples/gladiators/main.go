// Gladiators and citizens: a narrated run of the paper's Figure 1 protocol
// on the paper's own 3-process example (Section 4): p1 fails while p2 and
// p3 are correct, and Υ eventually outputs a fixed set U ≠ {p2, p3}.
//
// Processes inside U are "gladiators": they fight to shed one of their
// values through (|U|−1)-converge. Processes outside U are "citizens": they
// contribute their value to the round register D[r] and move on. The
// protocol terminates because Υ guarantees that, eventually, either a
// gladiator is dead or a citizen is alive.
//
// Run with: go run ./examples/gladiators
package main

import (
	"fmt"
	"log"

	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/sim"
)

func main() {
	const n = 3
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{0: 40}) // p1 crashes

	// Υ stabilizes at step 60 on U = {p1, p2}: p1 is a gladiator that will
	// die, p3 is a citizen that will live — both escape hatches on display.
	spec := core.Upsilon(n)
	u := sim.SetOf(0, 1)
	if err := spec.LegalStable(pattern, u); err != nil {
		log.Fatal(err)
	}
	h := spec.HistoryWithStable(pattern, 60, 7, u)

	g := core.NewFig1(n, h, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = g.Body(sim.Value(100 + i))
	}

	fmt.Printf("pattern: %v   stable Υ output: %v (≠ correct %v)\n\n",
		pattern, u, pattern.Correct())

	var last sim.Time
	rep, err := sim.Run(sim.Config{
		Pattern:  pattern,
		Schedule: sim.RoundRobin(),
		Budget:   1 << 20,
		Tracer: func(e sim.Event) {
			// Print a compressed trace: one line per step, eliding yields.
			if e.Label == "yield" {
				return
			}
			role := "?"
			switch {
			case pattern.CrashedBy(e.P, e.T):
				role = "dead"
			case u.Has(e.P):
				role = "gladiator"
			default:
				role = "citizen"
			}
			if e.T-last > 1 {
				fmt.Println("  ...")
			}
			last = e.T
			if e.T <= 40 || e.Label == "write D" || e.Label == "read D" {
				fmt.Printf("  t=%-4d %v (%s): %s\n", e.T, e.P, role, e.Label)
			}
		},
	}, bodies)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\noutcome:")
	fmt.Printf("  crashed: %v\n", rep.Crashed)
	for _, p := range pattern.Correct().Members() {
		fmt.Printf("  %v decided %d at t=%d\n", p, rep.Decided[p], rep.DecidedAt[p])
	}
	fmt.Printf("  distinct decisions: %v (bound ≤ %d)\n", rep.DecidedValues(), g.K())
}
