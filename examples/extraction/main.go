// Minimality in action (the paper's Figure 3, Theorem 10): Υ^f is weaker
// than *any* stable failure detector that circumvents an f-resilient
// impossibility. This example runs the generic extraction against four
// different stable detectors — from the barely-stronger Ωn down to the
// far-stronger eventually-perfect detector — and shows each one yield a
// legal Υ output: a set of processes that is not the set of correct
// processes, agreed by all correct processes.
//
// Run with: go run ./examples/extraction
package main

import (
	"fmt"
	"log"

	"weakestfd"
)

func main() {
	const n = 4
	detectors := []weakestfd.Detector{
		weakestfd.Omega,
		weakestfd.OmegaN,
		weakestfd.OmegaF,
		weakestfd.StableEvPerfect,
	}

	fmt.Println("extracting Υ from stable detectors (paper: Figure 3, Theorem 10)")
	fmt.Printf("system: n+1 = %d processes, p3 crashes at step 400\n\n", n)
	fmt.Println("  source detector   extracted stable set   stabilized at step")
	fmt.Println("  ---------------   --------------------   ------------------")
	for _, d := range detectors {
		res, err := weakestfd.ExtractUpsilon(weakestfd.ExtractConfig{
			N:           n,
			F:           n - 1, // wait-free: extract Υ itself
			From:        d,
			StabilizeAt: 120,
			CrashAt:     map[int]int64{2: 400},
			Seed:        3,
		})
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		set := "{"
		for i, p := range res.Stable {
			if i > 0 {
				set += ","
			}
			set += fmt.Sprintf("p%d", p+1)
		}
		set += "}"
		fmt.Printf("  %-17v %-22s %d\n", d, set, res.StableFrom)
	}

	fmt.Println()
	fmt.Println("each extracted set is a legal Υ output: eventually permanent,")
	fmt.Println("identical at all correct processes, and ≠ the correct set.")

	// The batch-counting path: a φ map with w(σ) > 0 makes the reduction
	// wait for observable full batches of the stable value before
	// committing to the excluded set.
	res, err := weakestfd.ExtractUpsilon(weakestfd.ExtractConfig{
		N:           n,
		From:        weakestfd.Omega,
		BatchSlack:  3,
		StabilizeAt: 120,
		Seed:        4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith w(σ) = 3 (batch counting): stable set of size %d at step %d\n",
		len(res.Stable), res.StableFrom)
}
