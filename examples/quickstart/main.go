// Quickstart: solve wait-free set agreement with the failure detector Υ.
//
// Four processes propose four distinct values; one process crashes mid-run;
// Υ only stabilizes after 100 steps of arbitrary noise. The Figure 1
// protocol still guarantees that every surviving process decides, that at
// most three distinct values are decided, and that every decision was
// proposed — a task that is impossible without failure information.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"weakestfd"
)

func main() {
	res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
		N:           4,
		Proposals:   []int64{10, 20, 30, 40},
		CrashAt:     map[int]int64{3: 25}, // p4 crashes at step 25
		StabilizeAt: 100,                  // Υ emits noise before step 100
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("n-set agreement with Υ (paper: Figure 1, Theorem 2)")
	fmt.Printf("  steps taken:        %d\n", res.Steps)
	fmt.Printf("  crashed processes:  %v\n", res.Crashed)
	for p, v := range res.Decisions {
		fmt.Printf("  p%d decided:         %d\n", p+1, v)
	}
	fmt.Printf("  distinct decisions: %v (bound: ≤ %d)\n", res.Distinct, res.K)
}
