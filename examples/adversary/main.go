// The impossibility side (the paper's Theorems 1 and 5): Υ^f cannot be
// transformed into Ω^f. The proof constructs, against any candidate
// transformation, a run in which the candidate's output never stabilizes —
// or, if it does stabilize, a completed run in which its stable output
// violates the Ω^f specification.
//
// This example unleashes that adversary on three natural candidates. Every
// one of them is falsified, exactly as the theorems predict: "staleness"
// and "hybrid" are forced to change their output forever, while
// "complement" freezes and gets a counterexample run in which its chosen
// set contains no correct process.
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"weakestfd"
)

func main() {
	const (
		n      = 5
		target = 12
	)
	fmt.Println("falsifying Ωn-from-Υ extractors (paper: Theorem 1)")
	fmt.Printf("system: n+1 = %d processes, Υ pinned to {p1..p%d}\n\n", n, n-1)
	fmt.Println("  candidate    outcome")
	fmt.Println("  ---------    -------")
	for _, cand := range []string{"complement", "staleness", "hybrid"} {
		res, err := weakestfd.Falsify(weakestfd.FalsifyConfig{
			N: n, F: n - 1,
			Candidate:      cand,
			TargetSwitches: target,
		})
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Stuck:
			fmt.Printf("  %-12s stuck after %d switches; completed run violates Ωn:\n               %v\n",
				cand, res.Switches, res.ViolationErr)
		case res.Switches >= target:
			fmt.Printf("  %-12s forced to change its output %d times (never stabilizes)\n",
				cand, res.Switches)
		default:
			fmt.Printf("  %-12s survived?! switches=%d (this should be impossible)\n",
				cand, res.Switches)
		}
	}
	fmt.Println()
	fmt.Println("Theorem 5 (f-resilient generalization, f = 2):")
	res, err := weakestfd.Falsify(weakestfd.FalsifyConfig{
		N: n, F: 2, Candidate: "staleness", TargetSwitches: target,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  staleness against Ω²: %d forced switches in %d steps\n",
		res.Switches, res.Steps)
	fmt.Println()
	fmt.Println("together with the set-agreement protocol (Figure 1), this separates")
	fmt.Println("Υ from Ωn and disproves the conjecture of Raynal–Travers (Corollary 3).")
}
