package weakestfd_test

// Benchmarks, one family per experiment table of EXPERIMENTS.md (and hence
// per figure/theorem of the paper). Each op is one full simulated run, so
// ns/op measures the wall cost of regenerating a data point; the simulated
// step counts — the model-level metric the tables report — are exposed via
// the custom "steps/op" metric.
//
// Regenerate every table with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/paperbench

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"weakestfd"
	"weakestfd/internal/agreement"
	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/fd"
	"weakestfd/internal/lab"
	"weakestfd/internal/lab/scenarios"
	"weakestfd/internal/memory"
	"weakestfd/internal/sim"
)

// benchProposals returns n distinct proposals.
func benchProposals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(100 + i)
	}
	return out
}

// BenchmarkFig1 is E1: the Υ-based n-set-agreement protocol across system
// sizes and failure patterns.
func BenchmarkFig1(b *testing.B) {
	for _, n := range []int{3, 5, 9, 17} {
		for _, crashes := range []int{0, n - 1} {
			name := fmt.Sprintf("n%d/crash%d", n, crashes)
			b.Run(name, func(b *testing.B) {
				crashAt := make(map[int]int64, crashes)
				for i := 0; i < crashes; i++ {
					crashAt[i+1] = int64(9 * (i + 1))
				}
				var steps int64
				for i := 0; i < b.N; i++ {
					res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
						N: n, Proposals: benchProposals(n), CrashAt: crashAt,
						StabilizeAt: 150, Seed: int64(i), Budget: 1 << 22,
					})
					if err != nil {
						b.Fatal(err)
					}
					steps += res.Steps
				}
				b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
			})
		}
	}
}

// BenchmarkFig2 is E2: the Υ^f-based f-set-agreement protocol across the
// resilience grid.
func BenchmarkFig2(b *testing.B) {
	for _, tc := range []struct{ n, f int }{{4, 1}, {6, 2}, {6, 5}, {10, 4}} {
		b.Run(fmt.Sprintf("n%d/f%d", tc.n, tc.f), func(b *testing.B) {
			crashAt := make(map[int]int64, tc.f)
			for i := 0; i < tc.f; i++ {
				crashAt[i] = int64(13 * (i + 1))
			}
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
					N: tc.n, F: tc.f, Algorithm: weakestfd.UpsilonFFig2,
					Proposals: benchProposals(tc.n), CrashAt: crashAt,
					StabilizeAt: 150, Seed: int64(i), Budget: 1 << 22,
				})
				if err != nil {
					b.Fatal(err)
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkExtraction is E3: the Figure 3 reduction from each stable
// detector.
func BenchmarkExtraction(b *testing.B) {
	for _, det := range []weakestfd.Detector{weakestfd.Omega, weakestfd.OmegaN, weakestfd.StableEvPerfect} {
		b.Run(det.String(), func(b *testing.B) {
			var lag int64
			for i := 0; i < b.N; i++ {
				res, err := weakestfd.ExtractUpsilon(weakestfd.ExtractConfig{
					N: 5, From: det, StabilizeAt: 150,
					Seed: int64(i), Budget: 40_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				lag += res.StableFrom - 150
			}
			b.ReportMetric(float64(lag)/float64(b.N), "stabilization-lag-steps/op")
		})
	}
}

// BenchmarkAdversaryThm1 is E4: forcing candidate Ωn extractors to switch.
func BenchmarkAdversaryThm1(b *testing.B) {
	for _, ext := range core.AllExtractors() {
		b.Run(ext.Name, func(b *testing.B) {
			falsified := 0
			for i := 0; i < b.N; i++ {
				res := core.RunAdversary(core.AdversaryConfig{
					N: 5, F: 4, Extractor: ext,
					TargetSwitches: 20, Budget: 1 << 21,
				})
				if res.Falsified(20) {
					falsified++
				}
			}
			if falsified != b.N {
				b.Fatalf("falsified %d/%d", falsified, b.N)
			}
		})
	}
}

// BenchmarkAdversaryThm5 is E5: the f-resilient generalization.
func BenchmarkAdversaryThm5(b *testing.B) {
	for _, f := range []int{2, 4} {
		b.Run(fmt.Sprintf("f%d", f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.RunAdversary(core.AdversaryConfig{
					N: 6, F: f, Extractor: core.StalenessExtractor(),
					TargetSwitches: 20, Budget: 1 << 21,
				})
				if !res.Falsified(20) {
					b.Fatal("not falsified")
				}
			}
		})
	}
}

// BenchmarkEquivalence2 is E6: the two-process Υ ≡ Ω reductions.
func BenchmarkEquivalence2(b *testing.B) {
	pattern := sim.CrashPattern(2, map[sim.PID]sim.Time{0: 30})
	b.Run("omega-to-upsilon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			omega := fd.NewOmega(pattern, 60, int64(i))
			ups := core.ComplementOfOmega(omega, 2)
			if _, _, err := fd.CheckStable(ups, pattern, 300, core.Upsilon(2).Legal(pattern)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("upsilon-to-omega", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ups := core.Upsilon(2).History(pattern, 60, int64(i))
			om := core.OmegaFromUpsilon2(ups)
			if _, _, err := fd.CheckStable(om, pattern, 300, fd.OmegaLegal(pattern)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUpsilon1ToOmega is E7: the E_1 extraction of Ω from Υ¹.
func BenchmarkUpsilon1ToOmega(b *testing.B) {
	n := 4
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{2: 120})
	for i := 0; i < b.N; i++ {
		spec := core.UpsilonF(n, 1)
		h := spec.HistoryWithStable(pattern, 100, int64(i), sim.FullSet(n))
		red := core.NewUpsilon1ToOmega(n, h)
		bodies := make([]sim.Body, n)
		for j := range bodies {
			bodies[j] = red.Body()
		}
		trace := check.NewOutputTrace[memory.Opt[sim.PID]](n, func() []memory.Opt[sim.PID] {
			out := make([]memory.Opt[sim.PID], n)
			for j := range out {
				out[j] = red.OutputAt(sim.PID(j))
			}
			return out
		})
		_, err := sim.Run(sim.Config{
			Pattern: pattern, Schedule: sim.NewRandom(int64(i)),
			Budget: 20_000, StopWhen: trace.Hook(),
		}, bodies)
		if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
			b.Fatal(err)
		}
		stable, _, err := trace.StableFrom(pattern.Correct())
		if err != nil || !stable.OK || !pattern.Correct().Has(stable.V) {
			b.Fatalf("bad leader %+v (%v)", stable, err)
		}
	}
}

// BenchmarkComplementReductions is E8: the local Ω^f → Υ^f reductions.
func BenchmarkComplementReductions(b *testing.B) {
	n := 6
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{1: 40})
	for i := 0; i < b.N; i++ {
		omegaN := fd.NewOmegaF(pattern, n-1, 80, int64(i))
		ups := core.ComplementOfOmegaF(omegaN, n)
		if _, _, err := fd.CheckStable(ups, pattern, 300, core.Upsilon(n).Legal(pattern)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImpossibility is E9: budget-bounded livelock detection for the
// FD-free attempt under the adversarial schedule.
func BenchmarkImpossibility(b *testing.B) {
	b.Run("async-livelock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
				N: 4, Algorithm: weakestfd.AsyncAttempt, Proposals: benchProposals(4),
				Schedule: weakestfd.RoundRobinSchedule, Budget: 20_000,
			})
			if !errors.Is(err, weakestfd.ErrNoTermination) {
				b.Fatalf("expected livelock, got %v", err)
			}
		}
	})
	b.Run("fig1-control", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
				N: 4, Proposals: benchProposals(4),
				Schedule: weakestfd.RoundRobinSchedule, Seed: int64(i), Budget: 20_000,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSnapshot is E10a: atomic vs registers-only snapshots
// inside Figure 1.
func BenchmarkAblationSnapshot(b *testing.B) {
	for _, reg := range []bool{false, true} {
		name := "atomic"
		if reg {
			name = "afek-registers-only"
		}
		b.Run(name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
					N: 4, Proposals: benchProposals(4), CrashAt: map[int]int64{1: 30},
					StabilizeAt: 100, Seed: int64(i),
					RegistersOnly: reg, Budget: 1 << 23,
				})
				if err != nil {
					b.Fatal(err)
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkAblationStabilization is E10b: decision latency vs Υ
// stabilization time under worst-case legal noise.
func BenchmarkAblationStabilization(b *testing.B) {
	for _, ts := range []sim.Time{0, 500, 5000} {
		b.Run(fmt.Sprintf("ts%d", ts), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				n := 5
				pattern := sim.FailFree(n)
				h := core.Upsilon(n).HistoryWorstCase(pattern, ts, int64(i))
				g := core.NewFig1(n, h, converge.UseAtomic)
				bodies := make([]sim.Body, n)
				for j := range bodies {
					bodies[j] = g.Body(sim.Value(100 + j))
				}
				rep, err := sim.Run(sim.Config{
					Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 23,
				}, bodies)
				if err != nil {
					b.Fatal(err)
				}
				steps += rep.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkAblationConverge is E10c: k-converge cost vs k and
// implementation.
func BenchmarkAblationConverge(b *testing.B) {
	n := 6
	for _, impl := range []converge.Impl{converge.UseAtomic, converge.UseAfek} {
		for _, k := range []int{1, 3, 5} {
			b.Run(fmt.Sprintf("%v/k%d", impl, k), func(b *testing.B) {
				var steps int64
				for i := 0; i < b.N; i++ {
					inst := converge.NewInstance("c", n, k, impl)
					bodies := make([]sim.Body, n)
					for j := range bodies {
						v := sim.Value(j)
						bodies[j] = func(p *sim.Proc) (sim.Value, bool) {
							out, _ := inst.Converge(p, v)
							return out, true
						}
					}
					rep, err := sim.Run(sim.Config{
						Pattern: sim.FailFree(n), Schedule: sim.NewRandom(int64(i)),
						Budget: 1 << 20,
					}, bodies)
					if err != nil {
						b.Fatal(err)
					}
					steps += rep.Steps
				}
				b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
			})
		}
	}
}

// BenchmarkAblationBaselines is E10d: Figure 1 vs the Ωn and Ω baselines on
// the same task and pattern.
func BenchmarkAblationBaselines(b *testing.B) {
	for _, alg := range []weakestfd.Algorithm{weakestfd.UpsilonFig1, weakestfd.OmegaNBaseline, weakestfd.OmegaConsensus, weakestfd.OmegaNBoosted} {
		b.Run(alg.String(), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
					N: 5, Algorithm: alg, Proposals: benchProposals(5),
					CrashAt: map[int]int64{2: 25}, StabilizeAt: 120,
					Seed: int64(i), Budget: 1 << 22,
				})
				if err != nil {
					b.Fatal(err)
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkComposed measures the Figure 3 ∘ Figure 1 composition: solving
// set agreement through the generic reduction from each stable detector.
func BenchmarkComposed(b *testing.B) {
	for _, det := range []weakestfd.Detector{weakestfd.Omega, weakestfd.OmegaN, weakestfd.StableEvPerfect} {
		b.Run(det.String(), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := weakestfd.SolveWithStableDetector(weakestfd.ComposeConfig{
					N: 4, From: det, Proposals: benchProposals(4),
					StabilizeAt: 100, Seed: int64(i), Budget: 1 << 22,
				})
				if err != nil {
					b.Fatal(err)
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkTimingImplementation is E11: set agreement from timing
// assumptions alone (heartbeat Υ implementation + Figure 1 under an
// eventually synchronous schedule).
func BenchmarkTimingImplementation(b *testing.B) {
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := weakestfd.SolveWithTimingAssumptions(weakestfd.TimedConfig{
			N: 4, Proposals: benchProposals(4), CrashAt: map[int]int64{1: 300},
			GST: 800, Bound: 8, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
}

// BenchmarkAfekSnapshotOps measures the raw substrate: snapshot operation
// cost in simulator steps for both implementations.
func BenchmarkAfekSnapshotOps(b *testing.B) {
	for _, impl := range []string{"atomic", "afek"} {
		b.Run(impl, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				n := 5
				var snap memory.Snapshot[sim.Value]
				if impl == "afek" {
					snap = memory.NewAfekSnapshot[sim.Value]("s", n)
				} else {
					snap = memory.NewAtomicSnapshot[sim.Value]("s", n)
				}
				bodies := make([]sim.Body, n)
				for j := range bodies {
					me := sim.PID(j)
					bodies[j] = func(p *sim.Proc) (sim.Value, bool) {
						for k := 0; k < 4; k++ {
							snap.Update(p, me, sim.Value(k))
							snap.Scan(p)
						}
						return 0, true
					}
				}
				rep, err := sim.Run(sim.Config{
					Pattern: sim.FailFree(n), Schedule: sim.NewRandom(int64(i)),
					Budget: 1 << 20,
				}, bodies)
				if err != nil {
					b.Fatal(err)
				}
				steps += rep.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkAgreementBaselines exercises the agreement substrate directly.
func BenchmarkAgreementBaselines(b *testing.B) {
	n := 5
	pattern := sim.CrashPattern(n, map[sim.PID]sim.Time{1: 30})
	b.Run("omega-consensus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			omega := fd.NewOmega(pattern, 100, int64(i))
			c := agreement.NewOmegaConsensus(n, omega, converge.UseAtomic)
			bodies := make([]sim.Body, n)
			for j := range bodies {
				bodies[j] = c.Body(sim.Value(10 + j))
			}
			if _, err := sim.Run(sim.Config{
				Pattern: pattern, Schedule: sim.NewRandom(int64(i)), Budget: 1 << 21,
			}, bodies); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("omegan-setagreement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			omegaN := fd.NewOmegaF(pattern, n-1, 100, int64(i))
			a := agreement.NewOmegaNSetAgreement(n, omegaN, converge.UseAtomic)
			bodies := make([]sim.Body, n)
			for j := range bodies {
				bodies[j] = a.Body(sim.Value(10 + j))
			}
			if _, err := sim.Run(sim.Config{
				Pattern: pattern, Schedule: sim.NewRandom(int64(i)), Budget: 1 << 21,
			}, bodies); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLabMatrix drives the trimmed scenario matrix through the
// internal/lab engine across both execution engines (the default step-machine
// runner and the legacy goroutine runner) and across worker counts. The
// machine/goroutine ns/op ratio is the step-machine speedup; the
// workers1/workersN ratio is the pool's parallel speedup. The aggregate
// results must be identical across all four cells — asserted via the
// fingerprints after the timed loops.
func BenchmarkLabMatrix(b *testing.B) {
	scs, err := lab.ExpandAll(scenarios.Quick(2))
	if err != nil {
		b.Fatal(err)
	}
	runners := []struct {
		name   string
		legacy bool
	}{
		{"machine", false},
		{"goroutine", true},
	}
	fingerprints := make(map[string]string)
	for _, runner := range runners {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			name := fmt.Sprintf("%s/workers%d", runner.name, workers)
			b.Run(name, func(b *testing.B) {
				weakestfd.SetLegacyRunner(runner.legacy)
				defer weakestfd.SetLegacyRunner(false)
				b.ReportAllocs()
				var rep *lab.Report
				for i := 0; i < b.N; i++ {
					rep = lab.Run(scs, lab.Options{Workers: workers})
					if rep.Failed != 0 {
						b.Fatalf("%d runs failed", rep.Failed)
					}
				}
				b.StopTimer()
				fingerprints[name] = rep.Fingerprint()
				b.ReportMetric(float64(len(scs)), "scenarios/op")
			})
		}
	}
	var first, firstName string
	for name, fp := range fingerprints {
		if first == "" {
			first, firstName = fp, name
		}
		if fp != first {
			b.Fatalf("fingerprint at %s differs from %s: %s vs %s", name, firstName, fp, first)
		}
	}
}

// BenchmarkRunnerStepThroughput compares the raw per-step cost of the two
// engines on a long budget-bounded run (the FD-free livelock, 100k steps per
// op): ns/op ÷ 100k is the engine's cost per simulated step. This is the
// number the step-machine runner exists to shrink.
func BenchmarkRunnerStepThroughput(b *testing.B) {
	const budget = 100_000
	for _, runner := range []struct {
		name string
		r    weakestfd.Runner
	}{
		{"machine", weakestfd.MachineRunner},
		{"goroutine", weakestfd.GoroutineRunner},
	} {
		b.Run(runner.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
					N: 4, Algorithm: weakestfd.AsyncAttempt, Proposals: benchProposals(4),
					Schedule: weakestfd.RoundRobinSchedule, Budget: budget,
					Runner: runner.r,
				})
				if !errors.Is(err, weakestfd.ErrNoTermination) {
					b.Fatalf("expected livelock, got %v", err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/budget, "ns/step")
		})
	}
}
