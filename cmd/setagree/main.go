// Command setagree runs one set-agreement instance on the simulated
// asynchronous shared-memory system and prints the outcome.
//
// Usage:
//
//	setagree [flags]
//
//	-n 5                processes (n+1 in the paper's notation)
//	-f 2                resilience, for -alg fig2
//	-alg fig1           fig1 | fig2 | omegan | consensus | async
//	-crash 0:10,3:45    crash times, pid:step pairs (0-based pids)
//	-stabilize 100      failure detector stabilization step
//	-seed 1             seed for noise, stable choices and random schedule
//	-sched random       random | roundrobin
//	-registers-only     back snapshots with the Afek et al. construction
//	-budget 2097152     step budget
//
// Example:
//
//	setagree -n 5 -alg fig2 -f 2 -crash 0:10,1:30 -stabilize 200 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"weakestfd"
	"weakestfd/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("setagree: ")
	var (
		n         = flag.Int("n", 4, "number of processes")
		f         = flag.Int("f", 1, "resilience (for -alg fig2)")
		alg       = flag.String("alg", "fig1", "algorithm: fig1|fig2|omegan|consensus|boosted|async")
		crash     = flag.String("crash", "", "crash times as pid:step[,pid:step...]")
		stabilize = flag.Int64("stabilize", 0, "failure detector stabilization step")
		seed      = flag.Int64("seed", 1, "random seed")
		sched     = flag.String("sched", "random", "schedule: random|roundrobin")
		regOnly   = flag.Bool("registers-only", false, "use the Afek et al. registers-only snapshot")
		budget    = flag.Int64("budget", 0, "step budget (0 = default)")
		props     = flag.String("values", "", "comma-separated proposals (default 100..100+n-1)")
		showTrace = flag.Bool("trace", false, "print a step-class summary of the run")
	)
	flag.Parse()

	algorithm, ok := map[string]weakestfd.Algorithm{
		"fig1":      weakestfd.UpsilonFig1,
		"fig2":      weakestfd.UpsilonFFig2,
		"omegan":    weakestfd.OmegaNBaseline,
		"consensus": weakestfd.OmegaConsensus,
		"boosted":   weakestfd.OmegaNBoosted,
		"async":     weakestfd.AsyncAttempt,
	}[*alg]
	if !ok {
		log.Fatalf("unknown -alg %q", *alg)
	}
	schedule, ok := map[string]weakestfd.ScheduleKind{
		"random":     weakestfd.RandomSchedule,
		"roundrobin": weakestfd.RoundRobinSchedule,
	}[*sched]
	if !ok {
		log.Fatalf("unknown -sched %q", *sched)
	}
	crashAt, err := cli.ParseCrashes(*crash)
	if err != nil {
		log.Fatal(err)
	}
	proposals, err := cli.ParseProposals(*props)
	if err != nil {
		log.Fatal(err)
	}
	if proposals == nil {
		proposals = cli.DefaultProposals(*n)
	}
	if len(proposals) != *n {
		log.Fatalf("%d proposals for n=%d", len(proposals), *n)
	}

	res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
		N:             *n,
		F:             *f,
		Algorithm:     algorithm,
		Proposals:     proposals,
		CrashAt:       crashAt,
		StabilizeAt:   *stabilize,
		Seed:          *seed,
		Schedule:      schedule,
		RegistersOnly: *regOnly,
		Budget:        *budget,
		Trace:         *showTrace,
	})
	if err != nil {
		log.SetOutput(os.Stderr)
		log.Fatal(err)
	}

	fmt.Printf("algorithm:  %v\n", algorithm)
	fmt.Printf("steps:      %d\n", res.Steps)
	fmt.Printf("crashed:    %v\n", res.Crashed)
	fmt.Printf("decisions:\n")
	for i := 0; i < *n; i++ {
		if v, ok := res.Decisions[i]; ok {
			fmt.Printf("  p%-3d %d\n", i+1, v)
		} else {
			fmt.Printf("  p%-3d (crashed)\n", i+1)
		}
	}
	fmt.Printf("distinct:   %v (bound ≤ %d)\n", res.Distinct, res.K)
	if res.Trace != "" {
		fmt.Println("\ntrace summary:")
		fmt.Print(res.Trace)
	}
}
