package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakestfd/internal/explore"
)

// corpusArtifact resolves a committed counterexample from the explore
// package's regression corpus — the CLI tests replay the same artifacts the
// corpus gate does, so the two can never disagree about what reproduces.
func corpusArtifact(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", "internal", "explore", "testdata", "corpus", name)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("corpus artifact missing: %v", err)
	}
	return path
}

// TestReplayReproducesCorpusArtifact pins the success contract: exit 0, the
// reproduced violation, and the named failure pattern with its narrative.
func TestReplayReproducesCorpusArtifact(t *testing.T) {
	var out strings.Builder
	code := replayArtifact(&out, corpusArtifact(t, "fig1-broken-adopt.json"), false)
	if code != 0 {
		t.Fatalf("exit code %d, want 0; output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"violation reproduced",
		"failure pattern: wrong-adopt-order",
		"adopting the minimum",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "WARNING") {
		t.Errorf("classification drift warning on a fresh corpus artifact:\n%s", out.String())
	}
}

// TestReplayTraceIncludesNarrative asserts -trace keeps the classification:
// the step lines land before the verdict, not instead of it.
func TestReplayTraceIncludesNarrative(t *testing.T) {
	var out strings.Builder
	code := replayArtifact(&out, corpusArtifact(t, "fig1-garbled-decide.json"), true)
	if code != 0 {
		t.Fatalf("exit code %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "  step ") {
		t.Errorf("trace mode printed no step lines:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "failure pattern: unproposed-decision") {
		t.Errorf("trace mode dropped the classification:\n%s", out.String())
	}
}

// TestReplayNonReproductionExitsOne replays a schedule against the correct
// protocol: nothing violates, so the CLI must exit 1 and say so.
func TestReplayNonReproductionExitsOne(t *testing.T) {
	a := &explore.Artifact{
		Schema:       1,
		System:       "fig1",
		N:            2,
		F:            1,
		OracleName:   "U={p1}",
		OracleStable: []int{0},
		Budget:       2048,
		Schedule:     []int{0, 1, 0, 1},
		Property:     "agreement",
		Violation:    "hand-written: never reproduces against the correct protocol",
	}
	path := filepath.Join(t.TempDir(), "stale.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := replayArtifact(&out, path, false); code != 1 {
		t.Fatalf("exit code %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "did NOT reproduce") {
		t.Errorf("missing non-reproduction message:\n%s", out.String())
	}
}

// TestReplayUnloadableExitsOne covers the error path: a missing artifact is
// exit 1, not a crash.
func TestReplayUnloadableExitsOne(t *testing.T) {
	var out strings.Builder
	if code := replayArtifact(&out, filepath.Join(t.TempDir(), "missing.json"), false); code != 1 {
		t.Fatalf("exit code %d, want 1; output:\n%s", code, out.String())
	}
}
