package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"weakestfd/internal/cli"
	"weakestfd/internal/explore"
	"weakestfd/internal/fleet"
)

// sweepFlags is the sweep-shaping flag set shared by `fdlab explore` and
// `fdlab fleet`: everything that defines the configuration space and the
// per-configuration search, i.e. exactly the fields of fleet.Spec. The
// execution-shaping flags (workers, procs, checkpoint, out) stay with each
// subcommand.
type sweepFlags struct {
	system       *string
	n            *int
	f            *int
	engineName   *string
	noHash       *bool
	maxStates    *int
	maxDepth     *int
	maxRuns      *int64
	blocks       *int
	blockLen     *int
	budget       *int64
	crashTimes   *string
	switchBudget *int
	flipTimes    *string
	sym          *bool
	maxViol      *int
}

func addSweepFlags(fs *flag.FlagSet) *sweepFlags {
	return &sweepFlags{
		system:       fs.String("system", "fig1", "system under exploration: "+strings.Join(explore.SystemNames(), "|")),
		n:            fs.Int("n", 3, "number of processes (2..5)"),
		f:            fs.Int("f", 0, "resilience for fig2 (default n-1)"),
		engineName:   fs.String("engine", "source", "exploration engine: source (source-DPOR with wakeup sequences and state-hash joins), classic (Flanagan-Godefroid DPOR), legacy (block enumerator)"),
		noHash:       fs.Bool("no-hash", false, "disable the source engine's state-hash join layer (pure source-DPOR)"),
		maxStates:    fs.Int("max-states", 0, "cap the source engine's join cache entries per configuration (0 = default 16384)"),
		maxDepth:     fs.Int("max-depth", 0, "DPOR branch-depth horizon (0 = full depth, i.e. the step budget; intractable for most systems beyond n=2)"),
		maxRuns:      fs.Int64("max-runs", 0, "cap runs per configuration, 0 = unlimited (DPOR engines; hitting it voids exhaustiveness and exits 3)"),
		blocks:       fs.Int("blocks", 3, "legacy engine: max adversarial blocks per schedule (context-switch bound)"),
		blockLen:     fs.Int("block", 24, "legacy engine: max steps per adversarial block"),
		budget:       fs.Int64("budget", 4096, "step budget per run"),
		crashTimes:   fs.String("crash-times", "0,3", "crash-time grid, comma-separated"),
		switchBudget: fs.Int("switch-budget", 0, "max pre-stabilization output switches per detector history (0 = stable-from-0 histories only)"),
		flipTimes:    fs.String("flip-times", "2,14", "flip-time grid for -switch-budget > 0, comma-separated"),
		sym:          fs.Bool("sym", false, "collapse crash sets up to process renaming (quick-scan heuristic, not a sound reduction)"),
		maxViol:      fs.Int("max-violations", 4, "stop after this many distinct violations (per worker process under fdlab fleet)"),
	}
}

// spec validates the parsed flags and builds the fleet.Spec they describe,
// exiting fatally on any inconsistency.
func (sf *sweepFlags) spec() fleet.Spec {
	engine, err := explore.ParseEngine(*sf.engineName)
	if err != nil {
		log.Fatalf("-engine %v", err)
	}
	if *sf.n < 2 || *sf.n > 5 {
		log.Fatalf("-n %d out of the explorable range [2,5] (the schedule space explodes beyond n=5)", *sf.n)
	}
	if *sf.blocks <= 0 || *sf.blockLen <= 0 || *sf.budget <= 0 {
		log.Fatalf("-blocks, -block and -budget must be positive (got %d, %d, %d)", *sf.blocks, *sf.blockLen, *sf.budget)
	}
	if *sf.maxDepth < 0 || *sf.maxRuns < 0 || *sf.maxStates < 0 {
		log.Fatalf("-max-depth, -max-runs and -max-states must be non-negative (got %d, %d, %d)", *sf.maxDepth, *sf.maxRuns, *sf.maxStates)
	}
	if *sf.switchBudget < 0 {
		log.Fatalf("-switch-budget must be >= 0, got %d", *sf.switchBudget)
	}
	if *sf.switchBudget > 0 && engine == explore.EngineEnum {
		// The block enumerator honors flip schedules soundly, but a
		// flip-gated witness needs at least four preemption blocks
		// (interleaved converge, the flip observer's solo run, the laggard's
		// decision) — beyond any affordable -blocks bound, so its unstable
		// sweep would be vacuously clean. Refusing the combination keeps the
		// coverage claim honest; the differential suite compares the engines
		// at a raised block bound instead.
		log.Fatal("-switch-budget > 0 requires a DPOR engine: the legacy enumerator's context-switch bound cannot reach flip-straddling witnesses (use -engine source or -engine classic)")
	}
	if *sf.maxViol <= 0 {
		log.Fatalf("-max-violations must be >= 1, got %d", *sf.maxViol)
	}
	ff := *sf.f
	if ff == 0 {
		ff = *sf.n - 1
	}
	if ff < 1 || ff > *sf.n-1 {
		log.Fatalf("-f %d out of range [1,%d] for n=%d", *sf.f, *sf.n-1, *sf.n)
	}
	grid, err := cli.ParseTimes("-crash-times", *sf.crashTimes)
	if err != nil {
		log.Fatal(err)
	}
	fgrid, err := cli.ParseTimes("-flip-times", *sf.flipTimes)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range fgrid {
		if t < 2 {
			log.Fatalf("-flip-times entries must be >= 2 (a phase ending at time %d covers no step: the first step runs at t=1, and a phase's output applies to t < its end time), got %d", t, t)
		}
	}
	return fleet.Spec{
		System:        *sf.system,
		N:             *sf.n,
		F:             ff,
		Engine:        *sf.engineName,
		NoHash:        *sf.noHash,
		MaxStates:     *sf.maxStates,
		MaxBlocks:     *sf.blocks,
		MaxBlock:      *sf.blockLen,
		MaxDepth:      *sf.maxDepth,
		MaxRuns:       *sf.maxRuns,
		Budget:        *sf.budget,
		CrashTimes:    grid,
		SwitchBudget:  *sf.switchBudget,
		FlipTimes:     fgrid,
		Symmetry:      *sf.sym,
		MaxViolations: *sf.maxViol,
	}
}

// reportSweep prints a completed sweep's summary — the shared tail of
// `fdlab explore` and `fdlab fleet` — writes counterexample artifacts to
// outDir, and returns the process exit code: 0 clean, 1 on violations, 3
// truncated by -max-runs.
func reportSweep(res *explore.Result, spec fleet.Spec, outDir string) int {
	fmt.Printf("explored %s (n=%d, f=%d, engine=%s, switch-budget=%d): %d configurations, %d schedules executed, %d pruned as redundant",
		res.System, spec.N, spec.F, res.Engine, spec.SwitchBudget, res.Configs, res.Runs, res.Pruned)
	if res.Joined > 0 {
		fmt.Printf(", %d joined at the horizon", res.Joined)
	}
	fmt.Printf(", longest run %d steps", res.MaxSteps)
	if res.SettledRuns > 0 {
		fmt.Printf(", %d settled", res.SettledRuns)
	}
	fmt.Printf(", %dms\n", res.ElapsedMS)
	if res.Configs == 0 || res.Runs == 0 {
		log.Fatal("empty sweep: no configurations were explored (check -n/-f/-crash-times)")
	}
	// Bound-hit reporting: the three bounds cut coverage in different ways
	// and call for different remediations, so each one names itself.
	if res.DepthLimited {
		fmt.Printf("note: runs went past the -max-depth %d branch horizon: exhaustive up to commutativity over every %d-step prefix, fair-tail beyond (raise -max-depth to push the claim deeper)\n",
			spec.MaxDepth, spec.MaxDepth)
	}
	if res.StateCapped {
		fmt.Println("note: the state-hash join cache hit -max-states and stopped admitting new states: coverage is unaffected, but tail sharing degraded (raise -max-states or add memory to speed the sweep up)")
	}
	if len(res.Violations) == 0 {
		if res.Truncated {
			fmt.Println("no property violations, but the sweep was TRUNCATED by -max-runs: configurations stopped mid-search, coverage is incomplete (raise -max-runs to restore the exhaustiveness claim)")
			return 3
		}
		fmt.Println("no property violations")
		return 0
	}
	for i, v := range res.Violations {
		fmt.Printf("VIOLATION: %v\n", v)
		path := filepath.Join(outDir, fmt.Sprintf("counterexample-%s-%d.json", res.System, i+1))
		if err := v.Artifact.WriteFile(path); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("  replay with: fdlab replay -in %s\n", path)
	}
	return 1
}

// exitCode applies reportSweep's verdict to the process.
func exitCode(code int) {
	if code != 0 {
		os.Exit(code)
	}
}
