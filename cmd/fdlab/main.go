// Command fdlab explores the failure detector reductions of the paper:
//
//	fdlab extract   — Figure 3: extract Υ^f from a stable detector
//	fdlab falsify   — Theorems 1/5: the adversary against Ω^f extractors
//	fdlab matrix    — run scenario families through the internal/lab engine
//	fdlab explore   — bounded-exhaustive schedule-space sweep with property
//	                  checking and counterexample shrinking
//	fdlab fleet     — the same sweep sharded across worker processes, with a
//	                  resumable checkpoint (fleet-worker is its hidden
//	                  subprocess entry point)
//	fdlab replay    — re-execute an emitted counterexample step by step
//
// Examples:
//
//	fdlab extract -n 5 -from omega -stabilize 200 -crash 2:500
//	fdlab extract -n 5 -from omegaF -f 2 -seed 3
//	fdlab falsify -n 5 -f 4 -candidate staleness -switches 30
//	fdlab matrix -family waves -seeds 5 -workers 8 -json waves.json
//	fdlab explore -system fig1 -n 3 -blocks 3
//	fdlab fleet -system fig1 -n 4 -max-depth 11 -procs 4 -checkpoint fleet.json
//	fdlab replay -in counterexample-fig1-1.json -trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"weakestfd"
	"weakestfd/internal/cli"
	"weakestfd/internal/lab"
	"weakestfd/internal/lab/scenarios"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdlab: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "extract":
		runExtract(os.Args[2:])
	case "falsify":
		runFalsify(os.Args[2:])
	case "matrix":
		runMatrix(os.Args[2:])
	case "explore":
		runExplore(os.Args[2:])
	case "fleet":
		runFleet(os.Args[2:])
	case "fleet-worker":
		// Hidden: the subprocess entry `fdlab fleet` spawns for each worker.
		runFleetWorker()
	case "replay":
		runReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fdlab <extract|falsify|matrix|explore|fleet|replay> [flags]")
	os.Exit(2)
}

// validatePool applies the shared pool-flag validation, fatally.
func validatePool(workers, seeds int) {
	if err := cli.ValidatePool(workers, seeds); err != nil {
		log.Fatal(err)
	}
}

func runMatrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	var (
		family      = fs.String("family", "", "scenario family (default: all)")
		seeds       = fs.Int("seeds", 3, "seeds per scenario")
		workers     = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonPath    = fs.String("json", "", "write the aggregate report to this file as JSON")
		fingerprint = fs.Bool("fingerprint", false, "print the deterministic result hash")
		list        = fs.Bool("list", false, "list scenario families and exit")
		legacy      = fs.Bool("legacy-runner", false, "drive simulations with the goroutine-per-process engine")
	)
	_ = fs.Parse(args)
	validatePool(*workers, *seeds)
	weakestfd.SetLegacyRunner(*legacy)

	if *list {
		fmt.Println(strings.Join(scenarios.FamilyNames(), "\n"))
		return
	}
	matrices, err := scenarios.Select(*family, *seeds)
	if err != nil {
		log.Fatal(err)
	}
	scs, err := lab.ExpandAll(matrices)
	if err != nil {
		log.Fatal(err)
	}
	if err := lab.Drive(os.Stdout, scs, lab.DriveConfig{
		Workers: *workers, JSONPath: *jsonPath, Fingerprint: *fingerprint,
	}); err != nil {
		log.Fatal(err)
	}
}

func runExtract(args []string) {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	var (
		n         = fs.Int("n", 4, "number of processes")
		f         = fs.Int("f", 0, "resilience (0 = wait-free)")
		from      = fs.String("from", "omega", "source detector: omega|omegan|omegaF|evp")
		stabilize = fs.Int64("stabilize", 100, "source stabilization step")
		crash     = fs.String("crash", "", "crash times pid:step[,...]")
		seed      = fs.Int64("seed", 1, "seed")
		slack     = fs.Int("slack", 0, "batch slack w(σ) for omega")
		budget    = fs.Int64("budget", 0, "step budget")
		legacy    = fs.Bool("legacy-runner", false, "drive simulations with the goroutine-per-process engine")
	)
	_ = fs.Parse(args)
	weakestfd.SetLegacyRunner(*legacy)

	det, ok := map[string]weakestfd.Detector{
		"omega":  weakestfd.Omega,
		"omegan": weakestfd.OmegaN,
		"omegaF": weakestfd.OmegaF,
		"evp":    weakestfd.StableEvPerfect,
	}[*from]
	if !ok {
		log.Fatalf("unknown -from %q", *from)
	}
	crashAt, err := cli.ParseCrashes(*crash)
	if err != nil {
		log.Fatal(err)
	}
	res, err := weakestfd.ExtractUpsilon(weakestfd.ExtractConfig{
		N: *n, F: *f,
		From:        det,
		StabilizeAt: *stabilize,
		CrashAt:     crashAt,
		Seed:        *seed,
		BatchSlack:  *slack,
		Budget:      *budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted Υ^f output (Figure 3, from %s):\n", *from)
	fmt.Printf("  stable set:   %v (0-based pids)\n", res.Stable)
	fmt.Printf("  stable from:  step %d (of %d)\n", res.StableFrom, res.Steps)
	fmt.Printf("  legal:        %v\n", res.LegalErr == nil)
}

func runFalsify(args []string) {
	fs := flag.NewFlagSet("falsify", flag.ExitOnError)
	var (
		n        = fs.Int("n", 4, "number of processes (≥ 3)")
		f        = fs.Int("f", 3, "target Ω^f size (2..n-1)")
		cand     = fs.String("candidate", "staleness", "complement|staleness|hybrid")
		switches = fs.Int("switches", 20, "target forced switches")
		budget   = fs.Int64("budget", 0, "step budget")
	)
	_ = fs.Parse(args)

	res, err := weakestfd.Falsify(weakestfd.FalsifyConfig{
		N: *n, F: *f,
		Candidate:      *cand,
		TargetSwitches: *switches,
		Budget:         *budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversary vs %q (Theorem %s):\n", *cand, theoremName(*n, *f))
	fmt.Printf("  forced switches: %d\n", res.Switches)
	fmt.Printf("  stuck:           %v\n", res.Stuck)
	if res.ViolationErr != nil {
		fmt.Printf("  violation:       %v\n", res.ViolationErr)
	}
	fmt.Printf("  steps:           %d\n", res.Steps)
	fmt.Printf("  falsified:       %v\n", res.Falsified)
	if !res.Falsified {
		os.Exit(1)
	}
}

func theoremName(n, f int) string {
	if f == n-1 {
		return "1"
	}
	return "5"
}
