package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"weakestfd/internal/cli"
	"weakestfd/internal/explore"
	"weakestfd/internal/sim"
)

// runExplore is the `fdlab explore` subcommand: a bounded-exhaustive sweep
// of one system, emitting replayable artifacts for every violation.
//
// Exit status: 0 clean, 1 on property violations, 3 when the sweep was
// truncated by -max-runs (the exhaustiveness claim is void, but nothing
// failed).
func runExplore(args []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	var (
		system       = fs.String("system", "fig1", "system under exploration: "+strings.Join(explore.SystemNames(), "|"))
		n            = fs.Int("n", 3, "number of processes (2..5)")
		f            = fs.Int("f", 0, "resilience for fig2 (default n-1)")
		engineName   = fs.String("engine", "source", "exploration engine: source (source-DPOR with wakeup sequences and state-hash joins), classic (Flanagan-Godefroid DPOR), legacy (block enumerator)")
		noHash       = fs.Bool("no-hash", false, "disable the source engine's state-hash join layer (pure source-DPOR)")
		maxStates    = fs.Int("max-states", 0, "cap the source engine's join cache entries per configuration (0 = default 16384)")
		maxDepth     = fs.Int("max-depth", 0, "DPOR branch-depth horizon (0 = full depth, i.e. the step budget; intractable for most systems beyond n=2)")
		maxRuns      = fs.Int64("max-runs", 0, "cap runs per configuration, 0 = unlimited (DPOR engines; hitting it voids exhaustiveness and exits 3)")
		blocks       = fs.Int("blocks", 3, "legacy engine: max adversarial blocks per schedule (context-switch bound)")
		blockLen     = fs.Int("block", 24, "legacy engine: max steps per adversarial block")
		budget       = fs.Int64("budget", 4096, "step budget per run")
		crashTimes   = fs.String("crash-times", "0,3", "crash-time grid, comma-separated")
		switchBudget = fs.Int("switch-budget", 0, "max pre-stabilization output switches per detector history (0 = stable-from-0 histories only)")
		flipTimes    = fs.String("flip-times", "2,14", "flip-time grid for -switch-budget > 0, comma-separated")
		sym          = fs.Bool("sym", false, "collapse crash sets up to process renaming (quick-scan heuristic, not a sound reduction)")
		workers      = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		maxViol      = fs.Int("max-violations", 4, "stop after this many distinct violations")
		outDir       = fs.String("out", ".", "directory for counterexample artifacts")
	)
	_ = fs.Parse(args)
	validatePool(*workers, 1)
	var engine explore.Engine
	switch *engineName {
	case "source":
		engine = explore.EngineSource
	case "classic", "dpor":
		engine = explore.EngineDPOR
	case "legacy", "enum":
		engine = explore.EngineEnum
	default:
		log.Fatalf("-engine %q unknown: want source, classic or legacy", *engineName)
	}
	if *n < 2 || *n > 5 {
		log.Fatalf("-n %d out of the explorable range [2,5] (the schedule space explodes beyond n=5)", *n)
	}
	if *blocks <= 0 || *blockLen <= 0 || *budget <= 0 {
		log.Fatalf("-blocks, -block and -budget must be positive (got %d, %d, %d)", *blocks, *blockLen, *budget)
	}
	if *maxDepth < 0 || *maxRuns < 0 || *maxStates < 0 {
		log.Fatalf("-max-depth, -max-runs and -max-states must be non-negative (got %d, %d, %d)", *maxDepth, *maxRuns, *maxStates)
	}
	if *switchBudget < 0 {
		log.Fatalf("-switch-budget must be >= 0, got %d", *switchBudget)
	}
	if *switchBudget > 0 && engine == explore.EngineEnum {
		// The block enumerator honors flip schedules soundly, but a
		// flip-gated witness needs at least four preemption blocks
		// (interleaved converge, the flip observer's solo run, the laggard's
		// decision) — beyond any affordable -blocks bound, so its unstable
		// sweep would be vacuously clean. Refusing the combination keeps the
		// coverage claim honest; the differential suite compares the engines
		// at a raised block bound instead.
		log.Fatal("-switch-budget > 0 requires a DPOR engine: the legacy enumerator's context-switch bound cannot reach flip-straddling witnesses (use -engine source or -engine classic)")
	}
	if *maxViol <= 0 {
		log.Fatalf("-max-violations must be >= 1, got %d", *maxViol)
	}
	ff := *f
	if ff == 0 {
		ff = *n - 1
	}
	if ff < 1 || ff > *n-1 {
		log.Fatalf("-f %d out of range [1,%d] for n=%d", *f, *n-1, *n)
	}
	sys, err := explore.NewSystem(*system, *n, ff)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := cli.ParseTimes("-crash-times", *crashTimes)
	if err != nil {
		log.Fatal(err)
	}
	times := make([]sim.Time, len(grid))
	for i, t := range grid {
		times[i] = sim.Time(t)
	}
	fgrid, err := cli.ParseTimes("-flip-times", *flipTimes)
	if err != nil {
		log.Fatal(err)
	}
	flips := make([]sim.Time, len(fgrid))
	for i, t := range fgrid {
		if t < 2 {
			log.Fatalf("-flip-times entries must be >= 2 (a phase ending at time %d covers no step: the first step runs at t=1, and a phase's output applies to t < its end time), got %d", t, t)
		}
		flips[i] = sim.Time(t)
	}
	res := explore.Explore(explore.Config{
		System:        sys,
		Engine:        engine,
		NoHash:        *noHash,
		MaxStates:     *maxStates,
		MaxBlocks:     *blocks,
		MaxBlock:      *blockLen,
		MaxDepth:      *maxDepth,
		MaxRuns:       *maxRuns,
		Budget:        *budget,
		MaxFaults:     ff, // restricts the explored environment to E_f
		CrashTimes:    times,
		SwitchBudget:  *switchBudget,
		FlipTimes:     flips,
		Symmetry:      *sym,
		Workers:       *workers,
		MaxViolations: *maxViol,
	})
	fmt.Printf("explored %s (n=%d, f=%d, engine=%s, switch-budget=%d): %d configurations, %d schedules executed, %d pruned as redundant",
		res.System, *n, ff, res.Engine, *switchBudget, res.Configs, res.Runs, res.Pruned)
	if res.Joined > 0 {
		fmt.Printf(", %d joined at the horizon", res.Joined)
	}
	fmt.Printf(", longest run %d steps", res.MaxSteps)
	if res.SettledRuns > 0 {
		fmt.Printf(", %d settled", res.SettledRuns)
	}
	fmt.Printf(", %dms\n", res.ElapsedMS)
	if res.Configs == 0 || res.Runs == 0 {
		log.Fatal("empty sweep: no configurations were explored (check -n/-f/-crash-times)")
	}
	// Bound-hit reporting: the three bounds cut coverage in different ways
	// and call for different remediations, so each one names itself.
	if res.DepthLimited {
		fmt.Printf("note: runs went past the -max-depth %d branch horizon: exhaustive up to commutativity over every %d-step prefix, fair-tail beyond (raise -max-depth to push the claim deeper)\n",
			*maxDepth, *maxDepth)
	}
	if res.StateCapped {
		fmt.Println("note: the state-hash join cache hit -max-states and stopped admitting new states: coverage is unaffected, but tail sharing degraded (raise -max-states or add memory to speed the sweep up)")
	}
	if len(res.Violations) == 0 {
		if res.Truncated {
			fmt.Println("no property violations, but the sweep was TRUNCATED by -max-runs: configurations stopped mid-search, coverage is incomplete (raise -max-runs to restore the exhaustiveness claim)")
			os.Exit(3)
		}
		fmt.Println("no property violations")
		return
	}
	for i, v := range res.Violations {
		fmt.Printf("VIOLATION: %v\n", v)
		path := filepath.Join(*outDir, fmt.Sprintf("counterexample-%s-%d.json", res.System, i+1))
		if err := v.Artifact.WriteFile(path); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("  replay with: fdlab replay -in %s\n", path)
	}
	os.Exit(1)
}

// nextFlipOutput names what the history switches to at the given boundary:
// the next phase's output, or the stable set after the last flip.
func nextFlipOutput(a *explore.Artifact, until int64) string {
	for _, f := range a.OracleFlips {
		if f.Until > until {
			return pidSet(f.Out).String()
		}
	}
	return "stable " + pidSet(a.OracleStable).String()
}

// pidSet converts an artifact's 0-based PID list to a process set.
func pidSet(pids []int) sim.Set {
	set := sim.EmptySet
	for _, p := range pids {
		set = set.Add(sim.PID(p))
	}
	return set
}

// runReplay is the `fdlab replay` subcommand: it re-executes a
// counterexample artifact deterministically and reports whether the
// recorded violation reproduced.
//
// Exit status: 0 when the violation reproduced, 1 when it did not (or the
// artifact could not be loaded/replayed) — scripts and CI can gate on it.
func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in    = fs.String("in", "", "counterexample artifact (from fdlab explore)")
		trace = fs.Bool("trace", false, "print every replayed step with its shared-object access set")
	)
	_ = fs.Parse(args)
	if *in == "" {
		log.Fatal("-in is required")
	}
	if code := replayArtifact(os.Stdout, *in, *trace); code != 0 {
		os.Exit(code)
	}
}

// replayArtifact is runReplay's testable body: it writes the replay report
// to out and returns the process exit code (0 reproduced, 1 not reproduced
// or unloadable).
func replayArtifact(out io.Writer, in string, trace bool) int {
	a, err := explore.ReadArtifact(in)
	if err != nil {
		fmt.Fprintf(out, "fdlab: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "replaying %s: system %s n=%d f=%d, oracle %s, %d scheduled steps, budget %d\n",
		in, a.System, a.N, a.F, a.OracleName, len(a.Schedule), a.Budget)
	for _, f := range a.OracleFlips {
		fmt.Fprintf(out, "detector flip: output %v until t=%d, then %s\n", pidSet(f.Out), f.Until, nextFlipOutput(a, f.Until))
	}
	fmt.Fprintf(out, "recorded violation (%s): %s\n", a.Property, a.Violation)

	// Grants are buffered and printed after the run: a step's access set is
	// recorded by the step itself, which executes after the scheduling hook
	// fires.
	type grant struct {
		idx     int
		t       sim.Time
		enabled sim.Set
		chosen  sim.PID
	}
	var grants []grant
	var hook func(idx int, t sim.Time, enabled sim.Set, chosen sim.PID)
	if trace {
		hook = func(idx int, t sim.Time, enabled sim.Set, chosen sim.PID) {
			grants = append(grants, grant{idx: idx, t: t, enabled: enabled, chosen: chosen})
		}
	}
	run, violation, err := a.Replay(hook)
	if err != nil {
		fmt.Fprintf(out, "fdlab: %v\n", err)
		return 1
	}
	if trace {
		accesses := run.Report.Accesses
		for _, g := range grants {
			line := fmt.Sprintf("  step %4d t=%-4d enabled=%-18v -> %v", g.idx, int64(g.t), g.enabled, g.chosen)
			if accesses != nil && g.idx < accesses.Steps() {
				_, accs := accesses.Step(g.idx)
				line += "  " + accesses.AccessString(accs)
			}
			fmt.Fprintln(out, line)
		}
	}
	fmt.Fprintf(out, "run: %d steps, decided %d, crashed %v\n",
		run.Report.Steps, len(run.Report.Decided), run.Report.Crashed)
	if violation == nil {
		fmt.Fprintln(out, "violation did NOT reproduce (artifact stale? code changed?)")
		return 1
	}
	fmt.Fprintf(out, "violation reproduced: %v\n", violation)
	// Classify the replayed run live — for schema-3 artifacts this
	// cross-checks the recorded verdict, for older schemas it is the only
	// classification the user sees.
	fp := explore.Classify(run, a.Property)
	fmt.Fprintf(out, "failure pattern: %s — %s\n", fp.Name, fp.Signature)
	fmt.Fprintf(out, "  %s\n", fp.Narrative)
	if a.PatternName != "" && a.PatternName != fp.Name {
		fmt.Fprintf(out, "WARNING: artifact records pattern %q but the replayed run classifies as %q (classifier drift?)\n",
			a.PatternName, fp.Name)
	}
	return 0
}
