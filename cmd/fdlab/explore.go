package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sync"

	"weakestfd/internal/cli"
	"weakestfd/internal/explore"
	"weakestfd/internal/sim"
)

// runExplore is the `fdlab explore` subcommand: a bounded-exhaustive sweep
// of one system, emitting replayable artifacts for every violation.
//
// Exit status: 0 clean, 1 on property violations, 3 when the sweep was
// truncated by -max-runs (the exhaustiveness claim is void, but nothing
// failed).
func runExplore(args []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	sf := addSweepFlags(fs)
	var (
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		progress   = fs.Bool("progress", false, "print one line per finished configuration")
		outDir     = fs.String("out", ".", "directory for counterexample artifacts")
		cpuprofile = fs.String("cpuprofile", "", cli.CPUProfileUsage)
		memprofile = fs.String("memprofile", "", cli.MemProfileUsage)
	)
	_ = fs.Parse(args)
	validatePool(*workers, 1)
	spec := sf.spec()
	cfg, err := spec.Config()
	if err != nil {
		log.Fatal(err)
	}
	cfg.Workers = *workers
	stopProfiles, err := cli.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	if *progress {
		// Configurations finish concurrently on the lab pool and OnConfig
		// gives no mutual-exclusion guarantee, so the printer serializes
		// itself — interleaved progress lines are garbage in a terminal and
		// worse in a CI log.
		var mu sync.Mutex
		cfg.OnConfig = func(name string, runs int64) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "done %s (%d runs)\n", name, runs)
		}
	}
	// Flush the profiles before exitCode: os.Exit runs no defers, and the
	// violation (exit 1) and truncation (exit 3) paths are profiled too.
	code := reportSweep(explore.Explore(cfg), spec, *outDir)
	stopProfiles()
	exitCode(code)
}

// nextFlipOutput names what the history switches to at the given boundary:
// the next phase's output, or the stable set after the last flip.
func nextFlipOutput(a *explore.Artifact, until int64) string {
	for _, f := range a.OracleFlips {
		if f.Until > until {
			return pidSet(f.Out).String()
		}
	}
	return "stable " + pidSet(a.OracleStable).String()
}

// pidSet converts an artifact's 0-based PID list to a process set.
func pidSet(pids []int) sim.Set {
	set := sim.EmptySet
	for _, p := range pids {
		set = set.Add(sim.PID(p))
	}
	return set
}

// runReplay is the `fdlab replay` subcommand: it re-executes a
// counterexample artifact deterministically and reports whether the
// recorded violation reproduced.
//
// Exit status: 0 when the violation reproduced, 1 when it did not (or the
// artifact could not be loaded/replayed) — scripts and CI can gate on it.
func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in    = fs.String("in", "", "counterexample artifact (from fdlab explore)")
		trace = fs.Bool("trace", false, "print every replayed step with its shared-object access set")
	)
	_ = fs.Parse(args)
	if *in == "" {
		log.Fatal("-in is required")
	}
	if code := replayArtifact(os.Stdout, *in, *trace); code != 0 {
		os.Exit(code)
	}
}

// replayArtifact is runReplay's testable body: it writes the replay report
// to out and returns the process exit code (0 reproduced, 1 not reproduced
// or unloadable).
func replayArtifact(out io.Writer, in string, trace bool) int {
	a, err := explore.ReadArtifact(in)
	if err != nil {
		fmt.Fprintf(out, "fdlab: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "replaying %s: system %s n=%d f=%d, oracle %s, %d scheduled steps, budget %d\n",
		in, a.System, a.N, a.F, a.OracleName, len(a.Schedule), a.Budget)
	for _, f := range a.OracleFlips {
		fmt.Fprintf(out, "detector flip: output %v until t=%d, then %s\n", pidSet(f.Out), f.Until, nextFlipOutput(a, f.Until))
	}
	fmt.Fprintf(out, "recorded violation (%s): %s\n", a.Property, a.Violation)

	// Grants are buffered and printed after the run: a step's access set is
	// recorded by the step itself, which executes after the scheduling hook
	// fires.
	type grant struct {
		idx     int
		t       sim.Time
		enabled sim.Set
		chosen  sim.PID
	}
	var grants []grant
	var hook func(idx int, t sim.Time, enabled sim.Set, chosen sim.PID)
	if trace {
		hook = func(idx int, t sim.Time, enabled sim.Set, chosen sim.PID) {
			grants = append(grants, grant{idx: idx, t: t, enabled: enabled, chosen: chosen})
		}
	}
	run, violation, err := a.Replay(hook)
	if err != nil {
		fmt.Fprintf(out, "fdlab: %v\n", err)
		return 1
	}
	if trace {
		accesses := run.Report.Accesses
		for _, g := range grants {
			line := fmt.Sprintf("  step %4d t=%-4d enabled=%-18v -> %v", g.idx, int64(g.t), g.enabled, g.chosen)
			if accesses != nil && g.idx < accesses.Steps() {
				_, accs := accesses.Step(g.idx)
				line += "  " + accesses.AccessString(accs)
			}
			fmt.Fprintln(out, line)
		}
	}
	fmt.Fprintf(out, "run: %d steps, decided %d, crashed %v\n",
		run.Report.Steps, len(run.Report.Decided), run.Report.Crashed)
	if violation == nil {
		fmt.Fprintln(out, "violation did NOT reproduce (artifact stale? code changed?)")
		return 1
	}
	fmt.Fprintf(out, "violation reproduced: %v\n", violation)
	// Classify the replayed run live — for schema-3 artifacts this
	// cross-checks the recorded verdict, for older schemas it is the only
	// classification the user sees.
	fp := explore.Classify(run, a.Property)
	fmt.Fprintf(out, "failure pattern: %s — %s\n", fp.Name, fp.Signature)
	fmt.Fprintf(out, "  %s\n", fp.Narrative)
	if a.PatternName != "" && a.PatternName != fp.Name {
		fmt.Fprintf(out, "WARNING: artifact records pattern %q but the replayed run classifies as %q (classifier drift?)\n",
			a.PatternName, fp.Name)
	}
	return 0
}
