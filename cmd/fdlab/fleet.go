package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"weakestfd/internal/cli"
	"weakestfd/internal/fleet"
)

// runFleet is the `fdlab fleet` subcommand: the explore sweep sharded
// across worker processes with work-stealing and a resumable checkpoint.
// It shares the sweep-shaping flags and the report tail with `fdlab
// explore`, so its exit codes and `explored ...` summary line are
// drop-in compatible.
func runFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	sf := addSweepFlags(fs)
	var (
		procs      = fs.Int("procs", 2, "worker processes to shard the sweep across")
		workers    = fs.Int("workers", 0, "executor-pool width per worker process (0 = GOMAXPROCS/procs, min 1)")
		checkpoint = fs.String("checkpoint", "", "frontier checkpoint file, rewritten after every shard (enables -resume)")
		resume     = fs.Bool("resume", false, "resume from -checkpoint, re-running only incomplete shards")
		workerCmd  = fs.String("worker-cmd", "", "exec template launching one worker (space-separated argv; default: this binary's hidden fleet-worker subcommand)")
		progress   = fs.Bool("progress", false, "print fleet events (shards, steals, finished configurations)")
		outDir     = fs.String("out", ".", "directory for counterexample artifacts")
		cpuprofile = fs.String("cpuprofile", "", cli.CPUProfileUsage+" (coordinator process only)")
		memprofile = fs.String("memprofile", "", cli.MemProfileUsage+" (coordinator process only)")
	)
	_ = fs.Parse(args)
	if *procs < 1 {
		log.Fatalf("-procs must be >= 1, got %d", *procs)
	}
	if *workers < 0 {
		log.Fatalf("-workers must be >= 0, got %d", *workers)
	}
	if *resume && *checkpoint == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	spec := sf.spec()
	spec.Workers = *workers
	if spec.Workers == 0 {
		// Split the machine between the worker processes instead of
		// oversubscribing it Procs-fold.
		spec.Workers = max(1, runtime.GOMAXPROCS(0) / *procs)
	}

	cmd := []string{}
	if *workerCmd != "" {
		cmd = strings.Fields(*workerCmd)
	} else {
		self, err := os.Executable()
		if err != nil {
			log.Fatalf("locating own binary for fleet-worker: %v", err)
		}
		cmd = []string{self, "fleet-worker"}
	}

	opts := fleet.Options{
		Spec:           spec,
		Procs:          *procs,
		WorkerCmd:      cmd,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
	}
	if *progress {
		// The coordinator invokes OnProgress from its single event loop, so
		// no extra serialization is needed here.
		opts.OnProgress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	stopProfiles, err := cli.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := fleet.Run(opts)
	if err != nil {
		// log.Fatal calls os.Exit, which runs no defers: flush first.
		stopProfiles()
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d jobs (%d resumed, %d executed) over %d workers, %d shards, %d steals, %dms wall\n",
		sum.Jobs, sum.ResumedJobs, sum.ExecutedJobs, sum.Workers, sum.Shards, sum.Steals, sum.WallMS)
	code := reportSweep(sum.Result, spec, *outDir)
	stopProfiles()
	exitCode(code)
}

// runFleetWorker is the hidden `fdlab fleet-worker` subcommand: one worker
// process speaking the length-delimited fleet protocol on stdin/stdout.
// Users never invoke it directly; `fdlab fleet` (or a custom -worker-cmd
// wrapper) spawns it.
func runFleetWorker() {
	if err := fleet.WorkerMain(os.Stdin, os.Stdout); err != nil {
		log.Fatalf("fleet-worker: %v", err)
	}
}
