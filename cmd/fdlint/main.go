// fdlint is the repository's soundness linter: a go vet -vettool binary
// bundling the four fdlint analyzers (accesscheck, seamcheck, determinism,
// enginecase). See internal/analysis for what each rule protects.
//
// Usage:
//
//	go build -o fdlint ./cmd/fdlint
//	go vet -vettool=$PWD/fdlint ./...
//
// The binary speaks the unitchecker protocol, so it must be driven by the
// go command (which supplies per-package type-check configuration); it is
// not a standalone file checker.
package main

import (
	"weakestfd/internal/analysis/accesscheck"
	"weakestfd/internal/analysis/determinism"
	"weakestfd/internal/analysis/enginecase"
	"weakestfd/internal/analysis/seamcheck"
	"weakestfd/internal/xtools/go/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		accesscheck.Analyzer,
		seamcheck.Analyzer,
		determinism.Analyzer,
		enginecase.Analyzer,
	)
}
