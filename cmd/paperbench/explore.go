package main

import (
	"fmt"
	"os"

	"weakestfd/internal/explore"
)

// runExploreSuite is `paperbench -explore`: the standard bounded-exhaustive
// sweep over the real protocols at n ≤ 3 (explore.DefaultSweep), one table
// row per system. CI's explore-smoke job runs exactly this and fails the
// build on any violation. switchBudget > 0 additionally enumerates, per
// detector history, every schedule of at most that many pre-stabilization
// output switches (the unstable-history dimension; see explore.Config).
func runExploreSuite(workers, switchBudget int) error {
	w := newTableWriter(os.Stdout)
	w.setHeader("system", "n", "f", "engine", "configs", "runs", "pruned", "joined", "max-steps", "settled", "violations", "ms")
	total := 0
	truncated := false
	var violations []*explore.Violation
	for _, cfg := range explore.DefaultSweep() {
		cfg.Workers = workers
		cfg.SwitchBudget = switchBudget
		res := explore.Explore(cfg)
		w.addRow(res.System, cfg.System.N(), cfg.System.MaxFaults(), res.Engine, res.Configs, res.Runs,
			res.Pruned, res.Joined, res.MaxSteps, res.SettledRuns, len(res.Violations), res.ElapsedMS)
		total += len(res.Violations)
		truncated = truncated || res.Truncated
		violations = append(violations, res.Violations...)
	}
	fmt.Println("## bounded-exhaustive schedule-space sweep (internal/explore)")
	fmt.Println()
	w.flush()
	for _, v := range violations {
		fmt.Printf("  VIOLATION: %v\n", v)
	}
	if total > 0 {
		return fmt.Errorf("%d property violations across the sweep", total)
	}
	if truncated {
		return fmt.Errorf("sweep truncated by a per-configuration run cap: coverage incomplete")
	}
	fmt.Println("  * zero violations: every explored schedule satisfied every property")
	fmt.Println("  * runs counts executed schedules; pruned counts schedules the engine proved redundant without running them;")
	fmt.Println("    joined counts runs that stopped at the branch horizon and reused an already-executed tail (state hashing)")
	return nil
}
