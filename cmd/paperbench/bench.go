package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"

	"weakestfd"
	"weakestfd/internal/explore"
	"weakestfd/internal/fleet"
	"weakestfd/internal/lab"
	"weakestfd/internal/lab/scenarios"
	"weakestfd/internal/sim"
)

// Benchmark mode: `paperbench -bench-json out.json` measures the hot paths
// with testing.Benchmark and writes a machine-readable report. CI compares
// the output against the committed bench/baseline.json via cmd/benchgate and
// fails on regression; the report doubles as the repository's BENCH_*.json
// performance trajectory.

// BenchReport is the top-level JSON document.
type BenchReport struct {
	// Schema versions the document layout.
	Schema int `json:"schema"`
	// GoVersion and GOMAXPROCS describe the measuring environment; the gate
	// uses GOMAXPROCS as a comparable-hardware heuristic (wall-clock checks
	// demote to warnings when it differs from the baseline's).
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// MatrixSeeds is the seeds-per-scenario of the measured quick matrix;
	// reports with different workloads are not comparable and the gate
	// rejects them.
	MatrixSeeds int `json:"matrix_seeds"`
	// Benchmarks are the individual measurements.
	Benchmarks []BenchResult `json:"benchmarks"`
	// SpeedupMachineVsGoroutine is the ns/op ratio of the goroutine-runner
	// lab matrix over the machine-runner lab matrix — the headline number of
	// the step-machine engine. The gate enforces a floor on it.
	SpeedupMachineVsGoroutine float64 `json:"speedup_machine_vs_goroutine"`
	// ExploreReduction is the executed-run ratio of the classic DPOR engine
	// over the source engine on the pinned fig1 n=3 exploration — the
	// headline number of the source-set reduction. Run counts are
	// deterministic, so the ratio is hardware-independent and the gate
	// enforces a floor on it.
	ExploreReduction float64 `json:"explore_reduction"`
	// FlipReduction is the same classic-over-source executed-run ratio on
	// the pinned sweep at switch-budget 1 — the headline number of the
	// flip-anchored wakeup sequences. The classic run count comes from one
	// untimed reference sweep (only the source side is wall-clock
	// benchmarked); the ratio is deterministic and the gate enforces a floor
	// on it.
	FlipReduction float64 `json:"flip_reduction"`
	// FleetVsSingleProcess is the ns/op ratio of the single-process source
	// sweep over the same sweep run through `fdlab fleet`'s coordinator with
	// two worker subprocesses: > 1 means the fleet outran one process. On a
	// single-core runner expect slightly below 1 (subprocess spawn and frame
	// codec overhead with no cores to win back); the gate checks the fleet
	// entry's run count exactly — sharding must be result-neutral — and its
	// wall clock within the usual tolerance, not this ratio.
	FleetVsSingleProcess float64 `json:"fleet_vs_single_process"`
	// FingerprintMachine/FingerprintGoroutine are the lab fingerprints of the
	// quick matrix on each engine; they must be equal (bit-identical results).
	FingerprintMachine   string `json:"fingerprint_machine"`
	FingerprintGoroutine string `json:"fingerprint_goroutine"`
}

// BenchResult is one measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// StepsPerOp is the number of simulated atomic steps one op performs
	// (deterministic; the gate checks it exactly).
	StepsPerOp float64 `json:"steps_per_op,omitempty"`
	// StepsPerSec = StepsPerOp / (NsPerOp / 1e9): simulated steps per
	// wall-clock second, the engine's throughput.
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`
}

// benchBest runs the benchmark repeatedly and keeps the fastest result: the
// minimum is the standard low-noise wall-clock estimator, and it is what
// keeps the ±20% CI gate from flaking on shared runners.
func benchBest(reps int, f func(b *testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	bestNs := 0.0
	for i := 0; i < reps; i++ {
		r := testing.Benchmark(f)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < bestNs {
			best, bestNs = r, ns
		}
	}
	return best
}

func newBenchResult(name string, r testing.BenchmarkResult, stepsPerOp float64) BenchResult {
	out := BenchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		StepsPerOp:  stepsPerOp,
	}
	if stepsPerOp > 0 && out.NsPerOp > 0 {
		out.StepsPerSec = stepsPerOp / (out.NsPerOp / 1e9)
	}
	return out
}

// matrixSteps sums the simulated steps of one matrix invocation from the
// aggregated "steps" metric (mean × samples per scenario); deterministic in
// the scenario list.
func matrixSteps(rep *lab.Report) float64 {
	total := 0.0
	for _, sc := range rep.Scenarios {
		m := sc.Metric("steps")
		total += m.Mean * float64(m.N)
	}
	return total
}

// runBenchJSON measures the benchmark suite and writes the JSON report.
func runBenchJSON(path string, seeds int) error {
	scs, err := lab.ExpandAll(scenarios.Quick(seeds))
	if err != nil {
		return err
	}

	// Deterministic preamble: fingerprints and step totals on both engines.
	runMatrix := func(legacy bool) (*lab.Report, error) {
		weakestfd.SetLegacyRunner(legacy)
		defer weakestfd.SetLegacyRunner(false)
		rep := lab.Run(scs, lab.Options{Workers: 1})
		if rep.Failed != 0 {
			return nil, fmt.Errorf("bench matrix (legacy=%v): %d runs failed", legacy, rep.Failed)
		}
		return rep, nil
	}
	mRep, err := runMatrix(false)
	if err != nil {
		return err
	}
	gRep, err := runMatrix(true)
	if err != nil {
		return err
	}
	report := BenchReport{
		Schema:               1,
		GoVersion:            runtime.Version(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		MatrixSeeds:          seeds,
		FingerprintMachine:   mRep.Fingerprint(),
		FingerprintGoroutine: gRep.Fingerprint(),
	}
	if report.FingerprintMachine != report.FingerprintGoroutine {
		return fmt.Errorf("runner fingerprints differ: machine %s vs goroutine %s",
			report.FingerprintMachine, report.FingerprintGoroutine)
	}
	steps := matrixSteps(mRep)

	// Timed section. Each benchmark closure performs one full workload per
	// iteration.
	benchMatrix := func(legacy bool) testing.BenchmarkResult {
		return benchBest(3, func(b *testing.B) {
			weakestfd.SetLegacyRunner(legacy)
			defer weakestfd.SetLegacyRunner(false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep := lab.Run(scs, lab.Options{Workers: 1})
				if rep.Failed != 0 {
					b.Fatalf("%d runs failed", rep.Failed)
				}
			}
		})
	}
	machine := benchMatrix(false)
	goroutine := benchMatrix(true)
	report.Benchmarks = append(report.Benchmarks,
		newBenchResult("lab-matrix/machine", machine, steps),
		newBenchResult("lab-matrix/goroutine", goroutine, steps),
	)
	mNs := float64(machine.T.Nanoseconds()) / float64(machine.N)
	gNs := float64(goroutine.T.Nanoseconds()) / float64(goroutine.N)
	if mNs > 0 {
		report.SpeedupMachineVsGoroutine = gNs / mNs
	}

	for _, fam := range familyBenchmarks() {
		fam := fam
		// Fixed seed: every op simulates the identical run, so steps/op is
		// deterministic and the gate can compare it exactly.
		steps, err := fam.run(0)
		if err != nil {
			return fmt.Errorf("family/%s: %w", fam.name, err)
		}
		res := benchBest(3, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fam.run(0); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks,
			newBenchResult("family/"+fam.name, res, float64(steps)))
	}

	// Explorer throughput: one pinned fig1 n=3 sweep per engine. Runs/op is
	// the engine's executed-schedule count on the identical configuration
	// grid — deterministic, so the gate compares it exactly — and the
	// classic/source ratio is the reduction headline.
	var classicRuns, sourceRuns, sourceNs, budget1SourceRuns float64
	for _, eb := range exploreBenchmarks() {
		eb := eb
		runs, violations := eb.run()
		if violations != 0 {
			return fmt.Errorf("explore/%s: %d violations on the real protocol", eb.name, violations)
		}
		res := benchBest(2, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if r, _ := eb.run(); r != runs {
					b.Fatalf("run count drifted: %v -> %v", runs, r)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks,
			newBenchResult("explore/"+eb.name, res, float64(runs)))
		switch eb.name {
		case "fig1-n3/classic":
			classicRuns = float64(runs)
		case "fig1-n3/source":
			sourceRuns = float64(runs)
			sourceNs = float64(res.T.Nanoseconds()) / float64(res.N)
		case "fig1-n3/budget1-source":
			budget1SourceRuns = float64(runs)
		}
	}
	if sourceRuns > 0 {
		report.ExploreReduction = classicRuns / sourceRuns
	}
	if budget1SourceRuns > 0 {
		// One untimed classic reference pass for the flip-reduction ratio:
		// wall-clocking classic at budget 1 (~1.3M runs per op) would dominate
		// the whole suite, and only its deterministic run count matters.
		classicB1Runs, violations := exploreSweep(explore.EngineDPOR, 1)()
		if violations != 0 {
			return fmt.Errorf("explore/fig1-n3/budget1-classic reference: %d violations on the real protocol", violations)
		}
		report.FlipReduction = float64(classicB1Runs) / budget1SourceRuns
	}

	// Fleet throughput: the identical pinned source sweep sharded across two
	// worker processes (this binary re-exec'd in its hidden -fleet-worker
	// mode). The run count must equal the single-process sweep's — sharding
	// the configuration space is result-neutral — so the gate compares
	// steps/op exactly across the two entries.
	fleetRes, fleetRuns, err := benchFleet()
	if err != nil {
		return err
	}
	if float64(fleetRuns) != sourceRuns {
		return fmt.Errorf("explore/fig1-n3/fleet-2proc executed %d runs, want the single-process count %v", fleetRuns, sourceRuns)
	}
	report.Benchmarks = append(report.Benchmarks,
		newBenchResult("explore/fig1-n3/fleet-2proc", fleetRes, float64(fleetRuns)))
	if fleetNs := float64(fleetRes.T.Nanoseconds()) / float64(fleetRes.N); fleetNs > 0 {
		report.FleetVsSingleProcess = sourceNs / fleetNs
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("bench report written to %s (matrix speedup %.2fx, explore reduction %.2fx, flip reduction %.2fx, fingerprint %s)\n",
		path, report.SpeedupMachineVsGoroutine, report.ExploreReduction, report.FlipReduction, report.FingerprintMachine[:16])
	return nil
}

// exploreBench is one explorer-throughput benchmark: a pinned sweep run once
// per op. The returned runs count is deterministic in the configuration.
type exploreBench struct {
	name string
	run  func() (runs int64, violations int)
}

func exploreBenchmarks() []exploreBench {
	// The pinned sweep: fig1 n=3 on the single crash time 0, depth 12 — the
	// standard-suite shape trimmed to one crash grid point so the classic
	// engine's pass stays bench-affordable.
	return []exploreBench{
		{"fig1-n3/classic", exploreSweep(explore.EngineDPOR, 0)},
		{"fig1-n3/source", exploreSweep(explore.EngineSource, 0)},
		// The same sweep under one pre-stabilization detector switch: the
		// flip-anchored wakeup-sequence regime. Classic's budget-1 pass is too
		// slow to wall-clock here; runBenchJSON runs it once, untimed, for the
		// flip_reduction ratio.
		{"fig1-n3/budget1-source", exploreSweep(explore.EngineSource, 1)},
	}
}

// exploreSweep runs the pinned sweep once at the given switch budget.
func exploreSweep(engine explore.Engine, switchBudget int) func() (int64, int) {
	return func() (int64, int) {
		res := explore.Explore(explore.Config{
			System:       explore.Fig1System(3),
			Engine:       engine,
			SwitchBudget: switchBudget,
			MaxDepth:     12,
			Budget:       2048,
			CrashTimes:   []sim.Time{0},
			Workers:      1,
		})
		return res.Runs, len(res.Violations)
	}
}

// benchFleet measures the pinned fig1 n=3 source sweep through the fleet
// coordinator at two worker processes, returning the best-of-two result and
// the (deterministic) executed-run count.
func benchFleet() (testing.BenchmarkResult, int64, error) {
	self, err := os.Executable()
	if err != nil {
		return testing.BenchmarkResult{}, 0, fmt.Errorf("locating own binary for the fleet benchmark: %w", err)
	}
	// The Spec mirror of exploreBenchmarks' pinned sweep. MaxViolations is
	// effectively unbounded so the per-worker violation budget cannot couple
	// shards (it never binds here anyway: the real protocol is clean).
	spec := fleet.Spec{
		System: "fig1", N: 3, F: 2,
		MaxDepth: 12, Budget: 2048, CrashTimes: []int64{0},
		MaxViolations: 1 << 20, Workers: 1,
	}
	run := func() (int64, error) {
		sum, err := fleet.Run(fleet.Options{
			Spec:      spec,
			Procs:     2,
			WorkerCmd: []string{self, "-fleet-worker"},
		})
		if err != nil {
			return 0, err
		}
		if n := len(sum.Result.Violations); n != 0 {
			return 0, fmt.Errorf("%d violations on the real protocol", n)
		}
		return sum.Result.Runs, nil
	}
	runs, err := run()
	if err != nil {
		return testing.BenchmarkResult{}, 0, fmt.Errorf("explore/fig1-n3/fleet-2proc: %w", err)
	}
	res := benchBest(2, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := run()
			if err != nil {
				b.Fatal(err)
			}
			if r != runs {
				b.Fatalf("run count drifted: %v -> %v", runs, r)
			}
		}
	})
	return res, runs, nil
}

// familyBench is one per-family benchmark: a fixed configuration of the
// family's facade entry point, run once per op on the machine runner. The
// returned count is the run's simulated steps.
type familyBench struct {
	name string
	run  func(seed int64) (int64, error)
}

func familyBenchmarks() []familyBench {
	proposals := func(n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(100 + i)
		}
		return out
	}
	return []familyBench{
		{"fig1", func(seed int64) (int64, error) {
			res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
				N: 9, Proposals: proposals(9), CrashAt: map[int]int64{1: 9, 2: 18},
				StabilizeAt: 150, Seed: seed, Budget: 1 << 22,
			})
			if err != nil {
				return 0, err
			}
			return res.Steps, nil
		}},
		{"fig2", func(seed int64) (int64, error) {
			res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
				N: 6, F: 2, Algorithm: weakestfd.UpsilonFFig2,
				Proposals: proposals(6), CrashAt: map[int]int64{0: 13, 1: 26},
				StabilizeAt: 150, Seed: seed, Budget: 1 << 22,
			})
			if err != nil {
				return 0, err
			}
			return res.Steps, nil
		}},
		{"extract", func(seed int64) (int64, error) {
			res, err := weakestfd.ExtractUpsilon(weakestfd.ExtractConfig{
				N: 5, From: weakestfd.Omega, StabilizeAt: 150,
				Seed: seed, Budget: 40_000,
			})
			if err != nil {
				return 0, err
			}
			return res.Steps, nil
		}},
		{"compose", func(seed int64) (int64, error) {
			res, err := weakestfd.SolveWithStableDetector(weakestfd.ComposeConfig{
				N: 4, From: weakestfd.Omega, Proposals: proposals(4),
				StabilizeAt: 100, Seed: seed, Budget: 1 << 22,
			})
			if err != nil {
				return 0, err
			}
			return res.Steps, nil
		}},
		{"timing", func(seed int64) (int64, error) {
			res, err := weakestfd.SolveWithTimingAssumptions(weakestfd.TimedConfig{
				N: 4, Proposals: proposals(4), CrashAt: map[int]int64{1: 300},
				GST: 800, Bound: 8, Seed: seed,
			})
			if err != nil {
				return 0, err
			}
			return res.Steps, nil
		}},
		{"async-livelock", func(seed int64) (int64, error) {
			_, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
				N: 4, Algorithm: weakestfd.AsyncAttempt, Proposals: proposals(4),
				Schedule: weakestfd.RoundRobinSchedule, Budget: 100_000,
			})
			if !errors.Is(err, weakestfd.ErrNoTermination) {
				return 0, fmt.Errorf("expected livelock, got %v", err)
			}
			return 100_000, nil
		}},
	}
}
