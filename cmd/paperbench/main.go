// Command paperbench regenerates the reproduction's experiment data.
//
// The default mode expands the full scenario matrix (internal/lab/scenarios)
// and fans the runs out over a worker pool via the internal/lab engine.
// Per-run seeds are derived from scenario names alone, so the aggregate
// results are bit-identical at -workers=1 and -workers=N — only the
// wall-clock changes.
//
// Usage:
//
//	paperbench                      # full scenario matrix, parallel
//	paperbench -run fig1            # one scenario family
//	paperbench -workers 1           # serial (determinism comparison)
//	paperbench -fingerprint         # print the deterministic result hash
//	paperbench -json bench.json     # write the aggregate report as JSON
//	paperbench -list                # list scenario families
//	paperbench -tables              # legacy per-theorem tables E1..E11
//	paperbench -run E4              # one legacy experiment table
//	paperbench -seeds 10            # more seeds per configuration
//	paperbench -bench-json out.json # measure the benchmark suite (CI gate)
//	paperbench -explore             # bounded-exhaustive schedule-space sweep
//	paperbench -legacy-runner       # goroutine engine instead of step machines
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"weakestfd"
	"weakestfd/internal/cli"
	"weakestfd/internal/fleet"
	"weakestfd/internal/lab"
	"weakestfd/internal/lab/scenarios"
)

type experiment struct {
	id    string
	title string
	run   func(w *tableWriter, seeds, workers int)
}

func experiments() []experiment {
	return []experiment{
		{"E1", "Figure 1 / Theorem 2 — n-set agreement from Υ and registers", runE1},
		{"E2", "Figure 2 / Theorem 6 — f-resilient f-set agreement from Υ^f", runE2},
		{"E3", "Figure 3 / Theorem 10 — extracting Υ^f from stable detectors", runE3},
		{"E4", "Theorem 1 — Υ cannot be transformed into Ωn", runE4},
		{"E5", "Theorem 5 — Υ^f cannot be transformed into Ω^f", runE5},
		{"E6", "Section 4 — Υ and Ω are equivalent for 2 processes", runE6},
		{"E7", "Section 5.3 — extracting Ω from Υ¹ in E_1", runE7},
		{"E8", "Corollaries 3/4 — Υ strictly below Ωn, yet solves set agreement", runE8},
		{"E9", "Impossibility baseline — no failure information ⇒ no termination", runE9},
		{"E10", "Ablations — snapshots, stabilization time, converge cost", runE10},
		{"E11", "Section 1 — implementing Υ from timing assumptions", runE11},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	// Hidden re-exec mode: the fleet benchmark spawns this binary as its
	// worker processes. Intercepted before flag parsing so it never appears
	// in -help.
	if len(os.Args) > 1 && os.Args[1] == "-fleet-worker" {
		if err := fleet.WorkerMain(os.Stdin, os.Stdout); err != nil {
			log.Fatalf("fleet-worker: %v", err)
		}
		return
	}
	var (
		runFilter    = flag.String("run", "", "run one legacy experiment (E1..E11) or one scenario family")
		seeds        = flag.Int("seeds", 3, "seeds per configuration")
		workers      = flag.Int("workers", 0, "worker pool size for the scenario matrix (0 = GOMAXPROCS)")
		jsonPath     = flag.String("json", "", "write the aggregate matrix report to this file as JSON")
		fingerprint  = flag.Bool("fingerprint", false, "print the deterministic result hash of the matrix run")
		list         = flag.Bool("list", false, "list scenario families and exit")
		tables       = flag.Bool("tables", false, "run the legacy per-theorem tables E1..E11")
		benchJSON    = flag.String("bench-json", "", "measure the benchmark suite and write the JSON report to this file")
		exploreRun   = flag.Bool("explore", false, "run the bounded-exhaustive schedule-space sweep (internal/explore) and exit")
		switchBudget = flag.Int("switch-budget", 0, "with -explore: max pre-stabilization detector output switches per history (0 = stable-from-0 histories, the standard suite)")
		cpuprofile   = flag.String("cpuprofile", "", "with -explore: "+cli.CPUProfileUsage)
		memprofile   = flag.String("memprofile", "", "with -explore: "+cli.MemProfileUsage)
		legacy       = flag.Bool("legacy-runner", false, "drive simulations with the goroutine-per-process engine instead of the step-machine engine")
	)
	flag.Parse()
	// Reject pool settings that would silently produce empty or hung
	// matrices: negative workers (0 means GOMAXPROCS) and non-positive seeds.
	if err := cli.ValidatePool(*workers, *seeds); err != nil {
		log.Fatal(err)
	}
	weakestfd.SetLegacyRunner(*legacy)

	if *switchBudget < 0 {
		log.Fatal("-switch-budget must be >= 0")
	}
	if *switchBudget > 0 && !*exploreRun {
		log.Fatal("-switch-budget applies only to -explore")
	}
	if (*cpuprofile != "" || *memprofile != "") && !*exploreRun {
		log.Fatal("-cpuprofile/-memprofile apply only to -explore")
	}
	if *exploreRun {
		if *legacy {
			log.Fatal("-explore drives the step-machine engine directly and cannot run on the goroutine engine; drop -legacy-runner")
		}
		stopProfiles, err := cli.StartProfiles(*cpuprofile, *memprofile)
		if err != nil {
			log.Fatal(err)
		}
		err = runExploreSuite(*workers, *switchBudget)
		// Flush before log.Fatal — os.Exit runs no defers, and the exit-1
		// violation path is profiled too.
		stopProfiles()
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *benchJSON != "" {
		// The canonical bench workload is the quick matrix at 2 seeds (what
		// bench/baseline.json records); an explicit -seeds overrides it.
		benchSeeds := 2
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seeds" {
				benchSeeds = *seeds
			}
		})
		if err := runBenchJSON(*benchJSON, benchSeeds); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *list {
		for _, f := range scenarios.FamilyNames() {
			fmt.Println(f)
		}
		return
	}
	if *tables || isLegacyID(*runFilter) {
		if *jsonPath != "" || *fingerprint {
			log.Fatal("-json and -fingerprint apply only to matrix mode, not the legacy tables")
		}
		runLegacy(*runFilter, *seeds, *workers)
		return
	}
	if err := runMatrix(*runFilter, *seeds, *workers, *jsonPath, *fingerprint); err != nil {
		log.Fatal(err)
	}
}

// isLegacyID reports whether the -run filter names a legacy experiment.
func isLegacyID(id string) bool {
	for _, e := range experiments() {
		if strings.EqualFold(id, e.id) {
			return true
		}
	}
	return false
}

// runLegacy prints the per-theorem tables (all, or the one matching id).
func runLegacy(id string, seeds, workers int) {
	any := false
	for _, e := range experiments() {
		if id != "" && !strings.EqualFold(id, e.id) {
			continue
		}
		any = true
		fmt.Printf("## %s: %s\n\n", e.id, e.title)
		w := newTableWriter(os.Stdout)
		e.run(w, seeds, workers)
		w.flush()
		fmt.Println()
	}
	if !any {
		log.Fatalf("no experiment matches -run %q", id)
	}
}

// runMatrix expands the scenario matrix (one family, or all of them) and
// drives it through the lab engine.
func runMatrix(family string, seeds, workers int, jsonPath string, fingerprint bool) error {
	matrices, err := scenarios.Select(family, seeds)
	if err != nil {
		return err
	}
	scs, err := lab.ExpandAll(matrices)
	if err != nil {
		return err
	}
	return lab.Drive(os.Stdout, scs, lab.DriveConfig{
		Workers: workers, JSONPath: jsonPath, Fingerprint: fingerprint,
	})
}

// tableWriter accumulates rows and prints an aligned text table.
type tableWriter struct {
	out    *os.File
	header []string
	rows   [][]string
	notes  []string
}

func newTableWriter(out *os.File) *tableWriter { return &tableWriter{out: out} }

func (w *tableWriter) setHeader(cols ...string) { w.header = cols }

func (w *tableWriter) addRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	w.rows = append(w.rows, row)
}

func (w *tableWriter) note(format string, args ...any) {
	w.notes = append(w.notes, fmt.Sprintf(format, args...))
}

func (w *tableWriter) flush() {
	if len(w.header) > 0 {
		widths := make([]int, len(w.header))
		for i, h := range w.header {
			widths[i] = len(h)
		}
		for _, row := range w.rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, c := range cells {
				parts[i] = pad(c, widths[i])
			}
			fmt.Fprintln(w.out, "  "+strings.Join(parts, "  "))
		}
		line(w.header)
		dashes := make([]string, len(w.header))
		for i := range dashes {
			dashes[i] = strings.Repeat("-", widths[i])
		}
		line(dashes)
		for _, row := range w.rows {
			line(row)
		}
	}
	for _, n := range w.notes {
		fmt.Fprintln(w.out, "  * "+n)
	}
	w.header, w.rows, w.notes = nil, nil, nil
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// stats summarizes a sample of measurements (used by the legacy tables that
// do not route through internal/lab).
type stats struct{ vals []int64 }

func (s *stats) add(v int64) { s.vals = append(s.vals, v) }

func (s *stats) median() int64 {
	if len(s.vals) == 0 {
		return 0
	}
	vs := append([]int64(nil), s.vals...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs[len(vs)/2]
}

func (s *stats) max() int64 {
	var m int64
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}
